"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

SYSTEM_XML = """
<system name="cli">
  <controllers><controller name="c1"/></controllers>
  <switches><switch name="s1" dpid="1" ports="1,2"/></switches>
  <hosts><host name="h1" ip="10.0.0.1"/><host name="h2" ip="10.0.0.2"/></hosts>
  <dataplane>
    <link a="h1" b="s1" b-port="1"/>
    <link a="h2" b="s1" b-port="2"/>
  </dataplane>
  <controlplane><connection controller="c1" switch="s1"/></controlplane>
</system>
"""

ATTACK_XML = """
<attack name="cli-drop" start="sigma1">
  <state name="sigma1">
    <rule name="phi1">
      <connections><all-connections/></connections>
      <gamma class="no-tls"/>
      <condition>type = FLOW_MOD</condition>
      <actions><drop/></actions>
    </rule>
  </state>
</attack>
"""

MODEL_XML = """
<attackmodel>
  <connection controller="c1" switch="s1" class="no-tls"/>
</attackmodel>
"""


@pytest.fixture
def xml_files(tmp_path):
    system = tmp_path / "system.xml"
    system.write_text(SYSTEM_XML)
    attack = tmp_path / "attack.xml"
    attack.write_text(ATTACK_XML)
    model = tmp_path / "model.xml"
    model.write_text(MODEL_XML)
    return system, attack, model


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_compliance_command(capsys):
    assert main(["compliance"]) == 0
    out = capsys.readouterr().out
    assert "switch compliance:" in out
    assert "[FAIL]" not in out


def test_graph_command(xml_files, capsys):
    system, attack, _model = xml_files
    assert main(["graph", "--system", str(system), "--attack", str(attack)]) == 0
    out = capsys.readouterr().out
    assert "digraph attack" in out
    assert "sigma1" in out


def test_compile_command_to_stdout(xml_files, capsys):
    system, attack, model = xml_files
    code = main([
        "compile", "--system", str(system), "--attack", str(attack),
        "--attack-model", str(model),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "ATTACK = build_attack()" in out


def test_compile_command_to_file(xml_files, tmp_path, capsys):
    system, attack, _model = xml_files
    output = tmp_path / "generated.py"
    assert main(["compile", "--system", str(system), "--attack", str(attack),
                 "--output", str(output)]) == 0
    # The generated module is loadable and semantics-preserving.
    from repro.core.compiler import compile_attack_source

    rebuilt = compile_attack_source(output.read_text())
    assert rebuilt.name == "cli-drop"


def test_suppression_command_single_controller(capsys):
    code = main(["suppression", "--controller", "floodlight",
                 "--ping-trials", "4", "--iperf-trials", "1",
                 "--iperf-duration", "1.0"])
    assert code == 0
    out = capsys.readouterr().out
    assert "floodlight" in out
    assert "baseline" in out and "attack" in out


def test_interruption_command_single_controller(capsys):
    assert main(["interruption", "--controller", "ryu"]) == 0
    out = capsys.readouterr().out
    assert "ryu/standalone" in out
    assert "phi2 never fired" in out


def test_bad_controller_rejected():
    with pytest.raises(SystemExit):
        main(["suppression", "--controller", "opendaylight"])
