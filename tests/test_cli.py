"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

SYSTEM_XML = """
<system name="cli">
  <controllers><controller name="c1"/></controllers>
  <switches><switch name="s1" dpid="1" ports="1,2"/></switches>
  <hosts><host name="h1" ip="10.0.0.1"/><host name="h2" ip="10.0.0.2"/></hosts>
  <dataplane>
    <link a="h1" b="s1" b-port="1"/>
    <link a="h2" b="s1" b-port="2"/>
  </dataplane>
  <controlplane><connection controller="c1" switch="s1"/></controlplane>
</system>
"""

ATTACK_XML = """
<attack name="cli-drop" start="sigma1">
  <state name="sigma1">
    <rule name="phi1">
      <connections><all-connections/></connections>
      <gamma class="no-tls"/>
      <condition>type = FLOW_MOD</condition>
      <actions><drop/></actions>
    </rule>
  </state>
</attack>
"""

MODEL_XML = """
<attackmodel>
  <connection controller="c1" switch="s1" class="no-tls"/>
</attackmodel>
"""


@pytest.fixture
def xml_files(tmp_path):
    system = tmp_path / "system.xml"
    system.write_text(SYSTEM_XML)
    attack = tmp_path / "attack.xml"
    attack.write_text(ATTACK_XML)
    model = tmp_path / "model.xml"
    model.write_text(MODEL_XML)
    return system, attack, model


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_compliance_command(capsys):
    assert main(["compliance"]) == 0
    out = capsys.readouterr().out
    assert "switch compliance:" in out
    assert "[FAIL]" not in out


def test_graph_command(xml_files, capsys):
    system, attack, _model = xml_files
    assert main(["graph", "--system", str(system), "--attack", str(attack)]) == 0
    out = capsys.readouterr().out
    assert "digraph attack" in out
    assert "sigma1" in out


def test_compile_command_to_stdout(xml_files, capsys):
    system, attack, model = xml_files
    code = main([
        "compile", "--system", str(system), "--attack", str(attack),
        "--attack-model", str(model),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "ATTACK = build_attack()" in out


def test_compile_command_to_file(xml_files, tmp_path, capsys):
    system, attack, _model = xml_files
    output = tmp_path / "generated.py"
    assert main(["compile", "--system", str(system), "--attack", str(attack),
                 "--output", str(output)]) == 0
    # The generated module is loadable and semantics-preserving.
    from repro.core.compiler import compile_attack_source

    rebuilt = compile_attack_source(output.read_text())
    assert rebuilt.name == "cli-drop"


def test_suppression_command_single_controller(capsys):
    code = main(["suppression", "--controller", "floodlight",
                 "--ping-trials", "4", "--iperf-trials", "1",
                 "--iperf-duration", "1.0"])
    assert code == 0
    out = capsys.readouterr().out
    assert "floodlight" in out
    assert "baseline" in out and "attack" in out


def test_interruption_command_single_controller(capsys):
    assert main(["interruption", "--controller", "ryu"]) == 0
    out = capsys.readouterr().out
    assert "ryu/standalone" in out
    assert "phi2 never fired" in out


def test_bad_controller_rejected():
    with pytest.raises(SystemExit):
        main(["suppression", "--controller", "opendaylight"])


def test_suppression_json_mode_emits_record_schema(capsys):
    import json

    args = ["suppression", "--controller", "pox", "--ping-trials", "3",
            "--iperf-trials", "1", "--iperf-duration", "0.5",
            "--seed", "7", "--json"]
    assert main(args) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    records = [json.loads(line) for line in lines]
    assert len(records) == 2  # baseline + attack
    for record in records:
        assert record["schema"] == "attain.campaign.run.v1"
        assert record["status"] == "ok"
        assert record["seed"] == 7
        assert record["metrics"]["controller"] == "pox"
    assert {r["attack"] for r in records} == {
        "passthrough", "flow-mod-suppression"}
    # The run ID is the deterministic campaign-style content hash.
    assert main(args) == 0
    again = [json.loads(line)
             for line in capsys.readouterr().out.strip().splitlines()]
    assert [r["run_id"] for r in again] == [r["run_id"] for r in records]


def test_interruption_json_mode(capsys):
    import json

    assert main(["interruption", "--controller", "ryu", "--json"]) == 0
    records = [json.loads(line)
               for line in capsys.readouterr().out.strip().splitlines()]
    assert {r["fail_mode"] for r in records} == {"standalone", "secure"}
    for record in records:
        assert record["experiment"] == "interruption"
        # The Ryu anomaly survives the schema change: phi2 never fires.
        assert record["metrics"]["interruption_happened"] is False


def test_compliance_json_mode(capsys):
    import json

    assert main(["compliance", "--json"]) == 0
    record = json.loads(capsys.readouterr().out)
    assert record["experiment"] == "compliance"
    assert record["metrics"]["all_passed"] is True
    assert record["metrics"]["checks_passed"] == record["metrics"]["checks_total"]


@pytest.fixture
def campaign_spec_file(tmp_path):
    import json

    spec = {
        "name": "cli-selfcheck",
        "experiment": "selfcheck",
        "attacks": [None],
        "controllers": ["x"],
        "seeds": [0, 1, 2, 3],
        "timeout_s": 30.0,
        "retries": 0,
    }
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec))
    return path


def test_campaign_run_status_report_workflow(campaign_spec_file, capsys):
    import json

    store = str(campaign_spec_file.with_suffix(".results.jsonl"))
    assert main(["campaign", "run", str(campaign_spec_file),
                 "--workers", "2", "--quiet", "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["total"] == 4 and summary["succeeded"] == 4
    assert summary["store"] == store

    assert main(["campaign", "status", str(campaign_spec_file), "--json"]) == 0
    status = json.loads(capsys.readouterr().out)
    assert status["completed"] == 4 and status["pending"] == 0

    assert main(["campaign", "report", str(campaign_spec_file), "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["ok_runs"] == 4 and report["missing_runs"] == 0

    # A second run is a no-op resume: everything is already complete.
    assert main(["campaign", "run", str(campaign_spec_file),
                 "--workers", "2", "--quiet", "--json"]) == 0
    resumed = json.loads(capsys.readouterr().out)
    assert resumed["skipped"] == 4 and resumed["executed"] == 0


def test_campaign_status_before_any_run(campaign_spec_file, capsys):
    assert main(["campaign", "status", str(campaign_spec_file)]) == 0
    out = capsys.readouterr().out
    assert "0/4 runs complete" in out
    assert out.count("pending") == 4


def test_campaign_report_exit_code_reflects_missing_runs(
        campaign_spec_file, capsys):
    assert main(["campaign", "report", str(campaign_spec_file)]) == 1
    assert "4 missing" in capsys.readouterr().out


# ---------------------------------------------------------------------- #
# Tracing
# ---------------------------------------------------------------------- #


def test_interruption_trace_export_and_render(tmp_path, capsys):
    import json

    base = tmp_path / "run.jsonl"
    assert main(["interruption", "--controller", "pox", "--json",
                 "--trace", str(base)]) == 0
    captured = capsys.readouterr()
    records = [json.loads(line)
               for line in captured.out.strip().splitlines()]
    # Per-cell trace files, advertised in the records and on stderr.
    for record in records:
        trace = record["trace"]
        assert trace["events"] > 0
        assert f"run-pox-{record['fail_mode']}.jsonl" in trace["path"]
    assert "trace:" in captured.err

    trace_file = tmp_path / "run-pox-standalone.jsonl"
    assert trace_file.exists()
    assert main(["trace", str(trace_file)]) == 0
    out = capsys.readouterr().out
    # The merged timeline and the per-rule summary in one report.
    assert "rule_fired" in out
    assert "rule firings:" in out
    assert "sigma2/phi2" in out
    assert "FLOW_MOD" in out
    assert "sigma2 -> sigma3" in out


def test_trace_command_summary_only_and_filters(tmp_path, capsys):
    assert main(["interruption", "--controller", "pox",
                 "--trace", str(tmp_path / "t.jsonl")]) == 0
    capsys.readouterr()
    trace_file = tmp_path / "t-pox-secure.jsonl"

    assert main(["trace", str(trace_file), "--summary-only"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("trace:")
    assert not [l for l in out.splitlines() if l.startswith("t=")]

    assert main(["trace", str(trace_file), "--kinds", "state",
                 "--limit", "1"]) == 0
    out = capsys.readouterr().out
    timeline = [l for l in out.splitlines() if l.startswith("t=")]
    assert len(timeline) == 1 and "state" in timeline[0]


def test_trace_command_json_summary(tmp_path, capsys):
    import json

    assert main(["interruption", "--controller", "pox",
                 "--trace", str(tmp_path / "t.jsonl")]) == 0
    capsys.readouterr()
    assert main(["trace", str(tmp_path / "t-pox-secure.jsonl"),
                 "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["events"] > 0
    assert summary["by_kind"]["rule_fired"] >= 1
    assert summary["transitions"]


def test_trace_command_empty_file_fails(tmp_path, capsys):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert main(["trace", str(empty)]) == 1
    assert "no events" in capsys.readouterr().err


def test_single_shot_json_records_explicit_durations(capsys):
    import json

    assert main(["suppression", "--controller", "pox", "--ping-trials", "3",
                 "--iperf-trials", "1", "--iperf-duration", "0.5",
                 "--json"]) == 0
    records = [json.loads(line)
               for line in capsys.readouterr().out.strip().splitlines()]
    for record in records:
        assert record["wall_duration_s"] >= 0.0
        assert record["wall_duration_s"] == record["duration_s"]
        # The simulated horizon comes from the run itself, not wall time.
        assert record["sim_duration_s"] == record["metrics"]["sim_duration_s"]
        assert record["sim_duration_s"] > record["wall_duration_s"]


def test_campaign_run_trace_flag(tmp_path, capsys):
    import json

    spec = {
        "name": "cli-traced",
        "experiment": "interruption",
        "attacks": ["connection-interruption"],
        "controllers": ["pox"],
        "fail_modes": ["standalone"],
        "seeds": [0],
        "timeout_s": 120.0,
    }
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(spec))
    assert main(["campaign", "run", str(spec_path),
                 "--workers", "1", "--quiet", "--json", "--trace"]) == 0
    capsys.readouterr()
    store_path = spec_path.with_suffix(".results.jsonl")
    traces = sorted(store_path.parent.glob("*.traces/*.jsonl"))
    assert len(traces) == 1
    # The stored artifact renders through the same CLI front door.
    assert main(["trace", str(traces[0]), "--summary-only"]) == 0
    assert "sigma2/phi2" in capsys.readouterr().out


# --------------------------------------------------------------------- #
# repro lint
# --------------------------------------------------------------------- #

BAD_ATTACK_XML = """
<attack name="cli-broken" start="sigma1">
  <state name="sigma1">
    <rule name="phi1">
      <connections><all-connections/></connections>
      <gamma class="no-tls"/>
      <condition>true</condition>
      <actions><goto state="ghost"/></actions>
    </rule>
  </state>
</attack>
"""


def test_lint_registry_all_is_clean(capsys):
    assert main(["lint", "--all", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s), 0 warning(s)" in out


def test_lint_single_registry_name(capsys):
    assert main(["lint", "--name", "passthrough"]) == 0
    assert "lint: passthrough" in capsys.readouterr().out


def test_lint_clean_xml_path(xml_files, capsys):
    system, attack, _model = xml_files
    assert main(["lint", str(attack), "--system", str(system)]) == 0
    assert "linted 1 attack(s)" in capsys.readouterr().out


def test_lint_defective_xml_fails_with_code(xml_files, tmp_path, capsys):
    system, _attack, _model = xml_files
    bad = tmp_path / "bad.xml"
    bad.write_text(BAD_ATTACK_XML)
    assert main(["lint", str(bad), "--system", str(system)]) == 1
    out = capsys.readouterr().out
    assert "ATN004" in out and "ghost" in out


def test_lint_unparseable_xml_is_atn000(xml_files, tmp_path, capsys):
    system, _attack, _model = xml_files
    mangled = tmp_path / "mangled.xml"
    mangled.write_text("<attack><unclosed></attack>")
    assert main(["lint", str(mangled), "--system", str(system)]) == 1
    assert "ATN000" in capsys.readouterr().out


def test_lint_json_output(xml_files, tmp_path, capsys):
    import json

    system, _attack, _model = xml_files
    bad = tmp_path / "bad.xml"
    bad.write_text(BAD_ATTACK_XML)
    assert main(["lint", str(bad), "--system", str(system), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["attacks"] == 1 and payload["errors"] >= 1
    codes = {d["code"] for r in payload["reports"]
             for d in r["diagnostics"]}
    assert "ATN004" in codes


def test_lint_quiet_hides_info_diagnostics(xml_files, capsys):
    system, attack, _model = xml_files
    # The demo attack declares Γ_NoTLS but only drops: ATN012 info.
    assert main(["lint", str(attack), "--system", str(system)]) == 0
    assert "ATN012" in capsys.readouterr().out
    assert main(["lint", str(attack), "--system", str(system),
                 "--quiet"]) == 0
    assert "ATN012" not in capsys.readouterr().out


def test_lint_with_nothing_to_lint_errors(capsys):
    assert main(["lint"]) == 2
    assert "nothing to lint" in capsys.readouterr().err


def test_lint_missing_system_file(tmp_path, capsys):
    assert main(["lint", "--all", "--system",
                 str(tmp_path / "nope.xml")]) == 2
    assert "lint:" in capsys.readouterr().err


def test_lint_respects_attack_model(xml_files, tmp_path, capsys):
    system, attack, _model = xml_files
    tls = tmp_path / "tls.xml"
    tls.write_text('<attackmodel>'
                   '<connection controller="c1" switch="s1" class="tls"/>'
                   '</attackmodel>')
    # Under Γ_TLS the drop rule's Γ_NoTLS declaration exceeds the grant.
    assert main(["lint", str(attack), "--system", str(system),
                 "--attack-model", str(tls)]) == 1
    assert "ATN011" in capsys.readouterr().out


def test_campaign_run_reports_lint_rejections(tmp_path, capsys):
    import json

    spec = {
        "name": "cli-preflight",
        "experiment": "selfcheck",
        "attacks": ["blackhole"],
        "controllers": ["x"],
        "seeds": [0],
        "attack_params": {"blackhole": {"bogus_param": 1}},
        "timeout_s": 30.0,
        "retries": 0,
    }
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec))
    assert main(["campaign", "run", str(path),
                 "--workers", "1", "--quiet", "--json"]) == 1
    summary = json.loads(capsys.readouterr().out)
    assert summary["lint_rejected"] == 1 and summary["failed"] == 1

    # --no-preflight hands the cell to a worker instead.
    store2 = tmp_path / "bypass.jsonl"
    assert main(["campaign", "run", str(path), "--store", str(store2),
                 "--workers", "1", "--quiet", "--json",
                 "--no-preflight"]) in (0, 1)
    summary = json.loads(capsys.readouterr().out)
    assert summary["lint_rejected"] == 0


def test_fabric_gen_command(capsys):
    import json

    assert main(["fabric", "gen", "fat-tree-k4", "--regions", "5",
                 "--json"]) == 0
    info = json.loads(capsys.readouterr().out)
    assert info["switches"] == 20
    assert info["hosts"] == 16
    assert len(info["regions"]) == 5


def test_fabric_gen_rejects_unknown_descriptor():
    from repro.dataplane import TopologyError
    import pytest

    with pytest.raises(TopologyError):
        main(["fabric", "gen", "fat-tree-k5"])


def test_fabric_run_command_json(capsys, tmp_path):
    import json

    trace_path = tmp_path / "fabric.jsonl"
    assert main(["fabric", "run", "fat-tree-k4", "--pairs", "2",
                 "--packets", "5", "--shards", "2",
                 "--trace", str(trace_path), "--json"]) == 0
    captured = capsys.readouterr()
    record = json.loads(captured.out)
    assert record["experiment"] == "fabric"
    assert record["metrics"]["packets_delivered"] == 10
    assert record["metrics"]["shards"] == 2
    assert trace_path.exists()
    lines = trace_path.read_text().strip().splitlines()
    assert len(lines) == record["metrics"].get("trace_events",
                                               len(lines)) or lines


def test_fabric_run_with_controller_and_attack(capsys):
    assert main(["fabric", "run", "fat-tree-k4",
                 "--controller", "floodlight",
                 "--attack", "flow-mod-suppression",
                 "--pairs", "2", "--packets", "2"]) == 0
    out = capsys.readouterr().out
    assert "flow-mods seen" in out
    assert "dropped" in out


def test_workload_list_command(capsys):
    assert main(["workload", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("benign-mix", "packetin-flood", "table-overflow",
                 "arp-poison"):
        assert name in out
    assert "[needs controller]" in out


def test_workload_list_json(capsys):
    import json

    assert main(["workload", "list", "--json"]) == 0
    sources = json.loads(capsys.readouterr().out)
    assert {s["name"] for s in sources} >= {"benign-mix", "table-overflow"}


def test_workload_run_overflow_command(capsys):
    assert main(["workload", "run", "table-overflow",
                 "--controller", "floodlight",
                 "--schedule", "constant:800", "--keys", "128",
                 "--senders", "2", "--duration", "0.3",
                 "--table-capacity", "32", "--table-eviction", "lru"]) == 0
    out = capsys.readouterr().out
    assert "table-overflow on fat-tree-k4" in out
    assert "occupancy peak 32" in out
    assert "capacity x" in out
    assert "PACKET_INs" in out


def test_workload_run_json_record(capsys):
    import json

    assert main(["workload", "run", "benign-mix",
                 "--schedule", "constant:200", "--senders", "2",
                 "--duration", "0.3", "--json"]) == 0
    record = json.loads(capsys.readouterr().out)
    assert record["experiment"] == "workload"
    assert record["metrics"]["workload"] == "benign-mix"
    assert record["metrics"]["packets_synthesized"] == 2 * 60


def test_workload_run_rejects_controllerless_floods(capsys):
    with pytest.raises(ValueError, match="needs a controller"):
        main(["workload", "run", "packetin-flood", "--senders", "2"])


def test_workload_list_tags_adversarial_sources(capsys):
    assert main(["workload", "list"]) == 0
    out = capsys.readouterr().out
    flood_line = next(l for l in out.splitlines() if "packetin-flood" in l)
    benign_line = next(l for l in out.splitlines() if "benign-mix" in l)
    assert "[adversarial]" in flood_line
    assert "[adversarial]" not in benign_line


def test_detect_list_command(capsys):
    assert main(["detect", "list"]) == 0
    out = capsys.readouterr().out
    assert "pktin-rate" in out
    assert "newkey-ratio" in out
    assert "iforest" in out and "[optional: sklearn" in out


def test_detect_list_json(capsys):
    import json

    assert main(["detect", "list", "--json"]) == 0
    detectors = json.loads(capsys.readouterr().out)
    names = {d["name"] for d in detectors}
    assert names >= {"pktin-rate", "newkey-ratio", "iforest"}
    iforest = next(d for d in detectors if d["name"] == "iforest")
    assert iforest["requires"] == "sklearn"
    assert isinstance(iforest["available"], bool)


def test_detect_run_command(capsys):
    assert main(["detect", "run", "packetin-flood",
                 "--detectors", "pktin-rate",
                 "--schedule", "constant:500", "--senders", "2",
                 "--duration", "0.3", "--threshold-pps", "1200"]) == 0
    out = capsys.readouterr().out
    assert "sketch digest:" in out
    assert "pktin-rate" in out
    assert "prec" in out and "recall" in out


def test_detect_run_json_record(capsys):
    import json

    assert main(["detect", "run", "packetin-flood",
                 "--detectors", "pktin-rate",
                 "--schedule", "constant:500", "--senders", "2",
                 "--duration", "0.3", "--threshold-pps", "1200",
                 "--json"]) == 0
    record = json.loads(capsys.readouterr().out)
    assert record["experiment"] == "detect"
    metrics = record["metrics"]
    assert metrics["sketch_digest"]
    assert metrics["detect_precision"] == 1.0
    assert metrics["detect_recall"] == 1.0
    assert metrics["detect_latency_s"] is not None
    assert metrics["detections"][0]["detector"] == "pktin-rate"


def test_detect_run_rejects_unknown_detector():
    with pytest.raises(KeyError, match="unknown detector"):
        main(["detect", "run", "packetin-flood",
              "--detectors", "space-laser", "--senders", "2"])
