"""Unit + property tests for seeded randomness."""

from hypothesis import given, strategies as st

from repro.sim import SeededRng


def test_same_seed_same_stream():
    a = SeededRng(42)
    b = SeededRng(42)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_seeds_differ():
    a = SeededRng(1)
    b = SeededRng(2)
    assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]


def test_children_are_independent_of_creation_order():
    parent1 = SeededRng(7)
    parent2 = SeededRng(7)
    # Derive in different orders; same-named child gives same stream.
    a_first = parent1.child("a")
    _b = parent1.child("b")
    _c = parent2.child("c")
    a_second = parent2.child("a")
    assert [a_first.random() for _ in range(5)] == [a_second.random() for _ in range(5)]


def test_child_differs_from_parent():
    parent = SeededRng(7)
    child = parent.child("x")
    assert [SeededRng(7).random() for _ in range(5)] != [child.random() for _ in range(5)]


def test_random_bytes_length():
    rng = SeededRng(3)
    assert len(rng.random_bytes(16)) == 16


@given(st.binary(min_size=1, max_size=64), st.integers(min_value=1, max_value=32))
def test_flip_bits_changes_payload_preserves_length(payload, flips):
    rng = SeededRng(5)
    mutated = rng.flip_bits(payload, flips)
    assert len(mutated) == len(payload)


def test_flip_bits_empty_payload_noop():
    rng = SeededRng(5)
    assert rng.flip_bits(b"", 8) == b""


def test_flip_bits_deterministic():
    assert SeededRng(9).flip_bits(b"hello", 4) == SeededRng(9).flip_bits(b"hello", 4)


@given(st.integers(min_value=1, max_value=100), st.integers(min_value=0, max_value=120))
def test_sample_indices_bounds(population, count):
    rng = SeededRng(11)
    indices = rng.sample_indices(population, count)
    assert len(indices) == min(population, count)
    assert all(0 <= index < population for index in indices)
    assert indices == sorted(indices)


def test_uniform_within_bounds():
    rng = SeededRng(13)
    for _ in range(100):
        value = rng.uniform(2.0, 3.0)
        assert 2.0 <= value <= 3.0


def test_randint_within_bounds():
    rng = SeededRng(13)
    for _ in range(100):
        assert 1 <= rng.randint(1, 6) <= 6
