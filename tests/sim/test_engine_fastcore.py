"""Semantics of the allocation-lean event core.

The engine's hot loop batches same-timestamp dispatch, keeps flat
``(time, priority, seq, event)`` heap entries, and pops head tombstones
in ``_peek``.  None of that may be observable: these tests pin the
ordering, cancellation, and accounting contracts the rest of the
simulator (and the cross-shard determinism proof) relies on.
"""

import pytest

from repro.sim import SimulationEngine, SimulationError
from repro.sim.events import MESSAGE_PRIORITY, Event


@pytest.fixture
def engine():
    return SimulationEngine()


class TestBatchedDispatch:
    def test_event_scheduled_at_now_during_batch_fires_in_same_run(self, engine):
        fired = []

        def first():
            fired.append("first")
            engine.schedule(0.0, lambda: fired.append("nested"))

        engine.schedule(1.0, first)
        engine.schedule(1.0, fired.append, "second")
        engine.run()
        assert fired == ["first", "second", "nested"]
        assert engine.now == 1.0

    def test_cancel_same_timestamp_event_mid_batch(self, engine):
        fired = []
        victim = engine.schedule(1.0, fired.append, "victim")

        def assassin():
            fired.append("assassin")
            victim.cancel()

        # The assassin was scheduled after the victim but runs first via
        # priority; the victim's heap entry is already popped-adjacent.
        engine.schedule(1.0, assassin, priority=-1)
        engine.run()
        assert fired == ["assassin"]
        assert engine.pending_events == 0

    def test_budget_stops_inside_a_timestamp_batch(self, engine):
        fired = []
        for index in range(5):
            engine.schedule(1.0, fired.append, index)
        count = engine.run(max_events=3)
        assert count == 3
        assert fired == [0, 1, 2]
        assert engine.pending_events == 2
        # The remainder of the batch fires on the next run.
        engine.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_until_boundary_leaves_later_events_heap_resident(self, engine):
        engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        engine.run(until=1.5)
        assert engine.pending_events == 1
        assert engine.next_event_time() == 2.0


class TestMessageBand:
    def test_message_fires_after_local_events_at_same_instant(self, engine):
        fired = []
        engine.schedule_message(1.0, ("chan", 0), fired.append, "message")
        engine.schedule_at(1.0, fired.append, "local")
        engine.run()
        assert fired == ["local", "message"]

    def test_messages_order_by_identity_not_delivery_order(self, engine):
        fired = []
        # Delivered out of identity order — e.g. two barrier batches
        # merged — yet they fire sorted by (channel, sender_seq).
        engine.schedule_message(1.0, ("b", 2), fired.append, "b2")
        engine.schedule_message(1.0, ("a", 9), fired.append, "a9")
        engine.schedule_message(1.0, ("b", 1), fired.append, "b1")
        engine.run()
        assert fired == ["a9", "b1", "b2"]

    def test_message_does_not_consume_event_seq_counter(self, engine):
        before = next(Event._seq_counter)
        engine.schedule_message(1.0, ("chan", 0), lambda: None)
        after = next(Event._seq_counter)
        assert after == before + 1  # only our probes drew from the counter
        engine.run()

    def test_message_in_past_rejected(self, engine):
        engine.schedule_at(2.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_message(1.0, ("chan", 0), lambda: None)

    def test_message_band_sorts_after_any_local_priority(self, engine):
        fired = []
        engine.schedule_message(1.0, ("chan", 0), fired.append, "message")
        engine.schedule_at(1.0, fired.append, "low", priority=1000)
        engine.run()
        assert fired == ["low", "message"]
        assert MESSAGE_PRIORITY > 1000


class TestTombstoneAccounting:
    def test_peek_pops_head_tombstones_and_credits_sweep(self, engine):
        cancelled = engine.schedule(1.0, lambda: None)
        live = engine.schedule(2.0, lambda: None)
        cancelled.cancel()
        swept_before = engine.heap_tombstones_swept
        assert engine.next_event_time() == 2.0
        assert engine.heap_tombstones_swept == swept_before + 1
        metrics = engine.metrics()
        assert metrics["heap_size"] == 1
        assert metrics["heap_tombstones"] == 0
        assert metrics["pending_events"] == 1
        live.cancel()

    def test_sweep_ledger_is_consistent_across_paths(self, engine):
        # Interleave cancels swept by _peek, step, run, and _compact; at
        # every observation point the derived tombstone figure must match
        # the heap-size / live-count gap exactly.
        events = [engine.schedule(float(i % 7), lambda: None)
                  for i in range(200)]
        for event in events[::3]:
            event.cancel()
        metrics = engine.metrics()
        assert metrics["heap_tombstones"] == (
            metrics["heap_size"] - metrics["pending_events"]
        )
        engine.next_event_time()
        engine.step()
        engine.run(until=3.0)
        metrics = engine.metrics()
        assert metrics["heap_tombstones"] == (
            metrics["heap_size"] - metrics["pending_events"]
        )
        engine.run()
        metrics = engine.metrics()
        assert metrics["heap_size"] == metrics["pending_events"] == 0
        assert metrics["heap_tombstones"] == 0

    def test_run_skips_tombstones_without_counting_them(self, engine):
        fired = []
        doomed = [engine.schedule(1.0, fired.append, f"doomed{i}")
                  for i in range(3)]
        engine.schedule(1.0, fired.append, "kept")
        for event in doomed:
            event.cancel()
        count = engine.run()
        assert count == 1
        assert fired == ["kept"]
        assert engine.processed_events == 1


class TestPrecomputedKeys:
    def test_event_key_matches_heap_entry(self, engine):
        event = engine.schedule_at(3.5, lambda: None, priority=2)
        assert event.sort_key() == (3.5, 2, event.seq)
        assert event.key == event.sort_key()

    def test_event_comparison_uses_key(self):
        early = Event(1.0, lambda: None)
        late = Event(2.0, lambda: None)
        assert early < late
        tie_a = Event(3.0, lambda: None)
        tie_b = Event(3.0, lambda: None)
        assert tie_a < tie_b  # FIFO via the seq counter
