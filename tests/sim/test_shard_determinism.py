"""Shard-count invariance: the tentpole determinism contract.

The same fabric run must produce byte-identical merged trace exports and
identical metrics whether its regions execute inline in one process or
spread across any number of pool workers.  Suppression and interruption
attacks are both exercised — the injector, proxies, and control-plane
boundary channels all sit on the sharded path.
"""

import pytest

from repro.campaign import reset_run_state
from repro.experiments.fabric import run_fabric_experiment


def _run(shards, **kwargs):
    reset_run_state()
    return run_fabric_experiment(
        "fat-tree-k4", controller="floodlight", pairs=4, packets=3,
        shards=shards, trace=True, **kwargs,
    )


def _comparable(result):
    metrics = result.record()
    for key in ("shards", "wall_s", "wall_packets_per_sec",
                "capacity_packets_per_sec"):
        metrics.pop(key)
    return metrics


def test_suppression_attack_is_shard_invariant():
    inline = _run(1, attack="flow-mod-suppression")
    pooled = _run(3, attack="flow-mod-suppression")
    assert inline.trace_jsonl == pooled.trace_jsonl
    assert inline.trace_events == pooled.trace_events > 0
    assert _comparable(inline) == _comparable(pooled)
    assert inline.flow_mods_dropped > 0  # the attack actually fired


def test_interruption_attack_is_shard_invariant():
    # The Fig. 12 interruption attack, retargeted at the first workload
    # pair's edge switch: FLOW_MODs for pings from p00e00h00 toward its
    # partner trip the state machine.
    from repro.dataplane.fabrics import generate_fabric

    hosts = generate_fabric("fat-tree-k4").topology.hosts
    params = {
        "connection": ("c1", "p00e00"),
        "trigger_source_ip": str(hosts["p00e00h00"].ip),
        "protected_destination_ips": [str(hosts["p02e00h00"].ip)],
    }
    inline = _run(1, attack="connection-interruption", attack_params=params)
    pooled = _run(4, attack="connection-interruption", attack_params=params)
    assert inline.trace_jsonl == pooled.trace_jsonl
    assert _comparable(inline) == _comparable(pooled)
    assert inline.flow_mods_dropped > 0  # the state machine reached phi2


def test_unattacked_controller_run_is_shard_invariant():
    inline = _run(1)
    pooled = _run(2)
    assert inline.trace_jsonl == pooled.trace_jsonl
    assert inline.ping_received == inline.ping_sent > 0


def test_controllerless_udp_run_is_shard_invariant():
    reset_run_state()
    inline = run_fabric_experiment("fat-tree-k4", pairs=4, packets=10,
                                   shards=1, trace=True)
    reset_run_state()
    pooled = run_fabric_experiment("fat-tree-k4", pairs=4, packets=10,
                                   shards=2, trace=True)
    assert inline.trace_jsonl == pooled.trace_jsonl
    assert _comparable(inline) == _comparable(pooled)
    assert inline.packets_delivered == inline.packets_sent == 40


def test_rerun_same_config_is_byte_identical():
    first = _run(2)
    second = _run(2)
    assert first.trace_jsonl == second.trace_jsonl
