"""Shard-count invariance: the tentpole determinism contract.

The same fabric run must produce byte-identical merged trace exports and
identical metrics whether its regions execute inline in one process or
spread across any number of pool workers — and regardless of which
exchange fast-lane features are enabled.  The full A/B matrix is
(codec on/off) x (adaptive lookahead on/off) x (1/2/4 shards):
the packed codec must be a pure wire-format change, and adaptive
epoch widening must never reorder deliveries.

Suppression and interruption attacks are both exercised — the injector,
proxies, and control-plane boundary channels all sit on the sharded path.
"""

import itertools
import os

import pytest

from repro.campaign import reset_run_state
from repro.experiments.fabric import run_fabric_experiment

#: ``record()`` keys that legitimately differ between executions of the
#: same scenario: timing, CPU accounting, and the wire-level exchange
#: counters (inline runs exchange nothing; blob sizes depend on the
#: worker assignment).
EXECUTION_KEYS = (
    "shards", "wall_s", "wall_packets_per_sec", "capacity_packets_per_sec",
    "coordinator_cpu_s", "worker_cpu_s", "exchange_bytes", "exchange_blobs",
)

#: Additionally schedule-dependent: epoch counts differ between fixed
#: and adaptive barrier schedules (that is the point of widening).
SCHEDULE_KEYS = ("epochs", "epochs_skipped", "epochs_widened")

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0", "false")


def _run(shards, **kwargs):
    reset_run_state()
    return run_fabric_experiment(
        "fat-tree-k4", controller="floodlight", pairs=4, packets=3,
        shards=shards, trace=True, **kwargs,
    )


def _comparable(result, across_schedules=False):
    metrics = result.record()
    for key in EXECUTION_KEYS:
        metrics.pop(key)
    if across_schedules:
        for key in SCHEDULE_KEYS:
            metrics.pop(key)
    return metrics


def test_fast_lane_matrix_is_byte_identical():
    """Every (codec, adaptive, shards) combination replays the same run."""
    shard_counts = (1, 2) if QUICK else (1, 2, 4)
    reference = None
    epochs_by_mode = {}
    for shards, adaptive, codec in itertools.product(
        shard_counts, (True, False), (True, False)
    ):
        result = _run(shards, adaptive_lookahead=adaptive,
                      exchange_codec=codec)
        tag = f"shards={shards} adaptive={adaptive} codec={codec}"
        assert result.trace_events > 0, tag
        if reference is None:
            reference = result
        else:
            assert result.trace_jsonl == reference.trace_jsonl, tag
            assert (_comparable(result, across_schedules=True)
                    == _comparable(reference, across_schedules=True)), tag
        # Epoch counts depend only on the schedule mode, never on the
        # shard count or wire format.
        epochs = epochs_by_mode.setdefault(adaptive, result.epochs)
        assert result.epochs == epochs, tag


def test_adaptive_lookahead_actually_widens_epochs():
    adaptive = _run(2, adaptive_lookahead=True)
    fixed = _run(2, adaptive_lookahead=False)
    assert adaptive.trace_jsonl == fixed.trace_jsonl
    assert adaptive.epochs_widened > 0
    assert fixed.epochs_widened == 0
    assert adaptive.epochs < fixed.epochs


def test_suppression_attack_is_shard_invariant():
    inline = _run(1, attack="flow-mod-suppression")
    pooled = _run(3, attack="flow-mod-suppression")
    assert inline.trace_jsonl == pooled.trace_jsonl
    assert inline.trace_events == pooled.trace_events > 0
    assert _comparable(inline) == _comparable(pooled)
    assert inline.flow_mods_dropped > 0  # the attack actually fired


def test_interruption_attack_is_shard_invariant():
    # The Fig. 12 interruption attack, retargeted at the first workload
    # pair's edge switch: FLOW_MODs for pings from p00e00h00 toward its
    # partner trip the state machine.
    from repro.dataplane.fabrics import generate_fabric

    hosts = generate_fabric("fat-tree-k4").topology.hosts
    params = {
        "connection": ("c1", "p00e00"),
        "trigger_source_ip": str(hosts["p00e00h00"].ip),
        "protected_destination_ips": [str(hosts["p02e00h00"].ip)],
    }
    inline = _run(1, attack="connection-interruption", attack_params=params)
    pooled = _run(4, attack="connection-interruption", attack_params=params)
    assert inline.trace_jsonl == pooled.trace_jsonl
    assert _comparable(inline) == _comparable(pooled)
    assert inline.flow_mods_dropped > 0  # the state machine reached phi2


def test_unattacked_controller_run_is_shard_invariant():
    inline = _run(1)
    pooled = _run(2)
    assert inline.trace_jsonl == pooled.trace_jsonl
    assert inline.ping_received == inline.ping_sent > 0


def test_controllerless_udp_run_is_shard_invariant():
    reset_run_state()
    inline = run_fabric_experiment("fat-tree-k4", pairs=4, packets=10,
                                   shards=1, trace=True)
    reset_run_state()
    pooled = run_fabric_experiment("fat-tree-k4", pairs=4, packets=10,
                                   shards=2, trace=True)
    assert inline.trace_jsonl == pooled.trace_jsonl
    assert _comparable(inline) == _comparable(pooled)
    assert inline.packets_delivered == inline.packets_sent == 40


def test_rerun_same_config_is_byte_identical():
    first = _run(2)
    second = _run(2)
    assert first.trace_jsonl == second.trace_jsonl


def test_exchange_counters_are_populated_on_pooled_runs():
    pooled = _run(2)
    assert pooled.exchange_bytes > 0
    assert pooled.exchange_blobs > 0
    assert pooled.cross_shard_messages > 0
    inline = _run(1)
    assert inline.exchange_bytes == inline.exchange_blobs == 0
