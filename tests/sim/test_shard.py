"""Sharded-execution machinery: contexts, boundaries, packing, barriers."""

import pytest

from repro.sim.engine import SimulationEngine
from repro.sim.shard import (
    OP_FRAME,
    BoundaryHalf,
    BoundaryTx,
    RegionContext,
    ShardRegion,
    assign_regions,
)


# --------------------------------------------------------------------- #
# RegionContext
# --------------------------------------------------------------------- #

def test_region_context_isolates_event_sequence():
    from repro.sim.events import Event

    outer = SimulationEngine()
    outer.schedule(1.0, lambda: None)
    outer_seq = Event._seq_counter

    ctx = RegionContext()
    with ctx:
        inner = SimulationEngine()
        first = inner.schedule(1.0, lambda: None)
        second = inner.schedule(1.0, lambda: None)
        # A fresh context starts its sequence from zero, regardless of
        # how many events the outer simulation has created.
        assert first.seq == 0
        assert second.seq == 1
    assert Event._seq_counter is outer_seq


def test_region_context_isolates_xids():
    from repro.openflow import messages as of_messages

    before = of_messages._xid_next
    ctx = RegionContext()
    with ctx:
        of_messages.next_xid()
        of_messages.next_xid()
    assert of_messages._xid_next == before
    # The context remembers its own progress across entries.
    assert ctx.xid_next == 3
    with ctx:
        assert of_messages.next_xid() == 3


def test_region_context_is_not_reentrant():
    ctx = RegionContext()
    with ctx:
        with pytest.raises(RuntimeError):
            ctx.__enter__()


# --------------------------------------------------------------------- #
# Boundary link direction
# --------------------------------------------------------------------- #

def _region_with_boundary():
    region = ShardRegion(0, 2)
    tx = BoundaryTx(region.engine, 1e9, 0.001, 10, region.emit, "link:000000:a")
    region.chan_dest["link:000000:a"] = 1
    return region, tx


def test_boundary_tx_emits_instead_of_delivering():
    region, tx = _region_with_boundary()
    with region.ctx:
        assert tx.transmit(b"x" * 100)
        region.engine.run(until=0.01)
    assert len(region.outbox) == 1
    dest, (arrival, chan, seq, op, payload) = region.outbox[0]
    assert dest == 1
    assert chan == "link:000000:a"
    assert op == OP_FRAME
    assert payload == b"x" * 100
    # serialization (100 B at 1 Gb/s) + propagation latency
    assert arrival == pytest.approx(100 * 8 / 1e9 + 0.001)
    assert region.engine.cross_shard_messages == 1


def test_boundary_tx_queue_drains_like_a_local_link():
    region, tx = _region_with_boundary()
    with region.ctx:
        for _ in range(5):
            assert tx.transmit(b"y" * 50)
        assert tx.queued == 5
        region.engine.run(until=0.05)
        assert tx.queued == 0
    assert len(region.outbox) == 5
    arrivals = [message[0] for _, message in region.outbox]
    assert arrivals == sorted(arrivals)
    assert len(set(arrivals)) == 5  # back-to-back serialization, no overlap


def test_boundary_half_routes_inbound_to_attached_receiver():
    region, tx = _region_with_boundary()
    half = BoundaryHalf(tx)
    received = []
    half.attach(received.append)
    half.deliver(b"frame")
    assert received == [b"frame"]


def test_region_delivers_sorted_messages_to_sinks():
    region, tx = _region_with_boundary()
    half = BoundaryHalf(tx)
    region.link_sinks["link:000001:b"] = half
    received = []
    half.attach(received.append)
    # Deliberately unsorted batch: delivery must re-sort by (t, chan, seq).
    region.deliver([
        (0.004, "link:000001:b", 1, OP_FRAME, b"late"),
        (0.002, "link:000001:b", 0, OP_FRAME, b"early"),
    ])
    with region.ctx:
        region.engine.run(until=0.01)
    assert received == [b"early", b"late"]
    assert region.messages_received == 2


# --------------------------------------------------------------------- #
# Region -> shard packing
# --------------------------------------------------------------------- #

def test_assign_regions_is_lpt_by_weight():
    assignment = assign_regions(
        [0, 1, 2, 3], weights={0: 10, 1: 1, 2: 1, 3: 1}, shards=2
    )
    # The heavy region gets its own shard; the rest pack together.
    assert assignment == [[0], [1, 2, 3]]


def test_assign_regions_never_exceeds_region_count():
    assignment = assign_regions([0, 1], weights={}, shards=8)
    assert len(assignment) == 2
    assert sorted(rid for rids in assignment for rid in rids) == [0, 1]


def test_assign_regions_is_deterministic_under_ties():
    first = assign_regions([3, 1, 2, 0], weights={}, shards=2)
    second = assign_regions([0, 1, 2, 3], weights={}, shards=2)
    assert first == second


# --------------------------------------------------------------------- #
# Engine metrics / compaction floor
# --------------------------------------------------------------------- #

def test_engine_metrics_report_shard_fields():
    engine = SimulationEngine()
    metrics = engine.metrics()
    assert metrics["shards"] == 1
    assert metrics["shard_id"] == 0
    assert metrics["cross_shard_messages"] == 0

    region = ShardRegion(2, 4)
    metrics = region.engine.metrics()
    assert metrics["shards"] == 4
    assert metrics["shard_id"] == 2


def test_barrier_loop_epoch_skip_on_sparse_timeline():
    """A sparse workload (events every ~0.5 s, lookahead 1 ms) must not
    grind through 500 empty barriers per event."""
    from repro.experiments.fabric import run_fabric_experiment

    result = run_fabric_experiment(
        "leaf-spine-2x2", pairs=1, packets=3, interval_s=0.5,
        horizon_s=2.0, shards=1,
    )
    assert result.packets_delivered == 3
    # 2.0 s / 1 ms lookahead = 2000 naive epochs; the skip logic should
    # need only a handful per packet exchange.
    assert result.epochs < 200
