"""Unit tests for event and timer primitives."""

import pytest

from repro.sim import SimulationEngine
from repro.sim.events import Event, EventCancelled, Timer


def test_event_ordering_by_time():
    a = Event(1.0, lambda: None)
    b = Event(2.0, lambda: None)
    assert a < b


def test_event_ordering_by_seq_on_tie():
    a = Event(1.0, lambda: None)
    b = Event(1.0, lambda: None)
    assert a < b  # a was created first


def test_event_ordering_by_priority_on_tie():
    a = Event(1.0, lambda: None, priority=5)
    b = Event(1.0, lambda: None, priority=-5)
    assert b < a


def test_negative_time_rejected():
    with pytest.raises(ValueError):
        Event(-1.0, lambda: None)


def test_fire_invokes_callback_with_args():
    seen = []
    event = Event(0.0, lambda x, y: seen.append((x, y)), args=(1, 2))
    event.fire()
    assert seen == [(1, 2)]


def test_fire_cancelled_event_raises():
    event = Event(0.0, lambda: None)
    event.cancel()
    with pytest.raises(EventCancelled):
        event.fire()


class TestTimer:
    def test_fires_after_delay(self):
        engine = SimulationEngine()
        fired = []
        timer = Timer(engine, lambda: fired.append(engine.now))
        timer.start(2.0)
        engine.run()
        assert fired == [2.0]

    def test_restart_pushes_deadline(self):
        engine = SimulationEngine()
        fired = []
        timer = Timer(engine, lambda: fired.append(engine.now))
        timer.start(2.0)
        engine.schedule(1.0, timer.start, 3.0)  # restart at t=1 -> fires t=4
        engine.run()
        assert fired == [4.0]

    def test_cancel_prevents_firing(self):
        engine = SimulationEngine()
        fired = []
        timer = Timer(engine, lambda: fired.append(1))
        timer.start(2.0)
        timer.cancel()
        engine.run()
        assert fired == []

    def test_pending_reflects_state(self):
        engine = SimulationEngine()
        timer = Timer(engine, lambda: None)
        assert not timer.pending
        timer.start(1.0)
        assert timer.pending
        engine.run()
        assert not timer.pending
