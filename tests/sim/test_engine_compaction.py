"""Tombstone compaction in the simulation engine's event heap."""

from repro.sim.engine import SimulationEngine


def test_compaction_triggers_below_live_fraction():
    engine = SimulationEngine()
    events = [engine.schedule(float(i + 1), lambda: None) for i in range(100)]
    assert engine.heap_compactions == 0
    for event in events[:60]:
        event.cancel()
    assert engine.heap_compactions >= 1
    metrics = engine.metrics()
    assert metrics["pending_events"] == 40
    # The sweep dropped dead weight; only tombstones accrued after the
    # queue fell below COMPACT_MIN_QUEUE may remain.
    assert metrics["heap_size"] < 100
    assert metrics["heap_size"] == 40 + metrics["heap_tombstones"]


def test_no_compaction_below_minimum_queue_size():
    engine = SimulationEngine()
    events = [engine.schedule(float(i + 1), lambda: None) for i in range(20)]
    for event in events:
        event.cancel()
    assert engine.heap_compactions == 0


def test_compaction_preserves_event_order_and_content():
    engine = SimulationEngine()
    fired = []
    events = [engine.schedule(float(i), fired.append, i) for i in range(200)]
    for i, event in enumerate(events):
        if i % 3 != 0:
            event.cancel()
    assert engine.heap_compactions >= 1
    engine.run()
    assert fired == [i for i in range(200) if i % 3 == 0]


def test_compaction_is_in_place():
    # run() keeps a local alias of the queue list, so compaction must
    # mutate the list in place rather than rebind the attribute.
    engine = SimulationEngine()
    queue = engine._queue
    events = [engine.schedule(float(i + 1), lambda: None) for i in range(100)]
    for event in events[:80]:
        event.cancel()
    assert engine.heap_compactions >= 1
    assert engine._queue is queue
    assert len(queue) < 100


def test_cancel_during_run_compacts_safely():
    engine = SimulationEngine()
    fired = []
    victims = []

    def massacre():
        for event in victims:
            event.cancel()

    engine.schedule(0.5, massacre)
    for i in range(100):
        victims.append(engine.schedule(10.0 + i, fired.append, i))
    for i in range(10):
        engine.schedule(100.0 + i, fired.append, 1000 + i)
    engine.run()
    # All victims were cancelled mid-run (triggering in-run compaction);
    # the survivors still fire, in order.
    assert fired == [1000 + i for i in range(10)]
    assert engine.heap_compactions >= 1


def test_metrics_exposes_compaction_counter():
    engine = SimulationEngine()
    metrics = engine.metrics()
    assert metrics["heap_compactions"] == 0
    assert metrics["processed_events"] == 0
    assert metrics["pending_events"] == 0
    engine.schedule(1.0, lambda: None)
    assert engine.metrics()["pending_events"] == 1


def test_pending_events_stays_consistent_after_compaction():
    engine = SimulationEngine()
    events = [engine.schedule(float(i + 1), lambda: None) for i in range(128)]
    for event in events[::2]:
        event.cancel()
    assert engine.pending_events == 64
    engine.run()
    assert engine.pending_events == 0
    assert engine.processed_events == 64
