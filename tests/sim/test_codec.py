"""Round-trip property tests for the packed boundary codec.

The codec is a *stateful* wire format: channel names, payload tables and
sequence deltas all live per directed stream.  Every test therefore
round-trips through one encoder/decoder pair and checks exact equality
with the input batches — fidelity is the whole contract, because the
shard determinism suite compares merged traces byte-for-byte.
"""

import pickle

import pytest

try:
    from hypothesis import given, settings, strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the base image
    HAVE_HYPOTHESIS = False

from repro.sim.codec import (
    MESSAGE_HEADER_BYTES,
    PAYLOAD_CACHE,
    BatchDecoder,
    BatchEncoder,
    pickle_batch,
    unpickle_batch,
)

OPS = ("frame", "data", "open", "close")


def roundtrip(batches):
    """Feed ``batches`` through one stream; return the decoded batches."""
    encoder = BatchEncoder()
    decoder = BatchDecoder()
    return [decoder.decode(encoder.encode(batch)) for batch in batches]


def test_empty_batch():
    assert roundtrip([{}]) == [{}]


def test_single_message():
    batch = {3: [(1.5, "link:000001:a", 7, "frame", b"payload")]}
    assert roundtrip([batch]) == [batch]


def test_empty_payload():
    batch = {0: [(0.0, "ctl:c1", 1, "open", b"")]}
    assert roundtrip([batch]) == [batch]


def test_oversized_payload_uses_wide_length():
    payload = bytes(range(256)) * 300  # 76800 B > the u16 length field
    batch = {1: [(2.0, "link:000002:b", 9, "frame", payload)]}
    assert roundtrip([batch]) == [batch]


def test_wide_seq_delta():
    batch = {1: [
        (1.0, "chan", 5, "frame", b"x"),
        (2.0, "chan", 5 + 0x10000 + 3, "frame", b"y"),
    ]}
    assert roundtrip([batch]) == [batch]


def test_repeated_payload_is_elided():
    """The second send of the same payload on a channel ships no bytes."""
    payload = b"z" * 500
    encoder = BatchEncoder()
    decoder = BatchDecoder()
    first = encoder.encode({0: [(1.0, "chan", 1, "frame", payload)]})
    second = encoder.encode({0: [(2.0, "chan", 2, "frame", payload)]})
    assert len(first) > 500
    assert len(second) <= MESSAGE_HEADER_BYTES + 10  # header + blob head only
    assert decoder.decode(first) == {0: [(1.0, "chan", 1, "frame", payload)]}
    assert decoder.decode(second) == {0: [(2.0, "chan", 2, "frame", payload)]}


def test_interleaved_flows_all_elide():
    """Distinct payloads alternating on one channel each dedup — the
    failure mode of last-payload elision that the table design fixes."""
    a, b = b"A" * 200, b"B" * 200
    encoder = BatchEncoder()
    decoder = BatchDecoder()
    warm = {0: [(0.0, "chan", 0, "frame", a), (0.1, "chan", 1, "frame", b)]}
    assert decoder.decode(encoder.encode(warm)) == warm
    steady = {0: [
        (1.0, "chan", 2, "frame", a),
        (1.1, "chan", 3, "frame", b),
        (1.2, "chan", 4, "frame", a),
        (1.3, "chan", 5, "frame", b),
    ]}
    blob = encoder.encode(steady)
    assert len(blob) < 4 * (MESSAGE_HEADER_BYTES + 2) + 8
    assert decoder.decode(blob) == steady


def test_channel_names_sent_once_per_stream():
    chan = "link:" + "x" * 60
    batch1 = {0: [(1.0, chan, 1, "frame", b"p")]}
    batch2 = {0: [(2.0, chan, 2, "frame", b"q")]}
    encoder = BatchEncoder()
    first = encoder.encode(batch1)
    second = encoder.encode(batch2)
    assert len(first) - len(second) >= len(chan)


def test_payload_table_overflow_stays_mirrored():
    """Pushing past PAYLOAD_CACHE clears both tables identically."""
    encoder = BatchEncoder()
    decoder = BatchDecoder()
    seq = 0
    for round_no in range(3):
        batch = {0: []}
        for i in range(PAYLOAD_CACHE + 10):
            payload = b"%d:%d" % (round_no, i)
            batch[0].append((float(seq), "chan", seq, "frame", payload))
            seq += 1
        # Re-reference a payload that must still be resident post-clear.
        batch[0].append((float(seq), "chan", seq, "frame",
                         b"%d:%d" % (round_no, PAYLOAD_CACHE + 9)))
        seq += 1
        assert decoder.decode(encoder.encode(batch)) == batch


def test_multi_region_batch_ordering():
    batch = {
        5: [(1.0, "c5", 1, "frame", b"five")],
        2: [(1.0, "c2", 2, "data", b"two"), (2.0, "c2", 3, "close", b"")],
        9: [(0.5, "c9", 4, "open", b"nine")],
    }
    (decoded,) = roundtrip([batch])
    assert decoded == batch
    assert list(decoded) == sorted(batch)  # rids emitted in sorted order


def test_pickle_batch_roundtrip():
    batch = {1: [(1.0, "chan", 2, "frame", b"payload")]}
    assert unpickle_batch(pickle_batch(batch)) == batch


if HAVE_HYPOTHESIS:
    message = st.tuples(
        st.floats(allow_nan=False, allow_infinity=False, width=64),
        st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=1000),
            min_size=1, max_size=40,
        ),
        st.integers(min_value=0, max_value=2**32 - 1),
        st.sampled_from(OPS),
        st.binary(max_size=300),
    )
    batch_strategy = st.dictionaries(
        st.integers(min_value=0, max_value=64),
        st.lists(message, max_size=20),
        max_size=5,
    )

    def _bind_channels(batches):
        """Pin each channel to the first region it appears under — the
        invariant the real exchange guarantees (a boundary channel has
        exactly one destination region)."""
        owner = {}
        bound_batches = []
        for batch in batches:
            bound = {}
            for rid in sorted(batch):
                for message in batch[rid]:
                    dest = owner.setdefault(message[1], rid)
                    bound.setdefault(dest, []).append(message)
            bound_batches.append(bound)
        return bound_batches

    @settings(max_examples=150, deadline=None)
    @given(st.lists(batch_strategy, min_size=1, max_size=4))
    def test_stream_roundtrip_property(batches):
        batches = _bind_channels(batches)
        assert roundtrip(batches) == batches

    @settings(max_examples=50, deadline=None)
    @given(st.lists(batch_strategy, min_size=1, max_size=3))
    def test_codec_matches_pickle_semantics(batches):
        batches = _bind_channels(batches)
        via_codec = roundtrip(batches)
        via_pickle = [unpickle_batch(pickle_batch(b)) for b in batches]
        for decoded, pickled in zip(via_codec, via_pickle):
            assert decoded == {r: pickled[r] for r in sorted(pickled)}
