"""Unit tests for the simulation engine."""

import pytest

from repro.sim import SimulationEngine, SimulationError


def test_starts_at_time_zero(engine):
    assert engine.now == 0.0


def test_schedule_and_run_single_event(engine):
    fired = []
    engine.schedule(1.5, fired.append, "a")
    count = engine.run()
    assert count == 1
    assert fired == ["a"]
    assert engine.now == 1.5


def test_events_fire_in_time_order(engine):
    fired = []
    engine.schedule(3.0, fired.append, "late")
    engine.schedule(1.0, fired.append, "early")
    engine.schedule(2.0, fired.append, "middle")
    engine.run()
    assert fired == ["early", "middle", "late"]


def test_same_time_events_fire_in_schedule_order(engine):
    fired = []
    for index in range(10):
        engine.schedule(1.0, fired.append, index)
    engine.run()
    assert fired == list(range(10))


def test_priority_breaks_time_ties(engine):
    fired = []
    engine.schedule(1.0, fired.append, "normal", priority=0)
    engine.schedule(1.0, fired.append, "urgent", priority=-1)
    engine.run()
    assert fired == ["urgent", "normal"]


def test_run_until_stops_before_later_events(engine):
    fired = []
    engine.schedule(1.0, fired.append, "in")
    engine.schedule(5.0, fired.append, "out")
    engine.run(until=2.0)
    assert fired == ["in"]
    assert engine.now == 2.0
    assert engine.pending_events == 1


def test_run_until_includes_events_at_exact_boundary(engine):
    fired = []
    engine.schedule(2.0, fired.append, "boundary")
    engine.run(until=2.0)
    assert fired == ["boundary"]


def test_events_scheduled_during_run_are_processed(engine):
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            engine.schedule(1.0, chain, n + 1)

    engine.schedule(0.0, chain, 0)
    engine.run()
    assert fired == [0, 1, 2, 3]
    assert engine.now == 3.0


def test_cancelled_events_do_not_fire(engine):
    fired = []
    event = engine.schedule(1.0, fired.append, "cancelled")
    engine.schedule(2.0, fired.append, "kept")
    event.cancel()
    engine.run()
    assert fired == ["kept"]


def test_cancelled_events_not_counted_as_pending(engine):
    event = engine.schedule(1.0, lambda: None)
    assert engine.pending_events == 1
    event.cancel()
    assert engine.pending_events == 0


def test_negative_delay_rejected(engine):
    with pytest.raises(SimulationError):
        engine.schedule(-0.1, lambda: None)


def test_schedule_at_in_past_rejected(engine):
    engine.schedule(1.0, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_at(0.5, lambda: None)


def test_max_events_budget(engine):
    fired = []

    def forever():
        fired.append(1)
        engine.schedule(1.0, forever)

    engine.schedule(0.0, forever)
    count = engine.run(max_events=5)
    assert count == 5
    assert len(fired) == 5


def test_step_returns_event_or_none(engine):
    assert engine.step() is None
    engine.schedule(1.0, lambda: None)
    event = engine.step()
    assert event is not None
    assert engine.step() is None


def test_processed_events_counter(engine):
    for _ in range(4):
        engine.schedule(1.0, lambda: None)
    engine.run()
    assert engine.processed_events == 4


def test_reentrant_run_rejected(engine):
    def nested():
        engine.run()

    engine.schedule(0.0, nested)
    with pytest.raises(SimulationError):
        engine.run()


def test_run_advances_clock_to_until_even_when_queue_drains(engine):
    engine.schedule(1.0, lambda: None)
    engine.run(until=10.0)
    assert engine.now == 10.0


def test_snapshot(engine):
    engine.schedule(1.0, lambda: None)
    now, pending, processed = engine.snapshot()
    assert (now, pending, processed) == (0.0, 1, 0)
