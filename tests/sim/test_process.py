"""Unit tests for generator-based processes and signals."""

import pytest

from repro.sim import Process, Signal, SimulationEngine, sleep
from repro.sim.process import all_finished


def test_process_sleeps_and_finishes(engine):
    log = []

    def worker():
        log.append(("start", engine.now))
        yield sleep(2.0)
        log.append(("after", engine.now))
        return "done"

    process = Process.spawn(engine, worker())
    engine.run()
    assert process.finished
    assert process.result == "done"
    assert log == [("start", 0.0), ("after", 2.0)]


def test_spawn_delay(engine):
    times = []

    def worker():
        times.append(engine.now)
        yield 0.0

    Process.spawn(engine, worker(), delay=3.0)
    engine.run()
    assert times == [3.0]


def test_signal_wakes_waiting_process(engine):
    signal = Signal(engine, "go")
    values = []

    def waiter():
        value = yield signal
        values.append((value, engine.now))

    Process.spawn(engine, waiter())
    engine.schedule(5.0, signal.fire, "payload")
    engine.run()
    assert values == [("payload", 5.0)]


def test_signal_wakes_all_waiters(engine):
    signal = Signal(engine, "go")
    woken = []

    def waiter(name):
        yield signal
        woken.append(name)

    for name in ("a", "b", "c"):
        Process.spawn(engine, waiter(name))
    engine.schedule(1.0, signal.fire)
    engine.run()
    assert sorted(woken) == ["a", "b", "c"]


def test_signal_fires_repeatedly(engine):
    signal = Signal(engine, "tick")
    counts = []

    def waiter():
        yield signal
        counts.append(1)
        yield signal
        counts.append(2)

    Process.spawn(engine, waiter())
    engine.schedule(1.0, signal.fire)
    engine.schedule(2.0, signal.fire)
    engine.run()
    assert counts == [1, 2]


def test_done_signal_fires_with_result(engine):
    def worker():
        yield sleep(1.0)
        return 42

    process = Process.spawn(engine, worker())
    results = []

    def observer():
        value = yield process.done_signal
        results.append(value)

    Process.spawn(engine, observer())
    engine.run()
    assert results == [42]


def test_process_failure_recorded(engine):
    def worker():
        yield sleep(1.0)
        raise RuntimeError("boom")

    process = Process.spawn(engine, worker())
    with pytest.raises(RuntimeError):
        engine.run()
    assert process.finished
    assert isinstance(process.failure, RuntimeError)


def test_bad_yield_type_raises(engine):
    def worker():
        yield "not a sleep or signal"

    Process.spawn(engine, worker())
    with pytest.raises(TypeError):
        engine.run()


def test_negative_sleep_rejected():
    with pytest.raises(ValueError):
        sleep(-1)


def test_all_finished(engine):
    def worker():
        yield sleep(1.0)

    processes = [Process.spawn(engine, worker()) for _ in range(3)]
    assert not all_finished(processes)
    engine.run()
    assert all_finished(processes)
