"""O(1) pending-event accounting and the single-pop run loop."""

from repro.sim import SimulationEngine
from repro.sim.events import Timer


class TestPendingCounter:
    def test_schedule_increments(self):
        engine = SimulationEngine()
        for index in range(5):
            engine.schedule(float(index), lambda: None)
        assert engine.pending_events == 5

    def test_cancel_decrements_immediately(self):
        engine = SimulationEngine()
        events = [engine.schedule(1.0, lambda: None) for _ in range(4)]
        events[0].cancel()
        events[2].cancel()
        assert engine.pending_events == 2

    def test_double_cancel_counts_once(self):
        engine = SimulationEngine()
        event = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert engine.pending_events == 1

    def test_fired_events_stop_pending(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        engine.step()
        assert engine.pending_events == 1
        engine.step()
        assert engine.pending_events == 0

    def test_cancel_after_fire_does_not_underflow(self):
        engine = SimulationEngine()
        event = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        engine.run(until=1.5)
        event.cancel()  # late cancel of an already-fired event
        assert engine.pending_events == 1

    def test_cancel_inside_callback(self):
        engine = SimulationEngine()
        victim = engine.schedule(2.0, lambda: None)
        engine.schedule(1.0, victim.cancel)
        fired = engine.run()
        assert fired == 1
        assert engine.pending_events == 0

    def test_timer_restart_keeps_count_exact(self):
        engine = SimulationEngine()
        timer = Timer(engine, lambda: None)
        for _ in range(3):
            timer.start(5.0)  # each restart cancels the previous event
        assert engine.pending_events == 1
        engine.run(until=10.0)
        assert engine.pending_events == 0


class TestRunLoop:
    def test_until_boundary_preserves_future_events(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, fired.append, "a")
        engine.schedule(3.0, fired.append, "b")
        assert engine.run(until=2.0) == 1
        assert fired == ["a"]
        assert engine.now == 2.0
        assert engine.pending_events == 1
        # The pushed-back event fires on the next run.
        assert engine.run(until=4.0) == 1
        assert fired == ["a", "b"]

    def test_event_exactly_at_until_fires(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(2.0, fired.append, "x")
        engine.run(until=2.0)
        assert fired == ["x"]

    def test_max_events_budget(self):
        engine = SimulationEngine()
        for index in range(5):
            engine.schedule(float(index), lambda: None)
        assert engine.run(max_events=3) == 3
        assert engine.pending_events == 2

    def test_cancelled_events_do_not_consume_budget(self):
        engine = SimulationEngine()
        live = []
        for index in range(4):
            event = engine.schedule(float(index), live.append, index)
            if index % 2 == 0:
                event.cancel()
        assert engine.run(max_events=2) == 2
        assert live == [1, 3]

    def test_snapshot_matches_counter(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        event = engine.schedule(2.0, lambda: None)
        event.cancel()
        now, pending, processed = engine.snapshot()
        assert (now, pending, processed) == (0.0, 1, 0)
