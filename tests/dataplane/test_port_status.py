"""Tests for carrier-change propagation: link down -> OFPT_PORT_STATUS."""

import pytest

from repro.attacks import delay_attack
from repro.controllers import FloodlightController, TopologyDiscoveryApp
from repro.core import AttackModel, RuntimeInjector, SystemModel
from repro.core.lang import Attack, AttackState, DropMessage, Rule, parse_condition
from repro.core.model import gamma_no_tls
from repro.dataplane import Network, Topology
from repro.openflow.constants import PortState
from repro.sim import SimulationEngine
from tests.conftest import build_connected_network


def trunk_of(network):
    return next(link for name, link in network.links.items() if "s1-s2" in name)


class TestSwitchSide:
    def test_port_status_sent_on_carrier_loss(self, engine, small_topology):
        network, controller = build_connected_network(engine, small_topology)
        received = []

        class Spy:
            def switch_ready(self, *a):
                pass

            def switch_down(self, *a):
                pass

            def packet_in(self, *a):
                return False

            def flow_removed(self, *a):
                pass

            def port_status(self, controller, session, message):
                received.append((session.datapath_id, message.port.port_no,
                                 message.port.state))

            def error_received(self, *a):
                pass

            def stats_reply(self, *a):
                pass

        controller.apps.insert(0, Spy())
        trunk_of(network).set_up(False)
        engine.run(until=engine.now + 1.0)
        # Both trunk endpoints (s1 and s2) report their port down.
        assert len(received) == 2
        assert all(state & int(PortState.LINK_DOWN) for _d, _p, state in received)
        assert {dpid for dpid, _p, _s in received} == {1, 2}

    def test_port_status_on_recovery(self, engine, small_topology):
        network, _controller = build_connected_network(engine, small_topology)
        trunk = trunk_of(network)
        trunk.set_up(False)
        engine.run(until=engine.now + 0.5)
        before = network.total_stat("port_status_sent")
        trunk.set_up(True)
        engine.run(until=engine.now + 0.5)
        assert network.total_stat("port_status_sent") == before + 2

    def test_redundant_set_up_is_silent(self, engine, small_topology):
        network, _controller = build_connected_network(engine, small_topology)
        trunk = trunk_of(network)
        trunk.set_up(True)  # already up
        engine.run(until=engine.now + 0.5)
        assert network.total_stat("port_status_sent") == 0

    def test_down_port_not_flooded(self, engine, small_topology):
        network, _controller = build_connected_network(engine, small_topology)
        trunk_of(network).set_up(False)
        engine.run(until=engine.now + 0.5)
        # A broadcast entering s1 must not be queued toward the dead trunk.
        run = network.host("h1").ping(network.host_ip("h2"), count=1)
        engine.run(until=engine.now + 5.0)
        assert run.result.received == 0  # no path; and no crash


class TestDiscoveryIntegration:
    def build(self, engine, attack=None):
        topo = Topology("ps")
        topo.add_host("h1")
        topo.add_host("h2")
        topo.add_switch("s1", datapath_id=1)
        topo.add_switch("s2", datapath_id=2)
        topo.add_link("h1", "s1")
        topo.add_link("s1", "s2")
        topo.add_link("h2", "s2")
        network = Network(engine, topo)
        disco = TopologyDiscoveryApp(probe_interval=1.0, link_ttl=8.0)
        controller = FloodlightController(engine, extra_apps=[disco])
        system = SystemModel.from_topology(topo, ["c1"])
        model = AttackModel.no_tls_everywhere(system)
        injector = RuntimeInjector(engine, model, attack)
        injector.install(network, {"c1": controller})
        network.start()
        return network, disco

    def test_port_down_purges_links_immediately(self, engine):
        network, disco = self.build(engine)
        engine.run(until=8.0)
        assert disco.has_link(1, 2, engine.now)
        trunk_of(network).set_up(False)
        engine.run(until=engine.now + 0.5)
        # Purged right away — well before the 8 s TTL could lapse.
        assert not disco.has_link(1, 2)
        assert not disco.has_link(2, 1)

    def test_suppressing_port_status_keeps_stale_topology(self, engine):
        """An attack hiding PORT_STATUS keeps the controller's topology
        stale until the probe TTL finally expires the links."""
        rule = Rule("hide_port_down", frozenset({("c1", "s1"), ("c1", "s2")}),
                    gamma_no_tls(), parse_condition("type = PORT_STATUS"),
                    [DropMessage()])
        attack = Attack("port-status-suppression",
                        [AttackState("sigma1", [rule])], "sigma1")
        network, disco = self.build(engine, attack)
        engine.run(until=8.0)
        assert disco.has_link(1, 2, engine.now)
        down_at = engine.now
        trunk_of(network).set_up(False)
        engine.run(until=down_at + 2.0)
        # Stale: the link is still believed alive (PORT_STATUS suppressed).
        assert disco.has_link(1, 2, engine.now)
        # Only the TTL eventually clears it (probes stopped crossing).
        engine.run(until=down_at + 12.0)
        assert not disco.has_link(1, 2, engine.now)
