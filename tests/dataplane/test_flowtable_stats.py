"""FlowTable stat hygiene across back-to-back runs on one worker.

``reset_run_state`` resets process-global counters; per-table stats
(``occupancy_peak``, ``capacity_evictions``, lookup counters) live on
:class:`FlowTable` instances that every run rebuilds — these tests pin
both halves: the explicit ``reset_stats`` API, and that two cells run
back-to-back in one process report stats independent of run order.
"""

from repro.campaign import ResultStore, reset_run_state
from repro.campaign.spec import CampaignSpec
from repro.campaign.runner import run_campaign
from repro.dataplane.flowtable import FlowTable
from repro.experiments.workload import run_cell
from repro.netlib import Ipv4Address, MacAddress
from repro.openflow import FlowMod, FlowModCommand, Match, OutputAction
from repro.openflow.match import OFP_VLAN_NONE


def exact_match(port):
    return Match(
        in_port=1, dl_src=MacAddress("00:00:00:00:00:01"),
        dl_dst=MacAddress("00:00:00:00:00:02"), dl_vlan=OFP_VLAN_NONE,
        dl_vlan_pcp=0, dl_type=0x0800, nw_tos=0, nw_proto=6,
        nw_src=Ipv4Address("10.0.0.1"), nw_dst=Ipv4Address("10.0.0.2"),
        tp_src=1234, tp_dst=port,
    )


def test_reset_stats_zeroes_counters_but_keeps_entries():
    table = FlowTable(max_entries=4, eviction="lru")
    for i in range(6):  # 4 installs + 2 capacity evictions
        flow_mod = FlowMod(exact_match(1000 + i), command=FlowModCommand.ADD,
                           actions=[OutputAction(2)])
        table.apply_flow_mod(flow_mod, now=0.1 * i)
    table.lookup(exact_match(1005).specified_fields())
    assert table.occupancy_peak == 4
    assert table.capacity_evictions == 2
    assert table.lookups == 1
    table.reset_stats()
    assert (table.occupancy_peak, table.capacity_evictions,
            table.lookups, table.matched, table.lookup_fast_hits) == (0,) * 5
    assert len(table) == 4  # entries untouched


HEAVY = dict(workload="table-overflow", topology="fat-tree-k4",
             controller="pox", schedule="constant:1500", keys=512,
             senders=2, duration_s=0.3, table_capacity=64,
             table_eviction="lru")
LIGHT = dict(workload="table-overflow", topology="fat-tree-k4",
             controller="pox", schedule="constant:200", keys=8,
             senders=1, duration_s=0.2, table_capacity=64,
             table_eviction="lru")


def _cell(params):
    reset_run_state()
    record = run_cell(**params)
    return (record["table_occupancy_peak"], record["evictions_capacity"],
            record["evictions_idle"], record["table_misses"])


def test_two_cells_back_to_back_report_independent_stats():
    """A light cell after a heavy cell must not inherit the heavy run's
    occupancy peak or eviction counters (the persistent-worker path)."""
    light_alone = _cell(LIGHT)
    heavy = _cell(HEAVY)
    light_after_heavy = _cell(LIGHT)
    assert heavy[0] > light_alone[0]  # the heavy cell really is heavier
    assert heavy[1] > 0  # and really evicted at capacity
    assert light_after_heavy == light_alone


def test_campaign_worker_runs_report_independent_stats(tmp_path):
    """Two seeds of one cell through the campaign runner on a single
    worker: identical deterministic stats, no cross-run accumulation."""
    params = {k: v for k, v in HEAVY.items()
              if k not in ("topology", "controller")}
    spec = CampaignSpec(
        name="stats-isolation",
        attacks=["passthrough"],
        controllers=["pox"],
        topologies=["fat-tree-k4"],
        seeds=[0, 1],
        baseline=None,
        experiment="workload",
        params=dict(params, duration_s=0.2, schedule="constant:800"),
    )
    store = ResultStore(tmp_path / "runs.jsonl")
    summary = run_campaign(spec, store, workers=1)
    assert summary.succeeded == 2
    records = store.ok_records()
    stats = [(r["metrics"]["table_occupancy_peak"],
              r["metrics"]["evictions_capacity"],
              r["metrics"]["table_misses"]) for r in records]
    # Same cell, same worker process, different seeds: the table stats
    # are a pure function of the cell, so run 2 matches run 1 exactly
    # instead of inheriting its peaks/counters.
    assert stats[0] == stats[1]
    assert stats[0][0] > 0
