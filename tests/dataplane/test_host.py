"""Unit tests for the host network stack (ARP, ICMP, TCP workloads)."""

import pytest

from repro.dataplane import Host
from repro.netlib import (
    ArpPacket,
    EtherType,
    EthernetFrame,
    Ipv4Address,
    MacAddress,
    decode_ethernet,
)
from repro.sim import SimulationEngine


def make_pair(engine):
    """Two hosts wired back to back with a zero-latency software 'cable'."""
    h1 = Host(engine, "h1", MacAddress(1), Ipv4Address("10.0.0.1"))
    h2 = Host(engine, "h2", MacAddress(2), Ipv4Address("10.0.0.2"))
    h1.attach(lambda data: engine.schedule(0.0001, h2.frame_received, data))
    h2.attach(lambda data: engine.schedule(0.0001, h1.frame_received, data))
    return h1, h2


class TestArp:
    def test_resolution_then_delivery(self):
        engine = SimulationEngine()
        h1, h2 = make_pair(engine)
        run = h1.ping(h2.ip, count=1)
        engine.run(until=5.0)
        assert run.result.received == 1
        assert h1.arp_table[h2.ip] == h2.mac
        assert h1.stats["arp_requests_sent"] == 1

    def test_opportunistic_learning_from_request(self):
        engine = SimulationEngine()
        h1, h2 = make_pair(engine)
        h1.ping(h2.ip, count=1)
        engine.run(until=5.0)
        # h2 learned h1's mapping from the request itself.
        assert h2.arp_table[h1.ip] == h1.mac
        assert h2.stats["arp_replies_sent"] == 1

    def test_queued_packets_flushed_after_resolution(self):
        engine = SimulationEngine()
        h1, h2 = make_pair(engine)
        run = h1.ping(h2.ip, count=3, interval=0.001)  # all before resolution
        engine.run(until=5.0)
        assert run.result.received == 3

    def test_resolution_failure_drops_after_retries(self):
        engine = SimulationEngine()
        h1 = Host(engine, "h1", MacAddress(1), Ipv4Address("10.0.0.1"))
        h1.attach(lambda data: None)  # black hole
        run = h1.ping(Ipv4Address("10.0.0.99"), count=1)
        engine.run(until=10.0)
        assert run.result.received == 0
        assert h1.stats["arp_resolution_failures"] == 1
        assert h1.stats["arp_requests_sent"] == Host.ARP_RETRIES

    def test_unicast_for_other_host_ignored(self):
        engine = SimulationEngine()
        h1, _h2 = make_pair(engine)
        stranger = EthernetFrame(MacAddress(9), MacAddress(8), EtherType.IPV4, b"x")
        h1.frame_received(stranger.pack())
        assert h1.stats["icmp_requests_answered"] == 0


class TestPing:
    def test_rtt_measured(self):
        engine = SimulationEngine()
        h1, h2 = make_pair(engine)
        run = h1.ping(h2.ip, count=2, interval=1.0)
        engine.run(until=10.0)
        result = run.result
        assert result.received == 2
        assert all(rtt is not None and rtt < 0.01 for rtt in result.rtts)
        assert result.min_rtt <= result.median_rtt <= result.max_rtt

    def test_loss_accounting(self):
        engine = SimulationEngine()
        h1 = Host(engine, "h1", MacAddress(1), Ipv4Address("10.0.0.1"))
        h1.attach(lambda data: None)
        run = h1.ping(Ipv4Address("10.0.0.2"), count=4, interval=0.5)
        engine.run(until=10.0)
        assert run.result.loss_rate == 1.0
        assert not run.result.any_success
        assert run.result.median_rtt is None

    def test_done_signal_fires_once(self):
        engine = SimulationEngine()
        h1, h2 = make_pair(engine)
        run = h1.ping(h2.ip, count=1)
        engine.run(until=10.0)
        assert run.done.fire_count == 1

    def test_late_reply_not_counted(self):
        engine = SimulationEngine()
        h1 = Host(engine, "h1", MacAddress(1), Ipv4Address("10.0.0.1"))
        h2 = Host(engine, "h2", MacAddress(2), Ipv4Address("10.0.0.2"))
        # 0.8 s one-way: RTT 1.6 s > 1 s timeout.
        h1.attach(lambda data: engine.schedule(0.8, h2.frame_received, data))
        h2.attach(lambda data: engine.schedule(0.8, h1.frame_received, data))
        run = h1.ping(h2.ip, count=1, timeout=1.0)
        engine.run(until=20.0)
        assert run.result.received == 0


class TestIperf:
    def test_transfer_measures_throughput(self):
        engine = SimulationEngine()
        h1, h2 = make_pair(engine)
        h2.start_iperf_server()
        run = h1.run_iperf_client(h2.ip, duration=0.05)
        engine.run(until=20.0)
        result = run.result
        assert result.connected
        assert result.bytes_acked > 0
        assert result.throughput_mbps > 1.0

    def test_connect_failure_yields_zero(self):
        engine = SimulationEngine()
        h1 = Host(engine, "h1", MacAddress(1), Ipv4Address("10.0.0.1"))
        h1.attach(lambda data: None)
        run = h1.run_iperf_client(Ipv4Address("10.0.0.2"), duration=1.0)
        engine.run(until=30.0)
        assert not run.result.connected
        assert run.result.throughput_bps == 0.0

    def test_no_server_means_rst_and_zero(self):
        engine = SimulationEngine()
        h1, h2 = make_pair(engine)  # h2 has no iperf server
        run = h1.run_iperf_client(h2.ip, duration=1.0)
        engine.run(until=30.0)
        assert not run.result.connected

    def test_retransmission_recovers_from_loss(self):
        engine = SimulationEngine()
        h1 = Host(engine, "h1", MacAddress(1), Ipv4Address("10.0.0.1"))
        h2 = Host(engine, "h2", MacAddress(2), Ipv4Address("10.0.0.2"))
        dropped = {"count": 0}

        def lossy(data):
            # Drop exactly one data segment mid-stream.
            decoded = decode_ethernet(data)
            if (decoded.l4 is not None and hasattr(decoded.l4, "payload")
                    and len(decoded.l4.payload) > 1000
                    and dropped["count"] == 0):
                dropped["count"] += 1
                return
            engine.schedule(0.0001, h2.frame_received, data)

        h1.attach(lossy)
        h2.attach(lambda data: engine.schedule(0.0001, h1.frame_received, data))
        h2.start_iperf_server()
        run = h1.run_iperf_client(h2.ip, duration=0.1)
        engine.run(until=30.0)
        assert dropped["count"] == 1
        assert run.result.retransmits >= 1
        assert run.result.bytes_acked > 0

    def test_server_tracks_received_bytes(self):
        engine = SimulationEngine()
        h1, h2 = make_pair(engine)
        server = h2.start_iperf_server()
        run = h1.run_iperf_client(h2.ip, duration=0.05)
        engine.run(until=20.0)
        total = sum(server.bytes_received.values())
        assert total >= run.result.bytes_acked


class TestUdp:
    def test_udp_handler_dispatch(self):
        engine = SimulationEngine()
        h1, h2 = make_pair(engine)
        received = []
        h2.register_udp_handler(9999, lambda src, dgram: received.append(
            (str(src), dgram.payload)))
        h1.send_udp(h2.ip, 1234, 9999, b"hello")
        engine.run(until=10.0)
        assert received == [("10.0.0.1", b"hello")]

    def test_unregistered_port_ignored(self):
        engine = SimulationEngine()
        h1, h2 = make_pair(engine)
        h1.send_udp(h2.ip, 1234, 777, b"nobody-home")
        engine.run(until=10.0)  # must not raise


def test_unattached_host_raises():
    engine = SimulationEngine()
    host = Host(engine, "h1", MacAddress(1), Ipv4Address("10.0.0.1"))
    with pytest.raises(RuntimeError):
        host.send_ip(Ipv4Address("10.0.0.2"), 1, b"")
