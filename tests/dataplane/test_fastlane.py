"""The packet fast lane: interning, key memoization, and invalidation."""

import pytest

from repro.netlib import (
    EtherType,
    EthernetFrame,
    Ipv4Address,
    Ipv4Packet,
    MacAddress,
    TcpSegment,
)
from repro.netlib import fastframe
from repro.netlib.fastframe import FastFrame
from repro.openflow.actions import (
    OutputAction,
    SetDlDstAction,
    SetNwDstAction,
)
from repro.openflow.constants import Port
from repro.openflow.match import Match, extract_packet_fields, field_tuple
from repro.dataplane.switch import FailMode, OpenFlowSwitch
from repro.sim.engine import SimulationEngine

MAC_A = MacAddress("00:00:00:00:00:0a")
MAC_B = MacAddress("00:00:00:00:00:0b")
IP_A = Ipv4Address("10.0.0.10")
IP_B = Ipv4Address("10.0.0.11")


def tcp_frame(payload=b"x" * 64) -> bytes:
    segment = TcpSegment(40000, 5001, payload=payload)
    packet = Ipv4Packet(IP_A, IP_B, 6, segment.pack())
    return EthernetFrame(MAC_B, MAC_A, EtherType.IPV4, packet.pack()).pack()


class TestInterning:
    def test_identical_content_interns_to_one_object(self):
        first, hit1 = fastframe.intern(tcp_frame())
        second, hit2 = fastframe.intern(tcp_frame())
        assert not hit1 and hit2
        assert first is second
        assert type(first) is FastFrame

    def test_interned_frame_passes_through_unchanged(self):
        frame, _ = fastframe.intern(tcp_frame())
        again, hit = fastframe.intern(frame)
        assert again is frame and not hit

    def test_intern_preserves_bytes_semantics(self):
        raw = tcp_frame()
        frame, _ = fastframe.intern(raw)
        assert frame == raw
        assert bytes(frame) == raw
        assert hash(frame) == hash(raw)
        assert len(frame) == len(raw)

    def test_pool_is_bounded(self):
        for index in range(fastframe.POOL_MAX + 10):
            fastframe.intern(tcp_frame(payload=index.to_bytes(4, "big")))
        assert fastframe.counters["pool_evictions"] >= 1

    def test_disabled_fast_lane_is_a_passthrough(self):
        fastframe.set_fast_lane(False)
        raw = tcp_frame()
        frame, hit = fastframe.intern(raw)
        assert frame is raw and not hit


class TestFlowKeyMemoization:
    def test_key_computed_once_per_port(self):
        frame, _ = fastframe.intern(tcp_frame())
        fields1, hit1 = fastframe.flow_key(frame, 1)
        fields2, hit2 = fastframe.flow_key(frame, 1)
        assert not hit1 and hit2
        assert fields2 is fields1  # the same dict, not a re-parse

    def test_key_matches_plain_extraction(self):
        raw = tcp_frame()
        frame, _ = fastframe.intern(raw)
        fields, _ = fastframe.flow_key(frame, 3)
        expected = extract_packet_fields(raw, 3)
        assert {k: fields[k] for k in expected} == expected
        assert field_tuple(fields) == field_tuple(expected)

    def test_distinct_ports_get_distinct_keys(self):
        frame, _ = fastframe.intern(tcp_frame())
        fields1, _ = fastframe.flow_key(frame, 1)
        fields2, hit = fastframe.flow_key(frame, 2)
        assert not hit
        assert fields1["in_port"] == 1 and fields2["in_port"] == 2
        assert field_tuple(fields1) != field_tuple(fields2)

    def test_memoized_tuple_equals_field_tuple(self):
        frame, _ = fastframe.intern(tcp_frame())
        fields, _ = fastframe.flow_key(frame, 7)
        memo = fields[fastframe.TUPLE_KEY]
        stripped = {k: v for k, v in fields.items() if k != fastframe.TUPLE_KEY}
        assert memo == field_tuple(stripped)

    def test_plain_bytes_bypass_the_cache(self):
        raw = tcp_frame()
        fields, hit = fastframe.flow_key(raw, 1)
        assert not hit
        assert fastframe.TUPLE_KEY not in fields

    def test_mac_pair_memoized(self):
        frame, _ = fastframe.intern(tcp_frame())
        assert fastframe.mac_pair(frame) == (MAC_A, MAC_B)
        assert frame._macs == (MAC_A, MAC_B)
        assert fastframe.mac_pair(b"\x00" * 5) is None


class TestDeriveFrame:
    def test_set_dl_dst_replaces_only_that_field(self):
        parent, _ = fastframe.intern(tcp_frame())
        parent_fields, _ = fastframe.flow_key(parent, 1)
        new_mac = MacAddress("00:00:00:00:00:99")
        frame = EthernetFrame.unpack(parent)
        frame.dst = new_mac
        derived = fastframe.derive_frame(frame.pack(), parent, "dl_dst", new_mac)
        derived_fields, _ = fastframe.flow_key(derived, 1)
        # The derived key equals a from-scratch extraction of the new bytes.
        expected = extract_packet_fields(bytes(derived), 1)
        assert {k: derived_fields[k] for k in expected} == expected
        assert derived_fields["dl_dst"] == new_mac
        assert derived_fields["dl_src"] == parent_fields["dl_src"]

    def test_unparsed_parent_passes_through(self):
        parent, _ = fastframe.intern(tcp_frame())  # key never computed
        derived = fastframe.derive_frame(b"\x00" * 60, parent, "dl_dst", MAC_A)
        assert type(derived) is bytes


def make_switch(fail_mode=FailMode.SECURE):
    engine = SimulationEngine()
    switch = OpenFlowSwitch(engine, "s1", 1, fail_mode=fail_mode)
    received = {1: [], 2: []}
    switch.attach_port(1, received[1].append)
    switch.attach_port(2, received[2].append)
    return engine, switch, received


class TestSwitchFastLane:
    def install(self, switch, raw, in_port=1, out_port=2, actions=None):
        match = Match.from_packet(raw, in_port)
        from repro.openflow.messages import FlowMod

        flow_mod = FlowMod(match, actions=actions or [OutputAction(out_port)])
        switch.flow_table.apply_flow_mod(flow_mod, switch.engine.now)

    def test_repeat_frames_hit_the_key_cache(self):
        engine, switch, received = make_switch()
        raw = tcp_frame()
        self.install(switch, raw)
        for _ in range(5):
            switch.frame_received(1, raw)
        assert len(received[2]) == 5
        assert switch.stats["flowkey_cache_hits"] == 4
        assert switch.stats["frames_interned"] == 4
        # Delivered bytes are exactly the sent bytes.
        assert all(frame == raw for frame in received[2])

    def test_stats_counters_exist_in_snapshot(self):
        _, switch, _ = make_switch()
        assert "flowkey_cache_hits" in switch.stats
        assert "frames_interned" in switch.stats

    def test_set_field_actions_deliver_rewritten_bytes(self):
        engine, switch, received = make_switch()
        raw = tcp_frame()
        new_mac = MacAddress("00:00:00:00:00:42")
        new_ip = Ipv4Address("10.9.9.9")
        self.install(
            switch, raw,
            actions=[SetDlDstAction(new_mac), SetNwDstAction(new_ip),
                     OutputAction(2)],
        )
        switch.frame_received(1, raw)
        (delivered,) = received[2]
        fields = extract_packet_fields(bytes(delivered), 1)
        assert fields["dl_dst"] == new_mac
        assert fields["nw_dst"] == new_ip
        assert fields["tp_src"] == 40000  # L4 untouched
        # And the carried (derived) key agrees with the bytes.
        carried, _ = fastframe.flow_key(delivered, 1)
        assert {k: carried[k] for k in fields} == fields

    def test_standalone_forwarding_learns_from_mac_pair(self):
        engine, switch, received = make_switch(fail_mode=FailMode.STANDALONE)
        switch.standalone_active = True
        raw = tcp_frame()
        switch.frame_received(1, raw)  # unknown dst: flooded out 2
        assert received[2] == [raw]
        # Runt frames are silently dropped, as EthernetFrame.unpack was.
        switch.frame_received(1, b"\x00" * 8)
        assert received[2] == [raw]

    def test_fast_lane_off_produces_identical_forwarding(self):
        raw = tcp_frame()
        outputs = {}
        for enabled in (True, False):
            fastframe.set_fast_lane(enabled)
            fastframe.clear_pool()
            engine, switch, received = make_switch()
            self.install(switch, raw)
            for _ in range(3):
                switch.frame_received(1, raw)
            outputs[enabled] = [bytes(f) for f in received[2]]
            assert switch.stats["flow_matches"] == 3
        assert outputs[True] == outputs[False]
