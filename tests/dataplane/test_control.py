"""Unit tests for the control-channel plumbing."""

from repro.dataplane import connect_endpoints
from repro.sim import SimulationEngine


class FakeEndpoint:
    def __init__(self):
        self.opened = []
        self.received = []
        self.closed = []

    def channel_opened(self, channel):
        self.opened.append(channel)

    def bytes_received(self, channel, data):
        self.received.append(data)

    def channel_closed(self, channel):
        self.closed.append(channel)


def test_both_endpoints_notified_after_latency():
    engine = SimulationEngine()
    a, b = FakeEndpoint(), FakeEndpoint()
    connect_endpoints(engine, a, b, latency_s=0.5)
    assert a.opened == [] and b.opened == []
    engine.run()
    assert len(a.opened) == 1 and len(b.opened) == 1
    assert engine.now == 0.5


def test_bidirectional_bytes():
    engine = SimulationEngine()
    a, b = FakeEndpoint(), FakeEndpoint()
    chan_a, chan_b = connect_endpoints(engine, a, b, latency_s=0.1)
    chan_a.send(b"from-a")
    chan_b.send(b"from-b")
    engine.run()
    assert b.received == [b"from-a"]
    assert a.received == [b"from-b"]


def test_in_order_delivery():
    engine = SimulationEngine()
    a, b = FakeEndpoint(), FakeEndpoint()
    chan_a, _chan_b = connect_endpoints(engine, a, b, latency_s=0.1)
    for index in range(10):
        chan_a.send(bytes([index]))
    engine.run()
    assert b.received == [bytes([index]) for index in range(10)]


def test_close_notifies_peer_only():
    engine = SimulationEngine()
    a, b = FakeEndpoint(), FakeEndpoint()
    chan_a, chan_b = connect_endpoints(engine, a, b, latency_s=0.1)
    engine.run()
    chan_a.close()
    engine.run()
    assert b.closed == [chan_b]
    assert a.closed == []  # the closer gets no callback


def test_send_after_close_is_silent():
    engine = SimulationEngine()
    a, b = FakeEndpoint(), FakeEndpoint()
    chan_a, _chan_b = connect_endpoints(engine, a, b, latency_s=0.1)
    engine.run()
    chan_a.close()
    chan_a.send(b"lost")
    engine.run()
    assert b.received == []


def test_bytes_in_flight_when_receiver_closes_are_dropped():
    engine = SimulationEngine()
    a, b = FakeEndpoint(), FakeEndpoint()
    chan_a, chan_b = connect_endpoints(engine, a, b, latency_s=1.0)
    engine.run(until=1.0)
    chan_a.send(b"slow")       # arrives at t=2
    engine.schedule(0.5, chan_b.close)  # b closes at t=1.5
    engine.run()
    assert b.received == []


def test_counters():
    engine = SimulationEngine()
    a, b = FakeEndpoint(), FakeEndpoint()
    chan_a, chan_b = connect_endpoints(engine, a, b, latency_s=0.1)
    chan_a.send(b"12345")
    engine.run()
    assert chan_a.bytes_sent == 5
    assert chan_b.bytes_delivered == 5
