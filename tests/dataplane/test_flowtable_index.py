"""The flow table's exact-match hash index vs the linear scan.

``FlowTable(indexed=True)`` (the default) must return exactly the entry the
linear scan would, for every mix of fully-specified and wildcard entries,
across adds, replacements, deletes, expiry, and clears.
"""

import pytest

from repro.dataplane.flowtable import FlowTable, _exact_key
from repro.netlib import Ipv4Address, MacAddress
from repro.openflow import FlowMod, FlowModCommand, Match, OutputAction
from repro.openflow.constants import OFP_NO_BUFFER, Port
from repro.openflow.match import OFP_VLAN_NONE, extract_packet_fields
from repro.netlib.ethernet import EthernetFrame
from repro.netlib.ipv4 import Ipv4Packet
from repro.netlib.tcp import TcpSegment


def exact_match(host_octet=2, port=80, in_port=1):
    """A fully-specified twelve-tuple (what Match.from_packet produces)."""
    return Match(
        in_port=in_port,
        dl_src=MacAddress("00:00:00:00:00:01"),
        dl_dst=MacAddress("00:00:00:00:00:02"),
        dl_vlan=OFP_VLAN_NONE,
        dl_vlan_pcp=0,
        dl_type=0x0800,
        nw_tos=0,
        nw_proto=6,
        nw_src=Ipv4Address("10.0.0.1"),
        nw_dst=Ipv4Address(f"10.0.0.{host_octet}"),
        tp_src=1234,
        tp_dst=port,
    )


def fields_for(match):
    """The packet-field dict a packet matching ``match`` exactly yields."""
    return {name: getattr(match, name)
            for name in ("in_port", "dl_src", "dl_dst", "dl_vlan",
                         "dl_vlan_pcp", "dl_type", "nw_tos", "nw_proto",
                         "nw_src", "nw_dst", "tp_src", "tp_dst")}


def add(table, match, priority=0x8000, out_port=2, **kwargs):
    flow_mod = FlowMod(match, command=FlowModCommand.ADD, priority=priority,
                       actions=[OutputAction(out_port)], **kwargs)
    return table.apply_flow_mod(flow_mod, now=0.0)


class TestExactKey:
    def test_fully_specified_match_is_keyed(self):
        assert _exact_key(exact_match()) is not None

    def test_wildcarded_field_is_not_keyed(self):
        assert _exact_key(Match(in_port=1, tp_dst=80)) is None
        assert _exact_key(Match.wildcard_all()) is None

    def test_cidr_prefix_is_not_keyed(self):
        match = exact_match()
        match.nw_src_prefix = 24
        assert _exact_key(match) is None


class TestIndexedLookup:
    def test_exact_entry_found_via_hash(self):
        table = FlowTable()
        add(table, exact_match(), out_port=7)
        entry = table.lookup(fields_for(exact_match()))
        assert entry is not None
        assert entry.actions[0].port == 7
        assert table.lookup_fast_hits == 1

    def test_miss_returns_none(self):
        table = FlowTable()
        add(table, exact_match(2))
        assert table.lookup(fields_for(exact_match(3))) is None
        assert table.lookup_fast_hits == 0

    def test_higher_priority_wildcard_beats_exact(self):
        table = FlowTable()
        add(table, exact_match(), priority=100, out_port=2)
        add(table, Match(in_port=1), priority=200, out_port=9)
        winner = table.lookup(fields_for(exact_match()))
        assert winner.actions[0].port == 9
        assert table.lookup_fast_hits == 0

    def test_exact_beats_lower_priority_wildcard(self):
        table = FlowTable()
        add(table, Match(in_port=1), priority=100, out_port=9)
        add(table, exact_match(), priority=200, out_port=2)
        winner = table.lookup(fields_for(exact_match()))
        assert winner.actions[0].port == 2
        assert table.lookup_fast_hits == 1

    def test_priority_tie_resolves_to_earliest_install(self):
        table = FlowTable()
        add(table, Match(in_port=1), priority=100, out_port=3)
        add(table, exact_match(), priority=100, out_port=5)
        winner = table.lookup(fields_for(exact_match()))
        assert winner.actions[0].port == 3  # wildcard installed first

    def test_add_replaces_indexed_entry(self):
        table = FlowTable()
        add(table, exact_match(), out_port=2)
        add(table, exact_match(), out_port=8)  # same match+priority replaces
        assert len(table) == 1
        assert table.lookup(fields_for(exact_match())).actions[0].port == 8

    def test_delete_removes_from_index(self):
        table = FlowTable()
        add(table, exact_match())
        delete = FlowMod(Match.wildcard_all(), command=FlowModCommand.DELETE,
                         out_port=Port.NONE)
        removed, _ = table.apply_flow_mod(delete, now=0.0)
        assert len(removed) == 1
        assert table.lookup(fields_for(exact_match())) is None

    def test_expire_removes_from_index(self):
        table = FlowTable()
        add(table, exact_match(), hard_timeout=5)
        assert table.lookup(fields_for(exact_match())) is not None
        expired = table.expire(now=10.0)
        assert [reason for _, reason in expired] == ["hard"]
        assert table.lookup(fields_for(exact_match())) is None

    def test_clear_empties_index(self):
        table = FlowTable()
        add(table, exact_match())
        add(table, Match(in_port=1))
        table.clear()
        assert table.lookup(fields_for(exact_match())) is None


class TestEquivalenceWithLinearScan:
    def build_pair(self):
        return FlowTable(indexed=True), FlowTable(indexed=False)

    def populated(self):
        indexed, linear = self.build_pair()
        for table in (indexed, linear):
            # Mix of exact entries, overlapping wildcards, and priorities.
            for octet in range(2, 10):
                add(table, exact_match(octet), priority=100 + octet,
                    out_port=octet)
            add(table, Match(in_port=1), priority=50, out_port=20)
            add(table, Match(tp_dst=80), priority=105, out_port=21)
            add(table, Match(nw_dst=Ipv4Address("10.0.0.0"),
                             nw_dst_prefix=24), priority=300, out_port=22)
            add(table, Match.wildcard_all(), priority=1, out_port=23)
        return indexed, linear

    def probes(self):
        probes = [fields_for(exact_match(octet)) for octet in range(2, 12)]
        no_ip = dict(fields_for(exact_match()),
                     nw_dst=Ipv4Address("192.168.1.1"))
        probes.append(no_ip)
        return probes

    def test_every_probe_agrees(self):
        indexed, linear = self.populated()
        for fields in self.probes():
            fast = indexed.lookup(fields)
            slow = linear.lookup(fields)
            if slow is None:
                assert fast is None
            else:
                assert fast is not None
                # Entry orders are a process-global counter, so identify the
                # winner by its (priority, output port) instead.
                assert (fast.priority, fast.actions[0].port) == \
                    (slow.priority, slow.actions[0].port)

    def test_agreement_survives_mutation(self):
        indexed, linear = self.populated()
        delete = FlowMod(Match(in_port=1), command=FlowModCommand.DELETE)
        for table in (indexed, linear):
            table.apply_flow_mod(delete, now=0.0)
        for fields in self.probes():
            fast = indexed.lookup(fields)
            slow = linear.lookup(fields)
            assert (fast is None) == (slow is None)
            if fast is not None:
                assert (fast.priority, fast.actions[0].port) == \
                    (slow.priority, slow.actions[0].port)


class TestPacketPathStillWorks:
    def test_lookup_from_real_packet_fields(self):
        """End-to-end: extract fields from wire bytes, hit the hash index."""
        payload = TcpSegment(1234, 80, seq=1, ack=0, flags=0x02).pack()
        ip = Ipv4Packet(Ipv4Address("10.0.0.1"), Ipv4Address("10.0.0.2"),
                        6, payload).pack()
        frame = EthernetFrame(MacAddress("00:00:00:00:00:02"),
                              MacAddress("00:00:00:00:00:01"),
                              0x0800, ip).pack()
        fields = extract_packet_fields(frame, in_port=1)
        table = FlowTable()
        add(table, Match.from_packet(frame, in_port=1), out_port=6)
        entry = table.lookup(fields)
        assert entry is not None
        assert entry.actions[0].port == 6
        assert table.lookup_fast_hits == 1
