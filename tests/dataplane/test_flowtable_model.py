"""Model-based test: FlowTable against an independent reference model.

The reference restricts itself to exact ``in_port`` matches (plus the
match-all wildcard), where OF 1.0 semantics are unambiguous: highest
priority wins, ties go to the earliest-installed entry, ADD with an
identical match+priority replaces, non-strict DELETE removes subsumed
entries, strict DELETE removes exact ones.
"""

from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.dataplane import FlowTable
from repro.netlib import Ipv4Address, MacAddress
from repro.openflow import FlowMod, FlowModCommand, Match, OutputAction

PORTS = (1, 2, 3)
PRIORITIES = (0, 1, 2, 3)

FIELDS_BY_PORT = {
    port: {
        "in_port": port,
        "dl_src": MacAddress(1),
        "dl_dst": MacAddress(2),
        "dl_vlan": 0xFFFF,
        "dl_vlan_pcp": 0,
        "dl_type": 0x0800,
        "nw_tos": 0,
        "nw_proto": 6,
        "nw_src": Ipv4Address("10.0.0.1"),
        "nw_dst": Ipv4Address("10.0.0.2"),
        "tp_src": 1,
        "tp_dst": 2,
    }
    for port in PORTS
}


class _ModelEntry:
    counter = 0

    def __init__(self, in_port, priority, out_port):
        self.in_port = in_port      # None = wildcard
        self.priority = priority
        self.out_port = out_port
        _ModelEntry.counter += 1
        self.order = _ModelEntry.counter

    def matches(self, port):
        return self.in_port is None or self.in_port == port


class FlowTableMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.table = FlowTable()
        self.model = []

    def _match_for(self, in_port):
        return Match(in_port=in_port) if in_port is not None else Match.wildcard_all()

    @rule(in_port=st.sampled_from(PORTS + (None,)),
          priority=st.sampled_from(PRIORITIES),
          out_port=st.integers(min_value=10, max_value=14))
    def add(self, in_port, priority, out_port):
        flow_mod = FlowMod(self._match_for(in_port), FlowModCommand.ADD,
                           priority=priority, actions=[OutputAction(out_port)])
        self.table.apply_flow_mod(flow_mod, 0.0)
        # Model: identical match+priority replaces.
        self.model = [e for e in self.model
                      if not (e.in_port == in_port and e.priority == priority)]
        self.model.append(_ModelEntry(in_port, priority, out_port))

    @rule(in_port=st.sampled_from(PORTS + (None,)))
    def delete_non_strict(self, in_port):
        flow_mod = FlowMod(self._match_for(in_port), FlowModCommand.DELETE)
        self.table.apply_flow_mod(flow_mod, 0.0)
        if in_port is None:
            self.model = []
        else:
            self.model = [e for e in self.model if e.in_port != in_port]

    @rule(in_port=st.sampled_from(PORTS + (None,)),
          priority=st.sampled_from(PRIORITIES))
    def delete_strict(self, in_port, priority):
        flow_mod = FlowMod(self._match_for(in_port), FlowModCommand.DELETE_STRICT,
                           priority=priority)
        self.table.apply_flow_mod(flow_mod, 0.0)
        self.model = [e for e in self.model
                      if not (e.in_port == in_port and e.priority == priority)]

    @invariant()
    def same_size(self):
        assert len(self.table) == len(self.model)

    @invariant()
    def same_lookup_winner(self):
        for port in PORTS:
            actual = self.table.lookup(FIELDS_BY_PORT[port])
            candidates = [e for e in self.model if e.matches(port)]
            if not candidates:
                assert actual is None
                continue
            best = max(candidates, key=lambda e: (e.priority, -e.order))
            assert actual is not None
            assert actual.actions == [OutputAction(best.out_port)]


TestFlowTableAgainstModel = FlowTableMachine.TestCase
