"""Fabric generators: shapes, determinism, partitioning, validation."""

import pytest

from repro.dataplane import TopologyError
from repro.dataplane.fabrics import (
    cut_links,
    fat_tree,
    generate_fabric,
    is_fabric_name,
    leaf_spine,
    partition_topology,
    waxman,
)


# --------------------------------------------------------------------- #
# Shapes
# --------------------------------------------------------------------- #

def test_fat_tree_k4_shape():
    fabric = fat_tree(4)
    # (k/2)^2 core + k pods of k switches; (k/2)^2 hosts per pod... k=4:
    # 4 core + 4 pods * (2 edge + 2 agg) = 20 switches, 4 pods * 4 = 16 hosts.
    assert fabric.switch_count == 20
    assert fabric.host_count == 16
    # Pod-major partition groups: one per pod plus one per core row.
    assert len(fabric.groups) == 6
    fabric.topology.validate()


def test_fat_tree_k10_crosses_one_hundred_switches():
    fabric = fat_tree(10)
    # (k/2)^2 + k*k = 25 + 100
    assert fabric.switch_count == 125
    assert fabric.host_count == 250
    fabric.topology.validate()


def test_fat_tree_rejects_bad_k():
    with pytest.raises(TopologyError):
        fat_tree(3)  # odd
    with pytest.raises(TopologyError):
        fat_tree(2)  # too small


def test_leaf_spine_shape():
    fabric = leaf_spine(8, 4, hosts_per_leaf=4)
    assert fabric.switch_count == 12
    assert fabric.host_count == 32
    # Full bipartite leaf-spine mesh plus one link per host.
    assert len(fabric.topology.links) == 8 * 4 + 32
    fabric.topology.validate()


def test_waxman_is_connected_and_validates():
    fabric = waxman(24, 48, seed=3)
    fabric.topology.validate()
    # Connectivity: BFS from any switch reaches every other.
    adjacency = {name: set() for name in fabric.topology.switches}
    for link in fabric.topology.links:
        if link.a in adjacency and link.b in adjacency:
            adjacency[link.a].add(link.b)
            adjacency[link.b].add(link.a)
    start = next(iter(adjacency))
    seen = {start}
    frontier = [start]
    while frontier:
        frontier = [
            neighbor
            for node in frontier
            for neighbor in adjacency[node]
            if neighbor not in seen and not seen.add(neighbor)
        ]
    assert seen == set(adjacency)


def test_waxman_is_seed_deterministic():
    first = waxman(16, 16, seed=7)
    second = waxman(16, 16, seed=7)
    different = waxman(16, 16, seed=8)
    as_pairs = lambda fabric: [
        (link.a, link.b) for link in fabric.topology.links
    ]
    assert as_pairs(first) == as_pairs(second)
    assert as_pairs(first) != as_pairs(different)


# --------------------------------------------------------------------- #
# Name registry
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("name,switches", [
    ("fat-tree-k4", 20),
    ("leaf-spine-8x4", 12),
    ("leaf-spine-8x4x2", 12),
    ("waxman-s16-h16", 16),
    ("waxman-s16-h16-seed9", 16),
])
def test_generate_fabric_by_name(name, switches):
    assert is_fabric_name(name)
    assert generate_fabric(name).switch_count == switches


def test_generate_fabric_rejects_unknown_names():
    for name in ("enterprise", "fat-tree", "fat-tree-k5", "waxman-s16"):
        assert not is_fabric_name(name)
        with pytest.raises(TopologyError):
            generate_fabric(name)


# --------------------------------------------------------------------- #
# Partitioning
# --------------------------------------------------------------------- #

def test_partition_covers_all_devices_disjointly():
    fabric = fat_tree(4)
    partition = partition_topology(fabric.topology, 5, groups=fabric.groups)
    everything = [name for devices in partition for name in devices]
    assert len(everything) == len(set(everything))
    assert set(everything) == (
        set(fabric.topology.hosts) | set(fabric.topology.switches)
    )


def test_partition_keeps_hosts_with_their_edge_switch():
    fabric = fat_tree(4)
    partition = partition_topology(fabric.topology, 5, groups=fabric.groups)
    owner = {
        name: rid for rid, devices in enumerate(partition) for name in devices
    }
    for link in fabric.topology.links:
        if link.a in fabric.topology.hosts:
            assert owner[link.a] == owner[link.b]
        if link.b in fabric.topology.hosts:
            assert owner[link.b] == owner[link.a]


def test_partition_is_deterministic():
    fabric = fat_tree(6)
    first = partition_topology(fabric.topology, 4, groups=fabric.groups)
    second = partition_topology(fabric.topology, 4, groups=fabric.groups)
    assert first == second


def test_partition_without_groups_uses_bfs_growth():
    fabric = waxman(20, 20, seed=1)
    partition = partition_topology(fabric.topology, 4)
    assert len(partition) == 4
    assert all(devices for devices in partition)
    assert cut_links(fabric.topology, partition) > 0


def test_single_region_partition_has_no_cut_links():
    fabric = fat_tree(4)
    partition = partition_topology(fabric.topology, 1)
    assert len(partition) == 1
    assert cut_links(fabric.topology, partition) == 0


# --------------------------------------------------------------------- #
# Validation hardening (generators append LinkSpecs; validate() is the net)
# --------------------------------------------------------------------- #

def _tiny():
    from repro.dataplane import Topology

    topo = Topology("tiny")
    topo.add_switch("s1")
    topo.add_host("h1")
    topo.add_host("h2")
    topo.add_link("h1", "s1")
    topo.add_link("h2", "s1")
    return topo


def test_validate_rejects_appended_duplicate_link():
    topo = _tiny()
    topo.links.append(topo.links[0])
    with pytest.raises(TopologyError, match="duplicate link"):
        topo.validate()


def test_validate_rejects_appended_self_loop():
    from repro.dataplane.topology import LinkSpec

    topo = _tiny()
    topo.links.append(LinkSpec("s1", 3, "s1", 4, 1e6, 0.001))
    with pytest.raises(TopologyError, match="self-loop"):
        topo.validate()


def test_validate_rejects_port_referenced_twice():
    from repro.dataplane.topology import LinkSpec

    topo = _tiny()
    topo.add_host("h3")
    topo.links.append(LinkSpec("h3", None, "s1", 1, 1e6, 0.001))
    with pytest.raises(TopologyError, match="referenced by two links"):
        topo.validate()


def test_validate_rejects_dangling_device_reference():
    from repro.dataplane.topology import LinkSpec

    topo = _tiny()
    topo.links.append(LinkSpec("s1", 9, "ghost", 1, 1e6, 0.001))
    with pytest.raises(TopologyError, match="unknown device"):
        topo.validate()


def test_validate_rejects_switch_endpoint_without_port():
    from repro.dataplane.topology import LinkSpec

    topo = _tiny()
    topo.add_switch("s2")
    topo.links.append(LinkSpec("s1", 5, "s2", None, 1e6, 0.001))
    with pytest.raises(TopologyError, match="missing a port"):
        topo.validate()
