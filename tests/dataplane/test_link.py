"""Unit tests for the link model: latency, serialization, queueing."""

import pytest

from repro.dataplane import DataLink
from repro.sim import SimulationEngine


def make_link(engine, bandwidth=1e6, latency=0.001, queue_limit=4):
    link = DataLink(engine, bandwidth, latency, queue_limit=queue_limit)
    received_a, received_b = [], []
    link.attach_a(lambda data: received_a.append((engine.now, data)))
    link.attach_b(lambda data: received_b.append((engine.now, data)))
    return link, received_a, received_b


def test_delivery_includes_serialization_and_latency():
    engine = SimulationEngine()
    link, _a, received_b = make_link(engine, bandwidth=1e6, latency=0.001)
    payload = b"\x00" * 125  # 1000 bits -> 1 ms serialization at 1 Mbps
    assert link.send_from_a(payload)
    engine.run()
    assert len(received_b) == 1
    time, data = received_b[0]
    assert data == payload
    assert time == pytest.approx(0.002)  # 1 ms tx + 1 ms propagation


def test_fifo_ordering_back_to_back():
    engine = SimulationEngine()
    link, _a, received_b = make_link(engine)
    for index in range(3):
        link.send_from_a(bytes([index]) * 10)
    engine.run()
    assert [data[0] for _t, data in received_b] == [0, 1, 2]


def test_serialization_queues_back_to_back_frames():
    engine = SimulationEngine()
    link, _a, received_b = make_link(engine, bandwidth=1e6, latency=0.0)
    payload = b"\x00" * 125  # 1 ms each
    link.send_from_a(payload)
    link.send_from_a(payload)
    engine.run()
    times = [t for t, _data in received_b]
    assert times[0] == pytest.approx(0.001)
    assert times[1] == pytest.approx(0.002)  # waited for the first


def test_directions_are_independent():
    engine = SimulationEngine()
    link, received_a, received_b = make_link(engine)
    link.send_from_a(b"to-b")
    link.send_from_b(b"to-a")
    engine.run()
    assert received_b[0][1] == b"to-b"
    assert received_a[0][1] == b"to-a"


def test_queue_overflow_drops():
    engine = SimulationEngine()
    link, _a, received_b = make_link(engine, bandwidth=1e3, queue_limit=2)
    results = [link.send_from_a(b"\x00" * 100) for _ in range(5)]
    assert results == [True, True, False, False, False]
    engine.run()
    assert len(received_b) == 2
    assert link.dropped_frames == 3


def test_queue_drains_over_time():
    engine = SimulationEngine()
    link, _a, received_b = make_link(engine, bandwidth=1e6, latency=0.0,
                                     queue_limit=2)
    payload = b"\x00" * 125
    assert link.send_from_a(payload)
    assert link.send_from_a(payload)
    assert not link.send_from_a(payload)  # full now
    engine.run()
    assert link.send_from_a(payload)  # drained


def test_link_down_drops_silently():
    engine = SimulationEngine()
    link, _a, received_b = make_link(engine)
    link.set_up(False)
    assert not link.send_from_a(b"x")
    engine.run()
    assert received_b == []


def test_counters():
    engine = SimulationEngine()
    link, _a, _b = make_link(engine)
    link.send_from_a(b"12345")
    link.send_from_b(b"123")
    engine.run()
    assert link.tx_frames == 2
    assert link.tx_bytes == 8


def test_bad_parameters_rejected():
    engine = SimulationEngine()
    with pytest.raises(ValueError):
        DataLink(engine, 0, 0.001)
    with pytest.raises(ValueError):
        DataLink(engine, 1e6, -0.1)


def test_unattached_receiver_raises():
    engine = SimulationEngine()
    link = DataLink(engine, 1e6, 0.001)
    with pytest.raises(RuntimeError):
        link.send_from_a(b"x")
