"""Unit tests for the OpenFlow switch model.

These drive the switch directly through a scripted fake controller to pin
down the exact handshake/miss/fail-mode behaviours the attacks exploit.
"""

import pytest

from repro.dataplane import FailMode, OpenFlowSwitch, connect_endpoints
from repro.netlib import EtherType, EthernetFrame, MacAddress
from repro.openflow import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    GetConfigReply,
    GetConfigRequest,
    Hello,
    Match,
    MessageFramer,
    OutputAction,
    PacketIn,
    PacketOut,
    Port,
    SetConfig,
    StatsReply,
    StatsRequest,
    StatsType,
)
from repro.openflow.constants import OFP_NO_BUFFER
from repro.sim import SimulationEngine

MAC_A = MacAddress("00:00:00:00:00:0a")
MAC_B = MacAddress("00:00:00:00:00:0b")


def frame(src=MAC_A, dst=MAC_B, payload=b"data"):
    return EthernetFrame(dst, src, EtherType.IPV4, payload).pack()


class ScriptedController:
    """Accepts one switch connection; records decoded messages."""

    def __init__(self, engine, auto_handshake=True):
        self.engine = engine
        self.auto_handshake = auto_handshake
        self.channel = None
        self.framer = MessageFramer()
        self.messages = []
        self.closed = False

    def channel_opened(self, channel):
        self.channel = channel
        if self.auto_handshake:
            self.send(Hello())
            self.send(FeaturesRequest())

    def bytes_received(self, channel, data):
        for message in self.framer.feed(data):
            self.messages.append(message)
            if isinstance(message, EchoRequest):
                self.send(EchoReply.for_request(message))

    def channel_closed(self, channel):
        self.closed = True

    def send(self, message):
        if self.channel is not None and self.channel.open:
            self.channel.send(message.pack())

    def of_type(self, cls):
        return [m for m in self.messages if isinstance(m, cls)]


@pytest.fixture
def rig():
    engine = SimulationEngine()
    switch = OpenFlowSwitch(engine, "s1", datapath_id=0xBEEF)
    sent_frames = {1: [], 2: []}
    switch.attach_port(1, lambda data: sent_frames[1].append(data))
    switch.attach_port(2, lambda data: sent_frames[2].append(data))
    controller = ScriptedController(engine)
    switch.set_connect_factory(
        lambda sw: connect_endpoints(engine, sw, controller, latency_s=0.001)[0]
    )
    switch.start()
    engine.run(until=1.0)
    return engine, switch, controller, sent_frames


class TestHandshake:
    def test_switch_completes_handshake(self, rig):
        _engine, switch, controller, _frames = rig
        assert switch.connected
        assert controller.of_type(Hello)
        reply = controller.of_type(FeaturesReply)[0]
        assert reply.datapath_id == 0xBEEF
        assert [p.port_no for p in reply.ports] == [1, 2]

    def test_echo_request_answered(self, rig):
        engine, switch, controller, _frames = rig
        controller.send(EchoRequest(payload=b"ping", xid=77))
        engine.run(until=2.0)
        replies = controller.of_type(EchoReply)
        assert any(r.xid == 77 and r.payload == b"ping" for r in replies)

    def test_get_config(self, rig):
        engine, switch, controller, _frames = rig
        controller.send(SetConfig(miss_send_len=64))
        controller.send(GetConfigRequest(xid=5))
        engine.run(until=2.0)
        reply = controller.of_type(GetConfigReply)[0]
        assert reply.miss_send_len == 64
        assert switch.miss_send_len == 64

    def test_barrier(self, rig):
        engine, _switch, controller, _frames = rig
        controller.send(BarrierRequest(xid=9))
        engine.run(until=2.0)
        assert any(m.xid == 9 for m in controller.of_type(BarrierReply))

    def test_desc_stats(self, rig):
        engine, _switch, controller, _frames = rig
        controller.send(StatsRequest(StatsType.DESC, xid=4))
        engine.run(until=2.0)
        reply = controller.of_type(StatsReply)[0]
        assert reply.stats_type == StatsType.DESC
        assert b"OpenFlowSwitch" in reply.body

    def test_handshake_timeout_without_controller_hello(self):
        engine = SimulationEngine()
        switch = OpenFlowSwitch(engine, "s1", 1)
        switch.attach_port(1, lambda data: None)
        controller = ScriptedController(engine, auto_handshake=False)
        switch.set_connect_factory(
            lambda sw: connect_endpoints(engine, sw, controller, latency_s=0.001)[0]
        )
        switch.start()
        engine.run(until=2 * (switch.HANDSHAKE_TIMEOUT + switch.RECONNECT_INTERVAL))
        assert not switch.connected
        assert switch.stats["reconnect_attempts"] >= 2  # it keeps dialing


class TestMissPath:
    def test_miss_sends_buffered_packet_in(self, rig):
        engine, switch, controller, _frames = rig
        data = frame(payload=b"\xcc" * 400)
        switch.frame_received(1, data)
        engine.run(until=2.0)
        packet_in = controller.of_type(PacketIn)[0]
        assert packet_in.in_port == 1
        assert packet_in.total_len == len(data)
        assert packet_in.buffer_id != OFP_NO_BUFFER
        assert len(packet_in.data) == switch.miss_send_len  # truncated

    def test_packet_out_releases_buffer(self, rig):
        engine, switch, controller, frames = rig
        data = frame()
        switch.frame_received(1, data)
        engine.run(until=2.0)
        packet_in = controller.of_type(PacketIn)[0]
        controller.send(PacketOut(buffer_id=packet_in.buffer_id, in_port=1,
                                  actions=[OutputAction(2)]))
        engine.run(until=3.0)
        assert frames[2] == [data]  # full packet, not the truncation

    def test_flow_mod_with_buffer_releases_through_actions(self, rig):
        engine, switch, controller, frames = rig
        data = frame()
        switch.frame_received(1, data)
        engine.run(until=2.0)
        packet_in = controller.of_type(PacketIn)[0]
        controller.send(FlowMod(Match(in_port=1), buffer_id=packet_in.buffer_id,
                                actions=[OutputAction(2)]))
        engine.run(until=3.0)
        assert frames[2] == [data]
        assert len(switch.flow_table) == 1

    def test_installed_flow_forwards_without_packet_in(self, rig):
        engine, switch, controller, frames = rig
        controller.send(FlowMod(Match(in_port=1), actions=[OutputAction(2)]))
        engine.run(until=2.0)
        before = len(controller.of_type(PacketIn))
        switch.frame_received(1, frame())
        engine.run(until=3.0)
        assert len(frames[2]) == 1
        assert len(controller.of_type(PacketIn)) == before

    def test_flood_action(self, rig):
        engine, switch, controller, frames = rig
        controller.send(FlowMod(Match(in_port=1),
                                actions=[OutputAction(Port.FLOOD)]))
        engine.run(until=2.0)
        switch.frame_received(1, frame())
        assert frames[2] and not frames[1]  # never back out the ingress port

    def test_packet_out_with_inline_data(self, rig):
        engine, switch, controller, frames = rig
        data = frame()
        controller.send(PacketOut(in_port=Port.NONE, actions=[OutputAction(1)],
                                  data=data))
        engine.run(until=2.0)
        assert frames[1] == [data]

    def test_unknown_buffer_release_is_counted(self, rig):
        engine, switch, controller, _frames = rig
        controller.send(PacketOut(buffer_id=0x7777, in_port=1,
                                  actions=[OutputAction(2)]))
        engine.run(until=2.0)
        assert switch.stats["dropped_no_buffer_release"] == 1


class TestFailModes:
    def _kill_connection(self, engine, switch, controller):
        controller.channel.close()  # controller-side close
        engine.run(until=engine.now + 1.0)

    def test_fail_secure_drops_misses(self, rig):
        engine, switch, controller, frames = rig
        switch.fail_mode = FailMode.SECURE
        self._kill_connection(engine, switch, controller)
        assert not switch.connected
        switch.frame_received(1, frame())
        assert switch.stats["dropped_no_controller"] == 1
        assert not frames[2]

    def test_fail_secure_existing_flows_keep_working(self, rig):
        engine, switch, controller, frames = rig
        controller.send(FlowMod(Match(in_port=1), actions=[OutputAction(2)]))
        engine.run(until=2.0)
        self._kill_connection(engine, switch, controller)
        switch.frame_received(1, frame())
        assert len(frames[2]) == 1

    def test_fail_safe_standalone_learning(self, rig):
        engine, switch, controller, frames = rig
        switch.fail_mode = FailMode.STANDALONE
        self._kill_connection(engine, switch, controller)
        assert switch.standalone_active
        # Unknown destination: flood.
        switch.frame_received(1, frame(src=MAC_A, dst=MAC_B))
        assert len(frames[2]) == 1
        # Reverse direction: destination was learned, unicast out port 1.
        switch.frame_received(2, frame(src=MAC_B, dst=MAC_A))
        assert len(frames[1]) == 1

    def test_echo_timeout_declares_connection_dead(self, rig):
        engine, switch, controller, _frames = rig
        # Silence the controller: drop its channel's ability to respond by
        # replacing bytes_received with a black hole.
        controller.bytes_received = lambda channel, data: None
        engine.run(until=engine.now + switch.ECHO_TIMEOUT + 3.0)
        assert not switch.connected
        assert switch.stats["echo_requests_sent"] >= 1
        assert switch.stats["connection_deaths"] == 1


class TestValidation:
    def test_duplicate_port_rejected(self):
        engine = SimulationEngine()
        switch = OpenFlowSwitch(engine, "s1", 1)
        switch.attach_port(1, lambda data: None)
        with pytest.raises(ValueError):
            switch.attach_port(1, lambda data: None)

    def test_reserved_port_number_rejected(self):
        engine = SimulationEngine()
        switch = OpenFlowSwitch(engine, "s1", 1)
        with pytest.raises(ValueError):
            switch.attach_port(int(Port.FLOOD), lambda data: None)
