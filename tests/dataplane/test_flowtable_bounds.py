"""Bounded flow tables: capacity, eviction policies, eviction tracing."""

import pytest

from repro.dataplane.flowtable import EVICTION_POLICIES, FlowTable
from repro.dataplane.network import Network
from repro.netlib import Ipv4Address, MacAddress
from repro.obs import TraceCollector
from repro.openflow import FlowMod, FlowModCommand, Match, OutputAction
from repro.openflow.match import OFP_VLAN_NONE


def exact_match(octet=2, port=80):
    return Match(
        in_port=1,
        dl_src=MacAddress("00:00:00:00:00:01"),
        dl_dst=MacAddress("00:00:00:00:00:02"),
        dl_vlan=OFP_VLAN_NONE,
        dl_vlan_pcp=0,
        dl_type=0x0800,
        nw_tos=0,
        nw_proto=6,
        nw_src=Ipv4Address("10.0.0.1"),
        nw_dst=Ipv4Address(f"10.0.0.{octet}"),
        tp_src=1234,
        tp_dst=port,
    )


def add(table, match, now=0.0, **kwargs):
    flow_mod = FlowMod(match, command=FlowModCommand.ADD,
                       actions=[OutputAction(2)], **kwargs)
    return table.apply_flow_mod(flow_mod, now=now)


def fill(table, count, now=0.0):
    for i in range(count):
        add(table, exact_match(port=1000 + i), now=now)


def entry_for(table, port):
    return next(e for e in table.entries if e.match.tp_dst == port)


class TestCapacity:
    def test_refuse_policy_reports_table_full(self):
        table = FlowTable(max_entries=4, eviction="refuse")
        fill(table, 4)
        removed, full = add(table, exact_match(port=9))
        assert full is True
        assert removed == []
        assert len(table) == 4

    def test_lru_evicts_the_least_recently_used(self):
        table = FlowTable(max_entries=3, eviction="lru")
        fill(table, 3, now=0.0)
        # Traffic keeps two entries warm; the third goes stale.
        entry_for(table, 1000).record_use(5.0, 64)
        entry_for(table, 1002).record_use(6.0, 64)
        removed, full = add(table, exact_match(port=2000), now=7.0)
        assert full is False
        assert [e.match.tp_dst for e in removed] == [1001]
        assert table.capacity_evictions == 1
        assert len(table) == 3

    def test_fifo_evicts_the_earliest_installed_even_if_warm(self):
        table = FlowTable(max_entries=3, eviction="fifo")
        fill(table, 3)
        entry_for(table, 1000).record_use(5.0, 64)
        removed, _ = add(table, exact_match(port=2000), now=6.0)
        assert [e.match.tp_dst for e in removed] == [1000]

    def test_replacement_does_not_evict(self):
        table = FlowTable(max_entries=2, eviction="lru")
        fill(table, 2)
        removed, full = add(table, exact_match(port=1001))  # same match
        assert full is False
        assert table.capacity_evictions == 0
        assert len(table) == 2

    def test_occupancy_peak_tracks_the_high_water_mark(self):
        table = FlowTable(max_entries=8, eviction="lru")
        fill(table, 5)
        delete = FlowMod(Match.wildcard_all(),
                         command=FlowModCommand.DELETE)
        table.apply_flow_mod(delete, now=1.0)
        assert len(table) == 0
        assert table.occupancy_peak == 5

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="eviction"):
            FlowTable(eviction="random")
        assert EVICTION_POLICIES == ("refuse", "lru", "fifo")


class TestSwitchEvictionTracing:
    def test_expiry_emits_flow_evict_with_reason(self, engine,
                                                 small_topology):
        tracer = TraceCollector()
        network = Network(engine, small_topology)
        switch = network.switches["s1"]
        switch.tracer = tracer
        add(switch.flow_table, exact_match(port=80), idle_timeout=1)
        add(switch.flow_table, exact_match(port=81), hard_timeout=2)
        network.start()
        engine.run(until=10.0)
        evicts = [e for e in tracer.events() if e["kind"] == "flow_evict"]
        assert sorted(e["reason"] for e in evicts) == ["hard", "idle"]
        assert all(e["switch"] == "s1" for e in evicts)
        assert all("size" in e for e in evicts)
        assert switch.stats["evictions_idle"] == 1
        assert switch.stats["evictions_hard"] == 1

    def test_capacity_eviction_emits_reason_capacity(self, engine,
                                                     small_topology):
        tracer = TraceCollector()
        network = Network(engine, small_topology, table_capacity=2,
                          table_eviction="fifo")
        switch = network.switches["s1"]
        switch.tracer = tracer
        for i in range(4):
            switch.preinstall_flow(exact_match(port=100 + i),
                                   [OutputAction(2)])
        evicts = [e for e in tracer.events() if e["kind"] == "flow_evict"]
        assert [e["reason"] for e in evicts] == ["capacity", "capacity"]
        assert switch.stats["evictions_capacity"] == 2
        assert len(switch.flow_table) == 2
        assert switch.flow_table.occupancy_peak == 2

    def test_refuse_policy_makes_preinstall_fail_loudly(self, engine,
                                                        small_topology):
        network = Network(engine, small_topology, table_capacity=2)
        switch = network.switches["s1"]
        switch.preinstall_flow(exact_match(port=1), [OutputAction(2)])
        switch.preinstall_flow(exact_match(port=2), [OutputAction(2)])
        with pytest.raises(RuntimeError, match="full"):
            switch.preinstall_flow(exact_match(port=3), [OutputAction(2)])
