"""Unit tests for topology declaration and the N_D export."""

import pytest

from repro.dataplane import Topology, TopologyError


def test_defaults_assign_addresses():
    topo = Topology()
    h1 = topo.add_host("h1")
    h2 = topo.add_host("h2")
    assert str(h1.ip) == "10.0.0.1"
    assert str(h2.ip) == "10.0.0.2"
    assert h1.mac != h2.mac


def test_explicit_addresses():
    topo = Topology()
    host = topo.add_host("web", mac="00:11:22:33:44:55", ip="192.168.0.10")
    assert str(host.mac) == "00:11:22:33:44:55"
    assert str(host.ip) == "192.168.0.10"


def test_switch_dpid_defaults_to_order():
    topo = Topology()
    assert topo.add_switch("s1").datapath_id == 1
    assert topo.add_switch("s2").datapath_id == 2


def test_duplicate_names_rejected():
    topo = Topology()
    topo.add_host("x")
    with pytest.raises(TopologyError):
        topo.add_host("x")
    with pytest.raises(TopologyError):
        topo.add_switch("x")


def test_auto_port_assignment():
    topo = Topology()
    topo.add_switch("s1")
    topo.add_host("h1")
    topo.add_host("h2")
    link1 = topo.add_link("h1", "s1")
    link2 = topo.add_link("h2", "s1")
    assert link1.b_port == 1
    assert link2.b_port == 2


def test_explicit_port_assignment():
    topo = Topology()
    topo.add_switch("s1")
    topo.add_host("h1")
    link = topo.add_link("h1", ("s1", 7))
    assert link.b_port == 7
    # Auto-assignment continues above explicit ports.
    topo.add_host("h2")
    assert topo.add_link("h2", "s1").b_port == 8


def test_port_reuse_rejected():
    topo = Topology()
    topo.add_switch("s1")
    topo.add_host("h1")
    topo.add_host("h2")
    topo.add_link("h1", ("s1", 1))
    with pytest.raises(TopologyError):
        topo.add_link("h2", ("s1", 1))


def test_host_endpoints_have_no_port():
    topo = Topology()
    topo.add_switch("s1")
    topo.add_host("h1")
    link = topo.add_link("h1", "s1")
    assert link.a_port is None  # NULL ingress port (Fig. 3)


def test_explicit_port_on_host_rejected():
    topo = Topology()
    topo.add_host("h1")
    topo.add_switch("s1")
    with pytest.raises(TopologyError):
        topo.add_link(("h1", 1), "s1")


def test_self_loop_rejected():
    topo = Topology()
    topo.add_switch("s1")
    with pytest.raises(TopologyError):
        topo.add_link("s1", "s1")


def test_unknown_device_rejected():
    topo = Topology()
    topo.add_switch("s1")
    with pytest.raises(TopologyError):
        topo.add_link("ghost", "s1")


def test_bad_link_parameters_rejected():
    topo = Topology()
    topo.add_switch("s1")
    topo.add_switch("s2")
    with pytest.raises(TopologyError):
        topo.add_link("s1", "s2", bandwidth_bps=0)
    with pytest.raises(TopologyError):
        topo.add_link("s1", "s2", latency_s=-1)


def test_validate_requires_minimums(small_topology):
    small_topology.validate()  # fine
    empty = Topology()
    empty.add_switch("s1")
    empty.add_host("h1")
    with pytest.raises(TopologyError):
        empty.validate()  # |H| < 2


def test_validate_rejects_unattached_devices():
    topo = Topology()
    topo.add_switch("s1")
    topo.add_host("h1")
    topo.add_host("h2")
    topo.add_link("h1", "s1")
    with pytest.raises(TopologyError):
        topo.validate()  # h2 has no links


def test_data_plane_graph_export(small_topology):
    graph = small_topology.data_plane_graph()
    assert graph["vertices"] == {"h1", "h2", "s1", "s2"}
    assert ("h1", "s1") in graph["edges"]
    assert ("s1", "h1") in graph["edges"]  # both directions
    ingress, egress = graph["attributes"][("h1", "s1")]
    assert ingress is None  # NULL host port
    assert egress == 1


def test_switch_ports_query(small_topology):
    assert small_topology.switch_ports("s1") == [1, 2]
    assert small_topology.switch_ports("s2") == [1, 2]
