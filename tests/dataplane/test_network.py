"""Integration tests for network assembly and direct controller wiring."""

import pytest

from repro.controllers import FloodlightController
from repro.dataplane import Network, Topology
from repro.sim import SimulationEngine
from tests.conftest import build_connected_network


def test_builds_devices_from_topology(engine, small_topology):
    network = Network(engine, small_topology)
    assert set(network.hosts) == {"h1", "h2"}
    assert set(network.switches) == {"s1", "s2"}
    assert len(network.links) == 3


def test_invalid_topology_rejected(engine):
    topo = Topology()
    topo.add_switch("s1")
    topo.add_host("h1")
    topo.add_host("h2")
    topo.add_link("h1", "s1")  # h2 unattached
    with pytest.raises(Exception):
        Network(engine, topo)


def test_all_switches_handshake(engine, small_topology):
    network, controller = build_connected_network(engine, small_topology)
    assert network.all_connected()
    assert len(controller.ready_sessions()) == 2


def test_ping_across_two_switches(engine, small_topology):
    network, _controller = build_connected_network(engine, small_topology)
    run = network.host("h1").ping(network.host_ip("h2"), count=3)
    engine.run(until=20.0)
    assert run.result.received == 3


def test_ping_within_star(engine, star_topology):
    network, _controller = build_connected_network(engine, star_topology)
    run1 = network.host("h1").ping(network.host_ip("h2"), count=2)
    run2 = network.host("h2").ping(network.host_ip("h3"), count=2)
    engine.run(until=20.0)
    assert run1.result.received == 2
    assert run2.result.received == 2


def test_iperf_approaches_link_rate(engine, small_topology):
    network, _controller = build_connected_network(engine, small_topology)
    network.host("h2").start_iperf_server()
    run = network.host("h1").run_iperf_client(network.host_ip("h2"),
                                              duration=1.0)
    engine.run(until=30.0)
    # 100 Mbps links: the simplified TCP should land in the 60-100 range.
    assert 60.0 < run.result.throughput_mbps <= 100.0


def test_unknown_switch_target_rejected(engine, small_topology):
    network = Network(engine, small_topology)
    controller = FloodlightController(engine)
    with pytest.raises(KeyError):
        network.set_controller_target("nope", controller)


def test_switch_without_target_stays_disconnected(engine, small_topology):
    network = Network(engine, small_topology)
    controller = FloodlightController(engine)
    network.set_controller_target("s1", controller)  # s2 left out
    network.start()
    engine.run(until=5.0)
    assert network.switch("s1").connected
    assert not network.switch("s2").connected


def test_total_stat_aggregation(engine, small_topology):
    network, _controller = build_connected_network(engine, small_topology)
    run = network.host("h1").ping(network.host_ip("h2"), count=1)
    engine.run(until=10.0)
    assert run.result.received == 1
    assert network.total_stat("packet_ins_sent") > 0
    assert network.total_stat("rx_frames") > 0
