"""Unit + property tests for the OF 1.0 flow table."""

from hypothesis import given, strategies as st

from repro.dataplane import FlowTable
from repro.netlib import Ipv4Address, MacAddress
from repro.openflow import FlowMod, FlowModCommand, Match, OutputAction, Port
from repro.openflow.constants import FlowModFlags

FIELDS = {
    "in_port": 1,
    "dl_src": MacAddress(1),
    "dl_dst": MacAddress(2),
    "dl_vlan": 0xFFFF,
    "dl_vlan_pcp": 0,
    "dl_type": 0x0800,
    "nw_tos": 0,
    "nw_proto": 6,
    "nw_src": Ipv4Address("10.0.0.1"),
    "nw_dst": Ipv4Address("10.0.0.2"),
    "tp_src": 1000,
    "tp_dst": 80,
}


def add(table, match, priority=1, actions=None, now=0.0, **kwargs):
    flow_mod = FlowMod(match, FlowModCommand.ADD, priority=priority,
                       actions=actions if actions is not None else [OutputAction(2)],
                       **kwargs)
    return table.apply_flow_mod(flow_mod, now)


class TestAddAndLookup:
    def test_add_then_match(self):
        table = FlowTable()
        add(table, Match(in_port=1))
        entry = table.lookup(FIELDS)
        assert entry is not None
        assert entry.actions == [OutputAction(2)]

    def test_miss_returns_none(self):
        table = FlowTable()
        add(table, Match(in_port=9))
        assert table.lookup(FIELDS) is None

    def test_highest_priority_wins(self):
        table = FlowTable()
        add(table, Match(in_port=1), priority=1, actions=[OutputAction(1)])
        add(table, Match(in_port=1), priority=10, actions=[OutputAction(9)])
        assert table.lookup(FIELDS).actions == [OutputAction(9)]

    def test_tie_resolves_to_earliest_installed(self):
        table = FlowTable()
        add(table, Match(in_port=1), priority=5, actions=[OutputAction(1)])
        add(table, Match(dl_type=0x0800), priority=5, actions=[OutputAction(2)])
        assert table.lookup(FIELDS).actions == [OutputAction(1)]

    def test_identical_add_replaces(self):
        table = FlowTable()
        add(table, Match(in_port=1), priority=5, actions=[OutputAction(1)])
        add(table, Match(in_port=1), priority=5, actions=[OutputAction(7)])
        assert len(table) == 1
        assert table.lookup(FIELDS).actions == [OutputAction(7)]

    def test_table_full_reported(self):
        table = FlowTable(max_entries=1)
        add(table, Match(in_port=1))
        _removed, full = add(table, Match(in_port=2))
        assert full
        assert len(table) == 1

    def test_lookup_statistics(self):
        table = FlowTable()
        add(table, Match(in_port=1))
        table.lookup(FIELDS)
        table.lookup({**FIELDS, "in_port": 9})
        assert table.lookups == 2
        assert table.matched == 1


class TestDelete:
    def test_delete_wildcard_removes_all(self):
        table = FlowTable()
        add(table, Match(in_port=1))
        add(table, Match(in_port=2))
        removed, _ = table.apply_flow_mod(
            FlowMod(Match.wildcard_all(), FlowModCommand.DELETE), 0.0
        )
        assert len(removed) == 2
        assert len(table) == 0

    def test_delete_non_strict_subsumption(self):
        table = FlowTable()
        add(table, Match(in_port=1, tp_dst=80))
        add(table, Match(in_port=2))
        table.apply_flow_mod(FlowMod(Match(in_port=1), FlowModCommand.DELETE), 0.0)
        assert len(table) == 1  # only the in_port=1 entry was subsumed

    def test_delete_strict_requires_exact(self):
        table = FlowTable()
        add(table, Match(in_port=1, tp_dst=80), priority=3)
        table.apply_flow_mod(
            FlowMod(Match(in_port=1), FlowModCommand.DELETE_STRICT, priority=3), 0.0
        )
        assert len(table) == 1  # not strictly equal -> untouched
        table.apply_flow_mod(
            FlowMod(Match(in_port=1, tp_dst=80), FlowModCommand.DELETE_STRICT,
                    priority=3), 0.0
        )
        assert len(table) == 0

    def test_delete_filters_by_out_port(self):
        table = FlowTable()
        add(table, Match(in_port=1), actions=[OutputAction(5)])
        add(table, Match(in_port=2), actions=[OutputAction(6)])
        table.apply_flow_mod(
            FlowMod(Match.wildcard_all(), FlowModCommand.DELETE, out_port=5), 0.0
        )
        assert len(table) == 1
        assert table.entries[0].outputs_to(6)


class TestModify:
    def test_modify_changes_actions(self):
        table = FlowTable()
        add(table, Match(in_port=1), actions=[OutputAction(2)])
        table.apply_flow_mod(
            FlowMod(Match(in_port=1), FlowModCommand.MODIFY,
                    actions=[OutputAction(9)]),
            0.0,
        )
        assert table.lookup(FIELDS).actions == [OutputAction(9)]

    def test_modify_with_no_match_adds(self):
        table = FlowTable()
        table.apply_flow_mod(
            FlowMod(Match(in_port=1), FlowModCommand.MODIFY,
                    actions=[OutputAction(9)]),
            0.0,
        )
        assert len(table) == 1


class TestTimeouts:
    def test_idle_timeout_expiry(self):
        table = FlowTable()
        add(table, Match(in_port=1), idle_timeout=5)
        expired = table.expire(4.9)
        assert expired == []
        expired = table.expire(5.0)
        assert len(expired) == 1
        assert expired[0][1] == "idle"
        assert len(table) == 0

    def test_use_refreshes_idle_timeout(self):
        table = FlowTable()
        add(table, Match(in_port=1), idle_timeout=5)
        entry = table.lookup(FIELDS)
        entry.record_use(3.0, 100)
        assert table.expire(5.0) == []  # last_used 3.0 + 5 = 8.0
        assert len(table.expire(8.0)) == 1

    def test_hard_timeout_expires_despite_use(self):
        table = FlowTable()
        add(table, Match(in_port=1), hard_timeout=10)
        entry = table.lookup(FIELDS)
        entry.record_use(9.0, 100)
        expired = table.expire(10.0)
        assert len(expired) == 1
        assert expired[0][1] == "hard"

    def test_permanent_entries_never_expire(self):
        table = FlowTable()
        add(table, Match(in_port=1))  # no timeouts
        assert table.expire(1e9) == []

    def test_flags_flow_removed(self):
        table = FlowTable()
        add(table, Match(in_port=1), idle_timeout=1,
            flags=int(FlowModFlags.SEND_FLOW_REM))
        (entry, _reason), = table.expire(1.0)
        assert entry.sends_flow_removed

    def test_counters_accumulate(self):
        table = FlowTable()
        add(table, Match(in_port=1))
        entry = table.lookup(FIELDS)
        entry.record_use(1.0, 100)
        entry.record_use(2.0, 50)
        assert entry.packet_count == 2
        assert entry.byte_count == 150


@given(st.lists(st.tuples(st.integers(min_value=1, max_value=4),
                          st.integers(min_value=0, max_value=10)),
                min_size=1, max_size=20))
def test_lookup_always_returns_max_priority_matching(entries):
    """Property: the winner has the max priority among matching entries."""
    table = FlowTable()
    for in_port, priority in entries:
        add(table, Match(in_port=in_port), priority=priority,
            actions=[OutputAction(priority + 1)])
    winner = table.lookup(FIELDS)  # FIELDS has in_port=1
    candidates = [p for (ip, p) in entries if ip == 1]
    if not candidates:
        assert winner is None
    else:
        assert winner is not None
        assert winner.priority == max(candidates)
