"""Unit tests for the discovery and statistics controller services."""

import pytest

from repro.controllers import (
    FloodlightController,
    StatsCollectorApp,
    TopologyDiscoveryApp,
)
from repro.dataplane import Network, Topology
from repro.sim import SimulationEngine


def build_three_switch_line(engine, apps):
    """h1 - s1 - s2 - s3 - h2 with the given extra controller apps."""
    topo = Topology("line")
    topo.add_host("h1")
    topo.add_host("h2")
    for index in (1, 2, 3):
        topo.add_switch(f"s{index}", datapath_id=index)
    topo.add_link("h1", "s1")
    topo.add_link("s1", "s2")
    topo.add_link("s2", "s3")
    topo.add_link("h2", "s3")
    network = Network(engine, topo)
    controller = FloodlightController(engine, extra_apps=apps)
    network.set_all_controller_targets(controller)
    network.start()
    engine.run(until=2.0)
    assert network.all_connected()
    return network, controller


class TestTopologyDiscovery:
    def test_discovers_all_interswitch_links(self, engine):
        disco = TopologyDiscoveryApp(probe_interval=1.0)
        build_three_switch_line(engine, [disco])
        engine.run(until=10.0)
        assert disco.has_link(1, 2, engine.now)
        assert disco.has_link(2, 1, engine.now)
        assert disco.has_link(2, 3, engine.now)
        assert disco.has_link(3, 2, engine.now)
        # Non-adjacent switches are never linked.
        assert not disco.has_link(1, 3, engine.now)

    def test_links_carry_ports(self, engine):
        disco = TopologyDiscoveryApp(probe_interval=1.0)
        build_three_switch_line(engine, [disco])
        engine.run(until=10.0)
        links = disco.links(engine.now)
        link = links[next(k for k in links if k[0] == 1 and k[2] == 2)]
        assert link.probe_count >= 1
        assert link.first_seen <= link.last_seen

    def test_bidirectional_pairs(self, engine):
        disco = TopologyDiscoveryApp(probe_interval=1.0)
        build_three_switch_line(engine, [disco])
        engine.run(until=10.0)
        pairs = disco.bidirectional_links(engine.now)
        assert len(pairs) == 2  # s1-s2 and s2-s3

    def test_links_expire_without_probes(self, engine):
        disco = TopologyDiscoveryApp(probe_interval=1.0, link_ttl=3.0)
        network, _controller = build_three_switch_line(engine, [disco])
        engine.run(until=10.0)
        assert disco.has_link(1, 2, engine.now)
        # Cut the s1-s2 trunk; probes stop crossing, freshness decays.
        trunk = next(link for name, link in network.links.items()
                     if "s1-s2" in name)
        trunk.set_up(False)
        engine.run(until=engine.now + 6.0)
        assert not disco.has_link(1, 2, engine.now)
        # The stale record still exists without a freshness horizon.
        assert disco.has_link(1, 2, now=None) or True

    def test_switch_down_purges_links(self, engine):
        disco = TopologyDiscoveryApp(probe_interval=1.0)
        network, controller = build_three_switch_line(engine, [disco])
        engine.run(until=10.0)
        session = controller.session_for_dpid(2)
        session.close()
        engine.run(until=engine.now + 1.0)
        assert not any(
            2 in (link.src_dpid, link.dst_dpid)
            for link in disco.links().values()
        )

    def test_lldp_consumed_before_learning_switch(self, engine):
        disco = TopologyDiscoveryApp(probe_interval=1.0)
        network, controller = build_three_switch_line(engine, [disco])
        engine.run(until=10.0)
        # The discovery app consumes LLDP PACKET_INs, so the learning
        # switch never learns the probes' synthetic source MACs (which
        # encode dpid<<8|port and are therefore > 0xFF).
        from repro.controllers import LearningSwitchApp

        learning = next(a for a in controller.apps
                        if isinstance(a, LearningSwitchApp))
        for session in controller.ready_sessions():
            table = session.app_state.get(LearningSwitchApp.STATE_KEY, {})
            assert all(int(mac) <= 0xFF for mac in table), dict(table)

    def test_malformed_lldp_counted_not_crashing(self, engine):
        disco = TopologyDiscoveryApp()
        build_three_switch_line(engine, [disco])
        from repro.netlib import EtherType, EthernetFrame, MacAddress
        from repro.netlib.addresses import LLDP_MULTICAST_MAC
        from repro.openflow import PacketIn

        bad_frame = EthernetFrame(LLDP_MULTICAST_MAC, MacAddress(1),
                                  EtherType.LLDP, b"\xff\xff\xff")
        message = PacketIn(0xFFFFFFFF, len(bad_frame.pack()), 1, 0,
                           bad_frame.pack())
        from repro.openflow.match import extract_packet_fields
        from repro.netlib.packet import decode_ethernet

        class FakeSession:
            datapath_id = 1

        handled = disco.packet_in(
            None, FakeSession(), message,
            extract_packet_fields(message.data, 1),
            decode_ethernet(message.data),
        )
        assert handled  # consumed
        assert disco.malformed_probes == 1


class TestStatsCollector:
    def test_snapshots_follow_traffic(self, engine):
        stats = StatsCollectorApp(poll_interval=1.0)
        network, _controller = build_three_switch_line(engine, [stats])
        # Ryu-less Floodlight flows idle out at 5 s; ping for a while and
        # sample mid-traffic.
        network.host("h1").ping(network.host_ip("h2"), count=6, interval=1.0)
        engine.run(until=8.0)
        assert stats.replies_received > 0
        assert stats.flow_count(1) > 0
        assert stats.total_packets(1) > 0
        assert stats.total_bytes(1) > 0

    def test_staleness_tracking(self, engine):
        stats = StatsCollectorApp(poll_interval=1.0)
        build_three_switch_line(engine, [stats])
        engine.run(until=5.0)
        staleness = stats.staleness(1, engine.now)
        assert staleness is not None and staleness <= 1.5
        assert stats.staleness(99, engine.now) is None

    def test_switch_down_clears_snapshot(self, engine):
        stats = StatsCollectorApp(poll_interval=1.0)
        network, controller = build_three_switch_line(engine, [stats])
        engine.run(until=5.0)
        assert 1 in stats.snapshots
        controller.session_for_dpid(1).close()
        engine.run(until=engine.now + 1.0)
        assert 1 not in stats.snapshots
