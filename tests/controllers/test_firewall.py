"""Unit tests for the DMZ firewall application."""

import pytest

from repro.controllers import DmzFirewallApp, FirewallPolicy
from repro.controllers.floodlight import FLOODLIGHT_BEHAVIOR, FloodlightController
from repro.controllers.ryu import RYU_BEHAVIOR, RyuController
from repro.dataplane import Network, Topology
from repro.netlib import Ipv4Address
from repro.sim import SimulationEngine


@pytest.fixture
def firewall_topology():
    """h_ext - s1 - s2(dmz) - s3 - h_int, plus h_pub on s1."""
    topo = Topology("fw")
    topo.add_host("h_pub", ip="10.0.0.1")
    topo.add_host("h_ext", ip="10.0.0.2")
    topo.add_host("h_int", ip="10.0.0.3")
    topo.add_switch("s1", datapath_id=1)
    topo.add_switch("s2", datapath_id=2)
    topo.add_switch("s3", datapath_id=3)
    topo.add_link("h_pub", "s1")
    topo.add_link("h_ext", "s1")
    topo.add_link("s1", "s2")
    topo.add_link("s2", "s3")
    topo.add_link("h_int", "s3")
    return topo


def build(engine, topo, controller_cls, behavior):
    policy = FirewallPolicy.isolate(["10.0.0.2"], ["10.0.0.3"])
    firewall = DmzFirewallApp(policy, frozenset({2}), behavior)
    network = Network(engine, topo)
    controller = controller_cls(engine, extra_apps=[firewall])
    network.set_all_controller_targets(controller)
    network.start()
    engine.run(until=5.0)
    assert network.all_connected()
    return network, controller, firewall


class TestPolicy:
    def test_blocks_only_configured_pairs(self):
        policy = FirewallPolicy.isolate(["10.0.0.2"], ["10.0.0.3", "10.0.0.4"])
        assert policy.blocks(Ipv4Address("10.0.0.2"), Ipv4Address("10.0.0.3"))
        assert policy.blocks(Ipv4Address("10.0.0.2"), Ipv4Address("10.0.0.4"))
        assert not policy.blocks(Ipv4Address("10.0.0.2"), Ipv4Address("10.0.0.1"))
        assert not policy.blocks(Ipv4Address("10.0.0.5"), Ipv4Address("10.0.0.3"))

    def test_none_values_never_block(self):
        policy = FirewallPolicy.isolate(["10.0.0.2"], ["10.0.0.3"])
        assert not policy.blocks(None, Ipv4Address("10.0.0.3"))
        assert not policy.blocks(Ipv4Address("10.0.0.2"), None)


class TestEnforcement:
    def test_blocked_traffic_cannot_pass(self, firewall_topology):
        engine = SimulationEngine()
        network, _controller, firewall = build(
            engine, firewall_topology, FloodlightController, FLOODLIGHT_BEHAVIOR
        )
        run = network.host("h_ext").ping(network.host_ip("h_int"), count=3)
        engine.run(until=20.0)
        assert run.result.received == 0
        assert firewall.blocked_packets >= 1
        assert firewall.drop_rules_installed >= 1

    def test_allowed_traffic_passes(self, firewall_topology):
        engine = SimulationEngine()
        network, _controller, _firewall = build(
            engine, firewall_topology, FloodlightController, FLOODLIGHT_BEHAVIOR
        )
        # External user may reach the public host.
        run1 = network.host("h_ext").ping(network.host_ip("h_pub"), count=2)
        # Internal host may reach out (reverse direction is not blocked).
        run2 = network.host("h_int").ping(network.host_ip("h_pub"), count=2)
        engine.run(until=20.0)
        assert run1.result.received == 2
        assert run2.result.received == 2

    def test_drop_rule_installed_on_dmz_switch(self, firewall_topology):
        engine = SimulationEngine()
        network, _controller, _firewall = build(
            engine, firewall_topology, FloodlightController, FLOODLIGHT_BEHAVIOR
        )
        network.host("h_ext").ping(network.host_ip("h_int"), count=2)
        engine.run(until=10.0)  # inspect before the drop rule idle-expires
        drop_entries = [
            entry for entry in network.switch("s2").flow_table.entries
            if not entry.actions
        ]
        assert drop_entries
        assert drop_entries[0].priority == 2  # above the learning rules

    def test_enforcement_only_at_dmz(self, firewall_topology):
        engine = SimulationEngine()
        network, _controller, _firewall = build(
            engine, firewall_topology, FloodlightController, FLOODLIGHT_BEHAVIOR
        )
        network.host("h_ext").ping(network.host_ip("h_int"), count=1)
        engine.run(until=20.0)
        # s1 forwards toward the DMZ; it must not hold drop rules.
        s1_drops = [
            entry for entry in network.switch("s1").flow_table.entries
            if not entry.actions
        ]
        assert not s1_drops

    def test_firewall_match_personality(self, firewall_topology):
        """Floodlight drop rules carry nw fields; Ryu-style ones do not."""
        engine = SimulationEngine()
        network, _controller, _firewall = build(
            engine, firewall_topology, FloodlightController, FLOODLIGHT_BEHAVIOR
        )
        network.host("h_ext").ping(network.host_ip("h_int"), count=1)
        engine.run(until=10.0)
        drop = [e for e in network.switch("s2").flow_table.entries
                if not e.actions][0]
        assert drop.match.nw_src is not None

        engine2 = SimulationEngine()
        topo2 = firewall_topology.__class__("fw2")
        # rebuild an identical topology for the second engine
        topo2.add_host("h_pub", ip="10.0.0.1")
        topo2.add_host("h_ext", ip="10.0.0.2")
        topo2.add_host("h_int", ip="10.0.0.3")
        topo2.add_switch("s1", datapath_id=1)
        topo2.add_switch("s2", datapath_id=2)
        topo2.add_switch("s3", datapath_id=3)
        topo2.add_link("h_pub", "s1")
        topo2.add_link("h_ext", "s1")
        topo2.add_link("s1", "s2")
        topo2.add_link("s2", "s3")
        topo2.add_link("h_int", "s3")
        network2, _c2, _f2 = build(engine2, topo2, RyuController, RYU_BEHAVIOR)
        network2.host("h_ext").ping(network2.host_ip("h_int"), count=1)
        engine2.run(until=10.0)
        drop2 = [e for e in network2.switch("s2").flow_table.entries
                 if not e.actions][0]
        assert drop2.match.nw_src is None  # the Ryu anomaly lever
