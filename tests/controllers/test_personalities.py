"""Tests pinning the three controllers' documented behavioural differences.

These are the levers behind the paper's cross-controller results, so each
is asserted explicitly against live FLOW_MOD/PACKET_OUT traffic.
"""

import pytest

from repro.controllers import FloodlightController, PoxController, RyuController
from repro.controllers.floodlight import FLOODLIGHT_BEHAVIOR
from repro.controllers.pox import POX_BEHAVIOR
from repro.controllers.ryu import RYU_BEHAVIOR
from repro.dataplane import Network
from repro.openflow import FlowMod, MessageFramer, PacketOut
from repro.openflow.constants import OFP_NO_BUFFER
from repro.sim import SimulationEngine
from tests.conftest import build_connected_network


class MessageTap:
    """Records controller->switch messages by wrapping the channel."""

    def __init__(self):
        self.messages = []
        self.framer = MessageFramer()

    def install(self, network, switch_name):
        switch = network.switch(switch_name)
        channel = switch.channel
        peer = channel.peer
        original = peer.send

        def tapped(data):
            self.messages.extend(self.framer.feed(data))
            original(data)

        peer.send = tapped

    def flow_mods(self):
        return [m for m in self.messages if isinstance(m, FlowMod)]

    def packet_outs(self):
        return [m for m in self.messages if isinstance(m, PacketOut)]


def run_ping(controller_cls, engine, topology):
    network, controller = build_connected_network(engine, topology, controller_cls)
    tap = MessageTap()
    tap.install(network, "s1")
    run = network.host("h1").ping(network.host_ip("h2"), count=2)
    engine.run(until=15.0)
    assert run.result.received == 2
    return network, tap


class TestFloodlight:
    def test_flow_mod_match_includes_network_layer(self, engine, small_topology):
        _network, tap = run_ping(FloodlightController, engine, small_topology)
        icmp_mods = [m for m in tap.flow_mods() if m.match.nw_proto == 1]
        assert icmp_mods, "expected ICMP flow mods"
        mod = icmp_mods[0]
        assert mod.match.nw_src is not None
        assert mod.match.nw_dst is not None
        assert mod.idle_timeout == 5
        assert mod.hard_timeout == 0

    def test_buffer_released_via_packet_out(self, engine, small_topology):
        _network, tap = run_ping(FloodlightController, engine, small_topology)
        assert all(m.buffer_id == OFP_NO_BUFFER for m in tap.flow_mods())
        assert any(m.buffer_id != OFP_NO_BUFFER for m in tap.packet_outs())


class TestPox:
    def test_flow_mod_carries_buffer_id(self, engine, small_topology):
        _network, tap = run_ping(PoxController, engine, small_topology)
        forwarding = [m for m in tap.flow_mods() if m.actions]
        assert forwarding
        assert any(m.buffer_id != OFP_NO_BUFFER for m in forwarding)

    def test_timeouts_are_10_and_30(self, engine, small_topology):
        _network, tap = run_ping(PoxController, engine, small_topology)
        mod = tap.flow_mods()[0]
        assert mod.idle_timeout == 10
        assert mod.hard_timeout == 30

    def test_match_is_full_tuple(self, engine, small_topology):
        _network, tap = run_ping(PoxController, engine, small_topology)
        icmp_mods = [m for m in tap.flow_mods() if m.match.nw_proto == 1]
        assert icmp_mods and icmp_mods[0].match.nw_src is not None


class TestRyu:
    def test_match_is_l2_only(self, engine, small_topology):
        """The Table II anomaly lever: no network-layer match fields."""
        _network, tap = run_ping(RyuController, engine, small_topology)
        mods = tap.flow_mods()
        assert mods
        for mod in mods:
            assert mod.match.nw_src is None
            assert mod.match.nw_dst is None
            assert mod.match.in_port is not None
            assert mod.match.dl_src is not None
            assert mod.match.dl_dst is not None

    def test_entries_are_permanent(self, engine, small_topology):
        network, tap = run_ping(RyuController, engine, small_topology)
        mod = tap.flow_mods()[0]
        assert mod.idle_timeout == 0 and mod.hard_timeout == 0
        # Entries survive arbitrary idle time.
        engine.run(until=120.0)
        assert len(network.switch("s1").flow_table) > 0

    def test_buffer_released_via_packet_out(self, engine, small_topology):
        _network, tap = run_ping(RyuController, engine, small_topology)
        assert all(m.buffer_id == OFP_NO_BUFFER for m in tap.flow_mods())


class TestServiceTimes:
    def test_relative_ordering_matches_runtimes(self):
        assert FloodlightController.SERVICE_TIME < RyuController.SERVICE_TIME
        assert RyuController.SERVICE_TIME < PoxController.SERVICE_TIME


class TestBehaviorValidation:
    def test_behavior_constants(self):
        assert FLOODLIGHT_BEHAVIOR.match_granularity == "full"
        assert POX_BEHAVIOR.release_via == "flow_mod"
        assert RYU_BEHAVIOR.match_granularity == "l2"

    def test_bad_behavior_parameters_rejected(self):
        from repro.controllers import LearningSwitchBehavior

        with pytest.raises(ValueError):
            LearningSwitchBehavior(name="x", match_granularity="l7")
        with pytest.raises(ValueError):
            LearningSwitchBehavior(name="x", release_via="carrier-pigeon")
