"""Unit tests for controller session management and liveness."""

from repro.controllers import FloodlightController
from repro.controllers.base import SessionState
from repro.dataplane import Network
from repro.sim import SimulationEngine
from tests.conftest import build_connected_network


def test_sessions_reach_ready(engine, small_topology):
    _network, controller = build_connected_network(engine, small_topology)
    sessions = controller.ready_sessions()
    assert len(sessions) == 2
    assert {s.datapath_id for s in sessions} == {1, 2}


def test_session_for_dpid(engine, small_topology):
    _network, controller = build_connected_network(engine, small_topology)
    assert controller.session_for_dpid(1) is not None
    assert controller.session_for_dpid(99) is None


def test_session_ports_learned_from_features(engine, small_topology):
    _network, controller = build_connected_network(engine, small_topology)
    session = controller.session_for_dpid(1)
    assert session.ports == [1, 2]


def test_controller_counts_connections(engine, small_topology):
    _network, controller = build_connected_network(engine, small_topology)
    assert controller.stats["connections_accepted"] == 2


def test_switch_down_notifies_apps(engine, small_topology):
    network, controller = build_connected_network(engine, small_topology)
    downs = []

    class Spy:
        def switch_ready(self, controller, session):
            pass

        def switch_down(self, controller, session):
            downs.append(session.datapath_id)

        def packet_in(self, *args):
            return False

        def flow_removed(self, *args):
            pass

        def port_status(self, *args):
            pass

        def error_received(self, *args):
            pass

    controller.apps.insert(0, Spy())
    network.switch("s1").channel.close()
    engine.run(until=engine.now + 2.0)
    assert downs == [1]


def test_controller_echo_timeout_drops_silent_switch(engine, small_topology):
    network, controller = build_connected_network(engine, small_topology)
    switch = network.switch("s1")
    # Silence the switch entirely: it stops answering and stops probing.
    switch.bytes_received = lambda channel, data: None
    switch._liveness_tick = lambda: None
    engine.run(until=engine.now + controller.ECHO_TIMEOUT + 3.0)
    assert controller.stats["echo_requests_sent"] >= 1
    assert controller.stats["connections_lost"] >= 1


def test_garbage_stream_drops_session(engine, small_topology):
    network, controller = build_connected_network(engine, small_topology)
    switch = network.switch("s1")
    # Send bytes that cannot ever frame as OpenFlow (impossible length).
    switch.channel.send(b"\x01\x00\x00\x01\x00\x00\x00\x00")
    engine.run(until=engine.now + 2.0)
    assert controller.stats["decode_errors"] == 1
    assert len(controller.ready_sessions()) == 1


def test_flow_removed_dispatched_to_apps(engine, small_topology):
    """POX-style flows expire and the controller hears about it."""
    from repro.controllers import PoxController
    from repro.openflow import FlowMod, Match, OutputAction
    from repro.openflow.constants import FlowModFlags

    network, controller = build_connected_network(
        engine, small_topology, PoxController
    )
    removed = []

    class Spy:
        def switch_ready(self, *a):
            pass

        def switch_down(self, *a):
            pass

        def packet_in(self, *a):
            return False

        def flow_removed(self, controller, session, message):
            removed.append(message.match)

        def port_status(self, *a):
            pass

        def error_received(self, *a):
            pass

    controller.apps.insert(0, Spy())
    session = controller.session_for_dpid(1)
    session.send(FlowMod(Match(in_port=1), idle_timeout=1,
                         flags=int(FlowModFlags.SEND_FLOW_REM),
                         actions=[OutputAction(2)]))
    engine.run(until=engine.now + 5.0)
    assert len(removed) == 1
