"""Unit tests for the OpenFlow 1.0 match structure."""

import pytest

from repro.netlib import (
    EtherType,
    EthernetFrame,
    IcmpEcho,
    IpProtocol,
    Ipv4Address,
    Ipv4Packet,
    MacAddress,
    TcpSegment,
)
from repro.netlib.arp import ArpPacket
from repro.openflow import Match, Wildcards
from repro.openflow.match import MATCH_SIZE, extract_packet_fields, field_tuple

MAC1 = MacAddress("00:00:00:00:00:01")
MAC2 = MacAddress("00:00:00:00:00:02")
IP1 = Ipv4Address("10.0.0.1")
IP2 = Ipv4Address("10.0.0.2")


def tcp_packet(payload=b"x", sport=1234, dport=80):
    tcp = TcpSegment(sport, dport, payload=payload)
    ip = Ipv4Packet(IP1, IP2, IpProtocol.TCP, tcp.pack())
    return EthernetFrame(MAC2, MAC1, EtherType.IPV4, ip.pack()).pack()


def icmp_packet():
    icmp = IcmpEcho.request(9, 1)
    ip = Ipv4Packet(IP1, IP2, IpProtocol.ICMP, icmp.pack())
    return EthernetFrame(MAC2, MAC1, EtherType.IPV4, ip.pack()).pack()


def arp_packet():
    arp = ArpPacket.request(MAC1, IP1, IP2)
    return EthernetFrame(MAC2, MAC1, EtherType.ARP, arp.pack()).pack()


class TestExtraction:
    def test_tcp_fields(self):
        fields = extract_packet_fields(tcp_packet(), in_port=3)
        assert fields["in_port"] == 3
        assert fields["dl_src"] == MAC1
        assert fields["dl_dst"] == MAC2
        assert fields["dl_type"] == EtherType.IPV4
        assert fields["nw_proto"] == IpProtocol.TCP
        assert fields["nw_src"] == IP1
        assert fields["nw_dst"] == IP2
        assert fields["tp_src"] == 1234
        assert fields["tp_dst"] == 80

    def test_icmp_fields_use_type_code(self):
        fields = extract_packet_fields(icmp_packet(), in_port=1)
        assert fields["nw_proto"] == IpProtocol.ICMP
        assert fields["tp_src"] == 8  # echo request type
        assert fields["tp_dst"] == 0

    def test_arp_fields_map_opcode_and_ips(self):
        fields = extract_packet_fields(arp_packet(), in_port=1)
        assert fields["dl_type"] == EtherType.ARP
        assert fields["nw_proto"] == 1  # ARP request opcode
        assert fields["nw_src"] == IP1
        assert fields["nw_dst"] == IP2
        assert fields["tp_src"] is None

    def test_field_tuple_is_hashable(self):
        fields = extract_packet_fields(tcp_packet(), in_port=3)
        assert hash(field_tuple(fields)) == hash(field_tuple(dict(fields)))


class TestMatching:
    def test_from_packet_exact_match(self):
        data = tcp_packet()
        match = Match.from_packet(data, in_port=3)
        assert match.matches_packet(data, 3)

    def test_in_port_mismatch(self):
        data = tcp_packet()
        match = Match.from_packet(data, in_port=3)
        assert not match.matches_packet(data, 4)

    def test_wildcard_all_matches_everything(self):
        assert Match.wildcard_all().matches_packet(tcp_packet(), 1)
        assert Match.wildcard_all().matches_packet(arp_packet(), 9)

    def test_l2_only_match_ignores_l3(self):
        match = Match(in_port=3, dl_src=MAC1, dl_dst=MAC2)
        assert match.matches_packet(tcp_packet(), 3)
        assert match.matches_packet(icmp_packet(), 3)

    def test_nw_prefix_match(self):
        match = Match(nw_dst=Ipv4Address("10.0.0.0"), nw_dst_prefix=24)
        assert match.matches_packet(tcp_packet(), 1)
        other = Match(nw_dst=Ipv4Address("10.0.1.0"), nw_dst_prefix=24)
        assert not other.matches_packet(tcp_packet(), 1)

    def test_zero_prefix_is_wildcard(self):
        match = Match(nw_dst=Ipv4Address("1.2.3.4"), nw_dst_prefix=0)
        assert match.matches_packet(tcp_packet(), 1)

    def test_tp_port_mismatch(self):
        match = Match(tp_dst=443)
        assert not match.matches_packet(tcp_packet(dport=80), 1)

    def test_ip_field_on_arp_packet_does_not_match(self):
        match = Match(dl_type=EtherType.IPV4)
        assert not match.matches_packet(arp_packet(), 1)


class TestWireFormat:
    def test_size_is_40_bytes(self):
        assert MATCH_SIZE == 40
        assert len(Match.wildcard_all().pack()) == 40

    def test_roundtrip_exact(self):
        match = Match.from_packet(tcp_packet(), in_port=3)
        assert Match.unpack(match.pack()) == match

    def test_roundtrip_partial(self):
        match = Match(in_port=1, dl_src=MAC1, nw_dst=IP2, nw_dst_prefix=16,
                      tp_dst=80, dl_type=EtherType.IPV4, nw_proto=6)
        decoded = Match.unpack(match.pack())
        assert decoded == match
        assert decoded.nw_dst_prefix == 16
        assert decoded.nw_src is None

    def test_wildcard_bits_for_empty_match(self):
        word = Match.wildcard_all().wildcards
        assert word & int(Wildcards.IN_PORT)
        assert word & int(Wildcards.DL_SRC)

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            Match.unpack(b"\x00" * 10)

    def test_bad_prefix_rejected(self):
        with pytest.raises(ValueError):
            Match(nw_src=IP1, nw_src_prefix=33)


class TestStrictAndSubsume:
    def test_strict_equal(self):
        a = Match(in_port=1, dl_src=MAC1)
        b = Match(in_port=1, dl_src=MAC1)
        assert a.is_strict_equal(b)
        assert not a.is_strict_equal(Match(in_port=1))

    def test_wildcard_subsumes_specific(self):
        assert Match.wildcard_all().subsumes(Match(in_port=1, dl_src=MAC1))

    def test_specific_does_not_subsume_wildcard(self):
        assert not Match(in_port=1).subsumes(Match.wildcard_all())

    def test_equal_matches_subsume_each_other(self):
        a = Match(in_port=1, nw_dst=IP2)
        assert a.subsumes(Match(in_port=1, nw_dst=IP2))

    def test_prefix_subsumes_longer_prefix(self):
        shorter = Match(nw_dst=Ipv4Address("10.0.0.0"), nw_dst_prefix=8)
        longer = Match(nw_dst=Ipv4Address("10.0.0.1"), nw_dst_prefix=32)
        assert shorter.subsumes(longer)
        assert not longer.subsumes(shorter)

    def test_field_value_conflict_not_subsumed(self):
        assert not Match(in_port=1).subsumes(Match(in_port=2))

    def test_specified_fields_view(self):
        match = Match(in_port=1, tp_dst=80)
        assert match.specified_fields() == {"in_port": 1, "tp_dst": 80}
