"""Unit + property tests for typed OpenFlow statistics bodies."""

import pytest
from hypothesis import given, strategies as st

from repro.netlib import Ipv4Address, MacAddress
from repro.openflow import Match, OutputAction, StatsReply, StatsRequest, StatsType
from repro.openflow.messages import OpenFlowDecodeError, parse_message
from repro.openflow.stats import (
    FlowStatsEntry,
    aggregate_stats_reply,
    flow_stats_reply,
    flow_stats_request,
    parse_aggregate_stats_reply,
    parse_flow_stats_reply,
    parse_flow_stats_request,
)


def sample_entry(**overrides):
    kwargs = dict(
        match=Match(in_port=1, nw_dst=Ipv4Address("10.0.0.9")),
        priority=7,
        duration_sec=12,
        idle_timeout=5,
        hard_timeout=0,
        cookie=0xABCD,
        packet_count=100,
        byte_count=6400,
        actions=[OutputAction(2)],
    )
    kwargs.update(overrides)
    return FlowStatsEntry(**kwargs)


class TestFlowStatsEntry:
    def test_roundtrip(self):
        entry = sample_entry()
        decoded, offset = FlowStatsEntry.unpack(entry.pack())
        assert decoded == entry
        assert offset == len(entry.pack())

    def test_multiple_records_roundtrip(self):
        entries = [sample_entry(priority=p) for p in (1, 2, 3)]
        reply = flow_stats_reply(entries, xid=5)
        assert parse_flow_stats_reply(reply) == entries

    def test_entry_without_actions(self):
        entry = sample_entry(actions=[])
        decoded, _ = FlowStatsEntry.unpack(entry.pack())
        assert decoded.actions == []

    def test_truncated_record_rejected(self):
        raw = sample_entry().pack()
        with pytest.raises(OpenFlowDecodeError):
            FlowStatsEntry.unpack(raw[: len(raw) // 2])

    def test_bad_length_rejected(self):
        raw = bytearray(sample_entry().pack())
        raw[0:2] = (4).to_bytes(2, "big")
        with pytest.raises(OpenFlowDecodeError):
            FlowStatsEntry.unpack(bytes(raw))


class TestRequestReplyHelpers:
    def test_request_roundtrip(self):
        request = flow_stats_request(Match(in_port=3), table_id=0, out_port=7)
        decoded = parse_message(request.pack())
        match, table_id, out_port = parse_flow_stats_request(decoded)
        assert match == Match(in_port=3)
        assert table_id == 0
        assert out_port == 7

    def test_default_request_matches_everything(self):
        match, table_id, out_port = parse_flow_stats_request(flow_stats_request())
        assert match == Match.wildcard_all()
        assert table_id == 0xFF

    def test_wrong_type_rejected(self):
        with pytest.raises(OpenFlowDecodeError):
            parse_flow_stats_request(StatsRequest(StatsType.DESC))
        with pytest.raises(OpenFlowDecodeError):
            parse_flow_stats_reply(StatsReply(StatsType.DESC))
        with pytest.raises(OpenFlowDecodeError):
            parse_aggregate_stats_reply(StatsReply(StatsType.FLOW))

    def test_aggregate_roundtrip(self):
        reply = aggregate_stats_reply(11, 2200, 3, xid=9)
        decoded = parse_message(reply.pack())
        assert parse_aggregate_stats_reply(decoded) == (11, 2200, 3)

    def test_truncated_aggregate_rejected(self):
        with pytest.raises(OpenFlowDecodeError):
            parse_aggregate_stats_reply(StatsReply(StatsType.AGGREGATE, b"\x00"))


@given(
    st.integers(min_value=0, max_value=0xFFFF),
    st.integers(min_value=0, max_value=0xFFFF),
    st.integers(min_value=0, max_value=(1 << 64) - 1),
    st.integers(min_value=0, max_value=(1 << 64) - 1),
    st.lists(st.integers(min_value=1, max_value=0xFF00 - 1).map(OutputAction),
             max_size=3),
)
def test_flow_stats_property_roundtrip(priority, idle, packets, byte_count, actions):
    entry = FlowStatsEntry(
        Match(in_port=1), priority=priority, idle_timeout=idle,
        packet_count=packets, byte_count=byte_count, actions=actions,
    )
    decoded, _ = FlowStatsEntry.unpack(entry.pack())
    assert decoded == entry


class TestSwitchIntegration:
    def test_switch_answers_flow_and_aggregate(self):
        from repro.experiments.compliance import ComplianceRig, data_frame
        from repro.openflow import FlowMod

        rig = ComplianceRig()
        rig.send(FlowMod(Match(in_port=1), actions=[OutputAction(2)]))
        rig.inject(1, data_frame())
        rig.send(flow_stats_request(xid=31))
        reply = rig.controller.last_of_type(StatsReply)
        entries = parse_flow_stats_reply(reply)
        assert len(entries) == 1
        assert entries[0].packet_count == 1

    def test_switch_rejects_malformed_stats_body(self):
        from repro.experiments.compliance import ComplianceRig
        from repro.openflow import ErrorMessage

        rig = ComplianceRig()
        rig.send(StatsRequest(StatsType.FLOW, b"\x00" * 4, xid=8))
        error = rig.controller.last_of_type(ErrorMessage)
        assert error is not None
        assert error.xid == 8
