"""Unit tests for OpenFlow 1.0 message pack/unpack."""

import pytest

from repro.netlib import MacAddress
from repro.openflow import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    ErrorMessage,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowModCommand,
    FlowRemoved,
    GetConfigReply,
    GetConfigRequest,
    Hello,
    Match,
    MessageType,
    OpenFlowDecodeError,
    OutputAction,
    PacketIn,
    PacketInReason,
    PacketOut,
    PhyPort,
    Port,
    PortStatus,
    SetConfig,
    SetDlDstAction,
    StatsReply,
    StatsRequest,
    StatsType,
    parse_message,
)
from repro.openflow.constants import OFP_NO_BUFFER


def roundtrip(message):
    decoded = parse_message(message.pack())
    assert decoded == message
    assert decoded.xid == message.xid
    return decoded


class TestSymmetric:
    def test_hello(self):
        roundtrip(Hello(xid=5))

    def test_echo_request_reply_payload(self):
        request = EchoRequest(payload=b"probe", xid=9)
        roundtrip(request)
        reply = EchoReply.for_request(request)
        assert reply.xid == 9
        assert reply.payload == b"probe"
        roundtrip(reply)

    def test_barrier(self):
        roundtrip(BarrierRequest())
        roundtrip(BarrierReply())

    def test_features_request(self):
        roundtrip(FeaturesRequest())

    def test_error(self):
        message = ErrorMessage(1, 6, b"context-bytes", xid=3)
        decoded = roundtrip(message)
        assert decoded.error_type == 1
        assert decoded.code == 6
        assert decoded.data == b"context-bytes"


class TestConfig:
    def test_set_config(self):
        decoded = roundtrip(SetConfig(miss_send_len=128))
        assert decoded.miss_send_len == 128

    def test_get_config(self):
        roundtrip(GetConfigRequest())
        roundtrip(GetConfigReply(miss_send_len=0xFFFF))


class TestFeaturesReply:
    def test_roundtrip_with_ports(self):
        ports = [PhyPort(index, MacAddress(index), f"s1-eth{index}")
                 for index in range(1, 4)]
        message = FeaturesReply(0xABCD, n_buffers=256, n_tables=1,
                                capabilities=0x83, ports=ports)
        decoded = roundtrip(message)
        assert decoded.datapath_id == 0xABCD
        assert [p.port_no for p in decoded.ports] == [1, 2, 3]
        assert decoded.ports[0].name == "s1-eth1"

    def test_port_name_too_long_rejected(self):
        with pytest.raises(ValueError):
            PhyPort(1, MacAddress(1), "a" * 16)


class TestPacketIn:
    def test_roundtrip(self):
        message = PacketIn(77, 1500, 3, PacketInReason.NO_MATCH, b"\xaa" * 64)
        decoded = roundtrip(message)
        assert decoded.buffer_id == 77
        assert decoded.total_len == 1500
        assert decoded.in_port == 3
        assert decoded.reason == PacketInReason.NO_MATCH
        assert decoded.data == b"\xaa" * 64

    def test_no_match_constructor(self):
        message = PacketIn.no_match(5, 2, b"abc")
        assert message.total_len == 3
        assert message.reason == PacketInReason.NO_MATCH


class TestPacketOut:
    def test_roundtrip_with_data(self):
        message = PacketOut(in_port=2, actions=[OutputAction(Port.FLOOD)],
                            data=b"frame-bytes")
        decoded = roundtrip(message)
        assert decoded.buffer_id == OFP_NO_BUFFER
        assert decoded.actions == [OutputAction(Port.FLOOD)]
        assert decoded.data == b"frame-bytes"

    def test_roundtrip_buffer_reference(self):
        message = PacketOut(buffer_id=42, in_port=1, actions=[OutputAction(3)])
        decoded = roundtrip(message)
        assert decoded.buffer_id == 42
        assert decoded.data == b""

    def test_multiple_actions(self):
        message = PacketOut(
            in_port=1,
            actions=[SetDlDstAction(MacAddress(9)), OutputAction(2), OutputAction(3)],
            data=b"x",
        )
        decoded = roundtrip(message)
        assert len(decoded.actions) == 3


class TestFlowMod:
    def test_roundtrip_full(self):
        match = Match(in_port=1, tp_dst=80, dl_type=0x0800, nw_proto=6)
        message = FlowMod(match, FlowModCommand.ADD, cookie=0xDEAD,
                          idle_timeout=5, hard_timeout=30, priority=100,
                          buffer_id=7, out_port=Port.NONE, flags=1,
                          actions=[OutputAction(4)])
        decoded = roundtrip(message)
        assert decoded.match == match
        assert decoded.command == FlowModCommand.ADD
        assert decoded.cookie == 0xDEAD
        assert (decoded.idle_timeout, decoded.hard_timeout) == (5, 30)
        assert decoded.priority == 100
        assert decoded.buffer_id == 7
        assert decoded.actions == [OutputAction(4)]

    def test_delete_command(self):
        message = FlowMod(Match.wildcard_all(), FlowModCommand.DELETE)
        assert roundtrip(message).command == FlowModCommand.DELETE

    def test_drop_rule_has_no_actions(self):
        message = FlowMod(Match(in_port=1), actions=[])
        assert roundtrip(message).actions == []


class TestFlowRemovedAndPortStatus:
    def test_flow_removed_roundtrip(self):
        message = FlowRemoved(Match(in_port=2), cookie=1, priority=5, reason=0,
                              duration_sec=12, idle_timeout=5,
                              packet_count=100, byte_count=6400)
        decoded = roundtrip(message)
        assert decoded.reason.name == "IDLE_TIMEOUT"
        assert decoded.packet_count == 100

    def test_port_status_roundtrip(self):
        port = PhyPort(3, MacAddress(3), "s1-eth3", config=1, state=1)
        message = PortStatus(1, port)
        decoded = roundtrip(message)
        assert decoded.reason.name == "DELETE"
        assert decoded.port == port


class TestStats:
    def test_stats_request_roundtrip(self):
        message = StatsRequest(StatsType.FLOW, b"match-body", flags=0)
        decoded = roundtrip(message)
        assert decoded.stats_type == StatsType.FLOW
        assert decoded.body == b"match-body"

    def test_stats_reply_roundtrip(self):
        roundtrip(StatsReply(StatsType.DESC, b"descriptions"))


class TestDecodeErrors:
    def test_short_buffer_rejected(self):
        with pytest.raises(OpenFlowDecodeError):
            parse_message(b"\x01\x00")

    def test_wrong_version_rejected(self):
        raw = bytearray(Hello().pack())
        raw[0] = 0x04  # OpenFlow 1.3
        with pytest.raises(OpenFlowDecodeError):
            parse_message(bytes(raw))

    def test_unknown_type_rejected(self):
        raw = bytearray(Hello().pack())
        raw[1] = 99
        with pytest.raises(OpenFlowDecodeError):
            parse_message(bytes(raw))

    def test_inconsistent_length_rejected(self):
        raw = bytearray(Hello().pack())
        raw[2:4] = (100).to_bytes(2, "big")
        with pytest.raises(OpenFlowDecodeError):
            parse_message(bytes(raw))

    def test_truncated_body_rejected(self):
        raw = PacketIn(1, 10, 1, 0, b"payload").pack()
        with pytest.raises(OpenFlowDecodeError):
            parse_message(raw[:9])


class TestXid:
    def test_xids_unique_when_not_given(self):
        assert Hello().xid != Hello().xid

    def test_message_type_tags(self):
        assert Hello.message_type == MessageType.HELLO
        assert FlowMod.message_type == MessageType.FLOW_MOD
        assert PacketIn.message_type == MessageType.PACKET_IN
