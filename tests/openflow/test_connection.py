"""Unit tests for OpenFlow stream framing."""

import pytest

from repro.openflow import (
    EchoRequest,
    FlowMod,
    Hello,
    Match,
    MessageFramer,
    OpenFlowDecodeError,
    PacketIn,
)


def test_single_message():
    framer = MessageFramer()
    message = Hello(xid=1)
    decoded = framer.feed(message.pack())
    assert decoded == [message]


def test_multiple_messages_one_feed():
    framer = MessageFramer()
    messages = [Hello(xid=1), EchoRequest(payload=b"x", xid=2),
                PacketIn(1, 3, 2, 0, b"abc", xid=3)]
    stream = b"".join(m.pack() for m in messages)
    assert framer.feed(stream) == messages


def test_byte_at_a_time_reassembly():
    framer = MessageFramer()
    messages = [Hello(xid=1), FlowMod(Match.wildcard_all(), xid=2)]
    stream = b"".join(m.pack() for m in messages)
    decoded = []
    for index in range(len(stream)):
        decoded.extend(framer.feed(stream[index:index + 1]))
    assert decoded == messages
    assert framer.pending_bytes == 0


def test_split_across_header_boundary():
    framer = MessageFramer()
    message = PacketIn(9, 100, 1, 0, b"\xbb" * 100)
    raw = message.pack()
    assert framer.feed(raw[:5]) == []
    assert framer.feed(raw[5:]) == [message]


def test_counters():
    framer = MessageFramer()
    raw = Hello().pack()
    framer.feed(raw)
    framer.feed(raw)
    assert framer.messages_decoded == 2
    assert framer.bytes_received == 2 * len(raw)


def test_impossible_header_length_rejected():
    framer = MessageFramer()
    with pytest.raises(OpenFlowDecodeError):
        framer.feed(b"\x01\x00\x00\x04\x00\x00\x00\x01")  # length 4 < 8


def test_buffer_overflow_guard():
    framer = MessageFramer(max_buffer=64)
    # A header claiming a giant message, then padding that never completes it.
    header = b"\x01\x00\xff\xff\x00\x00\x00\x01"
    with pytest.raises(OpenFlowDecodeError):
        framer.feed(header + b"\x00" * 128)


def test_reset_discards_partial():
    framer = MessageFramer()
    framer.feed(Hello().pack()[:4])
    assert framer.pending_bytes == 4
    framer.reset()
    assert framer.pending_bytes == 0
