"""Wire-level guarantees behind the injector's zero-copy fast lane.

Three invariants keep the lazy-decode path sound:

* every registered message round-trips (``parse_message(m.pack()) == m``)
  and re-packs to byte-identical output, so pass-through can safely reuse
  the original frame bytes;
* the header-only type peek agrees with the full decode whenever the full
  decode succeeds;
* the packed-bytes cache on ``OpenFlowMessage`` is invalidated by field
  mutation (and by ``invalidate_packed()`` for nested edits).
"""

import pytest

from repro.netlib import MacAddress
from repro.openflow import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    ErrorMessage,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowRemoved,
    GetConfigReply,
    GetConfigRequest,
    Hello,
    Match,
    OutputAction,
    PacketIn,
    PacketOut,
    PhyPort,
    PortStatus,
    SetConfig,
    StatsReply,
    StatsRequest,
    StatsType,
    parse_message,
)
from repro.openflow.connection import MessageFramer
from repro.openflow.messages import (
    OpenFlowMessage,
    VendorMessage,
    peek_message_type_name,
)
import repro.openflow.messages as messages_module


def _port(no=1):
    return PhyPort(no, MacAddress("00:00:00:00:00:01"), f"eth{no}")


def sample_instances():
    """One representative instance of every registered message type."""
    return [
        Hello(),
        FeaturesRequest(),
        GetConfigRequest(),
        BarrierRequest(),
        BarrierReply(),
        EchoRequest(payload=b"probe"),
        EchoReply(payload=b"probe"),
        ErrorMessage(1, 6, b"context"),
        VendorMessage(0x2320, b"opaque"),
        GetConfigReply(miss_send_len=64),
        SetConfig(miss_send_len=128),
        FeaturesReply(0x1, ports=[_port(1), _port(2)]),
        PacketIn.no_match(7, 3, b"\x00" * 24),
        PacketOut(in_port=2, actions=[OutputAction(3)], data=b"\x01" * 16),
        FlowMod(Match(in_port=1, tp_dst=80), idle_timeout=5,
                actions=[OutputAction(2)]),
        FlowRemoved(Match(in_port=1), cookie=9, priority=10, reason=0,
                    packet_count=4, byte_count=256),
        PortStatus(0, _port(4)),
        StatsRequest(StatsType.FLOW, b"\x00" * 44),
        StatsReply(StatsType.DESC, b"\x00" * 1056),
    ]


class TestRegistryRoundTrip:
    def test_samples_cover_every_registered_type(self):
        sampled = {type(m) for m in sample_instances()}
        registered = set(OpenFlowMessage._registry.values())
        assert sampled == registered

    @pytest.mark.parametrize(
        "message", sample_instances(), ids=lambda m: type(m).__name__
    )
    def test_parse_of_pack_is_identity(self, message):
        assert parse_message(message.pack()) == message

    @pytest.mark.parametrize(
        "message", sample_instances(), ids=lambda m: type(m).__name__
    )
    def test_repack_is_byte_identical(self, message):
        raw = message.pack()
        assert parse_message(raw).pack() == raw


class TestPackedCache:
    def test_pack_is_cached(self):
        message = Hello(xid=5)
        assert message.pack() is message.pack()

    def test_direct_field_mutation_invalidates(self):
        message = EchoRequest(payload=b"a", xid=5)
        before = message.pack()
        message.payload = b"bb"
        after = message.pack()
        assert after != before
        assert parse_message(after).payload == b"bb"

    def test_xid_mutation_invalidates(self):
        message = Hello(xid=5)
        message.pack()
        message.xid = 6
        assert parse_message(message.pack()).xid == 6

    def test_nested_mutation_needs_explicit_invalidate(self):
        flow_mod = FlowMod(Match(in_port=1), actions=[OutputAction(2)])
        stale = flow_mod.pack()
        flow_mod.actions[0].port = 7
        flow_mod.invalidate_packed()
        fresh = flow_mod.pack()
        assert fresh != stale
        assert parse_message(fresh).actions[0].port == 7


class TestHeaderPeek:
    @pytest.mark.parametrize(
        "message", sample_instances(), ids=lambda m: type(m).__name__
    )
    def test_peek_agrees_with_full_decode(self, message):
        raw = message.pack()
        assert peek_message_type_name(raw) == message.message_type.name

    def test_peek_rejects_short_buffers(self):
        assert peek_message_type_name(b"\x01\x00") is None

    def test_peek_rejects_wrong_version(self):
        raw = bytearray(Hello().pack())
        raw[0] = 0x04
        assert peek_message_type_name(bytes(raw)) is None

    def test_peek_rejects_unknown_type(self):
        raw = bytearray(Hello().pack())
        raw[1] = 0xEE
        assert peek_message_type_name(bytes(raw)) is None


class TestFrameExtraction:
    def test_feed_frames_are_byte_identical_slices(self):
        stream = b"".join(m.pack() for m in sample_instances())
        framer = MessageFramer()
        frames = []
        # Dribble the stream in 7-byte chunks to exercise reassembly.
        for start in range(0, len(stream), 7):
            frames.extend(framer.feed_frames(stream[start:start + 7]))
        assert b"".join(frames) == stream
        assert len(frames) == len(sample_instances())

    def test_feed_frames_passes_undecodable_bodies(self):
        """Framing is length-only: garbage with a sane header is framed."""
        frame = bytearray(EchoRequest(payload=b"xxxx").pack())
        frame[1] = 0xEE  # unknown type — parse_message would reject this
        frames = MessageFramer().feed_frames(bytes(frame))
        assert frames == [bytes(frame)]

    def test_feed_still_parses(self):
        message = FlowMod(Match(in_port=1), actions=[OutputAction(2)])
        decoded = MessageFramer().feed(message.pack())
        assert decoded == [message]


class TestXidAllocation:
    def test_wraparound_skips_zero(self):
        original = messages_module._xid_next
        try:
            messages_module._xid_next = 0xFFFFFFFE
            xids = [messages_module.next_xid() for _ in range(4)]
            assert xids == [0xFFFFFFFE, 0xFFFFFFFF, 1, 2]
        finally:
            messages_module._xid_next = original

    def test_xids_monotonic_in_normal_range(self):
        first = messages_module.next_xid()
        second = messages_module.next_xid()
        assert second == first + 1
        assert 0 not in (first, second)
