"""Unit tests for OpenFlow 1.0 action TLVs."""

import pytest

from repro.netlib import Ipv4Address, MacAddress
from repro.openflow import (
    OutputAction,
    Port,
    SetDlDstAction,
    SetDlSrcAction,
    SetNwDstAction,
    SetNwSrcAction,
    StripVlanAction,
)
from repro.openflow.actions import (
    Action,
    ActionDecodeError,
    SetTpDstAction,
    SetTpSrcAction,
    UnknownAction,
    output_actions,
)


def roundtrip_list(actions):
    packed = Action.pack_list(actions)
    decoded = Action.unpack_list(packed)
    assert decoded == actions
    return decoded


def test_output_roundtrip():
    roundtrip_list([OutputAction(3, max_len=128)])


def test_output_to_reserved_ports():
    for port in (Port.FLOOD, Port.CONTROLLER, Port.ALL, Port.IN_PORT):
        decoded = roundtrip_list([OutputAction(port)])
        assert decoded[0].port == port


def test_every_action_length_is_multiple_of_8():
    actions = [
        OutputAction(1),
        StripVlanAction(),
        SetDlSrcAction(MacAddress(1)),
        SetDlDstAction(MacAddress(2)),
        SetNwSrcAction(Ipv4Address("10.0.0.1")),
        SetNwDstAction(Ipv4Address("10.0.0.2")),
        SetTpSrcAction(80),
        SetTpDstAction(443),
    ]
    for action in actions:
        assert len(action.pack()) % 8 == 0


def test_mixed_action_list_roundtrip():
    actions = [
        SetDlSrcAction(MacAddress(5)),
        SetNwDstAction(Ipv4Address("192.168.1.1")),
        SetTpDstAction(8080),
        OutputAction(7),
    ]
    roundtrip_list(actions)


def test_unknown_action_roundtrips_as_bytes():
    unknown = UnknownAction(0xFF00, b"\x00" * 4)
    decoded = Action.unpack_list(unknown.pack())
    assert isinstance(decoded[0], UnknownAction)
    assert decoded[0].pack() == unknown.pack()


def test_truncated_action_header_rejected():
    with pytest.raises(ActionDecodeError):
        Action.unpack_list(b"\x00\x00")


def test_bad_action_length_rejected():
    # Claimed length 4 (< 8 minimum).
    with pytest.raises(ActionDecodeError):
        Action.unpack_list(b"\x00\x00\x00\x04")


def test_overflowing_action_length_rejected():
    with pytest.raises(ActionDecodeError):
        Action.unpack_list(b"\x00\x00\x00\x10\x00\x00\x00\x00")


def test_output_body_must_be_4_bytes():
    with pytest.raises(ActionDecodeError):
        OutputAction.unpack_body(b"\x00\x00")


def test_tp_port_bounds():
    with pytest.raises(ValueError):
        SetTpSrcAction(0x10000)


def test_output_actions_helper():
    actions = output_actions(1, 2, 3)
    assert [a.port for a in actions] == [1, 2, 3]


def test_action_equality():
    assert OutputAction(1) == OutputAction(1)
    assert OutputAction(1) != OutputAction(2)
    assert hash(OutputAction(1)) == hash(OutputAction(1))


def test_empty_action_list():
    assert Action.unpack_list(b"") == []
    assert Action.pack_list([]) == b""
