"""Property-based round-trips for OpenFlow matches and messages."""

from hypothesis import given, strategies as st

from repro.netlib.addresses import Ipv4Address, MacAddress
from repro.openflow import (
    EchoRequest,
    ErrorMessage,
    FlowMod,
    FlowModCommand,
    Match,
    MessageFramer,
    OutputAction,
    PacketIn,
    PacketOut,
    parse_message,
)

macs = st.integers(min_value=0, max_value=(1 << 48) - 1).map(MacAddress)
ips = st.integers(min_value=0, max_value=(1 << 32) - 1).map(Ipv4Address)
ports16 = st.integers(min_value=0, max_value=0xFFFF)
maybe = lambda strategy: st.none() | strategy  # noqa: E731

matches = st.builds(
    Match,
    in_port=maybe(ports16),
    dl_src=maybe(macs),
    dl_dst=maybe(macs),
    dl_vlan=maybe(ports16),
    dl_vlan_pcp=maybe(st.integers(min_value=0, max_value=7)),
    dl_type=maybe(ports16),
    nw_tos=maybe(st.integers(min_value=0, max_value=255)),
    nw_proto=maybe(st.integers(min_value=0, max_value=255)),
    nw_src=maybe(ips),
    nw_dst=maybe(ips),
    tp_src=maybe(ports16),
    tp_dst=maybe(ports16),
    nw_src_prefix=st.integers(min_value=1, max_value=32),
    nw_dst_prefix=st.integers(min_value=1, max_value=32),
)

action_lists = st.lists(
    st.builds(OutputAction, port=ports16, max_len=ports16), max_size=4
)


@given(matches)
def test_match_roundtrip(match):
    assert Match.unpack(match.pack()) == match


@given(matches)
def test_match_subsumes_is_reflexive(match):
    assert match.subsumes(match)


@given(matches)
def test_wildcard_all_subsumes_everything(match):
    assert Match.wildcard_all().subsumes(match)


@given(
    matches,
    st.sampled_from(list(FlowModCommand)),
    st.integers(min_value=0, max_value=(1 << 64) - 1),
    ports16,
    ports16,
    ports16,
    action_lists,
)
def test_flow_mod_roundtrip(match, command, cookie, idle, hard, priority, actions):
    message = FlowMod(match, command, cookie=cookie, idle_timeout=idle,
                      hard_timeout=hard, priority=priority, actions=actions)
    assert parse_message(message.pack()) == message


@given(st.integers(min_value=0, max_value=(1 << 32) - 1), ports16,
       st.sampled_from([0, 1]), st.binary(max_size=256))
def test_packet_in_roundtrip(buffer_id, in_port, reason, data):
    message = PacketIn(buffer_id, len(data), in_port, reason, data)
    assert parse_message(message.pack()) == message


@given(st.integers(min_value=0, max_value=(1 << 32) - 1), ports16,
       action_lists, st.binary(max_size=128))
def test_packet_out_roundtrip(buffer_id, in_port, actions, data):
    message = PacketOut(buffer_id, in_port, actions, data)
    assert parse_message(message.pack()) == message


@given(st.binary(max_size=64))
def test_echo_roundtrip(payload):
    message = EchoRequest(payload=payload)
    assert parse_message(message.pack()) == message


@given(ports16, ports16, st.binary(max_size=64))
def test_error_roundtrip(error_type, code, data):
    message = ErrorMessage(error_type, code, data)
    assert parse_message(message.pack()) == message


@given(st.lists(st.binary(max_size=32), min_size=1, max_size=8),
       st.integers(min_value=1, max_value=40))
def test_framer_reassembles_any_chunking(payloads, chunk):
    messages = [EchoRequest(payload=p) for p in payloads]
    stream = b"".join(m.pack() for m in messages)
    framer = MessageFramer()
    decoded = []
    for start in range(0, len(stream), chunk):
        decoded.extend(framer.feed(stream[start:start + chunk]))
    assert decoded == messages
