"""The campaign runner: parallelism, resume, crash retry, timeouts.

Pool-behaviour tests use the ``selfcheck`` harness (no simulation, so
they run in milliseconds); one end-to-end test runs a real two-cell
suppression matrix through worker processes.
"""

import json

import pytest

from repro.campaign import (
    CampaignSpec,
    ResultStore,
    make_record,
    run_campaign,
)
from repro.campaign.executors import execute_descriptor


def selfcheck_spec(seeds, params=None, retries=0, timeout_s=30.0, **overrides):
    return CampaignSpec.from_dict({
        "name": "selfcheck",
        "experiment": "selfcheck",
        "attacks": [None],
        "controllers": ["x"],
        "seeds": list(seeds),
        "params": params or {},
        "retries": retries,
        "timeout_s": timeout_s,
        **overrides,
    })


def test_pool_completes_matrix_in_isolated_workers(tmp_path):
    import os

    spec = selfcheck_spec(range(6))
    store = ResultStore(tmp_path / "runs.jsonl")
    summary = run_campaign(spec, store, workers=3)
    assert summary.total == summary.executed == summary.succeeded == 6
    assert summary.complete
    records = store.ok_records()
    assert len(records) == 6
    # Per-run isolation: every run got its own worker process.
    pids = {r["metrics"]["pid"] for r in records}
    assert os.getpid() not in pids
    assert {r["metrics"]["seed"] for r in records} == set(range(6))


def test_resume_skips_completed_runs(tmp_path):
    spec = selfcheck_spec(range(4))
    store = ResultStore(tmp_path / "runs.jsonl")
    done = spec.expand()[:2]
    for descriptor in done:
        store.append(make_record(descriptor.to_dict(), "ok",
                                 {"pre": True}, campaign=spec.name))
    summary = run_campaign(spec, store, workers=2)
    assert summary.skipped == 2
    assert summary.executed == 2
    # The pre-populated records were not re-run (their metrics survive).
    latest = store.latest_by_run()
    assert all(latest[d.run_id]["metrics"] == {"pre": True} for d in done)


def test_interrupted_store_reruns_only_missing(tmp_path):
    spec = selfcheck_spec(range(6))
    store = ResultStore(tmp_path / "runs.jsonl")
    assert run_campaign(spec, store, workers=3).succeeded == 6
    # Simulate an interrupt that lost half the ledger (plus a torn line).
    records = list(store.records())
    store.path.write_text(
        "\n".join(json.dumps(r) for r in records[:3]) + '\n{"torn": ')
    summary = run_campaign(spec, store, workers=3)
    assert summary.skipped == 3
    assert summary.executed == 3
    assert len(store.completed_ids()) == 6


def test_worker_crash_is_retried_until_success(tmp_path):
    # The worker hard-exits (os._exit) on attempt 1; attempt 2 succeeds.
    spec = selfcheck_spec([0], params={"crash_until_attempt": 2}, retries=2)
    store = ResultStore(tmp_path / "runs.jsonl")
    summary = run_campaign(spec, store, workers=1)
    assert summary.succeeded == 1 and summary.failed == 0
    assert summary.retries_used == 1
    (record,) = store.ok_records()
    assert record["attempts"] == 2
    assert record["metrics"]["attempt"] == 2


def test_retry_budget_exhaustion_records_failure(tmp_path):
    spec = selfcheck_spec([0], params={"fail": True}, retries=1)
    store = ResultStore(tmp_path / "runs.jsonl")
    summary = run_campaign(spec, store, workers=1)
    assert summary.failed == 1 and summary.succeeded == 0
    assert not summary.complete
    assert summary.failed_run_ids == [spec.expand()[0].run_id]
    # Every attempt leaves a record: the retried attempt as audit, the
    # exhausted one as the final failure.
    retried, failed = list(store.records())
    assert retried["status"] == "retried"
    assert retried["attempts"] == 1
    assert retried["duration_s"] >= 0.0
    assert "selfcheck: requested failure" in retried["error"]
    assert failed["status"] == "failed"
    assert failed["attempts"] == 2  # initial + 1 retry
    assert "selfcheck: requested failure" in failed["error"]
    # Neither failures nor retry audit records mark the run complete: a
    # resume would retry it, and ok_records ignores both.
    assert store.completed_ids() == set()
    assert store.ok_records() == []


def test_hung_worker_is_killed_at_the_timeout(tmp_path):
    spec = selfcheck_spec([0], params={"hang_s": 30.0},
                          retries=0, timeout_s=0.4)
    store = ResultStore(tmp_path / "runs.jsonl")
    summary = run_campaign(spec, store, workers=1)
    assert summary.failed == 1
    assert summary.duration_s < 10.0
    (record,) = list(store.records())
    assert record["status"] == "failed"
    assert "timeout" in record["error"]


def test_progress_callback_narrates_the_run(tmp_path):
    lines = []
    spec = selfcheck_spec([0, 1])
    summary = run_campaign(spec, ResultStore(tmp_path / "r.jsonl"),
                           workers=2, progress=lines.append)
    assert summary.complete
    assert any("started" in line for line in lines)
    assert any("ok" in line for line in lines)
    assert any("campaign selfcheck" in line for line in lines)


def test_unknown_experiment_fails_cleanly(tmp_path):
    spec = selfcheck_spec([0], experiment="warp")
    store = ResultStore(tmp_path / "runs.jsonl")
    summary = run_campaign(spec, store, workers=1)
    assert summary.failed == 1
    (record,) = list(store.records())
    assert "unknown experiment" in record["error"]


def test_execute_descriptor_is_seed_deterministic():
    """Same descriptor -> bit-identical metrics; the reproducibility claim."""
    descriptor = {
        "experiment": "suppression",
        "attack": "stochastic-drop",
        "controller": "pox",
        "topology": "enterprise",
        "fail_mode": "secure",
        "seed": 7,
        "params": {"ping_trials": 3, "iperf_trials": 1,
                   "iperf_duration_s": 0.5, "iperf_gap_s": 0.5,
                   "warmup_s": 2.0},
        "attack_params": {"drop_probability": 0.5},
    }
    first = execute_descriptor(dict(descriptor))
    second = execute_descriptor(dict(descriptor))
    assert first == second
    assert first["attack"] == "stochastic-drop"


def test_real_suppression_matrix_through_worker_processes(tmp_path):
    spec = CampaignSpec.from_dict({
        "name": "mini",
        "attacks": ["passthrough", "flow-mod-suppression"],
        "controllers": ["pox"],
        "seeds": [1],
        "params": {"ping_trials": 3, "iperf_trials": 1,
                   "iperf_duration_s": 0.5, "iperf_gap_s": 0.5,
                   "warmup_s": 2.0},
    })
    store = ResultStore(tmp_path / "runs.jsonl")
    summary = run_campaign(spec, store, workers=2)
    assert summary.succeeded == 2
    by_attack = {r["attack"]: r["metrics"] for r in store.ok_records()}
    assert by_attack["passthrough"]["throughput_mbps"] > 10.0
    assert by_attack["flow-mod-suppression"]["denial_of_service"] is True


def test_unexpandable_spec_raises_before_spawning(tmp_path):
    spec = selfcheck_spec([0])
    spec.retries = -1
    with pytest.raises(ValueError, match="retries"):
        run_campaign(spec, ResultStore(tmp_path / "r.jsonl"))
