"""The append-only JSONL result store: durability, resume bookkeeping."""

import json

from repro.campaign import RECORD_SCHEMA, ResultStore, RunDescriptor, make_record


def descriptor(seed=0, attack="passthrough"):
    return RunDescriptor(
        experiment="suppression", attack=attack, controller="pox",
        topology="enterprise", fail_mode="secure", seed=seed,
    )


def test_append_and_read_roundtrip(tmp_path):
    store = ResultStore(tmp_path / "runs.jsonl")
    record = make_record(descriptor().to_dict(), "ok", {"throughput_mbps": 9.0},
                         attempts=1, duration_s=0.5, campaign="c")
    assert record["schema"] == RECORD_SCHEMA
    store.append(record)
    (loaded,) = list(store.records())
    assert loaded["run_id"] == descriptor().run_id
    assert loaded["metrics"] == {"throughput_mbps": 9.0}
    assert "recorded_at" in loaded
    assert len(store) == 1


def test_completed_ids_counts_only_ok(tmp_path):
    store = ResultStore(tmp_path / "runs.jsonl")
    ok, failed = descriptor(seed=1), descriptor(seed=2)
    store.append(make_record(ok.to_dict(), "ok", {}, attempts=1))
    store.append(make_record(failed.to_dict(), "failed", None,
                             attempts=3, error="boom"))
    assert store.completed_ids() == {ok.run_id}
    assert {r["run_id"] for r in store.ok_records()} == {ok.run_id}


def test_torn_final_line_is_skipped(tmp_path):
    path = tmp_path / "runs.jsonl"
    store = ResultStore(path)
    store.append(make_record(descriptor(seed=1).to_dict(), "ok", {}))
    with path.open("a", encoding="utf-8") as handle:
        handle.write('{"run_id": "deadbeef", "status": "o')  # killed mid-write
    assert len(list(store.records())) == 1
    assert store.completed_ids() == {descriptor(seed=1).run_id}
    # The store stays appendable after the torn line.
    store.append(make_record(descriptor(seed=2).to_dict(), "ok", {}))
    assert len(store.completed_ids()) == 2


def test_latest_record_per_run_wins(tmp_path):
    store = ResultStore(tmp_path / "runs.jsonl")
    run = descriptor(seed=5)
    store.append(make_record(run.to_dict(), "ok", {"throughput_mbps": 1.0}))
    store.append(make_record(run.to_dict(), "ok", {"throughput_mbps": 2.0}))
    (latest,) = store.ok_records()
    assert latest["metrics"]["throughput_mbps"] == 2.0
    assert store.latest_by_run()[run.run_id] is not None


def test_missing_file_reads_empty(tmp_path):
    store = ResultStore(tmp_path / "never-written.jsonl")
    assert list(store.records()) == []
    assert store.completed_ids() == set()


def test_records_are_one_json_object_per_line(tmp_path):
    path = tmp_path / "runs.jsonl"
    store = ResultStore(path)
    for seed in range(3):
        store.append(make_record(descriptor(seed=seed).to_dict(), "ok", {}))
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 3
    for line in lines:
        assert isinstance(json.loads(line), dict)
