"""The append-only JSONL result store: durability, resume bookkeeping."""

import json

from repro.campaign import RECORD_SCHEMA, ResultStore, RunDescriptor, make_record


def descriptor(seed=0, attack="passthrough"):
    return RunDescriptor(
        experiment="suppression", attack=attack, controller="pox",
        topology="enterprise", fail_mode="secure", seed=seed,
    )


def test_append_and_read_roundtrip(tmp_path):
    store = ResultStore(tmp_path / "runs.jsonl")
    record = make_record(descriptor().to_dict(), "ok", {"throughput_mbps": 9.0},
                         attempts=1, duration_s=0.5, campaign="c")
    assert record["schema"] == RECORD_SCHEMA
    store.append(record)
    (loaded,) = list(store.records())
    assert loaded["run_id"] == descriptor().run_id
    assert loaded["metrics"] == {"throughput_mbps": 9.0}
    assert "recorded_at" in loaded
    assert len(store) == 1


def test_completed_ids_counts_only_ok(tmp_path):
    store = ResultStore(tmp_path / "runs.jsonl")
    ok, failed = descriptor(seed=1), descriptor(seed=2)
    store.append(make_record(ok.to_dict(), "ok", {}, attempts=1))
    store.append(make_record(failed.to_dict(), "failed", None,
                             attempts=3, error="boom"))
    assert store.completed_ids() == {ok.run_id}
    assert {r["run_id"] for r in store.ok_records()} == {ok.run_id}


def test_torn_final_line_is_skipped(tmp_path):
    path = tmp_path / "runs.jsonl"
    store = ResultStore(path)
    store.append(make_record(descriptor(seed=1).to_dict(), "ok", {}))
    with path.open("a", encoding="utf-8") as handle:
        handle.write('{"run_id": "deadbeef", "status": "o')  # killed mid-write
    assert len(list(store.records())) == 1
    assert store.completed_ids() == {descriptor(seed=1).run_id}
    # The store stays appendable after the torn line.
    store.append(make_record(descriptor(seed=2).to_dict(), "ok", {}))
    assert len(store.completed_ids()) == 2


def test_latest_record_per_run_wins(tmp_path):
    store = ResultStore(tmp_path / "runs.jsonl")
    run = descriptor(seed=5)
    store.append(make_record(run.to_dict(), "ok", {"throughput_mbps": 1.0}))
    store.append(make_record(run.to_dict(), "ok", {"throughput_mbps": 2.0}))
    (latest,) = store.ok_records()
    assert latest["metrics"]["throughput_mbps"] == 2.0
    assert store.latest_by_run()[run.run_id] is not None


def test_ok_records_follow_latest_ok_position(tmp_path):
    """An out-of-order re-run moves to the end of ``ok_records``: the
    ordering contract is the *latest* ok record's file position, not
    where the run first appeared."""
    store = ResultStore(tmp_path / "runs.jsonl")
    first, second, third = (descriptor(seed=s) for s in (1, 2, 3))
    store.append(make_record(first.to_dict(), "ok", {"v": 1.0}))
    store.append(make_record(second.to_dict(), "ok", {"v": 2.0}))
    store.append(make_record(third.to_dict(), "ok", {"v": 3.0}))
    # Re-run the first run after the others completed.
    store.append(make_record(first.to_dict(), "ok", {"v": 9.0}))
    ordered = store.ok_records()
    assert [r["run_id"] for r in ordered] == [
        second.run_id, third.run_id, first.run_id]
    assert ordered[-1]["metrics"] == {"v": 9.0}  # and it is the re-run


def test_index_picks_up_external_appends_incrementally(tmp_path):
    """Two handles on one ledger: records appended through one store
    object surface through the other without a rebuild (the tail reads
    only the new bytes), and a truncation still forces a safe rebuild."""
    path = tmp_path / "runs.jsonl"
    reader, writer = ResultStore(path), ResultStore(path)
    writer.append(make_record(descriptor(seed=1).to_dict(), "ok", {}))
    assert reader.completed_ids() == {descriptor(seed=1).run_id}
    offset_before = reader._tail.offset
    writer.append(make_record(descriptor(seed=2).to_dict(), "ok", {}))
    assert len(reader.completed_ids()) == 2
    assert reader._tail.offset > offset_before  # consumed, not re-read
    # External truncation invalidates the tail and rebuilds cleanly.
    lines = path.read_text().splitlines()
    path.write_text(lines[0] + "\n")
    assert reader.completed_ids() == {descriptor(seed=1).run_id}


def test_missing_file_reads_empty(tmp_path):
    store = ResultStore(tmp_path / "never-written.jsonl")
    assert list(store.records()) == []
    assert store.completed_ids() == set()


def test_records_are_one_json_object_per_line(tmp_path):
    path = tmp_path / "runs.jsonl"
    store = ResultStore(path)
    for seed in range(3):
        store.append(make_record(descriptor(seed=seed).to_dict(), "ok", {}))
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 3
    for line in lines:
        assert isinstance(json.loads(line), dict)


def _parses(line):
    try:
        json.loads(line)
        return True
    except json.JSONDecodeError:
        return False


def test_truncation_sweep_never_corrupts_resume(tmp_path):
    """Kill-at-every-byte sweep: truncate a healthy store after each
    possible byte, then append and re-read.  Whatever the cut point, the
    healed store must (a) keep every record whose line survived intact,
    (b) never resurrect the torn record, and (c) accept new appends on a
    clean line — so a resume neither mis-skips nor double-runs."""
    path = tmp_path / "runs.jsonl"
    store = ResultStore(path)
    runs = [descriptor(seed=seed) for seed in range(3)]
    for run in runs:
        store.append(make_record(run.to_dict(), "ok", {}))
    pristine = path.read_bytes()
    line_ends = [i + 1 for i, b in enumerate(pristine) if b == ord("\n")]
    new_run = descriptor(seed=99)
    for cut in range(len(pristine) + 1):
        path.write_bytes(pristine[:cut])
        store.append(make_record(new_run.to_dict(), "ok", {}))
        completed = store.completed_ids()
        # The new record always lands intact.
        assert new_run.run_id in completed
        # Every record whose JSON survived the cut is kept (losing only
        # the trailing newline is healed, not fatal); a truly torn one is
        # dropped, never half-parsed into a bogus run_id.
        surviving = sum(1 for end in line_ends if end - 1 <= cut)
        expected = {runs[i].run_id for i in range(surviving)} | {new_run.run_id}
        assert completed == expected, f"cut at byte {cut}"
        # The torn fragment stays (audit trail) but is the only casualty:
        # at most one unparseable line, and never the final one.
        lines = [l for l in path.read_text().splitlines() if l]
        torn = [l for l in lines if not _parses(l)]
        assert len(torn) <= 1
        assert _parses(lines[-1])


def test_heal_terminates_a_torn_tail(tmp_path):
    path = tmp_path / "runs.jsonl"
    store = ResultStore(path)
    assert store.heal() is False  # missing file: nothing to do
    store.append(make_record(descriptor(seed=1).to_dict(), "ok", {}))
    assert store.heal() is False  # healthy file: no repair needed
    with path.open("a", encoding="utf-8") as handle:
        handle.write('{"torn": tru')
    assert store.heal() is True
    assert path.read_bytes().endswith(b"\n")
    assert store.heal() is False  # idempotent


def test_record_carries_explicit_durations(tmp_path):
    record = make_record(
        descriptor().to_dict(), "ok",
        {"sim_duration_s": 135.0, "throughput_mbps": 1.0},
        duration_s=2.5,
    )
    assert record["duration_s"] == 2.5          # legacy name kept
    assert record["wall_duration_s"] == 2.5     # explicit wall clock
    assert record["sim_duration_s"] == 135.0    # lifted from metrics
    explicit = make_record(descriptor().to_dict(), "ok", {},
                           duration_s=1.0, sim_duration_s=42.0)
    assert explicit["sim_duration_s"] == 42.0
    missing = make_record(descriptor().to_dict(), "failed", None,
                          duration_s=1.0)
    assert missing["sim_duration_s"] is None


def test_write_trace_artifact(tmp_path):
    store = ResultStore(tmp_path / "runs.jsonl")
    path = store.write_trace("abc123", '{"kind":"message","seq":1,"t":0.0}')
    assert path == store.trace_path("abc123")
    assert path.parent == store.traces_dir
    content = path.read_text()
    assert content.endswith("\n")
    assert json.loads(content.strip())["kind"] == "message"
