"""Report-layer guards (zero baselines) and defense-plane columns."""

from repro.campaign import CampaignSpec, build_report, make_record


def suppression_spec(**overrides):
    return CampaignSpec.from_dict({
        "name": "guards",
        "attacks": ["passthrough", "flow-mod-suppression"],
        "controllers": ["pox"],
        "seeds": [1],
        "baseline": "passthrough",
        **overrides,
    })


def workload_spec():
    return CampaignSpec.from_dict({
        "name": "detect",
        "experiment": "workload",
        "attacks": ["passthrough", "stochastic-drop"],
        "controllers": ["pox"],
        "seeds": [1, 2],
        "baseline": "passthrough",
    })


def ok_record(descriptor, metrics):
    return make_record(descriptor.to_dict(), "ok", metrics, campaign="x")


def suppression_metrics(throughput, rtt):
    return {
        "throughput_mbps": throughput, "median_rtt_ms": rtt,
        "avg_rtt_ms": rtt, "ping_loss": 0.0, "packet_ins": 1,
        "flow_mods_dropped": 0, "denial_of_service": False,
        "unauthorized_access": False,
    }


def test_zero_throughput_baseline_does_not_divide():
    """A passthrough baseline that moved zero bytes must not raise, and
    the attacked cell's percentage shows the inf* convention."""
    spec = suppression_spec()
    records = []
    for descriptor in spec.expand():
        if descriptor.attack == "passthrough":
            records.append(ok_record(descriptor, suppression_metrics(0.0, 0.0)))
        else:
            records.append(ok_record(descriptor, suppression_metrics(40.0, 3.0)))
    report = build_report(spec, records)  # no ZeroDivisionError
    attacked = next(c for c in report.cells
                    if c.attack == "flow-mod-suppression")
    assert attacked.deltas["throughput_delta_mbps"] == 40.0
    assert attacked.deltas["throughput_delta_pct"] is None
    assert attacked.deltas["throughput_unbounded"] is True
    assert attacked.deltas["rtt_ratio"] is None
    assert attacked.deltas["rtt_unbounded"] is True
    rendered = report.render()
    assert "inf*" in rendered


def test_zero_on_zero_baseline_stays_silent():
    """Both cells at zero: deltas are plain zeros, no unbounded flag."""
    spec = suppression_spec()
    records = [ok_record(d, suppression_metrics(0.0, 0.0))
               for d in spec.expand()]
    report = build_report(spec, records)
    attacked = next(c for c in report.cells
                    if c.attack == "flow-mod-suppression")
    assert attacked.deltas.get("throughput_unbounded") is None
    assert attacked.deltas.get("throughput_delta_mbps") == 0.0


def workload_metrics(detect=None):
    metrics = {
        "packets_synthesized": 300, "packets_delivered": 60,
        "delivery_rate": 0.2, "packet_in_rate": 800.0,
        "table_occupancy_peak": 300, "evictions_capacity": 0,
        "evictions_idle": 0, "evictions_hard": 0, "flow_mods_seen": 1000,
        "median_rtt_ms": None,
    }
    if detect is not None:
        metrics.update(detect)
    return metrics


def test_detect_columns_aggregate_and_render():
    spec = workload_spec()
    records = []
    for descriptor in spec.expand():
        if descriptor.attack == "passthrough":
            records.append(ok_record(descriptor, workload_metrics()))
        else:
            records.append(ok_record(descriptor, workload_metrics({
                "detect_precision": 1.0 if descriptor.seed == 1 else 0.8,
                "detect_recall": 1.0,
                "detect_latency_s": 0.05,
                "detections": [{"detector": "pktin-rate"}],
            })))
    report = build_report(spec, records)
    attacked = next(c for c in report.cells
                    if c.attack == "stochastic-drop")
    assert attacked.metrics["detect_precision"] == 0.9
    assert attacked.metrics["detect_recall"] == 1.0
    assert attacked.metrics["detect_latency_s"] == 0.05
    baseline = next(c for c in report.cells if c.attack == "passthrough")
    assert "detect_precision" not in baseline.metrics
    rendered = report.render()
    assert "prec" in rendered and "recall" in rendered and "lat s" in rendered
    assert "0.90" in rendered  # the averaged precision column


def test_detector_that_never_fires_renders_unbounded_latency():
    spec = workload_spec()
    records = []
    for descriptor in spec.expand():
        detect = None
        if descriptor.attack != "passthrough":
            detect = {"detect_precision": None, "detect_recall": 0.0,
                      "detect_latency_s": None}
        records.append(ok_record(descriptor, workload_metrics(detect)))
    report = build_report(spec, records)
    attacked = next(c for c in report.cells
                    if c.attack == "stochastic-drop")
    assert attacked.metrics["detect_recall"] == 0.0
    assert "detect_latency_s" not in attacked.metrics
    assert "inf*" in report.render()


def test_empty_detector_payloads_do_not_break_aggregation():
    """Workload cells with no detect metrics at all (detectors off)."""
    spec = workload_spec()
    records = [ok_record(d, workload_metrics()) for d in spec.expand()]
    report = build_report(spec, records)
    for cell in report.cells:
        assert "detect_precision" not in cell.metrics
    assert "inf*" not in report.render()
