"""The sharded result store: fan-out, checkpoint resume, compaction.

The sharded store must be a drop-in for the single-file ledger (same
reader contract, same torn-line tolerance) while adding what service
mode needs: O(new records) cold resume via a persisted checkpoint, a
round-tripping manifest, legacy read-through, and tombstone-policy
compaction that never loses resume state.
"""

import json

import pytest

from repro.campaign import (
    ResultStore,
    RunDescriptor,
    ShardedResultStore,
    is_sharded_path,
    make_record,
    open_store,
    shard_for,
)
from repro.campaign.shardstore import shard_name


def descriptor(seed=0, attack="passthrough"):
    return RunDescriptor(
        experiment="suppression", attack=attack, controller="pox",
        topology="enterprise", fail_mode="secure", seed=seed,
    )


def ok(run, **metrics):
    return make_record(run.to_dict(), "ok", metrics or {"v": 1.0},
                       campaign="c")


def test_records_fan_out_by_run_id_hash(tmp_path):
    store = ShardedResultStore(tmp_path / "runs.jsonl", shards=4)
    runs = [descriptor(seed=s) for s in range(16)]
    for run in runs:
        store.append(ok(run))
    # Every record landed in exactly the shard its run ID hashes to.
    for run in runs:
        index = shard_for(run.run_id, 4)
        path = store.root / shard_name(index)
        ids = [json.loads(l)["run_id"]
               for l in path.read_text().splitlines() if l]
        assert run.run_id in ids
    # With 16 distinct runs the hash actually spreads the load.
    populated = [i for i in range(4)
                 if (store.root / shard_name(i)).exists()]
    assert len(populated) >= 2
    assert len(store) == 16


def test_all_records_for_one_run_share_a_shard(tmp_path):
    """Per-run ordering: retries/re-runs append to the same shard, so
    'later supersedes earlier' survives sharding."""
    store = ShardedResultStore(tmp_path / "runs.jsonl", shards=8)
    run = descriptor(seed=3)
    store.append(make_record(run.to_dict(), "retried", None,
                             attempts=1, error="flake"))
    store.append(make_record(run.to_dict(), "failed", None, attempts=2,
                             error="boom"))
    store.append(ok(run, v=2.0))
    populated = [store.root / shard_name(i) for i in range(8)
                 if (store.root / shard_name(i)).exists()]
    assert len(populated) == 1
    assert [r["status"] for r in store.records()] == [
        "retried", "failed", "ok"]
    (latest,) = store.ok_records()
    assert latest["metrics"] == {"v": 2.0}


def test_reader_contract_matches_plain_store(tmp_path):
    """Same append sequence -> identical completed/latest/ok views."""
    plain = ResultStore(tmp_path / "plain.jsonl")
    sharded = ShardedResultStore(tmp_path / "sharded.jsonl", shards=4)
    runs = [descriptor(seed=s) for s in range(6)]
    sequence = (
        [make_record(runs[0].to_dict(), "failed", None, error="x")]
        + [ok(run, v=float(i)) for i, run in enumerate(runs)]
        + [ok(runs[2], v=99.0)]  # re-run supersedes
    )
    for record in sequence:
        plain.append(dict(record))
        sharded.append(dict(record))
    assert sharded.completed_ids() == plain.completed_ids()
    assert len(sharded) == len(plain) == len(sequence)
    plain_latest = {k: v["metrics"] for k, v in plain.latest_by_run().items()}
    shard_latest = {k: v["metrics"]
                    for k, v in sharded.latest_by_run().items()}
    assert shard_latest == plain_latest
    assert ({r["run_id"]: r["metrics"] for r in sharded.ok_records()}
            == {r["run_id"]: r["metrics"] for r in plain.ok_records()})


def test_manifest_shard_count_round_trips(tmp_path):
    first = ShardedResultStore(tmp_path / "runs.jsonl", shards=3)
    first.append(ok(descriptor(seed=1)))
    manifest = json.loads(first.manifest_path.read_text())
    assert manifest["shards"] == 3
    # Re-opening without the shard count (or with a conflicting one)
    # adopts the manifest's value: the hash placement must not move.
    assert ShardedResultStore(tmp_path / "runs.jsonl").shards == 3
    assert ShardedResultStore(tmp_path / "runs.jsonl", shards=16).shards == 3
    reopened = ShardedResultStore(tmp_path / "runs.jsonl")
    assert reopened.completed_ids() == {descriptor(seed=1).run_id}


def test_heal_repairs_torn_tails_per_shard(tmp_path):
    store = ShardedResultStore(tmp_path / "runs.jsonl", shards=4)
    runs = [descriptor(seed=s) for s in range(8)]
    for run in runs:
        store.append(ok(run))
    torn = [p for p in (store.root / shard_name(i) for i in range(4))
            if p.exists()][:2]
    assert len(torn) == 2
    for path in torn:
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"run_id": "dead')  # killed mid-append
    assert store.heal() is True
    for path in torn:
        assert path.read_bytes().endswith(b"\n")
    assert store.heal() is False  # idempotent
    assert store.completed_ids() == {run.run_id for run in runs}


def test_resume_after_mid_append_kill_in_a_shard(tmp_path):
    """A parent killed while appending to shard-NN tears only that
    line; a fresh open neither mis-skips the torn run nor loses the
    healthy shards, and the next append heals the tail."""
    store = ShardedResultStore(tmp_path / "runs.jsonl", shards=4)
    runs = [descriptor(seed=s) for s in range(8)]
    for run in runs:
        store.append(ok(run))
    victim = descriptor(seed=99)
    shard_path = store.root / shard_name(shard_for(victim.run_id, 4))
    with shard_path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(ok(victim))[:25])  # torn: no newline
    resumed = ShardedResultStore(tmp_path / "runs.jsonl")
    completed = resumed.completed_ids()
    assert victim.run_id not in completed  # torn record never resurrects
    assert completed == {run.run_id for run in runs}
    resumed.append(ok(victim))  # the re-run lands on its own clean line
    assert victim.run_id in resumed.completed_ids()
    lines = shard_path.read_text().splitlines()
    unparseable = [l for l in lines if l]
    assert sum(1 for l in unparseable if not _parses(l)) == 1
    assert _parses(lines[-1])


def _parses(line):
    try:
        json.loads(line)
        return True
    except json.JSONDecodeError:
        return False


def test_checkpoint_makes_cold_resume_incremental(tmp_path):
    store = ShardedResultStore(tmp_path / "runs.jsonl", shards=4)
    runs = [descriptor(seed=s) for s in range(10)]
    for run in runs:
        store.append(ok(run))
    store.checkpoint()
    index = json.loads(store.index_path.read_text())
    assert index["shards"] == 4
    assert set(index["completed"]) == {run.run_id for run in runs}
    # The checkpointed open seeds the index instead of re-reading shards.
    reopened = ShardedResultStore(tmp_path / "runs.jsonl")
    assert reopened._seeded is True
    assert reopened.completed_ids() == {run.run_id for run in runs}
    # Records appended after the checkpoint are still picked up (the
    # tails resume from the recorded offsets, not from EOF).
    late = descriptor(seed=77)
    store.append(ok(late))
    fresh = ShardedResultStore(tmp_path / "runs.jsonl")
    assert fresh._seeded is True
    assert late.run_id in fresh.completed_ids()


def test_stale_checkpoint_is_rejected_not_trusted(tmp_path):
    store = ShardedResultStore(tmp_path / "runs.jsonl", shards=4)
    runs = [descriptor(seed=s) for s in range(6)]
    for run in runs:
        store.append(ok(run))
    store.checkpoint()
    # An external tool rewrites a shard under the checkpoint: the
    # fingerprint no longer matches, so the next reader rebuilds.
    populated = next(store.root / shard_name(i) for i in range(4)
                     if (store.root / shard_name(i)).exists())
    surviving = populated.read_text().splitlines()[:-1]
    dropped = json.loads(populated.read_text().splitlines()[-1])["run_id"]
    populated.write_text("".join(line + "\n" for line in surviving))
    reopened = ShardedResultStore(tmp_path / "runs.jsonl")
    completed = reopened.completed_ids()
    assert dropped not in completed
    assert completed == {run.run_id for run in runs} - {dropped}


def test_legacy_single_file_reads_through(tmp_path):
    """An existing single-file ledger keeps working unchanged when the
    store is opened sharded: its records come first, count toward
    resume, and a re-run's shard record supersedes the legacy one."""
    path = tmp_path / "runs.jsonl"
    legacy = ResultStore(path)
    old_runs = [descriptor(seed=s) for s in range(4)]
    for run in old_runs:
        legacy.append(ok(run, v=1.0))
    store = ShardedResultStore(path, shards=4)
    assert store.completed_ids() == {run.run_id for run in old_runs}
    new_run = descriptor(seed=50)
    store.append(ok(new_run, v=2.0))
    store.append(ok(old_runs[0], v=3.0))  # re-run of a legacy run
    records = list(store.records())
    assert [r["run_id"] for r in records[:4]] == [
        r.run_id for r in old_runs]  # legacy order preserved, first
    latest = store.latest_by_run()
    assert latest[old_runs[0].run_id]["metrics"] == {"v": 3.0}
    ok_ids = [r["run_id"] for r in store.ok_records()]
    assert ok_ids.index(old_runs[0].run_id) > ok_ids.index(old_runs[1].run_id)


def test_compaction_keeps_resume_equivalent_minimum(tmp_path):
    store = ShardedResultStore(tmp_path / "runs.jsonl", shards=2)
    flaky, failed, clean = (descriptor(seed=s) for s in (1, 2, 3))
    store.append(make_record(flaky.to_dict(), "retried", None,
                             attempts=1, error="flake"))
    store.append(ok(flaky, v=1.0))
    store.append(ok(flaky, v=2.0))  # supersedes
    store.append(make_record(failed.to_dict(), "failed", None,
                             attempts=2, error="boom"))
    store.append(ok(clean, v=3.0))
    before = (store.completed_ids(), store.latest_by_run(),
              {r["run_id"]: r["metrics"] for r in store.ok_records()})
    result = store.compact()
    # Kept: flaky's latest ok, failed's failure, clean's ok.
    assert result["kept"] == 3
    assert result["archived"] == 2  # the retry audit + superseded ok
    assert result["generation"] == 1
    after = (store.completed_ids(), store.latest_by_run(),
             {r["run_id"]: r["metrics"] for r in store.ok_records()})
    assert after[0] == before[0]
    assert after[2] == before[2]
    assert {k: v["status"] for k, v in after[1].items()} \
        == {k: v["status"] for k, v in before[1].items()}
    # The dropped records moved to the audit archive, not the void.
    archived = list((store.archive_dir).glob("compact-*.jsonl"))
    assert len(archived) == 1
    audit = [json.loads(l) for l in archived[0].read_text().splitlines()]
    assert {r["status"] for r in audit} == {"retried", "ok"}
    # A fresh open of the compacted layout agrees.
    assert ShardedResultStore(tmp_path / "runs.jsonl").completed_ids() \
        == before[0]


def test_compaction_migrates_the_legacy_ledger(tmp_path):
    path = tmp_path / "runs.jsonl"
    legacy = ResultStore(path)
    runs = [descriptor(seed=s) for s in range(5)]
    for run in runs:
        legacy.append(ok(run))
    store = ShardedResultStore(path, shards=4)
    result = store.compact()
    assert result["migrated"] == 5
    assert not path.exists()  # parked under archive/, not deleted
    parked = list(store.archive_dir.glob("legacy-*-runs.jsonl"))
    assert len(parked) == 1
    assert len(parked[0].read_text().splitlines()) == 5
    assert store.completed_ids() == {run.run_id for run in runs}
    # All records now live in shards, placed by the same hash.
    for run in runs:
        shard = store.root / shard_name(shard_for(run.run_id, 4))
        assert run.run_id in shard.read_text()


def test_auto_compaction_policy_needs_floor_and_ratio(tmp_path):
    store = ShardedResultStore(tmp_path / "runs.jsonl", shards=2)
    run = descriptor(seed=1)
    # Below the absolute floor: plenty stale by ratio, but too small to
    # be worth a rewrite.
    for i in range(10):
        store.append(ok(run, v=float(i)))
    assert store.maybe_compact() is None
    # Past the floor and majority-stale: compacts.
    for i in range(80):
        store.append(ok(run, v=float(i)))
    result = store.maybe_compact()
    assert result is not None
    assert result["kept"] == 1
    assert store.stats()["superseded"] == 0
    # Immediately after compaction there is nothing left to reclaim.
    assert store.maybe_compact() is None


def test_open_store_autodetects_layout(tmp_path):
    plain_path = tmp_path / "plain.jsonl"
    assert isinstance(open_store(plain_path), ResultStore)
    assert not is_sharded_path(plain_path)
    sharded_path = tmp_path / "svc.jsonl"
    created = open_store(sharded_path, sharded=True, shards=4)
    assert isinstance(created, ShardedResultStore)
    created.append(ok(descriptor(seed=1)))
    # Once the manifest exists, a bare open finds the sharded layout.
    assert is_sharded_path(sharded_path)
    auto = open_store(sharded_path)
    assert isinstance(auto, ShardedResultStore)
    assert auto.shards == 4
    # The .d directory itself also names the store (watch-friendly).
    from_dir = open_store(tmp_path / "svc.jsonl.d")
    assert isinstance(from_dir, ShardedResultStore)
    assert from_dir.path == sharded_path
    # sharded=False forces the legacy flavour even beside a layout.
    assert isinstance(open_store(sharded_path, sharded=False), ResultStore)


def test_shard_count_must_be_positive(tmp_path):
    with pytest.raises(ValueError, match="shard"):
        ShardedResultStore(tmp_path / "runs.jsonl", shards=-1)
    # Zero means "unspecified" and falls back to the default fan-out.
    assert ShardedResultStore(tmp_path / "runs.jsonl", shards=0).shards > 0


def test_trace_artifacts_live_under_the_layout(tmp_path):
    store = ShardedResultStore(tmp_path / "runs.jsonl", shards=2)
    path = store.write_trace("abc123", '{"kind":"message","seq":1}')
    assert path == store.trace_path("abc123")
    assert path.parent == store.root / "traces"
    assert path.read_text().endswith("\n")
