"""The campaign scheduler: service mode, streaming, and pool fault fixes.

Covers what the single-spec runner never exercised: specs submitted
while the pool is mid-campaign, per-record streaming to subscribers and
the events tail, the serve-loop spec inbox, checkpoint/compaction
integration with the sharded store — and the two long-service
regressions (zombie workers on a failed idle hand-off, lost retry
wall-clock) that motivated the scheduler in the first place.
"""

import json
import os
import signal
import time

from repro.campaign import (
    CampaignAggregator,
    CampaignScheduler,
    CampaignSpec,
    ResultStore,
    ShardedResultStore,
    stream_path_for,
)
from repro.cli import main


def selfcheck_spec(seeds, params=None, retries=0, timeout_s=30.0, **overrides):
    return CampaignSpec.from_dict({
        "name": overrides.pop("name", "selfcheck"),
        "experiment": "selfcheck",
        "attacks": [None],
        "controllers": ["x"],
        "seeds": list(seeds),
        "params": params or {},
        "retries": retries,
        "timeout_s": timeout_s,
        **overrides,
    })


def spec_payload(name, seeds, params=None):
    return {
        "name": name,
        "experiment": "selfcheck",
        "attacks": [None],
        "controllers": ["x"],
        "seeds": list(seeds),
        "params": params or {},
    }


def test_submit_while_running_reuses_warm_workers(tmp_path):
    store = ResultStore(tmp_path / "runs.jsonl")
    scheduler = CampaignScheduler(store, workers=1)
    try:
        first = scheduler.submit(selfcheck_spec(range(3), name="first"))
        # Drive the pool until the first campaign has produced at least
        # one record, then inject a second spec mid-flight.
        while not store.completed_ids():
            scheduler.step()
        second = scheduler.submit(selfcheck_spec([10, 11], name="second"))
        scheduler.run_until_idle()
    finally:
        scheduler.shutdown()
    assert first.done and second.done
    assert first.summary.succeeded == 3
    assert second.summary.succeeded == 2
    # The whole point of the service: the second campaign rode the warm
    # pool instead of paying its own spawn.
    assert scheduler.processes_spawned == 1
    assert second.summary.processes_spawned == 0
    by_campaign = {}
    for record in store.ok_records():
        by_campaign.setdefault(record["campaign"], set()).add(
            record["metrics"]["seed"])
    assert by_campaign == {"first": {0, 1, 2}, "second": {10, 11}}


def test_records_stream_to_subscribers_and_events_file(tmp_path):
    store = ResultStore(tmp_path / "runs.jsonl")
    events = tmp_path / "events.jsonl"
    seen = []
    scheduler = CampaignScheduler(store, workers=2, stream_path=events)
    scheduler.subscribe(seen.append)
    # A broken subscriber must never take down the pool.
    scheduler.subscribe(lambda record: (_ for _ in ()).throw(RuntimeError()))
    try:
        scheduler.submit(selfcheck_spec(range(4)))
        scheduler.run_until_idle()
    finally:
        scheduler.shutdown()
    assert len(seen) == 4
    # Subscribers got the record exactly as written, stamp included.
    assert all(r["status"] == "ok" and "recorded_at" in r for r in seen)
    streamed = [json.loads(l) for l in events.read_text().splitlines()]
    assert streamed == sorted(seen, key=streamed.index)
    assert {r["run_id"] for r in streamed} == store.completed_ids()
    assert scheduler.stream_seconds >= 0.0


def test_killed_idle_worker_is_reaped_not_leaked(tmp_path):
    """The zombie regression: an idle pooled worker dies between runs;
    the failed hand-off must fully reap it (join + close the parent
    pipe end) and re-queue the task on a fresh worker."""
    import multiprocessing

    store = ResultStore(tmp_path / "runs.jsonl")
    scheduler = CampaignScheduler(store, workers=1)
    try:
        scheduler.submit(selfcheck_spec([0]))
        scheduler.run_until_idle()
        (idle_slot,) = scheduler._slots
        victim = idle_slot.process
        os.kill(victim.pid, signal.SIGKILL)
        deadline = time.time() + 5.0
        while victim.is_alive() and time.time() < deadline:
            time.sleep(0.01)
        # The next submission trips the dead-pipe path in _assign.
        job = scheduler.submit(selfcheck_spec([1]))
        scheduler.run_until_idle()
        assert job.summary.succeeded == 1
        # The corpse was joined (exitcode collected => no zombie) and
        # its slot replaced rather than reused.
        assert victim.exitcode is not None
        assert victim not in [s.process for s in scheduler._slots]
        assert scheduler.processes_spawned == 2
    finally:
        scheduler.shutdown()
    # After shutdown nothing is left running under this process.
    for child in multiprocessing.active_children():
        child.join(timeout=5.0)
    assert not any(p.is_alive() for p in multiprocessing.active_children())


def test_shutdown_closes_every_parent_pipe_end(tmp_path):
    store = ResultStore(tmp_path / "runs.jsonl")
    scheduler = CampaignScheduler(store, workers=2)
    scheduler.submit(selfcheck_spec(range(4)))
    scheduler.run_until_idle()
    conns = [slot.conn for slot in scheduler._slots]
    assert conns
    scheduler.shutdown()
    assert all(conn.closed for conn in conns)
    scheduler.shutdown()  # idempotent


def test_retried_attempt_leaves_an_audit_record(tmp_path):
    """The lost-retry-accounting fix: a crash retried to success leaves
    a ``retried`` record carrying the failed attempt's wall-clock, and
    resume/report treat it as pure audit."""
    store = ResultStore(tmp_path / "runs.jsonl")
    scheduler = CampaignScheduler(store, workers=1)
    try:
        job = scheduler.submit(selfcheck_spec(
            [0], params={"crash_until_attempt": 2}, retries=2))
        scheduler.run_until_idle()
    finally:
        scheduler.shutdown()
    assert job.summary.succeeded == 1
    assert job.summary.retries_used == 1
    retried, okayed = list(store.records())
    assert retried["status"] == "retried"
    assert retried["attempts"] == 1
    assert retried["duration_s"] >= 0.0
    assert "worker crashed" in retried["error"]
    assert retried["worker"]["pid"]
    assert okayed["status"] == "ok" and okayed["attempts"] == 2
    # Audit only: the run is complete because of the ok record alone.
    (only_ok,) = store.ok_records()
    assert only_ok["status"] == "ok"


def test_aggregator_folds_every_streamed_record(tmp_path):
    store = ResultStore(tmp_path / "runs.jsonl")
    aggregator = CampaignAggregator()
    scheduler = CampaignScheduler(store, workers=2, aggregator=aggregator)
    try:
        scheduler.submit(selfcheck_spec(range(5)))
        scheduler.submit(selfcheck_spec([0], params={"fail": True},
                                        name="doomed"))
        scheduler.run_until_idle()
    finally:
        scheduler.shutdown()
    assert aggregator.records_seen == 6
    cells = {cell.key[0]: cell for cell in aggregator.cells()}
    assert cells["selfcheck"].ok == 5
    assert cells["doomed"].failed == 1
    digest = cells["selfcheck"].digests["wall_duration_s"]
    assert digest.count == 5
    assert "wall_duration_s" in aggregator.render()


def test_sharded_store_is_checkpointed_while_serving(tmp_path):
    store = ShardedResultStore(tmp_path / "runs.jsonl", shards=4)
    scheduler = CampaignScheduler(store, workers=2, checkpoint_every=2)
    try:
        scheduler.submit(selfcheck_spec(range(5)))
        scheduler.run_until_idle()
        assert store.index_path.exists()  # mid-run, before shutdown
    finally:
        scheduler.shutdown()
    # A cold open resumes from the checkpoint, not a full re-read.
    reopened = ShardedResultStore(tmp_path / "runs.jsonl")
    assert reopened._seeded is True
    assert len(reopened.completed_ids()) == 5


def test_serve_ingests_specs_from_the_inbox(tmp_path):
    inbox = tmp_path / "inbox"
    inbox.mkdir()
    (inbox / "good.json").write_text(json.dumps(spec_payload("inboxed", [0, 1])))
    (inbox / "broken.json").write_text("{not a spec")
    (inbox / "notes.txt").write_text("ignored: wrong suffix")
    store = ResultStore(tmp_path / "runs.jsonl")
    scheduler = CampaignScheduler(store, workers=1)
    jobs = scheduler.serve(inbox=inbox, idle_exit_s=0.3)
    assert [job.spec.name for job in jobs] == ["inboxed"]
    assert jobs[0].summary.succeeded == 2
    # Spool hygiene: accepted specs land in done/, rejects in failed/,
    # non-spec files stay put.
    assert (inbox / "done" / "good.json").exists()
    assert (inbox / "failed" / "broken.json").exists()
    assert (inbox / "notes.txt").exists()
    assert scheduler._closed  # serve shuts the pool down on exit


def test_serve_stop_callback_ends_the_loop(tmp_path):
    store = ResultStore(tmp_path / "runs.jsonl")
    scheduler = CampaignScheduler(store, workers=1)
    started = time.time()
    scheduler.serve(stop=lambda: time.time() - started > 0.2)
    assert scheduler._closed
    assert time.time() - started < 10.0


def test_submit_resumes_against_existing_records(tmp_path):
    store = ResultStore(tmp_path / "runs.jsonl")
    warm = CampaignScheduler(store, workers=1)
    try:
        warm.submit(selfcheck_spec(range(3)))
        warm.run_until_idle()
    finally:
        warm.shutdown()
    fresh = CampaignScheduler(store, workers=1)
    try:
        job = fresh.submit(selfcheck_spec(range(5)))
        fresh.run_until_idle()
    finally:
        fresh.shutdown()
    assert job.summary.skipped == 3
    assert job.summary.executed == 2
    assert len(store.completed_ids()) == 5


def test_cli_serve_then_watch_round_trip(tmp_path, capsys):
    """End-to-end service smoke through the CLI entry point: serve a
    spec into a sharded store, then watch replays the streamed tail."""
    spec_path = tmp_path / "svc.json"
    spec_path.write_text(json.dumps(spec_payload("svc", [0, 1, 2])))
    store_path = tmp_path / "results.jsonl"
    code = main(["campaign", "serve", str(spec_path),
                 "--store", str(store_path),
                 "--workers", "1", "--idle-exit", "0.2", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["jobs"][0]["succeeded"] == 3
    assert payload["store"] == str(store_path)
    # serve defaults to the sharded layout and streams into it.
    events = stream_path_for(ShardedResultStore(store_path))
    assert payload["stream"] == str(events)
    assert len(events.read_text().splitlines()) == 3
    code = main(["campaign", "watch", str(store_path.with_name(
        store_path.name + ".d")), "--from-start", "--count", "3",
        "--timeout", "5"])
    assert code == 0
    watched = capsys.readouterr().out.strip().splitlines()
    assert len(watched) == 3
    assert all(json.loads(line)["campaign"] == "svc" for line in watched)


def test_cli_watch_times_out_without_records(tmp_path):
    quiet = tmp_path / "empty.events.jsonl"
    quiet.write_text("")
    assert main(["campaign", "watch", str(quiet),
                 "--count", "1", "--timeout", "0.3"]) == 1


def test_cli_submit_spools_into_the_inbox(tmp_path, capsys):
    spec_path = tmp_path / "svc.json"
    spec_path.write_text(json.dumps(spec_payload("svc", [0])))
    inbox = tmp_path / "inbox"
    assert main(["campaign", "submit", str(spec_path),
                 "--inbox", str(inbox), "--json"]) == 0
    out = json.loads(capsys.readouterr().out)
    spooled = inbox / "svc.json"
    assert spooled.exists()
    assert out["spooled"] == str(spooled)
    assert out["campaign"] == "svc"
    # No half-written spool files: the .part staging name is gone.
    assert list(inbox.glob("*.part")) == []
    # A second submit of the same name dedups instead of clobbering.
    assert main(["campaign", "submit", str(spec_path),
                 "--inbox", str(inbox)]) == 0
    assert (inbox / "svc.1.json").exists()
