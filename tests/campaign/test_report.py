"""Report aggregation: baseline deltas, Table II metrics, rendering."""

from repro.campaign import CampaignSpec, build_report, make_record


def suppression_spec(controllers=("pox",), seeds=(1, 2)):
    return CampaignSpec.from_dict({
        "name": "report-test",
        "attacks": ["passthrough", "flow-mod-suppression"],
        "controllers": list(controllers),
        "seeds": list(seeds),
        "baseline": "passthrough",
    })


def ok_record(descriptor, metrics):
    return make_record(descriptor.to_dict(), "ok", metrics, campaign="x")


def suppression_metrics(throughput, rtt, dos=False, loss=0.0):
    return {
        "throughput_mbps": throughput,
        "median_rtt_ms": rtt,
        "avg_rtt_ms": rtt,
        "ping_loss": loss,
        "packet_ins": 10,
        "flow_mods_dropped": 0,
        "denial_of_service": dos,
        "unauthorized_access": False,
    }


def test_baseline_relative_deltas():
    spec = suppression_spec()
    records = []
    for descriptor in spec.expand():
        if descriptor.attack == "passthrough":
            records.append(ok_record(descriptor, suppression_metrics(100.0, 2.0)))
        else:
            records.append(ok_record(descriptor, suppression_metrics(25.0, 6.0)))
    report = build_report(spec, records)
    assert report.ok_runs == 4 and report.missing_runs == 0
    attacked = next(c for c in report.cells
                    if c.attack == "flow-mod-suppression")
    baseline = next(c for c in report.cells if c.attack == "passthrough")
    assert baseline.is_baseline and not attacked.is_baseline
    assert baseline.deltas == {}
    assert attacked.metrics["throughput_mbps"] == 25.0
    assert attacked.deltas["throughput_delta_mbps"] == -75.0
    assert attacked.deltas["throughput_delta_pct"] == -75.0
    assert attacked.deltas["rtt_delta_ms"] == 4.0
    assert attacked.deltas["rtt_ratio"] == 3.0


def test_total_dos_reports_unbounded_latency():
    spec = suppression_spec(seeds=(1,))
    records = []
    for descriptor in spec.expand():
        if descriptor.attack == "passthrough":
            records.append(ok_record(descriptor, suppression_metrics(100.0, 2.0)))
        else:
            records.append(ok_record(descriptor, {
                **suppression_metrics(0.0, None, dos=True, loss=1.0),
                "median_rtt_ms": None,
            }))
    report = build_report(spec, records)
    attacked = next(c for c in report.cells
                    if c.attack == "flow-mod-suppression")
    assert attacked.deltas["latency_unbounded"] is True
    assert attacked.deltas["throughput_delta_pct"] == -100.0
    assert attacked.metrics["denial_of_service_rate"] == 1.0
    rendered = report.render()
    assert "inf*" in rendered
    assert "-100.0%" in rendered


def test_missing_and_failed_runs_are_counted():
    spec = suppression_spec()
    runs = spec.expand()
    records = [ok_record(runs[0], suppression_metrics(100.0, 2.0))]
    records.append(make_record(runs[1].to_dict(), "failed", None,
                               attempts=2, error="boom"))
    report = build_report(spec, records)
    assert report.ok_runs == 1
    assert report.failed_runs == 1
    assert report.missing_runs == 3
    assert "failed" in report.render() and "missing" in report.render()


def test_stale_records_from_other_specs_ignored():
    spec = suppression_spec()
    other = CampaignSpec.from_dict({
        "name": "other", "attacks": ["delay"], "controllers": ["ryu"],
    })
    records = [ok_record(other.expand()[0], suppression_metrics(1.0, 1.0))]
    report = build_report(spec, records)
    assert report.ok_runs == 0
    assert report.missing_runs == 4


def test_interruption_cells_report_table2_metrics():
    spec = CampaignSpec.from_dict({
        "name": "t2",
        "experiment": "interruption",
        "attacks": ["connection-interruption"],
        "controllers": ["floodlight"],
        "fail_modes": ["standalone", "secure"],
        "seeds": [1],
        "baseline": None,
    })
    records = []
    for descriptor in spec.expand():
        standalone = descriptor.fail_mode == "standalone"
        records.append(ok_record(descriptor, {
            "unauthorized_access": standalone,
            "unauthorized_window_s": 30.0 if standalone else 0.0,
            "denial_of_service": not standalone,
            "interruption_happened": True,
            "external_to_internal_t50": standalone,
            "internal_to_external_t95": standalone,
        }))
    report = build_report(spec, records)
    by_mode = {c.fail_mode: c for c in report.cells}
    assert by_mode["standalone"].metrics["unauthorized_access_rate"] == 1.0
    assert by_mode["standalone"].metrics["unauthorized_window_s"] == 30.0
    assert by_mode["secure"].metrics["denial_of_service_rate"] == 1.0
    rendered = report.render()
    assert "Table II" in rendered
    assert "30.0" in rendered


def test_json_payload_roundtrips():
    import json

    spec = suppression_spec(seeds=(1,))
    records = [ok_record(d, suppression_metrics(50.0, 3.0))
               for d in spec.expand()]
    payload = build_report(spec, records).to_dict()
    rebuilt = json.loads(json.dumps(payload))
    assert rebuilt["campaign"] == "report-test"
    assert len(rebuilt["cells"]) == 2
    assert rebuilt["cells"][0]["metrics"]
