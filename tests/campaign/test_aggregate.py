"""Streaming per-cell aggregation: digest accuracy, fold semantics,
and the report layer's opt-in digest attachment."""

import json
import random

import pytest

from repro.campaign import (
    CampaignAggregator,
    CampaignSpec,
    CellAggregate,
    QuantileDigest,
    build_report,
    make_record,
)
from repro.campaign.aggregate import cell_key


def spec():
    return CampaignSpec.from_dict({
        "name": "agg",
        "experiment": "selfcheck",
        "attacks": [None],
        "controllers": ["x"],
        "seeds": [0, 1, 2],
    })


def record_for(descriptor, status="ok", metrics=None, **kwargs):
    return make_record(descriptor.to_dict(), status, metrics,
                       campaign="agg", **kwargs)


def test_digest_is_exact_below_capacity():
    digest = QuantileDigest(capacity=64)
    values = [float(v) for v in range(1, 21)]
    for value in values:
        digest.add(value)
    assert digest.count == 20
    assert digest.mean == pytest.approx(sum(values) / 20)
    assert digest.minimum == 1.0
    assert digest.maximum == 20.0
    # With every point its own centroid the quantiles interpolate the
    # true empirical distribution.
    assert digest.quantile(0.0) == 1.0
    assert digest.quantile(1.0) == 20.0
    assert digest.quantile(0.5) == pytest.approx(10.5, abs=0.5)


def test_digest_stays_bounded_and_accurate_past_capacity():
    rng = random.Random(7)
    values = [rng.gauss(100.0, 15.0) for _ in range(10_000)]
    digest = QuantileDigest(capacity=64)
    for value in values:
        digest.add(value)
    assert len(digest._centroids) <= 64
    assert digest.count == 10_000
    assert digest.mean == pytest.approx(sum(values) / len(values))
    assert digest.minimum == min(values)
    assert digest.maximum == max(values)
    ordered = sorted(values)
    for q in (0.5, 0.95):
        exact = ordered[int(q * (len(ordered) - 1))]
        spread = digest.maximum - digest.minimum
        assert digest.quantile(q) == pytest.approx(exact, abs=0.02 * spread)


def test_digest_is_deterministic_and_mergeable():
    values = [float(v % 97) for v in range(500)]
    first, second = QuantileDigest(), QuantileDigest()
    for value in values:
        first.add(value)
        second.add(value)
    assert first.to_dict() == second.to_dict()
    # Merging two halves preserves the exact moments.
    left, right = QuantileDigest(), QuantileDigest()
    for value in values[:250]:
        left.add(value)
    for value in values[250:]:
        right.add(value)
    left.merge(right)
    assert left.count == 500
    assert left.mean == pytest.approx(first.mean)
    assert left.minimum == first.minimum
    assert left.maximum == first.maximum


def test_digest_rejects_degenerate_parameters():
    with pytest.raises(ValueError, match="capacity"):
        QuantileDigest(capacity=1)
    digest = QuantileDigest()
    assert digest.quantile(0.5) == 0.0  # empty digest: harmless zero
    digest.add(3.0)
    with pytest.raises(ValueError, match="quantile"):
        digest.quantile(1.5)


def test_cell_fold_counts_statuses_and_skips_noise_metrics():
    descriptor = spec().expand()[0]
    cell = CellAggregate(cell_key(record_for(descriptor)))
    cell.fold(record_for(descriptor, "retried", None, error="flake"))
    cell.fold(record_for(descriptor, "failed", None, error="boom"))
    cell.fold(record_for(descriptor, "ok", {
        "throughput_mbps": 9.5, "seed": 7, "pid": 1234,
        "denial_of_service": False,  # bool: not a distribution
    }, duration_s=0.25))
    assert (cell.ok, cell.failed, cell.retried) == (1, 1, 1)
    assert set(cell.digests) == {"wall_duration_s", "throughput_mbps"}
    assert cell.digests["wall_duration_s"].mean == pytest.approx(0.25)
    payload = cell.to_dict()
    assert payload["cell"]["campaign"] == "agg"
    assert payload["metrics"]["throughput_mbps"]["count"] == 1


def test_aggregator_groups_by_cell_and_renders():
    aggregator = CampaignAggregator()
    for descriptor in spec().expand():
        aggregator.fold(record_for(descriptor, "ok",
                                   {"throughput_mbps": 5.0},
                                   duration_s=0.1))
    assert aggregator.records_seen == 3
    # All three seeds share one cell (same campaign/attack/controller).
    assert len(aggregator) == 1
    (cell,) = aggregator.cells()
    assert cell.ok == 3
    snapshot = aggregator.snapshot()
    assert snapshot["records"] == 3
    assert snapshot["cells"][0]["ok"] == 3
    table = aggregator.render(metric="throughput_mbps")
    assert "throughput_mbps" in table
    assert len(table.splitlines()) == 2  # header + one cell row


def test_report_digests_are_opt_in_and_default_output_is_unchanged():
    campaign = spec()
    records = [record_for(d, "ok", {"throughput_mbps": float(i + 1)},
                          duration_s=0.1 * (i + 1))
               for i, d in enumerate(campaign.expand())]
    plain = build_report(campaign, list(records))
    with_digests = build_report(campaign, list(records), digests=True)
    # Opt-out (the default) is byte-identical to the pre-digest report.
    assert "digests" not in json.dumps(plain.to_dict())
    for cell in with_digests.cells:
        assert cell.digests["ok"] == 3
        assert cell.digests["metrics"]["throughput_mbps"]["count"] == 3
    # The digest section only renders when digests were requested.
    assert "metric digests" not in plain.render()
    assert "metric digests" in with_digests.render()
    # Everything else in the two reports agrees.
    stripped = with_digests.to_dict()
    for cell in stripped["cells"]:
        cell.pop("digests", None)
    assert stripped == plain.to_dict()


def test_report_failed_ids_ignore_retried_audit_records():
    campaign = spec()
    ok_run, flaky_run, bad_run = campaign.expand()
    records = [
        record_for(ok_run, "ok", {"throughput_mbps": 1.0}),
        # Flaky: retried audit then success — not a failure.
        record_for(flaky_run, "retried", None, error="flake"),
        record_for(flaky_run, "ok", {"throughput_mbps": 2.0}),
        # Genuine failure after exhausting retries.
        record_for(bad_run, "failed", None, error="boom"),
    ]
    report = build_report(campaign, records)
    assert report.failed_runs == 1
    assert report.ok_runs == 2
