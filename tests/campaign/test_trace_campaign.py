"""Traces through the campaign pipeline, and worker-pool state hygiene.

Two contracts ride together here: (1) ``--trace`` campaigns persist one
JSONL artifact per run next to the store and stamp the record with it;
(2) the pool's per-run state reset covers *everything* a trace can see —
a trace from a reused worker is byte-identical to one from a cold
process, which is a strictly stronger check than comparing metrics
(xids and message ids leak through traces but not through metrics).
"""

import json

from repro.campaign import (
    CampaignSpec,
    ResultStore,
    reset_run_state,
    run_campaign,
)
from repro.campaign.executors import execute_descriptor
from repro.obs import TraceCollector, load_events


def interruption_spec(seeds=(0,), name="traced"):
    return CampaignSpec.from_dict({
        "name": name,
        "experiment": "interruption",
        "attacks": ["connection-interruption"],
        "controllers": ["pox"],
        "fail_modes": ["standalone"],
        "seeds": list(seeds),
        "timeout_s": 120.0,
    })


def test_traced_campaign_persists_artifacts(tmp_path):
    spec = interruption_spec()
    store = ResultStore(tmp_path / "runs.jsonl")
    summary = run_campaign(spec, store, workers=1, trace=True)
    assert summary.succeeded == 1
    (record,) = store.ok_records()
    trace_info = record["trace"]
    assert trace_info["events"] > 0
    path = store.trace_path(record["run_id"])
    assert str(path) == trace_info["path"]
    events = load_events(path)
    assert len(events) == trace_info["events"]
    # The CI smoke contract: the trace parses and shows the attack firing.
    assert any(e["kind"] == "rule_fired" for e in events)
    # Duration bookkeeping is explicit on campaign records too.
    assert record["wall_duration_s"] > 0
    assert record["sim_duration_s"] > 100.0


def test_untraced_campaign_has_no_artifacts(tmp_path):
    spec = interruption_spec(name="untraced")
    store = ResultStore(tmp_path / "runs.jsonl")
    summary = run_campaign(spec, store, workers=1)
    assert summary.succeeded == 1
    (record,) = store.ok_records()
    assert "trace" not in record
    assert not store.traces_dir.exists()


def test_pooled_worker_trace_matches_cold_run(tmp_path):
    """The satellite regression: back-to-back runs in one pooled worker
    must report byte-identical traces to cold runs of the same cells."""
    spec = interruption_spec(seeds=(0, 1), name="pool-vs-cold")
    store = ResultStore(tmp_path / "runs.jsonl")
    # workers=1 forces the second cell through a reused worker process.
    summary = run_campaign(spec, store, workers=1, trace=True)
    assert summary.succeeded == 2
    assert summary.processes_spawned == 1
    for descriptor in spec.expand():
        pooled = store.trace_path(descriptor.run_id).read_text()
        reset_run_state()
        tracer = TraceCollector()
        execute_descriptor(descriptor.to_dict(), tracer=tracer)
        assert tracer.to_jsonl() == pooled, (
            f"stale worker state leaked into {descriptor.run_id}")


def test_reset_run_state_restarts_the_xid_sequence():
    from repro.openflow.messages import Hello, next_xid

    Hello()  # advance the process-global xid counter
    first = next_xid()
    reset_run_state()
    assert next_xid() == 1
    assert first >= 1


def test_executor_skips_trace_for_unsupported_experiments():
    tracer = TraceCollector()
    metrics = execute_descriptor({
        "run_id": "x", "experiment": "selfcheck", "controller": "none",
    }, tracer=tracer)
    assert metrics["ok"]
    assert tracer.events_total == 0


def test_trace_jsonl_lines_are_valid_json(tmp_path):
    spec = interruption_spec(name="parse-check")
    store = ResultStore(tmp_path / "runs.jsonl")
    run_campaign(spec, store, workers=1, trace=True)
    (record,) = store.ok_records()
    raw = store.trace_path(record["run_id"]).read_text()
    lines = raw.strip().splitlines()
    assert lines
    for line in lines:
        event = json.loads(line)
        assert {"seq", "t", "kind"} <= set(event)
