"""Campaign pre-flight: defective cells are rejected before any worker.

The canonical defect here is a typo'd attack parameter (the factory
raises ``TypeError``), which pre-flight turns into an ``ATN000`` report.
"""

import pytest

from repro.campaign import (
    CampaignSpec,
    ResultStore,
    lint_descriptors,
    partition_pending,
    rejection_error,
    run_campaign,
)


def spec_with_bad_attack(seeds=(0, 1), **overrides):
    """selfcheck matrix: a baseline axis plus a cell whose factory raises."""
    return CampaignSpec.from_dict({
        "name": "preflight-check",
        "experiment": "selfcheck",
        "attacks": [None, "blackhole"],
        "controllers": ["x"],
        "seeds": list(seeds),
        "attack_params": {"blackhole": {"bogus_param": 1}},
        "retries": 0,
        "timeout_s": 30.0,
        **overrides,
    })


class TestPartitioning:
    def test_bad_combination_yields_atn000(self):
        pending = spec_with_bad_attack().expand()
        reports = lint_descriptors(pending)
        flagged = {key[0] for key in reports}
        assert "blackhole" in flagged
        (report,) = [r for r in reports.values() if r.has_errors]
        assert report.codes() == ["ATN000"]
        assert "bogus_param" in report.errors[0].message

    def test_baseline_cells_never_linted(self):
        spec = spec_with_bad_attack(attacks=[None])
        assert lint_descriptors(spec.expand()) == {}

    def test_partition_rejects_only_error_reports(self):
        pending = spec_with_bad_attack().expand()
        runnable, rejected = partition_pending(pending)
        assert len(runnable) == 2 and len(rejected) == 2
        assert all(d.attack is None for d in runnable)
        assert all(d.attack == "blackhole" for d, _ in rejected)

    def test_clean_attacks_stay_runnable(self):
        spec = spec_with_bad_attack(
            attacks=["passthrough"], attack_params={})
        runnable, rejected = partition_pending(spec.expand())
        assert len(runnable) == 2 and not rejected

    def test_rejection_error_names_attack_and_diagnostics(self):
        pending = spec_with_bad_attack().expand()
        _, rejected = partition_pending(pending)
        error = rejection_error(rejected[0][1])
        assert error.startswith("lint rejected attack 'blackhole'")
        assert "ATN000" in error


class TestRunnerIntegration:
    def test_rejected_cells_fail_fast_without_workers(self, tmp_path):
        spec = spec_with_bad_attack(attacks=["blackhole"])
        store = ResultStore(tmp_path / "runs.jsonl")
        summary = run_campaign(spec, store, workers=2)
        # Every cell was rejected before the pool came up.
        assert summary.lint_rejected == 2
        assert summary.processes_spawned == 0
        assert summary.executed == summary.failed == 2
        records = list(store.records())
        assert len(records) == 2
        for record in records:
            assert record["status"] == "failed"
            assert record["attempts"] == 0
            assert "lint rejected" in record["error"]
            assert "ATN000" in record["error"]

    def test_mixed_matrix_runs_clean_cells(self, tmp_path):
        spec = spec_with_bad_attack()
        store = ResultStore(tmp_path / "runs.jsonl")
        summary = run_campaign(spec, store, workers=2)
        assert summary.lint_rejected == 2
        assert summary.succeeded == 2
        assert summary.total == summary.executed == 4
        assert "rejected by lint pre-flight" in summary.render()

    def test_no_preflight_flag_bypasses_lint(self, tmp_path):
        spec = spec_with_bad_attack(attacks=["blackhole"], seeds=[0])
        store = ResultStore(tmp_path / "runs.jsonl")
        summary = run_campaign(spec, store, workers=1, preflight=False)
        assert summary.lint_rejected == 0
        # The cell reached a worker process and burned a real attempt
        # (the selfcheck harness itself never builds the attack).
        assert summary.processes_spawned >= 1
        (record,) = list(store.records())
        assert record["attempts"] >= 1

    def test_preflight_failures_retry_on_resume(self, tmp_path):
        spec = spec_with_bad_attack(attacks=["blackhole"], seeds=[0])
        store = ResultStore(tmp_path / "runs.jsonl")
        first = run_campaign(spec, store, workers=1)
        assert first.lint_rejected == 1
        # Failed records do not complete the run: a rerun retries the cell
        # (and rejects it again while the attack stays broken).
        second = run_campaign(spec, store, workers=1)
        assert second.skipped == 0
        assert second.lint_rejected == 1
