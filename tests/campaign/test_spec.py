"""Campaign spec parsing, matrix expansion, and run-ID determinism."""

import json

import pytest

from repro.campaign import CampaignSpec, RunDescriptor, load_spec, run_id_for
from repro.campaign.spec import experiment_for_attack

SMALL = dict(
    name="matrix",
    attacks=["passthrough", "flow-mod-suppression"],
    controllers=["floodlight", "pox", "ryu"],
    seeds=[1, 2],
    params={"ping_trials": 3},
)

XML = """
<campaign name="matrix" baseline="passthrough">
  <attacks>
    <attack name="passthrough"/>
    <attack name="flow-mod-suppression"/>
  </attacks>
  <controllers>
    <controller name="floodlight"/>
    <controller name="pox"/>
    <controller name="ryu"/>
  </controllers>
  <seeds><seed value="1"/><seed value="2"/></seeds>
  <params ping_trials="3"/>
</campaign>
"""


def test_expand_is_the_full_matrix():
    runs = CampaignSpec.from_dict(SMALL).expand()
    assert len(runs) == 2 * 3 * 2
    assert len({r.run_id for r in runs}) == len(runs)
    # Axis-major, deterministic order: all passthrough cells first.
    assert [r.attack for r in runs[:6]] == ["passthrough"] * 6
    assert {r.seed for r in runs} == {1, 2}


def test_run_ids_are_deterministic_and_seed_sensitive():
    first = CampaignSpec.from_dict(SMALL).expand()
    second = CampaignSpec.from_dict(SMALL).expand()
    assert [r.run_id for r in first] == [r.run_id for r in second]
    descriptor = first[0]
    reseeded = RunDescriptor.from_dict(
        {**descriptor.identity(), "seed": descriptor.seed + 1})
    assert reseeded.run_id != descriptor.run_id
    # The hash covers params too: a different trial count is a new run.
    reparam = RunDescriptor.from_dict(
        {**descriptor.identity(), "params": {"ping_trials": 4}})
    assert reparam.run_id != descriptor.run_id


def test_run_id_ignores_campaign_name():
    renamed = CampaignSpec.from_dict({**SMALL, "name": "other"})
    assert ([r.run_id for r in renamed.expand()]
            == [r.run_id for r in CampaignSpec.from_dict(SMALL).expand()])


def test_run_id_for_is_pure_content_hash():
    identity = {"experiment": "suppression", "seed": 3}
    assert run_id_for(identity) == run_id_for(dict(identity))
    assert len(run_id_for(identity)) == 16


def test_experiment_derived_per_attack():
    spec = CampaignSpec.from_dict({
        **SMALL, "attacks": ["passthrough", "connection-interruption"],
    })
    experiments = {r.attack: r.experiment for r in spec.expand()}
    assert experiments["passthrough"] == "suppression"
    assert experiments["connection-interruption"] == "interruption"
    assert experiment_for_attack(None) == "suppression"


def test_spec_experiment_override_applies_to_all_runs():
    spec = CampaignSpec.from_dict({
        **SMALL, "experiment": "interruption",
    })
    assert {r.experiment for r in spec.expand()} == {"interruption"}


def test_validation_rejects_unknown_axis_values():
    with pytest.raises(ValueError, match="unknown attack"):
        CampaignSpec.from_dict({**SMALL, "attacks": ["warp-core"]}).expand()
    with pytest.raises(ValueError, match="unknown controller"):
        CampaignSpec.from_dict(
            {**SMALL, "controllers": ["opendaylight"]}).expand()
    with pytest.raises(ValueError):
        CampaignSpec.from_dict({**SMALL, "fail_modes": ["open"]}).expand()
    with pytest.raises(ValueError, match="unknown campaign spec keys"):
        CampaignSpec.from_dict({**SMALL, "attcks": []})


def test_xml_and_dict_specs_expand_identically():
    from_xml = CampaignSpec.from_xml(XML)
    from_dict = CampaignSpec.from_dict(SMALL)
    assert ([r.run_id for r in from_xml.expand()]
            == [r.run_id for r in from_dict.expand()])
    assert from_xml.params == {"ping_trials": 3}


def test_xml_attack_params_and_coercion():
    spec = CampaignSpec.from_xml("""
    <campaign name="sweep" timeout-s="9.5" retries="2">
      <attacks><attack name="stochastic-drop"/></attacks>
      <controllers><controller name="pox"/></controllers>
      <params warmup_s="2.5" full="false" label="fast"/>
      <attack-params attack="stochastic-drop" drop_probability="0.25"/>
    </campaign>
    """)
    assert spec.timeout_s == 9.5 and spec.retries == 2
    assert spec.params == {"warmup_s": 2.5, "full": False, "label": "fast"}
    (run,) = [r for r in spec.expand()]
    assert run.attack_params == {"drop_probability": 0.25}


def test_load_spec_json_py_xml(tmp_path):
    (tmp_path / "spec.json").write_text(json.dumps(SMALL))
    (tmp_path / "spec.xml").write_text(XML)
    (tmp_path / "spec.py").write_text(f"SPEC = {SMALL!r}\n")
    ids = [
        [r.run_id for r in load_spec(tmp_path / name).expand()]
        for name in ("spec.json", "spec.xml", "spec.py")
    ]
    assert ids[0] == ids[1] == ids[2]
    (tmp_path / "spec.yaml").write_text("{}")
    with pytest.raises(ValueError, match="unsupported spec format"):
        load_spec(tmp_path / "spec.yaml")


def test_py_spec_requires_SPEC(tmp_path):
    (tmp_path / "empty.py").write_text("x = 1\n")
    with pytest.raises(ValueError, match="defines no SPEC"):
        load_spec(tmp_path / "empty.py")
