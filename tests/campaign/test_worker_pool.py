"""The persistent worker pool: process reuse, accounting, and state reset.

The original runner spawned one process per run; the pool keeps workers
alive across runs and reseeds process-global state between cells.  These
tests pin down the new contracts: fewer spawns than runs, per-worker run
accounting in the summary / store / CLI, and bit-identical metrics from a
reused worker vs. a fresh process.
"""

import json
import os

from repro.campaign import CampaignSpec, ResultStore, run_campaign
from repro.campaign.executors import execute_descriptor
from repro.cli import main


def selfcheck_spec(seeds, params=None, retries=0, timeout_s=30.0, **overrides):
    return CampaignSpec.from_dict({
        "name": "selfcheck",
        "experiment": "selfcheck",
        "attacks": [None],
        "controllers": ["x"],
        "seeds": list(seeds),
        "params": params or {},
        "retries": retries,
        "timeout_s": timeout_s,
        **overrides,
    })


def test_workers_are_reused_across_runs(tmp_path):
    spec = selfcheck_spec(range(8))
    store = ResultStore(tmp_path / "runs.jsonl")
    summary = run_campaign(spec, store, workers=2)
    assert summary.executed == 8
    # The whole point of the pool: far fewer spawns than runs.
    assert summary.processes_spawned <= 2 < summary.executed
    pids = {r["metrics"]["pid"] for r in store.ok_records()}
    assert len(pids) <= 2
    assert os.getpid() not in pids


def test_summary_worker_runs_accounts_for_every_run(tmp_path):
    spec = selfcheck_spec(range(6))
    store = ResultStore(tmp_path / "runs.jsonl")
    summary = run_campaign(spec, store, workers=2)
    assert sum(summary.worker_runs.values()) == summary.executed == 6
    assert len(summary.worker_runs) == summary.processes_spawned


def test_store_records_carry_worker_provenance(tmp_path):
    spec = selfcheck_spec(range(3))
    store = ResultStore(tmp_path / "runs.jsonl")
    run_campaign(spec, store, workers=1)
    records = store.ok_records()
    assert all("worker" in r for r in records)
    workers = [r["worker"] for r in records]
    assert all(w["pid"] == workers[0]["pid"] for w in workers)
    # runs_executed is the worker's cumulative count at record time.
    assert sorted(w["runs_executed"] for w in workers) == [1, 2, 3]


def test_crashed_worker_slot_is_respawned(tmp_path):
    # Attempt 1 hard-exits the worker; the pool must respawn a fresh
    # process for the retry rather than hanging on the dead pipe.
    spec = selfcheck_spec([0, 1], params={"crash_until_attempt": 2},
                          retries=2)
    store = ResultStore(tmp_path / "runs.jsonl")
    summary = run_campaign(spec, store, workers=1)
    assert summary.succeeded == 2
    assert summary.retries_used == 2
    # One spawn per crash plus the survivor: more spawns than workers.
    assert summary.processes_spawned >= 2


def test_reused_worker_matches_fresh_process_metrics(tmp_path):
    """State reset between runs: run N in a reused worker equals run N
    in a brand-new process (the reproducibility claim survives reuse)."""
    params = {"ping_trials": 3, "iperf_trials": 1, "iperf_duration_s": 0.5,
              "iperf_gap_s": 0.5, "warmup_s": 2.0}
    spec = CampaignSpec.from_dict({
        "name": "reuse-determinism",
        "attacks": ["passthrough", "flow-mod-suppression"],
        "controllers": ["pox"],
        "seeds": [1],
        "params": params,
    })
    store = ResultStore(tmp_path / "runs.jsonl")
    # workers=1 forces the second cell through a reused process.
    summary = run_campaign(spec, store, workers=1)
    assert summary.succeeded == 2
    assert summary.processes_spawned == 1
    for descriptor in spec.expand():
        (record,) = [r for r in store.ok_records()
                     if r["run_id"] == descriptor.run_id]
        fresh = execute_descriptor(descriptor.to_dict())
        assert record["metrics"] == fresh


def test_cli_surfaces_pool_accounting(tmp_path, capsys):
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps({
        "name": "cli-pool",
        "experiment": "selfcheck",
        "attacks": [None],
        "controllers": ["x"],
        "seeds": [0, 1, 2, 3],
        "timeout_s": 30.0,
    }))
    assert main(["campaign", "run", str(spec_path),
                 "--workers", "2", "--quiet", "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["processes_spawned"] <= 2 < summary["executed"]
    assert sum(summary["worker_runs"].values()) == 4

    assert main(["campaign", "status", str(spec_path), "--json"]) == 0
    status = json.loads(capsys.readouterr().out)
    assert sum(status["worker_runs"].values()) == 4

    assert main(["campaign", "status", str(spec_path)]) == 0
    assert "worker pid" in capsys.readouterr().out


def test_workers_default_is_cpu_count(tmp_path, capsys):
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps({
        "name": "cli-default-workers",
        "experiment": "selfcheck",
        "attacks": [None],
        "controllers": ["x"],
        "seeds": [0],
        "timeout_s": 30.0,
    }))
    # No --workers flag: the CLI falls back to os.cpu_count().
    assert main(["campaign", "run", str(spec_path), "--quiet", "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["succeeded"] == 1
    assert summary["processes_spawned"] <= (os.cpu_count() or 1)
