"""compile_attack's lint mode: lenient parse + pass battery + LintFailure."""

import pytest

from repro.core.compiler import CompileError, LintFailure, compile_attack
from repro.core.model.threat import AttackModel
from repro.lint import LintReport

from tests.lint.conftest import attack_xml, rule_xml

_GHOST_GOTO = rule_xml(actions="<goto state='ghost'/>")
BAD_GOTO = attack_xml(f'<state name="s">{_GHOST_GOTO}</state>')
CLEAN = attack_xml(f'<state name="s">{rule_xml(actions="<drop/>")}</state>')
WARN_ONLY = attack_xml(
    f'<state name="s">{rule_xml()}</state>', deques='<deque name="spare"/>')


class TestStrictMode:
    def test_structural_problem_raises_compile_error(self, system):
        with pytest.raises(CompileError):
            compile_attack(BAD_GOTO, system)

    def test_clean_attack_compiles(self, system):
        attack = compile_attack(CLEAN, system)
        assert attack.start == "s"
        assert not hasattr(attack, "lint_report")

    def test_validates_against_model_when_given(self, system):
        tls = AttackModel.tls_everywhere(system)
        with pytest.raises(Exception):
            compile_attack(CLEAN, system, attack_model=tls)


class TestLintMode:
    def test_error_diagnostics_raise_lint_failure(self, system):
        with pytest.raises(LintFailure) as excinfo:
            compile_attack(BAD_GOTO, system, lint=True)
        report = excinfo.value.report
        assert isinstance(report, LintReport)
        assert "ATN004" in report.codes()
        assert "lint failed" in str(excinfo.value)

    def test_lint_failure_is_a_compile_error(self, system):
        with pytest.raises(CompileError):
            compile_attack(BAD_GOTO, system, lint=True)

    def test_clean_attack_gets_report_attached(self, system):
        attack = compile_attack(CLEAN, system, lint=True)
        assert isinstance(attack.lint_report, LintReport)
        assert not attack.lint_report.has_errors

    def test_warnings_do_not_fail_compilation(self, system):
        attack = compile_attack(WARN_ONLY, system, lint=True)
        assert "ATN021" in attack.lint_report.codes()

    def test_model_enables_capability_lint(self, system):
        tls = AttackModel.tls_everywhere(system)
        with pytest.raises(LintFailure) as excinfo:
            compile_attack(CLEAN, system, attack_model=tls, lint=True)
        assert "ATN011" in excinfo.value.report.codes()
