"""Shared fixtures for the lint test suite.

Tests build small attack-states XML snippets against a two-switch demo
system and lint the (leniently parsed) result.  ``lint_xml`` is the
one-stop helper: XML in, :class:`LintReport` out.
"""

import pytest

from repro.core.compiler import parse_attack_states_xml, parse_system_model_xml
from repro.core.model.threat import AttackModel
from repro.lint import lint_attack

SYSTEM_XML = """
<system name="demo">
  <controllers><controller name="c1" address="10.1.0.1"/></controllers>
  <switches>
    <switch name="s1" dpid="1" ports="1,2,3"/>
    <switch name="s2" dpid="2" ports="1,2"/>
  </switches>
  <hosts>
    <host name="h1" ip="10.0.0.1"/>
    <host name="h2" ip="10.0.0.2"/>
  </hosts>
  <dataplane>
    <link a="h1" b="s1" b-port="1"/>
    <link a="s1" a-port="3" b="s2" b-port="1"/>
    <link a="h2" b="s2" b-port="2"/>
  </dataplane>
  <controlplane>
    <connection controller="c1" switch="s1"/>
    <connection controller="c1" switch="s2"/>
  </controlplane>
</system>
"""


@pytest.fixture(scope="session")
def system():
    return parse_system_model_xml(SYSTEM_XML)


@pytest.fixture(scope="session")
def model(system):
    return AttackModel.no_tls_everywhere(system)


def rule_xml(
    name="r",
    connections='<connection controller="c1" switch="s1"/>',
    gamma='<gamma class="no-tls"/>',
    condition="true",
    actions="<pass/>",
):
    return (
        f'<rule name="{name}">'
        f"<connections>{connections}</connections>"
        f"{gamma}"
        f"<condition>{condition}</condition>"
        f"<actions>{actions}</actions>"
        f"</rule>"
    )


def attack_xml(states, deques="", start="s", name="probe"):
    return f'<attack name="{name}" start="{start}">{deques}{states}</attack>'


@pytest.fixture(scope="session")
def lint_xml(system, model):
    """Leniently parse ``xml`` and lint it against the demo model."""

    def _lint(xml, attack_model=model):
        attack = parse_attack_states_xml(xml, system, strict=False)
        return lint_attack(attack, attack_model)

    return _lint
