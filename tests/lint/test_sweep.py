"""Sweep: every registered attack and every examples/ spec lints clean.

"Clean" here means no error- or warning-severity diagnostics.  INFO
findings are allowed: the library attacks declare ``gamma_no_tls()``
(the paper's Γ_NoTLS) rather than hand-minimised capability sets, which
legitimately trips the ATN012 over-declaration note.
"""

from pathlib import Path

import pytest

from repro.attacks import list_attacks
from repro.core.compiler import parse_attack_states_xml, parse_system_model_xml
from repro.core.model.threat import AttackModel
from repro.experiments.enterprise import enterprise_system_model
from repro.lint import build_registry_attack, lint_attack

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples" / "attacks"


def _assert_clean(report):
    noisy = report.errors + report.warnings
    assert not noisy, "\n" + report.render_text()


class TestRegistrySweep:
    @pytest.fixture(scope="class")
    def system(self):
        return enterprise_system_model()

    @pytest.fixture(scope="class")
    def model(self, system):
        return AttackModel.no_tls_everywhere(system)

    def test_registry_has_the_thirteen_attacks(self):
        assert len(list_attacks()) >= 13

    @pytest.mark.parametrize("name", list_attacks())
    def test_registered_attack_lints_clean(self, name, system, model):
        attack = build_registry_attack(name, system)
        _assert_clean(lint_attack(attack, model))


class TestExamplesSweep:
    @pytest.fixture(scope="class")
    def system(self):
        text = (EXAMPLES_DIR / "system.xml").read_text(encoding="utf-8")
        return parse_system_model_xml(text)

    @pytest.fixture(scope="class")
    def model(self, system):
        return AttackModel.no_tls_everywhere(system)

    def example_specs():
        return sorted(
            path for path in EXAMPLES_DIR.glob("*.xml")
            if path.name != "system.xml"
        )

    def test_examples_directory_is_populated(self):
        # Guard against glob rot silently skipping the sweep below.
        assert len(TestExamplesSweep.example_specs()) >= 3

    @pytest.mark.parametrize(
        "path", example_specs(), ids=lambda p: p.name)
    def test_example_spec_lints_clean(self, path, system, model):
        attack = parse_attack_states_xml(
            path.read_text(encoding="utf-8"), system, strict=False)
        _assert_clean(lint_attack(attack, model))
