"""One positive (fires) and one negative (clean) fixture per diagnostic.

Each test builds a minimal attack-states XML around the defect under test,
lenient-parses it, runs the full pass battery, and asserts on the codes.
"""

from repro.core.lang.attack import Attack
from repro.core.lang.rules import Rule
from repro.core.lang.states import AttackState
from repro.core.lang.conditionals import TrueCondition
from repro.core.lang.actions import PassMessage
from repro.core.model import gamma_no_tls
from repro.core.model.threat import AttackModel
from repro.lint import Severity, lint_attack

from tests.lint.conftest import attack_xml, rule_xml

CONN_S1 = '<connection controller="c1" switch="s1"/>'
CONN_S2 = '<connection controller="c1" switch="s2"/>'


class TestStructure:
    def test_atn001_no_states(self, lint_xml):
        report = lint_xml('<attack name="x" start="s"/>')
        assert report.codes() == ["ATN001"]

    def test_atn001_negative(self, lint_xml):
        report = lint_xml(attack_xml('<state name="s"/>'))
        assert "ATN001" not in report.codes()

    def test_atn002_start_not_declared(self, lint_xml):
        report = lint_xml(attack_xml('<state name="other"/>', start="ghost"))
        assert "ATN002" in report.codes()

    def test_atn002_negative(self, lint_xml):
        report = lint_xml(attack_xml('<state name="s"/>'))
        assert "ATN002" not in report.codes()

    def test_atn003_duplicate_state(self, lint_xml):
        report = lint_xml(attack_xml('<state name="s"/><state name="s"/>'))
        assert "ATN003" in report.codes()

    def test_atn003_negative(self, lint_xml):
        report = lint_xml(attack_xml('<state name="s"/><state name="t"/>'))
        assert "ATN003" not in report.codes()
        assert "ATN005" in report.codes()  # t is merely unreachable

    def test_atn004_goto_undefined_state(self, lint_xml):
        rule = rule_xml(actions='<goto state="ghost"/>')
        report = lint_xml(attack_xml(f'<state name="s">{rule}</state>'))
        assert "ATN004" in report.codes()

    def test_atn004_diagnostic_carries_state_and_line(self, lint_xml):
        rule = rule_xml(actions='<goto state="ghost"/>')
        report = lint_xml(attack_xml(f'<state name="s">{rule}</state>'))
        diagnostic = next(d for d in report.diagnostics if d.code == "ATN004")
        assert diagnostic.state == "s"
        assert diagnostic.line is not None

    def test_atn004_negative(self, lint_xml):
        rule = rule_xml(actions='<goto state="t"/>')
        report = lint_xml(attack_xml(
            f'<state name="s">{rule}</state><state name="t"/>'))
        assert "ATN004" not in report.codes()

    def test_atn005_unreachable_state(self, lint_xml):
        report = lint_xml(attack_xml('<state name="s"/><state name="orphan"/>'))
        codes = report.codes()
        assert "ATN005" in codes
        assert "ATN006" not in codes  # the start state itself absorbs

    def test_atn005_negative(self, lint_xml):
        rule = rule_xml(actions='<goto state="t"/>')
        report = lint_xml(attack_xml(
            f'<state name="s">{rule}</state><state name="t"/>'))
        assert "ATN005" not in report.codes()


class TestAbsorbing:
    def test_atn006_no_reachable_absorbing_state(self, lint_xml):
        to_b = rule_xml(name="ab", actions='<goto state="b"/>')
        to_a = rule_xml(name="ba", actions='<goto state="a"/>')
        report = lint_xml(attack_xml(
            f'<state name="a">{to_b}</state><state name="b">{to_a}</state>',
            start="a"))
        assert "ATN006" in report.codes()
        assert not report.has_errors  # advisory only

    def test_atn006_negative(self, lint_xml):
        rule = rule_xml(actions='<goto state="t"/>')
        report = lint_xml(attack_xml(
            f'<state name="s">{rule}</state><state name="t"/>'))
        assert "ATN006" not in report.codes()

    def test_atn007_self_goto(self, lint_xml):
        rule = rule_xml(actions='<goto state="s"/>')
        report = lint_xml(attack_xml(f'<state name="s">{rule}</state>'))
        assert "ATN007" in report.codes()
        # The self-edge does not make the state non-absorbing.
        assert "ATN006" not in report.codes()

    def test_atn007_negative(self, lint_xml):
        rule = rule_xml(actions='<goto state="t"/>')
        report = lint_xml(attack_xml(
            f'<state name="s">{rule}</state><state name="t"/>'))
        assert "ATN007" not in report.codes()


class TestCapabilities:
    def test_atn010_connection_not_in_nc(self, lint_xml):
        rule = rule_xml(
            connections='<connection controller="c1" switch="s9"/>')
        report = lint_xml(attack_xml(f'<state name="s">{rule}</state>'))
        assert "ATN010" in report.codes()

    def test_atn010_negative(self, lint_xml):
        report = lint_xml(attack_xml(f'<state name="s">{rule_xml()}</state>'))
        assert "ATN010" not in report.codes()

    def test_atn011_gamma_exceeds_granted(self, lint_xml, system):
        tls = AttackModel.tls_everywhere(system)
        rule = rule_xml(actions="<drop/>")  # γ = Γ_NoTLS ⊄ Γ_TLS
        report = lint_xml(
            attack_xml(f'<state name="s">{rule}</state>'), attack_model=tls)
        assert "ATN011" in report.codes()

    def test_atn011_negative_under_no_tls(self, lint_xml):
        rule = rule_xml(actions="<drop/>")
        report = lint_xml(attack_xml(f'<state name="s">{rule}</state>'))
        assert "ATN011" not in report.codes()

    def test_atn012_overdeclared_gamma(self, lint_xml):
        rule = rule_xml(actions="<drop/>")  # declares Γ, uses DropMessage
        report = lint_xml(attack_xml(f'<state name="s">{rule}</state>'))
        diagnostic = next(d for d in report.diagnostics if d.code == "ATN012")
        assert diagnostic.severity is Severity.INFO

    def test_atn012_negative_minimal_gamma(self, lint_xml):
        rule = rule_xml(
            gamma='<gamma><capability name="DropMessage"/></gamma>',
            actions="<drop/>")
        report = lint_xml(attack_xml(f'<state name="s">{rule}</state>'))
        assert "ATN012" not in report.codes()

    def test_capability_passes_skipped_without_model(self, lint_xml):
        rule = rule_xml(
            connections='<connection controller="c1" switch="s9"/>')
        report = lint_xml(
            attack_xml(f'<state name="s">{rule}</state>'), attack_model=None)
        assert "ATN010" not in report.codes()


class TestDequeDataflow:
    def test_atn020_read_never_written(self, lint_xml):
        rule = rule_xml(condition="shift(d) = 1")
        report = lint_xml(attack_xml(
            f'<state name="s">{rule}</state>', deques='<deque name="d"/>'))
        assert "ATN020" in report.codes()

    def test_atn020_negative_when_seeded(self, lint_xml):
        rule = rule_xml(condition="shift(d) = 1")
        report = lint_xml(attack_xml(
            f'<state name="s">{rule}</state>',
            deques='<deque name="d"><value type="int">0</value></deque>'))
        assert "ATN020" not in report.codes()

    def test_atn020_negative_when_written(self, lint_xml):
        rule = rule_xml(condition="shift(d) = 1",
                        actions='<append deque="d" value="1"/>')
        report = lint_xml(attack_xml(
            f'<state name="s">{rule}</state>', deques='<deque name="d"/>'))
        assert "ATN020" not in report.codes()

    def test_atn021_declared_never_used(self, lint_xml):
        report = lint_xml(attack_xml(
            f'<state name="s">{rule_xml()}</state>',
            deques='<deque name="spare"/>'))
        assert "ATN021" in report.codes()

    def test_atn021_negative(self, lint_xml):
        rule = rule_xml(actions='<append deque="d" value="1"/>')
        report = lint_xml(attack_xml(
            f'<state name="s">{rule}</state>', deques='<deque name="d"/>'))
        assert "ATN021" not in report.codes()

    def test_atn022_used_never_declared(self, lint_xml):
        rule = rule_xml(actions='<pop deque="ghost"/>')
        report = lint_xml(attack_xml(f'<state name="s">{rule}</state>'))
        assert "ATN022" in report.codes()

    def test_atn022_negative(self, lint_xml):
        rule = rule_xml(actions='<pop deque="d"/>')
        report = lint_xml(attack_xml(
            f'<state name="s">{rule}</state>', deques='<deque name="d"/>'))
        assert "ATN022" not in report.codes()

    def test_read_message_store_counts_as_write(self, lint_xml):
        rule = rule_xml(actions='<read store-to="d"/><pop deque="d"/>')
        report = lint_xml(attack_xml(
            f'<state name="s">{rule}</state>', deques='<deque name="d"/>'))
        assert "ATN020" not in report.codes()


class TestShadowing:
    def test_atn030_identical_condition_shadowed(self, lint_xml):
        first = rule_xml(name="a", condition="type = FLOW_MOD",
                         actions="<drop/>")
        second = rule_xml(name="b", condition="type = FLOW_MOD",
                          actions='<delay seconds="1"/>')
        report = lint_xml(attack_xml(f'<state name="s">{first}{second}</state>'))
        diagnostic = next(d for d in report.diagnostics if d.code == "ATN030")
        assert diagnostic.rule == "b"

    def test_atn030_true_condition_subsumes_everything(self, lint_xml):
        first = rule_xml(name="a", condition="true", actions="<drop/>")
        second = rule_xml(name="b", condition="type = PACKET_IN",
                          actions="<drop/>")
        report = lint_xml(attack_xml(f'<state name="s">{first}{second}</state>'))
        assert "ATN030" in report.codes()

    def test_atn030_negative_earlier_rule_passes(self, lint_xml):
        first = rule_xml(name="a", condition="true", actions="<pass/>")
        second = rule_xml(name="b", condition="true", actions="<drop/>")
        report = lint_xml(attack_xml(f'<state name="s">{first}{second}</state>'))
        assert "ATN030" not in report.codes()

    def test_atn030_negative_disjoint_connections(self, lint_xml):
        first = rule_xml(name="a", connections=CONN_S1, condition="true",
                         actions="<drop/>")
        second = rule_xml(name="b", connections=CONN_S2, condition="true",
                          actions="<drop/>")
        report = lint_xml(attack_xml(f'<state name="s">{first}{second}</state>'))
        assert "ATN030" not in report.codes()


class TestTypeOptions:
    def test_atn031_option_impossible_for_pinned_type(self, lint_xml):
        rule = rule_xml(
            condition="type = PACKET_IN and opt.match.nw_src = 10.0.0.1")
        report = lint_xml(attack_xml(f'<state name="s">{rule}</state>'))
        assert "ATN031" in report.codes()

    def test_atn031_negative_valid_for_pinned_type(self, lint_xml):
        rule = rule_xml(
            condition="type = FLOW_MOD and opt.match.nw_src = 10.0.0.1")
        report = lint_xml(attack_xml(f'<state name="s">{rule}</state>'))
        assert "ATN031" not in report.codes()

    def test_atn031_unpinned_globally_bogus_path(self, lint_xml):
        rule = rule_xml(condition="opt.zorp = 1")
        report = lint_xml(attack_xml(f'<state name="s">{rule}</state>'))
        assert "ATN031" in report.codes()

    def test_atn031_negative_unpinned_valid_somewhere(self, lint_xml):
        rule = rule_xml(condition="opt.in_port = 3")
        report = lint_xml(attack_xml(f'<state name="s">{rule}</state>'))
        assert "ATN031" not in report.codes()

    def test_atn032_unknown_message_type(self, lint_xml):
        rule = rule_xml(condition="type = FLOWMOD")
        report = lint_xml(attack_xml(f'<state name="s">{rule}</state>'))
        assert "ATN032" in report.codes()

    def test_atn032_suppresses_cascading_atn031(self, lint_xml):
        rule = rule_xml(condition="type = FLOWMOD and opt.idle_timeout = 5")
        report = lint_xml(attack_xml(f'<state name="s">{rule}</state>'))
        assert "ATN032" in report.codes()
        assert "ATN031" not in report.codes()

    def test_atn032_negative(self, lint_xml):
        rule = rule_xml(condition="type = FLOW_MOD")
        report = lint_xml(attack_xml(f'<state name="s">{rule}</state>'))
        assert "ATN032" not in report.codes()


class TestHygiene:
    def test_atn040_long_sleep_warns(self, lint_xml):
        rule = rule_xml(actions='<sleep seconds="600"/>')
        report = lint_xml(attack_xml(f'<state name="s">{rule}</state>'))
        diagnostic = next(d for d in report.diagnostics if d.code == "ATN040")
        assert diagnostic.severity is Severity.WARNING

    def test_atn040_zero_sleep_is_info(self, lint_xml):
        rule = rule_xml(actions='<sleep seconds="0"/>')
        report = lint_xml(attack_xml(f'<state name="s">{rule}</state>'))
        diagnostic = next(d for d in report.diagnostics if d.code == "ATN040")
        assert diagnostic.severity is Severity.INFO

    def test_atn040_negative_ordinary_sleep(self, lint_xml):
        rule = rule_xml(actions='<sleep seconds="1"/>')
        report = lint_xml(attack_xml(f'<state name="s">{rule}</state>'))
        assert "ATN040" not in report.codes()

    def test_atn041_unknown_host_warns(self, lint_xml):
        rule = rule_xml(actions='<syscmd host="h99" command="iperf -s"/>')
        report = lint_xml(attack_xml(f'<state name="s">{rule}</state>'))
        diagnostic = next(d for d in report.diagnostics if d.code == "ATN041")
        assert diagnostic.severity is Severity.WARNING

    def test_atn041_shell_metacharacters_are_info(self, lint_xml):
        rule = rule_xml(actions='<syscmd host="h1" command="a; b"/>')
        report = lint_xml(attack_xml(f'<state name="s">{rule}</state>'))
        diagnostic = next(d for d in report.diagnostics if d.code == "ATN041")
        assert diagnostic.severity is Severity.INFO

    def test_atn041_negative(self, lint_xml):
        rule = rule_xml(actions='<syscmd host="h1" command="iperf -s"/>')
        report = lint_xml(attack_xml(f'<state name="s">{rule}</state>'))
        assert "ATN041" not in report.codes()

    def test_atn041_host_check_accepts_switches(self, lint_xml):
        rule = rule_xml(actions='<syscmd host="s1" command="ovs-vsctl show"/>')
        report = lint_xml(attack_xml(f'<state name="s">{rule}</state>'))
        assert not any(
            d.code == "ATN041" and d.severity is Severity.WARNING
            for d in report.diagnostics
        )


class TestPythonBuiltAttacks:
    def test_lint_handles_rules_without_source_lines(self, model):
        rule = Rule("r", frozenset({("c1", "s1")}), gamma_no_tls(),
                    TrueCondition(), [PassMessage()])
        attack = Attack("native", [AttackState("s", [rule])], "s")
        report = lint_attack(attack, model)
        assert not report.has_errors
        assert all(d.line is None for d in report.diagnostics)
