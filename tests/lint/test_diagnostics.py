"""Unit tests for the diagnostic vocabulary, records, and reports."""

import pytest

from repro.lint import DIAGNOSTIC_CODES, Diagnostic, LintReport, Severity, failure_report


class TestVocabulary:
    def test_every_code_has_severity_and_title(self):
        for code, (severity, title) in DIAGNOSTIC_CODES.items():
            assert code.startswith("ATN") and len(code) == 6
            assert isinstance(severity, Severity)
            assert title

    def test_severity_ranks_order_error_first(self):
        assert Severity.ERROR.rank < Severity.WARNING.rank < Severity.INFO.rank


class TestDiagnostic:
    def test_render_includes_code_severity_location(self):
        diagnostic = Diagnostic(
            "ATN004", Severity.ERROR, "boom", state="s", rule="r", line=7
        )
        rendered = diagnostic.render()
        assert rendered.startswith("ATN004 error: ")
        assert "line 7" in rendered and "state 's'" in rendered
        assert "rule 'r'" in rendered and rendered.endswith("boom")

    def test_render_without_location_has_no_brackets(self):
        assert Diagnostic("ATN001", Severity.ERROR, "x").render() == \
            "ATN001 error: x"

    def test_to_dict_round_trips_fields(self):
        diagnostic = Diagnostic("ATN020", Severity.WARNING, "m", line=3)
        payload = diagnostic.to_dict()
        assert payload["code"] == "ATN020"
        assert payload["severity"] == "warning"
        assert payload["line"] == 3


class TestLintReport:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            LintReport("x").add("ATN999", "nope")

    def test_default_severity_from_vocabulary(self):
        report = LintReport("x")
        assert report.add("ATN005", "m").severity is Severity.ERROR
        assert report.add("ATN030", "m").severity is Severity.WARNING

    def test_severity_override(self):
        report = LintReport("x")
        diagnostic = report.add("ATN040", "m", severity=Severity.INFO)
        assert diagnostic.severity is Severity.INFO
        assert not report.warnings

    def test_sorted_orders_by_severity_then_line(self):
        report = LintReport("x")
        report.add("ATN021", "w", line=2)
        report.add("ATN004", "e", line=9)
        report.add("ATN012", "i", line=1)
        assert [d.code for d in report.sorted()] == \
            ["ATN004", "ATN021", "ATN012"]

    def test_render_text_hides_info_when_not_verbose(self):
        report = LintReport("x")
        report.add("ATN012", "informational")
        assert "informational" in report.render_text(verbose=True)
        assert "informational" not in report.render_text(verbose=False)
        # The tallies still count hidden findings.
        assert "1 info" in report.render_text(verbose=False)

    def test_clean_report_renders_clean(self):
        assert LintReport("x").render_text().endswith("-> clean")

    def test_has_errors_and_codes(self):
        report = LintReport("x")
        report.add("ATN022", "w")
        assert not report.has_errors
        report.add("ATN010", "e")
        assert report.has_errors
        assert report.codes() == ["ATN010", "ATN022"]

    def test_to_dict_summarises(self):
        report = LintReport("atk")
        report.add("ATN003", "dup")
        payload = report.to_dict()
        assert payload["attack"] == "atk"
        assert payload["clean"] is False
        assert payload["errors"] == 1
        assert payload["diagnostics"][0]["code"] == "ATN003"


class TestFailureReport:
    def test_failure_report_is_atn000_error(self):
        report = failure_report("broken", "could not build", line=4)
        assert report.has_errors
        assert report.codes() == ["ATN000"]
        assert report.errors[0].line == 4
        assert "could not build" in report.errors[0].message
