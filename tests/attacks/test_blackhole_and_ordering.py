"""Tests for ordering comparisons and the black-hole attack."""

import pytest

from repro.attacks import blackhole_attack, flow_mod_suppression_attack
from repro.controllers import FloodlightController
from repro.core import AttackModel, RuntimeInjector, SystemModel
from repro.core.compiler.codegen import condition_to_text
from repro.core.injector import AttackExecutor
from repro.core.lang import EvalContext, StorageSet, parse_condition
from repro.core.lang.properties import Direction, InterposedMessage
from repro.core.monitors import ControlPlaneMonitor
from repro.dataplane import Network, Topology
from repro.openflow import FlowMod, Match, OutputAction, parse_message
from repro.sim import SimulationEngine

CONN = ("c1", "s1")


def interposed(message, at=0.0):
    return InterposedMessage(CONN, Direction.TO_SWITCH, at, message.pack(), message)


class TestOrderingOperators:
    def evaluate(self, text, message=None, at=0.0):
        ctx = EvalContext(message, StorageSet(), at)
        return parse_condition(text).evaluate(ctx)

    def test_timestamp_gating(self):
        late = interposed(FlowMod(Match()), at=31.0)
        early = interposed(FlowMod(Match()), at=29.0)
        assert self.evaluate("timestamp > 30", late)
        assert not self.evaluate("timestamp > 30", early)
        assert self.evaluate("timestamp < 30", early)

    def test_length_gating(self):
        small = interposed(FlowMod(Match()))
        assert self.evaluate("length > 8", small)
        assert not self.evaluate("length < 8", small)

    def test_none_never_orders(self):
        # TYPE of an undecodable message is None: ordering is false.
        garbage = InterposedMessage(CONN, Direction.TO_SWITCH, 0.0, b"\xff" * 12)
        assert not self.evaluate("opt.idle_timeout > 0", garbage)

    def test_non_numeric_never_orders(self):
        msg = interposed(FlowMod(Match()))
        assert not self.evaluate("type > 3", msg)  # "FLOW_MOD" is not numeric

    def test_codegen_roundtrip(self):
        cond = parse_condition("timestamp > 30 and length < 100")
        text = condition_to_text(cond)
        reparsed = parse_condition(text)
        late = interposed(FlowMod(Match()), at=31.0)
        ctx = EvalContext(late, StorageSet(), 0.0)
        assert cond.evaluate(ctx) == reparsed.evaluate(ctx)


class TestBlackholeExecutorLevel:
    def test_output_actions_rewritten(self):
        attack = blackhole_attack(CONN, dead_port=9)
        executor = AttackExecutor(attack, SimulationEngine())
        flow_mod = FlowMod(Match(in_port=1), actions=[OutputAction(2),
                                                      OutputAction(3)])
        out = executor.handle_message(interposed(flow_mod))
        assert len(out) == 1  # NOT dropped — stealth is the point
        rewritten = parse_message(out[0].message.raw)
        assert [a.port for a in rewritten.actions] == [9, 9]

    def test_drop_rules_pass_unmodified(self):
        attack = blackhole_attack(CONN, dead_port=9)
        executor = AttackExecutor(attack, SimulationEngine())
        drop_rule = FlowMod(Match(in_port=1), actions=[])
        out = executor.handle_message(interposed(drop_rule))
        assert parse_message(out[0].message.raw).actions == []

    def test_time_gated_variant(self):
        attack = blackhole_attack(CONN, dead_port=9, after_timestamp=10.0)
        engine = SimulationEngine()
        executor = AttackExecutor(attack, engine)
        early = interposed(FlowMod(Match(), actions=[OutputAction(2)]), at=5.0)
        out = executor.handle_message(early)
        assert parse_message(out[0].message.raw).actions == [OutputAction(2)]
        late = interposed(FlowMod(Match(), actions=[OutputAction(2)]), at=15.0)
        out = executor.handle_message(late)
        assert parse_message(out[0].message.raw).actions == [OutputAction(9)]


class TestBlackholeEndToEnd:
    def build(self, attack):
        engine = SimulationEngine()
        topo = Topology("bh")
        topo.add_host("h1")
        topo.add_host("h2")
        topo.add_switch("s1")
        topo.add_switch("s2")
        topo.add_link("h1", "s1")
        topo.add_link("s1", "s2")
        topo.add_link("h2", "s2")
        network = Network(engine, topo)
        controller = FloodlightController(engine)
        system = SystemModel.from_topology(topo, ["c1"])
        model = AttackModel.no_tls_everywhere(system)
        injector = RuntimeInjector(engine, model, attack)
        monitor = ControlPlaneMonitor()
        injector.add_observer(monitor)
        injector.install(network, {"c1": controller})
        network.start()
        engine.run(until=5.0)
        return engine, network, monitor

    def test_stealthy_denial_of_service(self):
        system_conns = [("c1", "s1"), ("c1", "s2")]
        engine, network, monitor = self.build(
            blackhole_attack(system_conns, dead_port=200)
        )
        run = network.host("h1").ping(network.host_ip("h2"), count=4)
        engine.run(until=30.0)
        # Rules were installed (the controller sees success; the poisoned
        # entries idle out later like any others)...
        assert network.total_stat("flow_mods_received") > 0
        # ...but traffic vanishes once it matches the poisoned rules.
        # (Floodlight also packet-outs the triggering packet, so the very
        # first ping may survive; later ones die in the black hole.)
        assert run.result.received < run.result.sent
        # Stealth: nothing was dropped on the control plane.
        assert monitor.dropped_total() == 0

    def test_contrast_with_suppression_signature(self):
        """Suppression leaves a loud control-plane signature; the black
        hole leaves none — same service impact, different observable."""
        system_conns = [("c1", "s1"), ("c1", "s2")]
        engine_s, network_s, monitor_s = self.build(
            flow_mod_suppression_attack(system_conns)
        )
        network_s.host("h1").ping(network_s.host_ip("h2"), count=4)
        engine_s.run(until=30.0)
        assert monitor_s.dropped_total() > 0
        assert network_s.total_stat("flow_mods_received") == 0
