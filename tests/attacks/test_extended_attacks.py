"""Tests for the extended attack library: link fabrication, stats evasion,
stochastic drops."""

import pytest

from repro.attacks import (
    forged_lldp_packet_in,
    link_fabrication_attack,
    stats_evasion_attack,
    stochastic_drop_attack,
)
from repro.controllers import (
    FloodlightController,
    StatsCollectorApp,
    TopologyDiscoveryApp,
)
from repro.core import AttackModel, RuntimeInjector, SystemModel
from repro.core.injector import AttackExecutor
from repro.core.lang.properties import Direction, InterposedMessage
from repro.dataplane import Network, Topology
from repro.netlib.lldp import LldpPacket
from repro.netlib.packet import decode_ethernet
from repro.openflow import EchoRequest, Hello
from repro.sim import SimulationEngine


def build_network(engine, attack=None, extra_apps=()):
    topo = Topology("t")
    topo.add_host("h1")
    topo.add_host("h2")
    topo.add_switch("s1", datapath_id=1)
    topo.add_switch("s2", datapath_id=2)
    topo.add_link("h1", "s1")
    topo.add_link("s1", "s2")
    topo.add_link("h2", "s2")
    network = Network(engine, topo)
    controller = FloodlightController(engine, extra_apps=list(extra_apps))
    system = SystemModel.from_topology(topo, ["c1"])
    model = AttackModel.no_tls_everywhere(system)
    injector = RuntimeInjector(engine, model, attack)
    injector.install(network, {"c1": controller})
    network.start()
    return network, controller, system


class TestLinkFabrication:
    def test_forged_packet_in_decodes_as_lldp(self):
        forged = forged_lldp_packet_in(7, 3, reported_in_port=2)
        decoded = decode_ethernet(forged.data)
        assert isinstance(decoded.l3, LldpPacket)
        assert decoded.l3.chassis_id == "dpid:7"
        assert decoded.l3.port_id == 3
        assert forged.in_port == 2

    def test_fabricated_link_appears_in_discovery(self, engine):
        disco = TopologyDiscoveryApp(probe_interval=1.0)
        attack = link_fabrication_attack(("c1", "s1"), fake_src_dpid=7,
                                         fake_src_port=3, reported_in_port=2)
        build_network(engine, attack, extra_apps=[disco])
        engine.run(until=15.0)
        # The real links exist...
        assert disco.has_link(1, 2, engine.now)
        # ...and so does the fabricated one, refreshed on every real probe.
        assert disco.has_link(7, 1, engine.now)
        fake = next(l for l in disco.links(engine.now).values()
                    if l.src_dpid == 7)
        assert (fake.src_port, fake.dst_dpid, fake.dst_port) == (3, 1, 2)

    def test_no_fabrication_without_attack(self, engine):
        disco = TopologyDiscoveryApp(probe_interval=1.0)
        build_network(engine, None, extra_apps=[disco])
        engine.run(until=15.0)
        assert not disco.has_link(7, 1, engine.now)
        assert all(l.src_dpid in (1, 2) for l in disco.links().values())

    def test_fabricated_link_stays_fresh(self, engine):
        """The fake link refreshes at the discovery cadence, beating TTL."""
        disco = TopologyDiscoveryApp(probe_interval=1.0, link_ttl=3.0)
        attack = link_fabrication_attack(("c1", "s1"), 7, 3, 2)
        build_network(engine, attack, extra_apps=[disco])
        engine.run(until=30.0)
        assert disco.has_link(7, 1, engine.now)  # still fresh at t=30


class TestStatsEvasion:
    def test_collector_starved_while_dataplane_works(self, engine):
        stats = StatsCollectorApp(poll_interval=1.0)
        attack = stats_evasion_attack([("c1", "s1"), ("c1", "s2")])
        network, _controller, _system = build_network(
            engine, attack, extra_apps=[stats]
        )
        engine.run(until=5.0)
        run = network.host("h1").ping(network.host_ip("h2"), count=3)
        engine.run(until=20.0)
        # Data plane healthy, monitoring blind.
        assert run.result.received == 3
        assert stats.polls_sent > 5
        assert stats.replies_received == 0
        assert stats.flow_count(1) == 0

    def test_without_attack_collector_sees_replies(self, engine):
        stats = StatsCollectorApp(poll_interval=1.0)
        build_network(engine, None, extra_apps=[stats])
        engine.run(until=10.0)
        assert stats.replies_received > 0


class TestStochasticDrop:
    CONN = ("c1", "s1")

    def feed(self, executor, count):
        survived = 0
        for index in range(count):
            message = EchoRequest(payload=b"x", xid=(index % 0xFFFF) + 1)
            interposed = InterposedMessage(
                self.CONN, Direction.TO_CONTROLLER, 0.0, message.pack(), message
            )
            survived += len(executor.handle_message(interposed))
        return survived

    def test_drop_rate_approximates_probability(self):
        from repro.sim import SeededRng

        attack = stochastic_drop_attack(self.CONN, 0.3)
        executor = AttackExecutor(attack, SimulationEngine(), rng=SeededRng(42))
        survived = self.feed(executor, 2000)
        drop_rate = 1 - survived / 2000
        assert 0.25 < drop_rate < 0.35

    def test_probability_zero_and_one(self):
        none_dropped = AttackExecutor(
            stochastic_drop_attack(self.CONN, 0.0), SimulationEngine()
        )
        assert self.feed(none_dropped, 50) == 50
        all_dropped = AttackExecutor(
            stochastic_drop_attack(self.CONN, 1.0), SimulationEngine()
        )
        assert self.feed(all_dropped, 50) == 0

    def test_same_seed_same_drop_pattern(self):
        from repro.sim import SeededRng

        def pattern(seed):
            executor = AttackExecutor(
                stochastic_drop_attack(self.CONN, 0.5),
                SimulationEngine(), rng=SeededRng(seed),
            )
            results = []
            for index in range(100):
                message = EchoRequest(payload=b"x", xid=index + 1)
                interposed = InterposedMessage(
                    self.CONN, Direction.TO_CONTROLLER, 0.0,
                    message.pack(), message,
                )
                results.append(len(executor.handle_message(interposed)))
            return results

        assert pattern(7) == pattern(7)
        assert pattern(7) != pattern(8)

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            stochastic_drop_attack(self.CONN, 1.5)
        with pytest.raises(ValueError):
            stochastic_drop_attack(self.CONN, -0.1)

    def test_condition_scopes_the_randomness(self):
        attack = stochastic_drop_attack(self.CONN, 1.0,
                                        condition_text="type = ECHO_REQUEST")
        executor = AttackExecutor(attack, SimulationEngine())
        hello = InterposedMessage(self.CONN, Direction.TO_CONTROLLER, 0.0,
                                  Hello().pack(), Hello())
        assert len(executor.handle_message(hello)) == 1  # only echoes drop
