"""Unit tests for the reusable attack library (structure + executor runs)."""

import pytest

from repro.attacks import (
    connection_interruption_attack,
    counting_attack_deque,
    counting_attack_naive,
    delay_attack,
    flow_mod_suppression_attack,
    fuzzing_attack,
    passthrough_attack,
    reordering_attack,
    replay_attack,
)
from repro.core.injector import AttackExecutor
from repro.core.lang.properties import Direction, InterposedMessage
from repro.netlib import Ipv4Address
from repro.openflow import EchoRequest, FlowMod, Hello, Match
from repro.sim import SimulationEngine

CONN = ("c1", "s2")
CONNS = [("c1", "s1"), ("c1", "s2")]


def interposed(message, connection=CONN, direction=Direction.TO_SWITCH):
    return InterposedMessage(connection, direction, 0.0, message.pack(), message)


def executor_for(attack):
    return AttackExecutor(attack, SimulationEngine())


class TestSuppressionAttack:
    def test_structure_matches_fig10(self):
        attack = flow_mod_suppression_attack(CONNS)
        assert set(attack.states) == {"sigma1"}
        assert attack.start == "sigma1"
        # σ1 is both start and absorbing; no end states.
        assert attack.graph.absorbing_states() == {"sigma1"}
        assert attack.graph.end_states() == frozenset()
        rule = attack.states["sigma1"].rules[0]
        assert rule.name == "phi1"
        assert rule.connections == frozenset(CONNS)

    def test_drops_flow_mods_passes_rest(self):
        executor = executor_for(flow_mod_suppression_attack(CONNS))
        assert executor.handle_message(interposed(FlowMod(Match()))) == []
        assert len(executor.handle_message(interposed(Hello()))) == 1
        assert len(executor.handle_message(interposed(EchoRequest()))) == 1

    def test_single_connection_form(self):
        attack = flow_mod_suppression_attack(CONN)
        assert attack.states["sigma1"].rules[0].connections == frozenset({CONN})


class TestInterruptionAttack:
    def build(self):
        return connection_interruption_attack(
            CONN, "10.0.0.2", ["10.0.0.3", "10.0.0.4", "10.0.0.5", "10.0.0.6"]
        )

    def test_structure_matches_fig12(self):
        attack = self.build()
        assert set(attack.states) == {"sigma1", "sigma2", "sigma3"}
        assert attack.graph.successors("sigma1") == {"sigma2"}
        assert attack.graph.successors("sigma2") == {"sigma3"}
        assert attack.graph.absorbing_states() == {"sigma3"}
        # σ3 is absorbing but not an end state (it has the drop-all rule).
        assert attack.graph.end_states() == frozenset()

    def test_progression_on_trigger(self):
        executor = executor_for(self.build())
        # Connection setup (switch HELLO) advances to sigma2; the message
        # itself passes.
        hello = interposed(Hello(), direction=Direction.TO_CONTROLLER)
        assert len(executor.handle_message(hello)) == 1
        assert executor.current_state_name == "sigma2"
        # An unrelated flow mod does not trigger phi2.
        unrelated = interposed(FlowMod(Match(nw_src=Ipv4Address("10.0.0.6"),
                                             nw_dst=Ipv4Address("10.0.0.1"))))
        assert len(executor.handle_message(unrelated)) == 1
        assert executor.current_state_name == "sigma2"
        # The firewall drop rule for h2 -> internal triggers and is dropped.
        trigger = interposed(FlowMod(Match(nw_src=Ipv4Address("10.0.0.2"),
                                           nw_dst=Ipv4Address("10.0.0.3"))))
        assert executor.handle_message(trigger) == []
        assert executor.current_state_name == "sigma3"
        # Everything on the connection is now black-holed.
        assert executor.handle_message(interposed(Hello())) == []
        assert executor.handle_message(interposed(EchoRequest())) == []

    def test_ryu_style_flow_mod_never_triggers(self):
        """The Table II anomaly at language level."""
        executor = executor_for(self.build())
        executor.handle_message(interposed(Hello(), direction=Direction.TO_CONTROLLER))
        l2_only = interposed(FlowMod(Match(in_port=1)))  # no nw fields
        for _ in range(10):
            assert len(executor.handle_message(l2_only.copy())) == 1
        assert executor.current_state_name == "sigma2"

    def test_other_connections_unaffected(self):
        executor = executor_for(self.build())
        other = interposed(FlowMod(Match()), connection=("c1", "s1"))
        assert len(executor.handle_message(other)) == 1


class TestReordering:
    def test_batch_released_in_reverse(self):
        attack = reordering_attack(CONN, batch_size=3)
        executor = executor_for(attack)
        emitted = []
        for index in range(6):
            message = EchoRequest(payload=f"m{index}".encode(), xid=index + 1)
            for out in executor.handle_message(interposed(message)):
                emitted.append(out.message.parsed.payload.decode())
        assert emitted == ["m2", "m1", "m0", "m5", "m4", "m3"]

    def test_counter_stays_single_cell(self):
        attack = reordering_attack(CONN, batch_size=2)
        executor = executor_for(attack)
        for index in range(8):
            executor.handle_message(
                interposed(EchoRequest(payload=b"x", xid=index + 1))
            )
        assert len(executor.storage.deque("count")) == 1
        assert len(executor.storage.deque("stack")) == 0

    def test_batch_too_small_rejected(self):
        with pytest.raises(ValueError):
            reordering_attack(CONN, batch_size=1)


class TestReplayAndFlood:
    def feed(self, executor, count):
        emitted = []
        for index in range(count):
            message = EchoRequest(payload=f"m{index}".encode(), xid=index + 1)
            for out in executor.handle_message(interposed(message)):
                emitted.append(out.message.parsed.payload.decode())
        return emitted

    def test_replay_fifo(self):
        attack = replay_attack(CONN, condition_text="type = ECHO_REQUEST",
                               batch_size=2, replay_copies=1)
        emitted = self.feed(executor_for(attack), 3)
        assert emitted == ["m0", "m1", "m0", "m1", "m2"]

    def test_flood_multiplies(self):
        attack = replay_attack(CONN, condition_text="type = ECHO_REQUEST",
                               batch_size=2, replay_copies=3)
        emitted = self.feed(executor_for(attack), 3)
        assert emitted == ["m0", "m1"] + ["m0"] * 3 + ["m1"] * 3 + ["m2"]

    def test_injected_messages_flagged(self):
        attack = replay_attack(CONN, condition_text="type = ECHO_REQUEST",
                               batch_size=1)
        executor = executor_for(attack)
        executor.handle_message(interposed(EchoRequest(payload=b"a", xid=1)))
        out = executor.handle_message(interposed(EchoRequest(payload=b"b", xid=2)))
        assert [o.injected for o in out] == [False, True]

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            replay_attack(CONN, batch_size=0)
        with pytest.raises(ValueError):
            replay_attack(CONN, replay_copies=0)


class TestDelayAndFuzzBuilders:
    def test_delay_marks_outgoing(self):
        executor = executor_for(delay_attack(CONN, "type = HELLO", delay_s=0.7))
        out = executor.handle_message(interposed(Hello()))
        assert out[0].delay == pytest.approx(0.7)
        out2 = executor.handle_message(interposed(EchoRequest()))
        assert out2[0].delay == 0.0

    def test_delay_requires_positive(self):
        with pytest.raises(ValueError):
            delay_attack(CONN, delay_s=0)

    def test_fuzz_mutates_matching(self):
        executor = executor_for(
            fuzzing_attack(CONN, "type = ECHO_REQUEST", bit_flips=4)
        )
        message = EchoRequest(payload=b"\x00" * 16, xid=1)
        original = message.pack()
        out = executor.handle_message(interposed(message))
        assert out[0].message.raw != original

    def test_fuzz_limit_reaches_end_state(self):
        executor = executor_for(
            fuzzing_attack(CONN, "type = ECHO_REQUEST", max_messages=2)
        )
        for index in range(2):
            executor.handle_message(interposed(EchoRequest(payload=b"x")))
        assert executor.current_state_name == "sigma_end"
        # End state: messages flow untouched.
        message = EchoRequest(payload=b"untouched")
        out = executor.handle_message(interposed(message))
        assert out[0].message.raw == message.pack()


class TestPassthrough:
    def test_passes_everything(self):
        executor = executor_for(passthrough_attack(CONNS))
        for message in (Hello(), FlowMod(Match()), EchoRequest()):
            out = executor.handle_message(interposed(message))
            assert len(out) == 1
            assert out[0].message.raw == message.pack()


class TestCountingBuilders:
    def test_n_must_be_positive(self):
        with pytest.raises(ValueError):
            counting_attack_naive(CONN, 0)
        with pytest.raises(ValueError):
            counting_attack_deque(CONN, 0)

    def test_memory_footprint_claim(self):
        """Section VIII-B: O(n) naive states vs O(1) deque states."""
        for n in (10, 100):
            assert len(counting_attack_naive(CONN, n).states) == n + 1
            assert len(counting_attack_deque(CONN, n).states) == 2


class TestAttackRegistry:
    """The named registry campaigns and the CLI resolve attacks through."""

    def test_all_stock_attacks_registered(self):
        from repro.attacks import list_attacks

        names = list_attacks()
        for expected in (
            "passthrough", "flow-mod-suppression", "connection-interruption",
            "blackhole", "delay", "replay", "reordering", "fuzzing",
            "stats-evasion", "link-fabrication", "stochastic-drop",
            "counting-naive", "counting-deque",
        ):
            assert expected in names

    def test_build_attack_binds_connections_when_wanted(self):
        from repro.attacks import build_attack

        attack = build_attack("flow-mod-suppression", connections=CONNS)
        assert attack.name == "flow-mod-suppression"
        built = build_attack("delay", connections=CONNS, delay_s=0.25)
        assert built.name == "message-delay"
        # Factories without a connections parameter still build.
        deque = build_attack("counting-deque", connections=CONNS, n=3)
        assert len(deque.states) == 2

    def test_registry_rejects_conflicts_and_unknowns(self):
        from repro.attacks import get_attack_factory, register_attack

        with pytest.raises(KeyError, match="unknown attack"):
            get_attack_factory("warp-core")
        factory = get_attack_factory("delay")
        # Re-registering the same factory is idempotent...
        register_attack("delay", factory)
        # ...but a different callable needs replace=True.
        with pytest.raises(ValueError, match="already registered"):
            register_attack("delay", lambda: None)

    def test_custom_registration_roundtrip(self):
        from repro.attacks import build_attack, register_attack

        def tiny(connections):
            return passthrough_attack(connections)

        register_attack("test-tiny", tiny, replace=True)
        try:
            attack = build_attack("test-tiny", connections=CONNS)
            assert attack.name == "passthrough"
        finally:
            from repro.attacks.library import _REGISTRY

            _REGISTRY.pop("test-tiny", None)
