"""Workload cells: fabric integration, shard invariance, campaign wiring."""

import pytest

from repro.campaign import CampaignSpec, ResultStore, reset_run_state, run_campaign
from repro.campaign.executors import execute_descriptor
from repro.campaign.report import build_report
from repro.experiments.fabric import fabric_config, run_fabric_experiment
from repro.experiments.workload import run_cell as run_workload_cell


# --------------------------------------------------------------------- #
# Config plumbing
# --------------------------------------------------------------------- #

def test_config_resolves_source_defaults():
    config = fabric_config("fat-tree-k4", workload="benign-mix",
                           pairs=3)
    assert config["workload_params"]["senders"] == 3
    assert config["workload_params"]["duration_s"] == 1.0
    assert config["workload_params"]["start_s"] == config["start_s"]
    assert config["horizon_s"] > config["start_s"] + 1.0


def test_config_rejects_unknown_workloads_and_bad_params():
    with pytest.raises(ValueError, match="unknown workload"):
        fabric_config("fat-tree-k4", workload="tsunami")
    with pytest.raises(ValueError, match="needs a controller"):
        fabric_config("fat-tree-k4", workload="packetin-flood")
    with pytest.raises(ValueError, match="bad schedule"):
        fabric_config("fat-tree-k4", workload="benign-mix",
                      workload_params={"schedule": "warp:9"})
    with pytest.raises(ValueError, match="table_eviction"):
        fabric_config("fat-tree-k4", table_eviction="coin-flip")
    with pytest.raises(ValueError, match="table_capacity"):
        fabric_config("fat-tree-k4", table_capacity=0)


# --------------------------------------------------------------------- #
# End-to-end runs
# --------------------------------------------------------------------- #

def test_benign_mix_delivers_over_proactive_routes():
    reset_run_state()
    result = run_fabric_experiment(
        "fat-tree-k4", workload="benign-mix", seed=1,
        workload_params={"schedule": "constant:300", "duration_s": 0.4,
                         "senders": 2},
    )
    assert result.packets_synthesized == 2 * 120
    # The UDP share of the mix lands on the far hosts' benign port.
    assert result.packets_delivered > 0


def test_table_overflow_fills_and_evicts():
    reset_run_state()
    result = run_fabric_experiment(
        "fat-tree-k4", controller="floodlight", workload="table-overflow",
        seed=3, table_capacity=64, table_eviction="lru",
        workload_params={"schedule": "constant:1200", "keys": 512,
                         "duration_s": 0.4, "senders": 2},
    )
    assert result.table_occupancy_peak == 64
    assert result.evictions_capacity > 0
    assert result.switch_packet_ins > 0
    assert result.packet_in_rate > 0
    record = result.record()
    for column in ("packets_synthesized", "packet_in_rate",
                   "table_occupancy_peak", "evictions_capacity",
                   "evictions_idle", "evictions_hard"):
        assert column in record


def test_workload_runs_are_shard_invariant():
    def run(shards):
        reset_run_state()
        return run_fabric_experiment(
            "fat-tree-k4", controller="floodlight",
            workload="packetin-flood", seed=7, shards=shards,
            table_capacity=128, table_eviction="fifo", trace=True,
            workload_params={"schedule": "burst:1500:150:0.2:0.4",
                             "duration_s": 0.4, "senders": 2},
        )

    inline, pooled = run(1), run(2)
    assert inline.trace_jsonl == pooled.trace_jsonl
    assert inline.trace_events == pooled.trace_events > 0
    inline_metrics, pooled_metrics = inline.record(), pooled.record()
    for metrics in (inline_metrics, pooled_metrics):
        for key in ("shards", "wall_s", "wall_packets_per_sec",
                    "capacity_packets_per_sec", "coordinator_cpu_s",
                    "worker_cpu_s", "exchange_bytes", "exchange_blobs"):
            metrics.pop(key)
    assert inline_metrics == pooled_metrics
    assert inline.packets_synthesized > 0
    assert inline.switch_packet_ins > 0


# --------------------------------------------------------------------- #
# Campaign wiring
# --------------------------------------------------------------------- #

def test_run_cell_hoists_flat_source_params():
    reset_run_state()
    record = run_workload_cell(
        controller="floodlight", topology="fat-tree-k4",
        workload="table-overflow", seed=2,
        schedule="constant:800", keys=128, senders=2, duration_s=0.3,
        table_capacity=32, table_eviction="fifo",
    )
    assert record["experiment"] == "workload"
    assert record["workload"] == "table-overflow"
    assert record["table_occupancy_peak"] == 32
    assert record["evictions_capacity"] > 0


def test_run_cell_rejects_unknown_sources():
    with pytest.raises(KeyError, match="unknown traffic source"):
        run_workload_cell(workload="udp")  # built-in, not a source


def test_execute_descriptor_routes_workload_cells():
    reset_run_state()
    record = execute_descriptor({
        "experiment": "workload",
        "topology": "fat-tree-k4",
        "controller": "floodlight",
        "seed": 1,
        "params": {"workload": "packetin-flood", "schedule": "constant:600",
                   "duration_s": 0.3, "senders": 2},
    })
    assert record["experiment"] == "workload"
    assert record["switch_packet_ins"] > 0


def test_workload_campaign_report_has_pressure_columns(tmp_path):
    spec = CampaignSpec(
        name="workload-test",
        attacks=["passthrough"],
        controllers=["floodlight"],
        topologies=["fat-tree-k4"],
        seeds=[1],
        baseline=None,
        experiment="workload",
        params={"workload": "table-overflow", "schedule": "constant:800",
                "keys": 128, "senders": 2, "duration_s": 0.3,
                "table_capacity": 32, "table_eviction": "lru"},
    )
    store = ResultStore(tmp_path / "results.jsonl")
    summary = run_campaign(spec, store, workers=1)
    assert summary.total == summary.succeeded == 1
    report = build_report(spec, store.records())
    cell = report.cells[0]
    assert cell.metrics["table_occupancy_peak"] == 32
    assert cell.metrics["evictions_capacity"] > 0
    assert cell.metrics["packet_in_rate"] > 0
    rendered = report.render()
    assert "pktin/s" in rendered
    assert "occ pk" in rendered
    assert "ev cap" in rendered
