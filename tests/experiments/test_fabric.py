"""Fabric experiments: routing, workloads, campaign integration."""

from repro.campaign import CampaignSpec, ResultStore, run_campaign
from repro.campaign.executors import execute_descriptor
from repro.dataplane.fabrics import generate_fabric
from repro.experiments.fabric import (
    controller_routes,
    fabric_config,
    plan_fabric,
    proactive_routes,
    run_cell,
    run_fabric_experiment,
    workload_pairs,
)


# --------------------------------------------------------------------- #
# Deterministic routing helpers
# --------------------------------------------------------------------- #

def test_workload_pairs_are_cross_pod():
    fabric = generate_fabric("fat-tree-k4")
    pairs = workload_pairs(fabric, 4)
    assert len(pairs) == 4
    for src, dst in pairs:
        assert src.split("e")[0] != dst.split("e")[0]  # different pods


def test_proactive_routes_cover_both_directions():
    fabric = generate_fabric("fat-tree-k4")
    pairs = workload_pairs(fabric, 2)
    routes = proactive_routes(fabric.topology, pairs)
    for src, dst in pairs:
        src_mac = fabric.topology.hosts[src].mac
        dst_mac = fabric.topology.hosts[dst].mac
        forward = [s for s, table in routes.items()
                   if any(mac == dst_mac for mac, _ in table)]
        reverse = [s for s, table in routes.items()
                   if any(mac == src_mac for mac, _ in table)]
        # A k=4 cross-pod path: edge -> agg -> core -> agg -> edge.
        assert len(forward) == 5
        assert len(reverse) == 5


def test_controller_routes_reach_every_host_from_every_switch():
    fabric = generate_fabric("fat-tree-k4")
    routes = controller_routes(fabric.topology)
    assert len(routes) == fabric.switch_count
    for table in routes.values():
        assert len(table) == fabric.host_count


def test_plan_is_a_pure_function_of_the_config():
    config = fabric_config("fat-tree-k4", controller="floodlight")
    first = plan_fabric(config)
    second = plan_fabric(config)
    assert first.partition == second.partition
    assert first.owner == second.owner
    assert first.weights == second.weights
    assert first.ctrl_rid == len(first.partition)


# --------------------------------------------------------------------- #
# Workloads
# --------------------------------------------------------------------- #

def test_controllerless_udp_delivers_everything():
    result = run_fabric_experiment("fat-tree-k4", pairs=4, packets=10)
    assert result.packets_sent == 40
    assert result.packets_delivered == 40
    assert result.cross_shard_messages > 0
    assert result.regions == 6  # 4 pods + 2 core rows


def test_leaf_spine_udp_delivers_everything():
    result = run_fabric_experiment("leaf-spine-4x2", pairs=4, packets=5)
    assert result.packets_delivered == result.packets_sent == 20


def test_controller_ping_installs_flows_and_answers():
    result = run_fabric_experiment(
        "fat-tree-k4", controller="floodlight", pairs=2, packets=2,
    )
    assert result.ping_received == result.ping_sent == 4
    assert result.packet_ins > 0
    assert result.flow_mods_seen > 0
    assert result.flow_mods_dropped == 0
    assert result.median_rtt_s is not None


def test_suppression_attack_drops_flow_mods_but_floodlight_survives():
    result = run_fabric_experiment(
        "fat-tree-k4", controller="floodlight",
        attack="flow-mod-suppression", pairs=2, packets=2,
    )
    # Floodlight releases buffered packets via PACKET_OUT, so pings still
    # complete even though every FLOW_MOD is suppressed (the paper's
    # degraded-but-alive case).
    assert result.flow_mods_dropped > 0
    assert result.ping_received == result.ping_sent


def test_config_rejects_ping_without_controller():
    import pytest

    with pytest.raises(ValueError):
        fabric_config("fat-tree-k4", workload="ping")


# --------------------------------------------------------------------- #
# Campaign integration
# --------------------------------------------------------------------- #

def test_execute_descriptor_runs_fabric_cells():
    metrics = execute_descriptor({
        "experiment": "fabric",
        "topology": "fat-tree-k4",
        "controller": "none",
        "params": {"pairs": 2, "packets": 5},
    })
    assert metrics["experiment"] == "fabric"
    assert metrics["topology"] == "fat-tree-k4"
    assert metrics["packets_delivered"] == 10
    assert metrics["delivery_rate"] == 1.0


def test_run_cell_matches_direct_experiment():
    direct = run_fabric_experiment("fat-tree-k4", pairs=2, packets=5).record()
    via_cell = run_cell(topology="fat-tree-k4", pairs=2, packets=5)
    for key in ("packets_sent", "packets_delivered", "cross_shard_messages",
                "processed_events", "epochs"):
        assert direct[key] == via_cell[key]


def test_fabric_campaign_through_worker_processes(tmp_path):
    """Fabric cells run inside campaign workers (which are daemonic, so
    the sharded executor falls back to inline multi-region execution)."""
    spec = CampaignSpec.from_dict({
        "name": "fabric-smoke",
        "experiment": "fabric",
        "attacks": [None, "flow-mod-suppression"],
        "controllers": ["floodlight"],
        "topologies": ["fat-tree-k4"],
        "seeds": [1],
        "params": {"pairs": 2, "packets": 2, "shards": 2},
        "timeout_s": 120.0,
    })
    store = ResultStore(tmp_path / "runs.jsonl")
    summary = run_campaign(spec, store, workers=2)
    assert summary.total == summary.succeeded == 2
    records = store.ok_records()
    by_attack = {r["attack"]: r["metrics"] for r in records}
    assert by_attack[None]["flow_mods_dropped"] == 0
    assert by_attack["flow-mod-suppression"]["flow_mods_dropped"] > 0
    for metrics in by_attack.values():
        assert metrics["ping_received"] == metrics["ping_sent"] > 0
        # Daemonic campaign workers force the inline executor.
        assert metrics["shards"] == 1
