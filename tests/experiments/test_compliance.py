"""Tests for the OFTest-style switch compliance suite."""

import pytest

from repro.experiments.compliance import (
    ComplianceReport,
    ComplianceRig,
    CheckResult,
    run_compliance_suite,
)


@pytest.fixture(scope="module")
def report():
    return run_compliance_suite()


def test_all_checks_pass(report):
    assert report.all_passed, report.render()


def test_suite_covers_the_expected_areas(report):
    names = " ".join(result.name for result in report.results)
    for area in ("handshake", "echo", "barrier", "config", "miss",
                 "buffering", "forwarding", "priority", "drop rule",
                 "flood", "delete", "timeouts", "stats", "fail-secure",
                 "fail-safe"):
        assert area in names, f"missing coverage area {area!r}"


def test_suite_has_meaningful_size(report):
    assert len(report.results) >= 15
    assert report.passed_count == len(report.results)


def test_render_format(report):
    text = report.render()
    assert text.startswith("switch compliance:")
    assert text.count("[PASS]") == len(report.results)
    assert "[FAIL]" not in text


def test_report_detects_failures():
    failing = ComplianceReport(results=[
        CheckResult("good", True),
        CheckResult("bad", False, "oops"),
    ])
    assert not failing.all_passed
    assert failing.passed_count == 1
    assert "[FAIL] bad — oops" in failing.render()


def test_rig_is_reusable():
    rig = ComplianceRig()
    assert rig.switch.connected
    rig2 = ComplianceRig()
    assert rig2.switch.connected


def test_suite_catches_a_broken_switch(monkeypatch):
    """Break flood semantics and confirm the suite notices."""
    from repro.dataplane.switch import OpenFlowSwitch

    original = OpenFlowSwitch._flood

    def broken_flood(self, in_port, data):
        # Wrong: also sends back out the ingress port.
        for port_no in self.port_numbers():
            if self._port_up.get(port_no, False):
                self._transmit(port_no, data)

    monkeypatch.setattr(OpenFlowSwitch, "_flood", broken_flood)
    report = run_compliance_suite()
    failed = [result.name for result in report.results if not result.passed]
    assert any("flood" in name for name in failed), failed
    monkeypatch.setattr(OpenFlowSwitch, "_flood", original)
