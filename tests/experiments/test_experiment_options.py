"""Coverage for experiment-driver options and injector introspection."""

import pytest

from repro.attacks import flow_mod_suppression_attack
from repro.controllers import FloodlightController
from repro.core import AttackModel, RuntimeInjector, SystemModel
from repro.dataplane import FailMode, Network
from repro.experiments import run_interruption_experiment
from repro.sim import SimulationEngine


def test_interruption_time_scale_compresses_runtime():
    """A 0.5 time scale still reproduces the fail-secure outcome while the
    simulation finishes earlier (the liveness constants dominate)."""
    result = run_interruption_experiment("floodlight", FailMode.SECURE,
                                         time_scale=0.5)
    assert result.interruption_happened
    assert result.denial_of_service


def test_interruption_unattacked_baseline_row():
    result = run_interruption_experiment("pox", FailMode.STANDALONE,
                                         attacked=False)
    assert not result.attacked
    assert not result.interruption_happened
    # Normal operation: the firewall holds and nothing breaks.
    assert not result.external_to_internal_t50
    assert result.internal_to_external_t95


def test_injector_proxy_stats_total(engine, small_topology):
    network = Network(engine, small_topology)
    controller = FloodlightController(engine)
    system = SystemModel.from_topology(small_topology, ["c1"])
    model = AttackModel.no_tls_everywhere(system)
    attack = flow_mod_suppression_attack(system.connection_keys())
    injector = RuntimeInjector(engine, model, attack)
    injector.install(network, {"c1": controller})
    network.start()
    engine.run(until=5.0)
    network.host("h1").ping(network.host_ip("h2"), count=2)
    engine.run(until=15.0)
    assert injector.proxy_stats_total("to_controller_messages") > 0
    assert injector.proxy_stats_total("to_switch_messages") > 0
    assert injector.current_state == "sigma1"
    assert "flow-mod-suppression" in repr(injector)


def test_cli_compile_validation_failure(tmp_path, capsys):
    """An attack demanding payload capabilities fails TLS validation."""
    from repro.cli import main
    from tests.test_cli import ATTACK_XML, SYSTEM_XML

    system = tmp_path / "system.xml"
    system.write_text(SYSTEM_XML)
    attack = tmp_path / "attack.xml"
    attack.write_text(ATTACK_XML)
    model = tmp_path / "model.xml"
    model.write_text(
        '<attackmodel><connection controller="c1" switch="s1" '
        'class="tls"/></attackmodel>'
    )
    with pytest.raises(Exception):
        main(["compile", "--system", str(system), "--attack", str(attack),
              "--attack-model", str(model)])


def test_controller_add_app(engine, small_topology):
    from repro.controllers import ControllerApp
    from tests.conftest import build_connected_network

    network, controller = build_connected_network(engine, small_topology)
    before = len(controller.apps)
    controller.add_app(ControllerApp())
    assert len(controller.apps) == before + 1
