"""Integration tests for the Table II connection-interruption experiment."""

import pytest

from repro.dataplane import FailMode
from repro.experiments import run_interruption_experiment


@pytest.fixture(scope="module")
def results():
    out = {}
    for controller in ("floodlight", "pox", "ryu"):
        for mode in (FailMode.STANDALONE, FailMode.SECURE):
            out[(controller, mode)] = run_interruption_experiment(controller, mode)
    return out


def test_pre_attack_probes_always_succeed(results):
    """Rows 1-2 of Table II: both t=30s probes succeed everywhere."""
    for result in results.values():
        assert result.external_to_external_t30
        assert result.internal_to_external_t30


@pytest.mark.parametrize("controller", ["floodlight", "pox"])
def test_fail_safe_gives_unauthorized_access(results, controller):
    """'In all of the fail-safe cases, the DMZ firewall switch defaulted to
    a learning switch mode ... allowed an external user to access internal
    network hosts, which represents unauthorized increased access.'"""
    result = results[(controller, FailMode.STANDALONE)]
    assert result.interruption_happened
    assert result.external_to_internal_t50
    assert result.unauthorized_increased_access
    # Fail-safe also preserves internal users' external access.
    assert result.internal_to_external_t95
    assert not result.denial_of_service


@pytest.mark.parametrize("controller", ["floodlight", "pox"])
def test_fail_secure_gives_denial_of_service(results, controller):
    """'In most of the fail-secure cases (excluding Ryu) ... preventing
    internal users from accessing external network hosts, representing a
    data plane denial of service against legitimate traffic.'"""
    result = results[(controller, FailMode.SECURE)]
    assert result.interruption_happened
    assert not result.external_to_internal_t50   # firewall intent preserved
    assert not result.internal_to_external_t95   # but legitimate traffic dies
    assert result.denial_of_service
    assert not result.unauthorized_increased_access


@pytest.mark.parametrize("mode", [FailMode.STANDALONE, FailMode.SECURE])
def test_ryu_anomaly(results, mode):
    """'Ryu did not trigger rule φ2 since its flow match attributes were
    specified differently ... and thus the attack never entered state σ3.'"""
    result = results[("ryu", mode)]
    assert not result.interruption_happened
    assert result.attack_states_visited[-1] == "sigma2"
    assert result.connection_deaths == 0
    # The firewall keeps working and no denial of service occurs.
    assert not result.external_to_internal_t50
    assert result.internal_to_external_t95
    assert not result.denial_of_service


def test_attack_progresses_through_fig12_states(results):
    result = results[("floodlight", FailMode.SECURE)]
    assert result.attack_states_visited == ["sigma1", "sigma2", "sigma3"]


def test_trade_off_claim(results):
    """'There is a trade-off between allowing increased access and creating
    a denial of service against legitimate traffic.'"""
    for controller in ("floodlight", "pox"):
        safe = results[(controller, FailMode.STANDALONE)]
        secure = results[(controller, FailMode.SECURE)]
        assert safe.unauthorized_increased_access != secure.unauthorized_increased_access
        assert safe.denial_of_service != secure.denial_of_service


def test_baseline_without_attack_firewall_holds():
    result = run_interruption_experiment("floodlight", FailMode.SECURE,
                                         attacked=False)
    assert not result.external_to_internal_t50
    assert result.internal_to_external_t95
    assert not result.interruption_happened


def test_row_rendering(results):
    row = results[("floodlight", FailMode.SECURE)].row()
    assert row["controller"] == "floodlight"
    assert row["denial_of_service"] is True
    assert row["ext->int (t=50s)"] == "no"
