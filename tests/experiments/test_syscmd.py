"""Tests for SYSCMD routing onto simulated hosts."""

import pytest

from repro.controllers import FloodlightController
from repro.core import AttackModel, RuntimeInjector, SystemModel
from repro.core.lang import Attack, AttackState, Rule, SysCmd, parse_condition
from repro.core.model import gamma_no_tls
from repro.dataplane import Network, Topology
from repro.experiments.syscmd import HostCommandRouter, SysCmdError
from repro.sim import SimulationEngine
from tests.conftest import build_connected_network


@pytest.fixture
def rig(engine, small_topology):
    network, controller = build_connected_network(engine, small_topology)
    return engine, network, HostCommandRouter(network)


class TestPingCommand:
    def test_ping_by_host_name(self, rig):
        engine, network, router = rig
        router("h1", "ping h2 3")
        engine.run(until=engine.now + 10.0)
        assert len(router.ping_monitor.results) == 1
        assert router.ping_monitor.results[0].received == 3
        assert router.executed == [("h1", "ping h2 3")]

    def test_ping_by_ip_with_interval(self, rig):
        engine, network, router = rig
        router("h1", "ping 10.0.0.2 2 0.5")
        engine.run(until=engine.now + 10.0)
        assert router.ping_monitor.results[0].received == 2

    @pytest.mark.parametrize("bad", ["ping", "ping h2", "ping h2 zero",
                                     "ping ghost 3", "ping h2 0",
                                     "ping 999.1.1.1 3"])
    def test_bad_ping_rejected(self, rig, bad):
        _engine, _network, router = rig
        with pytest.raises(SysCmdError):
            router("h1", bad)
        assert router.rejected


class TestIperfCommand:
    def test_server_then_client(self, rig):
        engine, network, router = rig
        router("h2", "iperf -s")
        router("h1", "iperf -c h2 0.5")
        engine.run(until=engine.now + 30.0)
        assert len(router.iperf_monitor.results) == 1
        assert router.iperf_monitor.results[0].connected

    def test_custom_port(self, rig):
        engine, network, router = rig
        router("h2", "iperf -s 7000")
        router("h1", "iperf -c h2 0.5 7000")
        engine.run(until=engine.now + 30.0)
        assert router.iperf_monitor.results[0].connected

    @pytest.mark.parametrize("bad", ["iperf", "iperf -x", "iperf -c",
                                     "iperf -c h2", "iperf -c ghost 1",
                                     "iperf -c h2 fast"])
    def test_bad_iperf_rejected(self, rig, bad):
        _engine, _network, router = rig
        with pytest.raises(SysCmdError):
            router("h1", bad)


class TestGeneralRouting:
    def test_unknown_host_rejected(self, rig):
        _engine, _network, router = rig
        with pytest.raises(SysCmdError):
            router("ghost", "ping h2 1")

    def test_unknown_verb_rejected(self, rig):
        _engine, _network, router = rig
        with pytest.raises(SysCmdError):
            router("h1", "rm -rf /")

    def test_capture_is_acknowledged(self, rig):
        _engine, _network, router = rig
        router("h1", "capture")
        assert ("h1", "capture") in router.executed

    def test_non_strict_mode_records_without_raising(self, engine, small_topology):
        network, _controller = build_connected_network(engine, small_topology)
        router = HostCommandRouter(network, strict=False)
        router("h1", "bogus command")
        assert router.rejected == [("h1", "bogus command")]


class TestFromAttackDescription:
    def test_attack_actuated_ping(self, engine, small_topology):
        """The paper's pattern: SYSCMD inside an attack starts a monitor."""
        network = Network(engine, small_topology)
        controller = FloodlightController(engine)
        system = SystemModel.from_topology(small_topology, ["c1"])
        model = AttackModel.no_tls_everywhere(system)
        rule = Rule(
            "start_monitoring", frozenset(system.connection_keys()),
            gamma_no_tls(), parse_condition("type = FEATURES_REPLY"),
            [SysCmd("h1", "ping h2 2")],
        )
        attack = Attack("monitor-start", [AttackState("sigma1", [rule])],
                        "sigma1")
        injector = RuntimeInjector(engine, model, attack)
        router = HostCommandRouter(network)
        injector.set_syscmd_router(router)
        injector.install(network, {"c1": controller})
        network.start()
        engine.run(until=20.0)
        # The handshake's FEATURES_REPLYs actuated the ping monitor.
        assert router.executed
        assert router.ping_monitor.results
        assert router.ping_monitor.results[0].received == 2
