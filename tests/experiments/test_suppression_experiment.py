"""Integration tests for the Fig. 11 suppression experiment driver.

Scaled-down workloads keep runtime low; the full-scale reproduction lives
in benchmarks/test_fig11_*.py.
"""

import pytest

from repro.experiments import run_suppression_experiment

FAST = dict(ping_trials=8, iperf_trials=1, iperf_duration_s=1.0,
            iperf_gap_s=1.0, warmup_s=5.0)


@pytest.fixture(scope="module")
def results():
    out = {}
    for controller in ("floodlight", "pox", "ryu"):
        for attacked in (False, True):
            out[(controller, attacked)] = run_suppression_experiment(
                controller, attacked, **FAST
            )
    return out


def test_baselines_are_healthy(results):
    for controller in ("floodlight", "pox", "ryu"):
        baseline = results[(controller, False)]
        assert baseline.ping_loss_rate == 0.0
        assert baseline.mean_throughput_mbps > 60.0
        assert baseline.flow_mods_dropped == 0
        assert not baseline.denial_of_service


def test_baselines_statistically_similar(results):
    rtts = [results[(c, False)].median_rtt_s for c in ("floodlight", "pox", "ryu")]
    assert max(rtts) < 0.01  # all in the low-millisecond regime


def test_pox_suppression_is_denial_of_service(results):
    """The Fig. 11 asterisk."""
    attacked = results[("pox", True)]
    assert attacked.denial_of_service
    assert attacked.ping_received == 0
    assert attacked.mean_throughput_mbps == 0.0
    assert attacked.median_rtt_s is None  # "latency is infinite"


@pytest.mark.parametrize("controller", ["floodlight", "ryu"])
def test_degradation_without_dos(results, controller):
    baseline = results[(controller, False)]
    attacked = results[(controller, True)]
    assert not attacked.denial_of_service
    assert attacked.ping_loss_rate == 0.0
    # Latency rises by a clear factor (every packet -> controller RTT).
    assert attacked.median_rtt_s > 2 * baseline.median_rtt_s
    # Throughput collapses by at least ~5x.
    assert attacked.mean_throughput_mbps < baseline.mean_throughput_mbps / 5


def test_control_plane_amplification(results):
    """Section VII-B: up to n PACKET_INs for n data packets."""
    for controller in ("floodlight", "ryu"):
        baseline = results[(controller, False)]
        attacked = results[(controller, True)]
        assert attacked.packet_ins > 10 * max(baseline.packet_ins, 1)
        assert attacked.flow_mods_dropped > 0


def test_flow_mods_all_dropped_under_attack(results):
    for controller in ("floodlight", "pox", "ryu"):
        attacked = results[(controller, True)]
        assert attacked.flow_mods_dropped == attacked.flow_mods_seen


def test_result_row_shape(results):
    row = results[("floodlight", True)].row()
    assert set(row) == {
        "controller", "attacked", "throughput_mbps", "median_rtt_ms",
        "ping_loss", "packet_ins", "flow_mods_dropped", "dos",
    }
