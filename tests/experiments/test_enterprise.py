"""Unit tests for the enterprise case-study builder."""

import pytest

from repro.dataplane import FailMode
from repro.experiments import (
    build_enterprise,
    enterprise_system_model,
    enterprise_topology,
)
from repro.sim import SimulationEngine


def test_topology_matches_fig8():
    topo = enterprise_topology()
    assert sorted(topo.hosts) == [f"h{i}" for i in range(1, 7)]
    assert sorted(topo.switches) == [f"s{i}" for i in range(1, 5)]
    assert len(topo.links) == 9
    graph = topo.data_plane_graph()
    # h1, h2 on s1; h3, h4 on s3; h5, h6 on s4; s2 joins s1/s3/s4.
    assert ("h1", "s1") in graph["edges"]
    assert ("h2", "s1") in graph["edges"]
    assert ("h3", "s3") in graph["edges"]
    assert ("h6", "s4") in graph["edges"]
    assert ("s1", "s2") in graph["edges"]
    assert ("s2", "s3") in graph["edges"]
    assert ("s2", "s4") in graph["edges"]


def test_system_model_matches_fig9():
    system = enterprise_system_model()
    assert list(system.controllers) == ["c1"]
    assert system.connection_keys() == [
        ("c1", "s1"), ("c1", "s2"), ("c1", "s3"), ("c1", "s4")
    ]
    assert len(system.hosts) == 6


def test_host_addressing():
    system = enterprise_system_model()
    for index in range(1, 7):
        assert str(system.host_ip(f"h{index}")) == f"10.0.0.{index}"


@pytest.mark.parametrize("kind", ["floodlight", "pox", "ryu"])
def test_build_enterprise_connects(kind):
    engine = SimulationEngine()
    setup = build_enterprise(engine, controller_kind=kind)
    from repro.core import RuntimeInjector, AttackModel

    injector = RuntimeInjector(
        engine, AttackModel.no_tls_everywhere(setup.system)
    )
    injector.install(setup.network, {"c1": setup.controller})
    setup.network.start()
    engine.run(until=5.0)
    assert setup.network.all_connected()


def test_firewall_optional():
    engine = SimulationEngine()
    with_fw = build_enterprise(engine, with_firewall=True)
    assert with_fw.firewall is not None
    without = build_enterprise(SimulationEngine(), with_firewall=False)
    assert without.firewall is None


def test_fail_mode_propagates():
    setup = build_enterprise(SimulationEngine(), fail_mode=FailMode.STANDALONE)
    assert all(s.fail_mode is FailMode.STANDALONE
               for s in setup.network.switches.values())


def test_unknown_controller_rejected():
    with pytest.raises(ValueError):
        build_enterprise(SimulationEngine(), controller_kind="opendaylight")


def test_setup_convenience_accessors():
    setup = build_enterprise(SimulationEngine())
    assert setup.external_user_ip == "10.0.0.2"
    assert setup.internal_ips == ("10.0.0.3", "10.0.0.4", "10.0.0.5", "10.0.0.6")
