"""Single-pass flow-key extraction vs. the decode-based reference.

These tests guard the fast lane's memoization against stale-key bugs:
every frame shape the simulator (or an attack) can produce must extract
to exactly what ``extract_packet_fields_reference`` produces — same
fields, same ``None`` degradations, same exceptions.
"""

import struct

import pytest

from repro.netlib import (
    ArpPacket,
    EtherType,
    EthernetFrame,
    IcmpEcho,
    IpProtocol,
    Ipv4Address,
    Ipv4Packet,
    LldpPacket,
    MacAddress,
    TcpFlags,
    TcpSegment,
    UdpDatagram,
)
from repro.netlib.ethernet import FrameDecodeError
from repro.netlib.flowkey import extract_flow_key, mac_pair_of
from repro.openflow.match import (
    MATCH_FIELD_NAMES,
    extract_packet_fields,
    extract_packet_fields_reference,
    field_tuple,
)

MAC_A = MacAddress("00:00:00:00:00:01")
MAC_B = MacAddress("00:00:00:00:00:02")
IP_A = Ipv4Address("10.0.0.1")
IP_B = Ipv4Address("10.0.0.2")


def eth(payload: bytes, ethertype: int = EtherType.IPV4) -> bytes:
    return EthernetFrame(MAC_B, MAC_A, ethertype, payload).pack()


def ip(payload: bytes, protocol: int = IpProtocol.TCP) -> bytes:
    return Ipv4Packet(IP_A, IP_B, protocol, payload).pack()


def icmp_frame() -> bytes:
    return eth(ip(IcmpEcho.request(7, 3, b"x" * 56).pack(),
                  protocol=IpProtocol.ICMP))


def tcp_frame() -> bytes:
    seg = TcpSegment(49152, 5001, seq=1, flags=TcpFlags.ACK, payload=b"d" * 100)
    return eth(ip(seg.pack()))


def udp_frame() -> bytes:
    return eth(ip(UdpDatagram(1234, 53, b"q").pack(), protocol=IpProtocol.UDP))


def arp_frame(opcode: int = 1) -> bytes:
    if opcode == 1:
        arp = ArpPacket.request(MAC_A, IP_A, IP_B)
    else:
        arp = ArpPacket.reply(MAC_A, IP_A, MAC_B, IP_B)
    return eth(arp.pack(), ethertype=EtherType.ARP)


def assert_equivalent(data: bytes, in_port: int = 3) -> None:
    """Fast and reference extraction agree — result or exception."""
    try:
        expected = extract_packet_fields_reference(data, in_port)
    except Exception as exc:  # noqa: BLE001 - comparing failure modes
        with pytest.raises(type(exc)):
            extract_flow_key(data, in_port)
        return
    assert extract_flow_key(data, in_port) == expected


WELL_FORMED = {
    "icmp-request": icmp_frame(),
    "icmp-reply": eth(ip(IcmpEcho.request(1, 1).reply().pack(),
                         protocol=IpProtocol.ICMP)),
    "tcp": tcp_frame(),
    "udp": udp_frame(),
    "arp-request": arp_frame(1),
    "arp-reply": arp_frame(2),
    "lldp": eth(LldpPacket("dpid:1", 2).pack(), ethertype=EtherType.LLDP),
    "unknown-ethertype": eth(b"\x01\x02\x03", ethertype=0x88CC + 1),
    "ipv6-ethertype": eth(b"\x60" + b"\x00" * 39, ethertype=0x86DD),
    "bare-ethernet": eth(b""),
    "ip-no-l4": eth(ip(b"", protocol=99)),
    "ip-empty-tcp": eth(ip(b"", protocol=IpProtocol.TCP)),
}


@pytest.mark.parametrize("name", sorted(WELL_FORMED))
def test_equivalence_well_formed(name):
    assert_equivalent(WELL_FORMED[name])


@pytest.mark.parametrize("name", sorted(WELL_FORMED))
def test_equivalence_under_truncation(name):
    """Every prefix of every frame shape extracts identically."""
    data = WELL_FORMED[name]
    for cut in range(len(data) + 1):
        assert_equivalent(data[:cut])


def test_match_py_delegates_to_fast_extractor():
    frame = tcp_frame()
    assert extract_packet_fields(frame, 1) == extract_flow_key(frame, 1)


def test_truncated_ethernet_raises():
    with pytest.raises(FrameDecodeError):
        extract_flow_key(b"\x00" * 13, 1)
    # 14 bytes is a valid (empty-payload) frame.
    fields = extract_flow_key(b"\x00" * 14, 1)
    assert fields["dl_type"] == 0


def test_non_ip_ethertype_leaves_l3_fields_none():
    fields = extract_flow_key(eth(b"payload", ethertype=0x1234), 2)
    assert fields["dl_type"] == 0x1234
    for name in ("nw_tos", "nw_proto", "nw_src", "nw_dst", "tp_src", "tp_dst"):
        assert fields[name] is None


def test_icmp_type_and_code_extraction():
    fields = extract_flow_key(icmp_frame(), 1)
    assert fields["nw_proto"] == 1
    assert fields["tp_src"] == 8  # echo request type
    assert fields["tp_dst"] == 0
    reply = eth(ip(IcmpEcho.request(1, 1).reply().pack(),
                   protocol=IpProtocol.ICMP))
    assert extract_flow_key(reply, 1)["tp_src"] == 0


def _patch_l4(frame: bytes, offset_in_l4: int, value: int) -> bytes:
    mutated = bytearray(frame)
    mutated[34 + offset_in_l4] = value
    return bytes(mutated)


def test_icmp_nonzero_code_degrades_to_no_l4():
    # Corrupt the code byte: IcmpEcho.unpack rejects it, so both routes
    # keep the IP fields and drop tp_src/tp_dst.
    broken = _patch_l4(icmp_frame(), 1, 0x7)
    assert_equivalent(broken)
    fields = extract_flow_key(broken, 1)
    assert fields["nw_proto"] == 1 and fields["tp_src"] is None


def test_icmp_unknown_type_raises_like_reference():
    # Type 13 (timestamp) passes code+checksum checks but IcmpEcho's
    # constructor rejects it with ValueError; the fast route must too.
    frame = bytearray(icmp_frame())
    frame[34] = 13
    # Fix the ICMP checksum for the new type byte (type went 8 -> 13).
    checksum = struct.unpack_from("!H", frame, 36)[0]
    fixed = checksum - (13 - 8) * 256
    struct.pack_into("!H", frame, 36, fixed & 0xFFFF)
    assert_equivalent(bytes(frame))
    with pytest.raises(ValueError):
        extract_flow_key(bytes(frame), 1)


def test_icmp_bad_checksum_degrades_to_no_l4():
    broken = _patch_l4(icmp_frame(), 2, 0xEE)
    assert_equivalent(broken)
    assert extract_flow_key(broken, 1)["tp_src"] is None


def test_tcp_with_options_degrades_to_no_l4():
    # data offset 8 (options present) is rejected by TcpSegment.unpack.
    broken = _patch_l4(tcp_frame(), 12, 8 << 4)
    assert_equivalent(broken)
    fields = extract_flow_key(broken, 1)
    assert fields["nw_proto"] == 6 and fields["tp_src"] is None


def test_udp_bad_length_field_degrades_to_no_l4():
    broken = bytearray(udp_frame())
    struct.pack_into("!H", broken, 34 + 4, 4)  # length < header size
    assert_equivalent(bytes(broken))
    assert extract_flow_key(bytes(broken), 1)["tp_src"] is None


def test_ipv4_bad_header_checksum_degrades_to_l2_only():
    broken = bytearray(tcp_frame())
    broken[24] ^= 0xFF  # corrupt the header checksum
    assert_equivalent(bytes(broken))
    fields = extract_flow_key(bytes(broken), 1)
    assert fields["dl_type"] == EtherType.IPV4
    assert fields["nw_src"] is None and fields["tp_src"] is None


def test_ipv4_options_and_bad_version_degrade_to_l2_only():
    for version_ihl in (0x46, 0x65):  # ihl=6, version=6
        broken = bytearray(tcp_frame())
        broken[14] = version_ihl
        assert_equivalent(bytes(broken))
        assert extract_flow_key(bytes(broken), 1)["nw_src"] is None


def test_trailing_slack_beyond_total_length_is_ignored():
    padded = tcp_frame() + b"\x00" * 18  # e.g. minimum-size padding
    assert_equivalent(padded)
    assert extract_flow_key(padded, 1) == extract_flow_key(tcp_frame(), 1)


def test_arp_maps_into_nw_fields():
    fields = extract_flow_key(arp_frame(1), 4)
    assert fields["dl_type"] == EtherType.ARP
    assert fields["nw_proto"] == 1  # opcode rides in nw_proto
    assert fields["nw_src"] == IP_A and fields["nw_dst"] == IP_B
    assert fields["tp_src"] is None


def test_arp_unknown_opcode_raises_like_reference():
    broken = bytearray(arp_frame(1))
    struct.pack_into("!H", broken, 14 + 6, 9)  # opcode 9
    assert_equivalent(bytes(broken))
    with pytest.raises(ValueError):
        extract_flow_key(bytes(broken), 1)


def test_field_tuple_covers_all_twelve_fields():
    fields = extract_flow_key(tcp_frame(), 5)
    values = field_tuple(fields)
    assert len(values) == len(MATCH_FIELD_NAMES) == 12
    assert values[0] == 5  # in_port leads


def test_mac_pair_of():
    assert mac_pair_of(tcp_frame()) == (MAC_A, MAC_B)
    assert mac_pair_of(b"\x00" * 13) is None
