"""Property-based round-trip tests for every wire format in netlib."""

from hypothesis import given, strategies as st

from repro.netlib import (
    ArpPacket,
    EthernetFrame,
    IcmpEcho,
    IcmpType,
    Ipv4Packet,
    LldpPacket,
    TcpFlags,
    TcpSegment,
    UdpDatagram,
)
from repro.netlib.addresses import Ipv4Address, MacAddress
from repro.netlib.arp import OP_REPLY, OP_REQUEST

macs = st.integers(min_value=0, max_value=(1 << 48) - 1).map(MacAddress)
ips = st.integers(min_value=0, max_value=(1 << 32) - 1).map(Ipv4Address)
ports = st.integers(min_value=0, max_value=0xFFFF)
payloads = st.binary(max_size=256)


@given(macs, macs, st.integers(min_value=0, max_value=0xFFFF), payloads)
def test_ethernet_roundtrip(dst, src, ethertype, payload):
    frame = EthernetFrame(dst, src, ethertype, payload)
    assert EthernetFrame.unpack(frame.pack()) == frame


@given(st.sampled_from([OP_REQUEST, OP_REPLY]), macs, ips, macs, ips)
def test_arp_roundtrip(opcode, smac, sip, tmac, tip):
    arp = ArpPacket(opcode, smac, sip, tmac, tip)
    assert ArpPacket.unpack(arp.pack()) == arp


@given(ips, ips, st.integers(min_value=0, max_value=255),
       st.integers(min_value=1, max_value=255),
       st.integers(min_value=0, max_value=0xFFFF), payloads)
def test_ipv4_roundtrip(src, dst, protocol, ttl, identification, payload):
    packet = Ipv4Packet(src, dst, protocol, payload, ttl=ttl,
                        identification=identification)
    assert Ipv4Packet.unpack(packet.pack()) == packet


@given(st.sampled_from([IcmpType.ECHO_REQUEST, IcmpType.ECHO_REPLY]),
       ports, ports, payloads)
def test_icmp_roundtrip(icmp_type, identifier, sequence, payload):
    echo = IcmpEcho(icmp_type, identifier, sequence, payload)
    assert IcmpEcho.unpack(echo.pack()) == echo


@given(ports, ports, st.integers(min_value=0, max_value=(1 << 32) - 1),
       st.integers(min_value=0, max_value=(1 << 32) - 1),
       st.integers(min_value=0, max_value=31), ports, payloads)
def test_tcp_roundtrip(src, dst, seq, ack, flags, window, payload):
    segment = TcpSegment(src, dst, seq, ack, TcpFlags(flags), window, payload)
    assert TcpSegment.unpack(segment.pack()) == segment


@given(ports, ports, payloads)
def test_udp_roundtrip(src, dst, payload):
    datagram = UdpDatagram(src, dst, payload)
    assert UdpDatagram.unpack(datagram.pack()) == datagram


@given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1,
               max_size=32),
       ports, ports)
def test_lldp_roundtrip(chassis, port, ttl):
    packet = LldpPacket(chassis, port, ttl)
    assert LldpPacket.unpack(packet.pack()) == packet


@given(st.binary(max_size=64))
def test_ethernet_unpack_never_crashes_on_long_enough_input(data):
    from repro.netlib.ethernet import FrameDecodeError

    try:
        EthernetFrame.unpack(data)
    except FrameDecodeError:
        pass  # short frames are rejected, never a non-library exception
