"""Unit tests for TCP/UDP/LLDP formats and layered decoding."""

import pytest

from repro.netlib import (
    EtherType,
    EthernetFrame,
    IcmpEcho,
    IpProtocol,
    Ipv4Address,
    Ipv4Packet,
    LldpPacket,
    MacAddress,
    TcpFlags,
    TcpSegment,
    UdpDatagram,
    decode_ethernet,
    payload_protocol_name,
)
from repro.netlib.ethernet import FrameDecodeError

MAC1 = MacAddress("00:00:00:00:00:01")
MAC2 = MacAddress("00:00:00:00:00:02")
IP1 = Ipv4Address("10.0.0.1")
IP2 = Ipv4Address("10.0.0.2")


class TestTcp:
    def test_roundtrip(self):
        segment = TcpSegment(1000, 5001, seq=7, ack=9,
                             flags=TcpFlags.ACK | TcpFlags.PSH,
                             window=4096, payload=b"data")
        assert TcpSegment.unpack(segment.pack()) == segment

    def test_flag_properties(self):
        syn = TcpSegment(1, 2, flags=TcpFlags.SYN)
        assert syn.is_syn and not syn.is_ack and not syn.is_fin and not syn.is_rst
        synack = TcpSegment(1, 2, flags=TcpFlags.SYN | TcpFlags.ACK)
        assert synack.is_syn and synack.is_ack

    def test_port_bounds(self):
        with pytest.raises(ValueError):
            TcpSegment(70000, 1)
        with pytest.raises(ValueError):
            TcpSegment(1, -1)

    def test_seq_bounds(self):
        with pytest.raises(ValueError):
            TcpSegment(1, 2, seq=1 << 32)

    def test_truncated_rejected(self):
        with pytest.raises(FrameDecodeError):
            TcpSegment.unpack(b"\x00" * 10)

    def test_options_rejected(self):
        raw = bytearray(TcpSegment(1, 2).pack())
        raw[12] = 6 << 4  # data offset 6 words
        with pytest.raises(FrameDecodeError):
            TcpSegment.unpack(bytes(raw))


class TestUdp:
    def test_roundtrip(self):
        datagram = UdpDatagram(53, 5353, b"query")
        assert UdpDatagram.unpack(datagram.pack()) == datagram

    def test_length_field(self):
        datagram = UdpDatagram(1, 2, b"abcd")
        assert datagram.length == 12

    def test_trailing_padding_ignored(self):
        datagram = UdpDatagram(1, 2, b"abc")
        decoded = UdpDatagram.unpack(datagram.pack() + b"\x00" * 10)
        assert decoded.payload == b"abc"

    def test_bad_length_rejected(self):
        raw = bytearray(UdpDatagram(1, 2, b"abc").pack())
        raw[4:6] = (2).to_bytes(2, "big")  # impossible length < 8
        with pytest.raises(FrameDecodeError):
            UdpDatagram.unpack(bytes(raw))


class TestLldp:
    def test_roundtrip(self):
        packet = LldpPacket("s1", 3, ttl=60)
        decoded = LldpPacket.unpack(packet.pack())
        assert decoded == packet
        assert (decoded.chassis_id, decoded.port_id, decoded.ttl) == ("s1", 3, 60)

    def test_missing_mandatory_tlv_rejected(self):
        with pytest.raises(FrameDecodeError):
            LldpPacket.unpack(b"\x00\x00")  # just end-of-LLDPDU

    def test_port_bounds(self):
        with pytest.raises(ValueError):
            LldpPacket("s1", 0x10000)

    def test_empty_chassis_rejected(self):
        with pytest.raises(ValueError):
            LldpPacket("", 1)


class TestLayeredDecode:
    def _eth(self, ethertype, payload):
        return EthernetFrame(MAC2, MAC1, ethertype, payload).pack()

    def test_icmp_stack(self):
        icmp = IcmpEcho.request(5, 1, b"x")
        ip = Ipv4Packet(IP1, IP2, IpProtocol.ICMP, icmp.pack())
        decoded = decode_ethernet(self._eth(EtherType.IPV4, ip.pack()))
        assert isinstance(decoded.l4, IcmpEcho)
        assert payload_protocol_name(decoded) == "ipv4/icmp"

    def test_tcp_stack(self):
        tcp = TcpSegment(1, 2, payload=b"y")
        ip = Ipv4Packet(IP1, IP2, IpProtocol.TCP, tcp.pack())
        decoded = decode_ethernet(self._eth(EtherType.IPV4, ip.pack()))
        assert isinstance(decoded.l4, TcpSegment)
        assert payload_protocol_name(decoded) == "ipv4/tcp"

    def test_udp_stack(self):
        udp = UdpDatagram(1, 2, b"z")
        ip = Ipv4Packet(IP1, IP2, IpProtocol.UDP, udp.pack())
        decoded = decode_ethernet(self._eth(EtherType.IPV4, ip.pack()))
        assert isinstance(decoded.l4, UdpDatagram)
        assert payload_protocol_name(decoded) == "ipv4/udp"

    def test_lldp(self):
        decoded = decode_ethernet(self._eth(EtherType.LLDP, LldpPacket("s1", 1).pack()))
        assert isinstance(decoded.l3, LldpPacket)
        assert payload_protocol_name(decoded) == "lldp"

    def test_unknown_ethertype_decodes_as_opaque(self):
        decoded = decode_ethernet(self._eth(0x9999, b"junk"))
        assert decoded.l3 is None and decoded.l4 is None
        assert payload_protocol_name(decoded) == "ethertype-0x9999"

    def test_corrupt_upper_layer_is_tolerated(self):
        # Claimed IPv4 but garbage payload: l3 stays None, no exception.
        decoded = decode_ethernet(self._eth(EtherType.IPV4, b"\xff" * 6))
        assert decoded.l3 is None

    def test_ipv4_with_unknown_protocol(self):
        ip = Ipv4Packet(IP1, IP2, 99, b"opaque")
        decoded = decode_ethernet(self._eth(EtherType.IPV4, ip.pack()))
        assert isinstance(decoded.l3, Ipv4Packet)
        assert decoded.l4 is None
        assert payload_protocol_name(decoded) == "ipv4"
