"""Unit tests for Ethernet/ARP/IPv4/ICMP frame formats."""

import pytest

from repro.netlib import (
    ArpPacket,
    BROADCAST_MAC,
    EtherType,
    EthernetFrame,
    IcmpEcho,
    IcmpType,
    IpProtocol,
    Ipv4Address,
    Ipv4Packet,
    MacAddress,
)
from repro.netlib.ethernet import FrameDecodeError
from repro.netlib.ipv4 import internet_checksum

MAC1 = MacAddress("00:00:00:00:00:01")
MAC2 = MacAddress("00:00:00:00:00:02")
IP1 = Ipv4Address("10.0.0.1")
IP2 = Ipv4Address("10.0.0.2")


class TestEthernet:
    def test_roundtrip(self):
        frame = EthernetFrame(MAC2, MAC1, EtherType.IPV4, b"payload")
        assert EthernetFrame.unpack(frame.pack()) == frame

    def test_header_is_14_bytes(self):
        frame = EthernetFrame(MAC2, MAC1, EtherType.IPV4, b"")
        assert len(frame.pack()) == 14

    def test_truncated_rejected(self):
        with pytest.raises(FrameDecodeError):
            EthernetFrame.unpack(b"\x00" * 10)

    def test_unknown_ethertype_preserved(self):
        frame = EthernetFrame(MAC2, MAC1, 0x1234, b"x")
        assert EthernetFrame.unpack(frame.pack()).ethertype == 0x1234


class TestArp:
    def test_request_roundtrip(self):
        arp = ArpPacket.request(MAC1, IP1, IP2)
        decoded = ArpPacket.unpack(arp.pack())
        assert decoded == arp
        assert decoded.is_request and not decoded.is_reply

    def test_reply_roundtrip(self):
        arp = ArpPacket.reply(MAC2, IP2, MAC1, IP1)
        decoded = ArpPacket.unpack(arp.pack())
        assert decoded == arp
        assert decoded.is_reply

    def test_request_has_zero_target_mac(self):
        arp = ArpPacket.request(MAC1, IP1, IP2)
        assert int(arp.target_mac) == 0

    def test_bad_opcode_rejected(self):
        with pytest.raises(ValueError):
            ArpPacket(3, MAC1, IP1, MAC2, IP2)

    def test_truncated_rejected(self):
        with pytest.raises(FrameDecodeError):
            ArpPacket.unpack(b"\x00" * 10)

    def test_wrong_hardware_type_rejected(self):
        raw = bytearray(ArpPacket.request(MAC1, IP1, IP2).pack())
        raw[0] = 9  # htype
        with pytest.raises(FrameDecodeError):
            ArpPacket.unpack(bytes(raw))


class TestIpv4:
    def test_roundtrip(self):
        packet = Ipv4Packet(IP1, IP2, IpProtocol.ICMP, b"data", ttl=32,
                            identification=77)
        decoded = Ipv4Packet.unpack(packet.pack())
        assert decoded == packet
        assert decoded.ttl == 32
        assert decoded.identification == 77

    def test_header_checksum_validates(self):
        packet = Ipv4Packet(IP1, IP2, IpProtocol.TCP, b"x")
        header = packet.pack()[:20]
        assert internet_checksum(header) == 0

    def test_corrupted_checksum_rejected(self):
        raw = bytearray(Ipv4Packet(IP1, IP2, IpProtocol.TCP, b"x").pack())
        raw[10] ^= 0xFF
        with pytest.raises(FrameDecodeError):
            Ipv4Packet.unpack(bytes(raw))

    def test_total_length_bounds_payload(self):
        packet = Ipv4Packet(IP1, IP2, IpProtocol.UDP, b"abc")
        # Extra trailing bytes (Ethernet padding) must be ignored.
        decoded = Ipv4Packet.unpack(packet.pack() + b"\x00" * 8)
        assert decoded.payload == b"abc"

    def test_decremented_ttl(self):
        packet = Ipv4Packet(IP1, IP2, IpProtocol.TCP, ttl=2)
        assert packet.decremented().ttl == 1
        with pytest.raises(ValueError):
            Ipv4Packet(IP1, IP2, IpProtocol.TCP, ttl=0).decremented()

    def test_bad_ttl_rejected(self):
        with pytest.raises(ValueError):
            Ipv4Packet(IP1, IP2, IpProtocol.TCP, ttl=256)

    def test_version_check(self):
        raw = bytearray(Ipv4Packet(IP1, IP2, IpProtocol.TCP).pack())
        raw[0] = (6 << 4) | 5
        with pytest.raises(FrameDecodeError):
            Ipv4Packet.unpack(bytes(raw))


class TestIcmp:
    def test_request_roundtrip(self):
        echo = IcmpEcho.request(7, 3, b"ping-data")
        decoded = IcmpEcho.unpack(echo.pack())
        assert decoded == echo
        assert decoded.is_request

    def test_reply_matches_request(self):
        request = IcmpEcho.request(7, 3, b"abc")
        reply = request.reply()
        assert reply.is_reply
        assert (reply.identifier, reply.sequence, reply.payload) == (7, 3, b"abc")

    def test_cannot_reply_to_reply(self):
        with pytest.raises(ValueError):
            IcmpEcho.request(1, 1).reply().reply()

    def test_checksum_validates(self):
        raw = bytearray(IcmpEcho.request(1, 1, b"x").pack())
        raw[-1] ^= 0xFF
        with pytest.raises(FrameDecodeError):
            IcmpEcho.unpack(bytes(raw))

    def test_bad_type_rejected(self):
        with pytest.raises(ValueError):
            IcmpEcho(3, 1, 1)  # destination unreachable is unsupported

    def test_id_seq_bounds(self):
        with pytest.raises(ValueError):
            IcmpEcho.request(0x10000, 0)
        with pytest.raises(ValueError):
            IcmpEcho.request(0, 0x10000)
