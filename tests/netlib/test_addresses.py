"""Unit + property tests for MAC/IPv4 address value types."""

import pytest
from hypothesis import given, strategies as st

from repro.netlib import BROADCAST_MAC, Ipv4Address, MacAddress


class TestMacAddress:
    def test_from_string(self):
        mac = MacAddress("00:11:22:aa:bb:cc")
        assert str(mac) == "00:11:22:aa:bb:cc"

    def test_from_int(self):
        assert str(MacAddress(1)) == "00:00:00:00:00:01"

    def test_from_bytes_roundtrip(self):
        mac = MacAddress(b"\x01\x02\x03\x04\x05\x06")
        assert MacAddress(mac.packed) == mac

    def test_copy_constructor(self):
        mac = MacAddress("00:00:00:00:00:05")
        assert MacAddress(mac) == mac

    def test_broadcast_detection(self):
        assert BROADCAST_MAC.is_broadcast
        assert not MacAddress(1).is_broadcast

    def test_multicast_detection(self):
        assert MacAddress("01:80:c2:00:00:0e").is_multicast
        assert not MacAddress("00:80:c2:00:00:0e").is_multicast

    def test_equality_and_hash(self):
        a = MacAddress("00:00:00:00:00:01")
        b = MacAddress(1)
        assert a == b
        assert hash(a) == hash(b)
        assert a != MacAddress(2)

    def test_ordering(self):
        assert MacAddress(1) < MacAddress(2)

    @pytest.mark.parametrize("bad", ["", "00:11:22", "zz:11:22:33:44:55",
                                     "00:11:22:33:44:55:66", "001122334455"])
    def test_malformed_strings_rejected(self, bad):
        with pytest.raises(ValueError):
            MacAddress(bad)

    def test_out_of_range_int_rejected(self):
        with pytest.raises(ValueError):
            MacAddress(1 << 48)
        with pytest.raises(ValueError):
            MacAddress(-1)

    def test_wrong_byte_length_rejected(self):
        with pytest.raises(ValueError):
            MacAddress(b"\x00" * 5)

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            MacAddress(1.5)

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_int_string_roundtrip(self, value):
        mac = MacAddress(value)
        assert MacAddress(str(mac)) == mac
        assert int(mac) == value


class TestIpv4Address:
    def test_from_string(self):
        assert str(Ipv4Address("10.0.0.1")) == "10.0.0.1"

    def test_from_int(self):
        assert str(Ipv4Address(0x0A000001)) == "10.0.0.1"

    def test_from_bytes(self):
        assert str(Ipv4Address(b"\x0a\x00\x00\x02")) == "10.0.0.2"

    def test_equality_and_hash(self):
        assert Ipv4Address("10.0.0.1") == Ipv4Address(0x0A000001)
        assert hash(Ipv4Address("10.0.0.1")) == hash(Ipv4Address(0x0A000001))

    def test_mac_and_ip_never_equal(self):
        assert Ipv4Address(1) != MacAddress(1)

    def test_ordering(self):
        assert Ipv4Address("10.0.0.1") < Ipv4Address("10.0.0.2")

    @pytest.mark.parametrize("bad", ["", "10.0.0", "10.0.0.256", "a.b.c.d",
                                     "10.0.0.1.2"])
    def test_malformed_strings_rejected(self, bad):
        with pytest.raises(ValueError):
            Ipv4Address(bad)

    def test_out_of_range_int_rejected(self):
        with pytest.raises(ValueError):
            Ipv4Address(1 << 32)

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_int_string_roundtrip(self, value):
        ip = Ipv4Address(value)
        assert Ipv4Address(str(ip)) == ip
        assert int(ip) == value
