"""Traced runs: determinism, zero-overhead-off, and the Table II forensics.

The acceptance bar for the trace subsystem: a traced interruption run
must reproduce the paper's unauthorized-access window from the trace
alone — the summary names the firewall-violating FLOW_MOD, the rule
that fired on it, and the state transition that severed (c1, s2), with
sim timestamps inside the experiment's probe window.
"""

import pytest

from repro.campaign import reset_run_state
from repro.dataplane import FailMode
from repro.experiments import (
    run_interruption_experiment,
    run_suppression_experiment,
)
from repro.obs import TraceCollector, render_summary, summarize


SUPPRESSION_FAST = dict(ping_trials=3, iperf_trials=1, iperf_duration_s=0.5,
                        iperf_gap_s=0.5, warmup_s=2.0)


def traced_interruption(seed=0, fail_mode=FailMode.SECURE):
    # Byte-identical traces require the per-process counter reset every
    # fresh worker gets (msg ids and xids are process-global sequences).
    reset_run_state()
    tracer = TraceCollector()
    result = run_interruption_experiment("pox", fail_mode, seed=seed,
                                         trace=tracer)
    return tracer, result


def test_same_seed_same_cell_is_byte_identical():
    first, _ = traced_interruption(seed=3)
    second, _ = traced_interruption(seed=3)
    assert first.to_jsonl() == second.to_jsonl()
    assert first.events_total == second.events_total > 0


def test_different_seeds_share_structure_not_bytes():
    first, _ = traced_interruption(seed=1)
    second, _ = traced_interruption(seed=2)
    # Both traces tell the same attack story...
    for tracer in (first, second):
        assert tracer.count("rule_fired") > 0
        assert tracer.count("state") >= 2


def test_suppression_trace_is_deterministic_too():
    exports = []
    for _ in range(2):
        reset_run_state()
        tracer = TraceCollector()
        run_suppression_experiment("pox", attacked=True, seed=5,
                                   trace=tracer, **SUPPRESSION_FAST)
        exports.append(tracer.to_jsonl())
    assert exports[0] == exports[1]


def test_untraced_run_has_no_collector_attached():
    """trace=None must leave every tracer attribute None (the zero-
    overhead configuration) and produce identical experiment results."""
    reset_run_state()
    baseline = run_interruption_experiment("pox", FailMode.SECURE, seed=0)
    tracer, traced = traced_interruption(seed=0)
    assert tracer.events_total > 0
    assert baseline.record() == traced.record()


def test_disabled_collector_means_zero_events():
    tracer = TraceCollector()
    run_interruption_experiment("pox", FailMode.SECURE, seed=0)  # no trace=
    assert tracer.events_total == 0
    assert len(tracer) == 0


def test_trace_covers_every_instrumented_layer():
    tracer, _ = traced_interruption(seed=0)
    for kind in ("message", "rule_eval", "rule_fired", "state",
                 "flow_install", "monitor"):
        assert tracer.count(kind) > 0, f"no {kind} events collected"


def test_interruption_forensics_from_the_trace_alone():
    """Reproduce the Table II unauthorized-access analysis from the trace."""
    tracer, result = traced_interruption(seed=0,
                                         fail_mode=FailMode.STANDALONE)
    assert result.unauthorized_increased_access
    assert result.interruption_happened

    events = tracer.events()
    # 1. The firewall-violating FLOW_MOD: phi2 fires on a TO_SWITCH
    #    FLOW_MOD on the interposed (c1, s2) connection.
    (phi2,) = [e for e in events if e["kind"] == "rule_fired"
               and e["rule"] == "phi2"]
    assert phi2["type"] == "FLOW_MOD"
    assert phi2["connection"] == ["c1", "s2"]
    assert phi2["direction"] == "to_switch"
    assert phi2["xid"] is not None

    # 2. The transition that severed the connection, at the same instant.
    (sever,) = [e for e in events if e["kind"] == "state"
                and e["to"] == "sigma3"]
    assert sever["from"] == "sigma2"
    assert sever["t"] == phi2["t"]

    # 3. Timestamps sit inside the experiment's t=50s probe window —
    #    the attack triggers on the firewall's drop rule for the
    #    external->internal flow that starts at t=50.
    assert 50.0 <= phi2["t"] < 60.0

    # 4. The original FLOW_MOD never reached the switch.
    drops = [e for e in events if e["kind"] == "message_drop"
             and e["type"] == "FLOW_MOD"]
    assert drops

    # And the human rendering says all of that in one place.
    text = render_summary(summarize(events))
    assert "sigma2/phi2" in text
    assert "FLOW_MOD" in text
    assert "sigma2 -> sigma3" in text
    assert "(c1, s2)" in text


def test_ring_capacity_bounds_a_traced_run():
    reset_run_state()
    tracer = TraceCollector(capacity=64)
    run_interruption_experiment("pox", FailMode.SECURE, seed=0, trace=tracer)
    assert len(tracer) == 64
    assert tracer.events_dropped == tracer.events_total - 64 > 0


@pytest.mark.parametrize("fail_mode", [FailMode.SECURE, FailMode.STANDALONE])
def test_sim_duration_is_recorded(fail_mode):
    _, result = traced_interruption(seed=0, fail_mode=fail_mode)
    assert result.sim_duration_s > 100.0
    assert result.record()["sim_duration_s"] == round(result.sim_duration_s, 6)
