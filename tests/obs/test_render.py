"""Trace rendering: merged timeline order and per-rule summary content."""

from repro.obs import render_summary, render_timeline, summarize


def _events():
    return [
        {"seq": 1, "t": 0.5, "kind": "message", "connection": ["c1", "s2"],
         "direction": "to_controller", "type": "HELLO", "xid": 1,
         "length": 8, "msg_id": 1},
        {"seq": 2, "t": 0.5, "kind": "rule_eval", "state": "sigma1",
         "rule": "phi1", "msg_id": 1, "fired": True},
        {"seq": 3, "t": 0.5, "kind": "rule_fired", "state": "sigma1",
         "rule": "phi1", "msg_id": 1, "type": "HELLO", "xid": 1,
         "connection": ["c1", "s2"], "direction": "to_controller"},
        {"seq": 4, "t": 0.5, "kind": "state", "from": "sigma1",
         "to": "sigma2"},
        {"seq": 5, "t": 50.0, "kind": "rule_fired", "state": "sigma2",
         "rule": "phi2", "msg_id": 9, "type": "FLOW_MOD", "xid": 42,
         "connection": ["c1", "s2"], "direction": "to_switch"},
        {"seq": 6, "t": 50.0, "kind": "state", "from": "sigma2",
         "to": "sigma3"},
        {"seq": 7, "t": 50.0, "kind": "message_drop", "state": "sigma2",
         "msg_id": 9, "type": "FLOW_MOD", "xid": 42},
        {"seq": 8, "t": 12.0, "kind": "deque", "deque": "delta1",
         "op": "append", "size": 3},
        {"seq": 9, "t": 13.0, "kind": "flow_install", "switch": "s1",
         "command": "ADD", "priority": 10, "match": "m", "xid": 5},
        {"seq": 10, "t": 14.0, "kind": "flow_evict", "switch": "s1",
         "reason": "idle", "priority": 10, "match": "m"},
        {"seq": 11, "t": 60.0, "kind": "monitor", "monitor": "ping",
         "sample": "ping_series_done", "data": {"sent": 10}},
    ]


def test_timeline_sorts_by_time_then_seq():
    text = render_timeline(_events())
    lines = text.splitlines()
    assert len(lines) == 11
    times = [float(line.split("t=", 1)[1].split()[0]) for line in lines]
    assert times == sorted(times)
    # Ties broken by seq: rule_eval follows the message that triggered it.
    assert "message" in lines[0] and "rule_eval" in lines[1]


def test_timeline_kind_filter_and_limit():
    text = render_timeline(_events(), kinds=["rule_fired"])
    assert len(text.splitlines()) == 2
    assert "phi1" in text and "phi2" in text
    limited = render_timeline(_events(), limit=3)
    assert "8 more event(s)" in limited


def test_summarize_aggregates_every_layer():
    summary = summarize(_events())
    assert summary["events"] == 11
    assert summary["t_first"] == 0.5 and summary["t_last"] == 60.0
    assert summary["by_kind"]["rule_fired"] == 2
    assert summary["messages_by_type"] == {"HELLO": 1}
    rules = {f"{r['state']}/{r['rule']}": r for r in summary["rules"]}
    assert rules["sigma2/phi2"]["count"] == 1
    assert rules["sigma2/phi2"]["messages"][0]["xid"] == 42
    assert summary["transitions"] == [
        {"t": 0.5, "from": "sigma1", "to": "sigma2"},
        {"t": 50.0, "from": "sigma2", "to": "sigma3"},
    ]
    assert summary["drops_by_type"] == {"FLOW_MOD": 1}
    assert summary["deque_ops"] == {"delta1": 1}
    assert summary["flow_installs"] == {"s1": 1}
    assert summary["flow_evictions"] == {"s1": 1}
    assert summary["monitors"] == {"ping": 1}


def test_render_summary_answers_the_forensic_questions():
    text = render_summary(summarize(_events()))
    # Which rule fired on the firewall FLOW_MOD, and when?
    assert "sigma2/phi2 x1" in text
    assert "FLOW_MOD xid=42" in text
    assert "(c1, s2)" in text
    # And the transition it caused:
    assert "t=50.000000 sigma2 -> sigma3" in text


def test_summary_samples_are_capped_per_rule():
    events = [
        {"seq": i, "t": float(i), "kind": "rule_fired", "state": "s",
         "rule": "r", "msg_id": i, "type": "PACKET_IN", "xid": i,
         "connection": ["c1", "s2"], "direction": "to_controller"}
        for i in range(1, 10)
    ]
    summary = summarize(events)
    (entry,) = summary["rules"]
    assert entry["count"] == 9
    assert len(entry["messages"]) == 5
    assert "4 more firing(s)" in render_summary(summary)


def test_empty_trace_renders():
    summary = summarize([])
    assert summary["events"] == 0
    assert summary["t_first"] is None
    assert render_summary(summary).startswith("trace: 0 event(s)")
    assert render_timeline([]) == ""
