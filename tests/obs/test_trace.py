"""TraceCollector unit behaviour: ring, counts, export, wiring."""

import json

import pytest

from repro.obs import TraceCollector, event_to_json, load_events, wire_run


def test_emit_stamps_seq_time_and_kind():
    clock_value = [1.25]
    tracer = TraceCollector(clock=lambda: clock_value[0])
    tracer.emit("message", msg_id=1)
    clock_value[0] = 2.5
    tracer.emit("rule_fired", rule="phi1")
    first, second = tracer.events()
    assert first["seq"] == 1 and first["t"] == 1.25
    assert first["kind"] == "message" and first["msg_id"] == 1
    assert second["seq"] == 2 and second["t"] == 2.5
    assert second["rule"] == "phi1"


def test_explicit_timestamp_overrides_clock():
    tracer = TraceCollector(clock=lambda: 99.0)
    tracer.emit("monitor", t=3.0, monitor="ping")
    (event,) = tracer.events()
    assert event["t"] == 3.0


def test_ring_drops_oldest_but_keeps_totals():
    tracer = TraceCollector(capacity=3)
    for i in range(5):
        tracer.emit("deque", op="append", i=i)
    assert len(tracer) == 3
    assert tracer.events_total == 5
    assert tracer.events_dropped == 2
    assert [e["i"] for e in tracer.events()] == [2, 3, 4]
    # Sequence numbers keep counting through the drops.
    assert [e["seq"] for e in tracer.events()] == [3, 4, 5]


def test_counts_by_kind_and_filtered_read():
    tracer = TraceCollector()
    tracer.emit("message")
    tracer.emit("message")
    tracer.emit("state")
    assert tracer.count("message") == 2
    assert tracer.count("state") == 1
    assert tracer.count("never") == 0
    assert len(tracer.events("message")) == 2


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        TraceCollector(capacity=0)


def test_clear_resets_everything():
    tracer = TraceCollector()
    tracer.emit("message")
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.events_total == 0
    assert tracer.counts == {}
    tracer.emit("message")
    assert tracer.events()[0]["seq"] == 1


def test_event_to_json_is_canonical():
    line = event_to_json({"b": 1, "a": 2, "kind": "x"})
    assert line == '{"a":2,"b":1,"kind":"x"}'
    # Non-JSON values are stringified rather than crashing the export.
    json.loads(event_to_json({"v": object()}))
    assert json.loads(event_to_json({"v": ("c1", "s2")}))["v"] == ["c1", "s2"]


def test_jsonl_roundtrip(tmp_path):
    tracer = TraceCollector(clock=lambda: 1.0)
    tracer.emit("message", msg_id=7)
    tracer.emit("state", **{"from": "sigma1", "to": "sigma2"})
    path = tmp_path / "trace.jsonl"
    assert tracer.dump_jsonl(path) == 2
    events = load_events(path)
    assert [e["kind"] for e in events] == ["message", "state"]
    assert events[1]["from"] == "sigma1"


def test_load_events_skips_torn_tail(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text('{"kind":"message","seq":1,"t":0.0}\n{"kind":"ru')
    events = load_events(path)
    assert len(events) == 1


def test_empty_collector_exports_empty_string(tmp_path):
    tracer = TraceCollector()
    assert tracer.to_jsonl() == ""
    path = tmp_path / "empty.jsonl"
    assert tracer.dump_jsonl(path) == 0
    assert load_events(path) == []


class _FakeEngine:
    now = 4.5


class _FakeInjector:
    def __init__(self):
        self.tracer = None

    def set_tracer(self, tracer):
        self.tracer = tracer


class _Sink:
    tracer = None


def test_wire_run_attaches_every_layer():
    tracer = TraceCollector()
    injector = _FakeInjector()
    switch, monitor = _Sink(), _Sink()
    engine = _FakeEngine()
    wired = wire_run(tracer, engine, injector=injector,
                     switches=[switch], monitors=[monitor])
    assert wired is tracer
    assert injector.tracer is tracer
    assert switch.tracer is tracer
    assert monitor.tracer is tracer
    tracer.emit("message")
    assert tracer.events()[0]["t"] == 4.5


def test_wire_run_none_is_a_noop():
    assert wire_run(None, _FakeEngine(), injector=_FakeInjector()) is None
