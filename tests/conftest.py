"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.controllers import FloodlightController
from repro.dataplane import Network, Topology
from repro.netlib import fastframe
from repro.sim import SimulationEngine


@pytest.fixture(autouse=True)
def _fresh_fast_lane():
    """Isolate the packet fast lane's process-global state per test."""
    fastframe.set_fast_lane(True)
    fastframe.clear_pool()
    fastframe.reset_counters()
    yield
    fastframe.set_fast_lane(True)
    fastframe.clear_pool()
    fastframe.reset_counters()


@pytest.fixture
def engine() -> SimulationEngine:
    return SimulationEngine()


@pytest.fixture
def small_topology() -> Topology:
    """h1 - s1 - s2 - h2 with default 100 Mbps links."""
    topo = Topology("small")
    topo.add_host("h1")
    topo.add_host("h2")
    topo.add_switch("s1")
    topo.add_switch("s2")
    topo.add_link("h1", "s1")
    topo.add_link("s1", "s2")
    topo.add_link("h2", "s2")
    return topo


@pytest.fixture
def star_topology() -> Topology:
    """Three hosts on one switch."""
    topo = Topology("star")
    topo.add_switch("s1")
    for index in range(1, 4):
        topo.add_host(f"h{index}")
        topo.add_link(f"h{index}", "s1")
    return topo


def build_connected_network(engine, topology, controller_cls=FloodlightController):
    """Wire a network directly to a controller and run the handshakes."""
    network = Network(engine, topology)
    controller = controller_cls(engine)
    network.set_all_controller_targets(controller)
    network.start()
    engine.run(until=5.0)
    assert network.all_connected()
    return network, controller
