"""Rate schedules: cumulative counts, window batching, parsing."""

import pytest

from repro.workloads import (
    BurstRate,
    ConstantRate,
    OnOffRate,
    RampRate,
    parse_schedule,
)


def _ticks(schedule, duration, tick):
    """Sum count_between over consecutive ticks covering [0, duration)."""
    total, t0 = 0, 0.0
    k = 0
    while t0 < duration:
        t1 = min((k + 1) * tick, duration)
        total += schedule.count_between(k * tick, t1)
        t0, k = t1, k + 1
    return total


def test_constant_rate_owes_floor_of_area():
    schedule = ConstantRate(400)
    assert schedule.cumulative(1.0) == 400
    assert schedule.cumulative(0.25) == 100
    assert schedule.cumulative(0.0) == 0
    assert schedule.cumulative(-1.0) == 0


def test_batched_ticks_emit_exactly_the_cumulative_total():
    # Whatever the tick width, the batches sum to cumulative(duration):
    # no drift, no double counting.
    for schedule in (ConstantRate(333), RampRate(0, 1000, 0.7),
                     BurstRate(2000, 100, 0.2, 0.3), OnOffRate(500, 0.1, 0.3)):
        expected = schedule.cumulative(1.0)
        for tick in (0.005, 0.017, 0.25, 1.0):
            assert _ticks(schedule, 1.0, tick) == expected


def test_ramp_is_the_trapezoid_integral_then_the_end_rate():
    ramp = RampRate(0, 1000, 1.0)
    assert ramp.cumulative(1.0) == 500  # triangle: 1000 * 1 / 2
    assert ramp.cumulative(0.5) == 125  # 1000/2 * 0.25
    # Past the ramp the end rate applies.
    assert ramp.cumulative(2.0) == 1500


def test_burst_alternates_peak_and_base():
    burst = BurstRate(peak_pps=1000, base_pps=100, period=1.0, duty=0.25)
    assert burst.cumulative(0.25) == 250
    assert burst.cumulative(1.0) == 250 + 75
    assert burst.cumulative(2.0) == 2 * 325


def test_onoff_is_silent_in_the_off_phase():
    onoff = OnOffRate(1000, on_s=0.25, off_s=0.75)
    assert onoff.cumulative(0.25) == 250
    assert onoff.count_between(0.25, 1.0) == 0
    assert onoff.count_between(1.0, 1.25) == 250


def test_cumulative_is_monotone():
    for schedule in (ConstantRate(777), RampRate(500, 0, 0.4),
                     BurstRate(900, 0, 0.1, 0.5), OnOffRate(100, 0.2, 0.2)):
        previous = 0
        for i in range(200):
            current = schedule.cumulative(i * 0.013)
            assert current >= previous
            previous = current


def test_parse_schedule_strings():
    assert isinstance(parse_schedule("constant:400"), ConstantRate)
    ramp = parse_schedule("ramp:100:900:2")
    assert (ramp.start_pps, ramp.end_pps, ramp.duration) == (100, 900, 2)
    burst = parse_schedule("burst:2000:200:0.2:0.4")
    assert (burst.peak_pps, burst.base_pps) == (2000, 200)
    onoff = parse_schedule("onoff:500:0.1:0.4")
    assert (onoff.on_s, onoff.off_s) == (0.1, 0.4)


def test_parse_schedule_passthrough_and_numbers():
    schedule = ConstantRate(7)
    assert parse_schedule(schedule) is schedule
    assert parse_schedule(250).cumulative(1.0) == 250


@pytest.mark.parametrize("bad", [
    "constant", "constant:a", "ramp:1:2", "burst:1:2:3", "warp:9",
    "constant:-5", "ramp:0:100:0", "burst:1:1:1:0", "onoff:5:0:1",
])
def test_parse_schedule_rejects_malformed_specs(bad):
    with pytest.raises(ValueError):
        parse_schedule(bad)


@pytest.mark.parametrize("bad,match", [
    ("constant:0", "rate must be positive"),          # zero rate
    ("constant:-10", "rate must be positive"),        # negative rate
    ("constant:nan", "must be finite"),               # silent NaN
    ("constant:inf", "must be finite"),               # silent infinity
    ("ramp:100:900:0", "duration must be positive"),  # zero-length ramp
    ("ramp:-1:900:2", "non-negative"),                # negative ramp rate
    ("ramp:0:0:2", "positive start or end"),          # all-zero ramp
    ("ramp:100:900:nan", "must be finite"),
    ("burst:0:0:1:0.5", "peak rate must be positive"),
    ("burst:100:-1:1:0.5", "base rate must be non-negative"),
    ("burst:100:0:1:1.5", "duty must be in"),         # duty > 1
    ("burst:100:0:1:0", "duty must be in"),           # duty == 0
    ("burst:100:0:1:-0.5", "duty must be in"),        # duty < 0
    ("burst:100:0:0:0.5", "period must be positive"),
    ("onoff:0:0.1:0.4", "peak rate must be positive"),
    ("onoff:500:0:0.4", "on period must be positive"),
    ("onoff:500:0.1:-1", "off non-negative"),
])
def test_each_malformed_spec_rejected_with_a_clear_message(bad, match):
    with pytest.raises(ValueError, match=match):
        parse_schedule(bad)


def test_valid_edge_specs_still_accepted():
    # Documented-legal edges: ramp from silence, burst with a zero base,
    # on/off with no off phase.
    assert parse_schedule("ramp:0:1000:1").cumulative(1.0) == 500
    assert parse_schedule("burst:100:0:1:0.5").cumulative(1.0) == 50
    assert parse_schedule("onoff:100:0.5:0").cumulative(1.0) == 100
