"""Frame templates: byte fidelity, checksum patching, fast-lane caches."""

from repro.netlib import fastframe
from repro.netlib.addresses import Ipv4Address, MacAddress
from repro.netlib.ethernet import EthernetFrame, EtherType
from repro.netlib.flowkey import extract_flow_base, extract_flow_key
from repro.netlib.icmp import IcmpEcho
from repro.netlib.ipv4 import Ipv4Packet
from repro.workloads import FrameTemplate

SRC_MAC, DST_MAC = MacAddress(0x02AA00000001), MacAddress(0x02AA00000002)
SRC_IP, DST_IP = Ipv4Address("10.0.0.1"), Ipv4Address("10.0.0.2")


def _udp_template():
    return FrameTemplate.udp(SRC_MAC, DST_MAC, SRC_IP, DST_IP, 4000, 4001)


def _assert_decodes_strictly(data: bytes):
    """The strict layered decoders accept the patched bytes (checksums
    and lengths are all internally consistent)."""
    frame = EthernetFrame.unpack(bytes(data))
    if frame.ethertype == EtherType.IPV4:
        packet = Ipv4Packet.unpack(frame.payload)
        if packet.protocol == 1:
            IcmpEcho.unpack(packet.payload)


def test_template_fields_match_extraction():
    template = _udp_template()
    assert template.fields == extract_flow_base(bytes(template.buf))


def test_port_and_address_patches_stay_canonical():
    template = _udp_template()
    for i in range(50):
        template.set_tp_src(20000 + i * 7)
        template.set_nw_src(Ipv4Address(int(SRC_IP) + i))
        template.set_nw_dst(Ipv4Address(int(DST_IP) + 2 * i))
        data = bytes(template.buf)
        assert template.fields == extract_flow_base(data)
        _assert_decodes_strictly(data)


def test_mac_patches_update_bytes_and_key():
    template = _udp_template()
    template.set_dl_src(0x02BB00000099)
    assert bytes(template.buf)[6:12] == MacAddress(0x02BB00000099).packed
    assert template.fields["dl_src"] == MacAddress(0x02BB00000099)
    assert template.fields == extract_flow_base(bytes(template.buf))


def test_icmp_patches_keep_checksum_valid():
    template = FrameTemplate.icmp_echo(SRC_MAC, DST_MAC, SRC_IP, DST_IP)
    for i in range(50):
        template.set_icmp_seq(i * 911 & 0xFFFF)
        template.set_icmp_ident(i * 37 & 0xFFFF)
        data = bytes(template.buf)
        assert template.fields == extract_flow_base(data)
        _assert_decodes_strictly(data)


def test_arp_retargeting():
    victim_mac = MacAddress(0x02CC00000005)
    victim_ip = Ipv4Address("10.0.0.50")
    template = FrameTemplate.arp(
        SRC_MAC, DST_MAC, sender_mac=SRC_MAC, sender_ip=DST_IP,
        target_mac=DST_MAC, target_ip=Ipv4Address("10.0.0.9"),
    )
    template.set_dl_dst(victim_mac)
    template.set_arp_target(victim_mac, victim_ip)
    base = extract_flow_base(bytes(template.buf))
    assert template.fields == base
    assert base["dl_dst"] == victim_mac
    assert base["nw_dst"] == victim_ip
    assert base["nw_src"] == DST_IP  # the impersonated host's IP


def test_emit_returns_a_warm_fastframe_when_the_lane_is_on():
    template = _udp_template()
    frame = template.emit()
    assert isinstance(frame, fastframe.FastFrame)
    # The pre-populated cache equals what extraction would compute, so
    # the first-hop switch never parses the frame.
    assert frame._base == extract_flow_base(bytes(frame))
    key = extract_flow_key(frame, in_port=3)
    assert key["in_port"] == 3
    assert key["tp_src"] == 4000


def test_emit_snapshots_are_independent_of_later_patches():
    template = _udp_template()
    first = template.emit()
    template.set_tp_src(5555)
    second = template.emit()
    assert bytes(first) != bytes(second)
    assert first._base["tp_src"] == 4000
    assert second._base["tp_src"] == 5555


def test_emit_returns_plain_bytes_with_the_lane_off():
    fastframe.set_fast_lane(False)
    template = _udp_template()
    frame = template.emit()
    assert type(frame) is bytes
    fastframe.set_fast_lane(True)
    assert bytes(template.emit()) == frame  # identical wire bytes
