"""Traffic sources: registry, stream determinism, source semantics."""

import pytest

from repro.dataplane.fabrics import generate_fabric
from repro.netlib.flowkey import extract_flow_base
from repro.workloads import (
    build_source,
    list_sources,
    register_source,
    source_info,
    source_names,
)
from repro.workloads.sources import (
    FLOOD_UDP_PORT,
    OVERFLOW_PORT_BASE,
)

BUILTINS = ("arp-poison", "benign-mix", "packetin-flood", "table-overflow")


def _fabric():
    return generate_fabric("fat-tree-k4").topology


def _stream(source, n=200):
    """The first ``n`` frames of every emitter, as bytes."""
    return {
        emitter.host: [bytes(emitter.next_frame()) for _ in range(n)]
        for emitter in source.emitters
    }


def test_builtin_sources_are_registered():
    assert tuple(source_names()) == BUILTINS
    listed = {entry["name"]: entry for entry in list_sources()}
    assert listed["packetin-flood"]["needs_controller"] is True
    assert listed["table-overflow"]["needs_controller"] is True
    assert listed["benign-mix"]["needs_controller"] is False


def test_unknown_source_name_raises():
    with pytest.raises(KeyError, match="unknown traffic source"):
        source_info("syn-cookie-storm")


def test_duplicate_registration_raises():
    with pytest.raises(ValueError, match="already registered"):
        register_source("benign-mix")(lambda topo, seed, params: None)


@pytest.mark.parametrize("name", BUILTINS)
def test_same_seed_and_params_give_byte_identical_streams(name):
    topo = _fabric()
    params = {"senders": 4, "duration_s": 0.5}
    first = _stream(build_source(name, topo, seed=42, params=params))
    second = _stream(build_source(name, topo, seed=42, params=params))
    assert first == second


def test_different_seeds_diverge_for_randomized_sources():
    topo = _fabric()
    a = _stream(build_source("packetin-flood", topo, 1, {"senders": 2}))
    b = _stream(build_source("packetin-flood", topo, 2, {"senders": 2}))
    assert a != b


def test_a_hosts_stream_is_independent_of_the_sender_set():
    # Shard regions build the full source and keep only their hosts, so
    # host streams must not depend on which other senders exist.
    topo = _fabric()
    wide = _stream(build_source("benign-mix", topo, 7, {"senders": 6}))
    narrow = _stream(build_source("benign-mix", topo, 7, {"senders": 2}))
    for host, frames in narrow.items():
        assert wide[host] == frames


def test_packetin_flood_spoofs_a_fresh_mac_per_packet():
    topo = _fabric()
    source = build_source("packetin-flood", topo, 3, {"senders": 1})
    frames = _stream(source, n=100)[source.emitters[0].host]
    macs = {extract_flow_base(f)["dl_src"] for f in frames}
    assert len(macs) == 100
    for mac in macs:
        assert int(mac) >> 40 == 0x02  # locally administered unicast


def test_packetin_flood_mac_pool_cycles():
    topo = _fabric()
    source = build_source("packetin-flood", topo, 3,
                          {"senders": 1, "spoof_macs": 8})
    frames = _stream(source, n=64)[source.emitters[0].host]
    macs = [extract_flow_base(f)["dl_src"] for f in frames]
    assert len(set(macs)) == 8
    assert macs[:8] == macs[8:16]


def test_table_overflow_sweeps_distinct_keys_cyclically():
    topo = _fabric()
    source = build_source("table-overflow", topo, 0,
                          {"senders": 1, "keys": 16})
    frames = _stream(source, n=40)[source.emitters[0].host]
    ports = [extract_flow_base(f)["tp_src"] for f in frames]
    assert ports[:16] == [OVERFLOW_PORT_BASE + i for i in range(16)]
    assert ports[16:32] == ports[:16]
    assert all(extract_flow_base(f)["tp_dst"] == FLOOD_UDP_PORT + 1
               for f in frames)


def test_table_overflow_validates_keys():
    with pytest.raises(ValueError, match="keys"):
        build_source("table-overflow", _fabric(), 0, {"keys": 0})


def test_arp_poison_claims_the_impersonated_ip_at_the_attacker_mac():
    topo = _fabric()
    source = build_source("arp-poison", topo, 5, {"senders": 2})
    hosts = sorted(topo.hosts)
    half = len(hosts) // 2
    attacker = topo.hosts[hosts[0]]
    impersonated = topo.hosts[hosts[half]]
    frames = _stream(source, n=6)[hosts[0]]
    for frame in frames:
        base = extract_flow_base(frame)
        assert base["dl_src"] == attacker.mac
        assert base["nw_src"] == impersonated.ip  # the poisoned mapping
        assert base["dl_dst"] != impersonated.mac


def test_arp_poison_needs_two_pairs():
    with pytest.raises(ValueError, match="senders"):
        build_source("arp-poison", _fabric(), 0, {"senders": 1})
