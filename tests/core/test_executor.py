"""Unit tests for the attack executor (Algorithm 1)."""

import pytest

from repro.core.injector import AttackExecutor
from repro.core.lang import (
    Attack,
    AttackState,
    Const,
    DropMessage,
    DuplicateMessage,
    GoToState,
    PassMessage,
    PrependAction,
    Rule,
    Sleep,
    SysCmd,
    TrueCondition,
    parse_condition,
)
from repro.core.lang.properties import Direction, InterposedMessage
from repro.core.model import gamma_no_tls
from repro.openflow import EchoRequest, FlowMod, Hello, Match
from repro.sim import SimulationEngine

CONN = ("c1", "s1")
OTHER = ("c1", "s2")


def interposed(message, connection=CONN):
    return InterposedMessage(connection, Direction.TO_SWITCH, 0.0,
                             message.pack(), message)


def rule(name, condition_text, actions, connections=CONN):
    return Rule(name, connections, gamma_no_tls(),
                parse_condition(condition_text), actions)


def make_executor(states, start, deques=None):
    attack = Attack("test", states, start, deque_declarations=deques or {})
    return AttackExecutor(attack, SimulationEngine())


class TestAlgorithm1:
    def test_default_is_pass_through(self):
        executor = make_executor([AttackState("s", [])], "s")
        msg = interposed(Hello())
        out = executor.handle_message(msg)
        assert len(out) == 1
        assert out[0].message is msg

    def test_matching_rule_drops(self):
        executor = make_executor(
            [AttackState("s", [rule("drop", "type = FLOW_MOD", [DropMessage()])])],
            "s",
        )
        assert executor.handle_message(interposed(FlowMod(Match()))) == []
        assert len(executor.handle_message(interposed(Hello()))) == 1

    def test_rule_scoped_to_connection(self):
        executor = make_executor(
            [AttackState("s", [rule("drop", "true", [DropMessage()],
                                    connections=CONN)])],
            "s",
        )
        assert executor.handle_message(interposed(Hello(), CONN)) == []
        assert len(executor.handle_message(interposed(Hello(), OTHER))) == 1

    def test_goto_changes_state_for_next_message(self):
        states = [
            AttackState("s1", [rule("advance", "true",
                                    [PassMessage(), GoToState("s2")])]),
            AttackState("s2", [rule("drop", "true", [DropMessage()])]),
        ]
        executor = make_executor(states, "s1")
        # First message: evaluated against σ_previous = s1, so it passes.
        out = executor.handle_message(interposed(Hello()))
        assert len(out) == 1
        assert executor.current_state_name == "s2"
        # Second message hits s2's drop rule.
        assert executor.handle_message(interposed(Hello())) == []

    def test_state_saved_before_processing(self):
        """Rules are taken from σ_previous even if a rule mid-message
        transitions the state (Algorithm 1 line 6)."""
        states = [
            AttackState("s1", [
                rule("advance", "true", [GoToState("s2")]),
                rule("dup", "true", [DuplicateMessage()]),
            ]),
            AttackState("s2", [rule("drop", "true", [DropMessage()])]),
        ]
        executor = make_executor(states, "s1")
        out = executor.handle_message(interposed(Hello()))
        # Both s1 rules ran (the drop rule of s2 did not).
        assert len(out) == 2

    def test_multiple_rules_all_evaluated(self):
        states = [AttackState("s", [
            rule("dup1", "true", [DuplicateMessage()]),
            rule("dup2", "true", [DuplicateMessage()]),
        ])]
        executor = make_executor(states, "s")
        assert len(executor.handle_message(interposed(Hello()))) == 3

    def test_goto_to_unknown_state_raises(self):
        # Construct a graph bypassing Attack validation via direct executor
        # manipulation: the executor itself also guards GOTOSTATE.
        executor = make_executor([AttackState("s", [])], "s")
        with pytest.raises(KeyError):
            executor._goto("ghost")

    def test_stats(self):
        executor = make_executor(
            [AttackState("s", [rule("drop", "type = FLOW_MOD", [DropMessage()])])],
            "s",
        )
        executor.handle_message(interposed(FlowMod(Match())))
        executor.handle_message(interposed(Hello()))
        assert executor.stats["messages_processed"] == 2
        assert executor.stats["rules_fired"] == 1
        assert executor.stats["messages_dropped"] == 1


class TestFrameworkHooks:
    def test_sleep_sets_deadline(self):
        executor = make_executor(
            [AttackState("s", [rule("nap", "true", [Sleep(2.0)])])], "s"
        )
        executor.handle_message(interposed(Hello()))
        assert executor.sleep_until == 2.0
        assert executor.sleeping(1.0)
        assert not executor.sleeping(2.0)

    def test_syscmd_routed(self):
        commands = []
        executor = make_executor(
            [AttackState("s", [rule("cmd", "true", [SysCmd("h6", "iperf -s")])])],
            "s",
        )
        executor.set_syscmd_router(lambda host, cmd: commands.append((host, cmd)))
        executor.handle_message(interposed(Hello()))
        assert commands == [("h6", "iperf -s")]

    def test_observer_notifications(self):
        events = []

        class Observer:
            def rule_fired(self, state, rule_name, message):
                events.append(("rule", state, rule_name))

            def state_changed(self, previous, current, at):
                events.append(("state", previous, current))

            def action_record(self, kind, data, at):
                events.append(("action", kind))

        states = [
            AttackState("s1", [rule("go", "true", [DropMessage(), GoToState("s2")])]),
            AttackState("s2", []),
        ]
        executor = make_executor(states, "s1")
        observer = Observer()
        executor.add_observer(observer)
        executor.handle_message(interposed(Hello()))
        assert ("rule", "s1", "go") in events
        assert ("state", "s1", "s2") in events
        assert ("action", "drop_message") in events

    def test_storage_shared_across_messages(self):
        states = [AttackState("s", [
            rule("count", "true",
                 [PrependAction("seen", Const(1))]),
        ])]
        executor = make_executor(states, "s")
        for _ in range(3):
            executor.handle_message(interposed(Hello()))
        assert len(executor.storage.deque("seen")) == 3


class TestCountingAttacks:
    def test_deque_counter_end_to_end(self):
        from repro.attacks import counting_attack_deque

        attack = counting_attack_deque(CONN, n=3, condition_text="type = ECHO_REQUEST")
        executor = AttackExecutor(attack, SimulationEngine())
        # First three echoes pass (counting), the rest are dropped.
        results = [
            len(executor.handle_message(interposed(EchoRequest(payload=b"x"))))
            for _ in range(5)
        ]
        assert results == [1, 1, 1, 0, 0]
        assert executor.current_state_name == "armed"

    def test_naive_counter_matches_deque_counter_behaviour(self):
        from repro.attacks import counting_attack_deque, counting_attack_naive

        for n in (1, 2, 4):
            naive = AttackExecutor(
                counting_attack_naive(CONN, n, "type = ECHO_REQUEST"),
                SimulationEngine(),
            )
            deque_based = AttackExecutor(
                counting_attack_deque(CONN, n, "type = ECHO_REQUEST"),
                SimulationEngine(),
            )
            for _ in range(n + 3):
                msg = EchoRequest(payload=b"x")
                a = len(naive.handle_message(interposed(msg)))
                b = len(deque_based.handle_message(interposed(msg)))
                assert a == b

    def test_state_count_comparison(self):
        """Section VIII-B: O(n) naive states vs O(1) + armed for the deque."""
        from repro.attacks import counting_attack_deque, counting_attack_naive

        n = 50
        naive = counting_attack_naive(CONN, n)
        compact = counting_attack_deque(CONN, n)
        assert len(naive.states) == n + 1
        assert len(compact.states) == 2
