"""Integration tests for the runtime injector: proxy, routing, sleep, TLS."""

import pytest

from repro.attacks import (
    delay_attack,
    flow_mod_suppression_attack,
    fuzzing_attack,
    passthrough_attack,
)
from repro.controllers import FloodlightController
from repro.core import AttackModel, RuntimeInjector, SystemModel
from repro.core.lang import (
    Attack,
    AttackState,
    DelayMessage,
    DropMessage,
    Rule,
    Sleep,
    SysCmd,
    parse_condition,
)
from repro.core.model import gamma_no_tls, gamma_tls
from repro.core.monitors import ControlPlaneMonitor
from repro.dataplane import Network
from repro.sim import SimulationEngine


def build(engine, topology, attack=None, attack_model=None, monitor=True,
          controller_cls=FloodlightController):
    network = Network(engine, topology)
    controller = controller_cls(engine)
    system = SystemModel.from_topology(topology, ["c1"])
    model = attack_model or AttackModel.no_tls_everywhere(system)
    injector = RuntimeInjector(engine, model, attack)
    cp_monitor = ControlPlaneMonitor() if monitor else None
    if cp_monitor is not None:  # note: an empty monitor is falsy (len == 0)
        injector.add_observer(cp_monitor)
    injector.install(network, {"c1": controller})
    network.start()
    engine.run(until=5.0)
    return network, controller, injector, cp_monitor, system


class TestPassThrough:
    def test_no_attack_proxy_is_transparent(self, engine, small_topology):
        network, _c, injector, monitor, _s = build(engine, small_topology)
        assert network.all_connected()
        run = network.host("h1").ping(network.host_ip("h2"), count=3)
        engine.run(until=20.0)
        assert run.result.received == 3
        assert monitor.total_messages() > 0
        assert monitor.dropped_total() == 0

    def test_fig5_passthrough_attack_is_transparent(self, engine, small_topology):
        system = SystemModel.from_topology(small_topology, ["c1"])
        attack = passthrough_attack(system.connection_keys())
        network, _c, injector, monitor, _s = build(engine, small_topology, attack)
        run = network.host("h1").ping(network.host_ip("h2"), count=3)
        engine.run(until=20.0)
        assert run.result.received == 3
        assert monitor.dropped_total() == 0
        # Every message fired the pass rule.
        assert len(monitor.fired_rules()) == monitor.total_messages()

    def test_uninstrumented_connection_forwards_raw(self, engine, small_topology):
        system = SystemModel.from_topology(small_topology, ["c1"])
        # Attacker only on (c1, s1); (c1, s2) has no capabilities at all.
        model = AttackModel.compromised(system, [("c1", "s1")])
        attack = flow_mod_suppression_attack([("c1", "s1")])
        network, _c, _inj, monitor, _s = build(
            engine, small_topology, attack, attack_model=model
        )
        run = network.host("h1").ping(network.host_ip("h2"), count=2)
        engine.run(until=20.0)
        # s1 flow mods suppressed, s2 untouched -> pings still work; s2
        # received flow mods (they idle-expire later) while s1 got none.
        assert run.result.received == 2
        assert network.switch("s1").stats["flow_mods_received"] == 0
        assert network.switch("s2").stats["flow_mods_received"] > 0
        # Interposed counts only include the attacked connection.
        assert all(key == ("c1", "s1") for key in monitor.per_connection)


class TestSuppression:
    def test_flow_mods_never_reach_switches(self, engine, small_topology):
        system = SystemModel.from_topology(small_topology, ["c1"])
        attack = flow_mod_suppression_attack(system.connection_keys())
        network, _c, _inj, monitor, _s = build(engine, small_topology, attack)
        run = network.host("h1").ping(network.host_ip("h2"), count=5)
        engine.run(until=30.0)
        assert run.result.received == 5  # Floodlight: degraded, not DoS
        assert monitor.dropped_by_type.get("FLOW_MOD", 0) > 0
        assert network.total_stat("flow_mods_received") == 0

    def test_pox_suppression_is_dos(self, engine, small_topology):
        from repro.controllers import PoxController

        system = SystemModel.from_topology(small_topology, ["c1"])
        attack = flow_mod_suppression_attack(system.connection_keys())
        network, _c, _inj, _m, _s = build(
            engine, small_topology, attack, controller_cls=PoxController
        )
        run = network.host("h1").ping(network.host_ip("h2"), count=5)
        engine.run(until=30.0)
        assert run.result.received == 0  # the Fig. 11 asterisk


class TestDelayAndFuzz:
    def test_delay_attack_inflates_first_rtt(self, engine, small_topology):
        system = SystemModel.from_topology(small_topology, ["c1"])
        baseline_net, *_ = build(SimulationEngine(), small_topology)
        attack = delay_attack(system.connection_keys(),
                              condition_text="type = PACKET_OUT", delay_s=0.2)
        network, _c, _inj, _m, _s = build(engine, small_topology, attack)
        # ARP resolution + the ICMP round trip each pay several delayed
        # PACKET_OUTs (two switches, both directions): allow a long timeout.
        run = network.host("h1").ping(network.host_ip("h2"), count=1, timeout=5.0)
        engine.run(until=20.0)
        assert run.result.received == 1
        assert run.result.rtts[0] > 0.4

    def test_fuzz_attack_corrupts_messages(self, engine, small_topology):
        system = SystemModel.from_topology(small_topology, ["c1"])
        attack = fuzzing_attack(system.connection_keys(),
                                condition_text="type = PACKET_IN",
                                bit_flips=16, preserve_header=True)
        network, controller, _inj, _m, _s = build(engine, small_topology, attack)
        network.host("h1").ping(network.host_ip("h2"), count=3)
        engine.run(until=20.0)
        # Fuzzed packet-ins reach the controller (header preserved) but the
        # learning switch sees garbage payloads; the network may or may not
        # deliver pings — the controller must simply survive.
        assert controller.stats["messages_received"] > 0

    def test_fuzz_attack_with_limit_reaches_end_state(self, engine, small_topology):
        system = SystemModel.from_topology(small_topology, ["c1"])
        attack = fuzzing_attack(system.connection_keys(),
                                condition_text="type = ECHO_REQUEST",
                                bit_flips=2, max_messages=1)
        _n, _c, injector, _m, _s = build(engine, small_topology, attack)
        engine.run(until=60.0)  # let echo probes flow
        assert injector.current_state == "sigma_end"


class TestSleepSemantics:
    def test_sleep_defers_subsequent_messages(self, engine, small_topology):
        system = SystemModel.from_topology(small_topology, ["c1"])
        # Each FEATURES_REPLY pauses the executor for 1 s: later handshake
        # messages are queued, not lost, and arrive once the sleep elapses.
        rule = Rule("nap", frozenset(system.connection_keys()), gamma_no_tls(),
                    parse_condition("type = FEATURES_REPLY"), [Sleep(1.0)])
        attack = Attack("sleepy", [AttackState("s", [rule])], "s")
        network, _c, injector, _m, _s = build(engine, small_topology, attack)
        engine.run(until=10.0)
        assert network.all_connected()
        assert injector.stats["messages_deferred"] > 0


class TestSysCmdRouting:
    def test_syscmd_reaches_registered_router(self, engine, small_topology):
        system = SystemModel.from_topology(small_topology, ["c1"])
        commands = []
        rule = Rule("cmd", frozenset(system.connection_keys()), gamma_no_tls(),
                    parse_condition("type = HELLO"),
                    [SysCmd("h2", "start-monitor")])
        attack = Attack("cmds", [AttackState("s", [rule])], "s")
        network = Network(engine, small_topology)
        controller = FloodlightController(engine)
        model = AttackModel.no_tls_everywhere(system)
        injector = RuntimeInjector(engine, model, attack)
        injector.set_syscmd_router(lambda host, cmd: commands.append((host, cmd)))
        injector.install(network, {"c1": controller})
        network.start()
        engine.run(until=5.0)
        assert ("h2", "start-monitor") in commands


class TestValidationAtConstruction:
    def test_attack_validated_against_model(self, engine, small_topology):
        system = SystemModel.from_topology(small_topology, ["c1"])
        model = AttackModel.tls_everywhere(system)
        attack = flow_mod_suppression_attack(system.connection_keys())
        # Suppression needs READMESSAGE: rejected under TLS.
        with pytest.raises(Exception):
            RuntimeInjector(engine, model, attack)

    def test_port_for_unknown_connection_rejected(self, engine, small_topology):
        system = SystemModel.from_topology(small_topology, ["c1"])
        model = AttackModel.no_tls_everywhere(system)
        injector = RuntimeInjector(engine, model)
        with pytest.raises(KeyError):
            injector.port_for(("c1", "s99"), FloodlightController(engine))

    def test_install_requires_controller_endpoint(self, engine, small_topology):
        system = SystemModel.from_topology(small_topology, ["c1"])
        model = AttackModel.no_tls_everywhere(system)
        injector = RuntimeInjector(engine, model)
        network = Network(engine, small_topology)
        with pytest.raises(KeyError):
            injector.install(network, {})


class TestReconnection:
    def test_switch_reconnect_creates_new_proxy(self, engine, small_topology):
        network, _c, injector, _m, _s = build(engine, small_topology)
        assert injector.stats["proxies_created"] == 2
        # Tear down s1's proxy (e.g. an injector restart): both sides are
        # notified and the switch redials through a fresh proxy.
        injector.active_proxies[("c1", "s1")].close()
        engine.run(until=engine.now + 15.0)
        assert network.switch("s1").connected
        assert injector.stats["proxies_created"] >= 3
