"""Coverage for metadata rerouting, packet rewrites, and reserved ports."""

import pytest

from repro.controllers import FloodlightController
from repro.core import AttackModel, RuntimeInjector, SystemModel
from repro.core.lang import (
    Attack,
    AttackState,
    ModifyMessageMetadata,
    Rule,
    parse_condition,
)
from repro.core.model import gamma_no_tls
from repro.dataplane import Network, OpenFlowSwitch, Topology, connect_endpoints
from repro.netlib import (
    EtherType,
    EthernetFrame,
    Ipv4Address,
    Ipv4Packet,
    MacAddress,
    decode_ethernet,
)
from repro.openflow import (
    FlowMod,
    Match,
    OutputAction,
    Port,
    SetDlDstAction,
    SetDlSrcAction,
    SetNwDstAction,
    SetNwSrcAction,
)
from repro.openflow.messages import VendorMessage, parse_message
from repro.sim import SimulationEngine
from tests.dataplane.test_switch import ScriptedController, frame


class TestDestinationReroute:
    def test_modify_metadata_reroutes_packet_out(self, engine, small_topology):
        """MODIFYMESSAGEMETADATA(destination) steers controller->switch
        messages onto another switch's interposed connection."""
        network = Network(engine, small_topology)
        controller = FloodlightController(engine)
        system = SystemModel.from_topology(small_topology, ["c1"])
        model = AttackModel.no_tls_everywhere(system)
        rule = Rule(
            "reroute_flow_mods", frozenset({("c1", "s1")}), gamma_no_tls(),
            parse_condition("type = FLOW_MOD and destination = s1"),
            [ModifyMessageMetadata("destination", "s2")],
        )
        attack = Attack("reroute", [AttackState("sigma1", [rule])], "sigma1")
        injector = RuntimeInjector(engine, model, attack)
        injector.install(network, {"c1": controller})
        network.start()
        engine.run(until=5.0)
        network.host("h1").ping(network.host_ip("h2"), count=2)
        engine.run(until=20.0)
        # Flow mods addressed to s1 landed on s2 instead: s1 has none,
        # while s2 received both its own and the rerouted ones.
        assert network.switch("s1").stats["flow_mods_received"] == 0
        s2_received = network.switch("s2").stats["flow_mods_received"]
        assert s2_received > 0

    def test_reroute_to_unknown_destination_falls_back(self, engine,
                                                       small_topology):
        network = Network(engine, small_topology)
        controller = FloodlightController(engine)
        system = SystemModel.from_topology(small_topology, ["c1"])
        model = AttackModel.no_tls_everywhere(system)
        rule = Rule(
            "reroute_nowhere", frozenset(system.connection_keys()),
            gamma_no_tls(),
            parse_condition("type = FLOW_MOD"),
            [ModifyMessageMetadata("destination", "s99")],
        )
        attack = Attack("reroute-bad", [AttackState("sigma1", [rule])], "sigma1")
        injector = RuntimeInjector(engine, model, attack)
        injector.install(network, {"c1": controller})
        network.start()
        engine.run(until=5.0)
        run = network.host("h1").ping(network.host_ip("h2"), count=2)
        engine.run(until=20.0)
        # Unknown destination: message proceeds on its natural connection.
        assert run.result.received == 2
        assert network.total_stat("flow_mods_received") > 0


@pytest.fixture
def action_rig():
    engine = SimulationEngine()
    switch = OpenFlowSwitch(engine, "s1", datapath_id=1)
    egress = {1: [], 2: [], 3: []}
    for port in (1, 2, 3):
        switch.attach_port(port, lambda data, p=port: egress[p].append(data))
    controller = ScriptedController(engine)
    switch.set_connect_factory(
        lambda sw: connect_endpoints(engine, sw, controller, latency_s=0.001)[0]
    )
    switch.start()
    engine.run(until=1.0)
    return engine, switch, controller, egress


class TestFieldRewriteActions:
    def _ip_frame(self):
        ip = Ipv4Packet(Ipv4Address("10.0.0.1"), Ipv4Address("10.0.0.2"), 6,
                        b"payload")
        return EthernetFrame(MacAddress(2), MacAddress(1), EtherType.IPV4,
                             ip.pack()).pack()

    def test_set_dl_rewrites(self, action_rig):
        engine, switch, controller, egress = action_rig
        controller.send(FlowMod(Match(in_port=1), actions=[
            SetDlSrcAction(MacAddress(0xAA)),
            SetDlDstAction(MacAddress(0xBB)),
            OutputAction(2),
        ]))
        engine.run(until=2.0)
        switch.frame_received(1, self._ip_frame())
        decoded = decode_ethernet(egress[2][0])
        assert decoded.ethernet.src == MacAddress(0xAA)
        assert decoded.ethernet.dst == MacAddress(0xBB)

    def test_set_nw_rewrites_and_checksum(self, action_rig):
        engine, switch, controller, egress = action_rig
        controller.send(FlowMod(Match(in_port=1), actions=[
            SetNwSrcAction(Ipv4Address("192.168.0.1")),
            SetNwDstAction(Ipv4Address("192.168.0.2")),
            OutputAction(2),
        ]))
        engine.run(until=2.0)
        switch.frame_received(1, self._ip_frame())
        decoded = decode_ethernet(egress[2][0])
        assert str(decoded.l3.src) == "192.168.0.1"
        assert str(decoded.l3.dst) == "192.168.0.2"  # checksum re-valid

    def test_nw_rewrite_on_non_ip_is_noop(self, action_rig):
        engine, switch, controller, egress = action_rig
        controller.send(FlowMod(Match(in_port=1), actions=[
            SetNwSrcAction(Ipv4Address("192.168.0.1")),
            OutputAction(2),
        ]))
        engine.run(until=2.0)
        raw = frame()  # plain Ethernet with opaque payload
        switch.frame_received(1, raw)
        assert egress[2] == [raw]


class TestReservedOutputPorts:
    def test_in_port_output(self, action_rig):
        engine, switch, controller, egress = action_rig
        controller.send(FlowMod(Match(in_port=1),
                                actions=[OutputAction(Port.IN_PORT)]))
        engine.run(until=2.0)
        raw = frame()
        switch.frame_received(1, raw)
        assert egress[1] == [raw]

    def test_normal_output_uses_learning(self, action_rig):
        engine, switch, controller, egress = action_rig
        controller.send(FlowMod(Match.wildcard_all(),
                                actions=[OutputAction(Port.NORMAL)]))
        engine.run(until=2.0)
        a, b = MacAddress(0xA1), MacAddress(0xB2)
        switch.frame_received(1, frame(src=a, dst=b))    # learn a@1, flood
        switch.frame_received(2, frame(src=b, dst=a))    # unicast to port 1
        assert len(egress[1]) == 1

    def test_controller_output_sends_packet_in(self, action_rig):
        engine, switch, controller, egress = action_rig
        controller.send(FlowMod(Match(in_port=1),
                                actions=[OutputAction(Port.CONTROLLER)]))
        engine.run(until=2.0)
        before = switch.stats["packet_ins_sent"]
        switch.frame_received(1, frame())
        engine.run(until=3.0)
        assert switch.stats["packet_ins_sent"] == before + 1

    def test_output_to_own_ingress_numeric_port_suppressed(self, action_rig):
        engine, switch, controller, egress = action_rig
        controller.send(FlowMod(Match(in_port=1), actions=[OutputAction(1)]))
        engine.run(until=2.0)
        switch.frame_received(1, frame())
        assert egress[1] == []  # numeric echo to ingress is dropped


class TestVendorMessage:
    def test_roundtrip(self):
        message = VendorMessage(0x2320, b"nicira-ext", xid=5)
        decoded = parse_message(message.pack())
        assert decoded == message
        assert decoded.vendor == 0x2320
        assert decoded.data == b"nicira-ext"


class TestNetworkTargetValidation:
    def test_duplicate_target_name_rejected(self, engine, small_topology):
        network = Network(engine, small_topology)
        controller = FloodlightController(engine)
        network.add_controller_target("s1", controller, target_name="x")
        with pytest.raises(ValueError):
            network.add_controller_target("s1", controller, target_name="x")

    def test_unknown_switch_rejected(self, engine, small_topology):
        network = Network(engine, small_topology)
        controller = FloodlightController(engine)
        with pytest.raises(KeyError):
            network.add_controller_target("ghost", controller)

    def test_set_replaces_previous_targets(self, engine, small_topology):
        network = Network(engine, small_topology)
        c1 = FloodlightController(engine, name="c1")
        c2 = FloodlightController(engine, name="c2")
        network.add_controller_target("s1", c1, target_name="a")
        network.add_controller_target("s1", c2, target_name="b")
        network.set_controller_target("s1", c1)  # back to a single target
        network.set_controller_target("s2", c1)
        network.start()
        engine.run(until=5.0)
        assert len(network.switch("s1").connected_controller_names()) == 1
