"""Property-based tests over core language/executor invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.compiler.codegen import condition_to_text
from repro.core.injector import AttackExecutor
from repro.core.lang import (
    And,
    Attack,
    AttackState,
    Comparison,
    Const,
    DropMessage,
    DuplicateMessage,
    EvalContext,
    ExamineFront,
    GoToState,
    Not,
    Or,
    PassMessage,
    Property,
    Rule,
    StorageSet,
    TrueCondition,
    TypeOption,
    parse_condition,
)
from repro.core.lang.properties import Direction, InterposedMessage, MessageProperty
from repro.core.model import gamma_no_tls
from repro.openflow import EchoRequest, FlowMod, Hello, Match
from repro.sim import SimulationEngine

CONN = ("c1", "s1")

# ---------------------------------------------------------------------- #
# Random condition ASTs
# ---------------------------------------------------------------------- #

_atoms = st.sampled_from([
    Comparison("=", Property(MessageProperty.TYPE), Const("HELLO")),
    Comparison("=", Property(MessageProperty.TYPE), Const("FLOW_MOD")),
    Comparison("=", Property(MessageProperty.SOURCE), Const("c1")),
    Comparison("!=", Property(MessageProperty.DESTINATION), Const("s9")),
    Comparison("in", Property(MessageProperty.DESTINATION),
               Const(frozenset({"s1", "s2"}))),
    Comparison("=", TypeOption("idle_timeout"), Const(5)),
    Comparison("=", ExamineFront("counter"), Const(0)),
    TrueCondition(),
])


def _conditions(depth: int = 3):
    return st.recursive(
        _atoms,
        lambda children: st.one_of(
            st.lists(children, min_size=1, max_size=3).map(lambda t: And(*t)),
            st.lists(children, min_size=1, max_size=3).map(lambda t: Or(*t)),
            children.map(Not),
        ),
        max_leaves=8,
    )


def _messages():
    return st.sampled_from([
        InterposedMessage(CONN, Direction.TO_SWITCH, 0.0, Hello().pack()),
        InterposedMessage(CONN, Direction.TO_CONTROLLER, 1.0,
                          EchoRequest(payload=b"x").pack()),
        InterposedMessage(CONN, Direction.TO_SWITCH, 2.0,
                          FlowMod(Match(in_port=1), idle_timeout=5).pack()),
    ])


@given(_conditions(), _messages())
@settings(max_examples=200)
def test_unparse_reparse_preserves_semantics(condition, message):
    """codegen's unparser and the parser are semantic inverses."""
    text = condition_to_text(condition)
    reparsed = parse_condition(text)
    storage = StorageSet()
    storage.declare("counter", [0])
    ctx = EvalContext(message, storage, 0.0)
    assert condition.evaluate(ctx) == reparsed.evaluate(ctx)
    assert condition.required_capabilities() == reparsed.required_capabilities()


@given(_conditions())
def test_not_is_involutive(condition):
    message = InterposedMessage(CONN, Direction.TO_SWITCH, 0.0, Hello().pack())
    storage = StorageSet()
    storage.declare("counter", [0])
    ctx = EvalContext(message, storage, 0.0)
    assert Not(Not(condition)).evaluate(ctx) == condition.evaluate(ctx)


@given(_conditions(), _conditions(), _messages())
def test_demorgan(a, b, message):
    storage = StorageSet()
    storage.declare("counter", [0])
    ctx = EvalContext(message, storage, 0.0)
    assert Not(And(a, b)).evaluate(ctx) == Or(Not(a), Not(b)).evaluate(ctx)


# ---------------------------------------------------------------------- #
# Random linear attack graphs through the executor
# ---------------------------------------------------------------------- #

@given(st.integers(min_value=1, max_value=8),
       st.lists(st.sampled_from(["HELLO", "ECHO_REQUEST", "FLOW_MOD"]),
                min_size=0, max_size=30))
@settings(max_examples=50)
def test_linear_graph_state_progress_matches_trigger_count(n_states, stream):
    """A chain advancing on HELLO ends in state min(#hellos, n_states-1)."""
    states = []
    for index in range(n_states):
        rules = []
        if index + 1 < n_states:
            rules.append(Rule(
                f"advance_{index}", CONN, gamma_no_tls(),
                parse_condition("type = HELLO"),
                [PassMessage(), GoToState(f"state_{index + 1}")],
            ))
        states.append(AttackState(f"state_{index}", rules))
    attack = Attack("chain", states, "state_0")
    executor = AttackExecutor(attack, SimulationEngine())
    builders = {"HELLO": Hello, "ECHO_REQUEST": EchoRequest,
                "FLOW_MOD": lambda: FlowMod(Match())}
    hellos = 0
    for kind in stream:
        message = builders[kind]()
        executor.handle_message(
            InterposedMessage(CONN, Direction.TO_SWITCH, 0.0, message.pack())
        )
        if kind == "HELLO":
            hellos += 1
    expected = min(hellos, n_states - 1)
    assert executor.current_state_name == f"state_{expected}"


@given(st.lists(st.sampled_from(["drop", "pass", "dup"]),
                min_size=1, max_size=6),
       st.integers(min_value=1, max_value=20))
@settings(max_examples=50)
def test_outgoing_count_invariant(action_kinds, n_messages):
    """|msg_out| = (0 if any drop else 1) + number of duplicate actions."""
    actions = {"drop": DropMessage, "pass": PassMessage,
               "dup": DuplicateMessage}
    rule = Rule("r", CONN, gamma_no_tls(), TrueCondition(),
                [actions[kind]() for kind in action_kinds])
    attack = Attack("inv", [AttackState("s", [rule])], "s")
    executor = AttackExecutor(attack, SimulationEngine())
    dups = action_kinds.count("dup")
    survives = 0 if "drop" in action_kinds else 1
    for _ in range(n_messages):
        out = executor.handle_message(
            InterposedMessage(CONN, Direction.TO_SWITCH, 0.0, Hello().pack())
        )
        assert len(out) == survives + dups


@given(st.binary(min_size=0, max_size=64))
@settings(max_examples=200)
def test_executor_total_on_arbitrary_bytes(raw):
    """Garbage on the wire never crashes the executor (payload reads on
    undecodable messages evaluate to None)."""
    from repro.attacks import flow_mod_suppression_attack

    executor = AttackExecutor(flow_mod_suppression_attack(CONN),
                              SimulationEngine())
    message = InterposedMessage(CONN, Direction.TO_SWITCH, 0.0, raw)
    out = executor.handle_message(message)
    # Undecodable messages never match `type = FLOW_MOD`: they pass.
    assert len(out) == 1
