"""Compiled conditionals must be indistinguishable from interpreted ones.

The executor's fast lane lowers each λ AST to a closure once at attack-load
time (:func:`repro.core.lang.conditionals.compile_condition`).  These tests
run the same conditional both ways over a grid of messages and storage
states and require identical results — including storage side effects and
the seeded stochastic draw sequence.
"""

import pytest

from repro.core.lang import parse_condition
from repro.core.lang.conditionals import (
    Comparison,
    Const,
    EvalContext,
    Probability,
    Property,
    ShiftExpr,
    compile_condition,
    condition_message_types,
)
from repro.core.lang.parser import parse_expression
from repro.core.lang.properties import Direction, InterposedMessage, MessageProperty
from repro.core.lang.storage import StorageSet
from repro.openflow import (
    EchoRequest,
    FlowMod,
    Hello,
    Match,
    OutputAction,
    PacketIn,
)
from repro.sim.rng import SeededRng

CONN = ("c1", "s1")


def interpose(message, direction=Direction.TO_SWITCH, timestamp=4.0):
    return InterposedMessage(CONN, direction, timestamp, message.pack(), message)


def sample_messages():
    return [
        interpose(Hello()),
        interpose(EchoRequest(payload=b"ping"), Direction.TO_CONTROLLER),
        interpose(
            FlowMod(Match(in_port=1, tp_dst=80), idle_timeout=5,
                    actions=[OutputAction(2)])
        ),
        interpose(PacketIn.no_match(7, 3, b"\x00" * 24), Direction.TO_CONTROLLER),
        # Undecodable bytes: TYPE and all options read as None.
        InterposedMessage(CONN, Direction.TO_SWITCH, 4.0, b"\xff" * 8),
    ]


def storage_with_counter():
    storage = StorageSet()
    storage.deque("count").append(3)
    storage.deque("count").append(9)
    storage.deque("names").append("s1")
    return storage


CONDITIONS = [
    "",
    "true",
    "false",
    "type = FLOW_MOD",
    "type != FLOW_MOD",
    "HELLO = type",
    "type in {FLOW_MOD, PACKET_IN}",
    "length = 8",
    "length > 8",
    "length < 8",
    "timestamp > 3",
    "source = s1",
    "destination in {s1, s2}",
    "opt.match.tp_dst = 80",
    "opt.in_port = 3",
    "opt.match.nw_src = 10.0.0.2",
    "front(count) = 3",
    "end(names) = s1",
    "front(count) + 1 = 4",
    "type = FLOW_MOD and opt.idle_timeout = 5",
    "type = HELLO or type = FLOW_MOD",
    "not type = HELLO",
    "not (type = HELLO or length > 100)",
    "type = FLOW_MOD and (destination = s1 or destination = s2)",
]


class TestEquivalence:
    @pytest.mark.parametrize("text", CONDITIONS)
    def test_pure_conditions_agree_on_all_messages(self, text):
        condition = parse_condition(text)
        compiled = compile_condition(condition)
        for message in sample_messages():
            interpreted_ctx = EvalContext(message, storage_with_counter(), now=4.0)
            compiled_ctx = EvalContext(message, storage_with_counter(), now=4.0)
            assert compiled(compiled_ctx) == condition.evaluate(interpreted_ctx), text

    @pytest.mark.parametrize(
        "text",
        ["shift(count) = 3", "pop(count) = 3", "shift(count) + 1 = 4",
         "shift(count) in {3, 9}"],
    )
    def test_side_effecting_conditions_agree_including_storage(self, text):
        """SHIFT/POP mutate Δ: results and final storage must both match."""
        condition = parse_condition(text)
        compiled = compile_condition(condition)
        interpreted_storage = storage_with_counter()
        compiled_storage = storage_with_counter()
        for message in sample_messages()[:2]:
            interpreted = condition.evaluate(
                EvalContext(message, interpreted_storage, now=4.0)
            )
            result = compiled(EvalContext(message, compiled_storage, now=4.0))
            assert result == interpreted, text
        assert interpreted_storage.deque("count").snapshot() == \
            compiled_storage.deque("count").snapshot()

    def test_membership_evaluates_left_exactly_once(self):
        """``shift(d) in {...}`` must consume one element per evaluation."""
        condition = Comparison("in", parse_expression("shift(d)"),
                               Const(("a", "b")))
        compiled = compile_condition(condition)
        storage = StorageSet()
        storage.deque("d").append("a")
        storage.deque("d").append("z")
        ctx = EvalContext(None, storage, now=0.0)
        assert compiled(ctx) is True
        assert compiled(ctx) is False
        assert len(storage.deque("d")) == 0

    def test_probability_draw_sequence_identical(self):
        """prob(p) keeps the interpreted path: same rng, same draws."""
        condition = parse_condition("prob(0.5)")
        compiled = compile_condition(condition)
        message = sample_messages()[0]
        interpreted = [
            condition.evaluate(
                EvalContext(message, StorageSet(), rng=SeededRng(7).child("x"))
            )
            for _ in range(20)
        ]
        rng = SeededRng(7).child("x")
        drawn = [
            compiled(EvalContext(message, StorageSet(), rng=rng))
            for _ in range(1)
        ]
        # Fresh identical streams step identically through both paths.
        rng_a, rng_b = SeededRng(11).child("y"), SeededRng(11).child("y")
        for _ in range(50):
            assert condition.evaluate(
                EvalContext(message, StorageSet(), rng=rng_a)
            ) == compiled(EvalContext(message, StorageSet(), rng=rng_b))
        assert drawn[0] == interpreted[0]

    def test_probability_compile_is_interpreted_fallback(self):
        probability = Probability(0.5)
        assert probability.compile() == probability.evaluate

    def test_shift_compile_is_interpreted_fallback(self):
        shift = ShiftExpr("d")
        assert shift.compile() == shift.evaluate


class TestConditionMessageTypes:
    def test_type_equality(self):
        assert condition_message_types(parse_condition("type = FLOW_MOD")) == \
            frozenset({"FLOW_MOD"})

    def test_reversed_operands(self):
        condition = Comparison("=", Const("HELLO"),
                               Property(MessageProperty.TYPE))
        assert condition_message_types(condition) == frozenset({"HELLO"})

    def test_type_membership(self):
        types = condition_message_types(
            parse_condition("type in {FLOW_MOD, PACKET_IN}")
        )
        assert types == frozenset({"FLOW_MOD", "PACKET_IN"})

    def test_and_intersects(self):
        types = condition_message_types(
            parse_condition("type = FLOW_MOD and destination = s1")
        )
        assert types == frozenset({"FLOW_MOD"})
        assert condition_message_types(
            parse_condition("type = FLOW_MOD and type = HELLO")
        ) == frozenset()

    def test_or_unions_only_when_all_known(self):
        assert condition_message_types(
            parse_condition("type = FLOW_MOD or type = HELLO")
        ) == frozenset({"FLOW_MOD", "HELLO"})
        assert condition_message_types(
            parse_condition("type = FLOW_MOD or destination = s1")
        ) is None

    def test_unconstrained_conditions_return_none(self):
        for text in ("", "true", "destination = s1", "not type = HELLO",
                     "type != FLOW_MOD", "prob(0.5)", "length > 8"):
            assert condition_message_types(parse_condition(text)) is None, text
