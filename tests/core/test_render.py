"""Tests for the Fig. 10(a)-style textual renderer."""

import pytest

from repro.attacks import (
    connection_interruption_attack,
    counting_attack_deque,
    flow_mod_suppression_attack,
)
from repro.core.lang.render import render_attack_text


def test_suppression_rendering_matches_fig10a_shape():
    attack = flow_mod_suppression_attack([("c1", "s1"), ("c1", "s2"),
                                          ("c1", "s3"), ("c1", "s4")])
    text = render_attack_text(attack)
    assert "attack: flow-mod-suppression   (start = sigma1)" in text
    assert "sigma1:" in text
    assert "(start, absorbing)" in text
    assert "GAMMA_NoTLS" in text
    assert "lambda1 = type = FLOW_MOD" in text
    assert "DropMessage()" in text
    assert "(c1, s1), (c1, s2), (c1, s3), (c1, s4)" in text


def test_interruption_rendering_shows_all_three_states():
    attack = connection_interruption_attack(("c1", "s2"), "10.0.0.2",
                                            ["10.0.0.3", "10.0.0.4"])
    text = render_attack_text(attack)
    for state in ("sigma1:", "sigma2:", "sigma3:"):
        assert state in text
    assert "GoToState('sigma2')" in text
    assert "GoToState('sigma3')" in text
    assert "opt.match.nw_src = 10.0.0.2" in text
    assert "(absorbing)" in text  # sigma3


def test_storage_declarations_rendered():
    attack = counting_attack_deque(("c1", "s1"), n=3)
    text = render_attack_text(attack)
    assert "storage: counter = [0]" in text
    assert "front(counter) = 3" in text


def test_end_state_rendering():
    from repro.attacks import fuzzing_attack

    attack = fuzzing_attack(("c1", "s1"), max_messages=2)
    text = render_attack_text(attack)
    assert "(end)" in text
    assert "(no rules: all messages pass)" in text


def test_cli_show_command(tmp_path, capsys):
    from repro.cli import main
    from tests.test_cli import ATTACK_XML, SYSTEM_XML

    system = tmp_path / "system.xml"
    system.write_text(SYSTEM_XML)
    attack = tmp_path / "attack.xml"
    attack.write_text(ATTACK_XML)
    assert main(["show", "--system", str(system), "--attack", str(attack)]) == 0
    out = capsys.readouterr().out
    assert "attack: cli-drop" in out
    assert "lambda1 = type = FLOW_MOD" in out
