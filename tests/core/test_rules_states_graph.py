"""Unit tests for rules, attack states, the state graph, and Attack."""

import pytest

from repro.core.lang import (
    Attack,
    AttackState,
    AttackStateGraph,
    AttackValidationError,
    DropMessage,
    GoToState,
    GraphValidationError,
    PassMessage,
    Rule,
    RuleValidationError,
    TrueCondition,
    parse_condition,
)
from repro.core.model import (
    AttackModel,
    Capability,
    CapabilityViolation,
    SystemModel,
    gamma_no_tls,
    gamma_tls,
)

CONN = ("c1", "s1")


def simple_rule(name="r", connections=CONN, gamma=None, actions=None,
                condition=None):
    return Rule(
        name,
        connections,
        gamma if gamma is not None else gamma_no_tls(),
        condition or TrueCondition(),
        actions or [PassMessage()],
    )


class TestRule:
    def test_single_connection_normalized(self):
        rule = simple_rule(connections=CONN)
        assert rule.connections == frozenset({CONN})
        assert rule.binds(CONN)
        assert not rule.binds(("c1", "s9"))

    def test_multiple_connections(self):
        rule = simple_rule(connections=[("c1", "s1"), ("c1", "s2")])
        assert len(rule.connections) == 2

    def test_no_connections_rejected(self):
        with pytest.raises(RuleValidationError):
            simple_rule(connections=[])

    def test_no_actions_rejected(self):
        with pytest.raises(RuleValidationError):
            Rule("r", CONN, gamma_no_tls(), TrueCondition(), [])

    def test_gamma_must_cover_usage(self):
        # READMESSAGE-needing conditional with a γ that lacks it.
        with pytest.raises(RuleValidationError):
            simple_rule(
                gamma={Capability.PASS_MESSAGE},
                condition=parse_condition("type = FLOW_MOD"),
            )

    def test_gamma_must_cover_actions(self):
        with pytest.raises(RuleValidationError):
            simple_rule(gamma={Capability.PASS_MESSAGE}, actions=[DropMessage()])

    def test_required_capabilities_union(self):
        rule = simple_rule(
            condition=parse_condition("source = s1 and type = FLOW_MOD"),
            actions=[DropMessage()],
        )
        assert rule.required_capabilities() == {
            Capability.READ_MESSAGE_METADATA,
            Capability.READ_MESSAGE,
            Capability.DROP_MESSAGE,
        }

    def test_goto_targets(self):
        rule = simple_rule(actions=[PassMessage(), GoToState("s2"), GoToState("s3")])
        assert rule.goto_targets() == {"s2", "s3"}


class TestAttackState:
    def test_end_state_detection(self):
        assert AttackState("end", []).is_end
        assert not AttackState("x", [simple_rule()]).is_end

    def test_absorbing_detection(self):
        looping = AttackState("loop", [simple_rule(actions=[GoToState("loop")])])
        assert looping.is_absorbing()
        leaving = AttackState("leaving", [simple_rule(actions=[GoToState("other")])])
        assert not leaving.is_absorbing()

    def test_rules_for_connection(self):
        r1 = simple_rule("a", connections=("c1", "s1"))
        r2 = simple_rule("b", connections=("c1", "s2"))
        state = AttackState("x", [r1, r2])
        assert state.rules_for(("c1", "s1")) == [r1]


class TestAttackStateGraph:
    def build(self):
        s1 = AttackState("s1", [simple_rule(actions=[PassMessage(), GoToState("s2")])])
        s2 = AttackState("s2", [simple_rule(actions=[DropMessage()],
                                            gamma=gamma_no_tls())])
        s3 = AttackState("s3", [])
        # s2 -> s3 edge
        s2.rules.append(simple_rule("leave", actions=[GoToState("s3")]))
        return AttackStateGraph([s1, s2, s3], "s1")

    def test_edges_derived_from_gotos(self):
        graph = self.build()
        assert graph.successors("s1") == {"s2"}
        assert graph.successors("s2") == {"s3"}

    def test_absorbing_and_end(self):
        graph = self.build()
        assert graph.absorbing_states() == {"s2", "s3"} - {"s2"} | {"s3"}
        assert graph.end_states() == {"s3"}

    def test_reachability(self):
        graph = self.build()
        assert graph.reachable_states() == {"s1", "s2", "s3"}

    def test_missing_start_rejected(self):
        with pytest.raises(GraphValidationError):
            AttackStateGraph([AttackState("a", [])], "nope")

    def test_undefined_goto_target_rejected(self):
        bad = AttackState("a", [simple_rule(actions=[GoToState("ghost")])])
        with pytest.raises(GraphValidationError):
            AttackStateGraph([bad], "a")

    def test_unreachable_state_rejected(self):
        a = AttackState("a", [])
        b = AttackState("b", [])
        with pytest.raises(GraphValidationError):
            AttackStateGraph([a, b], "a")

    def test_duplicate_state_rejected(self):
        with pytest.raises(GraphValidationError):
            AttackStateGraph([AttackState("a", []), AttackState("a", [])], "a")

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphValidationError):
            AttackStateGraph([], "a")

    def test_edge_actions_attribute(self):
        graph = self.build()
        actions = graph.edge_actions("s1", "s2")
        assert any(isinstance(a, GoToState) for a in actions)

    def test_to_dot_renders(self):
        dot = self.build().to_dot()
        assert "digraph" in dot
        assert '"s1" -> "s2"' in dot
        assert "doublecircle" in dot  # the end state


class TestAttack:
    def test_single_state_minimum(self):
        attack = Attack("x", [AttackState("only", [simple_rule()])], "only")
        assert attack.start == "only"

    def test_storage_built_from_declarations(self):
        attack = Attack("x", [AttackState("s", [simple_rule()])], "s",
                        deque_declarations={"count": [0]})
        storage = attack.build_storage()
        assert storage.deque("count").examine_front() == 0
        # Fresh each time:
        storage.deque("count").shift()
        assert attack.build_storage().deque("count").examine_front() == 0

    def test_validate_against_tls_rejects_payload_rules(self, small_topology):
        system = SystemModel.from_topology(small_topology, ["c1"])
        model = AttackModel.tls_everywhere(system)
        rule = Rule("r", ("c1", "s1"), gamma_no_tls(),
                    parse_condition("type = FLOW_MOD"), [DropMessage()])
        attack = Attack("x", [AttackState("s", [rule])], "s")
        with pytest.raises(AttackValidationError):
            attack.validate_against(model)

    def test_validate_against_tls_accepts_metadata_rules(self, small_topology):
        system = SystemModel.from_topology(small_topology, ["c1"])
        model = AttackModel.tls_everywhere(system)
        rule = Rule("r", ("c1", "s1"), gamma_tls(),
                    parse_condition("source = s1"), [DropMessage()])
        Attack("x", [AttackState("s", [rule])], "s").validate_against(model)

    def test_validate_rejects_unknown_connection(self, small_topology):
        system = SystemModel.from_topology(small_topology, ["c1"])
        model = AttackModel.no_tls_everywhere(system)
        rule = simple_rule(connections=("c1", "s99"))
        attack = Attack("x", [AttackState("s", [rule])], "s")
        with pytest.raises(AttackValidationError):
            attack.validate_against(model)

    def test_validate_rejects_unattacked_connection(self, small_topology):
        system = SystemModel.from_topology(small_topology, ["c1"])
        model = AttackModel.compromised(system, [("c1", "s1")])
        rule = simple_rule(connections=("c1", "s2"))  # attacker not there
        attack = Attack("x", [AttackState("s", [rule])], "s")
        with pytest.raises(AttackValidationError):
            attack.validate_against(model)

    def test_summary(self):
        attack = Attack("demo", [AttackState("s", [simple_rule()])], "s")
        summary = attack.summary()
        assert summary["name"] == "demo"
        assert summary["states"] == ["s"]
        assert summary["rules"] == 1
