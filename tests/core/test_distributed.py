"""Tests for distributed injection (Section VIII-C)."""

import pytest

from repro.attacks import counting_attack_deque, flow_mod_suppression_attack
from repro.controllers import FloodlightController
from repro.core import AttackModel, SystemModel
from repro.core.injector import CoordinationMode, DistributedInjection
from repro.dataplane import Network, Topology
from repro.sim import SimulationEngine


def build_cluster(engine, attack_builder, mode, latency, instances=2):
    topo = Topology("dist")
    topo.add_host("h1")
    topo.add_host("h2")
    topo.add_switch("s1", datapath_id=1)
    topo.add_switch("s2", datapath_id=2)
    topo.add_link("h1", "s1")
    topo.add_link("s1", "s2")
    topo.add_link("h2", "s2")
    network = Network(engine, topo)
    controller = FloodlightController(engine)
    system = SystemModel.from_topology(topo, ["c1"])
    model = AttackModel.no_tls_everywhere(system)
    attack = attack_builder(system.connection_keys())
    names = [f"inj-{index}" for index in range(instances)]
    cluster = DistributedInjection(
        engine, model, attack, names,
        coordination_latency=latency, mode=mode,
    )
    assignment = {"inj-0": [("c1", "s1")], "inj-1": [("c1", "s2")]}
    cluster.install_slices(network, {"c1": controller}, assignment)
    network.start()
    return network, cluster


class TestTotalOrder:
    def test_semantics_match_centralized(self, engine):
        network, cluster = build_cluster(
            engine, flow_mod_suppression_attack,
            CoordinationMode.TOTAL_ORDER, latency=0.001,
        )
        engine.run(until=5.0)
        assert network.all_connected()
        run = network.host("h1").ping(network.host_ip("h2"), count=5)
        engine.run(until=30.0)
        assert run.result.received == 5  # Floodlight degrades, no DoS
        assert network.total_stat("flow_mods_received") == 0
        assert cluster.stats["messages_coordinated"] > 0
        assert cluster.stats["stale_decisions"] == 0

    def test_coordination_latency_inflates_control_path(self):
        rtts = {}
        for latency in (0.0, 0.005):
            engine = SimulationEngine()
            network, _cluster = build_cluster(
                engine, flow_mod_suppression_attack,
                CoordinationMode.TOTAL_ORDER, latency,
            )
            engine.run(until=5.0)
            run = network.host("h1").ping(network.host_ip("h2"), count=5)
            engine.run(until=60.0)
            assert run.result.received == 5
            rtts[latency] = run.result.median_rtt
        # Two coordination hops per interposed message; under suppression
        # every packet crosses the control plane, so RTT balloons.
        assert rtts[0.005] > rtts[0.0] + 0.02


class TestOptimistic:
    def test_low_latency_but_replica_divergence(self, engine):
        """Cross-connection counting diverges: each replica has its own
        view of the counter and the state, the Section VIII-C risk."""
        builder = lambda conns: counting_attack_deque(conns, n=3)  # noqa: E731
        network, cluster = build_cluster(
            engine, builder, CoordinationMode.OPTIMISTIC, latency=0.05,
        )
        engine.run(until=5.0)
        assert network.all_connected()
        network.host("h1").ping(network.host_ip("h2"), count=10)
        engine.run(until=60.0)
        states = cluster.replica_states()
        # Replicas each counted only their own connection's PACKET_INs;
        # depending on traffic split they may disagree with the global
        # total order — the framework surfaces it instead of hiding it.
        assert set(states) == {"inj-0", "inj-1"}
        assert cluster.stats["broadcasts"] >= 0  # transitions propagated

    def test_transitions_propagate_to_peers(self, engine):
        builder = lambda conns: counting_attack_deque(conns, n=1)  # noqa: E731
        network, cluster = build_cluster(
            engine, builder, CoordinationMode.OPTIMISTIC, latency=0.001,
        )
        engine.run(until=5.0)
        network.host("h1").ping(network.host_ip("h2"), count=2)
        engine.run(until=30.0)
        # n=1: the first PACKET_IN anywhere arms the attack; the broadcast
        # must bring every replica to "armed".
        assert set(cluster.replica_states().values()) == {"armed"}
        assert cluster.stats["broadcasts"] > 0

    def test_authoritative_state_timeline(self, engine):
        builder = lambda conns: counting_attack_deque(conns, n=1)  # noqa: E731
        network, cluster = build_cluster(
            engine, builder, CoordinationMode.OPTIMISTIC, latency=0.001,
        )
        engine.run(until=5.0)
        network.host("h1").ping(network.host_ip("h2"), count=1)
        engine.run(until=30.0)
        assert cluster.authoritative_state(0.0) == "counting"
        assert cluster.authoritative_state(engine.now) == "armed"
        transition_time = cluster.transition_log[-1][0]
        assert cluster.authoritative_state(transition_time - 0.001) == "counting"


class TestValidation:
    def test_empty_cluster_rejected(self, engine, small_topology):
        system = SystemModel.from_topology(small_topology, ["c1"])
        model = AttackModel.no_tls_everywhere(system)
        attack = flow_mod_suppression_attack(system.connection_keys())
        with pytest.raises(ValueError):
            DistributedInjection(engine, model, attack, [])

    def test_attack_validated_against_model(self, engine, small_topology):
        system = SystemModel.from_topology(small_topology, ["c1"])
        model = AttackModel.tls_everywhere(system)
        attack = flow_mod_suppression_attack(system.connection_keys())
        with pytest.raises(Exception):
            DistributedInjection(engine, model, attack, ["inj-0"])
