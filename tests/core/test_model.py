"""Unit tests for the attack model: capabilities, system model, threat."""

import pytest

from repro.core.model import (
    AttackModel,
    Capability,
    CapabilityMap,
    CapabilityViolation,
    ControlConnection,
    SystemModel,
    SystemModelError,
    gamma_all,
    gamma_no_tls,
    gamma_tls,
)
from repro.core.model.system import (
    ControllerSpec,
    DataPlaneEdge,
    HostSpec,
    SwitchSpec,
)
from repro.dataplane import Topology


def minimal_system(**overrides):
    kwargs = dict(
        controllers=[ControllerSpec("c1")],
        switches=[SwitchSpec("s1", 1, (1, 2))],
        hosts=[HostSpec("h1"), HostSpec("h2")],
        data_plane_edges=[
            DataPlaneEdge("h1", "s1", None, 1),
            DataPlaneEdge("s1", "h1", 1, None),
            DataPlaneEdge("h2", "s1", None, 2),
            DataPlaneEdge("s1", "h2", 2, None),
        ],
        control_connections=[ControlConnection("c1", "s1")],
    )
    kwargs.update(overrides)
    return SystemModel(**kwargs)


class TestCapabilities:
    def test_gamma_has_ten_capabilities(self):
        assert len(gamma_all()) == 10  # Table I

    def test_no_tls_is_everything(self):
        assert gamma_no_tls() == gamma_all()

    def test_tls_removes_exactly_five(self):
        removed = gamma_all() - gamma_tls()
        assert removed == {
            Capability.READ_MESSAGE,
            Capability.MODIFY_MESSAGE,
            Capability.FUZZ_MESSAGE,
            Capability.INJECT_NEW_MESSAGE,
            Capability.MODIFY_MESSAGE_METADATA,
        }

    def test_tls_keeps_interception_capabilities(self):
        # TLS still lets the attacker act on intercepted messages.
        for capability in (Capability.DROP_MESSAGE, Capability.DELAY_MESSAGE,
                           Capability.DUPLICATE_MESSAGE,
                           Capability.READ_MESSAGE_METADATA):
            assert capability in gamma_tls()

    def test_from_name_accepts_paper_spellings(self):
        assert Capability.from_name("DropMessage") == Capability.DROP_MESSAGE
        assert Capability.from_name("DROPMESSAGE") == Capability.DROP_MESSAGE
        assert Capability.from_name("drop_message") == Capability.DROP_MESSAGE
        assert (Capability.from_name("ReadMessageMetadata")
                == Capability.READ_MESSAGE_METADATA)

    def test_from_name_rejects_unknown(self):
        with pytest.raises(ValueError):
            Capability.from_name("TeleportMessage")


class TestCapabilityMap:
    def test_unassigned_connection_has_empty_gamma(self):
        cmap = CapabilityMap()
        assert cmap.gamma(("c1", "s1")) == frozenset()
        assert not cmap.allows(("c1", "s1"), Capability.DROP_MESSAGE)

    def test_assign_and_query(self):
        cmap = CapabilityMap()
        cmap.assign(("c1", "s1"), {Capability.DROP_MESSAGE})
        assert cmap.allows(("c1", "s1"), Capability.DROP_MESSAGE)
        assert not cmap.allows(("c1", "s1"), Capability.READ_MESSAGE)

    def test_reassign_replaces(self):
        cmap = CapabilityMap()
        cmap.assign(("c1", "s1"), gamma_no_tls())
        cmap.assign(("c1", "s1"), {Capability.PASS_MESSAGE})
        assert cmap.gamma(("c1", "s1")) == {Capability.PASS_MESSAGE}

    def test_uniform(self):
        connections = [("c1", "s1"), ("c1", "s2")]
        cmap = CapabilityMap.uniform(connections, gamma_tls())
        assert all(cmap.gamma(c) == gamma_tls() for c in connections)
        assert len(cmap) == 2

    def test_non_capability_rejected(self):
        cmap = CapabilityMap()
        with pytest.raises(TypeError):
            cmap.assign(("c1", "s1"), {"DropMessage"})


class TestSystemModel:
    def test_minimums_enforced(self):
        with pytest.raises(SystemModelError):
            minimal_system(controllers=[])
        with pytest.raises(SystemModelError):
            minimal_system(switches=[])
        with pytest.raises(SystemModelError):
            minimal_system(hosts=[HostSpec("h1")])

    def test_name_collision_rejected(self):
        with pytest.raises(SystemModelError):
            minimal_system(hosts=[HostSpec("h1"), HostSpec("s1")])

    def test_controllers_not_in_nd(self):
        system = minimal_system()
        assert "c1" not in system.data_plane_vertices()
        assert system.data_plane_vertices() == {"s1", "h1", "h2"}

    def test_edge_to_unknown_vertex_rejected(self):
        with pytest.raises(SystemModelError):
            minimal_system(
                data_plane_edges=[DataPlaneEdge("h1", "ghost", None, 1)]
            )

    def test_host_egress_port_must_be_null(self):
        with pytest.raises(SystemModelError):
            minimal_system(data_plane_edges=[DataPlaneEdge("h1", "s1", 5, 1)])

    def test_connection_to_unknown_switch_rejected(self):
        with pytest.raises(SystemModelError):
            minimal_system(control_connections=[ControlConnection("c1", "ghost")])

    def test_duplicate_connection_rejected(self):
        with pytest.raises(SystemModelError):
            minimal_system(
                control_connections=[
                    ControlConnection("c1", "s1"),
                    ControlConnection("c1", "s1"),
                ]
            )

    def test_neighbors(self):
        system = minimal_system()
        assert system.neighbors("s1") == ["h1", "h2"]
        assert system.neighbors("h1") == ["s1"]

    def test_memory_cells(self):
        cells = minimal_system().memory_cells()
        assert cells["nd_vertices"] == 3
        assert cells["nd_edges"] == 4
        assert cells["nd_attributes"] == 8
        assert cells["nc_relations"] == 1

    def test_from_topology_full_mesh_default(self, small_topology):
        system = SystemModel.from_topology(small_topology, ["c1", "c2"])
        # worst case: |C| x |S| connections
        assert len(system.control_connections) == 4

    def test_from_topology_explicit_connections(self, small_topology):
        system = SystemModel.from_topology(
            small_topology, ["c1"], control_connections=[("c1", "s1")]
        )
        assert system.connection_keys() == [("c1", "s1")]

    def test_host_ip_lookup(self, small_topology):
        system = SystemModel.from_topology(small_topology, ["c1"])
        assert str(system.host_ip("h1")) == "10.0.0.1"
        with pytest.raises(KeyError):
            system.host_ip("ghost")


class TestAttackModel:
    def test_no_tls_everywhere(self, small_topology):
        system = SystemModel.from_topology(small_topology, ["c1"])
        model = AttackModel.no_tls_everywhere(system)
        for connection in system.connection_keys():
            assert model.gamma(connection) == gamma_all()

    def test_tls_everywhere(self, small_topology):
        system = SystemModel.from_topology(small_topology, ["c1"])
        model = AttackModel.tls_everywhere(system)
        assert all(model.gamma(c) == gamma_tls() for c in system.connection_keys())

    def test_compromised_subset(self, small_topology):
        system = SystemModel.from_topology(small_topology, ["c1"])
        model = AttackModel.compromised(system, [("c1", "s1")])
        assert model.gamma(("c1", "s1")) == gamma_all()
        assert model.gamma(("c1", "s2")) == frozenset()
        assert model.attacked_connections() == [("c1", "s1")]

    def test_check_raises_with_missing_capabilities(self, small_topology):
        system = SystemModel.from_topology(small_topology, ["c1"])
        model = AttackModel.tls_everywhere(system)
        with pytest.raises(CapabilityViolation) as excinfo:
            model.check(("c1", "s1"), {Capability.READ_MESSAGE}, "test rule")
        assert Capability.READ_MESSAGE in excinfo.value.missing

    def test_check_passes_when_granted(self, small_topology):
        system = SystemModel.from_topology(small_topology, ["c1"])
        model = AttackModel.tls_everywhere(system)
        model.check(("c1", "s1"), {Capability.DROP_MESSAGE})  # no raise

    def test_capability_map_must_reference_nc(self, small_topology):
        system = SystemModel.from_topology(small_topology, ["c1"])
        cmap = CapabilityMap.uniform([("c9", "s1")], gamma_all())
        with pytest.raises(ValueError):
            AttackModel(system, cmap)
