"""Robustness: the compiler front-end only ever raises CompileError.

Malformed user input (truncated XML, wrong attribute types, hostile
strings) must surface as diagnostics, never as stray exceptions — the
compiler is the practitioner-facing boundary.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.compiler import (
    CompileError,
    parse_attack_model_xml,
    parse_attack_states_xml,
    parse_system_model_xml,
)

SYSTEM_XML = """
<system name="fuzz">
  <controllers><controller name="c1"/></controllers>
  <switches><switch name="s1" dpid="1" ports="1,2"/></switches>
  <hosts><host name="h1" ip="10.0.0.1"/><host name="h2" ip="10.0.0.2"/></hosts>
  <dataplane>
    <link a="h1" b="s1" b-port="1"/>
    <link a="h2" b="s1" b-port="2"/>
  </dataplane>
  <controlplane><connection controller="c1" switch="s1"/></controlplane>
</system>
"""


@pytest.fixture(scope="module")
def system():
    return parse_system_model_xml(SYSTEM_XML)


names = st.text(alphabet="abcs123_", min_size=0, max_size=8)
attr_values = st.one_of(names, st.integers(-5, 70000).map(str),
                        st.just(""), st.just("0x10"), st.just("??"))


@given(st.text(max_size=200))
@settings(max_examples=150)
def test_arbitrary_text_never_crashes_system_parser(text):
    try:
        parse_system_model_xml(text)
    except CompileError:
        pass


@given(names, attr_values, attr_values)
@settings(max_examples=150)
def test_structured_garbage_system_xml(name, dpid, ports):
    xml = f"""
    <system name="g">
      <controllers><controller name="c1"/></controllers>
      <switches><switch name="{name}" dpid="{dpid}" ports="{ports}"/></switches>
      <hosts><host name="h1"/><host name="h2"/></hosts>
      <dataplane><link a="h1" b="{name}" b-port="1"/></dataplane>
      <controlplane/>
    </system>
    """
    try:
        parse_system_model_xml(xml)
    except CompileError:
        pass


@given(st.text(max_size=120), names, attr_values)
@settings(max_examples=150)
def test_structured_garbage_attack_xml(condition, deque_name, seconds):
    # Escape XML-significant characters so we fuzz the *compiler*, not the
    # XML parser (raw text goes through the arbitrary-text test above).
    for raw, escaped in (("&", "&amp;"), ("<", "&lt;"), (">", "&gt;"),
                         ('"', "&quot;")):
        condition = condition.replace(raw, escaped)
    xml = f"""
    <attack name="g" start="s0">
      <deque name="{deque_name}"><value type="int">0</value></deque>
      <state name="s0">
        <rule name="r">
          <connections><all-connections/></connections>
          <gamma class="no-tls"/>
          <condition>{condition}</condition>
          <actions>
            <delay seconds="{seconds}"/>
            <drop/>
          </actions>
        </rule>
      </state>
    </attack>
    """
    system = parse_system_model_xml(SYSTEM_XML)
    try:
        parse_attack_states_xml(xml, system)
    except CompileError:
        pass


@given(st.sampled_from(["no-tls", "tls", "none", "bogus", ""]),
       st.sampled_from(["c1", "c9", ""]),
       st.sampled_from(["s1", "s9", ""]))
def test_attack_model_xml_variants(klass, controller, switch):
    xml = (f'<attackmodel><connection controller="{controller}" '
           f'switch="{switch}" class="{klass}"/></attackmodel>')
    system = parse_system_model_xml(SYSTEM_XML)
    try:
        model = parse_attack_model_xml(xml, system)
    except CompileError:
        return
    # Parsed successfully: the connection must have been legal.
    assert (controller, switch) == ("c1", "s1")
    assert klass in ("no-tls", "tls", "none", "")
