"""The executor's indexed fast lane vs the paper's linear scan.

The fast lane (``fast_path=True``, the default) must be observably
identical to the linear Algorithm 1 scan — same outgoing lists, same state
transitions, same fired rules — while skipping conditionals the
``(connection, coarse type)`` index proves cannot fire.
"""

from repro.core.injector import AttackExecutor
from repro.core.lang import (
    Attack,
    AttackState,
    DropMessage,
    DuplicateMessage,
    GoToState,
    PassMessage,
    Rule,
    parse_condition,
)
from repro.core.lang.properties import Direction, InterposedMessage
from repro.core.model import gamma_no_tls
from repro.openflow import EchoRequest, FlowMod, Hello, Match, PacketIn
from repro.sim import SimulationEngine

CONN = ("c1", "s1")
OTHER = ("c1", "s2")


def interposed(message, connection=CONN):
    """A proxy-style interposed message: raw bytes only, no parsed payload."""
    return InterposedMessage(connection, Direction.TO_SWITCH, 0.0, message.pack())


def rule(name, condition_text, actions, connections=CONN):
    return Rule(name, connections, gamma_no_tls(),
                parse_condition(condition_text), actions)


def make_executor(states, start, fast_path=True):
    attack = Attack("test", states, start)
    return AttackExecutor(attack, SimulationEngine(), fast_path=fast_path)


def type_rules(n, condition="type = FLOW_MOD"):
    return [rule(f"r{i}", condition, [PassMessage()]) for i in range(n)]


class TestIndexSkipsRules:
    def test_unmatched_type_skips_every_conditional(self):
        executor = make_executor([AttackState("s", type_rules(8))], "s")
        out = executor.handle_message(interposed(Hello()))
        assert len(out) == 1
        assert executor.stats["rules_evaluated"] == 0
        assert executor.stats["rules_skipped_by_index"] == 8

    def test_matching_type_evaluates_all_candidates(self):
        executor = make_executor([AttackState("s", type_rules(8))], "s")
        executor.handle_message(interposed(FlowMod(Match())))
        assert executor.stats["rules_evaluated"] == 8
        assert executor.stats["rules_fired"] == 8
        assert executor.stats["rules_skipped_by_index"] == 0

    def test_skipped_message_is_never_decoded(self):
        executor = make_executor([AttackState("s", type_rules(4))], "s")
        message = interposed(Hello())
        executor.handle_message(message)
        assert message._parsed is None  # header peek only

    def test_unbound_connection_passes_through(self):
        executor = make_executor([AttackState("s", type_rules(4))], "s")
        out = executor.handle_message(interposed(FlowMod(Match()), OTHER))
        assert len(out) == 1
        assert executor.stats["rules_evaluated"] == 0

    def test_wildcard_rules_always_evaluated(self):
        states = [AttackState("s", type_rules(4) + [
            rule("any", "destination = s1", [DropMessage()]),
        ])]
        executor = make_executor(states, "s")
        assert executor.handle_message(interposed(Hello())) == []
        assert executor.stats["rules_evaluated"] == 1
        assert executor.stats["rules_skipped_by_index"] == 4

    def test_undecodable_message_reaches_wildcard_rules_only(self):
        states = [AttackState("s", type_rules(4) + [
            rule("any", "length = 8", [DropMessage()]),
        ])]
        executor = make_executor(states, "s")
        garbage = InterposedMessage(CONN, Direction.TO_SWITCH, 0.0, b"\xff" * 8)
        assert executor.handle_message(garbage) == []
        assert executor.stats["rules_evaluated"] == 1

    def test_linear_mode_has_no_index_stats(self):
        executor = make_executor([AttackState("s", type_rules(8))], "s",
                                 fast_path=False)
        executor.handle_message(interposed(Hello()))
        assert executor.stats["rules_evaluated"] == 8
        assert executor.stats["rules_skipped_by_index"] == 0


class TestFastPathEquivalence:
    def scenario_states(self):
        return [
            AttackState("one", [
                rule("dup", "type = PACKET_IN", [DuplicateMessage()]),
                rule("drop", "type = FLOW_MOD and destination = s1",
                     [DropMessage()]),
                rule("advance", "type = ECHO_REQUEST",
                     [PassMessage(), GoToState("two")]),
            ]),
            AttackState("two", [
                rule("drop-all", "destination = s1", [DropMessage()]),
                rule("back", "type = HELLO", [GoToState("one")],
                     connections=OTHER),
            ]),
        ]

    def traffic(self):
        return [
            (Hello(xid=1), CONN),
            (FlowMod(Match(in_port=1), xid=2), CONN),
            (PacketIn(7, 24, 3, 0, b"\x00" * 24, xid=3), CONN),
            (EchoRequest(payload=b"x", xid=4), CONN),
            (Hello(xid=5), CONN),
            (Hello(xid=6), OTHER),
            (FlowMod(Match(in_port=2), xid=7), CONN),
        ]

    def run(self, fast_path):
        attack = Attack("equiv", self.scenario_states(), "one")
        executor = AttackExecutor(attack, SimulationEngine(),
                                  fast_path=fast_path)
        trace = []
        for message, connection in self.traffic():
            out = executor.handle_message(interposed(message, connection))
            trace.append(
                ([entry.message.raw for entry in out],
                 executor.current_state_name)
            )
        return trace, executor.stats

    def test_same_outputs_states_and_fired_rules(self):
        fast_trace, fast_stats = self.run(fast_path=True)
        linear_trace, linear_stats = self.run(fast_path=False)
        assert fast_trace == linear_trace
        for key in ("messages_processed", "rules_fired", "state_transitions",
                    "messages_dropped", "messages_injected"):
            assert fast_stats[key] == linear_stats[key], key
        # The point of the index: strictly fewer conditionals evaluated.
        assert fast_stats["rules_evaluated"] < linear_stats["rules_evaluated"]
        assert fast_stats["rules_skipped_by_index"] > 0
