"""Unit + property tests for the executable-code generator."""

import pytest
from hypothesis import given, strategies as st

from repro.attacks import (
    connection_interruption_attack,
    counting_attack_deque,
    flow_mod_suppression_attack,
    passthrough_attack,
    reordering_attack,
    replay_attack,
)
from repro.core.compiler import compile_attack_source, generate_attack_source
from repro.core.compiler.codegen import condition_to_text, expression_to_text
from repro.core.compiler.errors import CompileError
from repro.core.lang import (
    Attack,
    AttackState,
    Comparison,
    Const,
    EvalContext,
    InjectNewMessage,
    Rule,
    StorageSet,
    TrueCondition,
    parse_condition,
    parse_expression,
)
from repro.core.model import gamma_no_tls

CONNS = [("c1", "s1"), ("c1", "s2")]


def assert_same_attack(a, b):
    assert a.summary() == b.summary()
    for name in a.states:
        rules_a = a.states[name].rules
        rules_b = b.states[name].rules
        assert [r.name for r in rules_a] == [r.name for r in rules_b]
        for ra, rb in zip(rules_a, rules_b):
            assert ra.connections == rb.connections
            assert ra.gamma == rb.gamma
            assert ra.required_capabilities() == rb.required_capabilities()
            assert len(ra.actions) == len(rb.actions)
            assert [type(x).__name__ for x in ra.actions] == [
                type(x).__name__ for x in rb.actions
            ]


LIBRARY_BUILDERS = [
    lambda: passthrough_attack(CONNS),
    lambda: flow_mod_suppression_attack(CONNS),
    lambda: connection_interruption_attack(
        ("c1", "s2"), "10.0.0.2", ["10.0.0.3", "10.0.0.4"]
    ),
    lambda: reordering_attack(CONNS, batch_size=3),
    lambda: replay_attack(CONNS, batch_size=2, replay_copies=2),
    lambda: counting_attack_deque(CONNS, n=5),
]


@pytest.mark.parametrize("builder", LIBRARY_BUILDERS)
def test_library_attacks_roundtrip_through_codegen(builder):
    attack = builder()
    source = generate_attack_source(attack)
    rebuilt = compile_attack_source(source)
    assert_same_attack(attack, rebuilt)


def test_generated_source_is_plain_python():
    source = generate_attack_source(flow_mod_suppression_attack(CONNS))
    compiled = compile(source, "<test>", "exec")  # must be syntactically valid
    assert "build_attack" in source
    assert "ATTACK = build_attack()" in source


def test_conditions_unparse_and_reparse_equivalently():
    texts = [
        "type = FLOW_MOD",
        "source = s2 and type = HELLO",
        "not (type = HELLO) or destination in {s1, s2}",
        "opt.match.nw_src = 10.0.0.2 and opt.match.nw_dst in {10.0.0.3, 10.0.0.4}",
        "front(count) = 3",
        "true",
    ]
    for text in texts:
        cond = parse_condition(text)
        round_tripped = parse_condition(condition_to_text(cond))
        # Equivalence on representative contexts: no message, empty storage.
        ctx = EvalContext(None, StorageSet(), 0.0)
        assert cond.evaluate(ctx) == round_tripped.evaluate(ctx)
        assert cond.required_capabilities() == round_tripped.required_capabilities()


def test_expression_unparse():
    for text in ["front(c) + 1", "shift(q)", "msg", "10.0.0.2", "'hello world'"]:
        expr = parse_expression(text)
        assert expression_to_text(parse_expression(expression_to_text(expr))) == \
            expression_to_text(expr)


def test_factory_inject_not_serializable():
    rule = Rule(
        "r", CONNS[0], gamma_no_tls(), TrueCondition(),
        [InjectNewMessage(lambda ctx: None)],
    )
    attack = Attack("x", [AttackState("s", [rule])], "s")
    with pytest.raises(CompileError):
        generate_attack_source(attack)


def test_compile_rejects_broken_source():
    with pytest.raises(CompileError):
        compile_attack_source("raise RuntimeError('nope')")
    with pytest.raises(CompileError):
        compile_attack_source("ATTACK = 42")


@given(st.integers(min_value=1, max_value=30))
def test_counting_attack_roundtrips_for_any_n(n):
    attack = counting_attack_deque(CONNS, n=n)
    rebuilt = compile_attack_source(generate_attack_source(attack))
    assert rebuilt.summary() == attack.summary()
