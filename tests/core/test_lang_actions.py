"""Unit tests for attack actions and the message modifier semantics."""

import pytest

from repro.core.injector.modifier import MessageModifier
from repro.core.lang import (
    AppendAction,
    Const,
    DelayMessage,
    DropMessage,
    DuplicateMessage,
    EvalContext,
    ExamineFront,
    FuzzMessage,
    GoToState,
    InjectNewMessage,
    MessageRef,
    ModifyMessage,
    ModifyMessageMetadata,
    PassMessage,
    PopAction,
    PrependAction,
    ReadMessage,
    ReadMessageMetadata,
    ShiftAction,
    ShiftExpr,
    Sleep,
    StorageSet,
    Sum,
    SysCmd,
)
from repro.core.lang.actions import ActionContext, OutgoingMessage
from repro.core.lang.properties import Direction, InterposedMessage
from repro.core.model import Capability
from repro.openflow import EchoRequest, FlowMod, Hello, Match, parse_message
from repro.sim import SeededRng

CONN = ("c1", "s2")


def interposed(message, direction=Direction.TO_SWITCH):
    return InterposedMessage(CONN, direction, 0.0, message.pack(), message)


class Harness:
    """Minimal ActionContext factory with recording hooks."""

    def __init__(self, message):
        self.message = message
        self.storage = StorageSet()
        self.out = [OutgoingMessage(message)]
        self.gotos = []
        self.sleeps = []
        self.syscmds = []
        self.records = []
        self.ctx = ActionContext(
            EvalContext(message, self.storage, 1.0),
            self.out,
            goto=self.gotos.append,
            sleep=self.sleeps.append,
            syscmd=lambda host, cmd: self.syscmds.append((host, cmd)),
            record=lambda kind, data: self.records.append((kind, data)),
            rng=SeededRng(1),
        )


class TestCapabilityActions:
    def test_pass_keeps_message(self):
        h = Harness(interposed(Hello()))
        PassMessage().apply(h.ctx)
        assert len(h.out) == 1

    def test_drop_removes_from_out(self):
        h = Harness(interposed(Hello()))
        DropMessage().apply(h.ctx)
        assert h.out == []
        assert h.records[0][0] == "drop_message"

    def test_drop_twice_is_idempotent(self):
        h = Harness(interposed(Hello()))
        DropMessage().apply(h.ctx)
        DropMessage().apply(h.ctx)
        assert h.out == []

    def test_delay_accumulates(self):
        h = Harness(interposed(Hello()))
        DelayMessage(0.5).apply(h.ctx)
        DelayMessage(0.25).apply(h.ctx)
        assert h.out[0].delay == pytest.approx(0.75)

    def test_delay_expression(self):
        h = Harness(interposed(Hello()))
        h.storage.declare("d", [2])
        DelayMessage(ExamineFront("d")).apply(h.ctx)
        assert h.out[0].delay == 2.0

    def test_duplicate_appends_copies(self):
        h = Harness(interposed(Hello()))
        DuplicateMessage(copies=2).apply(h.ctx)
        assert len(h.out) == 3
        assert all(e.injected for e in h.out[1:])
        assert h.out[1].message.raw == h.out[0].message.raw
        assert h.out[1].message.msg_id != h.out[0].message.msg_id

    def test_duplicate_requires_positive_copies(self):
        with pytest.raises(ValueError):
            DuplicateMessage(copies=0)

    def test_read_metadata_records_and_stores(self):
        h = Harness(interposed(Hello()))
        ReadMessageMetadata(store_to="log").apply(h.ctx)
        assert h.records[0][0] == "read_message_metadata"
        stored = h.storage.deque("log").examine_front()
        assert stored["source"] == "c1"

    def test_modify_metadata_overrides_destination(self):
        h = Harness(interposed(Hello()))
        ModifyMessageMetadata("destination", "s9").apply(h.ctx)
        assert h.message.destination == "s9"

    def test_modify_metadata_rejects_unknown_field(self):
        with pytest.raises(ValueError):
            ModifyMessageMetadata("color", "red")

    def test_fuzz_changes_bytes_deterministically(self):
        h1 = Harness(interposed(EchoRequest(payload=b"\x00" * 32, xid=1)))
        before = h1.message.raw
        FuzzMessage(bit_flips=8).apply(h1.ctx)
        assert h1.message.raw != before
        assert len(h1.message.raw) == len(before)

    def test_fuzz_preserve_header(self):
        h = Harness(interposed(EchoRequest(payload=b"\x00" * 32, xid=1)))
        before = h.message.raw
        FuzzMessage(bit_flips=4, preserve_header=True).apply(h.ctx)
        assert h.message.raw[:8] == before[:8]

    def test_read_message_stores_replayable_copy(self):
        h = Harness(interposed(Hello()))
        ReadMessage(store_to="q").apply(h.ctx)
        stored = h.storage.deque("q").examine_front()
        assert isinstance(stored, InterposedMessage)
        assert stored.raw == h.message.raw

    def test_modify_message_field(self):
        h = Harness(interposed(FlowMod(Match(in_port=1), idle_timeout=5)))
        ModifyMessage("idle_timeout", 0).apply(h.ctx)
        assert h.message.get_type_option("idle_timeout") == 0
        # Re-encoded bytes parse back with the new value.
        assert parse_message(h.message.raw).idle_timeout == 0

    def test_modify_message_match_field(self):
        h = Harness(interposed(FlowMod(Match(in_port=1))))
        ModifyMessage("match.nw_src", "10.0.0.9").apply(h.ctx)
        assert h.message.get_type_option("match.nw_src") == "10.0.0.9"

    def test_modify_unknown_field_is_noop(self):
        h = Harness(interposed(Hello()))
        ModifyMessage("idle_timeout", 0).apply(h.ctx)
        assert h.records == []

    def test_inject_from_stored_message(self):
        h = Harness(interposed(Hello()))
        h.storage.declare("q", [interposed(EchoRequest(payload=b"z", xid=9))])
        InjectNewMessage(ShiftExpr("q")).apply(h.ctx)
        assert len(h.out) == 2
        assert h.out[1].injected
        assert h.out[1].message.message_type_name == "ECHO_REQUEST"

    def test_inject_literal_openflow_message(self):
        h = Harness(interposed(Hello()))
        InjectNewMessage(EchoRequest(payload=b"new", xid=5)).apply(h.ctx)
        assert h.out[1].message.message_type_name == "ECHO_REQUEST"
        assert h.out[1].message.connection == CONN

    def test_inject_from_factory(self):
        h = Harness(interposed(Hello()))
        InjectNewMessage(lambda ctx: EchoRequest(payload=b"f", xid=1)).apply(h.ctx)
        assert len(h.out) == 2

    def test_inject_none_is_noop(self):
        h = Harness(interposed(Hello()))
        InjectNewMessage(ExamineFront("empty")).apply(h.ctx)
        assert len(h.out) == 1


class TestStorageActions:
    def test_prepend_append_shift_pop(self):
        h = Harness(interposed(Hello()))
        AppendAction("d", Const(1)).apply(h.ctx)
        AppendAction("d", Const(2)).apply(h.ctx)
        PrependAction("d", Const(0)).apply(h.ctx)
        assert h.storage.deque("d").snapshot() == [0, 1, 2]
        ShiftAction("d").apply(h.ctx)
        PopAction("d").apply(h.ctx)
        assert h.storage.deque("d").snapshot() == [1]

    def test_shift_pop_on_empty_are_safe(self):
        h = Harness(interposed(Hello()))
        ShiftAction("empty").apply(h.ctx)
        PopAction("empty").apply(h.ctx)

    def test_store_current_message(self):
        h = Harness(interposed(Hello()))
        AppendAction("msgs", MessageRef()).apply(h.ctx)
        assert h.storage.deque("msgs").examine_front() is h.message

    def test_counter_increment(self):
        h = Harness(interposed(Hello()))
        h.storage.declare("count", [0])
        increment = PrependAction("count", Sum(ShiftExpr("count"), [("+", Const(1))]))
        increment.apply(h.ctx)
        increment.apply(h.ctx)
        assert h.storage.deque("count").examine_front() == 2
        assert len(h.storage.deque("count")) == 1


class TestFrameworkActions:
    def test_goto(self):
        h = Harness(interposed(Hello()))
        GoToState("sigma2").apply(h.ctx)
        assert h.gotos == ["sigma2"]

    def test_sleep(self):
        h = Harness(interposed(Hello()))
        Sleep(2.5).apply(h.ctx)
        assert h.sleeps == [2.5]
        with pytest.raises(ValueError):
            Sleep(-1)

    def test_syscmd(self):
        h = Harness(interposed(Hello()))
        SysCmd("h6", "iperf -s").apply(h.ctx)
        assert h.syscmds == [("h6", "iperf -s")]
        assert h.records[0][0] == "syscmd"


class TestCapabilityRequirements:
    @pytest.mark.parametrize("action,capability", [
        (PassMessage(), Capability.PASS_MESSAGE),
        (DropMessage(), Capability.DROP_MESSAGE),
        (DelayMessage(1.0), Capability.DELAY_MESSAGE),
        (DuplicateMessage(), Capability.DUPLICATE_MESSAGE),
        (ReadMessageMetadata(), Capability.READ_MESSAGE_METADATA),
        (ModifyMessageMetadata("destination", "x"), Capability.MODIFY_MESSAGE_METADATA),
        (FuzzMessage(), Capability.FUZZ_MESSAGE),
        (ReadMessage(), Capability.READ_MESSAGE),
        (ModifyMessage("idle_timeout", 0), Capability.MODIFY_MESSAGE),
        (InjectNewMessage(ExamineFront("q")), Capability.INJECT_NEW_MESSAGE),
    ])
    def test_table1_mapping(self, action, capability):
        assert capability in action.required_capabilities()

    def test_framework_actions_require_nothing(self):
        for action in (GoToState("x"), Sleep(1), SysCmd("h", "c"),
                       ShiftAction("d"), PopAction("d"),
                       PrependAction("d", Const(1))):
            assert action.required_capabilities() == frozenset()

    def test_argument_expressions_add_requirements(self):
        from repro.core.lang import Property
        from repro.core.lang.properties import MessageProperty

        action = AppendAction("d", Property(MessageProperty.TYPE))
        assert Capability.READ_MESSAGE in action.required_capabilities()


class TestMessageModifier:
    def test_counts_by_action(self):
        modifier = MessageModifier()
        h = Harness(interposed(Hello()))
        modifier.apply(DropMessage(), h.ctx)
        modifier.apply(PassMessage(), h.ctx)
        modifier.apply(PassMessage(), h.ctx)
        assert modifier.actions_applied == 3
        assert modifier.by_action == {"DropMessage": 1, "PassMessage": 2}
