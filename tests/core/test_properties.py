"""Unit tests for message properties and the interposed-message wrapper."""

import pytest

from repro.core.lang.properties import (
    Direction,
    InterposedMessage,
    MessageProperty,
    METADATA_PROPERTIES,
)
from repro.netlib import (
    EtherType,
    EthernetFrame,
    IcmpEcho,
    IpProtocol,
    Ipv4Address,
    Ipv4Packet,
    MacAddress,
)
from repro.openflow import (
    EchoRequest,
    ErrorMessage,
    FeaturesReply,
    FlowMod,
    FlowRemoved,
    Hello,
    Match,
    OutputAction,
    PacketIn,
    PacketOut,
    PhyPort,
    Port,
    PortStatus,
)

CONN = ("c1", "s2")


def interpose(message, direction=Direction.TO_SWITCH, at=1.5):
    return InterposedMessage(CONN, direction, at, message.pack(), message)


def icmp_frame():
    icmp = IcmpEcho.request(1, 1)
    ip = Ipv4Packet(Ipv4Address("10.0.0.2"), Ipv4Address("10.0.0.3"),
                    IpProtocol.ICMP, icmp.pack())
    return EthernetFrame(MacAddress(3), MacAddress(2), EtherType.IPV4,
                         ip.pack()).pack()


class TestIdentityProperties:
    def test_to_switch_direction(self):
        msg = interpose(Hello(), Direction.TO_SWITCH)
        assert msg.source == "c1"
        assert msg.destination == "s2"

    def test_to_controller_direction(self):
        msg = interpose(Hello(), Direction.TO_CONTROLLER)
        assert msg.source == "s2"
        assert msg.destination == "c1"

    def test_property_accessors(self):
        msg = interpose(Hello(), at=2.5)
        assert msg.get_property(MessageProperty.TIMESTAMP) == 2.5
        assert msg.get_property(MessageProperty.LENGTH) == 8
        assert msg.get_property(MessageProperty.TYPE) == "HELLO"
        assert msg.get_property(MessageProperty.SOURCE) == "c1"
        assert isinstance(msg.get_property(MessageProperty.ID), int)

    def test_ids_unique(self):
        assert interpose(Hello()).msg_id != interpose(Hello()).msg_id

    def test_metadata_override(self):
        msg = interpose(Hello())
        msg.metadata_overrides["destination"] = "s9"
        assert msg.destination == "s9"

    def test_property_from_name(self):
        assert MessageProperty.from_name("MESSAGESOURCE") == MessageProperty.SOURCE
        assert MessageProperty.from_name("type") == MessageProperty.TYPE
        with pytest.raises(ValueError):
            MessageProperty.from_name("color")

    def test_metadata_classification(self):
        assert MessageProperty.TYPE not in METADATA_PROPERTIES
        assert MessageProperty.SOURCE in METADATA_PROPERTIES
        assert MessageProperty.LENGTH in METADATA_PROPERTIES


class TestPayloadDecoding:
    def test_lazy_parse_from_raw(self):
        raw = FlowMod(Match(in_port=1)).pack()
        msg = InterposedMessage(CONN, Direction.TO_SWITCH, 0.0, raw)
        assert msg.message_type_name == "FLOW_MOD"

    def test_garbage_parses_as_none(self):
        msg = InterposedMessage(CONN, Direction.TO_SWITCH, 0.0, b"\xff" * 16)
        assert msg.parsed is None
        assert msg.message_type_name is None
        assert msg.get_property(MessageProperty.TYPE) is None

    def test_copy_gets_new_id_same_bytes(self):
        msg = interpose(Hello())
        replica = msg.copy()
        assert replica.raw == msg.raw
        assert replica.msg_id != msg.msg_id

    def test_replace_payload_reencodes(self):
        msg = interpose(FlowMod(Match(in_port=1), idle_timeout=5))
        modified = msg.parsed
        modified.idle_timeout = 99
        msg.replace_payload(modified)
        assert msg.get_type_option("idle_timeout") == 99


class TestTypeOptions:
    def test_flow_mod_options(self):
        flow_mod = FlowMod(
            Match(in_port=1, nw_src=Ipv4Address("10.0.0.2"),
                  nw_dst=Ipv4Address("10.0.0.3")),
            idle_timeout=5, hard_timeout=30, priority=7,
            actions=[OutputAction(2), OutputAction(3)],
        )
        msg = interpose(flow_mod)
        assert msg.get_type_option("command") == "ADD"
        assert msg.get_type_option("idle_timeout") == 5
        assert msg.get_type_option("hard_timeout") == 30
        assert msg.get_type_option("priority") == 7
        assert msg.get_type_option("match.nw_src") == "10.0.0.2"
        assert msg.get_type_option("match.nw_dst") == "10.0.0.3"
        assert msg.get_type_option("match.in_port") == 1
        assert msg.get_type_option("n_actions") == 2
        assert msg.get_type_option("output_ports") == (2, 3)

    def test_wildcarded_match_field_is_none(self):
        """The Table II Ryu anomaly: absent options evaluate to None."""
        msg = interpose(FlowMod(Match(in_port=1)))  # L2-only style match
        assert msg.get_type_option("match.nw_src") is None
        assert msg.get_type_option("match.nw_dst") is None

    def test_packet_in_options_including_inner_packet(self):
        packet_in = PacketIn(7, 100, 3, 0, icmp_frame())
        msg = interpose(packet_in, Direction.TO_CONTROLLER)
        assert msg.get_type_option("in_port") == 3
        assert msg.get_type_option("reason") == "NO_MATCH"
        assert msg.get_type_option("packet.nw_src") == "10.0.0.2"
        assert msg.get_type_option("packet.dl_type") == 0x0800

    def test_packet_out_options(self):
        msg = interpose(PacketOut(in_port=2, actions=[OutputAction(Port.FLOOD)]))
        assert msg.get_type_option("in_port") == 2
        assert msg.get_type_option("output_ports") == (int(Port.FLOOD),)

    def test_flow_removed_options(self):
        msg = interpose(FlowRemoved(Match(in_port=1), 0, 5, 0, packet_count=9))
        assert msg.get_type_option("reason") == "IDLE_TIMEOUT"
        assert msg.get_type_option("packet_count") == 9
        assert msg.get_type_option("match.in_port") == 1

    def test_features_reply_options(self):
        reply = FeaturesReply(0x2, ports=[PhyPort(1, MacAddress(1), "e1")])
        msg = interpose(reply, Direction.TO_CONTROLLER)
        assert msg.get_type_option("datapath_id") == 2
        assert msg.get_type_option("n_ports") == 1

    def test_error_and_echo_and_port_status_options(self):
        assert interpose(ErrorMessage(1, 6)).get_type_option("code") == 6
        assert interpose(EchoRequest(payload=b"abc")).get_type_option(
            "payload_len") == 3
        status = PortStatus(0, PhyPort(3, MacAddress(3), "e3"))
        assert interpose(status).get_type_option("port_no") == 3

    def test_unknown_option_is_none(self):
        msg = interpose(Hello())
        assert msg.get_type_option("nonexistent") is None
        assert msg.get_type_option("match.bogus_field") is None

    def test_summaries(self):
        msg = interpose(Hello())
        meta = msg.metadata_summary()
        assert set(meta) == {"id", "source", "destination", "timestamp", "length"}
        payload = msg.payload_summary()
        assert payload["type"] == "HELLO"
