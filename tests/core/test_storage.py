"""Unit + property tests for the deque storage Δ."""

from collections import deque as model_deque

import pytest
from hypothesis import given, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.lang.storage import Deque, DequeEmptyError, StorageSet


class TestDeque:
    def test_queue_fifo_via_append_shift(self):
        d = Deque("q")
        d.append(1)
        d.append(2)
        d.append(3)
        assert [d.shift(), d.shift(), d.shift()] == [1, 2, 3]

    def test_stack_lifo_via_prepend_shift(self):
        d = Deque("stack")
        d.prepend(1)
        d.prepend(2)
        d.prepend(3)
        assert [d.shift(), d.shift(), d.shift()] == [3, 2, 1]

    def test_examines_do_not_remove(self):
        d = Deque("d", [1, 2, 3])
        assert d.examine_front() == 1
        assert d.examine_end() == 3
        assert len(d) == 3

    def test_examine_empty_returns_none(self):
        d = Deque("d")
        assert d.examine_front() is None
        assert d.examine_end() is None

    def test_remove_from_empty_raises(self):
        d = Deque("d")
        with pytest.raises(DequeEmptyError):
            d.shift()
        with pytest.raises(DequeEmptyError):
            d.pop()

    def test_counter_idiom(self):
        """Section VIII-B: PREPEND(δ, SHIFT(δ)+1) with initial [0]."""
        counter = Deque("counter", [0])
        for expected in range(1, 6):
            counter.prepend(counter.shift() + 1)
            assert counter.examine_front() == expected
            assert len(counter) == 1  # O(1) memory

    def test_operation_counters(self):
        d = Deque("d")
        d.prepend(1)
        d.append(2)
        assert d.total_prepends == 1
        assert d.total_appends == 1

    def test_clear(self):
        d = Deque("d", [1, 2])
        d.clear()
        assert len(d) == 0


class TestStorageSet:
    def test_deque_created_on_demand(self):
        storage = StorageSet()
        assert "x" not in storage
        d = storage.deque("x")
        assert "x" in storage
        assert storage.deque("x") is d

    def test_declare_with_initial(self):
        storage = StorageSet()
        storage.declare("counter", [0])
        assert storage.deque("counter").examine_front() == 0

    def test_duplicate_declare_rejected(self):
        storage = StorageSet()
        storage.declare("x")
        with pytest.raises(ValueError):
            storage.declare("x")

    def test_reset_clears_contents_keeps_deques(self):
        storage = StorageSet()
        storage.declare("x", [1, 2])
        storage.reset()
        assert "x" in storage
        assert len(storage.deque("x")) == 0

    def test_names_sorted(self):
        storage = StorageSet()
        storage.declare("b")
        storage.declare("a")
        assert storage.names() == ["a", "b"]


class DequeMachine(RuleBasedStateMachine):
    """The Deque must behave exactly like collections.deque."""

    def __init__(self):
        super().__init__()
        self.actual = Deque("sut")
        self.model = model_deque()

    @rule(value=st.integers())
    def prepend(self, value):
        self.actual.prepend(value)
        self.model.appendleft(value)

    @rule(value=st.integers())
    def append(self, value):
        self.actual.append(value)
        self.model.append(value)

    @rule()
    def shift(self):
        if self.model:
            assert self.actual.shift() == self.model.popleft()
        else:
            with pytest.raises(DequeEmptyError):
                self.actual.shift()

    @rule()
    def pop(self):
        if self.model:
            assert self.actual.pop() == self.model.pop()
        else:
            with pytest.raises(DequeEmptyError):
                self.actual.pop()

    @invariant()
    def same_contents(self):
        assert self.actual.snapshot() == list(self.model)
        assert len(self.actual) == len(self.model)
        expected_front = self.model[0] if self.model else None
        assert self.actual.examine_front() == expected_front


TestDequeAgainstModel = DequeMachine.TestCase
