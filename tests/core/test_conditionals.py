"""Unit tests for conditional expressions and capability accounting."""

import pytest

from repro.core.lang import (
    And,
    Comparison,
    Const,
    EvalContext,
    ExamineFront,
    MessageRef,
    Not,
    Or,
    Property,
    ShiftExpr,
    StorageSet,
    Sum,
    TrueCondition,
    TypeOption,
)
from repro.core.lang.conditionals import smart_eq
from repro.core.lang.properties import Direction, InterposedMessage, MessageProperty
from repro.core.model import Capability
from repro.netlib import Ipv4Address
from repro.openflow import FlowMod, Hello, Match


def ctx_for(message=None, storage=None, now=0.0):
    return EvalContext(message, storage or StorageSet(), now)


def interposed(message, direction=Direction.TO_SWITCH):
    return InterposedMessage(("c1", "s2"), direction, 0.0, message.pack(), message)


class TestSmartEq:
    def test_direct_equality(self):
        assert smart_eq(1, 1)
        assert not smart_eq(1, 2)

    def test_string_vs_address_object(self):
        assert smart_eq(Ipv4Address("10.0.0.2"), "10.0.0.2")
        assert smart_eq("10.0.0.2", Ipv4Address("10.0.0.2"))

    def test_number_vs_numeric_string(self):
        assert smart_eq(5, "5")
        assert not smart_eq(5, "five")

    def test_none_only_equals_none(self):
        assert smart_eq(None, None)
        assert not smart_eq(None, "x")
        assert not smart_eq(0, None)

    def test_bool_not_conflated_with_int(self):
        assert not smart_eq(True, 1) or smart_eq(True, 1) is True
        # Explicit: bool vs number with different spelling must not match
        assert not smart_eq(True, "1")


class TestComparisons:
    def test_type_equality(self):
        msg = interposed(Hello())
        cond = Comparison("=", Property(MessageProperty.TYPE), Const("HELLO"))
        assert cond.evaluate(ctx_for(msg))
        cond2 = Comparison("=", Property(MessageProperty.TYPE), Const("FLOW_MOD"))
        assert not cond2.evaluate(ctx_for(msg))

    def test_not_equal(self):
        msg = interposed(Hello())
        cond = Comparison("!=", Property(MessageProperty.TYPE), Const("FLOW_MOD"))
        assert cond.evaluate(ctx_for(msg))

    def test_membership(self):
        msg = interposed(Hello(), Direction.TO_SWITCH)
        cond = Comparison(
            "in", Property(MessageProperty.DESTINATION), Const(frozenset({"s1", "s2"}))
        )
        assert cond.evaluate(ctx_for(msg))
        cond2 = Comparison(
            "in", Property(MessageProperty.DESTINATION), Const(frozenset({"s9"}))
        )
        assert not cond2.evaluate(ctx_for(msg))

    def test_membership_uses_smart_eq(self):
        flow_mod = FlowMod(Match(nw_dst=Ipv4Address("10.0.0.3")))
        msg = interposed(flow_mod)
        cond = Comparison(
            "in", TypeOption("match.nw_dst"),
            Const(frozenset({"10.0.0.3", "10.0.0.4"})),
        )
        assert cond.evaluate(ctx_for(msg))

    def test_membership_on_non_iterable_is_false(self):
        cond = Comparison("in", Const(1), Const(2))
        assert not cond.evaluate(ctx_for())

    def test_bad_operator_rejected(self):
        with pytest.raises(ValueError):
            Comparison(">=", Const(1), Const(2))

    def test_ordering_operators(self):
        assert Comparison("<", Const(1), Const(2)).evaluate(ctx_for())
        assert Comparison(">", Const(3), Const(2)).evaluate(ctx_for())
        assert not Comparison(">", Const(1), Const(2)).evaluate(ctx_for())
        # Numeric strings order numerically; non-numerics never order.
        assert Comparison("<", Const("9"), Const(10)).evaluate(ctx_for())
        assert not Comparison("<", Const("abc"), Const(10)).evaluate(ctx_for())

    def test_no_message_evaluates_to_none_properties(self):
        cond = Comparison("=", Property(MessageProperty.TYPE), Const("HELLO"))
        assert not cond.evaluate(ctx_for(message=None))


class TestConnectives:
    def test_and_or_not(self):
        true = TrueCondition()
        false = Not(TrueCondition())
        assert And(true, true).evaluate(ctx_for())
        assert not And(true, false).evaluate(ctx_for())
        assert Or(false, true).evaluate(ctx_for())
        assert not Or(false, false).evaluate(ctx_for())
        assert Not(false).evaluate(ctx_for())

    def test_empty_and_is_true_empty_or_is_false(self):
        assert And().evaluate(ctx_for())
        assert not Or().evaluate(ctx_for())


class TestStorageExpressions:
    def test_examine_front_in_condition(self):
        storage = StorageSet()
        storage.declare("count", [3])
        cond = Comparison("=", ExamineFront("count"), Const(3))
        assert cond.evaluate(ctx_for(storage=storage))

    def test_sum_with_shift_side_effect(self):
        """The counter idiom: SHIFT(δ) + 1 mutates the deque."""
        storage = StorageSet()
        storage.declare("count", [4])
        expr = Sum(ShiftExpr("count"), [("+", Const(1))])
        assert expr.evaluate(ctx_for(storage=storage)) == 5
        assert len(storage.deque("count")) == 0  # shifted out

    def test_sum_treats_none_as_zero(self):
        expr = Sum(ExamineFront("empty"), [("+", Const(1))])
        assert expr.evaluate(ctx_for()) == 1

    def test_subtraction(self):
        expr = Sum(Const(10), [("-", Const(3)), ("+", Const(1))])
        assert expr.evaluate(ctx_for()) == 8

    def test_message_ref(self):
        msg = interposed(Hello())
        assert MessageRef().evaluate(ctx_for(msg)) is msg


class TestCapabilityAccounting:
    def test_metadata_property_needs_metadata_read(self):
        cond = Comparison("=", Property(MessageProperty.SOURCE), Const("s2"))
        assert cond.required_capabilities() == {Capability.READ_MESSAGE_METADATA}

    def test_type_needs_payload_read(self):
        cond = Comparison("=", Property(MessageProperty.TYPE), Const("HELLO"))
        assert cond.required_capabilities() == {Capability.READ_MESSAGE}

    def test_type_option_needs_payload_read(self):
        cond = Comparison("=", TypeOption("match.nw_src"), Const("10.0.0.2"))
        assert Capability.READ_MESSAGE in cond.required_capabilities()

    def test_connectives_union_requirements(self):
        cond = And(
            Comparison("=", Property(MessageProperty.SOURCE), Const("s2")),
            Or(Comparison("=", Property(MessageProperty.TYPE), Const("HELLO"))),
        )
        assert cond.required_capabilities() == {
            Capability.READ_MESSAGE_METADATA,
            Capability.READ_MESSAGE,
        }

    def test_constants_and_deques_need_nothing(self):
        assert Comparison("=", ExamineFront("x"), Const(1)).required_capabilities() == frozenset()
        assert TrueCondition().required_capabilities() == frozenset()
