"""Unit tests for the compiler: XML parsers and diagnostics."""

import pytest

from repro.core.compiler import (
    CompileError,
    parse_attack_model_xml,
    parse_attack_states_xml,
    parse_system_model_xml,
)
from repro.core.model import Capability, gamma_no_tls, gamma_tls

SYSTEM_XML = """
<system name="demo">
  <controllers><controller name="c1" address="10.1.0.1"/></controllers>
  <switches>
    <switch name="s1" dpid="1" ports="1,2,3"/>
    <switch name="s2" dpid="0x10" ports="1,2"/>
  </switches>
  <hosts>
    <host name="h1" mac="00:00:00:00:00:01" ip="10.0.0.1"/>
    <host name="h2" ip="10.0.0.2"/>
  </hosts>
  <dataplane>
    <link a="h1" b="s1" b-port="1"/>
    <link a="s1" a-port="3" b="s2" b-port="1"/>
    <link a="h2" b="s2" b-port="2"/>
  </dataplane>
  <controlplane>
    <connection controller="c1" switch="s1"/>
    <connection controller="c1" switch="s2"/>
  </controlplane>
</system>
"""


@pytest.fixture
def system():
    return parse_system_model_xml(SYSTEM_XML)


class TestSystemParser:
    def test_parses_components(self, system):
        assert set(system.controllers) == {"c1"}
        assert system.controllers["c1"].address == "10.1.0.1"
        assert system.switches["s1"].ports == (1, 2, 3)
        assert system.switches["s2"].datapath_id == 0x10
        assert str(system.hosts["h1"].mac) == "00:00:00:00:00:01"
        assert str(system.hosts["h2"].ip) == "10.0.0.2"

    def test_links_become_bidirectional_edges(self, system):
        edges = {(e.src, e.dst) for e in system.data_plane_edges}
        assert ("h1", "s1") in edges and ("s1", "h1") in edges

    def test_port_attributes(self, system):
        edge = next(e for e in system.data_plane_edges
                    if (e.src, e.dst) == ("s1", "s2"))
        assert (edge.src_port, edge.dst_port) == (3, 1)

    def test_control_connections(self, system):
        assert system.connection_keys() == [("c1", "s1"), ("c1", "s2")]

    def test_malformed_xml_rejected(self):
        with pytest.raises(CompileError):
            parse_system_model_xml("<system><unclosed></system>")

    def test_wrong_root_rejected(self):
        with pytest.raises(CompileError):
            parse_system_model_xml("<network/>")

    def test_missing_name_attribute_rejected(self):
        bad = SYSTEM_XML.replace('<controller name="c1" address="10.1.0.1"/>',
                                 "<controller/>")
        with pytest.raises(CompileError):
            parse_system_model_xml(bad)

    def test_bad_ip_rejected(self):
        bad = SYSTEM_XML.replace('ip="10.0.0.1"', 'ip="999.0.0.1"')
        with pytest.raises(CompileError):
            parse_system_model_xml(bad)

    def test_semantic_violation_reported_as_compile_error(self):
        # Connection referencing an unknown switch.
        bad = SYSTEM_XML.replace('switch="s2"/>', 'switch="s9"/>', 1)
        with pytest.raises(CompileError):
            parse_system_model_xml(bad)


class TestAttackModelParser:
    def test_classes(self, system):
        xml = """
        <attackmodel>
          <connection controller="c1" switch="s1" class="no-tls"/>
          <connection controller="c1" switch="s2" class="tls"/>
        </attackmodel>
        """
        model = parse_attack_model_xml(xml, system)
        assert model.gamma(("c1", "s1")) == gamma_no_tls()
        assert model.gamma(("c1", "s2")) == gamma_tls()

    def test_explicit_capabilities_override_class(self, system):
        xml = """
        <attackmodel>
          <connection controller="c1" switch="s1" class="no-tls">
            <capability name="DropMessage"/>
            <capability name="ReadMessageMetadata"/>
          </connection>
        </attackmodel>
        """
        model = parse_attack_model_xml(xml, system)
        assert model.gamma(("c1", "s1")) == {
            Capability.DROP_MESSAGE, Capability.READ_MESSAGE_METADATA
        }

    def test_none_class_means_no_attacker(self, system):
        xml = """
        <attackmodel>
          <connection controller="c1" switch="s1" class="none"/>
        </attackmodel>
        """
        model = parse_attack_model_xml(xml, system)
        assert model.gamma(("c1", "s1")) == frozenset()

    def test_unknown_connection_rejected(self, system):
        xml = '<attackmodel><connection controller="c9" switch="s1"/></attackmodel>'
        with pytest.raises(CompileError):
            parse_attack_model_xml(xml, system)

    def test_unknown_class_rejected(self, system):
        xml = ('<attackmodel><connection controller="c1" switch="s1" '
               'class="quantum"/></attackmodel>')
        with pytest.raises(CompileError):
            parse_attack_model_xml(xml, system)

    def test_unknown_capability_rejected(self, system):
        xml = """
        <attackmodel>
          <connection controller="c1" switch="s1">
            <capability name="TeleportMessage"/>
          </connection>
        </attackmodel>
        """
        with pytest.raises(CompileError):
            parse_attack_model_xml(xml, system)


ATTACK_XML = """
<attack name="demo" start="sigma1" description="demo attack">
  <deque name="count"><value type="int">0</value></deque>
  <deque name="labels"><value type="str">a</value><value type="str">b</value></deque>
  <state name="sigma1">
    <rule name="phi1">
      <connections><connection controller="c1" switch="s1"/></connections>
      <gamma class="no-tls"/>
      <condition>type = FLOW_MOD</condition>
      <actions>
        <drop/>
        <prepend deque="count" value="shift(count) + 1"/>
        <goto state="sigma2"/>
      </actions>
    </rule>
  </state>
  <state name="sigma2"/>
</attack>
"""


class TestStatesParser:
    def test_parses_structure(self, system):
        attack = parse_attack_states_xml(ATTACK_XML, system)
        assert attack.name == "demo"
        assert attack.start == "sigma1"
        assert set(attack.states) == {"sigma1", "sigma2"}
        assert attack.deque_declarations == {"count": [0], "labels": ["a", "b"]}
        assert attack.graph.end_states() == {"sigma2"}

    def test_all_connections_shorthand(self, system):
        xml = ATTACK_XML.replace(
            '<connection controller="c1" switch="s1"/>', "<all-connections/>"
        )
        attack = parse_attack_states_xml(xml, system)
        rule = attack.states["sigma1"].rules[0]
        assert rule.connections == frozenset(system.connection_keys())

    def test_every_action_element_parses(self, system):
        xml = """
        <attack name="kitchen-sink" start="s">
          <state name="s">
            <rule name="r">
              <connections><all-connections/></connections>
              <gamma class="no-tls"/>
              <condition>true</condition>
              <actions>
                <pass/>
                <drop/>
                <delay seconds="0.5"/>
                <duplicate copies="2"/>
                <read-metadata store-to="meta"/>
                <modify-metadata field="destination" value="s2"/>
                <fuzz bit-flips="4" preserve-header="true"/>
                <read store-to="q"/>
                <modify field="idle_timeout" value="0"/>
                <inject from="shift(q)"/>
                <prepend deque="d" value="1"/>
                <append deque="d" value="msg"/>
                <shift deque="d"/>
                <pop deque="d"/>
                <sleep seconds="1"/>
                <syscmd host="h6" command="iperf -s"/>
              </actions>
            </rule>
          </state>
        </attack>
        """
        attack = parse_attack_states_xml(xml, system)
        assert len(attack.states["s"].rules[0].actions) == 16

    def test_bad_condition_reported(self, system):
        bad = ATTACK_XML.replace("type = FLOW_MOD", "type = = =")
        with pytest.raises(CompileError):
            parse_attack_states_xml(bad, system)

    def test_goto_to_missing_state_reported(self, system):
        bad = ATTACK_XML.replace('<goto state="sigma2"/>',
                                 '<goto state="ghost"/>')
        with pytest.raises(CompileError):
            parse_attack_states_xml(bad, system)

    def test_gamma_not_covering_usage_reported(self, system):
        bad = ATTACK_XML.replace('<gamma class="no-tls"/>',
                                 '<gamma><capability name="PassMessage"/></gamma>')
        with pytest.raises(CompileError):
            parse_attack_states_xml(bad, system)

    def test_missing_start_rejected(self, system):
        bad = ATTACK_XML.replace(' start="sigma1"', "")
        with pytest.raises(CompileError):
            parse_attack_states_xml(bad, system)

    def test_no_states_rejected(self, system):
        with pytest.raises(CompileError):
            parse_attack_states_xml('<attack name="x" start="s"/>', system)

    def test_unknown_action_rejected(self, system):
        bad = ATTACK_XML.replace("<drop/>", "<teleport/>")
        with pytest.raises(CompileError):
            parse_attack_states_xml(bad, system)

    def test_validates_against_parsed_attack_model(self, system):
        attack = parse_attack_states_xml(ATTACK_XML, system)
        tls_model = parse_attack_model_xml(
            '<attackmodel><connection controller="c1" switch="s1" class="tls"/>'
            '<connection controller="c1" switch="s2" class="tls"/></attackmodel>',
            system,
        )
        with pytest.raises(Exception):
            attack.validate_against(tls_model)  # needs READMESSAGE
