"""Proxy lazy decode/zero-copy pass-through, end to end.

With the fast lane, the proxy frames streams on the length field only and
the executor decodes a message iff an evaluated conditional reads its
payload — so a working network should show large ``decode_avoided`` and
``repack_avoided`` counts, with pass-through delivering the original wire
bytes.
"""

from repro.attacks import flow_mod_suppression_attack, passthrough_attack
from repro.controllers import FloodlightController
from repro.core import AttackModel, RuntimeInjector, SystemModel
from repro.core.lang import Attack, AttackState, DropMessage, Rule, parse_condition
from repro.core.model import gamma_no_tls
from repro.dataplane import Network


def build(engine, topology, attack):
    network = Network(engine, topology)
    controller = FloodlightController(engine)
    system = SystemModel.from_topology(topology, ["c1"])
    model = AttackModel.no_tls_everywhere(system)
    injector = RuntimeInjector(engine, model, attack)
    injector.install(network, {"c1": controller})
    network.start()
    engine.run(until=5.0)
    return network, injector


def proxy_totals(injector, key):
    return sum(proxy.stats[key] for proxy in injector.active_proxies.values())


class TestLazyDecode:
    def test_suppression_leaves_non_flow_mods_undecoded(self, engine, small_topology):
        """FLOW_MOD-only rules: everything else ships without a parse."""
        system = SystemModel.from_topology(small_topology, ["c1"])
        attack = flow_mod_suppression_attack(system.connection_keys())
        network, injector = build(engine, small_topology, attack)
        network.host("h1").ping(network.host_ip("h2"), count=2)
        engine.run(until=20.0)
        assert network.all_connected()
        forwarded = proxy_totals(injector, "forwarded")
        decode_avoided = proxy_totals(injector, "decode_avoided")
        repack_avoided = proxy_totals(injector, "repack_avoided")
        assert forwarded > 0
        # HELLO/FEATURES/ECHO/PACKET_IN traffic all bypasses the parser;
        # only FLOW_MODs (dropped, never delivered) needed a decode.
        assert decode_avoided == forwarded
        assert repack_avoided == forwarded

    def test_executor_skip_counters_populated(self, engine, small_topology):
        system = SystemModel.from_topology(small_topology, ["c1"])
        attack = flow_mod_suppression_attack(system.connection_keys())
        _network, injector = build(engine, small_topology, attack)
        engine.run(until=20.0)
        stats = injector.executor.stats
        assert stats["messages_processed"] > 0
        assert stats["rules_skipped_by_index"] > 0
        # Index precision: every evaluated conditional actually fired.
        assert stats["rules_evaluated"] == stats["rules_fired"]

    def test_passthrough_attack_still_transparent(self, engine, small_topology):
        """A wildcard rule forces evaluation; bytes still pass unchanged."""
        system = SystemModel.from_topology(small_topology, ["c1"])
        attack = passthrough_attack(system.connection_keys())
        network, injector = build(engine, small_topology, attack)
        run = network.host("h1").ping(network.host_ip("h2"), count=3)
        engine.run(until=20.0)
        assert run.result.received == 3
        # PASSMESSAGE never replaces payloads: zero re-packs.
        assert proxy_totals(injector, "repack_avoided") == \
            proxy_totals(injector, "forwarded")

    def test_payload_reading_rule_decodes_only_its_type(self, engine, small_topology):
        """A rule reading opt.* decodes matching messages, skips the rest."""
        system = SystemModel.from_topology(small_topology, ["c1"])
        connections = system.connection_keys()
        rules = [
            Rule("drop-port80", connections, gamma_no_tls(),
                 parse_condition("type = FLOW_MOD and opt.match.tp_dst = 80"),
                 [DropMessage()])
        ]
        attack = Attack("selective", [AttackState("s", rules)], "s")
        network, injector = build(engine, small_topology, attack)
        network.host("h1").ping(network.host_ip("h2"), count=2)
        engine.run(until=20.0)
        assert network.all_connected()
        stats = injector.executor.stats
        assert stats["rules_skipped_by_index"] > 0
        # Non-FLOW_MOD messages were forwarded without a decode.
        assert proxy_totals(injector, "decode_avoided") > 0
