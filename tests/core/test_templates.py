"""Tests for attack state-graph templates (Section X future work)."""

import pytest

from repro.attacks import counting_attack_deque, flow_mod_suppression_attack
from repro.core.injector import AttackExecutor
from repro.core.lang import DropMessage, PassMessage, Rule, parse_condition
from repro.core.lang.properties import Direction, InterposedMessage
from repro.core.lang.templates import Stage, product, sequential_stages, watchdog
from repro.core.model import gamma_no_tls
from repro.openflow import EchoRequest, FlowMod, Hello, Match
from repro.sim import SimulationEngine

CONN = ("c1", "s1")
CONN2 = ("c1", "s2")


def interposed(message, connection=CONN):
    return InterposedMessage(connection, Direction.TO_SWITCH, 0.0,
                             message.pack(), message)


def drop_rule(name, condition, connections=CONN):
    return Rule(name, connections, gamma_no_tls(),
                parse_condition(condition), [DropMessage()])


class TestSequentialStages:
    def build(self):
        return sequential_stages(
            "escalation",
            CONN,
            [
                Stage("recon", rules=[], advance_when="type = HELLO"),
                Stage("suppress",
                      rules=[drop_rule("drop_fm", "type = FLOW_MOD")],
                      advance_when="type = ECHO_REQUEST"),
                Stage("blackhole",
                      rules=[drop_rule("drop_all", "true")],
                      advance_when=None),
            ],
        )

    def test_structure(self):
        attack = self.build()
        assert list(attack.states) == ["recon", "suppress", "blackhole"]
        assert attack.start == "recon"
        assert attack.graph.successors("recon") == {"suppress"}
        assert attack.graph.successors("suppress") == {"blackhole"}
        assert attack.graph.absorbing_states() == {"blackhole"}

    def test_escalation_behaviour(self):
        executor = AttackExecutor(self.build(), SimulationEngine())
        # recon: everything passes, flow mods included.
        assert len(executor.handle_message(interposed(FlowMod(Match())))) == 1
        # HELLO advances to suppress (the trigger message passes).
        assert len(executor.handle_message(interposed(Hello()))) == 1
        assert executor.current_state_name == "suppress"
        # suppress: flow mods die, others pass.
        assert executor.handle_message(interposed(FlowMod(Match()))) == []
        # ECHO advances to blackhole.
        executor.handle_message(interposed(EchoRequest()))
        assert executor.current_state_name == "blackhole"
        assert executor.handle_message(interposed(Hello())) == []

    def test_last_stage_cannot_advance(self):
        with pytest.raises(ValueError):
            sequential_stages("x", CONN, [Stage("only", advance_when="true")])

    def test_empty_stage_list_rejected(self):
        with pytest.raises(ValueError):
            sequential_stages("x", CONN, [])

    def test_custom_advance_actions(self):
        attack = sequential_stages(
            "drop-trigger",
            CONN,
            [
                Stage("wait", advance_when="type = FLOW_MOD",
                      advance_actions=[DropMessage()]),
                Stage("done", advance_when=None),
            ],
        )
        executor = AttackExecutor(attack, SimulationEngine())
        # The trigger itself is dropped by the custom advance action.
        assert executor.handle_message(interposed(FlowMod(Match()))) == []
        assert executor.current_state_name == "done"


class TestWatchdog:
    def test_body_inert_until_trigger(self):
        body = flow_mod_suppression_attack(CONN)
        attack = watchdog("guarded", CONN, "type = ECHO_REQUEST", body)
        executor = AttackExecutor(attack, SimulationEngine())
        # Before the trigger: flow mods pass.
        assert len(executor.handle_message(interposed(FlowMod(Match())))) == 1
        # Trigger fires and passes.
        assert len(executor.handle_message(interposed(EchoRequest()))) == 1
        assert executor.current_state_name == body.start
        # Body semantics take over.
        assert executor.handle_message(interposed(FlowMod(Match()))) == []

    def test_state_collision_rejected(self):
        body = flow_mod_suppression_attack(CONN)
        with pytest.raises(ValueError):
            watchdog("x", CONN, "true", body, wait_state="sigma1")

    def test_deque_declarations_inherited(self):
        body = counting_attack_deque(CONN, 2)
        attack = watchdog("guarded", CONN, "type = HELLO", body)
        assert attack.deque_declarations == body.deque_declarations


class TestProduct:
    def test_state_space_is_cartesian(self):
        left = counting_attack_deque(CONN, 2)              # counting, armed
        right = flow_mod_suppression_attack(CONN2)          # sigma1
        composed = product("both", left, right)
        assert set(composed.states) == {"counting+sigma1", "armed+sigma1"}
        assert composed.start == "counting+sigma1"

    def test_components_progress_independently(self):
        left = counting_attack_deque(CONN, 2, "type = ECHO_REQUEST")
        right = flow_mod_suppression_attack(CONN2)
        composed = product("both", left, right)
        executor = AttackExecutor(composed, SimulationEngine())
        # Right component suppresses flow mods on CONN2 from the start.
        assert executor.handle_message(
            interposed(FlowMod(Match()), CONN2)) == []
        # Left component counts echoes on CONN and arms after 2.
        for _ in range(2):
            executor.handle_message(interposed(EchoRequest(), CONN))
        executor.handle_message(interposed(EchoRequest(), CONN))
        assert executor.current_state_name == "armed+sigma1"
        # Both effects now active simultaneously.
        assert executor.handle_message(interposed(EchoRequest(), CONN)) == []
        assert executor.handle_message(
            interposed(FlowMod(Match()), CONN2)) == []

    def test_deque_collision_rejected(self):
        left = counting_attack_deque(CONN, 2)
        right = counting_attack_deque(CONN2, 3)
        with pytest.raises(ValueError):
            product("clash", left, right)

    def test_product_of_multistate_attacks(self):
        from repro.attacks import connection_interruption_attack

        left = connection_interruption_attack(CONN, "10.0.0.2", ["10.0.0.3"])
        right = flow_mod_suppression_attack(CONN2)
        composed = product("combo", left, right)
        assert len(composed.states) == 3  # 3 x 1
        # Validation holds (reachability, targets).
        assert composed.graph.reachable_states() == set(composed.states)

    def test_codegen_roundtrip_of_composed_attack(self):
        from repro.core.compiler import (
            compile_attack_source,
            generate_attack_source,
        )

        composed = product(
            "both",
            counting_attack_deque(CONN, 2),
            flow_mod_suppression_attack(CONN2),
        )
        rebuilt = compile_attack_source(generate_attack_source(composed))
        assert rebuilt.summary() == composed.summary()
