"""Unit tests for the stochastic-conditional extension (prob(p))."""

import pytest

from repro.core.compiler.codegen import condition_to_text
from repro.core.lang import (
    And,
    ConditionParseError,
    EvalContext,
    Probability,
    StorageSet,
    parse_condition,
)
from repro.sim import SeededRng


def ctx(rng=None):
    return EvalContext(None, StorageSet(), 0.0, rng=rng)


class TestProbabilityNode:
    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            Probability(-0.1)
        with pytest.raises(ValueError):
            Probability(1.1)

    def test_certainties_need_no_rng(self):
        assert Probability(1.0).evaluate(ctx())
        assert not Probability(0.0).evaluate(ctx())

    def test_without_rng_never_fires(self):
        # Deterministic contexts stay deterministic.
        assert not Probability(0.99).evaluate(ctx(rng=None))

    def test_empirical_rate(self):
        rng = SeededRng(3)
        node = Probability(0.25)
        hits = sum(1 for _ in range(4000) if node.evaluate(ctx(rng)))
        assert 0.2 < hits / 4000 < 0.3

    def test_requires_no_capabilities(self):
        assert Probability(0.5).required_capabilities() == frozenset()


class TestParserSupport:
    def test_parse_prob(self):
        cond = parse_condition("prob(0.5)")
        assert isinstance(cond, Probability)
        assert cond.p == 0.5

    def test_prob_in_conjunction(self):
        cond = parse_condition("type = FLOW_MOD and prob(0.25)")
        assert isinstance(cond, And)

    def test_prob_integer_literal(self):
        assert parse_condition("prob(1)").p == 1.0

    @pytest.mark.parametrize("bad", ["prob()", "prob(abc)", "prob(0.5",
                                     "prob 0.5"])
    def test_malformed_prob_rejected(self, bad):
        with pytest.raises(ConditionParseError):
            parse_condition(bad)

    def test_out_of_range_rejected_at_parse(self):
        with pytest.raises((ConditionParseError, ValueError)):
            parse_condition("prob(2.0)")


class TestCodegenSupport:
    def test_unparse_reparse(self):
        cond = parse_condition("prob(0.25)")
        text = condition_to_text(cond)
        assert text == "prob(0.25)"
        assert parse_condition(text).p == 0.25

    def test_attack_with_prob_roundtrips(self):
        from repro.attacks import stochastic_drop_attack
        from repro.core.compiler import (
            compile_attack_source,
            generate_attack_source,
        )

        attack = stochastic_drop_attack(("c1", "s1"), 0.4)
        rebuilt = compile_attack_source(generate_attack_source(attack))
        assert rebuilt.summary() == attack.summary()
