"""Unit tests for the monitor suite."""

from repro.core.monitors import (
    ControlPlaneMonitor,
    IperfMonitor,
    LinkCapture,
    MonitorEvent,
    PingMonitor,
    RecordingMonitor,
)
from repro.core.lang.actions import OutgoingMessage
from repro.core.lang.properties import Direction, InterposedMessage
from repro.dataplane import DataLink, Host
from repro.netlib import Ipv4Address, MacAddress
from repro.openflow import FlowMod, Hello, Match
from repro.sim import SimulationEngine

CONN = ("c1", "s1")


def interposed(message):
    return InterposedMessage(CONN, Direction.TO_SWITCH, 1.0, message.pack(), message)


class TestRecordingMonitor:
    def test_record_and_query(self):
        monitor = RecordingMonitor("m")
        monitor.record(1.0, "a", {"x": 1})
        monitor.record(2.0, "b")
        monitor.record(3.0, "a")
        assert monitor.count("a") == 2
        assert len(monitor.events_of("b")) == 1
        assert [e.time for e in monitor.between(1.5, 3.0)] == [2.0, 3.0]

    def test_capacity_limit(self):
        monitor = RecordingMonitor("m", capacity=2)
        for index in range(5):
            monitor.record(float(index), "e")
        assert len(monitor) == 2
        assert monitor.dropped_events == 3

    def test_clear(self):
        monitor = RecordingMonitor("m")
        monitor.record(1.0, "a")
        monitor.clear()
        assert len(monitor) == 0


class TestControlPlaneMonitor:
    def test_message_accounting(self):
        monitor = ControlPlaneMonitor()
        msg = interposed(Hello())
        monitor.message_interposed(msg, [OutgoingMessage(msg)], 1.0)
        dropped = interposed(FlowMod(Match()))
        monitor.message_interposed(dropped, [], 1.5)
        assert monitor.total_messages() == 2
        assert monitor.count_of("HELLO") == 1
        assert monitor.count_of("FLOW_MOD") == 1
        assert monitor.dropped_by_type == {"FLOW_MOD": 1}
        assert monitor.dropped_total() == 1
        assert monitor.per_connection[CONN] == 2

    def test_rule_and_state_records(self):
        monitor = ControlPlaneMonitor()
        msg = interposed(Hello())
        monitor.rule_fired("sigma1", "phi1", msg)
        monitor.state_changed("sigma1", "sigma2", 2.0)
        monitor.action_record("drop_message", {"id": 1}, 2.0)
        assert monitor.fired_rules() == ["phi1"]
        assert monitor.visited_states() == ["sigma1", "sigma2"]
        assert monitor.count("action:drop_message") == 1

    def test_visited_states_chains(self):
        monitor = ControlPlaneMonitor()
        monitor.state_changed("a", "b", 1.0)
        monitor.state_changed("b", "c", 2.0)
        assert monitor.visited_states() == ["a", "b", "c"]


class TestPingMonitor:
    def _pair(self, engine):
        h1 = Host(engine, "h1", MacAddress(1), Ipv4Address("10.0.0.1"))
        h2 = Host(engine, "h2", MacAddress(2), Ipv4Address("10.0.0.2"))
        h1.attach(lambda data: engine.schedule(0.001, h2.frame_received, data))
        h2.attach(lambda data: engine.schedule(0.001, h1.frame_received, data))
        return h1, h2

    def test_series_collected(self):
        engine = SimulationEngine()
        h1, h2 = self._pair(engine)
        monitor = PingMonitor()
        monitor.start_series(h1, h2.ip, count=3, label="test")
        engine.run(until=20.0)
        assert len(monitor.results) == 1
        assert monitor.results[0].received == 3
        assert monitor.overall_loss_rate() == 0.0
        assert monitor.median_rtt() is not None
        assert monitor.events_of("ping_series_done")[0].data["label"] == "test"

    def test_aggregates_across_series(self):
        engine = SimulationEngine()
        h1, h2 = self._pair(engine)
        monitor = PingMonitor()
        monitor.start_series(h1, h2.ip, count=2)
        monitor.start_series(h2, h1.ip, count=2)
        engine.run(until=20.0)
        assert len(monitor.all_rtts()) == 4

    def test_empty_monitor_aggregates(self):
        # The satellite contract: zero samples must aggregate to
        # well-defined values, never raise — experiments that end before
        # a probe window opens still summarize their monitors.
        monitor = PingMonitor()
        assert monitor.median_rtt() is None
        assert monitor.overall_loss_rate() == 0.0
        assert monitor.all_rtts() == []

    def test_zero_sent_series_aggregates(self):
        # A series can complete with nothing sent (e.g. the run's horizon
        # cut it off immediately); aggregates stay well-defined.
        from repro.dataplane.host import PingResult

        monitor = PingMonitor()
        monitor.results.append(PingResult(target=Ipv4Address("10.0.0.9")))
        assert monitor.overall_loss_rate() == 0.0
        assert monitor.median_rtt() is None

    def test_all_lost_series_aggregates(self):
        from repro.dataplane.host import PingResult

        monitor = PingMonitor()
        monitor.results.append(PingResult(
            target=Ipv4Address("10.0.0.9"), sent=4, received=0,
            rtts=[None] * 4))
        assert monitor.overall_loss_rate() == 1.0
        assert monitor.median_rtt() is None


class TestIperfMonitor:
    def test_trial_collected(self):
        engine = SimulationEngine()
        h1 = Host(engine, "h1", MacAddress(1), Ipv4Address("10.0.0.1"))
        h2 = Host(engine, "h2", MacAddress(2), Ipv4Address("10.0.0.2"))
        h1.attach(lambda data: engine.schedule(0.001, h2.frame_received, data))
        h2.attach(lambda data: engine.schedule(0.001, h1.frame_received, data))
        monitor = IperfMonitor()
        monitor.start_trial(h1, h2, duration=0.05)
        engine.run(until=30.0)
        assert len(monitor.results) == 1
        assert monitor.mean_throughput_mbps() > 0
        assert monitor.median_throughput_mbps() > 0
        assert monitor.connect_failures() == 0

    def test_empty_aggregates(self):
        monitor = IperfMonitor()
        assert monitor.mean_throughput_mbps() is None
        assert monitor.median_throughput_mbps() is None
        assert monitor.throughputs_mbps() == []
        assert monitor.connect_failures() == 0


class TestMonitorTracing:
    def test_record_emits_trace_event_with_sample_time(self):
        from repro.obs import TraceCollector

        monitor = RecordingMonitor(name="probe")
        tracer = TraceCollector(clock=lambda: 999.0)
        monitor.tracer = tracer
        monitor.record(12.5, "sample", {"value": 1})
        (event,) = tracer.events("monitor")
        # The sample's own timestamp wins over the collector clock.
        assert event["t"] == 12.5
        assert event["monitor"] == "probe"
        assert event["sample"] == "sample"
        assert event["data"] == {"value": 1}

    def test_capacity_drop_is_not_traced(self):
        from repro.obs import TraceCollector

        monitor = RecordingMonitor(name="probe", capacity=1)
        tracer = TraceCollector()
        monitor.tracer = tracer
        monitor.record(1.0, "kept")
        monitor.record(2.0, "dropped")
        assert monitor.dropped_events == 1
        assert tracer.count("monitor") == 1


class TestLinkCapture:
    def test_captures_both_directions(self):
        engine = SimulationEngine()
        link = DataLink(engine, 1e9, 0.0001, name="tap-me")
        h1 = Host(engine, "h1", MacAddress(1), Ipv4Address("10.0.0.1"))
        h2 = Host(engine, "h2", MacAddress(2), Ipv4Address("10.0.0.2"))
        h1.attach(link.send_from_a)
        h2.attach(link.send_from_b)
        link.attach_a(h1.frame_received)
        link.attach_b(h2.frame_received)
        capture = LinkCapture(engine, link)
        run = h1.ping(h2.ip, count=2)
        engine.run(until=20.0)
        assert run.result.received == 2
        assert capture.frames_of("arp") >= 2
        assert capture.frames_of("ipv4/icmp") == 4  # 2 requests + 2 replies
        directions = {e.data["direction"] for e in capture.events_of("frame")}
        assert directions == {"a->b", "b->a"}
        assert capture.bytes_total > 0
