"""Deterministic staleness detection in optimistic distributed injection."""

import pytest

from repro.attacks import counting_attack_deque
from repro.core.injector import CoordinationMode, DistributedInjection
from repro.core.lang.properties import Direction, InterposedMessage
from repro.core.model import AttackModel, SystemModel
from repro.dataplane import Topology
from repro.openflow import EchoRequest
from repro.sim import SimulationEngine


def build_cluster(latency):
    topo = Topology("stale")
    topo.add_host("h1")
    topo.add_host("h2")
    topo.add_switch("s1", datapath_id=1)
    topo.add_switch("s2", datapath_id=2)
    topo.add_link("h1", "s1")
    topo.add_link("s1", "s2")
    topo.add_link("h2", "s2")
    system = SystemModel.from_topology(topo, ["c1"])
    model = AttackModel.no_tls_everywhere(system)
    attack = counting_attack_deque(system.connection_keys(), n=1,
                                   condition_text="type = ECHO_REQUEST")
    engine = SimulationEngine()
    cluster = DistributedInjection(
        engine, model, attack, ["inj-a", "inj-b"],
        coordination_latency=latency, mode=CoordinationMode.OPTIMISTIC,
    )
    return engine, cluster


class _FakeProxy:
    def __init__(self):
        self.delivered = []

    def deliver(self, outgoing):
        self.delivered.append(outgoing)


def echo_on(connection, at):
    message = EchoRequest(payload=b"x")
    return InterposedMessage(connection, Direction.TO_CONTROLLER, at,
                             message.pack(), message)


def test_stale_decision_counted_before_broadcast_lands():
    engine, cluster = build_cluster(latency=10.0)
    inst_a = cluster.instance("inj-a")
    inst_b = cluster.instance("inj-b")
    proxy = _FakeProxy()

    # Replica A sees the arming echo on (c1, s1): it transitions to
    # "armed" locally and records the authoritative transition.
    inst_a.submit(proxy, echo_on(("c1", "s1"), engine.now))
    assert cluster.replica_states()["inj-a"] == "armed"
    assert cluster.replica_states()["inj-b"] == "counting"
    assert cluster.stats["stale_decisions"] == 0

    # Before the broadcast lands (10 s away), replica B processes a
    # message against its stale "counting" state: counted as stale.
    engine.run(until=1.0)
    inst_b.submit(proxy, echo_on(("c1", "s2"), engine.now))
    assert cluster.stats["stale_decisions"] == 1

    # After the broadcast propagates, replica B converges and further
    # processing is no longer stale.
    engine.run(until=12.0)
    assert cluster.replica_states()["inj-b"] == "armed"
    inst_b.submit(proxy, echo_on(("c1", "s2"), engine.now))
    assert cluster.stats["stale_decisions"] == 1


def test_zero_latency_has_no_staleness():
    engine, cluster = build_cluster(latency=0.0)
    inst_a = cluster.instance("inj-a")
    inst_b = cluster.instance("inj-b")
    proxy = _FakeProxy()
    inst_a.submit(proxy, echo_on(("c1", "s1"), engine.now))
    engine.run(until=0.5)  # zero-latency broadcast applies immediately
    inst_b.submit(proxy, echo_on(("c1", "s2"), engine.now))
    assert cluster.stats["stale_decisions"] == 0
    assert set(cluster.replica_states().values()) == {"armed"}


def test_authoritative_log_records_first_transition_only_once():
    engine, cluster = build_cluster(latency=5.0)
    inst_a = cluster.instance("inj-a")
    proxy = _FakeProxy()
    inst_a.submit(proxy, echo_on(("c1", "s1"), engine.now))
    inst_a.submit(proxy, echo_on(("c1", "s1"), engine.now))  # already armed
    transitions = [state for _t, state in cluster.transition_log]
    assert transitions == ["counting", "armed"]
