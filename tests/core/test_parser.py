"""Unit tests for the conditional/expression text parser."""

import pytest

from repro.core.lang import (
    And,
    Comparison,
    ConditionParseError,
    Const,
    EvalContext,
    ExamineFront,
    Not,
    Or,
    Property,
    StorageSet,
    Sum,
    TrueCondition,
    TypeOption,
    parse_condition,
    parse_expression,
)
from repro.core.lang.properties import Direction, InterposedMessage
from repro.netlib import Ipv4Address
from repro.openflow import FlowMod, Hello, Match


def evaluate(text, message=None, storage=None):
    ctx = EvalContext(message, storage or StorageSet(), 0.0)
    return parse_condition(text).evaluate(ctx)


def interposed(message, direction=Direction.TO_SWITCH):
    return InterposedMessage(("c1", "s2"), direction, 0.0, message.pack(), message)


class TestParsing:
    def test_simple_equality(self):
        cond = parse_condition("type = FLOW_MOD")
        assert isinstance(cond, Comparison)
        assert cond.op == "="
        assert isinstance(cond.left, Property)
        assert cond.right.value == "FLOW_MOD"

    def test_empty_text_is_true(self):
        assert isinstance(parse_condition(""), TrueCondition)
        assert isinstance(parse_condition("   "), TrueCondition)

    def test_true_false_literals(self):
        assert evaluate("true")
        assert not evaluate("false")

    def test_and_or_precedence(self):
        # AND binds tighter than OR.
        cond = parse_condition("true or false and false")
        assert isinstance(cond, Or)
        assert evaluate("true or false and false")

    def test_parentheses(self):
        assert not evaluate("(true or false) and false")

    def test_not(self):
        cond = parse_condition("not type = HELLO")
        assert isinstance(cond, Not)
        assert not evaluate("not true")

    def test_set_membership(self):
        cond = parse_condition("destination in {s1, s2, s3}")
        msg = interposed(Hello())
        assert cond.evaluate(EvalContext(msg, StorageSet(), 0.0))

    def test_empty_set(self):
        assert not evaluate("1 in {}")

    def test_quoted_strings(self):
        cond = parse_condition("source = 'weird name'")
        assert cond.right.value == "weird name"

    def test_numbers_become_ints(self):
        cond = parse_condition("length = 8")
        assert cond.right.value == 8

    def test_ip_barewords_stay_strings(self):
        cond = parse_condition("opt.match.nw_src = 10.0.0.2")
        assert cond.right.value == "10.0.0.2"

    def test_type_option_path(self):
        cond = parse_condition("opt.match.nw_dst = 10.0.0.3")
        assert isinstance(cond.left, TypeOption)
        assert cond.left.path == "match.nw_dst"

    def test_deque_functions(self):
        expr = parse_expression("front(counter) + 1")
        assert isinstance(expr, Sum)
        assert isinstance(expr.first, ExamineFront)

    def test_shift_expression(self):
        storage = StorageSet()
        storage.declare("c", [7])
        assert parse_expression("shift(c) + 1").evaluate(
            EvalContext(None, storage, 0.0)) == 8
        assert len(storage.deque("c")) == 0

    def test_case_insensitive_keywords(self):
        assert evaluate("TRUE AND NOT FALSE")

    def test_msg_reference(self):
        expr = parse_expression("msg")
        msg = interposed(Hello())
        assert expr.evaluate(EvalContext(msg, StorageSet(), 0.0)) is msg


class TestParseErrors:
    @pytest.mark.parametrize("bad", [
        "type =",              # missing rhs
        "= FLOW_MOD",          # missing lhs
        "type FLOW_MOD",       # missing operator
        "(true",               # unclosed paren
        "type = {1, true}",    # keyword inside set
        "front(",              # unclosed call
        "type = FLOW_MOD extra stuff",  # trailing condition garbage
        "true @ false",        # illegal character
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ConditionParseError):
            parse_condition(bad)

    def test_empty_expression_rejected(self):
        with pytest.raises(ConditionParseError):
            parse_expression("")

    def test_expression_with_trailing_garbage_rejected(self):
        with pytest.raises(ConditionParseError):
            parse_expression("1 + 2 extra")


class TestEndToEnd:
    def test_paper_phi2_conditional(self):
        """The Fig. 12 σ2 conditional, evaluated against real flow mods."""
        text = (
            "type = FLOW_MOD and destination = s2 "
            "and opt.match.nw_src = 10.0.0.2 "
            "and opt.match.nw_dst in {10.0.0.3, 10.0.0.4, 10.0.0.5, 10.0.0.6}"
        )
        cond = parse_condition(text)

        full_match = FlowMod(Match(nw_src=Ipv4Address("10.0.0.2"),
                                   nw_dst=Ipv4Address("10.0.0.3")))
        assert cond.evaluate(EvalContext(interposed(full_match), StorageSet(), 0))

        # Ryu-style flow mod without nw fields never satisfies it.
        l2_match = FlowMod(Match(in_port=1))
        assert not cond.evaluate(EvalContext(interposed(l2_match), StorageSet(), 0))

        # Different source IP doesn't satisfy it either.
        other = FlowMod(Match(nw_src=Ipv4Address("10.0.0.9"),
                              nw_dst=Ipv4Address("10.0.0.3")))
        assert not cond.evaluate(EvalContext(interposed(other), StorageSet(), 0))

    def test_counter_conditional(self):
        storage = StorageSet()
        storage.declare("count", [3])
        assert evaluate("front(count) = 3", storage=storage)
        assert not evaluate("front(count) = 4", storage=storage)
