"""End-to-end integration: XML workflow, TLS models, distributed pieces."""

import pytest

from repro.attacks import flow_mod_suppression_attack
from repro.controllers import FloodlightController, PoxController
from repro.core import AttackModel, RuntimeInjector, SystemModel
from repro.core.compiler import (
    compile_attack_source,
    generate_attack_source,
    parse_attack_model_xml,
    parse_attack_states_xml,
    parse_system_model_xml,
)
from repro.core.monitors import ControlPlaneMonitor
from repro.dataplane import Network, Topology
from repro.sim import SimulationEngine

SYSTEM_XML = """
<system name="e2e">
  <controllers><controller name="c1"/></controllers>
  <switches>
    <switch name="s1" dpid="1" ports="1,2,3"/>
    <switch name="s2" dpid="2" ports="1,2"/>
  </switches>
  <hosts>
    <host name="h1" ip="10.0.0.1"/>
    <host name="h2" ip="10.0.0.2"/>
  </hosts>
  <dataplane>
    <link a="h1" b="s1" b-port="1"/>
    <link a="s1" a-port="3" b="s2" b-port="1"/>
    <link a="h2" b="s2" b-port="2"/>
  </dataplane>
  <controlplane>
    <connection controller="c1" switch="s1"/>
    <connection controller="c1" switch="s2"/>
  </controlplane>
</system>
"""

ATTACK_XML = """
<attack name="drop-flow-mods" start="sigma1">
  <state name="sigma1">
    <rule name="phi1">
      <connections><all-connections/></connections>
      <gamma class="no-tls"/>
      <condition>type = FLOW_MOD</condition>
      <actions><drop/></actions>
    </rule>
  </state>
</attack>
"""

MODEL_XML = """
<attackmodel>
  <connection controller="c1" switch="s1" class="no-tls"/>
  <connection controller="c1" switch="s2" class="no-tls"/>
</attackmodel>
"""


def build_topology():
    topo = Topology("e2e")
    topo.add_host("h1", ip="10.0.0.1")
    topo.add_host("h2", ip="10.0.0.2")
    topo.add_switch("s1", datapath_id=1)
    topo.add_switch("s2", datapath_id=2)
    topo.add_link("h1", "s1")
    topo.add_link("s1", "s2")
    topo.add_link("h2", "s2")
    return topo


class TestXmlToInjection:
    def test_full_workflow(self):
        """XML files -> compiler -> codegen -> runtime injection."""
        system = parse_system_model_xml(SYSTEM_XML)
        model = parse_attack_model_xml(MODEL_XML, system)
        attack = parse_attack_states_xml(ATTACK_XML, system)
        attack.validate_against(model)

        # Run through the executable-code generator (Fig. 7 pipeline).
        attack = compile_attack_source(generate_attack_source(attack))

        engine = SimulationEngine()
        network = Network(engine, build_topology())
        controller = FloodlightController(engine)
        injector = RuntimeInjector(engine, model, attack)
        monitor = ControlPlaneMonitor()
        injector.add_observer(monitor)
        injector.install(network, {"c1": controller})
        network.start()
        engine.run(until=5.0)
        assert network.all_connected()

        run = network.host("h1").ping(network.host_ip("h2"), count=4)
        engine.run(until=30.0)
        assert run.result.received == 4  # Floodlight degrades, not DoS
        assert monitor.dropped_by_type.get("FLOW_MOD", 0) > 0
        assert network.total_stat("flow_mods_received") == 0


class TestTlsAttackerModel:
    def test_tls_blocks_payload_attacks_but_allows_interception(self):
        topo = build_topology()
        system = SystemModel.from_topology(
            topo, ["c1"], control_connections=[("c1", "s1"), ("c1", "s2")]
        )
        tls_model = AttackModel.tls_everywhere(system)

        # Payload-conditioned suppression is rejected outright...
        suppression = flow_mod_suppression_attack(system.connection_keys())
        with pytest.raises(Exception):
            RuntimeInjector(SimulationEngine(), tls_model, suppression)

        # ...but a metadata-only interception attack is allowed: drop
        # everything from s2 (source is metadata; drop needs no payload).
        from repro.core.lang import Attack, AttackState, DropMessage, Rule
        from repro.core.lang.parser import parse_condition
        from repro.core.model import gamma_tls

        rule = Rule("phi", frozenset(system.connection_keys()), gamma_tls(),
                    parse_condition("source = s2"), [DropMessage()])
        blind_drop = Attack("blind-drop", [AttackState("s", [rule])], "s")

        engine = SimulationEngine()
        network = Network(engine, build_topology())
        controller = FloodlightController(engine)
        injector = RuntimeInjector(engine, tls_model, blind_drop)
        injector.install(network, {"c1": controller})
        network.start()
        # The controller's HELLO still reaches s2 (to_switch direction is
        # untouched) but nothing from s2 ever arrives: the controller-side
        # handshake stalls and its liveness check eventually drops s2.
        engine.run(until=30.0)
        assert network.switch("s1").connected
        assert controller.session_for_dpid(1) is not None
        assert controller.session_for_dpid(2) is None


class TestMultiController:
    def test_two_controllers_partitioned_switches(self):
        """A (c1, s1) + (c2, s2) deployment with one injector per domain."""
        engine = SimulationEngine()
        topo = build_topology()
        network = Network(engine, topo)
        c1 = FloodlightController(engine, name="c1")
        c2 = PoxController(engine, name="c2")
        system = SystemModel.from_topology(
            topo, ["c1", "c2"],
            control_connections=[("c1", "s1"), ("c2", "s2")],
        )
        model = AttackModel.no_tls_everywhere(system)
        injector = RuntimeInjector(engine, model)
        network.set_controller_target(
            "s1", injector.port_for(("c1", "s1"), c1))
        network.set_controller_target(
            "s2", injector.port_for(("c2", "s2"), c2))
        network.start()
        engine.run(until=5.0)
        assert network.all_connected()
        run = network.host("h1").ping(network.host_ip("h2"), count=3)
        engine.run(until=20.0)
        assert run.result.received == 3
        assert len(c1.ready_sessions()) == 1
        assert len(c2.ready_sessions()) == 1


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def run_once():
            engine = SimulationEngine()
            network = Network(engine, build_topology())
            controller = FloodlightController(engine)
            system = SystemModel.from_topology(
                build_topology(), ["c1"],
                control_connections=[("c1", "s1"), ("c1", "s2")],
            )
            model = AttackModel.no_tls_everywhere(system)
            attack = flow_mod_suppression_attack(system.connection_keys())
            injector = RuntimeInjector(engine, model, attack)
            monitor = ControlPlaneMonitor()
            injector.add_observer(monitor)
            injector.install(network, {"c1": controller})
            network.start()
            engine.run(until=5.0)
            ping = network.host("h1").ping(network.host_ip("h2"), count=5)
            engine.run(until=30.0)
            return (
                ping.result.rtts,
                monitor.message_counts,
                dict(network.switch("s1").stats),
            )

        first = run_once()
        second = run_once()
        assert first == second
