"""A/B equivalence: the packet fast lane must be invisible to results.

Runs real experiment cells — Fig. 11 suppression and Table II
interruption — twice each, fast lane on and off, and asserts that every
frame delivered to every host is byte-identical and that the recorded
metrics match exactly.  The fast lane is a pure performance layer; any
divergence here is a correctness bug, not a tuning difference.
"""

from typing import Dict, List, Tuple

import pytest

from repro.campaign.runner import _reset_run_state
from repro.dataplane.host import Host
from repro.experiments import run_interruption_cell, run_suppression_cell
from repro.netlib import fastframe

FAST_PARAMS = {"ping_trials": 3, "iperf_trials": 1, "iperf_duration_s": 0.5,
               "iperf_gap_s": 0.5, "warmup_s": 2.0}


def run_with_capture(monkeypatch, enabled, cell, **kwargs):
    """Run one cell with the fast lane toggled, capturing host deliveries."""
    delivered: List[Tuple[str, bytes]] = []
    original = Host.frame_received

    def capturing(self, data):
        delivered.append((self.name, bytes(data)))
        return original(self, data)

    with monkeypatch.context() as patch:
        patch.setattr(Host, "frame_received", capturing)
        # Reseed process-global counters (ICMP ids, event sequence
        # numbers, ...) exactly as the campaign worker pool does between
        # runs, so A and B start from identical state.
        _reset_run_state()
        fastframe.set_fast_lane(enabled)
        fastframe.clear_pool()
        try:
            metrics = cell(**kwargs)
        finally:
            fastframe.set_fast_lane(True)
    return metrics, delivered


def assert_ab_identical(monkeypatch, cell, **kwargs):
    metrics_on, frames_on = run_with_capture(monkeypatch, True, cell, **kwargs)
    metrics_off, frames_off = run_with_capture(monkeypatch, False, cell,
                                               **kwargs)
    assert len(frames_on) == len(frames_off)
    assert frames_on == frames_off  # byte-identical, in delivery order
    assert metrics_on == metrics_off
    return metrics_on, frames_on


class TestSuppressionAB:
    def test_attacked_cell_is_fastlane_invariant(self, monkeypatch):
        metrics, frames = assert_ab_identical(
            monkeypatch, run_suppression_cell,
            controller="pox", attack="flow-mod-suppression", seed=3,
            **FAST_PARAMS,
        )
        assert metrics["denial_of_service"] is True
        assert frames  # the hosts actually exchanged traffic

    def test_baseline_cell_is_fastlane_invariant(self, monkeypatch):
        metrics, _ = assert_ab_identical(
            monkeypatch, run_suppression_cell,
            controller="pox", attack=None, seed=3, **FAST_PARAMS,
        )
        assert metrics["throughput_mbps"] > 10.0


class TestInterruptionAB:
    def test_attacked_cell_is_fastlane_invariant(self, monkeypatch):
        metrics, frames = assert_ab_identical(
            monkeypatch, run_interruption_cell,
            controller="floodlight", attack="connection-interruption",
            seed=1, time_scale=0.5,
        )
        assert metrics["interruption_happened"] is True
        assert frames

    def test_baseline_cell_is_fastlane_invariant(self, monkeypatch):
        metrics, _ = assert_ab_identical(
            monkeypatch, run_interruption_cell,
            controller="floodlight", attack=None, seed=1, time_scale=0.5,
        )
        assert metrics["interruption_happened"] is False


def test_fastlane_counters_stay_out_of_experiment_metrics(monkeypatch):
    """The new observability counters are operational telemetry; they
    must never enter a cell's recorded metrics (or A/B equality —
    and cross-machine reproducibility — would be unachievable)."""
    metrics, _ = run_with_capture(
        monkeypatch, True, run_suppression_cell,
        controller="pox", attack=None, seed=0, **FAST_PARAMS,
    )
    for key in ("flowkey_cache_hits", "frames_interned", "heap_compactions"):
        assert key not in metrics
