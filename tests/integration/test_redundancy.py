"""Multi-controller redundancy: the system model's many-to-many N_C.

"The relation is many-to-many: a switch can communicate with multiple
controllers for redundancy or fault tolerance" (Section IV-A5).  These
tests wire switches to two controllers simultaneously and evaluate the
connection-interruption attack against the redundant deployment — the
kind of design comparison the framework exists to support.
"""

import pytest

from repro.attacks import connection_interruption_attack
from repro.controllers import FloodlightController
from repro.core import AttackModel, RuntimeInjector, SystemModel
from repro.core.monitors import ControlPlaneMonitor
from repro.dataplane import FailMode, Network, Topology
from repro.sim import SimulationEngine


def build_dual_controller(engine, attack=None, fail_mode=FailMode.SECURE):
    """h1 - s1 - s2 - h2 where both switches connect to c1 AND c2."""
    topo = Topology("dual")
    topo.add_host("h1")
    topo.add_host("h2")
    topo.add_switch("s1", datapath_id=1)
    topo.add_switch("s2", datapath_id=2)
    topo.add_link("h1", "s1")
    topo.add_link("s1", "s2")
    topo.add_link("h2", "s2")
    network = Network(engine, topo, fail_mode=fail_mode)
    c1 = FloodlightController(engine, name="c1")
    c2 = FloodlightController(engine, name="c2")
    system = SystemModel.from_topology(topo, ["c1", "c2"])  # full mesh N_C
    model = AttackModel.no_tls_everywhere(system)
    injector = RuntimeInjector(engine, model, attack)
    monitor = ControlPlaneMonitor()
    injector.add_observer(monitor)
    injector.install(network, {"c1": c1, "c2": c2})
    network.start()
    return network, (c1, c2), injector, monitor, system


class TestDualControllerOperation:
    def test_both_controllers_hold_sessions(self, engine):
        network, (c1, c2), _inj, _mon, _sys = build_dual_controller(engine)
        engine.run(until=5.0)
        assert network.all_connected()
        assert len(c1.ready_sessions()) == 2
        assert len(c2.ready_sessions()) == 2
        for switch in network.switches.values():
            assert len(switch.connected_controller_names()) == 2

    def test_packet_ins_broadcast_to_all_controllers(self, engine):
        network, (c1, c2), _inj, _mon, _sys = build_dual_controller(engine)
        engine.run(until=5.0)
        run = network.host("h1").ping(network.host_ip("h2"), count=2)
        engine.run(until=20.0)
        assert run.result.received == 2
        # Asynchronous PACKET_INs reach both controllers.
        assert c1.stats["packet_ins_handled"] > 0
        assert c2.stats["packet_ins_handled"] > 0

    def test_dataplane_works_with_redundancy(self, engine):
        network, _ctls, _inj, _mon, _sys = build_dual_controller(engine)
        engine.run(until=5.0)
        run = network.host("h1").ping(network.host_ip("h2"), count=5)
        engine.run(until=20.0)
        assert run.result.received == 5


class TestRedundancyUnderAttack:
    def _severing_attack(self, connection):
        """A two-state variant: on s2's HELLO, black-hole the connection."""
        from repro.core.lang import (
            Attack, AttackState, DropMessage, GoToState, PassMessage, Rule,
            parse_condition,
        )
        from repro.core.model import gamma_no_tls

        phi1 = Rule("arm", connection, gamma_no_tls(),
                    parse_condition("type = FEATURES_REPLY"),
                    [PassMessage(), GoToState("sigma2")])
        phi2 = Rule("blackhole", connection, gamma_no_tls(),
                    parse_condition("true"), [DropMessage()])
        return Attack("sever-one-connection",
                      [AttackState("sigma1", [phi1]),
                       AttackState("sigma2", [phi2])],
                      "sigma1")

    def test_severing_one_connection_does_not_trigger_fail_mode(self, engine):
        """With a redundant controller, killing (c1, s2) leaves the switch
        connected through c2: no fail mode, no unauthorized access, no
        denial of service — redundancy defeats the interruption attack."""
        attack = self._severing_attack(("c1", "s2"))
        network, (c1, c2), _inj, _mon, _sys = build_dual_controller(
            engine, attack, fail_mode=FailMode.STANDALONE
        )
        engine.run(until=30.0)  # past echo timeouts
        s2 = network.switch("s2")
        assert s2.connected                      # c2 still holds it
        assert not s2.standalone_active          # fail mode never engaged
        assert c1.session_for_dpid(2) is None    # c1 lost it
        assert c2.session_for_dpid(2) is not None
        run = network.host("h1").ping(network.host_ip("h2"), count=3)
        engine.run(until=engine.now + 15.0)
        assert run.result.received == 3

    def test_severing_all_connections_triggers_fail_mode(self, engine):
        """Black-holing BOTH of s2's connections re-enables the attack."""
        attack = self._severing_attack([("c1", "s2"), ("c2", "s2")])
        network, _ctls, _inj, _mon, _sys = build_dual_controller(
            engine, attack, fail_mode=FailMode.STANDALONE
        )
        engine.run(until=40.0)
        s2 = network.switch("s2")
        assert not s2.connected
        assert s2.standalone_active             # fail-safe engaged

    def test_connection_scoped_suppression_only_affects_one_controller(
            self, engine):
        from repro.attacks import flow_mod_suppression_attack

        # Suppress only c1's flow mods; c2's still install.
        attack = flow_mod_suppression_attack([("c1", "s1"), ("c1", "s2")])
        network, _ctls, _inj, monitor, _sys = build_dual_controller(
            engine, attack
        )
        engine.run(until=5.0)
        run = network.host("h1").ping(network.host_ip("h2"), count=3)
        engine.run(until=20.0)
        assert run.result.received == 3
        assert monitor.dropped_by_type.get("FLOW_MOD", 0) > 0
        # c2's duplicate flow mods got through: flows exist on switches.
        assert network.total_stat("flow_mods_received") > 0
