"""Failure injection: malformed inputs, corrupted streams, dying components."""

import pytest

from repro.attacks import fuzzing_attack
from repro.controllers import FloodlightController
from repro.core import AttackModel, RuntimeInjector, SystemModel
from repro.core.compiler import CompileError, parse_system_model_xml
from repro.core.monitors import ControlPlaneMonitor
from repro.dataplane import FailMode, Network, Topology
from repro.openflow import Hello, MessageFramer, OpenFlowDecodeError, parse_message
from repro.sim import SeededRng, SimulationEngine
from tests.conftest import build_connected_network


class TestCorruptedControlStreams:
    def test_random_bytes_never_crash_parse(self):
        rng = SeededRng(1234)
        for length in (0, 1, 7, 8, 16, 64, 200):
            for _ in range(20):
                data = rng.random_bytes(length)
                try:
                    parse_message(data)
                except OpenFlowDecodeError:
                    pass  # only the library's error type may escape

    def test_bitflipped_valid_messages_never_crash_parse(self):
        rng = SeededRng(99)
        from repro.openflow import FlowMod, Match, PacketIn

        for message in (Hello(), FlowMod(Match()), PacketIn(1, 4, 1, 0, b"abcd")):
            raw = message.pack()
            for _ in range(50):
                mutated = rng.flip_bits(raw, 6)
                try:
                    parse_message(mutated)
                except OpenFlowDecodeError:
                    pass

    def test_framer_survives_corrupt_then_valid(self):
        framer = MessageFramer()
        # Valid HELLO parses even after a failed framer is reset.
        bad = b"\x01\x00\x00\x02\x00\x00\x00\x00"
        with pytest.raises(OpenFlowDecodeError):
            framer.feed(bad)
        framer.reset()
        assert framer.feed(Hello(xid=1).pack())[0] == Hello(xid=1)


class TestFuzzingEndToEnd:
    @pytest.mark.parametrize("preserve_header", [True, False])
    def test_network_survives_sustained_fuzzing(self, preserve_header):
        """Fuzzed control streams must never crash endpoints; connections
        may drop (and reconnect), but the simulation stays healthy."""
        engine = SimulationEngine()
        topo = Topology("fuzz")
        topo.add_host("h1")
        topo.add_host("h2")
        topo.add_switch("s1")
        topo.add_link("h1", "s1")
        topo.add_link("h2", "s1")
        network = Network(engine, topo)
        controller = FloodlightController(engine)
        system = SystemModel.from_topology(topo, ["c1"])
        model = AttackModel.no_tls_everywhere(system)
        attack = fuzzing_attack(system.connection_keys(), "true",
                                bit_flips=8, preserve_header=preserve_header)
        injector = RuntimeInjector(engine, model, attack)
        injector.install(network, {"c1": controller})
        network.start()
        network.host("h1").ping(network.host_ip("h2"), count=5)
        engine.run(until=60.0)  # no exception = pass
        assert engine.processed_events > 0


class TestComponentFailures:
    def test_controller_death_triggers_fail_mode(self, engine, small_topology):
        network, controller = build_connected_network(engine, small_topology)
        for switch in network.switches.values():
            switch.fail_mode = FailMode.STANDALONE
        # The controller process dies: every session closes.
        for session in list(controller.sessions.values()):
            session.close()
        engine.run(until=engine.now + 3.0)
        assert all(s.standalone_active for s in network.switches.values())
        # Standalone learning still forwards host traffic.
        run = network.host("h1").ping(network.host_ip("h2"), count=2)
        engine.run(until=engine.now + 10.0)
        assert run.result.received == 2

    def test_link_failure_blackholes_traffic(self, engine, small_topology):
        network, _controller = build_connected_network(engine, small_topology)
        run1 = network.host("h1").ping(network.host_ip("h2"), count=1)
        engine.run(until=engine.now + 5.0)
        assert run1.result.received == 1
        # Cut the inter-switch link.
        trunk = next(link for name, link in network.links.items()
                     if "s1-s2" in name)
        trunk.set_up(False)
        run2 = network.host("h1").ping(network.host_ip("h2"), count=2)
        engine.run(until=engine.now + 10.0)
        assert run2.result.received == 0


class TestMalformedInputs:
    def test_system_xml_with_cycle_of_errors(self):
        # Host with an explicit egress port (forbidden).
        bad = """
        <system name="x">
          <controllers><controller name="c1"/></controllers>
          <switches><switch name="s1" dpid="1"/></switches>
          <hosts><host name="h1"/><host name="h2"/></hosts>
          <dataplane><link a="h1" a-port="1" b="s1" b-port="1"/></dataplane>
          <controlplane><connection controller="c1" switch="s1"/></controlplane>
        </system>
        """
        with pytest.raises(CompileError):
            parse_system_model_xml(bad)

    def test_non_integer_port_rejected(self):
        bad = """
        <system name="x">
          <controllers><controller name="c1"/></controllers>
          <switches><switch name="s1" dpid="1"/></switches>
          <hosts><host name="h1"/><host name="h2"/></hosts>
          <dataplane><link a="h1" b="s1" b-port="one"/></dataplane>
          <controlplane/>
        </system>
        """
        with pytest.raises(CompileError):
            parse_system_model_xml(bad)
