"""Sketch shard-safety: byte-identical contents at any shard count.

Per-region :class:`~repro.defense.tap.SketchTap` instances merge in
sorted region-id order, so the merged count-min rows, heavy-hitter set,
port-rate states, and window series — and therefore the canonical-JSON
digest — must be identical whether the regions execute inline in one
process (``shards=1``) or spread over pooled workers (``shards=2/4``),
with ``packetin-flood`` active on fat-tree-k8.
"""

import os

import pytest

from repro.campaign import reset_run_state
from repro.experiments.fabric import run_fabric_experiment

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0", "false")


def _run(shards, topology="fat-tree-k8"):
    reset_run_state()
    return run_fabric_experiment(
        topology,
        controller="pox",
        workload="packetin-flood",
        workload_params={"schedule": "constant:400", "senders": 2,
                         "duration_s": 0.2},
        horizon_s=0.5,  # trim the post-attack tail: determinism, not scores
        detectors=["pktin-rate"],
        shards=shards,
    )


def test_sketches_byte_identical_across_shard_counts():
    """Inline (1) vs pooled (2, 4) workers: same digest, same payload."""
    shard_counts = (1, 2) if QUICK else (1, 2, 4)
    reference = None
    for shards in shard_counts:
        result = _run(shards)
        assert result.sketch is not None
        assert result.sketch["counters"]["frames"] > 0
        if reference is None:
            reference = result
            continue
        # Digest first (the one-line contract), then the raw payload so
        # a failure pinpoints which structure diverged.
        assert result.sketch_digest == reference.sketch_digest, (
            f"sketch digest diverged at shards={shards}"
        )
        assert result.sketch["cms"] == reference.sketch["cms"]
        assert result.sketch["topk"] == reference.sketch["topk"]
        assert result.sketch["ports"] == reference.sketch["ports"]
        assert result.sketch["frames"] == reference.sketch["frames"]
        assert result.sketch["new_keys"] == reference.sketch["new_keys"]
        assert result.sketch["packet_ins"] == reference.sketch["packet_ins"]
        assert result.detections == reference.detections


def test_sketch_tap_does_not_perturb_the_run():
    """Telemetry is observation only: traces and metrics match a
    sketch-free run exactly."""
    reset_run_state()
    base = run_fabric_experiment(
        "fat-tree-k4", controller="pox", workload="packetin-flood",
        workload_params={"schedule": "constant:400", "senders": 2,
                         "duration_s": 0.2},
        horizon_s=0.5, trace=True, shards=1,
    )
    reset_run_state()
    tapped = run_fabric_experiment(
        "fat-tree-k4", controller="pox", workload="packetin-flood",
        workload_params={"schedule": "constant:400", "senders": 2,
                         "duration_s": 0.2},
        horizon_s=0.5, trace=True, shards=1, sketch=True,
    )
    assert tapped.trace_jsonl == base.trace_jsonl
    assert tapped.switch_packet_ins == base.switch_packet_ins
    assert tapped.packets_synthesized == base.packets_synthesized
