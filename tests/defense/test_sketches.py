"""Streaming sketch primitives: hashing, updates, deterministic merges."""

import pytest

from repro.defense import (
    CountMinSketch,
    InterArrival,
    PortRates,
    TopKeys,
    WindowSeries,
    fold_key,
    normalize_key,
    row_indices,
)


def indices_for(key, cms):
    return row_indices(fold_key(normalize_key(key)), cms.width, cms.depth)


def test_normalize_key_coerces_none_and_int_subclasses():
    class FakeMac(int):
        pass

    assert normalize_key((FakeMac(7), None, 0x0800)) == (7, -1, 0x0800)


def test_fold_key_is_stable_and_key_sensitive():
    a = fold_key((1, 2, 3))
    assert a == fold_key((1, 2, 3))  # pure function, no process salt
    assert a != fold_key((1, 2, 4))
    assert a != fold_key((3, 2, 1))


def test_row_indices_bounded_and_distinct_per_depth():
    idx = row_indices(fold_key((9, 9)), width=64, depth=4)
    assert len(idx) == 4
    assert all(0 <= i < 64 for i in idx)


def test_count_min_update_returns_pre_increment_estimate():
    cms = CountMinSketch(width=64, depth=4)
    idx = indices_for((1, 2), cms)
    assert cms.update(idx) == 0  # new key
    assert cms.update(idx) == 1
    assert cms.update(idx) == 2
    assert cms.estimate(idx) == 3
    assert cms.total == 3


def test_count_min_merge_adds_elementwise():
    a, b = CountMinSketch(16, 2), CountMinSketch(16, 2)
    idx = indices_for((5,), a)
    for _ in range(3):
        a.update(idx)
    for _ in range(4):
        b.update(idx)
    a.merge(b)
    assert a.estimate(idx) == 7
    assert a.total == 7
    with pytest.raises(ValueError):
        a.merge(CountMinSketch(32, 2))


def test_count_min_roundtrips_through_dict():
    cms = CountMinSketch(16, 2)
    cms.update(indices_for((1,), cms))
    clone = CountMinSketch.from_dict(cms.to_dict())
    assert clone.to_dict() == cms.to_dict()


def test_topkeys_all_distinct_flood_never_scans():
    topk = TopKeys(capacity=4)
    for i in range(1000):  # every estimate 1: nothing displaces anything
        topk.update((i,), 1)
    assert len(topk.entries) == 4
    assert set(topk.entries.values()) == {1}


def test_topkeys_heavy_hitter_displaces_deterministic_victim():
    topk = TopKeys(capacity=2)
    topk.update((1,), 3)
    topk.update((2,), 3)
    topk.update((3,), 5)  # displaces the tied victim with the lowest key
    assert set(topk.entries) == {(2,), (3,)}
    assert topk.ranked()[0] == ((3,), 5)


def test_topkeys_merged_re_ranks_against_merged_counts():
    cms = CountMinSketch(64, 2)
    counts = {(1,): 5, (2,): 3, (3,): 9}
    for key, count in counts.items():
        idx = indices_for(key, cms)
        for _ in range(count):
            cms.update(idx)
    part_a, part_b = TopKeys(2), TopKeys(2)
    part_a.update((1,), 2)  # stale region-local estimates
    part_a.update((2,), 1)
    part_b.update((3,), 4)
    merged = TopKeys.merged([part_a, part_b], cms)
    assert merged.ranked() == [((3,), 9), ((1,), 5)]


def test_port_rates_bucketed_ewma_and_disjoint_merge():
    rates = PortRates(window_s=0.1, alpha=0.5)
    for k in range(10):  # 100/s steady over one bucket
        rates.update("s1", 1, 0.0 + k * 0.01)
    for k in range(5):
        rates.update("s1", 1, 0.1 + k * 0.01)  # fold happens here
    snap = rates.snapshot()
    assert snap["s1:1"]["count"] == 15
    assert snap["s1:1"]["ewma_pps"] > 0
    other = PortRates(window_s=0.1, alpha=0.5)
    other.update("s2", 3, 0.0)
    rates.merge_dict(other.to_dict())
    assert set(rates.snapshot()) == {"s1:1", "s2:3"}
    with pytest.raises(ValueError):
        rates.merge_dict(other.to_dict())  # same region merged twice


def test_inter_arrival_moments_and_merge():
    gaps = InterArrival()
    for t in (0.0, 0.1, 0.3):
        gaps.observe(t)
    assert gaps.n == 2
    assert gaps.mean_dt == pytest.approx(0.15)
    assert gaps.min_dt == pytest.approx(0.1)
    assert gaps.max_dt == pytest.approx(0.2)
    other = InterArrival()
    for t in (1.0, 1.05):
        other.observe(t)
    gaps.merge_dict(other.to_dict())
    assert gaps.n == 3
    assert gaps.min_dt == pytest.approx(0.05)
    assert gaps.first_t == 0.0 and gaps.last_t == 1.05


def test_window_series_sparse_buckets_and_merge():
    series = WindowSeries(window_s=0.05)
    series.add(0.01)
    series.add(0.02)
    series.add(0.26)
    payload = series.to_dict()
    assert payload["buckets"] == [(0, 2), (5, 1)]
    other = WindowSeries(window_s=0.05)
    other.add(0.27)
    series.merge_dict(other.to_dict())
    assert series.to_dict()["buckets"] == [(0, 2), (5, 2)]
