"""The switch-fed sketch tap: hot-path updates, memoization, merging."""

from repro.defense.tap import (
    MEMO_MAX,
    SketchTap,
    merge_taps,
    sketch_digest,
    sketch_summary,
)
from repro.netlib.flowkey import FIELD_TUPLE_KEY, MATCH_FIELD_NAMES


def flow_fields(seed=0, in_port=1):
    key = (in_port, 10 + seed, 20 + seed, None, 0, 0x0800, 0, 17,
           100 + seed, 200 + seed, 4000, 5000)
    return {FIELD_TUPLE_KEY: key}


def test_on_frame_uses_pre_populated_tuple_and_memoizes():
    tap = SketchTap()
    fields = flow_fields()
    tap.on_frame("s1", 1, fields, 0.0)
    tap.on_frame("s1", 1, fields, 0.001)
    assert tap.counters["frames"] == 2
    assert tap.counters["memo_hits"] == 1
    assert len(tap.topk.entries) == 1


def test_on_frame_falls_back_to_field_dict_without_tuple():
    tap = SketchTap()
    key = flow_fields()[FIELD_TUPLE_KEY]
    fields = dict(zip(MATCH_FIELD_NAMES, key))
    tap.on_frame("s1", 1, fields, 0.0)
    tap.on_frame("s1", 1, flow_fields(), 0.001)  # same key via fast lane
    assert tap.counters["memo_hits"] == 1
    assert tap.cms.total == 2


def test_memo_bound_evicts_wholesale():
    tap = SketchTap()
    tap._memo = {i: ((), ()) for i in range(MEMO_MAX)}  # saturate
    tap.on_frame("s1", 1, flow_fields(), 0.0)
    assert tap.counters["memo_evictions"] == 1
    assert len(tap._memo) == 1


def test_new_key_windows_track_count_min_first_sight():
    tap = SketchTap()
    tap.on_frame("s1", 1, flow_fields(0), 0.0)
    tap.on_frame("s1", 1, flow_fields(0), 0.01)  # repeat: not new
    tap.on_frame("s1", 1, flow_fields(1), 0.06)  # new key, window 1
    payload = tap.collect()
    assert payload["new_keys"]["buckets"] == [(0, 1), (1, 1)]
    assert payload["frames"]["buckets"] == [(0, 2), (1, 1)]


def test_merge_taps_equals_single_tap_over_combined_stream():
    # One tap seeing everything vs. two region taps seeing disjoint
    # switches must merge to identical payloads (the shard invariant).
    combined = SketchTap()
    region_a, region_b = SketchTap(), SketchTap()
    for k in range(30):
        fields = flow_fields(k % 5)
        combined.on_frame("s1", 1, fields, 0.001 * k)
        region_a.on_frame("s1", 1, fields, 0.001 * k)
    for k in range(10):
        fields = flow_fields(50 + k)
        combined.on_frame("s2", 2, fields, 0.002 * k)
        region_b.on_frame("s2", 2, fields, 0.002 * k)
        combined.on_packet_in(0.002 * k)
        region_b.on_packet_in(0.002 * k)
    merged = merge_taps([region_a.collect(), region_b.collect()])
    assert sketch_digest(merged) == sketch_digest(combined.collect())


def test_merge_taps_empty_and_digest_none():
    assert merge_taps([]) is None
    assert sketch_digest(None) is None
    assert sketch_summary(None) == {}


def test_sketch_summary_headline_numbers():
    tap = SketchTap()
    for k in range(4):
        tap.on_frame("s1", 1, flow_fields(), 0.001 * k)
    tap.on_frame("s2", 9, flow_fields(7), 0.001)
    tap.on_packet_in(0.0)
    tap.on_packet_in(0.01)
    summary = sketch_summary(tap.collect())
    assert summary["frames"] == 5
    assert summary["packet_ins"] == 2
    assert summary["busiest_port"] == "s1:1"
    assert summary["busiest_port_frames"] == 4
    assert summary["pktin_mean_gap_s"] == 0.01
