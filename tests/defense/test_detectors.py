"""Detector registry, built-ins, and ground-truth scoring guards."""

import pytest

from repro.defense import (
    Detector,
    attack_window,
    build_detector,
    detector_info,
    evaluate_detectors,
    feature_windows,
    list_detectors,
    register_detector,
    score_flags,
    truth_labels,
)
from repro.defense.tap import SketchTap


def make_payload(window_s=0.05):
    """A tap payload with frames in windows 0-1 and PACKET_INs in 1."""
    tap = SketchTap(window_s=window_s)
    fields = {"__tuple__": (1, 2, 3, None, 0, 0x0800, 0, 17, 4, 5, 6, 7)}
    for k in range(20):
        tap.on_frame("s1", 1, fields, 0.001 * k)  # window 0
    flood = {"__tuple__": (2, 9, 9, None, 0, 0x0800, 0, 17, 1, 1, 1, 1)}
    for k in range(20):
        tap.on_frame("s1", 2, dict(flood), 0.05 + 0.002 * k)  # window 1
        tap.on_packet_in(0.05 + 0.002 * k)
    return tap.collect()


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #

def test_registry_lists_builtins_with_availability():
    names = {d["name"] for d in list_detectors()}
    assert {"pktin-rate", "newkey-ratio", "iforest"} <= names
    iforest = next(d for d in list_detectors() if d["name"] == "iforest")
    assert iforest["requires"] == "sklearn"
    assert isinstance(iforest["available"], bool)


def test_unknown_and_duplicate_detectors_rejected():
    with pytest.raises(KeyError, match="unknown detector"):
        detector_info("nope")
    with pytest.raises(ValueError, match="already registered"):
        register_detector("pktin-rate")(lambda params: Detector())


def test_import_guarded_detector_without_dependency():
    info = detector_info("iforest")
    if not info.available:
        with pytest.raises(RuntimeError, match="sklearn"):
            build_detector("iforest")


def test_builtin_param_validation():
    with pytest.raises(ValueError):
        build_detector("pktin-rate", {"threshold_pps": 0})
    with pytest.raises(ValueError):
        build_detector("newkey-ratio", {"ratio": 1.5})
    with pytest.raises(ValueError):
        build_detector("newkey-ratio", {"min_frames": 0})


# --------------------------------------------------------------------- #
# Feature windows + built-in behaviour
# --------------------------------------------------------------------- #

def test_feature_windows_zero_fill_the_horizon():
    windows = feature_windows(make_payload(), horizon_s=0.2)
    assert len(windows) == 4
    assert windows[0]["frames"] == 20 and windows[0]["packet_ins"] == 0
    assert windows[1]["packet_ins"] == 20
    assert windows[2]["frames"] == 0 and windows[2]["newkey_ratio"] == 0.0


def test_pktin_rate_flags_only_storm_windows():
    windows = feature_windows(make_payload(), horizon_s=0.2)
    detector = build_detector("pktin-rate", {"threshold_pps": 200})
    assert detector.flags(windows) == [False, True, False, False]


def test_newkey_ratio_flags_fresh_key_windows():
    windows = feature_windows(make_payload(), horizon_s=0.2)
    # Window 0: one distinct key over 20 frames -> ratio 1/20.  Window 1
    # repeats a single flood key -> also low.  Use a low bar to catch
    # window 0's first-sight spike only when ratio <= 1/20.
    detector = build_detector("newkey-ratio",
                              {"ratio": 0.05, "min_frames": 10})
    assert detector.flags(windows) == [True, True, False, False]


# --------------------------------------------------------------------- #
# Ground truth + scoring
# --------------------------------------------------------------------- #

def test_attack_window_only_for_adversarial_sources():
    params = {"start_s": 0.25, "duration_s": 0.3}
    assert attack_window(params, adversarial=True) == (0.25, 0.55)
    assert attack_window(params, adversarial=False) is None


def test_truth_labels_overlap_semantics():
    windows = feature_windows(make_payload(), horizon_s=0.2)
    labels = truth_labels(windows, (0.06, 0.11))
    assert labels == [False, True, True, False]
    assert truth_labels(windows, None) == [False] * 4


def test_score_flags_counts_and_latency():
    windows = feature_windows(make_payload(), horizon_s=0.2)
    span = (0.05, 0.15)
    labels = truth_labels(windows, span)  # windows 1 and 2 active
    scores = score_flags([False, True, False, True], labels, windows, span)
    assert (scores["tp"], scores["fp"], scores["fn"], scores["tn"]) == (1, 1, 1, 1)
    assert scores["precision"] == 0.5
    assert scores["recall"] == 0.5
    # Alarm at the first flagged active window's close: t1 of window 1.
    assert scores["detection_latency_s"] == pytest.approx(0.05)


def test_score_flags_guards_undefined_ratios():
    windows = feature_windows(make_payload(), horizon_s=0.2)
    # No active windows: recall undefined, not ZeroDivisionError.
    quiet = score_flags([False] * 4, [False] * 4, windows, None)
    assert quiet["precision"] is None and quiet["recall"] is None
    assert quiet["detection_latency_s"] is None
    # Attack present but detector never fires: unbounded latency as None.
    missed = score_flags([False] * 4, [False, True, True, False],
                         windows, (0.05, 0.15))
    assert missed["recall"] == 0.0
    assert missed["precision"] is None
    assert missed["detection_latency_s"] is None
    with pytest.raises(ValueError, match="length mismatch"):
        score_flags([True], [True, False], windows, None)


def test_evaluate_detectors_handles_missing_payload():
    results = evaluate_detectors(None, horizon_s=1.0,
                                 detectors=["pktin-rate"])
    assert results[0]["precision"] is None
    assert results[0]["recall"] is None
    assert evaluate_detectors(make_payload(), horizon_s=0.2,
                              detectors=[]) == []


def test_evaluate_detectors_scores_each_detector():
    results = evaluate_detectors(
        make_payload(), horizon_s=0.2,
        detectors=["pktin-rate"],
        detector_params={"threshold_pps": 200},
        attack_span=(0.05, 0.1),
    )
    assert results[0]["detector"] == "pktin-rate"
    assert results[0]["precision"] == 1.0
    assert results[0]["recall"] == 1.0
    assert results[0]["detection_latency_s"] == pytest.approx(0.05)
