#!/usr/bin/env python3
"""The Fig. 11 flow-modification-suppression experiment, end to end.

Runs the Section VII-B experiment on the six-host enterprise network for
all three controller models, baseline vs. attacked, and prints the two
Fig. 11 series (throughput and latency) plus the control-plane
amplification the paper describes ("for every n packets in the data plane
... up to n PACKET_IN messages").

The defaults here are scaled down (10 ping trials, 2 x 2 s iperf trials)
so the example finishes in well under a minute; pass --full for the
paper's 60-ping / 30 x 10 s timing.

Run:  python examples/enterprise_suppression.py [--full]
"""

import argparse

from repro.experiments import run_suppression_experiment

CONTROLLERS = ("floodlight", "pox", "ryu")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the paper's full timing (60 pings, 30 x 10 s iperf trials)",
    )
    args = parser.parse_args()

    if args.full:
        config = dict(ping_trials=60, iperf_trials=30, iperf_duration_s=10.0,
                      iperf_gap_s=10.0, warmup_s=30.0)
    else:
        config = dict(ping_trials=10, iperf_trials=2, iperf_duration_s=2.0,
                      iperf_gap_s=2.0, warmup_s=5.0)

    header = (
        f"{'controller':<11} {'mode':<9} {'throughput':>11} {'median RTT':>11} "
        f"{'loss':>6} {'PACKET_INs':>10} {'FLOW_MODs dropped':>18}"
    )
    print(header)
    print("-" * len(header))
    for controller in CONTROLLERS:
        for attacked in (False, True):
            result = run_suppression_experiment(controller, attacked, **config)
            rtt = (
                f"{result.median_rtt_s * 1000:.2f} ms"
                if result.median_rtt_s is not None
                else "inf (*)"
            )
            throughput = (
                f"{result.mean_throughput_mbps:.1f} Mbps"
                if not result.denial_of_service
                else "0.0 (*)"
            )
            print(
                f"{controller:<11} {'attack' if attacked else 'baseline':<9} "
                f"{throughput:>11} {rtt:>11} {result.ping_loss_rate:>6.0%} "
                f"{result.packet_ins:>10} {result.flow_mods_dropped:>18}"
            )
    print()
    print("(*) denial of service: throughput zero, latency infinite — the")
    print("    Fig. 11 asterisk.  POX releases buffered packets through the")
    print("    FLOW_MOD itself, so dropping the FLOW_MOD kills the packet.")


if __name__ == "__main__":
    main()
