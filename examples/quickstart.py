#!/usr/bin/env python3
"""Quickstart: build a network, write an attack, inject it, observe it.

This is the smallest end-to-end ATTAIN workflow:

1. declare a two-switch topology and pick a controller;
2. derive the system model (N_D, N_C) and an attacker model (no TLS);
3. write a one-rule attack in the attack language (drop every FLOW_MOD);
4. proxy the control plane through the runtime injector;
5. ping across the network and compare against the no-attack baseline.

Run:  python examples/quickstart.py
"""

from repro.attacks import flow_mod_suppression_attack
from repro.controllers import FloodlightController
from repro.core import AttackModel, RuntimeInjector, SystemModel
from repro.core.monitors import ControlPlaneMonitor
from repro.dataplane import Network, Topology
from repro.sim import SimulationEngine


def run(attacked: bool) -> dict:
    engine = SimulationEngine()

    # 1. Topology: h1 - s1 - s2 - h2 with 100 Mbps links.
    topo = Topology("quickstart")
    topo.add_host("h1")
    topo.add_host("h2")
    topo.add_switch("s1")
    topo.add_switch("s2")
    topo.add_link("h1", "s1")
    topo.add_link("s1", "s2")
    topo.add_link("h2", "s2")

    network = Network(engine, topo)
    controller = FloodlightController(engine)

    # 2. System model + attacker capabilities (plain TCP => Γ_NoTLS).
    system = SystemModel.from_topology(topo, controllers=["c1"])
    attack_model = AttackModel.no_tls_everywhere(system)

    # 3. The Fig. 10 flow-modification-suppression attack.
    attack = flow_mod_suppression_attack(system.connection_keys()) if attacked else None

    # 4. Interpose the control plane through the runtime injector.
    injector = RuntimeInjector(engine, attack_model, attack)
    monitor = ControlPlaneMonitor()
    injector.add_observer(monitor)
    injector.install(network, {"c1": controller})
    network.start()

    # 5. Let the handshakes finish, then ping h1 -> h2 ten times.
    engine.run(until=5.0)
    assert network.all_connected()
    ping = network.host("h1").ping(network.host_ip("h2"), count=10, interval=1.0)
    engine.run(until=30.0)

    result = ping.result
    return {
        "attacked": attacked,
        "pings": f"{result.received}/{result.sent}",
        "median_rtt_ms": round(result.median_rtt * 1000, 3) if result.median_rtt else None,
        "packet_ins": monitor.count_of("PACKET_IN"),
        "flow_mods_dropped": monitor.dropped_by_type.get("FLOW_MOD", 0),
    }


def main() -> None:
    baseline = run(attacked=False)
    attacked = run(attacked=True)
    print("baseline :", baseline)
    print("attacked :", attacked)
    print()
    print(
        "Under suppression every data packet becomes a PACKET_IN round "
        "trip: latency rises and the control plane amplifies "
        f"({baseline['packet_ins']} -> {attacked['packet_ins']} PACKET_INs)."
    )


if __name__ == "__main__":
    main()
