#!/usr/bin/env python3
"""Topology poisoning: the LLDP link-fabrication attack (Hong et al.).

The paper's background section notes that "LLDP messages can be used to
fabricate fake links to manipulate the controller into believing that such
links exist, thus causing black hole routing", and points out that such
attacks "can be written in the ATTAIN attack language".  This example does
exactly that:

1. run a controller with the LLDP topology-discovery service and watch it
   learn the real links;
2. inject the link-fabrication attack (a one-rule INJECTNEWMESSAGE attack)
   on the (c1, s1) connection;
3. watch a link from a non-existent switch (dpid 7) appear in — and stay
   fresh in — the controller's topology database.

It also shows the monitoring-evasion attack starving the same controller's
flow-statistics collector.

Run:  python examples/topology_poisoning.py
"""

from repro.attacks import link_fabrication_attack, stats_evasion_attack
from repro.controllers import (
    FloodlightController,
    StatsCollectorApp,
    TopologyDiscoveryApp,
)
from repro.core import AttackModel, RuntimeInjector, SystemModel
from repro.dataplane import Network, Topology
from repro.sim import SimulationEngine


def build(attack=None):
    engine = SimulationEngine()
    topo = Topology("poison")
    topo.add_host("h1")
    topo.add_host("h2")
    topo.add_switch("s1", datapath_id=1)
    topo.add_switch("s2", datapath_id=2)
    topo.add_link("h1", "s1")
    topo.add_link("s1", "s2")
    topo.add_link("h2", "s2")
    network = Network(engine, topo)
    discovery = TopologyDiscoveryApp(probe_interval=1.0)
    stats = StatsCollectorApp(poll_interval=1.0)
    controller = FloodlightController(engine, extra_apps=[discovery, stats])
    system = SystemModel.from_topology(topo, ["c1"])
    model = AttackModel.no_tls_everywhere(system)
    injector = RuntimeInjector(engine, model, attack)
    injector.install(network, {"c1": controller})
    network.start()
    return engine, network, discovery, stats


def show_links(discovery, engine, label):
    links = sorted(discovery.links(engine.now))
    print(f"{label}:")
    for (src_dpid, src_port, dst_dpid, dst_port) in links:
        marker = "  <-- FABRICATED" if src_dpid not in (1, 2) else ""
        print(f"  dpid {src_dpid} port {src_port} -> "
              f"dpid {dst_dpid} port {dst_port}{marker}")


def main() -> None:
    print("=== baseline: genuine topology discovery ===")
    engine, _network, discovery, _stats = build()
    engine.run(until=15.0)
    show_links(discovery, engine, "discovered links")

    print()
    print("=== under LLDP link fabrication on (c1, s1) ===")
    attack = link_fabrication_attack(
        ("c1", "s1"), fake_src_dpid=7, fake_src_port=3, reported_in_port=2
    )
    engine, _network, discovery, _stats = build(attack)
    engine.run(until=15.0)
    show_links(discovery, engine, "discovered links")
    assert discovery.has_link(7, 1, engine.now)
    print("The controller now believes switch 7 exists and is adjacent to")
    print("s1 — the black-hole-routing precondition.  The fake link stays")
    print("fresh because it refreshes on every genuine probe.")

    print()
    print("=== monitoring evasion: starve the statistics collector ===")
    engine, network, _discovery, stats = build(
        stats_evasion_attack([("c1", "s1"), ("c1", "s2")])
    )
    engine.run(until=5.0)
    ping = network.host("h1").ping(network.host_ip("h2"), count=3)
    engine.run(until=20.0)
    print(f"data plane pings     : {ping.result.received}/{ping.result.sent}")
    print(f"stats polls sent     : {stats.polls_sent}")
    print(f"stats replies seen   : {stats.replies_received}")
    print("Traffic flows normally while the controller's statistics view")
    print("stays permanently empty — the attacker's flows never appear in")
    print("any monitoring report.")


if __name__ == "__main__":
    main()
