#!/usr/bin/env python3
"""Attack state-graph templates: composing bigger attacks from pieces.

The paper's conclusion names, as future work, "attack language
abstractions that will allow practitioners to use predefined attack state
graph templates to generate larger and more complex attack descriptions
without having to manually generate many of the lower-level details."

This example builds a three-part campaign entirely from templates:

* ``sequential_stages`` — a reconnaissance -> suppression escalation on
  (c1, s1), advancing when a FLOW_MOD for the victim's traffic appears;
* ``watchdog`` — the whole campaign stays inert until the first
  PACKET_IN proves the network is live;
* ``product`` — in parallel, an independent counting component watches
  (c1, s2) and starts dropping its echo traffic after 5 messages.

The composite is still a single validated Attack: one state graph, one
executor, one totally ordered message stream — and it still round-trips
through the executable-code generator.

Run:  python examples/staged_attack.py
"""

from repro.attacks import counting_attack_deque
from repro.controllers import FloodlightController
from repro.core import AttackModel, RuntimeInjector, SystemModel
from repro.core.compiler import compile_attack_source, generate_attack_source
from repro.core.lang import (
    DropMessage,
    Rule,
    Stage,
    parse_condition,
    product,
    sequential_stages,
    watchdog,
)
from repro.core.model import gamma_no_tls
from repro.core.monitors import ControlPlaneMonitor
from repro.dataplane import Network, Topology
from repro.sim import SimulationEngine

CONN_S1 = ("c1", "s1")
CONN_S2 = ("c1", "s2")


def build_campaign():
    # Part 1: recon -> suppress escalation on (c1, s1).
    escalation = sequential_stages(
        "escalation",
        CONN_S1,
        [
            Stage("recon", rules=[], advance_when="type = FLOW_MOD"),
            Stage(
                "suppress",
                rules=[
                    Rule("drop_flow_mods", CONN_S1, gamma_no_tls(),
                         parse_condition("type = FLOW_MOD"), [DropMessage()])
                ],
                advance_when=None,
            ),
        ],
    )
    # Part 2: guard it behind a liveness trigger.
    guarded = watchdog("guarded-escalation", CONN_S1,
                       "type = PACKET_IN", escalation)
    # Part 3: compose with an independent counter on (c1, s2).
    counter = counting_attack_deque(CONN_S2, n=5,
                                    condition_text="type = ECHO_REQUEST")
    return product("campaign", guarded, counter)


def main() -> None:
    campaign = build_campaign()
    print(f"composite attack : {campaign.name}")
    print(f"states ({len(campaign.states)})      : {sorted(campaign.states)}")
    print(f"start            : {campaign.start}")
    print(f"absorbing        : {sorted(campaign.graph.absorbing_states())}")

    # The composite still round-trips through the compiler back end.
    rebuilt = compile_attack_source(generate_attack_source(campaign))
    assert rebuilt.summary() == campaign.summary()
    print("codegen          : round-trip OK")

    # Inject it.
    engine = SimulationEngine()
    topo = Topology("campaign")
    topo.add_host("h1")
    topo.add_host("h2")
    topo.add_switch("s1", datapath_id=1)
    topo.add_switch("s2", datapath_id=2)
    topo.add_link("h1", "s1")
    topo.add_link("s1", "s2")
    topo.add_link("h2", "s2")
    network = Network(engine, topo)
    controller = FloodlightController(engine)
    system = SystemModel.from_topology(topo, ["c1"])
    model = AttackModel.no_tls_everywhere(system)
    injector = RuntimeInjector(engine, model, campaign)
    monitor = ControlPlaneMonitor()
    injector.add_observer(monitor)
    injector.install(network, {"c1": controller})
    network.start()
    engine.run(until=5.0)

    ping = network.host("h1").ping(network.host_ip("h2"), count=6, interval=1.0)
    engine.run(until=60.0)

    print()
    print(f"states visited   : {monitor.visited_states()}")
    print(f"pings            : {ping.result.received}/{ping.result.sent}")
    print(f"FLOW_MODs dropped: {monitor.dropped_by_type.get('FLOW_MOD', 0)}")
    print(f"final state      : {injector.current_state}")


if __name__ == "__main__":
    main()
