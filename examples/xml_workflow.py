#!/usr/bin/env python3
"""The full practitioner workflow: XML files -> compiler -> injection.

This mirrors the paper's Fig. 7 architecture exactly: the practitioner
writes three XML files (system model, attack model, attack states), the
compiler parses them and generates an executable code file, and the
runtime injector runs the generated attack — here, a variant of the
connection-interruption attack expressed purely in XML.

Run:  python examples/xml_workflow.py
"""

from repro.controllers import FloodlightController
from repro.core import RuntimeInjector
from repro.core.compiler import (
    compile_attack_source,
    generate_attack_source,
    parse_attack_model_xml,
    parse_attack_states_xml,
    parse_system_model_xml,
)
from repro.core.monitors import ControlPlaneMonitor
from repro.dataplane import Network, Topology
from repro.sim import SimulationEngine

SYSTEM_XML = """
<system name="demo">
  <controllers><controller name="c1"/></controllers>
  <switches>
    <switch name="s1" dpid="1" ports="1,2,3"/>
    <switch name="s2" dpid="2" ports="1,2"/>
  </switches>
  <hosts>
    <host name="h1" ip="10.0.0.1"/>
    <host name="h2" ip="10.0.0.2"/>
  </hosts>
  <dataplane>
    <link a="h1" b="s1" b-port="1"/>
    <link a="s1" a-port="3" b="s2" b-port="1"/>
    <link a="h2" b="s2" b-port="2"/>
  </dataplane>
  <controlplane>
    <connection controller="c1" switch="s1"/>
    <connection controller="c1" switch="s2"/>
  </controlplane>
</system>
"""

ATTACK_MODEL_XML = """
<attackmodel>
  <connection controller="c1" switch="s1" class="no-tls"/>
  <connection controller="c1" switch="s2" class="no-tls"/>
</attackmodel>
"""

# Count three PACKET_INs on (c1, s1) with the Section VIII-B deque-counter
# idiom, then start dropping every FLOW_MOD toward s1.
ATTACK_XML = """
<attack name="count-then-suppress" start="counting">
  <deque name="counter"><value type="int">0</value></deque>
  <state name="counting">
    <rule name="count_packet_ins">
      <connections><connection controller="c1" switch="s1"/></connections>
      <gamma class="no-tls"/>
      <condition>type = PACKET_IN</condition>
      <actions>
        <prepend deque="counter" value="shift(counter) + 1"/>
      </actions>
    </rule>
    <rule name="arm_after_three">
      <connections><connection controller="c1" switch="s1"/></connections>
      <gamma class="no-tls"/>
      <condition>type = PACKET_IN and front(counter) = 3</condition>
      <actions>
        <goto state="suppressing"/>
      </actions>
    </rule>
  </state>
  <state name="suppressing">
    <rule name="drop_flow_mods">
      <connections><connection controller="c1" switch="s1"/></connections>
      <gamma class="no-tls"/>
      <condition>type = FLOW_MOD</condition>
      <actions><drop/></actions>
    </rule>
  </state>
</attack>
"""


def main() -> None:
    # --- compile ---------------------------------------------------------
    system = parse_system_model_xml(SYSTEM_XML)
    attack_model = parse_attack_model_xml(ATTACK_MODEL_XML, system)
    attack = parse_attack_states_xml(ATTACK_XML, system)
    attack.validate_against(attack_model)

    source = generate_attack_source(attack)
    print("=== generated executable code (first 25 lines) ===")
    print("\n".join(source.splitlines()[:25]))
    print("...")
    attack = compile_attack_source(source)  # run the generated module

    # --- deploy ----------------------------------------------------------
    engine = SimulationEngine()
    topo = Topology("demo")
    topo.add_host("h1", ip="10.0.0.1")
    topo.add_host("h2", ip="10.0.0.2")
    topo.add_switch("s1", datapath_id=1)
    topo.add_switch("s2", datapath_id=2)
    topo.add_link("h1", "s1")
    topo.add_link("s1", "s2")
    topo.add_link("h2", "s2")
    network = Network(engine, topo)
    controller = FloodlightController(engine)

    injector = RuntimeInjector(engine, attack_model, attack)
    monitor = ControlPlaneMonitor()
    injector.add_observer(monitor)
    injector.install(network, {"c1": controller})
    network.start()
    engine.run(until=5.0)

    ping = network.host("h1").ping(network.host_ip("h2"), count=8, interval=1.0)
    engine.run(until=30.0)

    print()
    print("=== injection results ===")
    print(f"attack states visited : {monitor.visited_states()}")
    print(f"rules fired           : {monitor.fired_rules()[:6]}...")
    print(f"FLOW_MODs dropped     : {monitor.dropped_by_type.get('FLOW_MOD', 0)}")
    print(f"pings                 : {ping.result.received}/{ping.result.sent}")


if __name__ == "__main__":
    main()
