#!/usr/bin/env python3
"""OFTest-style switch compliance report.

The paper positions ATTAIN as subsuming OFTest's methodology ("OFTest
validates switches for OpenFlow compliance by simulating control and data
plane elements with a single switch under test").  This example runs the
repository's compliance suite against the built-in switch model and prints
the report — the same harness a practitioner would point at a modified or
alternative switch implementation.

Run:  python examples/switch_compliance.py
"""

from repro.experiments.compliance import run_compliance_suite


def main() -> None:
    report = run_compliance_suite()
    print(report.render())
    if not report.all_passed:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
