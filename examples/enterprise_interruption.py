#!/usr/bin/env python3
"""The Table II connection-interruption experiment, end to end.

Runs the Section VII-C experiment: the three-state Fig. 12 attack severs
the (c1, s2) control connection after observing the DMZ firewall's drop
FLOW_MOD for external -> internal traffic.  Each controller runs in both
fail-safe (standalone) and fail-secure mode, and the four Table II
reachability probes are evaluated.

Run:  python examples/enterprise_interruption.py
"""

from repro.dataplane import FailMode
from repro.experiments import run_interruption_experiment

CONTROLLERS = ("floodlight", "pox", "ryu")
PROBES = (
    ("External user -> external host (t=30s)", "external_to_external_t30"),
    ("Internal user -> external host (t=30s)", "internal_to_external_t30"),
    ("External user -> internal host (t=50s)", "external_to_internal_t50"),
    ("Internal user -> external host (t=95s)", "internal_to_external_t95"),
)


def main() -> None:
    results = {}
    for controller in CONTROLLERS:
        for mode in (FailMode.STANDALONE, FailMode.SECURE):
            results[(controller, mode)] = run_interruption_experiment(controller, mode)

    columns = [(c, m) for c in CONTROLLERS for m in (FailMode.STANDALONE, FailMode.SECURE)]
    label = {FailMode.STANDALONE: "safe", FailMode.SECURE: "secure"}
    header = f"{'probe':<42}" + "".join(
        f"{c[:5]}/{label[m]:<7}" for (c, m) in columns
    )
    print(header)
    print("-" * len(header))
    for text, attr in PROBES:
        row = f"{text:<42}"
        for key in columns:
            ok = getattr(results[key], attr)
            row += f"{'yes' if ok else 'no':<13}"
        print(row)
    print()
    for key in columns:
        result = results[key]
        notes = []
        if result.unauthorized_increased_access:
            notes.append("UNAUTHORIZED INCREASED ACCESS")
        if result.denial_of_service:
            notes.append("DENIAL OF SERVICE against legitimate traffic")
        if not result.interruption_happened:
            notes.append("attack never reached sigma3 (rule phi2 did not fire)")
        print(f"{key[0]}/{label[key[1]]}: states={result.attack_states_visited} "
              f"{'; '.join(notes) if notes else 'interrupted as expected'}")
    print()
    print("Ryu's simple_switch builds flow-mod matches from L2 fields only,")
    print("so phi2's nw_src/nw_dst conditional never fires — the Table II")
    print("anomaly: its firewall stays up and no denial of service occurs.")


if __name__ == "__main__":
    main()
