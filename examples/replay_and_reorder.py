#!/usr/bin/env python3
"""The Section VIII-A expressiveness attacks: reordering and replay.

Feeds a synthetic stream of ECHO_REQUEST messages through the attack
executor directly (no network needed) and shows:

* the **reordering** attack batching 3 messages in a deque used as a stack
  and releasing them in reverse order;
* the **replay** attack recording a FIFO batch and re-injecting it;
* the **flooding** variant re-injecting each recorded message 3 times.

Run:  python examples/replay_and_reorder.py
"""

from repro.attacks import reordering_attack, replay_attack
from repro.core.injector import AttackExecutor
from repro.core.lang.properties import Direction, InterposedMessage
from repro.openflow import EchoRequest
from repro.sim import SimulationEngine

CONNECTION = ("c1", "s1")


def feed(executor: AttackExecutor, engine: SimulationEngine, count: int):
    """Push `count` ECHO_REQUESTs through the executor; return emissions."""
    emitted = []
    for index in range(count):
        message = EchoRequest(payload=f"m{index}".encode(), xid=index + 1)
        interposed = InterposedMessage(
            CONNECTION, Direction.TO_CONTROLLER, engine.now, message.pack(), message
        )
        for outgoing in executor.handle_message(interposed):
            emitted.append(outgoing.message.parsed.payload.decode())
    return emitted


def main() -> None:
    engine = SimulationEngine()

    print("=== message reordering (batch of 3, released reversed) ===")
    attack = reordering_attack(CONNECTION, batch_size=3)
    executor = AttackExecutor(attack, engine)
    order = feed(executor, engine, 6)
    print(f"arrival order : m0 m1 m2 m3 m4 m5")
    print(f"wire order    : {' '.join(order)}")
    assert order == ["m2", "m1", "m0", "m5", "m4", "m3"], order

    print()
    print("=== message replay (record 2, then replay FIFO) ===")
    attack = replay_attack(CONNECTION, condition_text="type = ECHO_REQUEST",
                           batch_size=2, replay_copies=1)
    executor = AttackExecutor(attack, engine)
    order = feed(executor, engine, 3)
    print(f"arrival order : m0 m1 m2")
    print(f"wire order    : {' '.join(order)}  (m0, m1 recorded then replayed)")

    print()
    print("=== message flooding (each recorded message x3) ===")
    attack = replay_attack(CONNECTION, condition_text="type = ECHO_REQUEST",
                           batch_size=2, replay_copies=3)
    executor = AttackExecutor(attack, engine)
    order = feed(executor, engine, 3)
    print(f"arrival order : m0 m1 m2")
    print(f"wire order    : {' '.join(order)}")


if __name__ == "__main__":
    main()
