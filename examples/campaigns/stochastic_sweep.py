"""A Python campaign spec: sweep the stochastic-drop attack's intensity.

Python specs export ``SPEC`` (a dict or a ``CampaignSpec``); they are the
right format when axes are computed.  This one runs the seeded
stochastic FLOW_MOD-drop attack at one probability against every
controller, five seeds each, so the report's throughput/latency deltas
average over the drop pattern:

    python -m repro campaign run examples/campaigns/stochastic_sweep.py \
        --workers 4
"""

SPEC = {
    "name": "stochastic-sweep",
    "attacks": ["passthrough", "stochastic-drop"],
    "controllers": ["floodlight", "pox", "ryu"],
    "seeds": [1, 2, 3, 4, 5],
    "baseline": "passthrough",
    "params": {
        "ping_trials": 5,
        "iperf_trials": 1,
        "iperf_duration_s": 1.0,
        "iperf_gap_s": 1.0,
        "warmup_s": 2.0,
    },
    "attack_params": {
        "stochastic-drop": {
            "drop_probability": 0.3,
            "condition_text": "type = FLOW_MOD",
        },
    },
}
