"""Sharded fabric scaling: packets/sec across worker processes.

The tentpole claim: partitioning a generated fat-tree into per-pod
regions and executing them on the persistent worker pool scales the
simulation's packet throughput near-linearly in the number of shards.

Two throughput figures are reported per shard count:

* ``wall_pps`` — delivered packets over wall-clock time.  On a
  multi-core host this is the scaling headline; on the single-CPU CI
  container every worker timeshares one core, so wall time is flat (plus
  IPC overhead) no matter how many shards run.
* ``capacity_pps`` — delivered packets over the *critical-path* CPU
  seconds: the busiest worker's ``time.process_time()`` plus the
  coordinator's.  This is the wall throughput the same run achieves once
  each worker owns a core, measured rather than extrapolated: sharding
  genuinely removes work from the critical path or this number does not
  move.  The acceptance floor (>= 2x at 4 shards on fat-tree-k8) is
  asserted on capacity.

``REPRO_BENCH_QUICK=1`` shrinks the workload (fat-tree-k4, shards {1,2})
for CI smoke; the committed ``BENCH_fabric.json`` is generated at full
scale with ``--benchmark-json``.
"""

import os

import pytest

from benchmarks.conftest import print_table
from repro.campaign import reset_run_state
from repro.experiments.fabric import run_fabric_experiment

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0", "false")

if QUICK:
    FABRIC = "fat-tree-k4"
    SHARD_COUNTS = (1, 2)
    PAIRS, PACKETS = 4, 50
    SPEEDUP_FLOOR = None  # smoke: shapes only, too small to assert scaling
else:
    FABRIC = "fat-tree-k8"
    SHARD_COUNTS = (1, 2, 4)
    PAIRS, PACKETS = 64, 250
    SPEEDUP_FLOOR = 2.0  # the PR acceptance bar: >= 2x capacity at 4 shards

INTERVAL_S = 0.002


def _run(shards):
    reset_run_state()
    return run_fabric_experiment(
        FABRIC, pairs=PAIRS, packets=PACKETS, interval_s=INTERVAL_S,
        shards=shards,
    )


def test_fabric_packets_per_sec_scaling(benchmark):
    results = benchmark.pedantic(
        lambda: {shards: _run(shards) for shards in SHARD_COUNTS},
        rounds=1, iterations=1,
    )

    baseline = results[SHARD_COUNTS[0]]
    rows = []
    for shards, result in results.items():
        capacity_speedup = (
            result.capacity_packets_per_sec / baseline.capacity_packets_per_sec
        )
        rows.append((
            shards,
            f"{result.wall_s:.2f} s",
            f"{result.wall_packets_per_sec:,.0f}",
            f"{result.capacity_packets_per_sec:,.0f}",
            f"{capacity_speedup:.2f}x",
        ))
    cpus = os.cpu_count() or 1
    print_table(
        f"Sharded {FABRIC}: {baseline.switches} switches, "
        f"{PAIRS} pairs x {PACKETS} packets (host cpus={cpus})",
        ("shards", "wall", "wall pps", "capacity pps", "capacity speedup"),
        rows,
    )

    expected = PAIRS * PACKETS
    for shards, result in results.items():
        # Shard-count invariance: identical delivery and event counts.
        assert result.packets_delivered == result.packets_sent == expected
        assert result.processed_events == baseline.processed_events
        assert result.cross_shard_messages == baseline.cross_shard_messages

    benchmark.extra_info["fabric"] = FABRIC
    benchmark.extra_info["switches"] = baseline.switches
    benchmark.extra_info["hosts"] = baseline.hosts
    benchmark.extra_info["regions"] = baseline.regions
    benchmark.extra_info["packets"] = expected
    benchmark.extra_info["cpus"] = cpus
    benchmark.extra_info["quick"] = QUICK
    for shards, result in results.items():
        benchmark.extra_info[f"shards{shards}_wall_s"] = round(result.wall_s, 3)
        benchmark.extra_info[f"shards{shards}_wall_pps"] = round(
            result.wall_packets_per_sec, 1
        )
        benchmark.extra_info[f"shards{shards}_capacity_pps"] = round(
            result.capacity_packets_per_sec, 1
        )
        benchmark.extra_info[f"shards{shards}_worker_cpu_s"] = [
            round(cpu, 3) for cpu in result.worker_cpu_s
        ]

    top = results[SHARD_COUNTS[-1]]
    speedup = top.capacity_packets_per_sec / baseline.capacity_packets_per_sec
    benchmark.extra_info["capacity_speedup_at_max_shards"] = round(speedup, 2)
    if SPEEDUP_FLOOR is not None:
        assert speedup >= SPEEDUP_FLOOR, (
            f"capacity speedup at {SHARD_COUNTS[-1]} shards only "
            f"{speedup:.2f}x (floor {SPEEDUP_FLOOR}x)"
        )


@pytest.mark.skipif(QUICK, reason="quick mode skips the large-fabric campaign")
def test_registered_attack_campaign_on_125_switch_fabric(benchmark):
    """A registered attack campaign completes against a 125-switch
    fat-tree-k10, and its trace export is shard-count invariant."""

    def run_pair():
        reset_run_state()
        inline = run_fabric_experiment(
            "fat-tree-k10", controller="floodlight",
            attack="flow-mod-suppression", pairs=8, packets=2,
            shards=1, trace=True,
        )
        reset_run_state()
        pooled = run_fabric_experiment(
            "fat-tree-k10", controller="floodlight",
            attack="flow-mod-suppression", pairs=8, packets=2,
            shards=4, trace=True,
        )
        return inline, pooled

    inline, pooled = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert inline.switches == 125
    assert inline.flow_mods_dropped > 0
    assert inline.ping_sent == 16
    assert inline.trace_jsonl == pooled.trace_jsonl
    assert inline.trace_events == pooled.trace_events > 0
    print_table(
        "fat-tree-k10 suppression campaign (125 switches)",
        ("shards", "pings", "flow-mods dropped", "trace events", "wall"),
        [
            (1, f"{inline.ping_received}/{inline.ping_sent}",
             inline.flow_mods_dropped, inline.trace_events,
             f"{inline.wall_s:.2f} s"),
            (4, f"{pooled.ping_received}/{pooled.ping_sent}",
             pooled.flow_mods_dropped, pooled.trace_events,
             f"{pooled.wall_s:.2f} s"),
        ],
    )
    benchmark.extra_info["switches"] = inline.switches
    benchmark.extra_info["flow_mods_dropped"] = inline.flow_mods_dropped
    benchmark.extra_info["trace_events"] = inline.trace_events
    benchmark.extra_info["shard_invariant"] = (
        inline.trace_jsonl == pooled.trace_jsonl
    )
