"""Sharded fabric scaling: packets/sec across worker processes.

The tentpole claim: partitioning a generated fat-tree into per-pod
regions and executing them on the persistent worker pool scales the
simulation's packet throughput near-linearly in the number of shards —
and the cross-shard fast lane (packed boundary codec + adaptive
lookahead + SPMD barrier) keeps the exchange tax off the critical path.

Two throughput figures are reported side by side per shard count:

* ``wall_pps`` — delivered packets over wall-clock time.  On a
  multi-core host this is the scaling headline; on the single-CPU CI
  container every worker timeshares one core, so wall time stays flat
  (plus IPC overhead) no matter how many shards run.  **Read wall_pps
  with the host cpu count in hand** — the table prints it.
* ``capacity_pps`` — delivered packets over the *critical-path* CPU
  seconds: the busiest worker's ``time.process_time()`` plus the
  coordinator's.  This is the wall throughput the same run achieves once
  each worker owns a core, measured rather than extrapolated: sharding
  genuinely removes work from the critical path or this number does not
  move.  Acceptance floors are asserted on capacity.

The exchange A/B: the 4-shard run is repeated with
``exchange_codec=False`` (batches pickled, the pre-fast-lane wire
format) and the byte totals compared — the codec must move >= 5x fewer
bytes for the same message stream.  The A/B is pinned at 4 shards
because beyond that most directed worker pairs share no boundary link
and the totals on both sides are dominated by the 16-byte barrier
control words the two formats pay identically.

``REPRO_BENCH_QUICK=1`` shrinks the workload (fat-tree-k4, shards {1,2})
for CI smoke; the committed ``BENCH_fabric.json`` is generated at full
scale with ``--benchmark-json``.
"""

import os

import pytest

from benchmarks.conftest import print_table
from repro.campaign import reset_run_state
from repro.experiments.fabric import run_fabric_experiment

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0", "false")

if QUICK:
    FABRIC = "fat-tree-k4"
    SHARD_COUNTS = (1, 2)
    A_B_SHARDS = 2
    PAIRS, PACKETS = 4, 50
    SPEEDUP_FLOOR = None  # smoke: shapes only, too small to assert scaling
    BYTE_RATIO_FLOOR = 2.0  # tiny run: channel tables still amortizing
else:
    FABRIC = "fat-tree-k8"
    SHARD_COUNTS = (1, 2, 4, 8)
    A_B_SHARDS = 4
    PAIRS, PACKETS = 64, 250
    SPEEDUP_FLOOR = 3.2  # acceptance floor at max shards (target: >= 4x)
    BYTE_RATIO_FLOOR = 5.0

INTERVAL_S = 0.002


def _run(shards, **kwargs):
    reset_run_state()
    return run_fabric_experiment(
        FABRIC, pairs=PAIRS, packets=PACKETS, interval_s=INTERVAL_S,
        shards=shards, **kwargs,
    )


def test_fabric_packets_per_sec_scaling(benchmark):
    def run_all():
        results = {shards: _run(shards) for shards in SHARD_COUNTS}
        pickled = _run(A_B_SHARDS, exchange_codec=False)
        return results, pickled

    results, pickled = benchmark.pedantic(run_all, rounds=1, iterations=1)

    baseline = results[SHARD_COUNTS[0]]
    rows = []
    for shards, result in results.items():
        capacity_speedup = (
            result.capacity_packets_per_sec / baseline.capacity_packets_per_sec
        )
        rows.append((
            shards,
            f"{result.wall_s:.2f} s",
            f"{result.wall_packets_per_sec:,.0f}",
            f"{result.capacity_packets_per_sec:,.0f}",
            f"{capacity_speedup:.2f}x",
            f"{result.exchange_bytes:,}",
        ))
    cpus = os.cpu_count() or 1
    print_table(
        f"Sharded {FABRIC}: {baseline.switches} switches, "
        f"{PAIRS} pairs x {PACKETS} packets (host cpus={cpus}; wall pps "
        f"is cpu-bound below shard count)",
        ("shards", "wall", "wall pps", "capacity pps", "capacity speedup",
         "exchange bytes"),
        rows,
    )

    expected = PAIRS * PACKETS
    for shards, result in results.items():
        # Shard-count invariance: identical delivery and event counts.
        assert result.packets_delivered == result.packets_sent == expected
        assert result.processed_events == baseline.processed_events
        assert result.cross_shard_messages == baseline.cross_shard_messages
        assert result.epochs == baseline.epochs

    # Exchange fast-lane A/B: same stream, two wire formats.
    top = results[SHARD_COUNTS[-1]]
    ab = results[A_B_SHARDS]
    assert pickled.packets_delivered == expected
    assert pickled.cross_shard_messages == ab.cross_shard_messages
    byte_ratio = (
        pickled.exchange_bytes / ab.exchange_bytes
        if ab.exchange_bytes else 0.0
    )
    per_msg = (
        ab.exchange_bytes / ab.cross_shard_messages
        if ab.cross_shard_messages else 0.0
    )
    print_table(
        f"Exchange wire formats at {A_B_SHARDS} shards "
        f"({ab.cross_shard_messages} cross-shard messages)",
        ("format", "bytes", "blobs", "B/message"),
        [
            ("packed codec", f"{ab.exchange_bytes:,}",
             ab.exchange_blobs, f"{per_msg:.1f}"),
            ("pickled batches", f"{pickled.exchange_bytes:,}",
             pickled.exchange_blobs,
             f"{pickled.exchange_bytes / max(1, pickled.cross_shard_messages):.1f}"),
        ],
    )

    benchmark.extra_info["fabric"] = FABRIC
    benchmark.extra_info["switches"] = baseline.switches
    benchmark.extra_info["hosts"] = baseline.hosts
    benchmark.extra_info["regions"] = baseline.regions
    benchmark.extra_info["packets"] = expected
    benchmark.extra_info["cpus"] = cpus
    benchmark.extra_info["quick"] = QUICK
    benchmark.extra_info["epochs"] = baseline.epochs
    benchmark.extra_info["epochs_skipped"] = baseline.epochs_skipped
    benchmark.extra_info["epochs_widened"] = baseline.epochs_widened
    for shards, result in results.items():
        benchmark.extra_info[f"shards{shards}_wall_s"] = round(result.wall_s, 3)
        benchmark.extra_info[f"shards{shards}_wall_pps"] = round(
            result.wall_packets_per_sec, 1
        )
        benchmark.extra_info[f"shards{shards}_capacity_pps"] = round(
            result.capacity_packets_per_sec, 1
        )
        benchmark.extra_info[f"shards{shards}_worker_cpu_s"] = [
            round(cpu, 3) for cpu in result.worker_cpu_s
        ]
        benchmark.extra_info[f"shards{shards}_exchange_bytes"] = (
            result.exchange_bytes
        )
        benchmark.extra_info[f"shards{shards}_exchange_blobs"] = (
            result.exchange_blobs
        )

    speedup = top.capacity_packets_per_sec / baseline.capacity_packets_per_sec
    benchmark.extra_info["capacity_speedup_at_max_shards"] = round(speedup, 2)
    benchmark.extra_info["codec_byte_ratio"] = round(byte_ratio, 2)
    benchmark.extra_info["codec_bytes_per_message"] = round(per_msg, 1)
    if SPEEDUP_FLOOR is not None:
        assert speedup >= SPEEDUP_FLOOR, (
            f"capacity speedup at {SHARD_COUNTS[-1]} shards only "
            f"{speedup:.2f}x (floor {SPEEDUP_FLOOR}x)"
        )
    assert byte_ratio >= BYTE_RATIO_FLOOR, (
        f"codec only saved {byte_ratio:.2f}x bytes vs pickled batches "
        f"(floor {BYTE_RATIO_FLOOR}x)"
    )


@pytest.mark.skipif(QUICK, reason="quick mode skips the large-fabric campaign")
def test_registered_attack_campaign_on_125_switch_fabric(benchmark):
    """A registered attack campaign completes against a 125-switch
    fat-tree-k10, and its trace export is shard-count invariant."""

    def run_pair():
        reset_run_state()
        inline = run_fabric_experiment(
            "fat-tree-k10", controller="floodlight",
            attack="flow-mod-suppression", pairs=8, packets=2,
            shards=1, trace=True,
        )
        reset_run_state()
        pooled = run_fabric_experiment(
            "fat-tree-k10", controller="floodlight",
            attack="flow-mod-suppression", pairs=8, packets=2,
            shards=4, trace=True,
        )
        return inline, pooled

    inline, pooled = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert inline.switches == 125
    assert inline.flow_mods_dropped > 0
    assert inline.ping_sent == 16
    assert inline.trace_jsonl == pooled.trace_jsonl
    assert inline.trace_events == pooled.trace_events > 0
    print_table(
        "fat-tree-k10 suppression campaign (125 switches)",
        ("shards", "pings", "flow-mods dropped", "trace events", "wall"),
        [
            (1, f"{inline.ping_received}/{inline.ping_sent}",
             inline.flow_mods_dropped, inline.trace_events,
             f"{inline.wall_s:.2f} s"),
            (4, f"{pooled.ping_received}/{pooled.ping_sent}",
             pooled.flow_mods_dropped, pooled.trace_events,
             f"{pooled.wall_s:.2f} s"),
        ],
    )
    benchmark.extra_info["switches"] = inline.switches
    benchmark.extra_info["flow_mods_dropped"] = inline.flow_mods_dropped
    benchmark.extra_info["trace_events"] = inline.trace_events
    benchmark.extra_info["shard_invariant"] = (
        inline.trace_jsonl == pooled.trace_jsonl
    )
