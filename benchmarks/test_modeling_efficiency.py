"""E7 — Section VIII-B modelling efficiency: naive FSM vs. deque counter.

"As a result, this portion of the attack description's memory footprint is
reduced greatly from O(n) to O(1) attack states."  The bench compares the
attack-description size (states, rules) and the runtime cost of the two
encodings for the same count-n-then-act behaviour, and verifies their
end-to-end equivalence.
"""

import pytest

from benchmarks.conftest import print_table
from repro.attacks import counting_attack_deque, counting_attack_naive
from repro.core.compiler import generate_attack_source
from repro.core.injector import AttackExecutor
from repro.core.lang.properties import Direction, InterposedMessage
from repro.openflow import EchoRequest
from repro.sim import SimulationEngine

CONN = ("c1", "s1")
SIZES = (10, 100, 500)


def run_counter(attack, messages):
    executor = AttackExecutor(attack, SimulationEngine())
    passed = 0
    for index in range(messages):
        message = EchoRequest(payload=b"x", xid=index + 1)
        interposed = InterposedMessage(
            CONN, Direction.TO_CONTROLLER, 0.0, message.pack(), message
        )
        passed += len(executor.handle_message(interposed))
    return passed


def test_state_count_comparison(benchmark):
    def collect():
        rows = []
        for n in SIZES:
            naive = counting_attack_naive(CONN, n, "type = ECHO_REQUEST")
            compact = counting_attack_deque(CONN, n, "type = ECHO_REQUEST")
            rows.append((
                n,
                len(naive.states),
                len(compact.states),
                len(generate_attack_source(naive).splitlines()),
                len(generate_attack_source(compact).splitlines()),
            ))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    print_table(
        "Section VIII-B — attack-description size: naive FSM vs deque counter",
        ("n", "naive states", "deque states", "naive code lines",
         "deque code lines"),
        rows,
    )
    for n, naive_states, deque_states, naive_lines, deque_lines in rows:
        assert naive_states == n + 1        # O(n)
        assert deque_states == 2            # O(1)
        assert deque_lines < naive_lines or n <= 2

    # Equivalence at every size: same number of passed messages.
    for n in (10, 100):
        naive_passed = run_counter(
            counting_attack_naive(CONN, n, "type = ECHO_REQUEST"), n + 20
        )
        deque_passed = run_counter(
            counting_attack_deque(CONN, n, "type = ECHO_REQUEST"), n + 20
        )
        assert naive_passed == deque_passed == n


@pytest.mark.parametrize("encoding", ["naive", "deque"])
def test_counter_runtime(benchmark, encoding):
    """Per-message executor cost of each encoding at n=200."""
    n = 200
    builder = counting_attack_naive if encoding == "naive" else counting_attack_deque
    executor = AttackExecutor(
        builder(CONN, n, "type = ECHO_REQUEST"), SimulationEngine()
    )
    counter = {"i": 0}

    def process():
        counter["i"] += 1
        message = EchoRequest(payload=b"x", xid=(counter["i"] % 0xFFFF) + 1)
        interposed = InterposedMessage(
            CONN, Direction.TO_CONTROLLER, 0.0, message.pack(), message
        )
        return executor.handle_message(interposed)

    benchmark(process)
    benchmark.extra_info["encoding"] = encoding
    benchmark.extra_info["n"] = n
