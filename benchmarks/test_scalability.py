"""E4 — Section VI-D: memory and runtime scalability of the framework.

* **VI-D1 memory**: N_D grows O((|S|+|H|)^2) in the worst (fully linked)
  case and N_C grows O(|C| x |S|); measured via the system model's
  abstract memory-cell accounting.
* **VI-D2 runtime**: executing a state against a message is O(|Φ|) rule
  checks plus the fired rules' actions; measured as executor wall time vs.
  the number of rules in the current state, for the one-rule-fires and
  all-rules-fire cases.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core.injector import AttackExecutor
from repro.core.lang import (
    Attack,
    AttackState,
    PassMessage,
    Rule,
    parse_condition,
)
from repro.core.lang.properties import Direction, InterposedMessage
from repro.core.model import SystemModel, gamma_no_tls
from repro.core.model.system import (
    ControlConnection,
    ControllerSpec,
    DataPlaneEdge,
    HostSpec,
    SwitchSpec,
)
from repro.openflow import Hello
from repro.sim import SimulationEngine

CONN = ("c1", "s1")


def full_mesh_system(n_switches, n_hosts, n_controllers=1):
    switches = [SwitchSpec(f"s{i}", i, (1,)) for i in range(1, n_switches + 1)]
    hosts = [HostSpec(f"h{i}") for i in range(1, n_hosts + 1)]
    controllers = [ControllerSpec(f"c{i}") for i in range(1, n_controllers + 1)]
    vertices = [s.name for s in switches] + [h.name for h in hosts]
    edges = []
    for a in vertices:
        for b in vertices:
            if a != b:
                a_port = None if a.startswith("h") else 1
                edges.append(DataPlaneEdge(a, b, a_port, 1))
    connections = [
        ControlConnection(c.name, s.name) for c in controllers for s in switches
    ]
    return SystemModel(controllers, switches, hosts, edges, connections)


def test_nd_memory_grows_quadratically(benchmark):
    def collect():
        rows = []
        for size in (2, 4, 8, 16):
            system = full_mesh_system(size, size)
            cells = system.memory_cells()
            rows.append((size, cells["nd_vertices"], cells["nd_edges"],
                         cells["nd_attributes"], cells["nc_relations"]))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    print_table(
        "Section VI-D1 — N_D/N_C memory cells (fully connected worst case)",
        ("|S|=|H|", "vertices", "edges", "attributes", "N_C relations"),
        rows,
    )
    # O((|S|+|H|)^2): doubling the size ~quadruples the edge count.
    sizes = {row[0]: row for row in rows}
    assert sizes[8][2] / sizes[4][2] == pytest.approx(4, rel=0.3)
    assert sizes[16][2] / sizes[8][2] == pytest.approx(4, rel=0.3)
    # N_C is |C| x |S|: linear in |S| for one controller.
    assert sizes[16][4] == 2 * sizes[8][4]


def _executor_with_rules(n_rules, all_fire, fast_path=False):
    """n rules in one state; either all fire or only the last can.

    Defaults to ``fast_path=False``: these benchmarks measure the paper's
    O(|Φ|) linear scan.  The indexed fast lane is measured separately
    (here in ``test_executor_runtime_indexed`` and in
    ``benchmarks/test_fastpath.py``).
    """
    rules = []
    for index in range(n_rules):
        condition = "type = HELLO" if all_fire else "type = FLOW_MOD"
        rules.append(
            Rule(f"r{index}", CONN, gamma_no_tls(),
                 parse_condition(condition), [PassMessage()])
        )
    attack = Attack("scale", [AttackState("s", rules)], "s")
    return AttackExecutor(attack, SimulationEngine(), fast_path=fast_path)


@pytest.mark.parametrize("n_rules", [1, 16, 64])
def test_executor_runtime_scales_with_rule_count(benchmark, n_rules):
    """VI-D2: per-message cost is O(|Φ|) when no rule fires."""
    executor = _executor_with_rules(n_rules, all_fire=False)
    message = Hello()

    def process():
        interposed = InterposedMessage(
            CONN, Direction.TO_CONTROLLER, 0.0, message.pack(), message
        )
        return executor.handle_message(interposed)

    benchmark(process)
    benchmark.extra_info["rules"] = n_rules
    assert executor.stats["rules_fired"] == 0


@pytest.mark.parametrize("n_rules", [1, 16, 64])
def test_executor_runtime_all_rules_fire(benchmark, n_rules):
    """VI-D2 worst case: O(|Φ| x |α_max|) when every conditional is true."""
    executor = _executor_with_rules(n_rules, all_fire=True)
    message = Hello()

    def process():
        interposed = InterposedMessage(
            CONN, Direction.TO_CONTROLLER, 0.0, message.pack(), message
        )
        return executor.handle_message(interposed)

    benchmark(process)
    benchmark.extra_info["rules"] = n_rules


@pytest.mark.parametrize("n_rules", [16, 64])
def test_executor_runtime_indexed(benchmark, n_rules):
    """The fast lane breaks O(|Φ|): no-fire cost is flat in the rule count."""
    executor = _executor_with_rules(n_rules, all_fire=False, fast_path=True)
    raw = Hello().pack()

    def process():
        interposed = InterposedMessage(CONN, Direction.TO_CONTROLLER, 0.0, raw)
        return executor.handle_message(interposed)

    benchmark(process)
    benchmark.extra_info["rules"] = n_rules
    # The index skipped every rule without evaluating a single conditional.
    assert executor.stats["rules_fired"] == 0
    assert executor.stats["rules_evaluated"] == 0
    assert executor.stats["rules_skipped_by_index"] == \
        n_rules * executor.stats["messages_processed"]


def test_message_decode_encode_throughput(benchmark):
    """Injector hot path: decode + re-encode one FLOW_MOD."""
    from repro.openflow import FlowMod, Match, OutputAction, parse_message

    raw = FlowMod(Match(in_port=1, tp_dst=80), idle_timeout=5,
                  actions=[OutputAction(2)]).pack()

    def roundtrip():
        return parse_message(raw).pack()

    result = benchmark(roundtrip)
    assert result == raw
