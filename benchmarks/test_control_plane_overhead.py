"""E5 — Section VII-B's control-plane amplification claim.

"The overhead is significant: for every n packets in the data plane that
are flow table misses, flow modification suppression may generate up to n
PACKET_IN messages."  This bench counts control-plane messages with and
without suppression for the same workload and reports the amplification.
"""

import pytest

from benchmarks.conftest import print_table

CONTROLLERS = ("floodlight", "ryu")  # POX is a full DoS: no data packets flow


def test_packet_in_amplification(benchmark, suppression_results):
    def collect():
        rows = []
        for controller in CONTROLLERS:
            baseline = suppression_results[(controller, False)]
            attacked = suppression_results[(controller, True)]
            amplification = attacked.packet_ins / max(1, baseline.packet_ins)
            rows.append((
                controller,
                baseline.packet_ins,
                attacked.packet_ins,
                f"{amplification:.0f}x",
                attacked.flow_mods_dropped,
                attacked.total_control_messages,
            ))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    print_table(
        "Section VII-B — control-plane amplification under suppression",
        ("controller", "PACKET_INs base", "PACKET_INs attack",
         "amplification", "FLOW_MODs dropped", "total ctl msgs"),
        rows,
    )
    for row in rows:
        benchmark.extra_info[f"{row[0]}_amplification"] = row[3]

    for controller in CONTROLLERS:
        baseline = suppression_results[(controller, False)]
        attacked = suppression_results[(controller, True)]
        # Baseline: a handful of misses install flows, then silence.
        # Attack: every data packet is a miss -> PACKET_IN storms.
        assert attacked.packet_ins > 20 * max(1, baseline.packet_ins)
        # Every PACKET_IN answered produced a (suppressed) FLOW_MOD.
        assert attacked.flow_mods_dropped > 0
        assert attacked.flow_mods_dropped == attacked.flow_mods_seen
