"""A3 — fidelity-lever ablations (DESIGN.md Section 5).

The two anomalous results in the paper's evaluation hinge on specific
controller-implementation details.  These ablations flip exactly those
details and show the anomalies appear/disappear with them — evidence that
the reproduction's shapes come from the modelled mechanisms, not from
coincidence:

* **POX's Fig. 11 denial of service** exists iff the controller releases
  the buffered packet *through the FLOW_MOD* (``release_via="flow_mod"``).
  Give POX Floodlight-style separate PACKET_OUTs and the DoS vanishes
  (degradation remains).
* **Ryu's Table II anomaly** exists iff its flow-mod matches omit the
  network-layer fields (``match_granularity="l2"``).  Give Ryu full-tuple
  matches and rule φ2 fires, the connection dies — and the ablation
  surfaces a second lever: Ryu's *permanent* flow entries shield
  previously-seen traffic from the fail-secure DoS, which only appears
  once expiring timeouts are added as well.
"""

import dataclasses

import pytest

from benchmarks.conftest import print_table
from repro.controllers.pox import POX_BEHAVIOR
from repro.controllers.ryu import RYU_BEHAVIOR
from repro.dataplane import FailMode
from repro.experiments import run_interruption_experiment, run_suppression_experiment

FAST = dict(ping_trials=10, iperf_trials=1, iperf_duration_s=2.0,
            iperf_gap_s=2.0, warmup_s=5.0)


def test_pox_dos_hinges_on_flow_mod_buffer_release(benchmark):
    def collect():
        stock = run_suppression_experiment("pox", attacked=True, **FAST)
        flipped_behavior = dataclasses.replace(
            POX_BEHAVIOR, name="pox-packet-out-release", release_via="packet_out"
        )
        flipped = run_suppression_experiment(
            "pox", attacked=True, behavior_override=flipped_behavior, **FAST
        )
        return stock, flipped

    stock, flipped = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = [
        ("flow_mod (stock POX)",
         "DoS" if stock.denial_of_service else "degraded",
         f"{stock.ping_loss_rate:.0%}",
         f"{stock.mean_throughput_mbps:.2f}"),
        ("packet_out (flipped)",
         "DoS" if flipped.denial_of_service else "degraded",
         f"{flipped.ping_loss_rate:.0%}",
         f"{flipped.mean_throughput_mbps:.2f}"),
    ]
    print_table(
        "Ablation — POX buffered-packet release mechanism under suppression",
        ("release_via", "outcome", "ping loss", "throughput (Mbps)"),
        rows,
    )
    assert stock.denial_of_service                 # the Fig. 11 asterisk...
    assert not flipped.denial_of_service           # ...vanishes with the lever
    assert flipped.ping_loss_rate == 0.0
    assert 0 < flipped.mean_throughput_mbps < 30   # degradation remains


def test_ryu_anomaly_hinges_on_match_granularity(benchmark):
    def collect():
        stock = run_interruption_experiment("ryu", FailMode.SECURE)
        full_match = dataclasses.replace(
            RYU_BEHAVIOR, name="ryu-full-match", match_granularity="full"
        )
        flipped = run_interruption_experiment(
            "ryu", FailMode.SECURE, behavior_override=full_match
        )
        full_match_idle = dataclasses.replace(
            RYU_BEHAVIOR, name="ryu-full-match-idle",
            match_granularity="full", idle_timeout=5,
        )
        flipped_idle = run_interruption_experiment(
            "ryu", FailMode.SECURE, behavior_override=full_match_idle
        )
        return stock, flipped, flipped_idle

    stock, flipped, flipped_idle = benchmark.pedantic(collect, rounds=1,
                                                      iterations=1)
    rows = [
        ("l2, permanent (stock Ryu)", str(stock.interruption_happened),
         str(stock.denial_of_service), "->".join(stock.attack_states_visited)),
        ("full, permanent", str(flipped.interruption_happened),
         str(flipped.denial_of_service), "->".join(flipped.attack_states_visited)),
        ("full, idle=5s", str(flipped_idle.interruption_happened),
         str(flipped_idle.denial_of_service),
         "->".join(flipped_idle.attack_states_visited)),
    ]
    print_table(
        "Ablation — Ryu flow-mod match granularity in the interruption attack",
        ("behaviour", "interrupted", "denial of service", "states"),
        rows,
    )
    # Stock Ryu: phi2 never fires (the Table II anomaly).
    assert not stock.interruption_happened
    assert not stock.denial_of_service
    # Full-tuple matches alone make phi2 fire and the connection die —
    # but Ryu's *permanent* flow entries shield previously-seen traffic
    # from the fail-secure denial of service.
    assert flipped.interruption_happened
    assert flipped.attack_states_visited == ["sigma1", "sigma2", "sigma3"]
    assert not flipped.denial_of_service
    assert not flipped.external_to_internal_t50  # firewall intent still holds
    # Add expiring entries and the full Floodlight/POX-style DoS appears.
    assert flipped_idle.interruption_happened
    assert flipped_idle.denial_of_service
