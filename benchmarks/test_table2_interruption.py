"""E3 — Table II: connection-interruption results per controller x fail mode.

Reproduced shape:

* fail-safe (standalone) Floodlight/POX: the DMZ switch reverts to an
  autonomous learning switch — external users reach internal hosts
  (**unauthorized increased access**) but internal users keep external
  access;
* fail-secure Floodlight/POX: no new flows — the firewall's intent holds
  but internal users lose external access (**denial of service against
  legitimate traffic**);
* Ryu (both modes): its L2-only flow-mod matches never satisfy rule φ2, so
  "the attack never entered state σ3" — firewall intact, no DoS.
"""

import pytest

from benchmarks.conftest import print_table

COLUMNS = [
    ("floodlight", "standalone"), ("floodlight", "secure"),
    ("pox", "standalone"), ("pox", "secure"),
    ("ryu", "standalone"), ("ryu", "secure"),
]
PROBES = [
    ("External user can access an external network host? (t=30s)",
     "external_to_external_t30"),
    ("Internal user can access an external network host? (t=30s)",
     "internal_to_external_t30"),
    ("External user can access an internal network host? (t=50s)",
     "external_to_internal_t50"),
    ("Internal user can access an external network host? (t=95s)",
     "internal_to_external_t95"),
]


def test_table2(benchmark, interruption_results):
    def collect():
        rows = []
        for text, attr in PROBES:
            row = [text]
            for key in COLUMNS:
                row.append("yes" if getattr(interruption_results[key], attr) else "no")
            rows.append(tuple(row))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    headers = ("probe",) + tuple(f"{c[:5]}/{m[:4]}" for c, m in COLUMNS)
    print_table("Table II — connection interruption", headers, rows)
    for key in COLUMNS:
        result = interruption_results[key]
        benchmark.extra_info[f"{key[0]}_{key[1]}_unauthorized"] = (
            result.unauthorized_increased_access
        )
        benchmark.extra_info[f"{key[0]}_{key[1]}_dos"] = result.denial_of_service

    # Shape assertions — the full Table II pattern:
    for key in COLUMNS:
        result = interruption_results[key]
        assert result.external_to_external_t30
        assert result.internal_to_external_t30
    for controller in ("floodlight", "pox"):
        safe = interruption_results[(controller, "standalone")]
        secure = interruption_results[(controller, "secure")]
        assert safe.unauthorized_increased_access and not safe.denial_of_service
        assert secure.denial_of_service and not secure.unauthorized_increased_access
    for mode in ("standalone", "secure"):
        ryu = interruption_results[("ryu", mode)]
        assert not ryu.interruption_happened
        assert not ryu.unauthorized_increased_access
        assert not ryu.denial_of_service
