"""Shard-exchange microbenchmark: packed codec vs per-message pickling.

Isolates the cross-shard fast lane's serial tax from the simulation
around it.  A realistic boundary stream (many channels, a few flows per
channel, steady frame payloads with a sprinkle of control messages) is
pushed through two exchange disciplines over the *same* transport
primitive — a ``multiprocessing.Pipe`` connection, the substrate the
legacy queue-routed path was built on:

* **packed codec** — one ``BatchEncoder`` blob per (peer, epoch),
  one ``send_bytes`` each.
* **per-message pickling** — each ``(rid, message)`` tuple pickled and
  sent on its own, the wire discipline of routing messages through a
  ``multiprocessing`` queue one at a time.

Both time (full serialize -> transfer -> deserialize round trip) and
bytes on the wire are compared.  The assertions are the PR acceptance
floors: the codec must be >= 3x faster and move >= 5x fewer bytes.
"""

import multiprocessing as mp
import pickle
import time

from benchmarks.conftest import print_table
from repro.sim.codec import BatchDecoder, BatchEncoder

ROUNDS = 200
CHANNELS = 16
FLOWS_PER_CHANNEL = 4
REGIONS = 4

SPEED_FLOOR = 3.0
BYTE_FLOOR = 5.0


def _build_rounds():
    """ROUNDS epoch batches of steady cross-boundary traffic."""
    frames = {}

    def frame(chan, flow):
        key = (chan, flow)
        if key not in frames:
            # An Ethernet/IP/UDP-sized frame, distinct per flow.
            frames[key] = bytes([flow + 1, chan & 0xFF]) * 53
        return frames[key]

    rounds = []
    seq = 0
    for r in range(ROUNDS):
        batch = {}
        for c in range(CHANNELS):
            messages = batch.setdefault(c % REGIONS, [])
            for f in range(FLOWS_PER_CHANNEL):
                seq += 1
                messages.append((
                    r * 0.002 + c * 1e-5 + f * 1e-7,
                    f"link:{c:06d}:a",
                    seq,
                    "frame",
                    frame(c, f),
                ))
        # A control-plane message with a never-repeating payload.
        seq += 1
        batch.setdefault(0, []).append((
            r * 0.002 + 1e-4, "ctl:c1", seq, "data",
            b"\x04\x0a" + r.to_bytes(4, "big") + b"\x00" * 58,
        ))
        rounds.append(batch)
    return rounds


def _codec_pass(rounds):
    rx, tx = mp.Pipe(duplex=False)
    encoder, decoder = BatchEncoder(), BatchDecoder()
    started = time.perf_counter()
    total = 0
    received = []
    for batch in rounds:
        blob = encoder.encode(batch)
        tx.send_bytes(blob)
        total += 4 + len(blob)  # 4B length framing, as on the worker mesh
        received.append(decoder.decode(rx.recv_bytes()))
    elapsed = time.perf_counter() - started
    rx.close()
    tx.close()
    assert received == rounds
    return elapsed, total


def _per_message_pickle_pass(rounds):
    rx, tx = mp.Pipe(duplex=False)
    started = time.perf_counter()
    total = 0
    received = []
    for batch in rounds:
        count = 0
        for rid, messages in batch.items():
            for message in messages:
                wire = pickle.dumps((rid, message), pickle.HIGHEST_PROTOCOL)
                tx.send_bytes(wire)
                total += 4 + len(wire)
                count += 1
        decoded = {}
        for _ in range(count):
            rid, message = pickle.loads(rx.recv_bytes())
            decoded.setdefault(rid, []).append(message)
        received.append(decoded)
    elapsed = time.perf_counter() - started
    rx.close()
    tx.close()
    assert received == rounds
    return elapsed, total


def test_codec_beats_per_message_pickling(benchmark):
    rounds = _build_rounds()
    message_count = sum(
        len(messages) for batch in rounds for messages in batch.values()
    )

    def run_ab():
        # Interleaved best-of-3 after a warmup round, so a scheduler
        # hiccup on a shared CI core cannot decide the ratio.
        _codec_pass(rounds)
        _per_message_pickle_pass(rounds)
        codec_times, pickle_times = [], []
        for _ in range(3):
            elapsed, codec_bytes = _codec_pass(rounds)
            codec_times.append(elapsed)
            elapsed, pickle_bytes = _per_message_pickle_pass(rounds)
            pickle_times.append(elapsed)
        return min(codec_times), codec_bytes, min(pickle_times), pickle_bytes

    codec_s, codec_bytes, pickle_s, pickle_bytes = benchmark.pedantic(
        run_ab, rounds=1, iterations=1
    )
    speed_ratio = pickle_s / codec_s
    byte_ratio = pickle_bytes / codec_bytes
    print_table(
        f"Exchange fast lane: {message_count} messages over "
        f"{ROUNDS} epochs ({CHANNELS} channels x {FLOWS_PER_CHANNEL} flows)",
        ("discipline", "time", "us/message", "bytes", "B/message"),
        [
            ("packed codec", f"{codec_s * 1e3:.1f} ms",
             f"{codec_s * 1e6 / message_count:.2f}",
             f"{codec_bytes:,}", f"{codec_bytes / message_count:.1f}"),
            ("per-message pickle", f"{pickle_s * 1e3:.1f} ms",
             f"{pickle_s * 1e6 / message_count:.2f}",
             f"{pickle_bytes:,}", f"{pickle_bytes / message_count:.1f}"),
        ],
    )
    benchmark.extra_info["messages"] = message_count
    benchmark.extra_info["speed_ratio"] = round(speed_ratio, 2)
    benchmark.extra_info["byte_ratio"] = round(byte_ratio, 2)
    benchmark.extra_info["codec_us_per_message"] = round(
        codec_s * 1e6 / message_count, 3
    )
    benchmark.extra_info["codec_bytes_per_message"] = round(
        codec_bytes / message_count, 1
    )
    assert speed_ratio >= SPEED_FLOOR, (
        f"codec only {speed_ratio:.2f}x faster than per-message pickling "
        f"(floor {SPEED_FLOOR}x)"
    )
    assert byte_ratio >= BYTE_FLOOR, (
        f"codec only saved {byte_ratio:.2f}x bytes "
        f"(floor {BYTE_FLOOR}x)"
    )
