"""Defense-plane cost and quality: sketch overhead, detector scores.

Two artifacts, committed as ``BENCH_detect.json``:

* **Sketch overhead** — the fat-tree-k8 table-overflow workload (the
  ``BENCH_workloads.json`` configuration) run with the per-packet
  sketch tap off vs on.  The tap rides the pre-populated FastFrame
  flow-key tuple, so the acceptance bar is < 10% added wall time.
* **Detector quality** — ``pktin-rate`` against ``packetin-flood``
  with emission-window ground truth: precision/recall >= 0.9 and a
  measured detection latency.  The threshold sits between the fabric's
  residual broadcast storm (~800 PACKET_IN/s after emission stops) and
  the storm during the attack (~1800/s).

``REPRO_BENCH_QUICK=1`` shrinks both for CI smoke.
"""

import os
import statistics
import time

from benchmarks.conftest import print_table
from repro.campaign import reset_run_state
from repro.experiments.fabric import run_fabric_experiment

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0", "false")

# Quick mode observes only a few thousand frames, so fixed costs and
# scheduler jitter dominate the ratio; the 10% bar is enforced at full
# scale where the per-frame cost is actually the signal.
OVERHEAD_CEILING = 0.30 if QUICK else 0.10
SCORE_FLOOR = 0.9
ROUNDS = 2 if QUICK else 3

if QUICK:
    OVERFLOW = dict(topology="fat-tree-k4", capacity=64, keys=512,
                    schedule="constant:1200", senders=2, duration_s=0.4)
else:
    OVERFLOW = dict(topology="fat-tree-k8", capacity=128, keys=4096,
                    schedule="constant:2000", senders=8, duration_s=1.0)

FLOOD = dict(schedule="constant:500", senders=2,
             duration_s=0.2 if QUICK else 0.3)


def _overflow_run(sketch):
    reset_run_state()
    return run_fabric_experiment(
        OVERFLOW["topology"], controller="floodlight",
        workload="table-overflow", seed=1,
        table_capacity=OVERFLOW["capacity"], table_eviction="lru",
        sketch=sketch,
        workload_params={"schedule": OVERFLOW["schedule"],
                         "keys": OVERFLOW["keys"],
                         "senders": OVERFLOW["senders"],
                         "duration_s": OVERFLOW["duration_s"]},
    )


def _median_wall(sketch):
    samples = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        result = _overflow_run(sketch)
        samples.append(time.perf_counter() - start)
    return statistics.median(samples), result


def test_sketch_overhead_under_ten_percent(benchmark):
    """Count-min + top-k + port EWMAs on every frame cost < 10% wall."""
    base_s, _ = _median_wall(sketch=False)
    tap_s, tapped = _median_wall(sketch=True)
    overhead = tap_s / base_s - 1.0
    frames = tapped.sketch["counters"]["frames"]
    print_table(
        f"Sketch tap overhead — table-overflow on {tapped.fabric}, "
        f"{frames:,} frames observed",
        ("configuration", "wall (median)", "overhead"),
        [
            ("sketch off", f"{base_s:.3f} s", "—"),
            ("sketch on", f"{tap_s:.3f} s", f"{overhead * 100:+.1f}%"),
        ],
    )
    assert tapped.sketch_digest is not None
    assert frames > 0
    assert overhead < OVERHEAD_CEILING, (
        f"sketch overhead {overhead * 100:.1f}% exceeds "
        f"{OVERHEAD_CEILING * 100:.0f}%"
    )
    result = benchmark.pedantic(_overflow_run, args=(True,),
                                rounds=1, iterations=1)
    assert result.sketch is not None
    benchmark.extra_info.update({
        "fabric": tapped.fabric,
        "frames_observed": frames,
        "base_wall_s": round(base_s, 4),
        "tapped_wall_s": round(tap_s, 4),
        "overhead_pct": round(overhead * 100, 2),
        "quick": QUICK,
    })


def test_pktin_rate_detector_meets_score_floor(benchmark):
    """pktin-rate at 1200 PACKET_IN/s: precision/recall >= 0.9 with a
    measured window-close detection latency on packetin-flood."""
    def run():
        reset_run_state()
        return run_fabric_experiment(
            "fat-tree-k4", controller="pox", workload="packetin-flood",
            seed=1, detectors=["pktin-rate"],
            detector_params={"threshold_pps": 1200.0},
            workload_params=dict(FLOOD),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    scores = result.detections[0]
    print_table(
        f"pktin-rate vs packetin-flood on {result.fabric} "
        f"(threshold 1200 PACKET_IN/s)",
        ("metric", "value"),
        [
            ("precision", f"{scores['precision']:.2f}"),
            ("recall", f"{scores['recall']:.2f}"),
            ("detection latency", f"{scores['detection_latency_s'] * 1e3:.0f} ms"),
            ("windows (active/flagged)",
             f"{scores['active_windows']}/{scores['flagged_windows']}"),
            ("PACKET_INs", f"{result.switch_packet_ins:,}"),
        ],
    )
    assert scores["precision"] >= SCORE_FLOOR
    assert scores["recall"] >= SCORE_FLOOR
    assert scores["detection_latency_s"] is not None
    assert scores["detection_latency_s"] >= 0.0
    benchmark.extra_info.update({
        "detector": "pktin-rate",
        "threshold_pps": 1200.0,
        "precision": scores["precision"],
        "recall": scores["recall"],
        "detection_latency_s": scores["detection_latency_s"],
        "sketch_digest": result.sketch_digest,
        "quick": QUICK,
    })
