"""Injector hot-path fast lane: measured speedups over the paper baseline.

Two headline claims, each asserted at >= 5x:

* **Executor no-fire path** at |Φ| = 64 type-constrained rules: the
  (connection, coarse type) index + compiled conditionals vs the linear
  interpreted scan of Algorithm 1 (``fast_path=False``).
* **Pass-through framing**: length-only frame extraction + zero-copy byte
  reuse vs the decode-then-re-encode round trip.

Speedups are computed from median-of-rounds wall times measured with
``time.perf_counter`` (robust against scheduler noise); the pytest-benchmark
fixture additionally records the fast path for ``--benchmark-json``
trajectories (CI stores them as ``BENCH_fastpath.json``).
"""

import statistics
import time

from benchmarks.conftest import print_table
from repro.core.injector import AttackExecutor
from repro.core.lang import Attack, AttackState, PassMessage, Rule, parse_condition
from repro.core.lang.properties import Direction, InterposedMessage
from repro.core.model import gamma_no_tls
from repro.openflow import FlowMod, Hello, Match, OutputAction, parse_message
from repro.openflow.connection import MessageFramer
from repro.sim import SimulationEngine

CONN = ("c1", "s1")
N_RULES = 64
SPEEDUP_FLOOR = 5.0
ROUNDS = 7
ITERATIONS = 2000


def median_time(fn, rounds=ROUNDS, iterations=ITERATIONS):
    """Median over ``rounds`` of the mean per-call time of ``iterations``."""
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(iterations):
            fn()
        samples.append((time.perf_counter() - start) / iterations)
    return statistics.median(samples)


def _executor(fast_path):
    rules = [
        Rule(f"r{index}", CONN, gamma_no_tls(),
             parse_condition("type = FLOW_MOD"), [PassMessage()])
        for index in range(N_RULES)
    ]
    attack = Attack("fastlane", [AttackState("s", rules)], "s")
    return AttackExecutor(attack, SimulationEngine(), fast_path=fast_path)


def test_executor_no_fire_speedup(benchmark):
    """Indexed dispatch beats the linear scan >= 5x when no rule fires."""
    fast = _executor(fast_path=True)
    linear = _executor(fast_path=False)
    raw = Hello().pack()

    def process_fast():
        return fast.handle_message(
            InterposedMessage(CONN, Direction.TO_CONTROLLER, 0.0, raw)
        )

    def process_linear():
        return linear.handle_message(
            InterposedMessage(CONN, Direction.TO_CONTROLLER, 0.0, raw)
        )

    fast_time = median_time(process_fast)
    linear_time = median_time(process_linear)
    speedup = linear_time / fast_time
    print_table(
        f"Fast lane — executor no-fire path at |Φ|={N_RULES}",
        ("variant", "per-message", "speedup"),
        [
            ("linear interpreted", f"{linear_time * 1e6:8.2f} us", "1.0x"),
            ("indexed compiled", f"{fast_time * 1e6:8.2f} us",
             f"{speedup:.1f}x"),
        ],
    )
    assert fast.stats["rules_evaluated"] == 0
    assert fast.stats["rules_skipped_by_index"] > 0
    assert speedup >= SPEEDUP_FLOOR, f"only {speedup:.1f}x"
    result = benchmark(process_fast)
    assert len(result) == 1
    benchmark.extra_info["rules"] = N_RULES
    benchmark.extra_info["speedup_vs_linear"] = round(speedup, 2)


def test_passthrough_framing_speedup(benchmark):
    """Zero-copy frame extraction beats decode+re-encode >= 5x."""
    raw = FlowMod(Match(in_port=1, tp_dst=80), idle_timeout=5,
                  actions=[OutputAction(2)]).pack()

    def zero_copy():
        framer = MessageFramer()
        return framer.feed_frames(raw)[0]

    def decode_reencode():
        return parse_message(raw).pack()

    assert zero_copy() == raw
    assert decode_reencode() == raw
    fast_time = median_time(zero_copy)
    slow_time = median_time(decode_reencode)
    speedup = slow_time / fast_time
    print_table(
        "Fast lane — FLOW_MOD pass-through",
        ("variant", "per-message", "speedup"),
        [
            ("parse + pack", f"{slow_time * 1e6:8.2f} us", "1.0x"),
            ("frame + byte reuse", f"{fast_time * 1e6:8.2f} us",
             f"{speedup:.1f}x"),
        ],
    )
    assert speedup >= SPEEDUP_FLOOR, f"only {speedup:.1f}x"
    result = benchmark(zero_copy)
    assert result == raw
    benchmark.extra_info["speedup_vs_decode"] = round(speedup, 2)


def test_flowtable_lookup_speedup(benchmark):
    """Hash-indexed exact lookup vs the linear table scan at 1k entries."""
    from repro.dataplane.flowtable import FlowTable
    from repro.netlib import Ipv4Address, MacAddress
    from repro.openflow.match import OFP_VLAN_NONE

    def exact(index):
        return Match(
            in_port=1,
            dl_src=MacAddress("00:00:00:00:00:01"),
            dl_dst=MacAddress("00:00:00:00:00:02"),
            dl_vlan=OFP_VLAN_NONE,
            dl_vlan_pcp=0,
            dl_type=0x0800,
            nw_tos=0,
            nw_proto=6,
            nw_src=Ipv4Address("10.0.0.1"),
            nw_dst=Ipv4Address((10 << 24) | index),
            tp_src=1234,
            tp_dst=80,
        )

    n_entries = 1000
    indexed = FlowTable(indexed=True)
    linear = FlowTable(indexed=False)
    for index in range(n_entries):
        flow_mod = FlowMod(exact(index), actions=[OutputAction(2)])
        indexed.apply_flow_mod(flow_mod, now=0.0)
        linear.apply_flow_mod(flow_mod, now=0.0)
    probe = exact(n_entries - 1)
    fields = {name: getattr(probe, name)
              for name in ("in_port", "dl_src", "dl_dst", "dl_vlan",
                           "dl_vlan_pcp", "dl_type", "nw_tos", "nw_proto",
                           "nw_src", "nw_dst", "tp_src", "tp_dst")}
    assert indexed.lookup(fields) is not None
    assert linear.lookup(fields) is not None

    fast_time = median_time(lambda: indexed.lookup(fields), iterations=500)
    slow_time = median_time(lambda: linear.lookup(fields), iterations=500)
    speedup = slow_time / fast_time
    print_table(
        f"Fast lane — flow-table lookup at {n_entries} exact entries",
        ("variant", "per-lookup", "speedup"),
        [
            ("linear scan", f"{slow_time * 1e6:8.2f} us", "1.0x"),
            ("hash index", f"{fast_time * 1e6:8.2f} us", f"{speedup:.1f}x"),
        ],
    )
    assert indexed.lookup_fast_hits > 0
    assert speedup >= SPEEDUP_FLOOR, f"only {speedup:.1f}x"
    benchmark(lambda: indexed.lookup(fields))
    benchmark.extra_info["entries"] = n_entries
    benchmark.extra_info["speedup_vs_linear"] = round(speedup, 2)


def test_multihop_forwarding_speedup(benchmark):
    """Data-plane fast lane: >= 3x on a 4-switch multi-hop path.

    A frame crossing a 4-switch chain is key-extracted at every hop.
    Pre-change, each hop ran the full decode-based
    ``extract_packet_fields`` (EthernetFrame -> Ipv4Packet -> TcpSegment
    object construction); with the fast lane, the first arrival computes
    the key once via the single-pass extractor and every later hop — and
    every repeat of the same frame — is a memoized dict fetch on the
    interned FastFrame.
    """
    from repro.dataplane.switch import OpenFlowSwitch
    from repro.netlib import EtherType, EthernetFrame, Ipv4Address, \
        Ipv4Packet, MacAddress, TcpSegment, fastframe
    from repro.openflow.match import extract_packet_fields_reference

    N_SWITCHES = 4
    FORWARD_FLOOR = 3.0

    segment = TcpSegment(40000, 5001, payload=b"x" * 512)
    packet = Ipv4Packet(Ipv4Address("10.0.0.1"), Ipv4Address("10.0.0.2"),
                        6, segment.pack())
    raw = EthernetFrame(MacAddress("00:00:00:00:00:02"),
                        MacAddress("00:00:00:00:00:01"),
                        EtherType.IPV4, packet.pack()).pack()

    def build_chain():
        """4 switches wired port-2 -> next switch port-1, exact flows."""
        engine = SimulationEngine()
        delivered = []
        switches = [OpenFlowSwitch(engine, f"s{i + 1}", i + 1)
                    for i in range(N_SWITCHES)]
        for i, switch in enumerate(switches):
            switch.attach_port(1, lambda data: None)
            if i + 1 < len(switches):
                nxt = switches[i + 1]
                switch.attach_port(2, lambda data, n=nxt: n.frame_received(1, data))
            else:
                switch.attach_port(2, delivered.append)
            flow_mod = FlowMod(Match.from_packet(raw, 1),
                               actions=[OutputAction(2)])
            switch.flow_table.apply_flow_mod(flow_mod, engine.now)
        return switches, delivered

    switches, delivered = build_chain()

    def send_one():
        # A fresh bytes copy per send models a frame arriving off the
        # wire; interning collapses the copies back to one object.
        switches[0].frame_received(1, bytes(bytearray(raw)))

    send_one()
    assert len(delivered) == 1 and delivered[0] == raw

    fast_time = median_time(send_one, iterations=500)
    assert switches[0].stats["flowkey_cache_hits"] > 0
    assert switches[0].stats["frames_interned"] > 0

    # Pre-change baseline: no interning, no memoization, and the
    # decode-based reference extractor at every hop.
    baseline_switches, baseline_delivered = build_chain()
    fastframe.set_fast_lane(False)
    original_extractor = fastframe.extract_flow_key
    fastframe.extract_flow_key = extract_packet_fields_reference
    try:
        def send_one_baseline():
            baseline_switches[0].frame_received(1, bytes(bytearray(raw)))

        send_one_baseline()
        assert baseline_delivered[0] == raw
        slow_time = median_time(send_one_baseline, iterations=500)
    finally:
        fastframe.extract_flow_key = original_extractor
        fastframe.set_fast_lane(True)
        fastframe.clear_pool()

    speedup = slow_time / fast_time
    print_table(
        f"Fast lane — {N_SWITCHES}-switch multi-hop forwarding",
        ("variant", "per-frame", "speedup"),
        [
            ("decode per hop", f"{slow_time * 1e6:8.2f} us", "1.0x"),
            ("interned + memoized", f"{fast_time * 1e6:8.2f} us",
             f"{speedup:.1f}x"),
        ],
    )
    assert speedup >= FORWARD_FLOOR, f"only {speedup:.1f}x"
    benchmark(send_one)
    benchmark.extra_info["switches"] = N_SWITCHES
    benchmark.extra_info["speedup_vs_decode_per_hop"] = round(speedup, 2)


def test_tracing_disabled_keeps_the_fast_lane(benchmark):
    """Trace instrumentation must cost nothing when no collector is
    attached (the default).  Every emit site is gated on a single
    ``tracer is not None`` check, so the untraced executor still clears
    the same 5x no-fire floor, while an attached collector records the
    work the guard skips."""
    from repro.obs import TraceCollector

    untraced = _executor(fast_path=True)
    traced = _executor(fast_path=True)
    traced.set_tracer(TraceCollector())
    linear = _executor(fast_path=False)
    assert untraced.tracer is None  # the zero-overhead configuration
    raw = Hello().pack()
    fired = FlowMod(Match()).pack()

    def no_fire():
        return untraced.handle_message(
            InterposedMessage(CONN, Direction.TO_CONTROLLER, 0.0, raw)
        )

    def no_fire_linear():
        return linear.handle_message(
            InterposedMessage(CONN, Direction.TO_CONTROLLER, 0.0, raw)
        )

    def fire(executor):
        return lambda: executor.handle_message(
            InterposedMessage(CONN, Direction.TO_CONTROLLER, 0.0, fired)
        )

    untraced_time = median_time(no_fire)
    linear_time = median_time(no_fire_linear)
    speedup = linear_time / untraced_time
    untraced_fire = median_time(fire(untraced), iterations=500)
    traced_fire = median_time(fire(traced), iterations=500)
    print_table(
        "Fast lane — tracing guards on the executor hot path",
        ("variant", "per-message", "note"),
        [
            ("untraced no-fire", f"{untraced_time * 1e6:8.2f} us",
             f"{speedup:.1f}x vs linear"),
            ("untraced rule-fire", f"{untraced_fire * 1e6:8.2f} us", "-"),
            ("traced rule-fire", f"{traced_fire * 1e6:8.2f} us",
             f"{traced.tracer.events_total} events"),
        ],
    )
    # The regression guard: disabled tracing leaves the floor intact.
    assert speedup >= SPEEDUP_FLOOR, f"tracing guards cost the floor: {speedup:.1f}x"
    # And the guard really did skip all trace work on the untraced side.
    assert traced.tracer.events_total > 0
    assert untraced.tracer is None
    benchmark(no_fire)
    benchmark.extra_info["speedup_vs_linear_untraced"] = round(speedup, 2)
