"""Campaign service soak: 10k-run store scale, resume cost, overhead.

Three claims behind the campaign-as-a-service work, each asserted:

* **Cold resume is O(new records), not O(ledger)** — resuming a fully
  completed 10k-run matrix against the sharded + checkpointed store is
  >= 5x faster than the unsharded full-re-read baseline (a fresh
  ``ResultStore`` must parse every line to learn the completed set).
* **Streaming is (almost) free** — the scheduler's per-record work
  (subscriber fan-out, events tail, aggregation, checkpoints) costs
  < 5% of a real pooled campaign's wall-clock.
* **Compaction reclaims churn** — a ledger bloated by re-runs shrinks
  to its resume-equivalent minimum without losing any resume state.

``REPRO_BENCH_QUICK=1`` shrinks the soak from 10k to 1k synthesized
runs for CI smoke; the committed ``BENCH_campaign.json`` comes from the
full-scale run.
"""

import os
import statistics
import time

from benchmarks.conftest import print_table
from repro.campaign import (
    CampaignAggregator,
    CampaignScheduler,
    CampaignSpec,
    ResultStore,
    ShardedResultStore,
    make_record,
    stream_path_for,
)
from repro.campaign.spec import RunDescriptor

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0", "false")

#: The soak ledger: one ok record per run.
SOAK_RUNS = 1_000 if QUICK else 10_000
#: Real pooled runs for the overhead measurement (each costs at least
#: one poll interval, so this is wall-clock bound, not CPU bound).
POOLED_RUNS = 40 if QUICK else 150
RESUME_SPEEDUP_FLOOR = 5.0
OVERHEAD_CEILING = 0.05
RESUME_ROUNDS = 5


def soak_descriptor(seed):
    return RunDescriptor(
        experiment="selfcheck", attack=None, controller="x",
        topology="enterprise", fail_mode="secure", seed=seed,
    )


def soak_record(descriptor, seed):
    return make_record(
        descriptor.to_dict(), "ok",
        {"throughput_mbps": 90.0 + (seed % 17), "latency_ms": 0.5},
        duration_s=0.01, campaign="soak",
    )


def fill(store, runs, checkpoint_every=None):
    for seed in range(runs):
        descriptor = soak_descriptor(seed)
        store.append(soak_record(descriptor, seed))
        if checkpoint_every and (seed + 1) % checkpoint_every == 0:
            store.checkpoint()


def median_resume(open_store_fn, expected, rounds=RESUME_ROUNDS):
    """Median cold-resume time: fresh store object -> completed set."""
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        completed = open_store_fn().completed_ids()
        samples.append(time.perf_counter() - start)
        assert len(completed) == expected
    return statistics.median(samples)


def test_soak_resume_sharded_vs_full_reread(tmp_path_factory, benchmark):
    """Fully-completed 10k-run matrix: checkpointed resume >= 5x faster
    than the unsharded full re-read."""
    root = tmp_path_factory.mktemp("soak")
    plain_path = root / "plain.jsonl"
    sharded_path = root / "sharded.jsonl"
    fill(ResultStore(plain_path), SOAK_RUNS)
    sharded = ShardedResultStore(sharded_path, shards=8)
    fill(sharded, SOAK_RUNS, checkpoint_every=256)
    sharded.checkpoint()

    plain_s = median_resume(lambda: ResultStore(plain_path), SOAK_RUNS)
    sharded_s = median_resume(
        lambda: ShardedResultStore(sharded_path), SOAK_RUNS)
    speedup = plain_s / sharded_s
    plain_bytes = plain_path.stat().st_size
    sharded_bytes = sharded.stats()["bytes"]
    # Incremental warm resume: K late appends cost O(K), not O(ledger).
    warm = ShardedResultStore(sharded_path)
    warm.completed_ids()
    for seed in range(SOAK_RUNS, SOAK_RUNS + 64):
        warm.append(soak_record(soak_descriptor(seed), seed))
    start = time.perf_counter()
    assert len(warm.completed_ids()) == SOAK_RUNS + 64
    incremental_s = time.perf_counter() - start

    print_table(
        f"Campaign soak — cold resume of a completed {SOAK_RUNS}-run store",
        ("store", "bytes", "resume", "speedup"),
        [
            ("unsharded full re-read", f"{plain_bytes:>10,}",
             f"{plain_s * 1e3:8.2f} ms", "1.0x"),
            ("sharded + checkpoint", f"{sharded_bytes:>10,}",
             f"{sharded_s * 1e3:8.2f} ms", f"{speedup:.1f}x"),
            ("incremental (+64 runs)", "-",
             f"{incremental_s * 1e3:8.2f} ms", "-"),
        ],
    )
    assert speedup >= RESUME_SPEEDUP_FLOOR, f"only {speedup:.1f}x"
    assert incremental_s < plain_s

    result = benchmark.pedantic(
        lambda: ShardedResultStore(sharded_path).completed_ids(),
        rounds=RESUME_ROUNDS, iterations=1)
    assert len(result) == SOAK_RUNS + 64
    benchmark.extra_info["soak_runs"] = SOAK_RUNS
    benchmark.extra_info["plain_bytes"] = plain_bytes
    benchmark.extra_info["sharded_bytes"] = sharded_bytes
    benchmark.extra_info["plain_resume_ms"] = round(plain_s * 1e3, 3)
    benchmark.extra_info["sharded_resume_ms"] = round(sharded_s * 1e3, 3)
    benchmark.extra_info["resume_speedup"] = round(speedup, 2)


def test_scheduler_streaming_overhead(tmp_path_factory, benchmark):
    """Streaming/aggregation/checkpointing < 5% of campaign wall-clock
    on a real pooled campaign (records flow through the full path:
    store append -> subscribers -> events tail -> digests -> checkpoint)."""
    root = tmp_path_factory.mktemp("svc")
    store = ShardedResultStore(root / "results.jsonl", shards=8)
    spec = CampaignSpec.from_dict({
        "name": "soak-svc",
        "experiment": "selfcheck",
        "attacks": [None],
        "controllers": ["x"],
        "seeds": list(range(POOLED_RUNS)),
    })
    seen = []

    def run_service():
        aggregator = CampaignAggregator()
        scheduler = CampaignScheduler(
            store, workers=2, aggregator=aggregator,
            stream_path=stream_path_for(store), checkpoint_every=64)
        scheduler.subscribe(seen.append)
        started = time.perf_counter()
        try:
            job = scheduler.submit(spec)
            scheduler.run_until_idle()
        finally:
            scheduler.shutdown()
        wall = time.perf_counter() - started
        return job, scheduler, aggregator, wall

    job, scheduler, aggregator, wall = benchmark.pedantic(
        run_service, rounds=1, iterations=1)
    assert job.summary.succeeded == POOLED_RUNS
    assert len(seen) == POOLED_RUNS
    assert aggregator.records_seen == POOLED_RUNS
    overhead = scheduler.stream_seconds / wall
    per_record_us = scheduler.stream_seconds / POOLED_RUNS * 1e6
    print_table(
        f"Campaign soak — scheduler streaming overhead ({POOLED_RUNS} "
        f"pooled runs)",
        ("quantity", "value"),
        [
            ("campaign wall-clock", f"{wall:8.2f} s"),
            ("streaming seconds", f"{scheduler.stream_seconds:8.4f} s"),
            ("per-record cost", f"{per_record_us:8.1f} us"),
            ("overhead", f"{overhead * 100:8.2f} %"),
        ],
    )
    assert overhead < OVERHEAD_CEILING, f"{overhead * 100:.2f}%"
    # The stream tail carries every record the campaign produced.
    events = stream_path_for(store)
    assert len(events.read_text().splitlines()) == POOLED_RUNS
    benchmark.extra_info["pooled_runs"] = POOLED_RUNS
    benchmark.extra_info["wall_s"] = round(wall, 3)
    benchmark.extra_info["stream_s"] = round(scheduler.stream_seconds, 5)
    benchmark.extra_info["overhead_pct"] = round(overhead * 100, 3)


def test_soak_compaction_reclaims_churn(tmp_path_factory, benchmark):
    """Heavy re-run churn: compaction shrinks the ledger back to its
    resume-equivalent minimum and the resume set survives unchanged."""
    root = tmp_path_factory.mktemp("compact")
    store = ShardedResultStore(root / "results.jsonl", shards=8)
    churn = max(1, SOAK_RUNS // 10)
    fill(store, churn)
    # Every run re-executes four more times (parameter sweeps, flaky
    # re-runs): 80% of the ledger becomes superseded history.
    for _round in range(4):
        fill(store, churn)
    before = store.stats()
    completed_before = store.completed_ids()

    result = benchmark.pedantic(store.compact, rounds=1, iterations=1)
    after = store.stats()
    reclaim = 1.0 - after["bytes"] / before["bytes"]
    print_table(
        f"Campaign soak — compaction of a {churn}-run x5 churn ledger",
        ("quantity", "before", "after"),
        [
            ("records", before["records"], after["records"]),
            ("superseded", before["superseded"], after["superseded"]),
            ("bytes", f"{before['bytes']:,}", f"{after['bytes']:,}"),
        ],
    )
    assert result["kept"] == churn
    assert result["archived"] == churn * 4
    assert after["records"] == churn
    assert after["superseded"] == 0
    assert reclaim > 0.5
    # Resume state is exactly preserved, both warm and cold.
    assert store.completed_ids() == completed_before
    assert ShardedResultStore(root / "results.jsonl").completed_ids() \
        == completed_before
    benchmark.extra_info["churn_runs"] = churn
    benchmark.extra_info["records_before"] = before["records"]
    benchmark.extra_info["bytes_before"] = before["bytes"]
    benchmark.extra_info["bytes_after"] = after["bytes"]
    benchmark.extra_info["reclaim_pct"] = round(reclaim * 100, 2)
