"""Ablation — cost of interposition (DESIGN.md Section 5).

The runtime injector proxies every control-plane connection.  This bench
quantifies what that interposition costs when the attack does nothing:

* direct switch<->controller wiring (no injector);
* injector with no attack (raw byte pass-through);
* injector running the Fig. 5 pass-everything attack (full decode +
  rule evaluation + re-encode per message).

The shape to expect: handshake latency and first-packet RTT grow slightly
with each level, while steady-state data-plane behaviour is unchanged.
"""

import pytest

from benchmarks.conftest import print_table
from repro.attacks import passthrough_attack
from repro.controllers import FloodlightController
from repro.core import AttackModel, RuntimeInjector, SystemModel
from repro.dataplane import Network, Topology
from repro.sim import SimulationEngine


def build_topology():
    topo = Topology("ablation")
    topo.add_host("h1")
    topo.add_host("h2")
    topo.add_switch("s1")
    topo.add_switch("s2")
    topo.add_link("h1", "s1")
    topo.add_link("s1", "s2")
    topo.add_link("h2", "s2")
    return topo


def run_mode(mode):
    engine = SimulationEngine()
    topo = build_topology()
    network = Network(engine, topo)
    controller = FloodlightController(engine)
    if mode == "direct":
        network.set_all_controller_targets(controller)
    else:
        system = SystemModel.from_topology(topo, ["c1"])
        model = AttackModel.no_tls_everywhere(system)
        attack = (passthrough_attack(system.connection_keys())
                  if mode == "passthrough-attack" else None)
        injector = RuntimeInjector(engine, model, attack)
        injector.install(network, {"c1": controller})
    network.start()
    engine.run(until=5.0)
    assert network.all_connected()
    connect_time = engine.now  # all-connected guaranteed by 5.0; refine below
    run = network.host("h1").ping(network.host_ip("h2"), count=10, interval=0.5)
    engine.run(until=30.0)
    result = run.result
    return {
        "first_rtt_ms": result.rtts[0] * 1000,
        "median_rtt_ms": result.median_rtt * 1000,
        "received": result.received,
    }


MODES = ("direct", "proxy-no-attack", "passthrough-attack")


def test_interposition_overhead(benchmark):
    def collect():
        return {mode: run_mode(mode) for mode in MODES}

    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = [
        (mode,
         f"{results[mode]['first_rtt_ms']:.3f}",
         f"{results[mode]['median_rtt_ms']:.3f}",
         f"{results[mode]['received']}/10")
        for mode in MODES
    ]
    print_table(
        "Ablation — interposition overhead (ping h1->h2)",
        ("mode", "first RTT (ms)", "median RTT (ms)", "delivered"),
        rows,
    )
    for mode in MODES:
        benchmark.extra_info[f"{mode}_median_ms"] = results[mode]["median_rtt_ms"]

    # All modes deliver everything; interposition must not change
    # steady-state forwarding (flows installed, no controller involvement).
    for mode in MODES:
        assert results[mode]["received"] == 10
    direct = results["direct"]["median_rtt_ms"]
    for mode in ("proxy-no-attack", "passthrough-attack"):
        assert results[mode]["median_rtt_ms"] == pytest.approx(direct, rel=0.25)
    # First-packet RTT (controller path) pays the extra proxy hop.
    assert (results["proxy-no-attack"]["first_rtt_ms"]
            >= results["direct"]["first_rtt_ms"])
