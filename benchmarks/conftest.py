"""Shared benchmark configuration.

Each benchmark regenerates one of the paper's evaluation artifacts
(Fig. 11a, Fig. 11b, Table II, plus the Section VI-D/VIII analyses) and
prints the corresponding rows.  By default the workloads are scaled down
so the whole suite finishes in a few minutes; set ``REPRO_FULL_SCALE=1``
to run the paper's exact timing (60 ping trials, 30 x 10 s iperf trials —
expect a long run).
"""

from __future__ import annotations

import os

import pytest

FULL_SCALE = os.environ.get("REPRO_FULL_SCALE", "") not in ("", "0", "false")


@pytest.fixture(scope="session")
def suppression_config():
    if FULL_SCALE:
        return dict(ping_trials=60, iperf_trials=30, iperf_duration_s=10.0,
                    iperf_gap_s=10.0, warmup_s=30.0)
    return dict(ping_trials=15, iperf_trials=3, iperf_duration_s=2.0,
                iperf_gap_s=2.0, warmup_s=5.0)


@pytest.fixture(scope="session")
def suppression_results(suppression_config):
    """All six (controller, attacked) cells, computed once per session."""
    from repro.experiments import run_suppression_experiment

    results = {}
    for controller in ("floodlight", "pox", "ryu"):
        for attacked in (False, True):
            results[(controller, attacked)] = run_suppression_experiment(
                controller, attacked, **suppression_config
            )
    return results


@pytest.fixture(scope="session")
def interruption_results():
    """All six Table II cells, computed once per session."""
    from repro.dataplane import FailMode
    from repro.experiments import run_interruption_experiment

    results = {}
    for controller in ("floodlight", "pox", "ryu"):
        for mode in (FailMode.STANDALONE, FailMode.SECURE):
            results[(controller, mode.value)] = run_interruption_experiment(
                controller, mode
            )
    return results


def print_table(title, headers, rows):
    """Render one paper artifact as an aligned text table."""
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows))
              for i, h in enumerate(headers)]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print()
    print(f"=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
