"""E1 — Fig. 11(a): iperf throughput h1 -> h6, baseline vs. suppression.

Reproduced shape: baselines near the 100 Mbps link rate for all three
controllers; under flow-modification suppression Floodlight and Ryu
collapse by an order of magnitude or more (every segment pays controller
round trips) and POX shows the asterisk — zero throughput (denial of
service), because its l2_learning releases the buffered packet through the
suppressed FLOW_MOD itself.
"""

import pytest

from benchmarks.conftest import print_table

CONTROLLERS = ("floodlight", "pox", "ryu")


def test_fig11a_throughput(benchmark, suppression_results, suppression_config):
    def collect():
        rows = []
        for controller in CONTROLLERS:
            baseline = suppression_results[(controller, False)]
            attacked = suppression_results[(controller, True)]
            rows.append((
                controller,
                f"{baseline.mean_throughput_mbps:.1f}",
                ("0.0 (*)" if attacked.denial_of_service
                 else f"{attacked.mean_throughput_mbps:.2f}"),
                (f"{baseline.mean_throughput_mbps / attacked.mean_throughput_mbps:.0f}x"
                 if attacked.mean_throughput_mbps else "inf"),
            ))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    print_table(
        "Fig. 11(a) — throughput h1->h6 (Mbps), (*) = denial of service",
        ("controller", "baseline", "under attack", "degradation"),
        rows,
    )
    for controller, baseline_text, attacked_text, _factor in rows:
        benchmark.extra_info[f"{controller}_baseline_mbps"] = baseline_text
        benchmark.extra_info[f"{controller}_attacked_mbps"] = attacked_text

    # Shape assertions (who wins / by what factor):
    for controller in CONTROLLERS:
        baseline = suppression_results[(controller, False)]
        assert baseline.mean_throughput_mbps > 60.0
    pox = suppression_results[("pox", True)]
    assert pox.denial_of_service  # the asterisk
    for controller in ("floodlight", "ryu"):
        attacked = suppression_results[(controller, True)]
        baseline = suppression_results[(controller, False)]
        assert 0 < attacked.mean_throughput_mbps < baseline.mean_throughput_mbps / 5
    # Floodlight's faster service time gives it more surviving throughput
    # than Ryu under attack.
    assert (suppression_results[("floodlight", True)].mean_throughput_mbps
            > suppression_results[("ryu", True)].mean_throughput_mbps)
