"""E6 — Section VIII-A language expressiveness: reorder / replay / flood.

Runs the three expressiveness attacks over synthetic message streams
through the real attack executor, validates their wire-order semantics,
and measures the executor's per-message cost with storage-heavy rules.
"""

import pytest

from benchmarks.conftest import print_table
from repro.attacks import reordering_attack, replay_attack
from repro.core.injector import AttackExecutor
from repro.core.lang.properties import Direction, InterposedMessage
from repro.openflow import EchoRequest
from repro.sim import SimulationEngine

CONN = ("c1", "s1")


def feed(executor, count):
    emitted = []
    for index in range(count):
        message = EchoRequest(payload=f"m{index}".encode(), xid=index + 1)
        interposed = InterposedMessage(
            CONN, Direction.TO_CONTROLLER, 0.0, message.pack(), message
        )
        for outgoing in executor.handle_message(interposed):
            emitted.append(outgoing.message.parsed.payload.decode())
    return emitted


def test_expressiveness_semantics(benchmark):
    def collect():
        rows = []
        reorder = AttackExecutor(
            reordering_attack(CONN, batch_size=3), SimulationEngine()
        )
        rows.append(("reorder (batch=3)", " ".join(feed(reorder, 6))))
        replay = AttackExecutor(
            replay_attack(CONN, "type = ECHO_REQUEST", batch_size=2),
            SimulationEngine(),
        )
        rows.append(("replay (batch=2)", " ".join(feed(replay, 3))))
        flood = AttackExecutor(
            replay_attack(CONN, "type = ECHO_REQUEST", batch_size=2,
                          replay_copies=3),
            SimulationEngine(),
        )
        rows.append(("flood (batch=2, x3)", " ".join(feed(flood, 3))))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    print_table("Section VIII-A — expressiveness attacks (wire order)",
                ("attack", "emitted order for arrivals m0 m1 m2 ..."), rows)
    as_dict = dict(rows)
    assert as_dict["reorder (batch=3)"] == "m2 m1 m0 m5 m4 m3"
    assert as_dict["replay (batch=2)"] == "m0 m1 m0 m1 m2"
    assert as_dict["flood (batch=2, x3)"] == "m0 m1 m0 m0 m0 m1 m1 m1 m2"


def test_reordering_executor_throughput(benchmark):
    """Per-message executor cost with storage-manipulating rules."""
    executor = AttackExecutor(
        reordering_attack(CONN, batch_size=8), SimulationEngine()
    )
    counter = {"n": 0}

    def process():
        counter["n"] += 1
        message = EchoRequest(payload=b"x", xid=counter["n"] & 0xFFFF or 1)
        interposed = InterposedMessage(
            CONN, Direction.TO_CONTROLLER, 0.0, message.pack(), message
        )
        return executor.handle_message(interposed)

    benchmark(process)
