"""E2 — Fig. 11(b): ping latency h1 -> h6, baseline vs. suppression.

Reproduced shape: millisecond-class baselines; under suppression every
ICMP packet takes per-switch controller round trips, multiplying RTT
several-fold for Floodlight and Ryu; POX loses every ping — "latency is
infinite" — the Fig. 11 asterisk.
"""

import pytest

from benchmarks.conftest import print_table

CONTROLLERS = ("floodlight", "pox", "ryu")


def fmt_ms(value):
    return f"{value * 1000:.3f}" if value is not None else "inf (*)"


def test_fig11b_latency(benchmark, suppression_results, suppression_config):
    def collect():
        rows = []
        for controller in CONTROLLERS:
            baseline = suppression_results[(controller, False)]
            attacked = suppression_results[(controller, True)]
            rows.append((
                controller,
                fmt_ms(baseline.median_rtt_s),
                fmt_ms(attacked.median_rtt_s),
                f"{attacked.ping_loss_rate:.0%}",
            ))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    print_table(
        "Fig. 11(b) — median ping RTT h1->h6 (ms), (*) = denial of service",
        ("controller", "baseline", "under attack", "attack loss"),
        rows,
    )
    for controller, baseline_text, attacked_text, loss in rows:
        benchmark.extra_info[f"{controller}_baseline_ms"] = baseline_text
        benchmark.extra_info[f"{controller}_attacked_ms"] = attacked_text

    # Shape assertions:
    for controller in CONTROLLERS:
        baseline = suppression_results[(controller, False)]
        assert baseline.median_rtt_s < 0.01
        assert baseline.ping_loss_rate == 0.0
    pox = suppression_results[("pox", True)]
    assert pox.median_rtt_s is None and pox.ping_loss_rate == 1.0
    for controller in ("floodlight", "ryu"):
        baseline = suppression_results[(controller, False)]
        attacked = suppression_results[(controller, True)]
        assert attacked.median_rtt_s > 2 * baseline.median_rtt_s
        assert attacked.ping_loss_rate == 0.0
    # POX's slow service time is visible even in its *baseline* first-packet
    # path; under attack Ryu (slower than Floodlight) shows higher RTT.
    assert (suppression_results[("ryu", True)].median_rtt_s
            > suppression_results[("floodlight", True)].median_rtt_s)
