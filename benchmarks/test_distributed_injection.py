"""A2 — Section VIII-C: distributed injection latency/consistency trade-off.

"A guarantee of total ordering may come at the cost of increased latency
and may inversely affect the attack's results if messages are dependent on
physical time guarantees."

The bench runs the suppression attack through a two-instance injector
cluster and sweeps the coordination latency in both modes:

* TOTAL_ORDER pays two coordination hops per interposed message — under
  suppression every data packet crosses the control plane, so data-plane
  RTT balloons with the coordination latency;
* OPTIMISTIC keeps RTT flat regardless of coordination latency, trading
  global state consistency (replica executors, private storage) for it.
"""

import pytest

from benchmarks.conftest import print_table
from repro.attacks import flow_mod_suppression_attack
from repro.controllers import FloodlightController
from repro.core import AttackModel, SystemModel
from repro.core.injector import CoordinationMode, DistributedInjection
from repro.dataplane import Network, Topology
from repro.sim import SimulationEngine

LATENCIES = (0.0, 0.002, 0.01)


def run_cell(mode, latency):
    engine = SimulationEngine()
    topo = Topology("dist")
    topo.add_host("h1")
    topo.add_host("h2")
    topo.add_switch("s1", datapath_id=1)
    topo.add_switch("s2", datapath_id=2)
    topo.add_link("h1", "s1")
    topo.add_link("s1", "s2")
    topo.add_link("h2", "s2")
    network = Network(engine, topo)
    controller = FloodlightController(engine)
    system = SystemModel.from_topology(topo, ["c1"])
    model = AttackModel.no_tls_everywhere(system)
    attack = flow_mod_suppression_attack(system.connection_keys())
    cluster = DistributedInjection(
        engine, model, attack, ["inj-a", "inj-b"],
        coordination_latency=latency, mode=mode,
    )
    cluster.install_slices(
        network, {"c1": controller},
        {"inj-a": [("c1", "s1")], "inj-b": [("c1", "s2")]},
    )
    network.start()
    engine.run(until=5.0)
    assert network.all_connected()
    run = network.host("h1").ping(network.host_ip("h2"), count=8)
    engine.run(until=90.0)
    assert run.result.received == 8
    return run.result.median_rtt * 1000  # ms


def test_coordination_tradeoff(benchmark):
    def collect():
        rows = []
        for mode in (CoordinationMode.TOTAL_ORDER, CoordinationMode.OPTIMISTIC):
            row = [mode.value]
            for latency in LATENCIES:
                row.append(f"{run_cell(mode, latency):.2f}")
            rows.append(tuple(row))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    headers = ("mode",) + tuple(f"L={int(l * 1000)}ms" for l in LATENCIES)
    print_table(
        "Section VIII-C — distributed injection: median ping RTT (ms) under "
        "suppression vs coordination latency",
        headers, rows,
    )
    as_dict = {row[0]: [float(v) for v in row[1:]] for row in rows}
    total_order = as_dict["total-order"]
    optimistic = as_dict["optimistic"]
    # At zero coordination latency the modes agree.
    assert total_order[0] == pytest.approx(optimistic[0], rel=0.05)
    # Total ordering pays for coordination; optimistic does not.
    assert total_order[2] > total_order[0] * 3
    assert optimistic[2] == pytest.approx(optimistic[0], rel=0.05)
    for mode, values in as_dict.items():
        benchmark.extra_info[mode] = values
