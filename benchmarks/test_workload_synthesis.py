"""Adversarial workload generation: batch synthesis and overflow pressure.

Two artifacts:

* **Generator throughput** — frames/second synthesizing a distinct-key
  UDP sweep through the :class:`FrameTemplate` batch lane (pre-packed
  buffer + RFC 1624 incremental checksum patch + warm FastFrame key
  caches) vs the naive per-packet object graph
  (``UdpDatagram``/``Ipv4Packet``/``EthernetFrame`` packed from scratch,
  key extracted from the bytes).  The PR acceptance bar is >= 3x.
* **Overflow campaign** — the ``table-overflow`` source against
  LRU-bounded tables on a fat-tree under Floodlight: table occupancy
  peak, evictions by reason, and the PACKET_IN rate, recorded in
  ``--benchmark-json`` (committed as ``BENCH_workloads.json``).

``REPRO_BENCH_QUICK=1`` shrinks both for CI smoke.
"""

import os
import statistics
import time

from benchmarks.conftest import print_table
from repro.campaign import reset_run_state
from repro.experiments.fabric import run_fabric_experiment
from repro.netlib.addresses import Ipv4Address, MacAddress
from repro.netlib.ethernet import EtherType, EthernetFrame
from repro.netlib.flowkey import extract_flow_base
from repro.netlib.ipv4 import IpProtocol, Ipv4Packet
from repro.netlib.udp import UdpDatagram
from repro.workloads import FrameTemplate

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0", "false")

SPEEDUP_FLOOR = 3.0
ROUNDS = 3 if QUICK else 7
FRAMES = 20_000 if QUICK else 100_000
KEYS = 2048

SRC_MAC, DST_MAC = MacAddress(0x02A000000001), MacAddress(0x02A000000002)
SRC_IP, DST_IP = Ipv4Address("10.1.0.1"), Ipv4Address("10.1.0.2")


def _naive_sweep(n):
    """Per-packet object-graph construction, key extracted from bytes."""
    frames = 0
    for i in range(n):
        datagram = UdpDatagram(20000 + i % KEYS, 43001, b"\x00" * 18)
        packet = Ipv4Packet(SRC_IP, DST_IP, IpProtocol.UDP, datagram.pack())
        frame = EthernetFrame(DST_MAC, SRC_MAC, EtherType.IPV4,
                              packet.pack()).pack()
        extract_flow_base(frame)
        frames += 1
    return frames


def _batch_sweep(n, template):
    """Template patching: emit() carries the key, nothing re-extracts."""
    frames = 0
    set_port, emit = template.set_tp_src, template.emit
    for i in range(n):
        set_port(20000 + i % KEYS)
        emit()
        frames += 1
    return frames


def _median_seconds(fn, *args):
    samples = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        fn(*args)
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def test_batch_synthesis_speedup(benchmark):
    """The template lane synthesizes flood frames >= 3x faster."""
    template = FrameTemplate.udp(SRC_MAC, DST_MAC, SRC_IP, DST_IP,
                                 20000, 43001)
    naive_s = _median_seconds(_naive_sweep, FRAMES)
    batch_s = _median_seconds(_batch_sweep, FRAMES, template)
    speedup = naive_s / batch_s
    print_table(
        f"Batch packet synthesis — {FRAMES:,} frames, {KEYS} distinct keys",
        ("generator", "wall", "frames/s", "speedup"),
        [
            ("naive object graph", f"{naive_s:.3f} s",
             f"{FRAMES / naive_s:,.0f}", "1.0x"),
            ("template batch lane", f"{batch_s:.3f} s",
             f"{FRAMES / batch_s:,.0f}", f"{speedup:.1f}x"),
        ],
    )
    # The patched stream is byte-faithful: same bytes the naive path packs.
    template.set_tp_src(20000 + 17)
    datagram = UdpDatagram(20000 + 17, 43001, b"\x00" * 18)
    packet = Ipv4Packet(SRC_IP, DST_IP, IpProtocol.UDP, datagram.pack())
    expected = EthernetFrame(DST_MAC, SRC_MAC, EtherType.IPV4,
                             packet.pack()).pack()
    assert bytes(template.emit()) == expected
    assert speedup >= SPEEDUP_FLOOR, f"only {speedup:.1f}x"

    result = benchmark.pedantic(_batch_sweep, args=(FRAMES, template),
                                rounds=ROUNDS, iterations=1)
    assert result == FRAMES
    benchmark.extra_info["frames"] = FRAMES
    benchmark.extra_info["keys"] = KEYS
    benchmark.extra_info["naive_frames_per_s"] = round(FRAMES / naive_s)
    benchmark.extra_info["batch_frames_per_s"] = round(FRAMES / batch_s)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["quick"] = QUICK


if QUICK:
    OVERFLOW = dict(topology="fat-tree-k4", capacity=64, keys=512,
                    schedule="constant:1200", senders=2, duration_s=0.4)
else:
    OVERFLOW = dict(topology="fat-tree-k8", capacity=128, keys=4096,
                    schedule="constant:2000", senders=8, duration_s=1.0)


def test_overflow_campaign_pressure(benchmark):
    """Distinct-key churn saturates bounded tables and sustains eviction."""
    def run():
        reset_run_state()
        return run_fabric_experiment(
            OVERFLOW["topology"], controller="floodlight",
            workload="table-overflow", seed=1,
            table_capacity=OVERFLOW["capacity"], table_eviction="lru",
            workload_params={"schedule": OVERFLOW["schedule"],
                             "keys": OVERFLOW["keys"],
                             "senders": OVERFLOW["senders"],
                             "duration_s": OVERFLOW["duration_s"]},
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Table overflow — {OVERFLOW['keys']} keys vs "
        f"{OVERFLOW['capacity']}-entry LRU tables on {result.fabric}",
        ("metric", "value"),
        [
            ("frames synthesized", f"{result.packets_synthesized:,}"),
            ("PACKET_INs", f"{result.switch_packet_ins:,} "
                           f"({result.packet_in_rate:,.0f}/s)"),
            ("table occupancy peak", result.table_occupancy_peak),
            ("evictions (capacity)", f"{result.evictions_capacity:,}"),
            ("evictions (idle/hard)",
             f"{result.evictions_idle}/{result.evictions_hard}"),
            ("wall", f"{result.wall_s:.2f} s"),
        ],
    )
    # The sweep must overflow: tables pinned at capacity, sustained
    # capacity eviction, and a live PACKET_IN storm.
    assert result.table_occupancy_peak == OVERFLOW["capacity"]
    assert result.evictions_capacity > 0
    assert result.switch_packet_ins > 0
    benchmark.extra_info.update({
        "fabric": result.fabric,
        "table_capacity": OVERFLOW["capacity"],
        "keys": OVERFLOW["keys"],
        "packets_synthesized": result.packets_synthesized,
        "switch_packet_ins": result.switch_packet_ins,
        "packet_in_rate": round(result.packet_in_rate, 1),
        "table_occupancy_peak": result.table_occupancy_peak,
        "evictions_capacity": result.evictions_capacity,
        "evictions_idle": result.evictions_idle,
        "evictions_hard": result.evictions_hard,
        "quick": QUICK,
    })
