"""A4 — redundancy as a defense: evaluating the many-to-many N_C.

The system model allows a switch to hold connections to multiple
controllers "for redundancy or fault tolerance" (Section IV-A5).  This
bench uses the injector to *evaluate that design*: the same
connection-severing attack is run against single- and dual-controller
deployments, fail-safe and fail-secure, and the security/availability
outcomes are compared.  With redundancy the attacked switch never loses
its control plane, so neither Table II failure mode can occur.
"""

import pytest

from benchmarks.conftest import print_table
from repro.controllers import FloodlightController
from repro.core import AttackModel, RuntimeInjector, SystemModel
from repro.core.lang import (
    Attack,
    AttackState,
    DropMessage,
    GoToState,
    PassMessage,
    Rule,
    parse_condition,
)
from repro.core.model import gamma_no_tls
from repro.dataplane import FailMode, Network, Topology
from repro.sim import SimulationEngine


def severing_attack(connections):
    phi1 = Rule("arm", connections, gamma_no_tls(),
                parse_condition("type = FEATURES_REPLY"),
                [PassMessage(), GoToState("sigma2")])
    phi2 = Rule("blackhole", connections, gamma_no_tls(),
                parse_condition("true"), [DropMessage()])
    return Attack("sever", [AttackState("sigma1", [phi1]),
                            AttackState("sigma2", [phi2])], "sigma1")


def run_cell(redundant: bool, fail_mode: FailMode):
    engine = SimulationEngine()
    topo = Topology("redundancy")
    topo.add_host("h1")
    topo.add_host("h2")
    topo.add_switch("s1", datapath_id=1)
    topo.add_switch("s2", datapath_id=2)
    topo.add_link("h1", "s1")
    topo.add_link("s1", "s2")
    topo.add_link("h2", "s2")
    network = Network(engine, topo, fail_mode=fail_mode)
    controllers = {"c1": FloodlightController(engine, name="c1")}
    names = ["c1"]
    if redundant:
        controllers["c2"] = FloodlightController(engine, name="c2")
        names.append("c2")
    system = SystemModel.from_topology(topo, names)
    model = AttackModel.no_tls_everywhere(system)
    # The attacker severs every c1 connection (the paper's scenario);
    # the redundant deployment also has untouched c2 connections.
    attack = severing_attack([("c1", "s1"), ("c1", "s2")])
    injector = RuntimeInjector(engine, model, attack)
    injector.install(network, controllers)
    network.start()
    engine.run(until=40.0)  # well past echo timeouts
    run = network.host("h1").ping(network.host_ip("h2"), count=5)
    engine.run(until=60.0)
    s2 = network.switch("s2")
    return {
        "control_plane_alive": s2.connected,
        "standalone": s2.standalone_active,
        "pings": run.result.received,
    }


def test_redundancy_defeats_connection_severing(benchmark):
    def collect():
        rows = []
        for redundant in (False, True):
            for fail_mode in (FailMode.STANDALONE, FailMode.SECURE):
                outcome = run_cell(redundant, fail_mode)
                rows.append((
                    "dual (c1+c2)" if redundant else "single (c1)",
                    fail_mode.value,
                    "alive" if outcome["control_plane_alive"] else "dead",
                    str(outcome["standalone"]),
                    f"{outcome['pings']}/5",
                ))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    print_table(
        "Redundant N_C vs the connection-severing attack (all c1 links cut)",
        ("deployment", "fail mode", "control plane", "standalone engaged",
         "pings after attack"),
        rows,
    )
    outcomes = {(row[0], row[1]): row for row in rows}
    # Single controller: attack fully lands.
    assert outcomes[("single (c1)", "standalone")][2] == "dead"
    assert outcomes[("single (c1)", "standalone")][3] == "True"
    assert outcomes[("single (c1)", "standalone")][4] == "5/5"  # learning fallback
    assert outcomes[("single (c1)", "secure")][4] == "0/5"      # DoS
    # Dual controllers: the control plane survives in both fail modes and
    # neither failure manifestation occurs.
    for fail_mode in ("standalone", "secure"):
        row = outcomes[("dual (c1+c2)", fail_mode)]
        assert row[2] == "alive"
        assert row[3] == "False"
        assert row[4] == "5/5"
