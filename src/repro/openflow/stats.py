"""Typed OpenFlow 1.0 statistics bodies.

`StatsRequest`/`StatsReply` carry opaque bodies on the wire; this module
gives FLOW and AGGREGATE statistics their real OF 1.0 structures so the
monitoring workflow the paper's system model describes ("controllers use
the southbound API to query ... traffic statistics associated with
instantiated forwarding rules") runs over byte-accurate messages — and so
MODIFYMESSAGE attacks on statistics replies exercise real re-encoding.
"""

from __future__ import annotations

import struct
from typing import List

from repro.openflow.actions import Action
from repro.openflow.match import MATCH_SIZE, Match
from repro.openflow.messages import OpenFlowDecodeError, StatsReply, StatsRequest
from repro.openflow.constants import Port, StatsType

_FLOW_STATS_FIXED = struct.Struct("!HBx")          # length, table_id
_FLOW_STATS_TAIL = struct.Struct("!IIHHH6xQQQ")    # durations..byte_count
_FLOW_REQUEST = struct.Struct("!Bx H")             # table_id, out_port
_AGGREGATE_REPLY = struct.Struct("!QQI4x")


class FlowStatsEntry:
    """One ``ofp_flow_stats`` record in a FLOW stats reply."""

    __slots__ = (
        "match",
        "table_id",
        "duration_sec",
        "duration_nsec",
        "priority",
        "idle_timeout",
        "hard_timeout",
        "cookie",
        "packet_count",
        "byte_count",
        "actions",
    )

    def __init__(
        self,
        match: Match,
        priority: int = 0x8000,
        duration_sec: int = 0,
        duration_nsec: int = 0,
        idle_timeout: int = 0,
        hard_timeout: int = 0,
        cookie: int = 0,
        packet_count: int = 0,
        byte_count: int = 0,
        actions: List[Action] = (),
        table_id: int = 0,
    ) -> None:
        self.match = match
        self.table_id = table_id
        self.duration_sec = duration_sec
        self.duration_nsec = duration_nsec
        self.priority = priority
        self.idle_timeout = idle_timeout
        self.hard_timeout = hard_timeout
        self.cookie = cookie
        self.packet_count = packet_count
        self.byte_count = byte_count
        self.actions = list(actions)

    def pack(self) -> bytes:
        packed_actions = Action.pack_list(self.actions)
        length = (
            _FLOW_STATS_FIXED.size
            + MATCH_SIZE
            + _FLOW_STATS_TAIL.size
            + len(packed_actions)
        )
        return (
            _FLOW_STATS_FIXED.pack(length, self.table_id)
            + self.match.pack()
            + _FLOW_STATS_TAIL.pack(
                self.duration_sec,
                self.duration_nsec,
                self.priority,
                self.idle_timeout,
                self.hard_timeout,
                self.cookie,
                self.packet_count,
                self.byte_count,
            )
            + packed_actions
        )

    @classmethod
    def unpack(cls, data: bytes, offset: int = 0):
        """Decode one record; returns ``(entry, next_offset)``."""
        if offset + _FLOW_STATS_FIXED.size > len(data):
            raise OpenFlowDecodeError("truncated flow-stats header")
        length, table_id = _FLOW_STATS_FIXED.unpack_from(data, offset)
        end = offset + length
        if length < _FLOW_STATS_FIXED.size + MATCH_SIZE + _FLOW_STATS_TAIL.size:
            raise OpenFlowDecodeError(f"impossible flow-stats length {length}")
        if end > len(data):
            raise OpenFlowDecodeError("flow-stats record overflows body")
        cursor = offset + _FLOW_STATS_FIXED.size
        match = Match.unpack(data[cursor : cursor + MATCH_SIZE])
        cursor += MATCH_SIZE
        (
            duration_sec,
            duration_nsec,
            priority,
            idle_timeout,
            hard_timeout,
            cookie,
            packet_count,
            byte_count,
        ) = _FLOW_STATS_TAIL.unpack_from(data, cursor)
        cursor += _FLOW_STATS_TAIL.size
        actions = Action.unpack_list(data[cursor:end])
        entry = cls(
            match,
            priority=priority,
            duration_sec=duration_sec,
            duration_nsec=duration_nsec,
            idle_timeout=idle_timeout,
            hard_timeout=hard_timeout,
            cookie=cookie,
            packet_count=packet_count,
            byte_count=byte_count,
            actions=actions,
            table_id=table_id,
        )
        return entry, end

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FlowStatsEntry):
            return self.pack() == other.pack()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.pack())

    def __repr__(self) -> str:
        return (
            f"<FlowStats {self.match!r} packets={self.packet_count} "
            f"bytes={self.byte_count}>"
        )


def flow_stats_request(
    match: Match = None,
    table_id: int = 0xFF,
    out_port: int = Port.NONE,
    xid=None,
) -> StatsRequest:
    """Build an OFPST_FLOW request (default: all tables, all flows)."""
    match = match if match is not None else Match.wildcard_all()
    body = match.pack() + _FLOW_REQUEST.pack(table_id, out_port)
    return StatsRequest(StatsType.FLOW, body, xid=xid)


def parse_flow_stats_request(request: StatsRequest):
    """Decode an OFPST_FLOW request body -> (match, table_id, out_port)."""
    if request.stats_type != StatsType.FLOW:
        raise OpenFlowDecodeError(f"not a FLOW stats request: {request!r}")
    body = request.body
    if len(body) < MATCH_SIZE + _FLOW_REQUEST.size:
        raise OpenFlowDecodeError("truncated FLOW stats request body")
    match = Match.unpack(body[:MATCH_SIZE])
    table_id, out_port = _FLOW_REQUEST.unpack_from(body, MATCH_SIZE)
    return match, table_id, out_port


def flow_stats_reply(entries: List[FlowStatsEntry], xid=None) -> StatsReply:
    """Build an OFPST_FLOW reply from entries."""
    body = b"".join(entry.pack() for entry in entries)
    return StatsReply(StatsType.FLOW, body, xid=xid)


def parse_flow_stats_reply(reply: StatsReply) -> List[FlowStatsEntry]:
    """Decode every ``ofp_flow_stats`` record in a FLOW stats reply."""
    if reply.stats_type != StatsType.FLOW:
        raise OpenFlowDecodeError(f"not a FLOW stats reply: {reply!r}")
    entries: List[FlowStatsEntry] = []
    offset = 0
    while offset < len(reply.body):
        entry, offset = FlowStatsEntry.unpack(reply.body, offset)
        entries.append(entry)
    return entries


def aggregate_stats_reply(
    packet_count: int, byte_count: int, flow_count: int, xid=None
) -> StatsReply:
    """Build an OFPST_AGGREGATE reply."""
    body = _AGGREGATE_REPLY.pack(packet_count, byte_count, flow_count)
    return StatsReply(StatsType.AGGREGATE, body, xid=xid)


def parse_aggregate_stats_reply(reply: StatsReply):
    """Decode an OFPST_AGGREGATE reply -> (packets, bytes, flows)."""
    if reply.stats_type != StatsType.AGGREGATE:
        raise OpenFlowDecodeError(f"not an AGGREGATE stats reply: {reply!r}")
    if len(reply.body) < _AGGREGATE_REPLY.size:
        raise OpenFlowDecodeError("truncated AGGREGATE stats reply")
    return _AGGREGATE_REPLY.unpack_from(reply.body)
