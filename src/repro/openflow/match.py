"""``ofp_match`` — the OpenFlow 1.0 twelve-tuple flow match."""

from __future__ import annotations

import struct
from typing import Any, Dict, Optional, Tuple

from repro.netlib.addresses import Ipv4Address, MacAddress
from repro.netlib.ethernet import EtherType
from repro.netlib.flowkey import (
    FIELD_TUPLE_KEY,
    MATCH_FIELD_NAMES,
    extract_flow_key,
)
from repro.netlib.icmp import IcmpEcho
from repro.netlib.ipv4 import Ipv4Packet
from repro.netlib.packet import decode_ethernet
from repro.netlib.tcp import TcpSegment
from repro.netlib.udp import UdpDatagram
from repro.openflow.constants import (
    NW_DST_MASK,
    NW_DST_SHIFT,
    NW_SRC_MASK,
    NW_SRC_SHIFT,
    OFPFW_ALL,
    Wildcards,
)

_MATCH = struct.Struct("!IH6s6sHBxHBBxx4s4sHH")
MATCH_SIZE = _MATCH.size  # 40 bytes

OFP_VLAN_NONE = 0xFFFF

#: Field name -> wildcard flag for the simple (non-CIDR) fields.
_SIMPLE_WILDCARDS: Dict[str, Wildcards] = {
    "in_port": Wildcards.IN_PORT,
    "dl_vlan": Wildcards.DL_VLAN,
    "dl_src": Wildcards.DL_SRC,
    "dl_dst": Wildcards.DL_DST,
    "dl_type": Wildcards.DL_TYPE,
    "nw_proto": Wildcards.NW_PROTO,
    "tp_src": Wildcards.TP_SRC,
    "tp_dst": Wildcards.TP_DST,
    "dl_vlan_pcp": Wildcards.DL_VLAN_PCP,
    "nw_tos": Wildcards.NW_TOS,
}

# MATCH_FIELD_NAMES and FIELD_TUPLE_KEY are re-exported from
# repro.netlib.flowkey (imported above) — the single-pass extractor and
# this module must agree on the tuple order.


class Match:
    """A flow match where ``None`` fields are wildcarded.

    ``nw_src``/``nw_dst`` may carry an optional prefix length via
    ``nw_src_prefix``/``nw_dst_prefix`` (default 32 = exact host match).
    """

    __slots__ = (
        "in_port",
        "dl_src",
        "dl_dst",
        "dl_vlan",
        "dl_vlan_pcp",
        "dl_type",
        "nw_tos",
        "nw_proto",
        "nw_src",
        "nw_src_prefix",
        "nw_dst",
        "nw_dst_prefix",
        "tp_src",
        "tp_dst",
    )

    def __init__(
        self,
        in_port: Optional[int] = None,
        dl_src: Optional[MacAddress] = None,
        dl_dst: Optional[MacAddress] = None,
        dl_vlan: Optional[int] = None,
        dl_vlan_pcp: Optional[int] = None,
        dl_type: Optional[int] = None,
        nw_tos: Optional[int] = None,
        nw_proto: Optional[int] = None,
        nw_src: Optional[Ipv4Address] = None,
        nw_dst: Optional[Ipv4Address] = None,
        tp_src: Optional[int] = None,
        tp_dst: Optional[int] = None,
        nw_src_prefix: int = 32,
        nw_dst_prefix: int = 32,
    ) -> None:
        self.in_port = in_port
        self.dl_src = MacAddress(dl_src) if dl_src is not None else None
        self.dl_dst = MacAddress(dl_dst) if dl_dst is not None else None
        self.dl_vlan = dl_vlan
        self.dl_vlan_pcp = dl_vlan_pcp
        self.dl_type = dl_type
        self.nw_tos = nw_tos
        self.nw_proto = nw_proto
        self.nw_src = Ipv4Address(nw_src) if nw_src is not None else None
        self.nw_dst = Ipv4Address(nw_dst) if nw_dst is not None else None
        self.tp_src = tp_src
        self.tp_dst = tp_dst
        for name, prefix in (("nw_src_prefix", nw_src_prefix), ("nw_dst_prefix", nw_dst_prefix)):
            if not 0 <= prefix <= 32:
                raise ValueError(f"{name} out of range: {prefix!r}")
        self.nw_src_prefix = nw_src_prefix
        self.nw_dst_prefix = nw_dst_prefix

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def wildcard_all(cls) -> "Match":
        """The match-everything match (used by DELETE-all flow mods)."""
        return cls()

    @classmethod
    def from_packet(cls, data: bytes, in_port: int) -> "Match":
        """Extract the exact twelve-tuple from raw Ethernet bytes.

        This mirrors OVS's flow-key extraction: every field the packet
        defines becomes an exact-match field.
        """
        fields = extract_packet_fields(data, in_port)
        return cls(
            in_port=fields["in_port"],
            dl_src=fields["dl_src"],
            dl_dst=fields["dl_dst"],
            dl_vlan=fields["dl_vlan"],
            dl_vlan_pcp=fields["dl_vlan_pcp"],
            dl_type=fields["dl_type"],
            nw_tos=fields["nw_tos"],
            nw_proto=fields["nw_proto"],
            nw_src=fields["nw_src"],
            nw_dst=fields["nw_dst"],
            tp_src=fields["tp_src"],
            tp_dst=fields["tp_dst"],
        )

    # ------------------------------------------------------------------ #
    # Matching semantics
    # ------------------------------------------------------------------ #

    def matches_packet(self, data: bytes, in_port: int) -> bool:
        """True if a raw packet arriving on ``in_port`` satisfies this match."""
        return self.matches_fields(extract_packet_fields(data, in_port))

    def matches_fields(self, fields: Dict[str, Any]) -> bool:
        """True if an extracted packet-field dict satisfies this match."""
        for name in ("in_port", "dl_vlan", "dl_vlan_pcp", "dl_type", "nw_tos",
                     "nw_proto", "tp_src", "tp_dst"):
            wanted = getattr(self, name)
            if wanted is not None and fields.get(name) != wanted:
                return False
        for name in ("dl_src", "dl_dst"):
            wanted = getattr(self, name)
            if wanted is not None and fields.get(name) != wanted:
                return False
        if not self._prefix_matches(self.nw_src, self.nw_src_prefix, fields.get("nw_src")):
            return False
        if not self._prefix_matches(self.nw_dst, self.nw_dst_prefix, fields.get("nw_dst")):
            return False
        return True

    @staticmethod
    def _prefix_matches(
        wanted: Optional[Ipv4Address], prefix: int, actual: Optional[Ipv4Address]
    ) -> bool:
        if wanted is None or prefix == 0:
            return True
        if actual is None:
            return False
        if prefix == 32:
            return wanted == actual
        mask = ((1 << prefix) - 1) << (32 - prefix)
        return (int(wanted) & mask) == (int(actual) & mask)

    def is_strict_equal(self, other: "Match") -> bool:
        """Strict flow-mod comparison: identical fields and wildcards."""
        return self.pack() == other.pack()

    def subsumes(self, other: "Match") -> bool:
        """True if every packet matching ``other`` also matches ``self``.

        Used for non-strict DELETE/MODIFY flow-mod semantics.
        """
        for name in MATCH_FIELD_NAMES:
            if name in ("nw_src", "nw_dst"):
                continue
            mine = getattr(self, name)
            theirs = getattr(other, name)
            if mine is not None and (theirs is None or mine != theirs):
                return False
        for ip_name, prefix_name in (("nw_src", "nw_src_prefix"), ("nw_dst", "nw_dst_prefix")):
            mine = getattr(self, ip_name)
            my_prefix = getattr(self, prefix_name) if mine is not None else 0
            theirs = getattr(other, ip_name)
            their_prefix = getattr(other, prefix_name) if theirs is not None else 0
            if my_prefix == 0:
                continue
            if their_prefix < my_prefix:
                return False
            if not self._prefix_matches(mine, my_prefix, theirs):
                return False
        return True

    # ------------------------------------------------------------------ #
    # Wire format
    # ------------------------------------------------------------------ #

    @property
    def wildcards(self) -> int:
        """Compute the ``ofp_flow_wildcards`` word for the current fields."""
        word = 0
        for name, flag in _SIMPLE_WILDCARDS.items():
            if getattr(self, name) is None:
                word |= int(flag)
        src_wild = 32 if self.nw_src is None else 32 - self.nw_src_prefix
        dst_wild = 32 if self.nw_dst is None else 32 - self.nw_dst_prefix
        word |= min(src_wild, 63) << NW_SRC_SHIFT
        word |= min(dst_wild, 63) << NW_DST_SHIFT
        return word

    def pack(self) -> bytes:
        return _MATCH.pack(
            self.wildcards,
            self.in_port or 0,
            (self.dl_src.packed if self.dl_src else b"\x00" * 6),
            (self.dl_dst.packed if self.dl_dst else b"\x00" * 6),
            self.dl_vlan if self.dl_vlan is not None else 0,
            self.dl_vlan_pcp or 0,
            self.dl_type or 0,
            self.nw_tos or 0,
            self.nw_proto or 0,
            (self.nw_src.packed if self.nw_src else b"\x00" * 4),
            (self.nw_dst.packed if self.nw_dst else b"\x00" * 4),
            self.tp_src or 0,
            self.tp_dst or 0,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "Match":
        if len(data) < MATCH_SIZE:
            raise ValueError(f"match too short: {len(data)} < {MATCH_SIZE}")
        (
            wildcards,
            in_port,
            dl_src,
            dl_dst,
            dl_vlan,
            dl_vlan_pcp,
            dl_type,
            nw_tos,
            nw_proto,
            nw_src,
            nw_dst,
            tp_src,
            tp_dst,
        ) = _MATCH.unpack_from(data)
        wildcards &= OFPFW_ALL

        def simple(flag: Wildcards, value: Any) -> Optional[Any]:
            return None if wildcards & int(flag) else value

        src_wild = min((wildcards & NW_SRC_MASK) >> NW_SRC_SHIFT, 32)
        dst_wild = min((wildcards & NW_DST_MASK) >> NW_DST_SHIFT, 32)
        return cls(
            in_port=simple(Wildcards.IN_PORT, in_port),
            dl_src=simple(Wildcards.DL_SRC, MacAddress(dl_src)),
            dl_dst=simple(Wildcards.DL_DST, MacAddress(dl_dst)),
            dl_vlan=simple(Wildcards.DL_VLAN, dl_vlan),
            dl_vlan_pcp=simple(Wildcards.DL_VLAN_PCP, dl_vlan_pcp),
            dl_type=simple(Wildcards.DL_TYPE, dl_type),
            nw_tos=simple(Wildcards.NW_TOS, nw_tos),
            nw_proto=simple(Wildcards.NW_PROTO, nw_proto),
            nw_src=None if src_wild >= 32 else Ipv4Address(nw_src),
            nw_dst=None if dst_wild >= 32 else Ipv4Address(nw_dst),
            tp_src=simple(Wildcards.TP_SRC, tp_src),
            tp_dst=simple(Wildcards.TP_DST, tp_dst),
            nw_src_prefix=32 - src_wild if src_wild < 32 else 32,
            nw_dst_prefix=32 - dst_wild if dst_wild < 32 else 32,
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def specified_fields(self) -> Dict[str, Any]:
        """Return only the non-wildcarded fields (for logging/conditionals)."""
        fields = {}
        for name in MATCH_FIELD_NAMES:
            value = getattr(self, name)
            if value is not None:
                fields[name] = value
        return fields

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Match):
            return self.pack() == other.pack()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.pack())

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in self.specified_fields().items())
        return f"Match({parts or 'wildcard-all'})"


def extract_packet_fields(data: bytes, in_port: int) -> Dict[str, Any]:
    """Extract the twelve match-tuple fields from raw Ethernet bytes.

    Missing layers yield ``None`` (e.g. ``tp_src`` for an ARP packet);
    ARP's opcode/addresses map into nw_proto/nw_src/nw_dst per the OF 1.0
    spec's ARP_MATCH_IP behaviour.

    Delegates to the single-pass extractor in ``repro.netlib.flowkey``;
    :func:`extract_packet_fields_reference` keeps the original
    decode-the-object-graph route as the equivalence/benchmark baseline.
    """
    return extract_flow_key(data, in_port)


def extract_packet_fields_reference(data: bytes, in_port: int) -> Dict[str, Any]:
    """The original decode-based extraction (semantics oracle)."""
    decoded = decode_ethernet(data)
    frame = decoded.ethernet
    fields: Dict[str, Any] = {
        "in_port": in_port,
        "dl_src": frame.src,
        "dl_dst": frame.dst,
        "dl_vlan": OFP_VLAN_NONE,
        "dl_vlan_pcp": 0,
        "dl_type": frame.ethertype,
        "nw_tos": None,
        "nw_proto": None,
        "nw_src": None,
        "nw_dst": None,
        "tp_src": None,
        "tp_dst": None,
    }
    l3 = decoded.l3
    if isinstance(l3, Ipv4Packet):
        fields["nw_tos"] = 0
        fields["nw_proto"] = l3.protocol
        fields["nw_src"] = l3.src
        fields["nw_dst"] = l3.dst
        l4 = decoded.l4
        if isinstance(l4, (TcpSegment, UdpDatagram)):
            fields["tp_src"] = l4.src_port
            fields["tp_dst"] = l4.dst_port
        elif isinstance(l4, IcmpEcho):
            fields["tp_src"] = int(l4.icmp_type)
            fields["tp_dst"] = 0
    elif frame.ethertype == EtherType.ARP and l3 is not None:
        fields["nw_proto"] = l3.opcode
        fields["nw_src"] = l3.sender_ip
        fields["nw_dst"] = l3.target_ip
    return fields


def field_tuple(fields: Dict[str, Any]) -> Tuple[Any, ...]:
    """A hashable key over the twelve match fields (for learning tables)."""
    memo = fields.get(FIELD_TUPLE_KEY)
    if memo is not None:
        return memo
    return tuple(fields.get(name) for name in MATCH_FIELD_NAMES)
