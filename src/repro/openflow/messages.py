"""OpenFlow 1.0 message pack/unpack.

Every class round-trips: ``parse_message(msg.pack()) == msg``.  The ATTAIN
injector's protocol encoder/decoder (Section VI-B2) is a thin bridge over
this module.
"""

from __future__ import annotations

import struct
from typing import ClassVar, Dict, List, Optional, Type

from repro.netlib.addresses import MacAddress
from repro.openflow.actions import Action
from repro.openflow.constants import (
    OFP_HEADER_SIZE,
    OFP_NO_BUFFER,
    OFP_VERSION,
    ConfigFlags,
    ErrorType,
    FlowModCommand,
    FlowRemovedReason,
    MessageType,
    PacketInReason,
    Port,
    PortReason,
    StatsType,
)
from repro.openflow.match import MATCH_SIZE, Match

_HEADER = struct.Struct("!BBHI")
_XID_MAX = 0xFFFFFFFF
_xid_next = 1

#: Header type byte -> MessageType name, for header-only peeks.
_TYPE_NAME_BY_ID: Dict[int, str] = {int(t): t.name for t in MessageType}


class OpenFlowDecodeError(Exception):
    """Raised when bytes cannot be decoded as an OpenFlow 1.0 message."""


def next_xid() -> int:
    """Allocate a fresh transaction id in [1, 2^32 - 1].

    xid 0 is reserved for unsolicited messages, so the counter wraps back
    to 1 instead of masking (a masked ``count & 0xFFFFFFFF`` would emit 0
    once every 2^32 allocations).
    """
    global _xid_next
    xid = _xid_next
    _xid_next = 1 if xid >= _XID_MAX else xid + 1
    return xid


def reset_xid_counter() -> None:
    """Restart xid allocation at 1 (pooled-worker run isolation).

    A reused campaign worker must allocate the same xids a fresh process
    would, or message bytes — and therefore traces — depend on how many
    runs the worker executed before this one.
    """
    global _xid_next
    _xid_next = 1


def peek_xid(data: bytes) -> Optional[int]:
    """Header-only transaction-id peek — no body decode.

    Returns ``None`` when the buffer cannot plausibly hold an OpenFlow
    1.0 message (same acceptance rule as :func:`peek_message_type_name`).
    """
    if len(data) < OFP_HEADER_SIZE:
        return None
    version, _msg_type, length, xid = _HEADER.unpack_from(data)
    if version != OFP_VERSION or length < OFP_HEADER_SIZE:
        return None
    return xid


def peek_message_type_name(data: bytes) -> Optional[str]:
    """Header-only message-type peek — no body decode.

    Returns the :class:`MessageType` name from the 8-byte header, or
    ``None`` when the buffer cannot plausibly hold an OpenFlow 1.0 message
    (too short, wrong version, impossible length, unknown type).  This is an
    over-approximation of :func:`parse_message`: whenever a full parse would
    succeed, the peek returns the same type name.
    """
    if len(data) < OFP_HEADER_SIZE:
        return None
    version, msg_type, length, _xid = _HEADER.unpack_from(data)
    if version != OFP_VERSION or length < OFP_HEADER_SIZE:
        return None
    return _TYPE_NAME_BY_ID.get(msg_type)


class OpenFlowMessage:
    """Base class: 8-byte OpenFlow header + type-specific body."""

    message_type: ClassVar[MessageType]
    _registry: ClassVar[Dict[int, Type["OpenFlowMessage"]]] = {}

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        if hasattr(cls, "message_type"):
            OpenFlowMessage._registry[int(cls.message_type)] = cls

    def __init__(self, xid: Optional[int] = None) -> None:
        self.xid = next_xid() if xid is None else int(xid)

    def __setattr__(self, name: str, value) -> None:
        # Any direct field mutation invalidates the packed-bytes cache.
        # Nested mutation (match fields, action ports) cannot be seen here;
        # the message modifier calls invalidate_packed() explicitly.
        d = self.__dict__
        if "_packed" in d:
            del d["_packed"]
        d[name] = value

    def invalidate_packed(self) -> None:
        """Drop the cached wire bytes after a nested-field mutation."""
        self.__dict__.pop("_packed", None)

    # -- wire format --------------------------------------------------- #

    def pack_body(self) -> bytes:
        raise NotImplementedError

    @classmethod
    def unpack_body(cls, body: bytes, xid: int) -> "OpenFlowMessage":
        raise NotImplementedError

    def pack(self) -> bytes:
        packed = self.__dict__.get("_packed")
        if packed is None:
            body = self.pack_body()
            packed = (
                _HEADER.pack(
                    OFP_VERSION,
                    int(self.message_type),
                    OFP_HEADER_SIZE + len(body),
                    self.xid,
                )
                + body
            )
            self.__dict__["_packed"] = packed
        return packed

    def __len__(self) -> int:
        return OFP_HEADER_SIZE + len(self.pack_body())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, OpenFlowMessage):
            return self.pack() == other.pack()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.pack())

    def __repr__(self) -> str:
        return f"<{type(self).__name__} xid={self.xid}>"


def parse_message(data: bytes) -> OpenFlowMessage:
    """Decode one complete OpenFlow message from bytes."""
    if len(data) < OFP_HEADER_SIZE:
        raise OpenFlowDecodeError(f"message shorter than header: {len(data)} bytes")
    version, msg_type, length, xid = _HEADER.unpack_from(data)
    if version != OFP_VERSION:
        raise OpenFlowDecodeError(f"unsupported OpenFlow version 0x{version:02x}")
    if length < OFP_HEADER_SIZE or length > len(data):
        raise OpenFlowDecodeError(
            f"header length {length} inconsistent with buffer {len(data)}"
        )
    body = data[OFP_HEADER_SIZE:length]
    cls = OpenFlowMessage._registry.get(msg_type)
    if cls is None:
        raise OpenFlowDecodeError(f"unknown OpenFlow message type {msg_type}")
    try:
        return cls.unpack_body(body, xid)
    except (struct.error, ValueError) as exc:
        # ValueError covers out-of-range enum fields — what fuzzed
        # (FUZZMESSAGE) bytes typically produce.
        raise OpenFlowDecodeError(f"malformed {cls.__name__} body: {exc}") from exc


# ---------------------------------------------------------------------- #
# Symmetric / immutable messages
# ---------------------------------------------------------------------- #


class _EmptyBodyMessage(OpenFlowMessage):
    def pack_body(self) -> bytes:
        return b""

    @classmethod
    def unpack_body(cls, body: bytes, xid: int):
        return cls(xid=xid)


class Hello(_EmptyBodyMessage):
    message_type = MessageType.HELLO


class FeaturesRequest(_EmptyBodyMessage):
    message_type = MessageType.FEATURES_REQUEST


class GetConfigRequest(_EmptyBodyMessage):
    message_type = MessageType.GET_CONFIG_REQUEST


class BarrierRequest(_EmptyBodyMessage):
    message_type = MessageType.BARRIER_REQUEST


class BarrierReply(_EmptyBodyMessage):
    message_type = MessageType.BARRIER_REPLY


class _EchoMessage(OpenFlowMessage):
    def __init__(self, payload: bytes = b"", xid: Optional[int] = None) -> None:
        super().__init__(xid=xid)
        self.payload = bytes(payload)

    def pack_body(self) -> bytes:
        return self.payload

    @classmethod
    def unpack_body(cls, body: bytes, xid: int):
        return cls(payload=body, xid=xid)


class EchoRequest(_EchoMessage):
    message_type = MessageType.ECHO_REQUEST


class EchoReply(_EchoMessage):
    message_type = MessageType.ECHO_REPLY

    @classmethod
    def for_request(cls, request: EchoRequest) -> "EchoReply":
        return cls(payload=request.payload, xid=request.xid)


class ErrorMessage(OpenFlowMessage):
    """``OFPT_ERROR`` — error type/code plus offending-message prefix."""

    message_type = MessageType.ERROR

    def __init__(
        self,
        error_type: int,
        code: int,
        data: bytes = b"",
        xid: Optional[int] = None,
    ) -> None:
        super().__init__(xid=xid)
        self.error_type = int(error_type)
        self.code = int(code)
        self.data = bytes(data)

    def pack_body(self) -> bytes:
        return struct.pack("!HH", self.error_type, self.code) + self.data

    @classmethod
    def unpack_body(cls, body: bytes, xid: int) -> "ErrorMessage":
        error_type, code = struct.unpack_from("!HH", body)
        return cls(error_type, code, body[4:], xid=xid)

    def __repr__(self) -> str:
        try:
            kind = ErrorType(self.error_type).name
        except ValueError:
            kind = str(self.error_type)
        return f"<ErrorMessage {kind} code={self.code} xid={self.xid}>"


class VendorMessage(OpenFlowMessage):
    """``OFPT_VENDOR`` — opaque vendor extension."""

    message_type = MessageType.VENDOR

    def __init__(self, vendor: int, data: bytes = b"", xid: Optional[int] = None) -> None:
        super().__init__(xid=xid)
        self.vendor = int(vendor)
        self.data = bytes(data)

    def pack_body(self) -> bytes:
        return struct.pack("!I", self.vendor) + self.data

    @classmethod
    def unpack_body(cls, body: bytes, xid: int) -> "VendorMessage":
        (vendor,) = struct.unpack_from("!I", body)
        return cls(vendor, body[4:], xid=xid)


# ---------------------------------------------------------------------- #
# Switch configuration
# ---------------------------------------------------------------------- #


class _SwitchConfigMessage(OpenFlowMessage):
    def __init__(
        self,
        flags: int = ConfigFlags.FRAG_NORMAL,
        miss_send_len: int = 128,
        xid: Optional[int] = None,
    ) -> None:
        super().__init__(xid=xid)
        self.flags = int(flags)
        self.miss_send_len = int(miss_send_len)

    def pack_body(self) -> bytes:
        return struct.pack("!HH", self.flags, self.miss_send_len)

    @classmethod
    def unpack_body(cls, body: bytes, xid: int):
        flags, miss_send_len = struct.unpack_from("!HH", body)
        return cls(flags, miss_send_len, xid=xid)


class GetConfigReply(_SwitchConfigMessage):
    message_type = MessageType.GET_CONFIG_REPLY


class SetConfig(_SwitchConfigMessage):
    message_type = MessageType.SET_CONFIG


# ---------------------------------------------------------------------- #
# Features
# ---------------------------------------------------------------------- #

_PHY_PORT = struct.Struct("!H6s16sIIIIII")


class PhyPort:
    """``ofp_phy_port`` — a physical port description in FEATURES_REPLY."""

    __slots__ = ("port_no", "hw_addr", "name", "config", "state")

    def __init__(
        self,
        port_no: int,
        hw_addr: MacAddress,
        name: str,
        config: int = 0,
        state: int = 0,
    ) -> None:
        self.port_no = int(port_no)
        self.hw_addr = MacAddress(hw_addr)
        if len(name.encode("ascii")) > 15:
            raise ValueError(f"port name too long: {name!r}")
        self.name = name
        self.config = int(config)
        self.state = int(state)

    def pack(self) -> bytes:
        return _PHY_PORT.pack(
            self.port_no,
            self.hw_addr.packed,
            self.name.encode("ascii").ljust(16, b"\x00"),
            self.config,
            self.state,
            0,
            0,
            0,
            0,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "PhyPort":
        port_no, hw_addr, name, config, state, _c, _a, _s, _p = _PHY_PORT.unpack_from(data)
        return cls(
            port_no,
            MacAddress(hw_addr),
            name.rstrip(b"\x00").decode("ascii"),
            config,
            state,
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PhyPort):
            return self.pack() == other.pack()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.pack())

    def __repr__(self) -> str:
        return f"PhyPort({self.port_no}, {self.name!r})"


class FeaturesReply(OpenFlowMessage):
    """``OFPT_FEATURES_REPLY`` — datapath id, capabilities, and ports."""

    message_type = MessageType.FEATURES_REPLY

    def __init__(
        self,
        datapath_id: int,
        n_buffers: int = 256,
        n_tables: int = 1,
        capabilities: int = 0,
        actions: int = 0xFFF,
        ports: Optional[List[PhyPort]] = None,
        xid: Optional[int] = None,
    ) -> None:
        super().__init__(xid=xid)
        self.datapath_id = int(datapath_id)
        self.n_buffers = int(n_buffers)
        self.n_tables = int(n_tables)
        self.capabilities = int(capabilities)
        self.actions = int(actions)
        self.ports = list(ports or [])

    def pack_body(self) -> bytes:
        fixed = struct.pack(
            "!QIB3xII",
            self.datapath_id,
            self.n_buffers,
            self.n_tables,
            self.capabilities,
            self.actions,
        )
        return fixed + b"".join(port.pack() for port in self.ports)

    @classmethod
    def unpack_body(cls, body: bytes, xid: int) -> "FeaturesReply":
        datapath_id, n_buffers, n_tables, capabilities, actions = struct.unpack_from(
            "!QIB3xII", body
        )
        ports = []
        offset = struct.calcsize("!QIB3xII")
        while offset + _PHY_PORT.size <= len(body):
            ports.append(PhyPort.unpack(body[offset : offset + _PHY_PORT.size]))
            offset += _PHY_PORT.size
        return cls(datapath_id, n_buffers, n_tables, capabilities, actions, ports, xid=xid)

    def __repr__(self) -> str:
        return (
            f"<FeaturesReply dpid=0x{self.datapath_id:x} ports={len(self.ports)} "
            f"xid={self.xid}>"
        )


# ---------------------------------------------------------------------- #
# Packet in / out
# ---------------------------------------------------------------------- #


class PacketIn(OpenFlowMessage):
    """``OFPT_PACKET_IN`` — a data-plane packet sent to the controller."""

    message_type = MessageType.PACKET_IN

    def __init__(
        self,
        buffer_id: int,
        total_len: int,
        in_port: int,
        reason: int,
        data: bytes = b"",
        xid: Optional[int] = None,
    ) -> None:
        super().__init__(xid=xid)
        self.buffer_id = int(buffer_id)
        self.total_len = int(total_len)
        self.in_port = int(in_port)
        self.reason = PacketInReason(reason)
        self.data = bytes(data)

    @classmethod
    def no_match(cls, buffer_id: int, in_port: int, data: bytes) -> "PacketIn":
        """Build the flow-table-miss PACKET_IN the attacks key on."""
        return cls(buffer_id, len(data), in_port, PacketInReason.NO_MATCH, data)

    def pack_body(self) -> bytes:
        return (
            struct.pack("!IHHBx", self.buffer_id, self.total_len, self.in_port, int(self.reason))
            + self.data
        )

    @classmethod
    def unpack_body(cls, body: bytes, xid: int) -> "PacketIn":
        buffer_id, total_len, in_port, reason = struct.unpack_from("!IHHBx", body)
        return cls(buffer_id, total_len, in_port, reason, body[10:], xid=xid)

    def __repr__(self) -> str:
        return (
            f"<PacketIn in_port={self.in_port} reason={self.reason.name} "
            f"len={self.total_len} buffer={self.buffer_id:#x} xid={self.xid}>"
        )


class PacketOut(OpenFlowMessage):
    """``OFPT_PACKET_OUT`` — controller-directed packet transmission."""

    message_type = MessageType.PACKET_OUT

    def __init__(
        self,
        buffer_id: int = OFP_NO_BUFFER,
        in_port: int = Port.NONE,
        actions: Optional[List[Action]] = None,
        data: bytes = b"",
        xid: Optional[int] = None,
    ) -> None:
        super().__init__(xid=xid)
        self.buffer_id = int(buffer_id)
        self.in_port = int(in_port)
        self.actions = list(actions or [])
        self.data = bytes(data)

    def pack_body(self) -> bytes:
        packed_actions = Action.pack_list(self.actions)
        return (
            struct.pack("!IHH", self.buffer_id, self.in_port, len(packed_actions))
            + packed_actions
            + self.data
        )

    @classmethod
    def unpack_body(cls, body: bytes, xid: int) -> "PacketOut":
        buffer_id, in_port, actions_len = struct.unpack_from("!IHH", body)
        actions_end = 8 + actions_len
        if actions_end > len(body):
            raise OpenFlowDecodeError("PACKET_OUT actions overflow body")
        actions = Action.unpack_list(body[8:actions_end])
        return cls(buffer_id, in_port, actions, body[actions_end:], xid=xid)

    def __repr__(self) -> str:
        return (
            f"<PacketOut in_port={self.in_port} actions={self.actions} "
            f"buffer={self.buffer_id:#x} xid={self.xid}>"
        )


# ---------------------------------------------------------------------- #
# Flow mod / flow removed
# ---------------------------------------------------------------------- #


class FlowMod(OpenFlowMessage):
    """``OFPT_FLOW_MOD`` — the message the suppression attack drops."""

    message_type = MessageType.FLOW_MOD

    def __init__(
        self,
        match: Match,
        command: int = FlowModCommand.ADD,
        cookie: int = 0,
        idle_timeout: int = 0,
        hard_timeout: int = 0,
        priority: int = 0x8000,
        buffer_id: int = OFP_NO_BUFFER,
        out_port: int = Port.NONE,
        flags: int = 0,
        actions: Optional[List[Action]] = None,
        xid: Optional[int] = None,
    ) -> None:
        super().__init__(xid=xid)
        self.match = match
        self.command = FlowModCommand(command)
        self.cookie = int(cookie)
        self.idle_timeout = int(idle_timeout)
        self.hard_timeout = int(hard_timeout)
        self.priority = int(priority)
        self.buffer_id = int(buffer_id)
        self.out_port = int(out_port)
        self.flags = int(flags)
        self.actions = list(actions or [])

    def pack_body(self) -> bytes:
        return (
            self.match.pack()
            + struct.pack(
                "!QHHHHIHH",
                self.cookie,
                int(self.command),
                self.idle_timeout,
                self.hard_timeout,
                self.priority,
                self.buffer_id,
                self.out_port,
                self.flags,
            )
            + Action.pack_list(self.actions)
        )

    @classmethod
    def unpack_body(cls, body: bytes, xid: int) -> "FlowMod":
        match = Match.unpack(body[:MATCH_SIZE])
        (
            cookie,
            command,
            idle_timeout,
            hard_timeout,
            priority,
            buffer_id,
            out_port,
            flags,
        ) = struct.unpack_from("!QHHHHIHH", body, MATCH_SIZE)
        actions = Action.unpack_list(body[MATCH_SIZE + 24 :])
        return cls(
            match,
            command,
            cookie,
            idle_timeout,
            hard_timeout,
            priority,
            buffer_id,
            out_port,
            flags,
            actions,
            xid=xid,
        )

    def __repr__(self) -> str:
        return (
            f"<FlowMod {self.command.name} {self.match!r} prio={self.priority} "
            f"idle={self.idle_timeout} hard={self.hard_timeout} xid={self.xid}>"
        )


class FlowRemoved(OpenFlowMessage):
    """``OFPT_FLOW_REMOVED`` — flow expiry notification."""

    message_type = MessageType.FLOW_REMOVED

    def __init__(
        self,
        match: Match,
        cookie: int,
        priority: int,
        reason: int,
        duration_sec: int = 0,
        duration_nsec: int = 0,
        idle_timeout: int = 0,
        packet_count: int = 0,
        byte_count: int = 0,
        xid: Optional[int] = None,
    ) -> None:
        super().__init__(xid=xid)
        self.match = match
        self.cookie = int(cookie)
        self.priority = int(priority)
        self.reason = FlowRemovedReason(reason)
        self.duration_sec = int(duration_sec)
        self.duration_nsec = int(duration_nsec)
        self.idle_timeout = int(idle_timeout)
        self.packet_count = int(packet_count)
        self.byte_count = int(byte_count)

    def pack_body(self) -> bytes:
        return self.match.pack() + struct.pack(
            "!QHBxIIH2xQQ",
            self.cookie,
            self.priority,
            int(self.reason),
            self.duration_sec,
            self.duration_nsec,
            self.idle_timeout,
            self.packet_count,
            self.byte_count,
        )

    @classmethod
    def unpack_body(cls, body: bytes, xid: int) -> "FlowRemoved":
        match = Match.unpack(body[:MATCH_SIZE])
        (
            cookie,
            priority,
            reason,
            duration_sec,
            duration_nsec,
            idle_timeout,
            packet_count,
            byte_count,
        ) = struct.unpack_from("!QHBxIIH2xQQ", body, MATCH_SIZE)
        return cls(
            match,
            cookie,
            priority,
            reason,
            duration_sec,
            duration_nsec,
            idle_timeout,
            packet_count,
            byte_count,
            xid=xid,
        )

    def __repr__(self) -> str:
        return f"<FlowRemoved {self.reason.name} {self.match!r} xid={self.xid}>"


# ---------------------------------------------------------------------- #
# Port status
# ---------------------------------------------------------------------- #


class PortStatus(OpenFlowMessage):
    """``OFPT_PORT_STATUS`` — asynchronous port change notification."""

    message_type = MessageType.PORT_STATUS

    def __init__(self, reason: int, port: PhyPort, xid: Optional[int] = None) -> None:
        super().__init__(xid=xid)
        self.reason = PortReason(reason)
        self.port = port

    def pack_body(self) -> bytes:
        return struct.pack("!B7x", int(self.reason)) + self.port.pack()

    @classmethod
    def unpack_body(cls, body: bytes, xid: int) -> "PortStatus":
        (reason,) = struct.unpack_from("!B7x", body)
        port = PhyPort.unpack(body[8:])
        return cls(reason, port, xid=xid)

    def __repr__(self) -> str:
        return f"<PortStatus {self.reason.name} {self.port!r} xid={self.xid}>"


# ---------------------------------------------------------------------- #
# Statistics
# ---------------------------------------------------------------------- #


class StatsRequest(OpenFlowMessage):
    """``OFPT_STATS_REQUEST`` with an opaque body (DESC/FLOW/PORT...)."""

    message_type = MessageType.STATS_REQUEST

    def __init__(
        self,
        stats_type: int,
        body: bytes = b"",
        flags: int = 0,
        xid: Optional[int] = None,
    ) -> None:
        super().__init__(xid=xid)
        self.stats_type = StatsType(stats_type)
        self.flags = int(flags)
        self.body = bytes(body)

    def pack_body(self) -> bytes:
        return struct.pack("!HH", int(self.stats_type), self.flags) + self.body

    @classmethod
    def unpack_body(cls, body: bytes, xid: int) -> "StatsRequest":
        stats_type, flags = struct.unpack_from("!HH", body)
        return cls(stats_type, body[4:], flags, xid=xid)

    def __repr__(self) -> str:
        return f"<StatsRequest {self.stats_type.name} xid={self.xid}>"


class StatsReply(OpenFlowMessage):
    """``OFPT_STATS_REPLY`` with an opaque body."""

    message_type = MessageType.STATS_REPLY

    def __init__(
        self,
        stats_type: int,
        body: bytes = b"",
        flags: int = 0,
        xid: Optional[int] = None,
    ) -> None:
        super().__init__(xid=xid)
        self.stats_type = StatsType(stats_type)
        self.flags = int(flags)
        self.body = bytes(body)

    def pack_body(self) -> bytes:
        return struct.pack("!HH", int(self.stats_type), self.flags) + self.body

    @classmethod
    def unpack_body(cls, body: bytes, xid: int) -> "StatsReply":
        stats_type, flags = struct.unpack_from("!HH", body)
        return cls(stats_type, body[4:], flags, xid=xid)

    def __repr__(self) -> str:
        return f"<StatsReply {self.stats_type.name} xid={self.xid}>"
