"""OpenFlow 1.0 protocol constants (openflow.h, wire version 0x01)."""

from __future__ import annotations

from enum import IntEnum, IntFlag

OFP_VERSION = 0x01
OFP_HEADER_SIZE = 8
OFP_MAX_PACKET_IN_BYTES = 0xFFFF
OFP_NO_BUFFER = 0xFFFFFFFF
OFP_DEFAULT_PRIORITY = 0x8000
OFP_FLOW_PERMANENT = 0
OFP_MAX_PORT_NAME_LEN = 16


class MessageType(IntEnum):
    """``ofp_type`` — the OpenFlow 1.0 message types."""

    HELLO = 0
    ERROR = 1
    ECHO_REQUEST = 2
    ECHO_REPLY = 3
    VENDOR = 4
    FEATURES_REQUEST = 5
    FEATURES_REPLY = 6
    GET_CONFIG_REQUEST = 7
    GET_CONFIG_REPLY = 8
    SET_CONFIG = 9
    PACKET_IN = 10
    FLOW_REMOVED = 11
    PORT_STATUS = 12
    PACKET_OUT = 13
    FLOW_MOD = 14
    PORT_MOD = 15
    STATS_REQUEST = 16
    STATS_REPLY = 17
    BARRIER_REQUEST = 18
    BARRIER_REPLY = 19
    QUEUE_GET_CONFIG_REQUEST = 20
    QUEUE_GET_CONFIG_REPLY = 21


class Port(IntEnum):
    """``ofp_port`` — reserved port numbers."""

    MAX = 0xFF00
    IN_PORT = 0xFFF8
    TABLE = 0xFFF9
    NORMAL = 0xFFFA
    FLOOD = 0xFFFB
    ALL = 0xFFFC
    CONTROLLER = 0xFFFD
    LOCAL = 0xFFFE
    NONE = 0xFFFF


class ActionType(IntEnum):
    """``ofp_action_type``."""

    OUTPUT = 0
    SET_VLAN_VID = 1
    SET_VLAN_PCP = 2
    STRIP_VLAN = 3
    SET_DL_SRC = 4
    SET_DL_DST = 5
    SET_NW_SRC = 6
    SET_NW_DST = 7
    SET_NW_TOS = 8
    SET_TP_SRC = 9
    SET_TP_DST = 10
    ENQUEUE = 11


class FlowModCommand(IntEnum):
    """``ofp_flow_mod_command``."""

    ADD = 0
    MODIFY = 1
    MODIFY_STRICT = 2
    DELETE = 3
    DELETE_STRICT = 4


class FlowModFlags(IntFlag):
    """``ofp_flow_mod_flags``."""

    SEND_FLOW_REM = 1 << 0
    CHECK_OVERLAP = 1 << 1
    EMERG = 1 << 2


class PacketInReason(IntEnum):
    """``ofp_packet_in_reason``."""

    NO_MATCH = 0
    ACTION = 1


class FlowRemovedReason(IntEnum):
    """``ofp_flow_removed_reason``."""

    IDLE_TIMEOUT = 0
    HARD_TIMEOUT = 1
    DELETE = 2


class PortReason(IntEnum):
    """``ofp_port_reason`` for PORT_STATUS."""

    ADD = 0
    DELETE = 1
    MODIFY = 2


class ErrorType(IntEnum):
    """``ofp_error_type``."""

    HELLO_FAILED = 0
    BAD_REQUEST = 1
    BAD_ACTION = 2
    FLOW_MOD_FAILED = 3
    PORT_MOD_FAILED = 4
    QUEUE_OP_FAILED = 5


class BadRequestCode(IntEnum):
    """``ofp_bad_request_code``."""

    BAD_VERSION = 0
    BAD_TYPE = 1
    BAD_STAT = 2
    BAD_VENDOR = 3
    BAD_SUBTYPE = 4
    EPERM = 5
    BAD_LEN = 6
    BUFFER_EMPTY = 7
    BUFFER_UNKNOWN = 8


class FlowModFailedCode(IntEnum):
    """``ofp_flow_mod_failed_code``."""

    ALL_TABLES_FULL = 0
    OVERLAP = 1
    EPERM = 2
    BAD_EMERG_TIMEOUT = 3
    BAD_COMMAND = 4
    UNSUPPORTED = 5


class ConfigFlags(IntEnum):
    """``ofp_config_flags`` fragment handling."""

    FRAG_NORMAL = 0
    FRAG_DROP = 1
    FRAG_REASM = 2


class StatsType(IntEnum):
    """``ofp_stats_types``."""

    DESC = 0
    FLOW = 1
    AGGREGATE = 2
    TABLE = 3
    PORT = 4
    QUEUE = 5
    VENDOR = 0xFFFF


class Capabilities(IntFlag):
    """``ofp_capabilities`` advertised in FEATURES_REPLY."""

    FLOW_STATS = 1 << 0
    TABLE_STATS = 1 << 1
    PORT_STATS = 1 << 2
    STP = 1 << 3
    RESERVED = 1 << 4
    IP_REASM = 1 << 5
    QUEUE_STATS = 1 << 6
    ARP_MATCH_IP = 1 << 7


class PortConfig(IntFlag):
    """``ofp_port_config``."""

    PORT_DOWN = 1 << 0
    NO_STP = 1 << 1
    NO_RECV = 1 << 2
    NO_RECV_STP = 1 << 3
    NO_FLOOD = 1 << 4
    NO_FWD = 1 << 5
    NO_PACKET_IN = 1 << 6


class PortState(IntFlag):
    """``ofp_port_state``."""

    LINK_DOWN = 1 << 0


class Wildcards(IntFlag):
    """``ofp_flow_wildcards`` — which match fields are ignored.

    ``NW_SRC``/``NW_DST`` are 6-bit CIDR-style counts embedded in the flags
    word; helpers on :class:`repro.openflow.match.Match` interpret them.
    """

    IN_PORT = 1 << 0
    DL_VLAN = 1 << 1
    DL_SRC = 1 << 2
    DL_DST = 1 << 3
    DL_TYPE = 1 << 4
    NW_PROTO = 1 << 5
    TP_SRC = 1 << 6
    TP_DST = 1 << 7
    DL_VLAN_PCP = 1 << 20
    NW_TOS = 1 << 21


NW_SRC_SHIFT = 8
NW_SRC_BITS = 6
NW_SRC_MASK = ((1 << NW_SRC_BITS) - 1) << NW_SRC_SHIFT
NW_SRC_ALL = 32 << NW_SRC_SHIFT

NW_DST_SHIFT = 14
NW_DST_BITS = 6
NW_DST_MASK = ((1 << NW_DST_BITS) - 1) << NW_DST_SHIFT
NW_DST_ALL = 32 << NW_DST_SHIFT

OFPFW_ALL = ((1 << 22) - 1)
