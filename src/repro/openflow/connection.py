"""Stream framing for OpenFlow connections.

Control-plane connections are byte streams (TCP in the paper's testbed);
the framer accumulates bytes and yields complete OpenFlow messages using
the length field in each header, exactly as a socket-based implementation
would.  The injector's proxy and both endpoint stacks share this class.
"""

from __future__ import annotations

import struct
from typing import List

from repro.openflow.constants import OFP_HEADER_SIZE
from repro.openflow.messages import OpenFlowDecodeError, OpenFlowMessage, parse_message


class MessageFramer:
    """Reassembles OpenFlow messages from an in-order byte stream."""

    def __init__(self, max_buffer: int = 1 << 22) -> None:
        self._buffer = bytearray()
        self._max_buffer = max_buffer
        self.messages_decoded = 0
        self.bytes_received = 0

    def feed(self, data: bytes) -> List[OpenFlowMessage]:
        """Append stream bytes; return every now-complete message in order."""
        return [parse_message(frame) for frame in self.feed_frames(data)]

    def feed_frames(self, data: bytes) -> List[bytes]:
        """Append stream bytes; return every now-complete raw frame in order.

        This is the injector's zero-copy fast lane: frames are delimited
        using only the length field in each 8-byte header, so interposed
        messages can be forwarded byte-identical without ever decoding (or
        re-encoding) the body.  Callers that need the decoded message use
        :func:`parse_message` lazily.
        """
        self.bytes_received += len(data)
        self._buffer.extend(data)
        if len(self._buffer) > self._max_buffer:
            raise OpenFlowDecodeError(
                f"framer buffer overflow ({len(self._buffer)} bytes); "
                "peer is sending garbage or an unterminated message"
            )
        frames: List[bytes] = []
        while True:
            frame = self._try_extract_frame()
            if frame is None:
                break
            frames.append(frame)
        return frames

    def _try_extract_frame(self):
        if len(self._buffer) < OFP_HEADER_SIZE:
            return None
        (length,) = struct.unpack_from("!H", self._buffer, 2)
        if length < OFP_HEADER_SIZE:
            raise OpenFlowDecodeError(f"header claims impossible length {length}")
        if len(self._buffer) < length:
            return None
        frame = bytes(self._buffer[:length])
        del self._buffer[:length]
        self.messages_decoded += 1
        return frame

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)

    def reset(self) -> None:
        """Discard buffered bytes (connection teardown)."""
        self._buffer.clear()
