"""OpenFlow 1.0 protocol library.

A from-scratch replacement for the Loxi library the paper's injector used:
byte-accurate pack/unpack for the OpenFlow 1.0 (wire version 0x01) message
types that controllers and switches exchange in the case study.  The ATTAIN
runtime injector decodes these bytes to evaluate conditional expressions
over message properties and re-encodes them after modification.
"""

from repro.openflow.actions import (
    Action,
    OutputAction,
    SetDlDstAction,
    SetDlSrcAction,
    SetNwDstAction,
    SetNwSrcAction,
    StripVlanAction,
)
from repro.openflow.connection import MessageFramer
from repro.openflow.constants import (
    OFP_VERSION,
    ConfigFlags,
    ErrorType,
    FlowModCommand,
    FlowRemovedReason,
    MessageType,
    PacketInReason,
    Port,
    PortReason,
    StatsType,
    Wildcards,
)
from repro.openflow.match import Match
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    ErrorMessage,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowRemoved,
    GetConfigReply,
    GetConfigRequest,
    Hello,
    OpenFlowDecodeError,
    OpenFlowMessage,
    PacketIn,
    PacketOut,
    PhyPort,
    PortStatus,
    SetConfig,
    StatsReply,
    StatsRequest,
    parse_message,
)

__all__ = [
    "Action",
    "BarrierReply",
    "BarrierRequest",
    "ConfigFlags",
    "EchoReply",
    "EchoRequest",
    "ErrorMessage",
    "ErrorType",
    "FeaturesReply",
    "FeaturesRequest",
    "FlowMod",
    "FlowModCommand",
    "FlowRemoved",
    "FlowRemovedReason",
    "GetConfigReply",
    "GetConfigRequest",
    "Hello",
    "Match",
    "MessageFramer",
    "MessageType",
    "OFP_VERSION",
    "OpenFlowDecodeError",
    "OpenFlowMessage",
    "OutputAction",
    "PacketIn",
    "PacketInReason",
    "PacketOut",
    "PhyPort",
    "Port",
    "PortReason",
    "PortStatus",
    "SetConfig",
    "SetDlDstAction",
    "SetDlSrcAction",
    "SetNwDstAction",
    "SetNwSrcAction",
    "StatsReply",
    "StatsRequest",
    "StatsType",
    "StripVlanAction",
    "Wildcards",
    "parse_message",
]
