"""OpenFlow 1.0 flow actions (``ofp_action_*``)."""

from __future__ import annotations

import struct
from typing import List

from repro.netlib.addresses import Ipv4Address, MacAddress
from repro.openflow.constants import ActionType


class ActionDecodeError(Exception):
    """Raised when an action TLV cannot be decoded."""


class Action:
    """Base class for flow actions; subclasses register by ``ActionType``."""

    action_type: ActionType
    _registry: dict = {}

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        if hasattr(cls, "action_type"):
            Action._registry[int(cls.action_type)] = cls

    def pack_body(self) -> bytes:
        raise NotImplementedError

    @classmethod
    def unpack_body(cls, body: bytes) -> "Action":
        raise NotImplementedError

    def pack(self) -> bytes:
        body = self.pack_body()
        length = 4 + len(body)
        if length % 8:
            raise ActionDecodeError(
                f"action length must be a multiple of 8, got {length}"
            )
        return struct.pack("!HH", int(self.action_type), length) + body

    @staticmethod
    def unpack_list(data: bytes) -> List["Action"]:
        """Decode a contiguous action list (as found in FLOW_MOD/PACKET_OUT)."""
        actions: List[Action] = []
        offset = 0
        while offset < len(data):
            if offset + 4 > len(data):
                raise ActionDecodeError("truncated action header")
            action_type, length = struct.unpack_from("!HH", data, offset)
            if length < 8 or length % 8 or offset + length > len(data):
                raise ActionDecodeError(f"bad action length {length}")
            body = data[offset + 4 : offset + length]
            cls = Action._registry.get(action_type)
            if cls is None:
                actions.append(UnknownAction(action_type, body))
            else:
                actions.append(cls.unpack_body(body))
            offset += length
        return actions

    @staticmethod
    def pack_list(actions: List["Action"]) -> bytes:
        return b"".join(action.pack() for action in actions)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Action):
            return self.pack() == other.pack()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.pack())


class OutputAction(Action):
    """Send the packet out a port (``ofp_action_output``)."""

    action_type = ActionType.OUTPUT

    def __init__(self, port: int, max_len: int = 0xFFFF) -> None:
        self.port = int(port)
        self.max_len = int(max_len)

    def pack_body(self) -> bytes:
        return struct.pack("!HH", self.port, self.max_len)

    @classmethod
    def unpack_body(cls, body: bytes) -> "OutputAction":
        if len(body) != 4:
            raise ActionDecodeError(f"bad OUTPUT body length {len(body)}")
        port, max_len = struct.unpack("!HH", body)
        return cls(port, max_len)

    def __repr__(self) -> str:
        return f"OutputAction(port={self.port})"


class StripVlanAction(Action):
    """Strip the VLAN tag (``ofp_action_header`` only)."""

    action_type = ActionType.STRIP_VLAN

    def pack_body(self) -> bytes:
        return b"\x00" * 4

    @classmethod
    def unpack_body(cls, body: bytes) -> "StripVlanAction":
        return cls()

    def __repr__(self) -> str:
        return "StripVlanAction()"


class _SetDlAction(Action):
    """Common base for dl_src/dl_dst rewrites (``ofp_action_dl_addr``)."""

    def __init__(self, address: MacAddress) -> None:
        self.address = MacAddress(address)

    def pack_body(self) -> bytes:
        return self.address.packed + b"\x00" * 6

    @classmethod
    def unpack_body(cls, body: bytes):
        if len(body) != 12:
            raise ActionDecodeError(f"bad SET_DL body length {len(body)}")
        return cls(MacAddress(body[:6]))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.address})"


class SetDlSrcAction(_SetDlAction):
    action_type = ActionType.SET_DL_SRC


class SetDlDstAction(_SetDlAction):
    action_type = ActionType.SET_DL_DST


class _SetNwAction(Action):
    """Common base for nw_src/nw_dst rewrites (``ofp_action_nw_addr``)."""

    def __init__(self, address: Ipv4Address) -> None:
        self.address = Ipv4Address(address)

    def pack_body(self) -> bytes:
        return self.address.packed

    @classmethod
    def unpack_body(cls, body: bytes):
        if len(body) != 4:
            raise ActionDecodeError(f"bad SET_NW body length {len(body)}")
        return cls(Ipv4Address(body))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.address})"


class SetNwSrcAction(_SetNwAction):
    action_type = ActionType.SET_NW_SRC


class SetNwDstAction(_SetNwAction):
    action_type = ActionType.SET_NW_DST


class _SetTpAction(Action):
    """Common base for tp_src/tp_dst rewrites (``ofp_action_tp_port``)."""

    def __init__(self, port: int) -> None:
        if not 0 <= port <= 0xFFFF:
            raise ValueError(f"transport port out of range: {port!r}")
        self.port = port

    def pack_body(self) -> bytes:
        return struct.pack("!H", self.port) + b"\x00" * 2

    @classmethod
    def unpack_body(cls, body: bytes):
        if len(body) != 4:
            raise ActionDecodeError(f"bad SET_TP body length {len(body)}")
        (port,) = struct.unpack("!H", body[:2])
        return cls(port)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.port})"


class SetTpSrcAction(_SetTpAction):
    action_type = ActionType.SET_TP_SRC


class SetTpDstAction(_SetTpAction):
    action_type = ActionType.SET_TP_DST


class UnknownAction(Action):
    """An action type this library does not interpret; round-trips as bytes."""

    def __init__(self, raw_type: int, body: bytes) -> None:
        self.raw_type = raw_type
        self.body = bytes(body)

    def pack(self) -> bytes:
        return struct.pack("!HH", self.raw_type, 4 + len(self.body)) + self.body

    def pack_body(self) -> bytes:  # pragma: no cover - pack() overridden
        return self.body

    def __repr__(self) -> str:
        return f"UnknownAction(type={self.raw_type}, len={len(self.body)})"


def output_actions(*ports: int) -> List[Action]:
    """Convenience constructor for plain forwarding action lists."""
    return [OutputAction(port) for port in ports]
