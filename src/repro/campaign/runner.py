"""The campaign runner: a persistent pool of reusable worker processes.

Workers are long-lived: each executes run descriptors one after another
off a duplex pipe, resetting per-run global state (sequence counters,
frame caches) between cells so a run behaves bit-identically to one in a
fresh process.  Amortizing the interpreter start + import cost over many
runs is where campaign wall-clock goes on wide matrices — the summary's
``processes_spawned`` should come out well below the number of runs.

Fault semantics are unchanged from the process-per-run model:

* a run exceeding the wall-clock timeout gets its worker terminated (the
  only way to preempt a hung simulation) and a fresh worker is spawned
  on demand;
* a worker that dies without reporting (hard crash, kill) fails only the
  run it was executing, which is retried up to ``retries`` extra
  attempts — on a replacement worker;
* the parent is the only writer to the result store.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.campaign.spec import CampaignSpec, RunDescriptor
from repro.campaign.store import ResultStore, make_record

#: How often the scheduler polls its active workers (seconds).
_POLL_INTERVAL_S = 0.01

#: How long the parent waits for a worker to exit after a shutdown
#: request before terminating it.
_SHUTDOWN_GRACE_S = 2.0


def reset_run_state() -> None:
    """Reset process-global counters so repeated runs stay deterministic.

    A fresh process starts every itertools sequence at its seed value;
    a reused worker (or any caller running experiments back to back in
    one process) must do the same before each run or frame contents
    (ICMP identifiers, ephemeral ports, OpenFlow xids, event tie-breaks)
    would depend on how many runs the process executed before this one.

    Per-object statistics (e.g. ``FlowTable`` occupancy peaks and
    eviction counters) are NOT process-global: every run builds fresh
    networks, so they cannot leak between cells.  A harness pooling a
    network across runs must additionally call each table's
    ``reset_stats()``.
    """
    import itertools

    from repro.core.lang.properties import InterposedMessage
    from repro.dataplane.flowtable import FlowEntry
    from repro.dataplane.host import Host
    from repro.netlib import fastframe
    from repro.openflow import messages as of_messages
    from repro.sim.events import Event

    Event._seq_counter = itertools.count()
    FlowEntry._order = itertools.count()
    Host._icmp_id = itertools.count(1)
    Host._ephemeral = itertools.count(49152)
    InterposedMessage._id_counter = itertools.count(1)
    of_messages.reset_xid_counter()
    fastframe.clear_pool()
    fastframe.reset_counters()


#: Backwards-compatible private alias (pre-existing callers/tests).
_reset_run_state = reset_run_state


def _worker_loop(conn, peer_queues=None, peer_index=None,
                 mesh_matrix=None) -> None:
    """Persistent worker: execute descriptors until told to shut down.

    Two task shapes share the pipe: legacy ``(descriptor, attempt,
    trace_enabled)`` tuples run one campaign cell to completion, and
    ``{"op": "shard_*"}`` dicts drive a slice of a sharded simulation
    (see :mod:`repro.sim.shard`).  ``mesh_matrix`` (inherited pipe fds,
    fork start method only) gives shard workers a direct peer-to-peer
    fast lane for the SPMD barrier loop; ``peer_queues`` (one queue per
    pool worker, this worker reading ``peer_index``'s) is the fallback
    exchange for epoch-stepped execution without a mesh.
    """
    from repro.campaign.executors import execute_descriptor

    runs_executed = 0
    shard_session = None
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            break
        if task is None:
            break
        if isinstance(task, dict):
            if shard_session is None:
                from repro.sim.shard import ShardWorkerSession

                shard_session = ShardWorkerSession(peer_queues, peer_index,
                                                   mesh_matrix)
            try:
                reply = shard_session.handle(task)
            except BaseException:
                reply = {"status": "error",
                         "error": traceback.format_exc(limit=8)}
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                break
            continue
        descriptor, attempt, trace_enabled = task
        _reset_run_state()
        tracer = None
        if trace_enabled:
            from repro.obs import TraceCollector

            tracer = TraceCollector()
        try:
            metrics = execute_descriptor(descriptor, attempt=attempt,
                                         tracer=tracer)
            runs_executed += 1
            outcome = {"status": "ok", "metrics": metrics,
                       "worker_runs": runs_executed}
            if tracer is not None:
                outcome["trace_jsonl"] = tracer.to_jsonl()
                outcome["trace_events"] = tracer.events_total
        except BaseException:
            runs_executed += 1
            outcome = {"status": "error",
                       "error": traceback.format_exc(limit=8),
                       "worker_runs": runs_executed}
        try:
            conn.send(outcome)
        except (BrokenPipeError, OSError):
            break
    conn.close()


@dataclass
class _Task:
    descriptor: RunDescriptor
    attempt: int
    last_error: Optional[str] = None


@dataclass
class _WorkerSlot:
    """One pooled worker process and the task it is executing (if any)."""

    process: multiprocessing.Process
    conn: object
    runs_done: int = 0
    task: Optional[_Task] = None
    started_at: float = 0.0
    deadline: float = 0.0

    @property
    def busy(self) -> bool:
        return self.task is not None


@dataclass
class CampaignSummary:
    """What one ``run_campaign`` invocation did."""

    campaign: str
    total: int
    skipped: int = 0
    executed: int = 0
    succeeded: int = 0
    failed: int = 0
    retries_used: int = 0
    duration_s: float = 0.0
    failed_run_ids: List[str] = field(default_factory=list)
    processes_spawned: int = 0
    worker_runs: Dict[str, int] = field(default_factory=dict)
    lint_rejected: int = 0

    @property
    def complete(self) -> bool:
        return self.failed == 0

    def render(self) -> str:
        rejected = (
            f", {self.lint_rejected} rejected by lint pre-flight"
            if self.lint_rejected else ""
        )
        return (
            f"campaign {self.campaign}: {self.total} runs — "
            f"{self.skipped} already complete, {self.executed} executed "
            f"({self.succeeded} ok, {self.failed} failed, "
            f"{self.retries_used} retries{rejected}) in {self.duration_s:.1f}s "
            f"across {self.processes_spawned} worker process(es)"
        )


class CampaignRunner:
    """Schedules a spec's pending runs over a persistent process pool."""

    def __init__(
        self,
        spec: CampaignSpec,
        store: ResultStore,
        workers: int = 1,
        timeout_s: Optional[float] = None,
        retries: Optional[int] = None,
        progress: Optional[Callable[[str], None]] = None,
        mp_context: Optional[str] = None,
        trace: bool = False,
        preflight: bool = True,
    ) -> None:
        self.spec = spec
        self.store = store
        self.workers = max(1, int(workers))
        self.timeout_s = float(timeout_s if timeout_s is not None
                               else spec.timeout_s)
        self.retries = int(retries if retries is not None else spec.retries)
        self.trace = bool(trace)
        self.preflight = bool(preflight)
        self._progress = progress or (lambda line: None)
        self._ctx = multiprocessing.get_context(mp_context)

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    def run(self) -> CampaignSummary:
        started = time.time()
        descriptors = self.spec.expand()
        completed = self.store.completed_ids()
        pending = [d for d in descriptors if d.run_id not in completed]
        summary = CampaignSummary(
            campaign=self.spec.name,
            total=len(descriptors),
            skipped=len(descriptors) - len(pending),
        )
        if summary.skipped:
            self._progress(
                f"resume: skipping {summary.skipped} completed run(s)")
        if self.preflight and pending:
            pending = self._preflight(pending, summary)
        queue: List[_Task] = [
            _Task(d, attempt=1) for d in reversed(pending)
        ]  # pop() preserves matrix order
        slots: List[_WorkerSlot] = []
        try:
            while queue or any(slot.busy for slot in slots):
                self._assign(queue, slots, summary)
                time.sleep(_POLL_INTERVAL_S)
                for slot in list(slots):
                    outcome = self._poll(slot)
                    if outcome is None:
                        continue
                    if not slot.process.is_alive():
                        slots.remove(slot)  # replaced lazily by _assign
                    retry = self._settle(slot, outcome, summary)
                    if retry is not None:
                        queue.append(retry)  # next pop(): retries run first
        finally:
            self._shutdown(slots, summary)
        summary.duration_s = time.time() - started
        self._progress(summary.render())
        return summary

    def _preflight(self, pending: List[RunDescriptor],
                   summary: CampaignSummary) -> List[RunDescriptor]:
        """Lint pending cells; record and drop the rejects before any
        worker process exists."""
        from repro.campaign.preflight import partition_pending, rejection_error

        runnable, rejected = partition_pending(pending)
        for descriptor, report in rejected:
            error = rejection_error(report)
            summary.executed += 1
            summary.failed += 1
            summary.lint_rejected += 1
            summary.failed_run_ids.append(descriptor.run_id)
            self.store.append(make_record(
                descriptor.to_dict(), "failed", None,
                attempts=0, duration_s=0.0, error=error,
                campaign=self.spec.name,
            ))
            self._progress(
                f"run {descriptor.run_id} [{descriptor.label()}] "
                f"REJECTED by lint pre-flight: {report.errors[0].render()}")
        return runnable

    def _assign(self, queue: List[_Task], slots: List[_WorkerSlot],
                summary: CampaignSummary) -> None:
        """Hand queued tasks to idle workers, spawning up to the cap."""
        while queue:
            slot = next((s for s in slots if not s.busy), None)
            if slot is None:
                if len(slots) >= self.workers:
                    return
                slot = self._spawn(summary)
                slots.append(slot)
            task = queue.pop()
            try:
                slot.conn.send((task.descriptor.identity(), task.attempt,
                                self.trace))
            except (BrokenPipeError, OSError):
                # The idle worker died between runs; replace it and retry
                # the hand-off on a fresh one.
                slots.remove(slot)
                queue.append(task)
                continue
            now = time.time()
            slot.task = task
            slot.started_at = now
            slot.deadline = now + self.timeout_s
            self._progress(
                f"run {task.descriptor.run_id} [{task.descriptor.label()}] "
                f"attempt {task.attempt} started (pid {slot.process.pid})")

    def _spawn(self, summary: CampaignSummary) -> _WorkerSlot:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_loop, args=(child_conn,), daemon=True,
        )
        process.start()
        child_conn.close()  # parent keeps only its own end
        summary.processes_spawned += 1
        return _WorkerSlot(process=process, conn=parent_conn)

    def _poll(self, slot: _WorkerSlot) -> Optional[Dict[str, object]]:
        """None while running; otherwise this attempt's outcome dict."""
        if not slot.busy:
            return None
        # Results are honoured before liveness: a worker that reported
        # and then exited still completed its run.
        try:
            if slot.conn.poll():
                return slot.conn.recv()
        except (EOFError, OSError):
            pass
        if not slot.process.is_alive():
            slot.process.join()
            return {"status": "error",
                    "error": f"worker crashed "
                             f"(exit code {slot.process.exitcode})"}
        if time.time() >= slot.deadline:
            slot.process.terminate()
            slot.process.join()
            return {"status": "error",
                    "error": f"timeout after {self.timeout_s:.1f}s"}
        return None

    def _settle(self, slot: _WorkerSlot, outcome: Dict[str, object],
                summary: CampaignSummary) -> Optional[_Task]:
        """Record a finished attempt; return the retry task if any."""
        task = slot.task
        slot.task = None
        duration = time.time() - slot.started_at
        descriptor = task.descriptor
        worker_key = str(slot.process.pid)
        if outcome.get("status") == "ok":
            slot.runs_done = int(
                outcome.get("worker_runs") or slot.runs_done + 1)
            summary.worker_runs[worker_key] = slot.runs_done
            summary.executed += 1
            summary.succeeded += 1
            summary.retries_used += task.attempt - 1
            trace_info = None
            trace_jsonl = outcome.get("trace_jsonl")
            if isinstance(trace_jsonl, str):
                # Only the parent touches the store directory: workers
                # ship trace JSONL back over the pipe like any result.
                path = self.store.write_trace(descriptor.run_id, trace_jsonl)
                trace_info = {"path": str(path),
                              "events": int(outcome.get("trace_events") or 0)}
            self.store.append(make_record(
                descriptor.to_dict(), "ok", outcome.get("metrics"),
                attempts=task.attempt, duration_s=duration,
                campaign=self.spec.name,
                worker={"pid": slot.process.pid,
                        "runs_executed": slot.runs_done},
                trace=trace_info,
            ))
            self._progress(
                f"run {descriptor.run_id} ok "
                f"(attempt {task.attempt}, {duration:.2f}s)")
            return None
        if "worker_runs" in outcome:
            slot.runs_done = int(outcome["worker_runs"])
            summary.worker_runs[worker_key] = slot.runs_done
        error = str(outcome.get("error") or "unknown failure").strip()
        if task.attempt <= self.retries:
            self._progress(
                f"run {descriptor.run_id} attempt {task.attempt} failed "
                f"({error.splitlines()[-1]}); retrying")
            return _Task(descriptor, task.attempt + 1, last_error=error)
        summary.executed += 1
        summary.failed += 1
        summary.retries_used += task.attempt - 1
        summary.failed_run_ids.append(descriptor.run_id)
        self.store.append(make_record(
            descriptor.to_dict(), "failed", None,
            attempts=task.attempt, duration_s=duration, error=error,
            campaign=self.spec.name,
            worker={"pid": slot.process.pid,
                    "runs_executed": slot.runs_done},
        ))
        self._progress(
            f"run {descriptor.run_id} FAILED after {task.attempt} "
            f"attempt(s): {error.splitlines()[-1]}")
        return None

    def _shutdown(self, slots: List[_WorkerSlot],
                  summary: CampaignSummary) -> None:
        """Stop every worker: graceful for idle ones, terminate the rest."""
        for slot in slots:
            if not slot.busy and slot.process.is_alive():
                try:
                    slot.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
        deadline = time.time() + _SHUTDOWN_GRACE_S
        for slot in slots:
            if slot.busy and slot.process.is_alive():
                # Interrupted mid-run: don't leak the worker.
                slot.process.terminate()
            slot.process.join(timeout=max(0.0, deadline - time.time()))
            if slot.process.is_alive():
                slot.process.terminate()
                slot.process.join()
            if slot.process.pid is not None and slot.runs_done:
                summary.worker_runs.setdefault(
                    str(slot.process.pid), slot.runs_done)


class ShardWorkerPool:
    """A fixed set of persistent workers executing simulation shards.

    Reuses the campaign ``_worker_loop`` processes but drives them with
    ``shard_*`` dict tasks in lock-step: every worker runs its regions to
    the same epoch barrier, exchanges cross-shard messages directly with
    its peers over per-worker queues, and the loop repeats — the parent
    only carries barrier control traffic, which keeps its per-epoch CPU
    off the scaling-critical path.  Workers are plain (non-daemonic from
    the pool's perspective only if the parent is the main process —
    campaign workers are daemonic and cannot spawn children, so fabric
    cells inside a campaign fall back to the inline executor).
    """

    def __init__(self, workers: int, mp_context: Optional[str] = None) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers!r}")
        ctx = multiprocessing.get_context(mp_context)
        self._slots: List[Tuple[multiprocessing.Process, object]] = []
        # Full queues (not SimpleQueues): the feeder thread makes puts
        # non-blocking, so a burst of large batches cannot deadlock two
        # workers putting into each other's filled pipes.
        self._queues = [ctx.Queue() for _ in range(workers)]
        # The pipe mesh (fork only) must exist before any worker forks so
        # every child inherits the full fd matrix; each worker closes the
        # fds it does not own, and the parent closes its copies below.
        from repro.sim.mesh import close_mesh, create_mesh

        mesh_matrix = create_mesh(workers, ctx.get_start_method())
        self.has_mesh = mesh_matrix is not None
        for index in range(workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            process = ctx.Process(
                target=_worker_loop,
                args=(child_conn, self._queues, index, mesh_matrix),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._slots.append((process, parent_conn))
        close_mesh(mesh_matrix)

    @property
    def workers(self) -> int:
        return len(self._slots)

    def _call_all(self, tasks: List[dict]) -> List[dict]:
        for (_process, conn), task in zip(self._slots, tasks):
            conn.send(task)
        replies = []
        for process, conn in self._slots:
            try:
                reply = conn.recv()
            except (EOFError, OSError):
                raise RuntimeError(
                    f"shard worker pid {process.pid} died mid-epoch "
                    f"(exit code {process.exitcode})"
                )
            if reply.get("status") != "ok":
                raise RuntimeError(
                    "shard worker failed:\n" + str(reply.get("error"))
                )
            replies.append(reply)
        return replies

    def init(self, config: dict, assignment: List[List[int]]) -> List[dict]:
        """Build each worker's regions; ``assignment[i]`` lists worker
        ``i``'s region ids."""
        if len(assignment) != len(self._slots):
            raise ValueError(
                f"assignment covers {len(assignment)} workers, "
                f"pool has {len(self._slots)}"
            )
        return self._call_all([
            {"op": "shard_init", "config": config, "rids": rids,
             "assignment": assignment}
            for rids in assignment
        ])

    def epoch(self, until: float) -> List[dict]:
        """Run every worker's regions to ``until``; workers deliver the
        previous barrier's peer-queue batches themselves.  Returns
        per-worker ``{"next_time", "min_arrival", "sent"}``."""
        return self._call_all([
            {"op": "shard_epoch", "until": until} for _ in self._slots
        ])

    def run_barrier(
        self,
        lookahead: float,
        horizon: float,
        adaptive: bool = False,
        promise: Optional[float] = None,
        codec: bool = True,
    ) -> List[dict]:
        """Run the whole SPMD barrier loop inside the workers.

        One task and one reply per worker for the entire simulation;
        batches travel over the pipe mesh and every worker derives the
        identical epoch schedule from exchanged control words.  Returns
        per-worker ``{"epochs", "epochs_skipped", "epochs_widened",
        "sent", "exchange_bytes", "exchange_blobs"}``."""
        return self._call_all([
            {"op": "shard_run", "lookahead": lookahead, "horizon": horizon,
             "adaptive": adaptive, "promise": promise, "codec": codec}
            for _ in self._slots
        ])

    def collect(self) -> List[dict]:
        """Fetch per-region results and per-worker CPU accounting."""
        return self._call_all([
            {"op": "shard_collect"} for _ in self._slots
        ])

    def shutdown(self) -> None:
        for _process, conn in self._slots:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        deadline = time.time() + _SHUTDOWN_GRACE_S
        for process, _conn in self._slots:
            process.join(timeout=max(0.0, deadline - time.time()))
            if process.is_alive():
                process.terminate()
                process.join()
        for queue in self._queues:
            queue.close()
        self._queues = []
        self._slots = []


def run_campaign(
    spec: CampaignSpec,
    store: ResultStore,
    workers: int = 1,
    timeout_s: Optional[float] = None,
    retries: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    trace: bool = False,
    preflight: bool = True,
) -> CampaignSummary:
    """Convenience wrapper: build a :class:`CampaignRunner` and run it."""
    return CampaignRunner(
        spec, store, workers=workers, timeout_s=timeout_s,
        retries=retries, progress=progress, trace=trace,
        preflight=preflight,
    ).run()
