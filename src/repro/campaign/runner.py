"""The campaign runner: a persistent pool of reusable worker processes.

Workers are long-lived: each executes run descriptors one after another
off a duplex pipe, resetting per-run global state (sequence counters,
frame caches) between cells so a run behaves bit-identically to one in a
fresh process.  Amortizing the interpreter start + import cost over many
runs is where campaign wall-clock goes on wide matrices — the summary's
``processes_spawned`` should come out well below the number of runs.

Fault semantics are unchanged from the process-per-run model:

* a run exceeding the wall-clock timeout gets its worker terminated (the
  only way to preempt a hung simulation) and a fresh worker is spawned
  on demand;
* a worker that dies without reporting (hard crash, kill) fails only the
  run it was executing, which is retried up to ``retries`` extra
  attempts — on a replacement worker;
* the parent is the only writer to the result store.

The pool loop itself lives in :mod:`repro.campaign.scheduler`;
``CampaignRunner`` is the one-shot facade over it, and this module keeps
the process-level primitives (``_worker_loop``, ``reset_run_state``,
``ShardWorkerPool``) that both the scheduler and the sharded simulator
share.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore

#: How often the scheduler polls its active workers (seconds).
_POLL_INTERVAL_S = 0.01

#: How long the parent waits for a worker to exit after a shutdown
#: request before terminating it.
_SHUTDOWN_GRACE_S = 2.0


def reset_run_state() -> None:
    """Reset process-global counters so repeated runs stay deterministic.

    A fresh process starts every itertools sequence at its seed value;
    a reused worker (or any caller running experiments back to back in
    one process) must do the same before each run or frame contents
    (ICMP identifiers, ephemeral ports, OpenFlow xids, event tie-breaks)
    would depend on how many runs the process executed before this one.

    Per-object statistics (e.g. ``FlowTable`` occupancy peaks and
    eviction counters) are NOT process-global: every run builds fresh
    networks, so they cannot leak between cells.  A harness pooling a
    network across runs must additionally call each table's
    ``reset_stats()``.
    """
    import itertools

    from repro.core.lang.properties import InterposedMessage
    from repro.dataplane.flowtable import FlowEntry
    from repro.dataplane.host import Host
    from repro.netlib import fastframe
    from repro.openflow import messages as of_messages
    from repro.sim.events import Event

    Event._seq_counter = itertools.count()
    FlowEntry._order = itertools.count()
    Host._icmp_id = itertools.count(1)
    Host._ephemeral = itertools.count(49152)
    InterposedMessage._id_counter = itertools.count(1)
    of_messages.reset_xid_counter()
    fastframe.clear_pool()
    fastframe.reset_counters()


#: Backwards-compatible private alias (pre-existing callers/tests).
_reset_run_state = reset_run_state


def _worker_loop(conn, peer_queues=None, peer_index=None,
                 mesh_matrix=None) -> None:
    """Persistent worker: execute descriptors until told to shut down.

    Two task shapes share the pipe: legacy ``(descriptor, attempt,
    trace_enabled)`` tuples run one campaign cell to completion, and
    ``{"op": "shard_*"}`` dicts drive a slice of a sharded simulation
    (see :mod:`repro.sim.shard`).  ``mesh_matrix`` (inherited pipe fds,
    fork start method only) gives shard workers a direct peer-to-peer
    fast lane for the SPMD barrier loop; ``peer_queues`` (one queue per
    pool worker, this worker reading ``peer_index``'s) is the fallback
    exchange for epoch-stepped execution without a mesh.
    """
    from repro.campaign.executors import execute_descriptor

    runs_executed = 0
    shard_session = None
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            break
        if task is None:
            break
        if isinstance(task, dict):
            if shard_session is None:
                from repro.sim.shard import ShardWorkerSession

                shard_session = ShardWorkerSession(peer_queues, peer_index,
                                                   mesh_matrix)
            try:
                reply = shard_session.handle(task)
            except BaseException:
                reply = {"status": "error",
                         "error": traceback.format_exc(limit=8)}
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                break
            continue
        descriptor, attempt, trace_enabled = task
        _reset_run_state()
        tracer = None
        if trace_enabled:
            from repro.obs import TraceCollector

            tracer = TraceCollector()
        try:
            metrics = execute_descriptor(descriptor, attempt=attempt,
                                         tracer=tracer)
            runs_executed += 1
            outcome = {"status": "ok", "metrics": metrics,
                       "worker_runs": runs_executed}
            if tracer is not None:
                outcome["trace_jsonl"] = tracer.to_jsonl()
                outcome["trace_events"] = tracer.events_total
        except BaseException:
            runs_executed += 1
            outcome = {"status": "error",
                       "error": traceback.format_exc(limit=8),
                       "worker_runs": runs_executed}
        try:
            conn.send(outcome)
        except (BrokenPipeError, OSError):
            break
    conn.close()


@dataclass
class CampaignSummary:
    """What one ``run_campaign`` invocation did."""

    campaign: str
    total: int
    skipped: int = 0
    executed: int = 0
    succeeded: int = 0
    failed: int = 0
    retries_used: int = 0
    duration_s: float = 0.0
    failed_run_ids: List[str] = field(default_factory=list)
    processes_spawned: int = 0
    worker_runs: Dict[str, int] = field(default_factory=dict)
    lint_rejected: int = 0

    @property
    def complete(self) -> bool:
        return self.failed == 0

    def render(self) -> str:
        rejected = (
            f", {self.lint_rejected} rejected by lint pre-flight"
            if self.lint_rejected else ""
        )
        return (
            f"campaign {self.campaign}: {self.total} runs — "
            f"{self.skipped} already complete, {self.executed} executed "
            f"({self.succeeded} ok, {self.failed} failed, "
            f"{self.retries_used} retries{rejected}) in {self.duration_s:.1f}s "
            f"across {self.processes_spawned} worker process(es)"
        )


class CampaignRunner:
    """Schedules a spec's pending runs over a persistent process pool.

    One-shot facade over :class:`~repro.campaign.scheduler.
    CampaignScheduler`: ``run()`` submits the spec as a single job,
    drains it, and shuts the pool down.  Service users (multiple specs,
    streaming, aggregation) drive the scheduler directly.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        store: ResultStore,
        workers: int = 1,
        timeout_s: Optional[float] = None,
        retries: Optional[int] = None,
        progress: Optional[Callable[[str], None]] = None,
        mp_context: Optional[str] = None,
        trace: bool = False,
        preflight: bool = True,
    ) -> None:
        self.spec = spec
        self.store = store
        self.workers = max(1, int(workers))
        self.timeout_s = float(timeout_s if timeout_s is not None
                               else spec.timeout_s)
        self.retries = int(retries if retries is not None else spec.retries)
        self.trace = bool(trace)
        self.preflight = bool(preflight)
        self._progress = progress or (lambda line: None)
        self._ctx = multiprocessing.get_context(mp_context)

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    def run(self) -> CampaignSummary:
        from repro.campaign.scheduler import CampaignScheduler

        started = time.time()
        scheduler = CampaignScheduler(
            self.store, workers=self.workers, mp_context=self._ctx,
            progress=self._progress,
        )
        try:
            job = scheduler.submit(
                self.spec, timeout_s=self.timeout_s, retries=self.retries,
                trace=self.trace, preflight=self.preflight)
            scheduler.run_until_idle()
        finally:
            scheduler.shutdown()
        summary = job.summary
        summary.processes_spawned = scheduler.processes_spawned
        summary.worker_runs = dict(scheduler.worker_runs)
        summary.duration_s = time.time() - started
        return summary


class ShardWorkerPool:
    """A fixed set of persistent workers executing simulation shards.

    Reuses the campaign ``_worker_loop`` processes but drives them with
    ``shard_*`` dict tasks in lock-step: every worker runs its regions to
    the same epoch barrier, exchanges cross-shard messages directly with
    its peers over per-worker queues, and the loop repeats — the parent
    only carries barrier control traffic, which keeps its per-epoch CPU
    off the scaling-critical path.  Workers are plain (non-daemonic from
    the pool's perspective only if the parent is the main process —
    campaign workers are daemonic and cannot spawn children, so fabric
    cells inside a campaign fall back to the inline executor).
    """

    def __init__(self, workers: int, mp_context: Optional[str] = None) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers!r}")
        ctx = multiprocessing.get_context(mp_context)
        self._slots: List[Tuple[multiprocessing.Process, object]] = []
        # Full queues (not SimpleQueues): the feeder thread makes puts
        # non-blocking, so a burst of large batches cannot deadlock two
        # workers putting into each other's filled pipes.
        self._queues = [ctx.Queue() for _ in range(workers)]
        # The pipe mesh (fork only) must exist before any worker forks so
        # every child inherits the full fd matrix; each worker closes the
        # fds it does not own, and the parent closes its copies below.
        from repro.sim.mesh import close_mesh, create_mesh

        mesh_matrix = create_mesh(workers, ctx.get_start_method())
        self.has_mesh = mesh_matrix is not None
        for index in range(workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            process = ctx.Process(
                target=_worker_loop,
                args=(child_conn, self._queues, index, mesh_matrix),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._slots.append((process, parent_conn))
        close_mesh(mesh_matrix)

    @property
    def workers(self) -> int:
        return len(self._slots)

    def _call_all(self, tasks: List[dict]) -> List[dict]:
        for (_process, conn), task in zip(self._slots, tasks):
            conn.send(task)
        replies = []
        for process, conn in self._slots:
            try:
                reply = conn.recv()
            except (EOFError, OSError):
                raise RuntimeError(
                    f"shard worker pid {process.pid} died mid-epoch "
                    f"(exit code {process.exitcode})"
                )
            if reply.get("status") != "ok":
                raise RuntimeError(
                    "shard worker failed:\n" + str(reply.get("error"))
                )
            replies.append(reply)
        return replies

    def init(self, config: dict, assignment: List[List[int]]) -> List[dict]:
        """Build each worker's regions; ``assignment[i]`` lists worker
        ``i``'s region ids."""
        if len(assignment) != len(self._slots):
            raise ValueError(
                f"assignment covers {len(assignment)} workers, "
                f"pool has {len(self._slots)}"
            )
        return self._call_all([
            {"op": "shard_init", "config": config, "rids": rids,
             "assignment": assignment}
            for rids in assignment
        ])

    def epoch(self, until: float) -> List[dict]:
        """Run every worker's regions to ``until``; workers deliver the
        previous barrier's peer-queue batches themselves.  Returns
        per-worker ``{"next_time", "min_arrival", "sent"}``."""
        return self._call_all([
            {"op": "shard_epoch", "until": until} for _ in self._slots
        ])

    def run_barrier(
        self,
        lookahead: float,
        horizon: float,
        adaptive: bool = False,
        promise: Optional[float] = None,
        codec: bool = True,
    ) -> List[dict]:
        """Run the whole SPMD barrier loop inside the workers.

        One task and one reply per worker for the entire simulation;
        batches travel over the pipe mesh and every worker derives the
        identical epoch schedule from exchanged control words.  Returns
        per-worker ``{"epochs", "epochs_skipped", "epochs_widened",
        "sent", "exchange_bytes", "exchange_blobs"}``."""
        return self._call_all([
            {"op": "shard_run", "lookahead": lookahead, "horizon": horizon,
             "adaptive": adaptive, "promise": promise, "codec": codec}
            for _ in self._slots
        ])

    def collect(self) -> List[dict]:
        """Fetch per-region results and per-worker CPU accounting."""
        return self._call_all([
            {"op": "shard_collect"} for _ in self._slots
        ])

    def shutdown(self) -> None:
        for _process, conn in self._slots:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        deadline = time.time() + _SHUTDOWN_GRACE_S
        for process, _conn in self._slots:
            process.join(timeout=max(0.0, deadline - time.time()))
            if process.is_alive():
                process.terminate()
                process.join()
        for queue in self._queues:
            queue.close()
        self._queues = []
        self._slots = []


def run_campaign(
    spec: CampaignSpec,
    store: ResultStore,
    workers: int = 1,
    timeout_s: Optional[float] = None,
    retries: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    trace: bool = False,
    preflight: bool = True,
) -> CampaignSummary:
    """Convenience wrapper: build a :class:`CampaignRunner` and run it."""
    return CampaignRunner(
        spec, store, workers=workers, timeout_s=timeout_s,
        retries=retries, progress=progress, trace=trace,
        preflight=preflight,
    ).run()
