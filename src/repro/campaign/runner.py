"""The campaign runner: a bounded pool of per-run worker processes.

Every run executes in a *fresh* process (per-run seeded isolation: no
state bleeds between cells, and a crashing experiment takes down only
its own worker).  The parent keeps up to ``workers`` processes alive,
enforces a per-run wall-clock timeout, retries failed runs up to
``retries`` extra attempts, and is the only writer to the result store.

Workers ship their metrics back over a one-shot pipe; a worker that dies
without reporting (hard crash, kill, timeout) is indistinguishable from
— and handled the same as — a timed-out one.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.campaign.spec import CampaignSpec, RunDescriptor
from repro.campaign.store import ResultStore, make_record

#: How often the scheduler polls its active workers (seconds).
_POLL_INTERVAL_S = 0.01


def _worker_main(descriptor: Dict[str, object], attempt: int, conn) -> None:
    """Worker entry point: run one descriptor, ship the outcome, exit."""
    from repro.campaign.executors import execute_descriptor

    try:
        metrics = execute_descriptor(descriptor, attempt=attempt)
    except BaseException:
        try:
            conn.send({"status": "error",
                       "error": traceback.format_exc(limit=8)})
        finally:
            conn.close()
        return
    conn.send({"status": "ok", "metrics": metrics})
    conn.close()


@dataclass
class _ActiveRun:
    descriptor: RunDescriptor
    attempt: int
    process: multiprocessing.Process
    conn: object
    started_at: float
    deadline: float
    last_error: Optional[str] = None


@dataclass
class CampaignSummary:
    """What one ``run_campaign`` invocation did."""

    campaign: str
    total: int
    skipped: int = 0
    executed: int = 0
    succeeded: int = 0
    failed: int = 0
    retries_used: int = 0
    duration_s: float = 0.0
    failed_run_ids: List[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return self.failed == 0

    def render(self) -> str:
        return (
            f"campaign {self.campaign}: {self.total} runs — "
            f"{self.skipped} already complete, {self.executed} executed "
            f"({self.succeeded} ok, {self.failed} failed, "
            f"{self.retries_used} retries) in {self.duration_s:.1f}s"
        )


class CampaignRunner:
    """Schedules a spec's pending runs over a process pool."""

    def __init__(
        self,
        spec: CampaignSpec,
        store: ResultStore,
        workers: int = 1,
        timeout_s: Optional[float] = None,
        retries: Optional[int] = None,
        progress: Optional[Callable[[str], None]] = None,
        mp_context: Optional[str] = None,
    ) -> None:
        self.spec = spec
        self.store = store
        self.workers = max(1, int(workers))
        self.timeout_s = float(timeout_s if timeout_s is not None
                               else spec.timeout_s)
        self.retries = int(retries if retries is not None else spec.retries)
        self._progress = progress or (lambda line: None)
        self._ctx = multiprocessing.get_context(mp_context)

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    def run(self) -> CampaignSummary:
        started = time.time()
        descriptors = self.spec.expand()
        completed = self.store.completed_ids()
        pending = [d for d in descriptors if d.run_id not in completed]
        summary = CampaignSummary(
            campaign=self.spec.name,
            total=len(descriptors),
            skipped=len(descriptors) - len(pending),
        )
        if summary.skipped:
            self._progress(
                f"resume: skipping {summary.skipped} completed run(s)")
        queue = list(reversed(pending))  # pop() preserves matrix order
        active: List[_ActiveRun] = []
        try:
            while queue or active:
                while queue and len(active) < self.workers:
                    active.append(self._launch(queue.pop(), attempt=1))
                time.sleep(_POLL_INTERVAL_S)
                still_active: List[_ActiveRun] = []
                for run in active:
                    outcome = self._poll(run)
                    if outcome is None:
                        still_active.append(run)
                        continue
                    retry = self._settle(run, outcome, summary)
                    if retry is not None:
                        still_active.append(retry)
                active = still_active
        finally:
            for run in active:  # interrupted: don't leak workers
                if run.process.is_alive():
                    run.process.terminate()
                run.process.join()
        summary.duration_s = time.time() - started
        self._progress(summary.render())
        return summary

    def _launch(self, descriptor: RunDescriptor, attempt: int,
                last_error: Optional[str] = None) -> _ActiveRun:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_main,
            args=(descriptor.identity(), attempt, child_conn),
            daemon=True,
        )
        process.start()
        child_conn.close()  # parent keeps only the read end
        now = time.time()
        self._progress(
            f"run {descriptor.run_id} [{descriptor.label()}] "
            f"attempt {attempt} started (pid {process.pid})")
        return _ActiveRun(
            descriptor=descriptor,
            attempt=attempt,
            process=process,
            conn=parent_conn,
            started_at=now,
            deadline=now + self.timeout_s,
            last_error=last_error,
        )

    def _poll(self, run: _ActiveRun) -> Optional[Dict[str, object]]:
        """None while running; otherwise this attempt's outcome dict."""
        if run.process.is_alive():
            if time.time() < run.deadline:
                return None
            run.process.terminate()
            run.process.join()
            return {"status": "error",
                    "error": f"timeout after {self.timeout_s:.1f}s"}
        run.process.join()
        try:
            if run.conn.poll():
                return run.conn.recv()
        except (EOFError, OSError):
            pass
        return {"status": "error",
                "error": f"worker crashed (exit code {run.process.exitcode})"}

    def _settle(self, run: _ActiveRun, outcome: Dict[str, object],
                summary: CampaignSummary) -> Optional[_ActiveRun]:
        """Record a finished attempt; relaunch if retries remain."""
        run.conn.close()
        duration = time.time() - run.started_at
        descriptor = run.descriptor
        if outcome.get("status") == "ok":
            summary.executed += 1
            summary.succeeded += 1
            summary.retries_used += run.attempt - 1
            self.store.append(make_record(
                descriptor.to_dict(), "ok", outcome.get("metrics"),
                attempts=run.attempt, duration_s=duration,
                campaign=self.spec.name,
            ))
            self._progress(
                f"run {descriptor.run_id} ok "
                f"(attempt {run.attempt}, {duration:.2f}s)")
            return None
        error = str(outcome.get("error") or "unknown failure").strip()
        if run.attempt <= self.retries:
            self._progress(
                f"run {descriptor.run_id} attempt {run.attempt} failed "
                f"({error.splitlines()[-1]}); retrying")
            return self._launch(descriptor, run.attempt + 1, last_error=error)
        summary.executed += 1
        summary.failed += 1
        summary.retries_used += run.attempt - 1
        summary.failed_run_ids.append(descriptor.run_id)
        self.store.append(make_record(
            descriptor.to_dict(), "failed", None,
            attempts=run.attempt, duration_s=duration, error=error,
            campaign=self.spec.name,
        ))
        self._progress(
            f"run {descriptor.run_id} FAILED after {run.attempt} attempt(s): "
            f"{error.splitlines()[-1]}")
        return None


def run_campaign(
    spec: CampaignSpec,
    store: ResultStore,
    workers: int = 1,
    timeout_s: Optional[float] = None,
    retries: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> CampaignSummary:
    """Convenience wrapper: build a :class:`CampaignRunner` and run it."""
    return CampaignRunner(
        spec, store, workers=workers, timeout_s=timeout_s,
        retries=retries, progress=progress,
    ).run()
