"""Sharded, compacting result store for service-scale campaigns.

A :class:`ShardedResultStore` keeps the same record schema and reader
contract as the single-file :class:`~repro.campaign.store.ResultStore`
but fans appends out across ``<store>.d/shard-NN.jsonl`` by run-ID hash.
All records for one run land in one shard (the hash is a pure function
of the run ID), which preserves the per-run ordering invariant the
resume and report layers depend on: within a run, later records always
read after earlier ones.

Layout under ``<store>.d/``::

    manifest.json     shard count + compaction generation (round-trips)
    shard-NN.jsonl    the ledger, hashed by run ID
    index.json        checkpoint: per-shard byte offsets + completed IDs
    archive/          audit tail rewritten out of the shards by compact()
    traces/           per-run trace exports

A legacy single-file ledger at ``<store>`` itself is read through
transparently (its records sort before every shard record, which is
correct: once the sharded layout exists all new appends go to shards).
``compact()`` migrates the legacy file into the shards and parks the
original under ``archive/``.

Resume cost: ``completed_ids()`` reads only bytes appended since the
last ``checkpoint()``, so resuming a fully-completed matrix is O(new
records) instead of O(ledger).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Union

from repro.campaign.store import ResultStore, _JsonlTail, iter_jsonl

#: Schema tags for the layout's metadata files.
MANIFEST_SCHEMA = "attain.campaign.store.v1"
INDEX_SCHEMA = "attain.campaign.index.v1"

#: Default shard fan-out.  Wide enough that compaction rewrites stay
#: small relative to the ledger, small enough that a resume's directory
#: scan is negligible.
DEFAULT_SHARDS = 8

#: Auto-compaction policy (mirrors the simulator's heap tombstone
#: sweep): rewrite once superseded records both clear an absolute floor
#: and outnumber the live ones.
_COMPACT_MIN_SUPERSEDED = 64
_COMPACT_RATIO = 0.5

#: Key for the legacy single-file ledger in the checkpoint offsets map.
_LEGACY_KEY = "__legacy__"


def shard_for(run_id: str, shards: int) -> int:
    """Deterministic shard index for a run ID (16-hex sha256 prefix)."""
    try:
        return int(run_id[:8], 16) % shards
    except (TypeError, ValueError):
        return 0


def shard_name(index: int) -> str:
    return f"shard-{index:02d}.jsonl"


class _ShardView:
    """One source file's slice of the in-memory index."""

    __slots__ = ("name", "tail", "count", "latest", "ok", "superseded")

    def __init__(self, name: str, path: Path) -> None:
        self.name = name
        self.tail = _JsonlTail(path)
        self.count = 0
        # ``ok`` is move-to-end ordered, same contract as ResultStore.
        self.latest: Dict[str, Dict[str, object]] = {}
        self.ok: Dict[str, Dict[str, object]] = {}
        self.superseded = 0

    @property
    def path(self) -> Path:
        return self.tail.path

    def reset(self) -> None:
        self.tail.reset()
        self.count = 0
        self.latest.clear()
        self.ok.clear()
        self.superseded = 0


class ShardedResultStore:
    """Drop-in ``ResultStore`` replacement that shards the ledger.

    ``path`` is the *logical* store path (the same value a single-file
    store would use); the shard directory lives beside it at
    ``<path>.d``.  Opening an existing directory adopts its manifest's
    shard count, so the fan-out round-trips without callers having to
    remember it.
    """

    def __init__(self, path, shards: Optional[int] = None) -> None:
        self.path = Path(path)
        self.root = self.path.with_name(self.path.name + ".d")
        manifest = self._read_manifest()
        if manifest is not None:
            self.shards = int(manifest.get("shards") or DEFAULT_SHARDS)
        else:
            self.shards = int(shards or DEFAULT_SHARDS)
        if self.shards < 1:
            raise ValueError(f"need at least one shard, got {self.shards!r}")
        self._legacy = _ShardView(_LEGACY_KEY, self.path)
        self._views = [
            _ShardView(shard_name(i), self.root / shard_name(i))
            for i in range(self.shards)
        ]
        self._completed: Set[str] = set()
        self._count = 0
        # False while ``_completed`` is checkpoint-seeded but the
        # latest/ok maps have not been built from a full scan yet.
        self._full = False
        self._seeded = self._load_checkpoint()

    # ------------------------------------------------------------------ #
    # Layout metadata
    # ------------------------------------------------------------------ #

    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.json"

    @property
    def index_path(self) -> Path:
        return self.root / "index.json"

    @property
    def archive_dir(self) -> Path:
        return self.root / "archive"

    @property
    def events_path(self) -> Path:
        """Where a scheduler streams this store's follow-mode tail."""
        return self.root / "events.jsonl"

    def _read_manifest(self) -> Optional[Dict[str, object]]:
        try:
            data = json.loads(
                (self.path.with_name(self.path.name + ".d") / "manifest.json")
                .read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        return data if isinstance(data, dict) else None

    def _write_manifest(self, compactions: Optional[int] = None) -> None:
        previous = self._read_manifest() or {}
        payload = {
            "schema": MANIFEST_SCHEMA,
            "shards": self.shards,
            "compactions": (
                int(previous.get("compactions") or 0)
                if compactions is None else compactions
            ),
        }
        self._atomic_write(self.manifest_path, json.dumps(payload, sort_keys=True))

    def _ensure_layout(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        if not self.manifest_path.exists():
            self._write_manifest()

    @staticmethod
    def _atomic_write(path: Path, text: str) -> None:
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(text + "\n", encoding="utf-8")
        os.replace(tmp, path)

    # ------------------------------------------------------------------ #
    # Checkpoint (persisted resume index)
    # ------------------------------------------------------------------ #

    def _load_checkpoint(self) -> bool:
        """Seed ``_completed`` + tail offsets from ``index.json``.

        Returns True when the checkpoint was adopted.  A checkpoint is
        rejected wholesale if the manifest shard count changed or any
        file shrank below its recorded offset — the subsequent full
        rebuild is always correct, just slower.
        """
        try:
            data = json.loads(self.index_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return False
        if not isinstance(data, dict) or data.get("shards") != self.shards:
            return False
        offsets = data.get("offsets")
        prints = data.get("prints")
        completed = data.get("completed")
        if (not isinstance(offsets, dict) or not isinstance(prints, dict)
                or not isinstance(completed, list)):
            return False
        views = {view.name: view for view in self._all_views()}
        staged = []
        for name, offset in offsets.items():
            view = views.get(name)
            fingerprint = prints.get(name)
            if (view is None or not isinstance(offset, int) or offset < 0
                    or not isinstance(fingerprint, str)):
                return False
            if view.tail.size() < offset:
                return False
            try:
                staged.append((view, offset, bytes.fromhex(fingerprint)))
            except ValueError:
                return False
        for view, offset, fingerprint in staged:
            view.tail.offset = offset
            view.tail.fingerprint = fingerprint
        self._completed = {r for r in completed if isinstance(r, str)}
        self._count = int(data.get("records") or 0)
        return True

    def checkpoint(self) -> Path:
        """Persist the resume index so the *next* open is O(new records)."""
        self._refresh(full=False)
        self._ensure_layout()
        payload = {
            "schema": INDEX_SCHEMA,
            "shards": self.shards,
            "offsets": {v.name: v.tail.offset for v in self._all_views()},
            "prints": {v.name: v.tail.fingerprint.hex()
                       for v in self._all_views()},
            "completed": sorted(self._completed),
            "records": self._count,
        }
        self._atomic_write(self.index_path, json.dumps(payload, sort_keys=True))
        return self.index_path

    # ------------------------------------------------------------------ #
    # Incremental index
    # ------------------------------------------------------------------ #

    def _all_views(self) -> List[_ShardView]:
        return [self._legacy] + self._views

    def _fold(self, view: _ShardView, record: Dict[str, object]) -> None:
        view.count += 1
        self._count += 1
        run_id = record.get("run_id")
        if not isinstance(run_id, str):
            view.superseded += 1  # junk line: compaction will archive it
            return
        if run_id in view.latest:
            view.superseded += 1
        view.latest[run_id] = record
        if record.get("status") == "ok":
            self._completed.add(run_id)
            view.ok.pop(run_id, None)
            view.ok[run_id] = record

    def _rebuild(self) -> None:
        self._completed.clear()
        self._count = 0
        self._full = True
        for view in self._all_views():
            view.reset()
            for record in view.tail.read_new():
                self._fold(view, record)

    def _refresh(self, full: bool) -> None:
        if any(view.tail.invalidated() for view in self._all_views()):
            self._rebuild()
            return
        if full and not self._full:
            # The checkpoint only persists completed IDs; the first call
            # needing latest/ok maps pays one full scan, then stays
            # incremental.
            self._rebuild()
            return
        if self._full:
            for view in self._all_views():
                for record in view.tail.read_new():
                    self._fold(view, record)
        else:
            for view in self._all_views():
                for record in view.tail.read_new():
                    self._count += 1
                    run_id = record.get("run_id")
                    if record.get("status") == "ok" and isinstance(run_id, str):
                        self._completed.add(run_id)

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #

    def heal(self) -> bool:
        """Newline-terminate torn final lines, per shard (and legacy)."""
        healed = False
        for view in self._all_views():
            if not view.path.exists():
                continue
            with view.path.open("a+b") as handle:
                healed = ResultStore._terminate_tail(handle) or healed
        return healed

    def append(self, record: Dict[str, object]) -> Dict[str, object]:
        """Append one record to its run's shard; returns the payload."""
        payload = dict(record)
        payload.setdefault("recorded_at", round(time.time(), 3))
        run_id = payload.get("run_id")
        index = shard_for(run_id if isinstance(run_id, str) else "", self.shards)
        self._ensure_layout()
        with self._views[index].path.open("a+b") as handle:
            ResultStore._terminate_tail(handle)
            line = json.dumps(payload, sort_keys=True) + "\n"
            handle.write(line.encode("utf-8"))
            handle.flush()
        return payload

    # ------------------------------------------------------------------ #
    # Trace artifacts
    # ------------------------------------------------------------------ #

    @property
    def traces_dir(self) -> Path:
        return self.root / "traces"

    def trace_path(self, run_id: str) -> Path:
        return self.traces_dir / f"{run_id}.jsonl"

    def write_trace(self, run_id: str, jsonl: str) -> Path:
        path = self.trace_path(run_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        if jsonl and not jsonl.endswith("\n"):
            jsonl += "\n"
        path.write_text(jsonl, encoding="utf-8")
        return path

    # ------------------------------------------------------------------ #
    # Reading (ResultStore contract)
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        self._refresh(full=True)
        return self._count

    def records(self) -> Iterator[Dict[str, object]]:
        """Every record in shard-major file order (legacy ledger first)."""
        yield from iter_jsonl(self.path)
        for view in self._views:
            yield from iter_jsonl(view.path)

    def latest_by_run(self) -> Dict[str, Dict[str, object]]:
        """The last record per run ID across legacy + shards."""
        self._refresh(full=True)
        latest = dict(self._legacy.latest)
        for view in self._views:
            latest.update(view.latest)  # a run lives in exactly one shard
        return latest

    def completed_ids(self) -> Set[str]:
        """Run IDs with at least one ok record — O(new records) when a
        checkpoint exists."""
        self._refresh(full=False)
        return set(self._completed)

    def ok_records(self) -> List[Dict[str, object]]:
        """Latest ok record per run, in shard-major file order.

        A legacy run re-executed after sharding emits at its shard
        position (the newer record); legacy-only runs keep their legacy
        order ahead of every shard.
        """
        self._refresh(full=True)
        shard_ok: Set[str] = set()
        for view in self._views:
            shard_ok.update(view.ok)
        out = [
            record for run_id, record in self._legacy.ok.items()
            if run_id not in shard_ok
        ]
        for view in self._views:
            out.extend(view.ok.values())
        return out

    # ------------------------------------------------------------------ #
    # Compaction
    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, int]:
        """Ledger shape: record/run/superseded counts and byte sizes."""
        self._refresh(full=True)
        runs: Set[str] = set()
        superseded = 0
        for view in self._all_views():
            runs.update(view.latest)
            superseded += view.superseded
        return {
            "shards": self.shards,
            "records": self._count,
            "runs": len(runs),
            "completed": len(self._completed),
            "superseded": superseded,
            "bytes": sum(v.tail.size() for v in self._views),
            "legacy_bytes": self._legacy.tail.size(),
        }

    def maybe_compact(self) -> Optional[Dict[str, int]]:
        """Compact when superseded records pass the tombstone policy."""
        stats = self.stats()
        stale = stats["superseded"]
        if stale < _COMPACT_MIN_SUPERSEDED:
            return None
        if stale <= stats["records"] * _COMPACT_RATIO:
            return None
        return self.compact()

    def compact(self) -> Dict[str, int]:
        """Rewrite every shard to its minimal resume-equivalent form.

        Per run the rewrite keeps (at most) two records: the latest ok
        record and, if different, the final record — exactly the set
        that reproduces ``completed_ids``/``latest_by_run``/
        ``ok_records`` for that run.  Everything else (retried audit
        records, superseded attempts, torn fragments) moves to an
        ``archive/compact-NNNN.jsonl`` audit file.  The legacy
        single-file ledger is migrated into the shards and parked under
        ``archive/`` as part of the same pass.
        """
        self._ensure_layout()
        self.heal()
        legacy_lines = self._raw_lines(self.path)
        archive: List[str] = []
        kept_total = 0
        archived_total = 0
        migrated = len(legacy_lines)
        for index, view in enumerate(self._views):
            stream = [
                (line, record) for line, record in legacy_lines
                if record is not None
                and shard_for(str(record.get("run_id")), self.shards) == index
            ]
            stream.extend(self._raw_lines(view.path))
            keep = self._keep_set(stream)
            new_lines: List[str] = []
            for position, (line, record) in enumerate(stream):
                if position in keep:
                    new_lines.append(line)
                else:
                    archive.append(line)
            kept_total += len(new_lines)
            archived_total += len(stream) - len(new_lines)
            tmp = view.path.with_name(view.path.name + ".tmp")
            with tmp.open("wb") as handle:
                for line in new_lines:
                    handle.write(line.encode("utf-8") + b"\n")
                handle.flush()
            os.replace(tmp, view.path)
        # Unparseable legacy lines have no shard; archive them outright.
        archive.extend(
            line for line, record in legacy_lines if record is None)
        manifest = self._read_manifest() or {}
        generation = int(manifest.get("compactions") or 0) + 1
        if archive:
            self.archive_dir.mkdir(parents=True, exist_ok=True)
            archive_path = self.archive_dir / f"compact-{generation:04d}.jsonl"
            with archive_path.open("a", encoding="utf-8") as handle:
                for line in archive:
                    handle.write(line + "\n")
        if self.path.exists():
            self.archive_dir.mkdir(parents=True, exist_ok=True)
            os.replace(
                self.path,
                self.archive_dir / f"legacy-{generation:04d}-{self.path.name}")
        self._write_manifest(compactions=generation)
        self._rebuild()
        self.checkpoint()
        return {
            "kept": kept_total,
            "archived": archived_total + sum(
                1 for _line, record in legacy_lines if record is None),
            "migrated": migrated,
            "generation": generation,
        }

    @staticmethod
    def _raw_lines(path: Path):
        """(raw line, parsed record|None) pairs, preserving exact bytes."""
        out = []
        if not path.exists():
            return out
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.rstrip("\n")
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    record = None
                if not isinstance(record, dict):
                    record = None
                out.append((line, record))
        return out

    @staticmethod
    def _keep_set(stream) -> Set[int]:
        """Positions to keep: latest ok + final record per run."""
        latest_ok: Dict[str, int] = {}
        final: Dict[str, int] = {}
        for position, (_line, record) in enumerate(stream):
            if record is None:
                continue
            run_id = record.get("run_id")
            if not isinstance(run_id, str):
                continue
            final[run_id] = position
            if record.get("status") == "ok":
                latest_ok[run_id] = position
        keep = set(latest_ok.values())
        keep.update(final.values())
        return keep


#: Either store flavour — everything downstream of the runner takes this.
AnyResultStore = Union[ResultStore, ShardedResultStore]


def is_sharded_path(path) -> bool:
    """True when ``path`` names (or sits beside) a sharded store layout."""
    p = Path(path)
    if p.name.endswith(".d"):
        return (p / "manifest.json").exists()
    return (p.with_name(p.name + ".d") / "manifest.json").exists()


def open_store(path, sharded: Optional[bool] = None,
               shards: Optional[int] = None) -> AnyResultStore:
    """Open the right store flavour for ``path``.

    ``sharded=None`` auto-detects: an existing ``<path>.d/manifest.json``
    opens sharded, anything else opens the plain single-file store.
    Passing the ``.d`` directory itself also works (handy for ``repro
    campaign watch``).  ``sharded=True`` creates the sharded layout on
    first append; ``sharded=False`` forces the legacy single file.
    """
    p = Path(path)
    if p.name.endswith(".d"):
        return ShardedResultStore(p.with_name(p.name[:-2]), shards=shards)
    if sharded is None:
        sharded = (p.with_name(p.name + ".d") / "manifest.json").exists()
    if sharded:
        return ShardedResultStore(p, shards=shards)
    return ResultStore(p)
