"""Campaign orchestration: parallel attack-matrix runs with resume.

The paper's evaluation (§VII) is a matrix — attacks × controllers ×
fail modes — and this package is the machinery that runs such matrices
at scale:

* :mod:`repro.campaign.spec` — a declarative :class:`CampaignSpec`
  (Python dict, JSON, XML, or ``.py`` file) that expands the matrix into
  run descriptors with deterministic run IDs;
* :mod:`repro.campaign.runner` — a multiprocessing pool executing runs
  in parallel with per-run seeded isolation, per-run timeouts, and
  bounded retry on worker failure;
* :mod:`repro.campaign.preflight` — lint every cell's attack before any
  worker is spawned, rejecting defective cells with per-cell diagnostics
  in the result store;
* :mod:`repro.campaign.store` — an append-only JSONL
  :class:`ResultStore` keyed by run ID, so an interrupted campaign
  resumes by skipping completed runs;
* :mod:`repro.campaign.report` — aggregation into paper-style security
  metrics (throughput/latency deltas vs. a passthrough baseline,
  Table II unauthorized-access windows) and Fig. 10–12-style summaries.

The CLI front-end is ``repro campaign run|status|report``.
"""

from repro.campaign.preflight import (
    lint_descriptors,
    partition_pending,
    rejection_error,
)
from repro.campaign.report import CampaignReport, build_report
from repro.campaign.runner import (
    CampaignRunner,
    CampaignSummary,
    reset_run_state,
    run_campaign,
)
from repro.campaign.spec import (
    CampaignSpec,
    RunDescriptor,
    load_spec,
    run_id_for,
)
from repro.campaign.store import RECORD_SCHEMA, ResultStore, make_record

__all__ = [
    "CampaignReport",
    "CampaignRunner",
    "CampaignSpec",
    "CampaignSummary",
    "RECORD_SCHEMA",
    "ResultStore",
    "RunDescriptor",
    "build_report",
    "lint_descriptors",
    "load_spec",
    "make_record",
    "partition_pending",
    "rejection_error",
    "reset_run_state",
    "run_campaign",
    "run_id_for",
]
