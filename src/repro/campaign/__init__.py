"""Campaign orchestration: parallel attack-matrix runs with resume.

The paper's evaluation (§VII) is a matrix — attacks × controllers ×
fail modes — and this package is the machinery that runs such matrices
at scale:

* :mod:`repro.campaign.spec` — a declarative :class:`CampaignSpec`
  (Python dict, JSON, XML, or ``.py`` file) that expands the matrix into
  run descriptors with deterministic run IDs;
* :mod:`repro.campaign.runner` — a multiprocessing pool executing runs
  in parallel with per-run seeded isolation, per-run timeouts, and
  bounded retry on worker failure;
* :mod:`repro.campaign.scheduler` — the service shape of the pool: a
  long-lived :class:`CampaignScheduler` accepting specs while running,
  streaming each durable record to subscribers and a follow-mode JSONL
  tail, folding aggregates incrementally, and checkpointing the store;
* :mod:`repro.campaign.preflight` — lint every cell's attack before any
  worker is spawned, rejecting defective cells with per-cell diagnostics
  in the result store;
* :mod:`repro.campaign.store` — an append-only JSONL
  :class:`ResultStore` keyed by run ID, so an interrupted campaign
  resumes by skipping completed runs;
* :mod:`repro.campaign.shardstore` — the same ledger sharded across
  ``<store>.d/shard-NN.jsonl`` by run-ID hash, with a persisted resume
  index (O(new records) cold resume) and tombstone-policy compaction;
* :mod:`repro.campaign.aggregate` — per-cell streaming aggregates
  (count, mean, p50/p95 via a fixed-size quantile digest);
* :mod:`repro.campaign.report` — aggregation into paper-style security
  metrics (throughput/latency deltas vs. a passthrough baseline,
  Table II unauthorized-access windows) and Fig. 10–12-style summaries.

The CLI front-end is ``repro campaign
run|status|report|serve|watch|submit``.
"""

from repro.campaign.aggregate import (
    CampaignAggregator,
    CellAggregate,
    QuantileDigest,
)
from repro.campaign.preflight import (
    lint_descriptors,
    partition_pending,
    rejection_error,
)
from repro.campaign.report import CampaignReport, build_report
from repro.campaign.runner import (
    CampaignRunner,
    CampaignSummary,
    reset_run_state,
    run_campaign,
)
from repro.campaign.scheduler import (
    CampaignJob,
    CampaignScheduler,
    stream_path_for,
)
from repro.campaign.shardstore import (
    ShardedResultStore,
    is_sharded_path,
    open_store,
    shard_for,
)
from repro.campaign.spec import (
    CampaignSpec,
    RunDescriptor,
    load_spec,
    run_id_for,
)
from repro.campaign.store import RECORD_SCHEMA, ResultStore, make_record

__all__ = [
    "CampaignAggregator",
    "CampaignJob",
    "CampaignReport",
    "CampaignRunner",
    "CampaignScheduler",
    "CampaignSpec",
    "CampaignSummary",
    "CellAggregate",
    "QuantileDigest",
    "RECORD_SCHEMA",
    "ResultStore",
    "RunDescriptor",
    "ShardedResultStore",
    "build_report",
    "is_sharded_path",
    "lint_descriptors",
    "load_spec",
    "make_record",
    "open_store",
    "partition_pending",
    "rejection_error",
    "reset_run_state",
    "run_campaign",
    "run_id_for",
    "shard_for",
    "stream_path_for",
]
