"""Append-only JSONL result store keyed by deterministic run IDs.

One record per line; the file is the campaign's durable state.  Only the
campaign parent process writes (workers ship results back over pipes),
so appends need no cross-process locking; readers tolerate a torn final
line from a run that was killed mid-write.

``completed_ids`` is what makes campaigns resumable: re-running a spec
skips every run whose ID already has an ``"ok"`` record.  Failed records
stay in the file as an audit trail but do not mark the run complete, so
a resume retries them.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set

#: Schema tag stamped on every record (also emitted by the CLI ``--json``
#: modes, so single-shot runs and campaign runs share one format).
RECORD_SCHEMA = "attain.campaign.run.v1"


def make_record(
    descriptor: Dict[str, object],
    status: str,
    metrics: Optional[Dict[str, object]],
    attempts: int = 1,
    duration_s: float = 0.0,
    error: Optional[str] = None,
    campaign: Optional[str] = None,
    worker: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Build one store record from a run descriptor's ``to_dict()``.

    ``worker`` optionally carries pool observability (the executing
    worker's pid and its ``runs_executed`` count); absent for runs
    recorded outside a pool (single-shot CLI runs, pre-pool records).
    """
    record = {
        "schema": RECORD_SCHEMA,
        "run_id": descriptor["run_id"],
        "campaign": campaign,
        "experiment": descriptor["experiment"],
        "attack": descriptor.get("attack"),
        "controller": descriptor.get("controller"),
        "topology": descriptor.get("topology"),
        "fail_mode": descriptor.get("fail_mode"),
        "seed": descriptor.get("seed"),
        "params": descriptor.get("params") or {},
        "attack_params": descriptor.get("attack_params") or {},
        "status": status,
        "attempts": attempts,
        "duration_s": round(duration_s, 4),
        "error": error,
        "metrics": metrics,
    }
    if worker is not None:
        record["worker"] = worker
    return record


class ResultStore:
    """The campaign's JSONL ledger."""

    def __init__(self, path) -> None:
        self.path = Path(path)

    def __len__(self) -> int:
        return sum(1 for _ in self.records())

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #

    def append(self, record: Dict[str, object]) -> None:
        """Append one record (adds a wall-clock ``recorded_at`` stamp)."""
        payload = dict(record)
        payload.setdefault("recorded_at", round(time.time(), 3))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a+b") as handle:
            # Heal a torn final line (a run killed mid-write left no
            # newline): start this record on a line of its own so the
            # torn record stays the only casualty.
            handle.seek(0, 2)
            if handle.tell() > 0:
                handle.seek(-1, 2)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
            line = json.dumps(payload, sort_keys=True) + "\n"
            handle.write(line.encode("utf-8"))
            handle.flush()

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    def records(self) -> Iterator[Dict[str, object]]:
        """Yield every parseable record; skip torn/corrupt lines."""
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn write from an interrupted run
                if isinstance(record, dict):
                    yield record

    def latest_by_run(self) -> Dict[str, Dict[str, object]]:
        """The last record per run ID (later attempts supersede earlier)."""
        latest: Dict[str, Dict[str, object]] = {}
        for record in self.records():
            run_id = record.get("run_id")
            if isinstance(run_id, str):
                latest[run_id] = record
        return latest

    def completed_ids(self) -> Set[str]:
        """Run IDs with at least one successful record."""
        done: Set[str] = set()
        for record in self.records():
            if record.get("status") == "ok" and isinstance(
                    record.get("run_id"), str):
                done.add(record["run_id"])
        return done

    def ok_records(self) -> List[Dict[str, object]]:
        """The latest successful record per run ID, in file order."""
        latest_ok: Dict[str, Dict[str, object]] = {}
        for record in self.records():
            run_id = record.get("run_id")
            if record.get("status") == "ok" and isinstance(run_id, str):
                latest_ok[run_id] = record
        return list(latest_ok.values())
