"""Append-only JSONL result store keyed by deterministic run IDs.

One record per line; the file is the campaign's durable state.  Only the
campaign parent process writes (workers ship results back over pipes),
so appends need no cross-process locking; readers tolerate a torn final
line from a run that was killed mid-write.

``completed_ids`` is what makes campaigns resumable: re-running a spec
skips every run whose ID already has an ``"ok"`` record.  Failed records
stay in the file as an audit trail but do not mark the run complete, so
a resume retries them.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set

#: Schema tag stamped on every record (also emitted by the CLI ``--json``
#: modes, so single-shot runs and campaign runs share one format).
RECORD_SCHEMA = "attain.campaign.run.v1"


def make_record(
    descriptor: Dict[str, object],
    status: str,
    metrics: Optional[Dict[str, object]],
    attempts: int = 1,
    duration_s: float = 0.0,
    error: Optional[str] = None,
    campaign: Optional[str] = None,
    worker: Optional[Dict[str, object]] = None,
    sim_duration_s: Optional[float] = None,
    trace: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Build one store record from a run descriptor's ``to_dict()``.

    ``worker`` optionally carries pool observability (the executing
    worker's pid and its ``runs_executed`` count); absent for runs
    recorded outside a pool (single-shot CLI runs, pre-pool records).

    ``duration_s`` is the run's wall-clock duration; it is recorded both
    under its legacy name and explicitly as ``wall_duration_s``.
    ``sim_duration_s`` is the simulated horizon the run reached — taken
    from ``metrics["sim_duration_s"]`` when not given.  ``trace``
    optionally points at the run's exported trace artifact
    (``{"path": ..., "events": ...}``).
    """
    if sim_duration_s is None and metrics is not None:
        raw = metrics.get("sim_duration_s")
        if isinstance(raw, (int, float)):
            sim_duration_s = float(raw)
    record = {
        "schema": RECORD_SCHEMA,
        "run_id": descriptor["run_id"],
        "campaign": campaign,
        "experiment": descriptor["experiment"],
        "attack": descriptor.get("attack"),
        "controller": descriptor.get("controller"),
        "topology": descriptor.get("topology"),
        "fail_mode": descriptor.get("fail_mode"),
        "seed": descriptor.get("seed"),
        "params": descriptor.get("params") or {},
        "attack_params": descriptor.get("attack_params") or {},
        "status": status,
        "attempts": attempts,
        "duration_s": round(duration_s, 4),
        "wall_duration_s": round(duration_s, 4),
        "sim_duration_s": (
            round(sim_duration_s, 6) if sim_duration_s is not None else None
        ),
        "error": error,
        "metrics": metrics,
    }
    if worker is not None:
        record["worker"] = worker
    if trace is not None:
        record["trace"] = trace
    return record


class ResultStore:
    """The campaign's JSONL ledger."""

    def __init__(self, path) -> None:
        self.path = Path(path)

    def __len__(self) -> int:
        return sum(1 for _ in self.records())

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #

    @staticmethod
    def _terminate_tail(handle) -> bool:
        """Newline-terminate a torn final line; True if healing happened.

        A parent killed mid-append leaves a record fragment with no
        trailing newline.  Starting the next record on a line of its own
        keeps the torn record the only casualty: the fragment never
        parses as JSON (``records`` skips it), so a resume neither
        mis-skips the interrupted run nor double-counts a healthy one.
        """
        handle.seek(0, 2)
        if handle.tell() == 0:
            return False
        handle.seek(-1, 2)
        if handle.read(1) == b"\n":
            return False
        handle.write(b"\n")
        return True

    def heal(self) -> bool:
        """Explicitly repair a torn final line; True if a repair happened."""
        if not self.path.exists():
            return False
        with self.path.open("a+b") as handle:
            return self._terminate_tail(handle)

    def append(self, record: Dict[str, object]) -> None:
        """Append one record (adds a wall-clock ``recorded_at`` stamp)."""
        payload = dict(record)
        payload.setdefault("recorded_at", round(time.time(), 3))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a+b") as handle:
            self._terminate_tail(handle)
            line = json.dumps(payload, sort_keys=True) + "\n"
            handle.write(line.encode("utf-8"))
            handle.flush()

    # ------------------------------------------------------------------ #
    # Trace artifacts
    # ------------------------------------------------------------------ #

    @property
    def traces_dir(self) -> Path:
        """Directory holding per-run trace exports (``<store>.traces/``)."""
        return self.path.with_name(self.path.name + ".traces")

    def trace_path(self, run_id: str) -> Path:
        return self.traces_dir / f"{run_id}.jsonl"

    def write_trace(self, run_id: str, jsonl: str) -> Path:
        """Persist one run's trace JSONL next to the ledger (parent-only)."""
        path = self.trace_path(run_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        if jsonl and not jsonl.endswith("\n"):
            jsonl += "\n"
        path.write_text(jsonl, encoding="utf-8")
        return path

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    def records(self) -> Iterator[Dict[str, object]]:
        """Yield every parseable record; skip torn/corrupt lines."""
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn write from an interrupted run
                if isinstance(record, dict):
                    yield record

    def latest_by_run(self) -> Dict[str, Dict[str, object]]:
        """The last record per run ID (later attempts supersede earlier)."""
        latest: Dict[str, Dict[str, object]] = {}
        for record in self.records():
            run_id = record.get("run_id")
            if isinstance(run_id, str):
                latest[run_id] = record
        return latest

    def completed_ids(self) -> Set[str]:
        """Run IDs with at least one successful record."""
        done: Set[str] = set()
        for record in self.records():
            if record.get("status") == "ok" and isinstance(
                    record.get("run_id"), str):
                done.add(record["run_id"])
        return done

    def ok_records(self) -> List[Dict[str, object]]:
        """The latest successful record per run ID, in file order."""
        latest_ok: Dict[str, Dict[str, object]] = {}
        for record in self.records():
            run_id = record.get("run_id")
            if record.get("status") == "ok" and isinstance(run_id, str):
                latest_ok[run_id] = record
        return list(latest_ok.values())
