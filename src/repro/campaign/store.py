"""Append-only JSONL result store keyed by deterministic run IDs.

One record per line; the file is the campaign's durable state.  Only the
campaign parent process writes (workers ship results back over pipes),
so appends need no cross-process locking; readers tolerate a torn final
line from a run that was killed mid-write.

``completed_ids`` is what makes campaigns resumable: re-running a spec
skips every run whose ID already has an ``"ok"`` record.  Failed records
stay in the file as an audit trail but do not mark the run complete, so
a resume retries them.  ``"retried"`` records are pure audit (where the
wall-clock of a flaky run went) and never mark a run complete either.

Reads are incremental: the store keeps an in-memory index (completed
IDs, latest record per run, latest-ok per run) fed by a byte-offset
tail, so repeated ``completed_ids()``/``latest_by_run()`` calls cost
O(new records) instead of re-parsing the whole ledger.  A file that
shrinks under the index (rewritten by an external tool) invalidates the
tail and triggers a full rebuild.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set

#: Schema tag stamped on every record (also emitted by the CLI ``--json``
#: modes, so single-shot runs and campaign runs share one format).
RECORD_SCHEMA = "attain.campaign.run.v1"

#: Statuses that mark a run as done for resume purposes.  ``"failed"``
#: and ``"retried"`` records are audit trail only.
_OK = "ok"


def make_record(
    descriptor: Dict[str, object],
    status: str,
    metrics: Optional[Dict[str, object]],
    attempts: int = 1,
    duration_s: float = 0.0,
    error: Optional[str] = None,
    campaign: Optional[str] = None,
    worker: Optional[Dict[str, object]] = None,
    sim_duration_s: Optional[float] = None,
    trace: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Build one store record from a run descriptor's ``to_dict()``.

    ``worker`` optionally carries pool observability (the executing
    worker's pid and its ``runs_executed`` count); absent for runs
    recorded outside a pool (single-shot CLI runs, pre-pool records).

    ``duration_s`` is the run's wall-clock duration; it is recorded both
    under its legacy name and explicitly as ``wall_duration_s``.
    ``sim_duration_s`` is the simulated horizon the run reached — taken
    from ``metrics["sim_duration_s"]`` when not given.  ``trace``
    optionally points at the run's exported trace artifact
    (``{"path": ..., "events": ...}``).
    """
    if sim_duration_s is None and metrics is not None:
        raw = metrics.get("sim_duration_s")
        if isinstance(raw, (int, float)):
            sim_duration_s = float(raw)
    record = {
        "schema": RECORD_SCHEMA,
        "run_id": descriptor["run_id"],
        "campaign": campaign,
        "experiment": descriptor["experiment"],
        "attack": descriptor.get("attack"),
        "controller": descriptor.get("controller"),
        "topology": descriptor.get("topology"),
        "fail_mode": descriptor.get("fail_mode"),
        "seed": descriptor.get("seed"),
        "params": descriptor.get("params") or {},
        "attack_params": descriptor.get("attack_params") or {},
        "status": status,
        "attempts": attempts,
        "duration_s": round(duration_s, 4),
        "wall_duration_s": round(duration_s, 4),
        "sim_duration_s": (
            round(sim_duration_s, 6) if sim_duration_s is not None else None
        ),
        "error": error,
        "metrics": metrics,
    }
    if worker is not None:
        record["worker"] = worker
    if trace is not None:
        record["trace"] = trace
    return record


def iter_jsonl(path: Path) -> Iterator[Dict[str, object]]:
    """Yield every parseable dict record in ``path``; skip torn lines."""
    if not path.exists():
        return
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write from an interrupted run
            if isinstance(record, dict):
                yield record


#: Bytes of consumed suffix remembered to detect in-place rewrites.
_TAIL_FINGERPRINT = 32


class _JsonlTail:
    """Incremental reader over one append-only JSONL file.

    Tracks a byte offset and parses only the complete (newline
    terminated) lines appended since the previous call, so derived
    indexes cost O(new records) to refresh.  A torn final line is left
    unconsumed — once ``_terminate_tail`` heals it the fragment reads as
    one unparseable line and is skipped.

    Rewrites are detected two ways: a file smaller than the offset, and
    a fingerprint mismatch on the last consumed bytes (catches a file
    rewritten to a similar-or-larger size, e.g. a truncate-then-append
    interleaving).  Either invalidates the tail so the caller rebuilds
    derived state from scratch.
    """

    __slots__ = ("path", "offset", "fingerprint")

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self.offset = 0
        self.fingerprint = b""

    def size(self) -> int:
        try:
            return self.path.stat().st_size
        except OSError:
            return 0

    def invalidated(self) -> bool:
        if self.size() < self.offset:
            return True
        if self.offset == 0:
            return False
        start = max(0, self.offset - _TAIL_FINGERPRINT)
        try:
            with self.path.open("rb") as handle:
                handle.seek(start)
                return handle.read(self.offset - start) != self.fingerprint
        except OSError:
            return True

    def reset(self) -> None:
        self.offset = 0
        self.fingerprint = b""

    def read_new(self) -> Iterator[Dict[str, object]]:
        try:
            handle = self.path.open("rb")
        except OSError:
            return
        with handle:
            handle.seek(self.offset)
            while True:
                line = handle.readline()
                if not line or not line.endswith(b"\n"):
                    break  # torn tail: stays unconsumed until healed
                self.offset += len(line)
                text = line.strip()
                if not text:
                    continue
                try:
                    record = json.loads(text)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict):
                    yield record
            start = max(0, self.offset - _TAIL_FINGERPRINT)
            handle.seek(start)
            self.fingerprint = handle.read(self.offset - start)


class ResultStore:
    """The campaign's JSONL ledger."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._tail = _JsonlTail(self.path)
        self._count = 0
        self._completed: Set[str] = set()
        self._latest: Dict[str, Dict[str, object]] = {}
        # Insertion order tracks the *latest* ok occurrence per run:
        # ``_fold`` re-inserts on every ok record (move-to-end), which is
        # what makes ``ok_records`` honour its file-order contract.
        self._ok: Dict[str, Dict[str, object]] = {}

    def __len__(self) -> int:
        self._refresh()
        return self._count

    # ------------------------------------------------------------------ #
    # Incremental index
    # ------------------------------------------------------------------ #

    def _refresh(self) -> None:
        """Fold records appended since the last read into the index."""
        if self._tail.invalidated():
            self._tail.reset()
            self._count = 0
            self._completed.clear()
            self._latest.clear()
            self._ok.clear()
        for record in self._tail.read_new():
            self._fold(record)

    def _fold(self, record: Dict[str, object]) -> None:
        self._count += 1
        run_id = record.get("run_id")
        if not isinstance(run_id, str):
            return
        self._latest[run_id] = record
        if record.get("status") == _OK:
            self._completed.add(run_id)
            # Re-insert so dict order follows the latest ok occurrence's
            # position in the file, not the first one's.
            self._ok.pop(run_id, None)
            self._ok[run_id] = record

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #

    @staticmethod
    def _terminate_tail(handle) -> bool:
        """Newline-terminate a torn final line; True if healing happened.

        A parent killed mid-append leaves a record fragment with no
        trailing newline.  Starting the next record on a line of its own
        keeps the torn record the only casualty: the fragment never
        parses as JSON (``records`` skips it), so a resume neither
        mis-skips the interrupted run nor double-counts a healthy one.
        """
        handle.seek(0, 2)
        if handle.tell() == 0:
            return False
        handle.seek(-1, 2)
        if handle.read(1) == b"\n":
            return False
        handle.write(b"\n")
        return True

    def heal(self) -> bool:
        """Explicitly repair a torn final line; True if a repair happened."""
        if not self.path.exists():
            return False
        with self.path.open("a+b") as handle:
            return self._terminate_tail(handle)

    def append(self, record: Dict[str, object]) -> Dict[str, object]:
        """Append one record (adds a wall-clock ``recorded_at`` stamp).

        Returns the payload as written, so streaming callers can fan the
        exact durable record out to subscribers.
        """
        payload = dict(record)
        payload.setdefault("recorded_at", round(time.time(), 3))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a+b") as handle:
            self._terminate_tail(handle)
            line = json.dumps(payload, sort_keys=True) + "\n"
            handle.write(line.encode("utf-8"))
            handle.flush()
        return payload

    # ------------------------------------------------------------------ #
    # Trace artifacts
    # ------------------------------------------------------------------ #

    @property
    def traces_dir(self) -> Path:
        """Directory holding per-run trace exports (``<store>.traces/``)."""
        return self.path.with_name(self.path.name + ".traces")

    def trace_path(self, run_id: str) -> Path:
        return self.traces_dir / f"{run_id}.jsonl"

    def write_trace(self, run_id: str, jsonl: str) -> Path:
        """Persist one run's trace JSONL next to the ledger (parent-only)."""
        path = self.trace_path(run_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        if jsonl and not jsonl.endswith("\n"):
            jsonl += "\n"
        path.write_text(jsonl, encoding="utf-8")
        return path

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    def records(self) -> Iterator[Dict[str, object]]:
        """Yield every parseable record; skip torn/corrupt lines."""
        yield from iter_jsonl(self.path)

    def latest_by_run(self) -> Dict[str, Dict[str, object]]:
        """The last record per run ID (later attempts supersede earlier)."""
        self._refresh()
        return dict(self._latest)

    def completed_ids(self) -> Set[str]:
        """Run IDs with at least one successful record."""
        self._refresh()
        return set(self._completed)

    def ok_records(self) -> List[Dict[str, object]]:
        """The latest successful record per run ID, in file order.

        "File order" follows the position of the *latest* ok record per
        run: a run re-executed after later runs moves to the end, as the
        ledger says it should.
        """
        self._refresh()
        return list(self._ok.values())
