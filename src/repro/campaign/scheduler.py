"""Long-lived campaign scheduler: the service shape of the runner.

:class:`CampaignScheduler` owns the persistent worker pool that
:class:`~repro.campaign.runner.CampaignRunner` previously drove for a
single spec, and generalises it to service use:

* **submit while running** — new specs join the queue without draining
  the pool; workers stay warm across campaigns;
* **streaming** — every durable record fans out, as written, to
  registered callbacks and an append-only events JSONL file that
  ``repro campaign watch`` tails;
* **incremental aggregation** — an optional
  :class:`~repro.campaign.aggregate.CampaignAggregator` folds each
  record into per-cell digests, so serving never re-reads the ledger;
* **checkpointing** — sharded stores get a resume-index checkpoint (and
  a tombstone-policy compaction probe) every ``checkpoint_every``
  records.

Fault handling is the runner's, with two long-service bugs fixed here:
a worker whose idle hand-off fails is fully reaped (``join`` + parent
pipe end closed) instead of leaking a zombie, and every retried attempt
leaves a ``status="retried"`` audit record so the ledger explains where
campaign wall-clock went.  ``completed_ids``/``ok_records`` ignore
those records; only ``"ok"`` marks a run complete.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Deque, Dict, List, Optional

from repro.campaign.runner import (
    _POLL_INTERVAL_S,
    _SHUTDOWN_GRACE_S,
    CampaignSummary,
    _worker_loop,
)
from repro.campaign.spec import CampaignSpec, RunDescriptor, load_spec
from repro.campaign.store import make_record

#: Sleep between idle serve-loop sweeps (inbox scan + pool poll).
_SERVE_IDLE_POLL_S = 0.05

#: Spec file suffixes the serve inbox accepts.
_SPEC_SUFFIXES = {".xml", ".json", ".py"}


def stream_path_for(store) -> Path:
    """Default follow-mode events file for a store (either flavour)."""
    events = getattr(store, "events_path", None)
    if events is not None:
        return Path(events)
    path = Path(store.path)
    return path.with_name(path.name + ".events.jsonl")


@dataclass
class CampaignJob:
    """One submitted spec's lifecycle inside the scheduler."""

    spec: CampaignSpec
    summary: CampaignSummary
    timeout_s: float
    retries: int
    trace: bool
    preflight: bool
    started_at: float
    remaining: int = 0
    done: bool = False
    spawned_at_submit: int = 0


@dataclass
class _JobTask:
    job: CampaignJob
    descriptor: RunDescriptor
    attempt: int
    last_error: Optional[str] = None


@dataclass
class _WorkerSlot:
    """One pooled worker process and the task it is executing (if any)."""

    process: object
    conn: object
    runs_done: int = 0
    task: Optional[_JobTask] = None
    started_at: float = 0.0
    deadline: float = 0.0

    @property
    def busy(self) -> bool:
        return self.task is not None


class CampaignScheduler:
    """Schedules submitted specs over one persistent process pool."""

    def __init__(
        self,
        store,
        workers: int = 1,
        mp_context=None,
        progress: Optional[Callable[[str], None]] = None,
        trace: bool = False,
        preflight: bool = True,
        aggregator=None,
        stream_path=None,
        checkpoint_every: int = 64,
    ) -> None:
        import multiprocessing

        self.store = store
        self.workers = max(1, int(workers))
        self.trace = bool(trace)
        self.preflight = bool(preflight)
        self.aggregator = aggregator
        self.checkpoint_every = int(checkpoint_every)
        self._progress = progress or (lambda line: None)
        if mp_context is None or isinstance(mp_context, str):
            self._ctx = multiprocessing.get_context(mp_context)
        else:
            self._ctx = mp_context
        self._queue: Deque[_JobTask] = deque()
        self._slots: List[_WorkerSlot] = []
        self._jobs: List[CampaignJob] = []
        self._subscribers: List[Callable[[Dict[str, object]], None]] = []
        self._stream_path = Path(stream_path) if stream_path else None
        self._stream_handle = None
        self._records_since_checkpoint = 0
        self._closed = False
        #: Pool-wide observability (the per-job summaries snapshot these).
        self.processes_spawned = 0
        self.worker_runs: Dict[str, int] = {}
        #: Wall-clock spent on streaming/aggregation/checkpointing — the
        #: scheduler's overhead on top of plain runner execution.
        self.stream_seconds = 0.0

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #

    @property
    def jobs(self) -> List[CampaignJob]:
        return list(self._jobs)

    def subscribe(
            self, callback: Callable[[Dict[str, object]], None]) -> None:
        """Register a callback invoked with every durable record."""
        self._subscribers.append(callback)

    def submit(
        self,
        spec: CampaignSpec,
        timeout_s: Optional[float] = None,
        retries: Optional[int] = None,
        trace: Optional[bool] = None,
        preflight: Optional[bool] = None,
    ) -> CampaignJob:
        """Queue a spec's pending runs; returns immediately.

        Safe to call while the pool is mid-campaign: the new job's tasks
        queue behind the current ones and reuse the warm workers.
        """
        descriptors = spec.expand()
        completed = self.store.completed_ids()
        pending = [d for d in descriptors if d.run_id not in completed]
        job = CampaignJob(
            spec=spec,
            summary=CampaignSummary(
                campaign=spec.name,
                total=len(descriptors),
                skipped=len(descriptors) - len(pending),
            ),
            timeout_s=float(timeout_s if timeout_s is not None
                            else spec.timeout_s),
            retries=int(retries if retries is not None else spec.retries),
            trace=bool(self.trace if trace is None else trace),
            preflight=bool(self.preflight if preflight is None
                           else preflight),
            started_at=time.time(),
            spawned_at_submit=self.processes_spawned,
        )
        if job.summary.skipped:
            self._progress(
                f"resume: skipping {job.summary.skipped} completed run(s)")
        if job.preflight and pending:
            pending = self._preflight(job, pending)
        job.remaining = len(pending)
        for descriptor in pending:
            self._queue.append(_JobTask(job, descriptor, attempt=1))
        self._jobs.append(job)
        if job.remaining == 0:
            self._finalize(job)
        return job

    def _preflight(self, job: CampaignJob,
                   pending: List[RunDescriptor]) -> List[RunDescriptor]:
        """Lint pending cells; record and drop the rejects before any
        worker process exists."""
        from repro.campaign.preflight import partition_pending, rejection_error

        summary = job.summary
        runnable, rejected = partition_pending(pending)
        for descriptor, report in rejected:
            error = rejection_error(report)
            summary.executed += 1
            summary.failed += 1
            summary.lint_rejected += 1
            summary.failed_run_ids.append(descriptor.run_id)
            self._record(job, make_record(
                descriptor.to_dict(), "failed", None,
                attempts=0, duration_s=0.0, error=error,
                campaign=job.spec.name,
            ))
            self._progress(
                f"run {descriptor.run_id} [{descriptor.label()}] "
                f"REJECTED by lint pre-flight: {report.errors[0].render()}")
        return runnable

    # ------------------------------------------------------------------ #
    # Pool loop
    # ------------------------------------------------------------------ #

    @property
    def idle(self) -> bool:
        return not self._queue and not any(s.busy for s in self._slots)

    def step(self) -> bool:
        """One scheduling sweep; False when nothing is queued or running."""
        self._assign()
        if self.idle:
            return False
        time.sleep(_POLL_INTERVAL_S)
        for slot in list(self._slots):
            outcome = self._poll(slot)
            if outcome is None:
                continue
            dead = not slot.process.is_alive()
            if dead:
                self._slots.remove(slot)  # replaced lazily by _assign
            retry = self._settle(slot, outcome)
            if dead:
                self._reap(slot)
            if retry is not None:
                self._queue.appendleft(retry)  # retries run first
        return True

    def run_until_idle(self) -> List[CampaignJob]:
        """Drain the queue and every in-flight run; pool stays warm."""
        while True:
            self._assign()
            if self.idle:
                break
            self.step()
        return self.jobs

    def serve(
        self,
        inbox=None,
        idle_exit_s: Optional[float] = None,
        stop: Optional[Callable[[], bool]] = None,
    ) -> List[CampaignJob]:
        """Run as a service: poll the pool and (optionally) an inbox.

        ``inbox`` is a spool directory: spec files (.xml/.json/.py)
        dropped there are loaded, submitted, and moved to ``done/``
        (``failed/`` when they do not load).  With ``idle_exit_s`` the
        loop exits after that many seconds of a drained pool and empty
        inbox; otherwise it serves until ``stop()`` returns True.
        Shuts the pool down on exit.
        """
        inbox_path = Path(inbox) if inbox else None
        idle_since: Optional[float] = None
        try:
            while True:
                if stop is not None and stop():
                    break
                if inbox_path is not None and self._scan_inbox(inbox_path):
                    idle_since = None
                self._assign()
                if not self.idle:
                    idle_since = None
                    self.step()
                    continue
                now = time.time()
                if idle_exit_s is not None:
                    if idle_since is None:
                        idle_since = now
                    elif now - idle_since >= idle_exit_s:
                        break
                time.sleep(_SERVE_IDLE_POLL_S)
        finally:
            self.shutdown()
        return self.jobs

    def _scan_inbox(self, inbox: Path) -> int:
        """Ingest queued spec files; returns how many were submitted."""
        if not inbox.is_dir():
            return 0
        submitted = 0
        for path in sorted(inbox.iterdir()):
            if not path.is_file() or path.suffix.lower() not in _SPEC_SUFFIXES:
                continue
            try:
                spec = load_spec(path)
            except Exception as exc:  # noqa: BLE001 - spool must survive
                self._progress(f"inbox: rejected {path.name}: {exc}")
                self._move_into(path, inbox / "failed")
                continue
            self._move_into(path, inbox / "done")
            self.submit(spec)
            self._progress(f"inbox: submitted {path.name} "
                           f"(campaign {spec.name})")
            submitted += 1
        return submitted

    @staticmethod
    def _move_into(path: Path, dest_dir: Path) -> None:
        import os

        dest_dir.mkdir(parents=True, exist_ok=True)
        target = dest_dir / path.name
        serial = 1
        while target.exists():
            target = dest_dir / f"{path.stem}.{serial}{path.suffix}"
            serial += 1
        os.replace(path, target)

    # ------------------------------------------------------------------ #
    # Worker pool (runner fault semantics + zombie fixes)
    # ------------------------------------------------------------------ #

    def _assign(self) -> None:
        """Hand queued tasks to idle workers, spawning up to the cap."""
        while self._queue:
            slot = next((s for s in self._slots if not s.busy), None)
            if slot is None:
                if len(self._slots) >= self.workers:
                    return
                slot = self._spawn()
                self._slots.append(slot)
            task = self._queue.popleft()
            try:
                slot.conn.send((task.descriptor.identity(), task.attempt,
                                task.job.trace))
            except (BrokenPipeError, OSError):
                # The idle worker died between runs: reap it fully (join
                # the corpse, close our pipe end — leaking either is the
                # zombie bug) and retry the hand-off on a fresh worker.
                self._slots.remove(slot)
                self._reap(slot)
                self._queue.appendleft(task)
                continue
            now = time.time()
            slot.task = task
            slot.started_at = now
            slot.deadline = now + task.job.timeout_s
            self._progress(
                f"run {task.descriptor.run_id} [{task.descriptor.label()}] "
                f"attempt {task.attempt} started (pid {slot.process.pid})")

    def _spawn(self) -> _WorkerSlot:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_loop, args=(child_conn,), daemon=True,
        )
        process.start()
        child_conn.close()  # parent keeps only its own end
        self.processes_spawned += 1
        return _WorkerSlot(process=process, conn=parent_conn)

    def _reap(self, slot: _WorkerSlot) -> None:
        """Fully retire a dead/dying worker: no zombie, no leaked fd."""
        if slot.process.is_alive():
            slot.process.terminate()
        slot.process.join()
        try:
            slot.conn.close()
        except OSError:
            pass

    def _poll(self, slot: _WorkerSlot) -> Optional[Dict[str, object]]:
        """None while running; otherwise this attempt's outcome dict."""
        if not slot.busy:
            return None
        # Results are honoured before liveness: a worker that reported
        # and then exited still completed its run.
        try:
            if slot.conn.poll():
                return slot.conn.recv()
        except (EOFError, OSError):
            pass
        if not slot.process.is_alive():
            slot.process.join()
            return {"status": "error",
                    "error": f"worker crashed "
                             f"(exit code {slot.process.exitcode})"}
        if time.time() >= slot.deadline:
            slot.process.terminate()
            slot.process.join()
            return {"status": "error",
                    "error": f"timeout after "
                             f"{slot.task.job.timeout_s:.1f}s"}
        return None

    def _settle(self, slot: _WorkerSlot,
                outcome: Dict[str, object]) -> Optional[_JobTask]:
        """Record a finished attempt; return the retry task if any."""
        task = slot.task
        slot.task = None
        job = task.job
        summary = job.summary
        duration = time.time() - slot.started_at
        descriptor = task.descriptor
        worker_key = str(slot.process.pid)
        if outcome.get("status") == "ok":
            slot.runs_done = int(
                outcome.get("worker_runs") or slot.runs_done + 1)
            summary.worker_runs[worker_key] = slot.runs_done
            self.worker_runs[worker_key] = slot.runs_done
            summary.executed += 1
            summary.succeeded += 1
            summary.retries_used += task.attempt - 1
            trace_info = None
            trace_jsonl = outcome.get("trace_jsonl")
            if isinstance(trace_jsonl, str):
                # Only the parent touches the store directory: workers
                # ship trace JSONL back over the pipe like any result.
                path = self.store.write_trace(descriptor.run_id, trace_jsonl)
                trace_info = {"path": str(path),
                              "events": int(outcome.get("trace_events") or 0)}
            self._record(job, make_record(
                descriptor.to_dict(), "ok", outcome.get("metrics"),
                attempts=task.attempt, duration_s=duration,
                campaign=job.spec.name,
                worker={"pid": slot.process.pid,
                        "runs_executed": slot.runs_done},
                trace=trace_info,
            ))
            self._progress(
                f"run {descriptor.run_id} ok "
                f"(attempt {task.attempt}, {duration:.2f}s)")
            self._task_done(job)
            return None
        if "worker_runs" in outcome:
            slot.runs_done = int(outcome["worker_runs"])
            summary.worker_runs[worker_key] = slot.runs_done
            self.worker_runs[worker_key] = slot.runs_done
        error = str(outcome.get("error") or "unknown failure").strip()
        if task.attempt <= job.retries:
            # Audit where the wall-clock went: the attempt's duration and
            # error would otherwise vanish with the retry.  Pure audit —
            # never marks the run complete, and resume ignores it.
            self._record(job, make_record(
                descriptor.to_dict(), "retried", None,
                attempts=task.attempt, duration_s=duration, error=error,
                campaign=job.spec.name,
                worker={"pid": slot.process.pid,
                        "runs_executed": slot.runs_done},
            ))
            self._progress(
                f"run {descriptor.run_id} attempt {task.attempt} failed "
                f"({error.splitlines()[-1]}); retrying")
            return _JobTask(job, descriptor, task.attempt + 1,
                            last_error=error)
        summary.executed += 1
        summary.failed += 1
        summary.retries_used += task.attempt - 1
        summary.failed_run_ids.append(descriptor.run_id)
        self._record(job, make_record(
            descriptor.to_dict(), "failed", None,
            attempts=task.attempt, duration_s=duration, error=error,
            campaign=job.spec.name,
            worker={"pid": slot.process.pid,
                    "runs_executed": slot.runs_done},
        ))
        self._progress(
            f"run {descriptor.run_id} FAILED after {task.attempt} "
            f"attempt(s): {error.splitlines()[-1]}")
        self._task_done(job)
        return None

    def _task_done(self, job: CampaignJob) -> None:
        job.remaining -= 1
        if job.remaining <= 0 and not job.done:
            self._finalize(job)

    def _finalize(self, job: CampaignJob) -> None:
        job.done = True
        job.summary.duration_s = time.time() - job.started_at
        job.summary.processes_spawned = (
            self.processes_spawned - job.spawned_at_submit)
        self._progress(job.summary.render())

    # ------------------------------------------------------------------ #
    # Streaming + checkpointing
    # ------------------------------------------------------------------ #

    def _record(self, job: CampaignJob,
                record: Dict[str, object]) -> Dict[str, object]:
        """Durably append one record, then fan it out as written."""
        payload = self.store.append(record)
        streamed_at = time.perf_counter()
        for callback in self._subscribers:
            try:
                callback(payload)
            except Exception as exc:  # noqa: BLE001 - never kill the pool
                self._progress(f"stream subscriber error: {exc}")
        if self._stream_path is not None:
            if self._stream_handle is None:
                self._stream_path.parent.mkdir(parents=True, exist_ok=True)
                self._stream_handle = self._stream_path.open(
                    "a", encoding="utf-8")
            self._stream_handle.write(
                json.dumps(payload, sort_keys=True) + "\n")
            self._stream_handle.flush()
        if self.aggregator is not None:
            self.aggregator.fold(payload)
        self._records_since_checkpoint += 1
        if (self.checkpoint_every > 0
                and self._records_since_checkpoint >= self.checkpoint_every):
            self._checkpoint_store()
        self.stream_seconds += time.perf_counter() - streamed_at
        return payload

    def _checkpoint_store(self) -> None:
        self._records_since_checkpoint = 0
        checkpoint = getattr(self.store, "checkpoint", None)
        if checkpoint is None:
            return
        checkpoint()
        compacted = self.store.maybe_compact()
        if compacted is not None:
            self._progress(
                f"store compacted: kept {compacted['kept']} record(s), "
                f"archived {compacted['archived']} "
                f"(generation {compacted['generation']})")

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #

    def shutdown(self) -> None:
        """Stop every worker: graceful for idle ones, terminate the rest.

        Idempotent.  Joins every child and closes every parent pipe end
        so a long-lived service neither accumulates zombies nor leaks
        fds across campaign generations.
        """
        if self._closed:
            return
        self._closed = True
        slots, self._slots = self._slots, []
        for slot in slots:
            if not slot.busy and slot.process.is_alive():
                try:
                    slot.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
        deadline = time.time() + _SHUTDOWN_GRACE_S
        for slot in slots:
            if slot.busy and slot.process.is_alive():
                # Interrupted mid-run: don't leak the worker.
                slot.process.terminate()
            slot.process.join(timeout=max(0.0, deadline - time.time()))
            if slot.process.is_alive():
                slot.process.terminate()
                slot.process.join()
            try:
                slot.conn.close()
            except OSError:
                pass
            if slot.process.pid is not None and slot.runs_done:
                self.worker_runs.setdefault(
                    str(slot.process.pid), slot.runs_done)
        if self._stream_handle is not None:
            self._stream_handle.close()
            self._stream_handle = None
        checkpoint = getattr(self.store, "checkpoint", None)
        if checkpoint is not None:
            checkpoint()
