"""Aggregation of campaign records into paper-style security metrics.

Records group into *cells* — (experiment, attack, controller, topology,
fail mode) — aggregating over seeds.  For throughput/latency harnesses
the report computes deltas against the campaign's baseline attack (the
Fig. 5 passthrough by default): the Fig. 11 story told as numbers.  For
the interruption harness it reports Table II's security metrics —
unauthorized-access rate and window, denial of service — per cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.campaign.spec import CampaignSpec

CellKey = Tuple[str, Optional[str], str, str, str]


def _mean(values: List[float]) -> Optional[float]:
    return sum(values) / len(values) if values else None


@dataclass
class CellSummary:
    """One aggregated matrix cell."""

    experiment: str
    attack: Optional[str]
    controller: str
    topology: str
    fail_mode: str
    seeds: List[int] = field(default_factory=list)
    n_runs: int = 0
    n_ok: int = 0
    n_failed: int = 0
    metrics: Dict[str, object] = field(default_factory=dict)
    deltas: Dict[str, object] = field(default_factory=dict)
    is_baseline: bool = False
    #: Optional per-cell streaming digests (``build_report(digests=True)``):
    #: count/mean/p50/p95 per numeric metric plus attempt accounting.
    digests: Dict[str, object] = field(default_factory=dict)

    @property
    def key(self) -> CellKey:
        return (self.experiment, self.attack, self.controller,
                self.topology, self.fail_mode)

    def to_dict(self) -> Dict[str, object]:
        return {
            "experiment": self.experiment,
            "attack": self.attack,
            "controller": self.controller,
            "topology": self.topology,
            "fail_mode": self.fail_mode,
            "seeds": sorted(self.seeds),
            "n_runs": self.n_runs,
            "n_ok": self.n_ok,
            "n_failed": self.n_failed,
            "is_baseline": self.is_baseline,
            "metrics": self.metrics,
            "deltas": self.deltas,
            # Omitted entirely when digests were not requested, so the
            # default JSON output stays byte-identical.
            **({"digests": self.digests} if self.digests else {}),
        }


def _aggregate_cell(cell: CellSummary,
                    records: List[Dict[str, object]]) -> None:
    """Fill ``cell.metrics`` from its runs' metric payloads."""
    payloads = [r.get("metrics") or {} for r in records
                if r.get("status") == "ok"]
    if not payloads:
        return

    def series(name: str) -> List[float]:
        return [float(p[name]) for p in payloads
                if isinstance(p.get(name), (int, float))
                and not isinstance(p.get(name), bool)]

    def rate(name: str) -> float:
        hits = sum(1 for p in payloads if p.get(name) is True)
        return hits / len(payloads)

    metrics: Dict[str, object] = {}
    if cell.experiment in ("suppression", "interruption"):
        metrics["denial_of_service_rate"] = rate("denial_of_service")
        metrics["unauthorized_access_rate"] = rate("unauthorized_access")
    if cell.experiment == "suppression":
        metrics["throughput_mbps"] = _mean(series("throughput_mbps"))
        metrics["median_rtt_ms"] = _mean(series("median_rtt_ms"))
        metrics["avg_rtt_ms"] = _mean(series("avg_rtt_ms"))
        metrics["ping_loss"] = _mean(series("ping_loss"))
        metrics["packet_ins"] = _mean(series("packet_ins"))
        metrics["flow_mods_dropped"] = _mean(series("flow_mods_dropped"))
    elif cell.experiment == "interruption":
        metrics["unauthorized_window_s"] = _mean(
            series("unauthorized_window_s"))
        metrics["interruption_rate"] = rate("interruption_happened")
        metrics["external_to_internal_rate"] = rate("external_to_internal_t50")
        metrics["post_attack_external_reach_rate"] = rate(
            "internal_to_external_t95")
    elif cell.experiment == "compliance":
        metrics["checks_total"] = _mean(series("checks_total"))
        metrics["checks_passed"] = _mean(series("checks_passed"))
        metrics["all_passed_rate"] = rate("all_passed")
    elif cell.experiment in ("fabric", "workload"):
        # Table-pressure and PACKET_IN-storm metrics (PR 7 workloads).
        metrics["packets_synthesized"] = _mean(series("packets_synthesized"))
        metrics["packets_delivered"] = _mean(series("packets_delivered"))
        metrics["delivery_rate"] = _mean(series("delivery_rate"))
        metrics["packet_in_rate"] = _mean(series("packet_in_rate"))
        metrics["table_occupancy_peak"] = _mean(series("table_occupancy_peak"))
        metrics["evictions_capacity"] = _mean(series("evictions_capacity"))
        metrics["evictions_idle"] = _mean(series("evictions_idle"))
        metrics["evictions_hard"] = _mean(series("evictions_hard"))
        metrics["flow_mods_seen"] = _mean(series("flow_mods_seen"))
        metrics["median_rtt_ms"] = _mean(series("median_rtt_ms"))
        # Defense-plane scores (PR 9): present only when the cell ran
        # with detectors; None-valued scores are filtered out below.
        metrics["detect_precision"] = _mean(series("detect_precision"))
        metrics["detect_recall"] = _mean(series("detect_recall"))
        metrics["detect_latency_s"] = _mean(series("detect_latency_s"))
    else:  # unknown harness: surface whatever numeric metrics exist
        for name in sorted({k for p in payloads for k in p}):
            values = series(name)
            if values:
                metrics[name] = _mean(values)
    cell.metrics = {
        k: (round(v, 4) if isinstance(v, float) else v)
        for k, v in metrics.items() if v is not None
    }


def _compute_deltas(cell: CellSummary, baseline: CellSummary) -> None:
    """Baseline-relative throughput/latency deltas (Fig. 11 as numbers)."""
    deltas: Dict[str, object] = {}
    base_thr = baseline.metrics.get("throughput_mbps")
    cell_thr = cell.metrics.get("throughput_mbps")
    if isinstance(base_thr, (int, float)) and isinstance(cell_thr, (int, float)):
        deltas["throughput_delta_mbps"] = round(cell_thr - base_thr, 4)
        if base_thr:
            deltas["throughput_delta_pct"] = round(
                100.0 * (cell_thr - base_thr) / base_thr, 2)
        elif cell_thr:
            # Zero-throughput baseline: a percentage is undefined, not an
            # error — surface the Fig. 11 asterisk instead of dividing.
            deltas["throughput_delta_pct"] = None
            deltas["throughput_unbounded"] = True
    base_rtt = baseline.metrics.get("median_rtt_ms")
    cell_rtt = cell.metrics.get("median_rtt_ms")
    if isinstance(base_rtt, (int, float)):
        if isinstance(cell_rtt, (int, float)):
            deltas["rtt_delta_ms"] = round(cell_rtt - base_rtt, 4)
            if base_rtt:
                deltas["rtt_ratio"] = round(cell_rtt / base_rtt, 3)
            elif cell_rtt:
                deltas["rtt_ratio"] = None
                deltas["rtt_unbounded"] = True
        elif cell.n_ok:
            # Every attacked seed lost all pings: Fig. 11's asterisk.
            deltas["rtt_delta_ms"] = None
            deltas["latency_unbounded"] = True
    if deltas:
        cell.deltas = deltas


@dataclass
class CampaignReport:
    """The aggregated campaign: cells plus completion accounting."""

    campaign: str
    baseline_attack: Optional[str]
    cells: List[CellSummary]
    expected_runs: int
    ok_runs: int
    failed_runs: int

    @property
    def missing_runs(self) -> int:
        return max(0, self.expected_runs - self.ok_runs)

    def to_dict(self) -> Dict[str, object]:
        return {
            "campaign": self.campaign,
            "baseline_attack": self.baseline_attack,
            "expected_runs": self.expected_runs,
            "ok_runs": self.ok_runs,
            "failed_runs": self.failed_runs,
            "missing_runs": self.missing_runs,
            "cells": [cell.to_dict() for cell in self.cells],
        }

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #

    def render(self) -> str:
        lines = [
            f"campaign {self.campaign}: {self.ok_runs}/{self.expected_runs} "
            f"runs ok"
            + (f", {self.failed_runs} failed" if self.failed_runs else "")
            + (f", {self.missing_runs} missing" if self.missing_runs else "")
        ]
        by_experiment: Dict[str, List[CellSummary]] = {}
        for cell in self.cells:
            by_experiment.setdefault(cell.experiment, []).append(cell)
        for experiment in sorted(by_experiment):
            lines.append("")
            lines.extend(self._render_experiment(
                experiment, by_experiment[experiment]))
        if any(cell.digests for cell in self.cells):
            lines.append("")
            lines.extend(self._render_digests())
        return "\n".join(lines)

    def _render_digests(self) -> List[str]:
        lines = ["metric digests (count / mean / p50 / p95)"]
        for cell in self.cells:
            if not cell.digests:
                continue
            label = (f"{cell.attack or 'baseline'}/{cell.controller}"
                     f"/{cell.topology}/{cell.fail_mode}")
            lines.append(
                f"  {label} (ok={cell.digests.get('ok', 0)}, "
                f"retried={cell.digests.get('retried', 0)}):")
            metrics = cell.digests.get("metrics") or {}
            for name, digest in metrics.items():
                lines.append(
                    f"    {name:<28} n={digest['count']:<6} "
                    f"mean={digest['mean']:<12g} p50={digest['p50']:<12g} "
                    f"p95={digest['p95']:g}")
        return lines

    def _render_experiment(self, experiment: str,
                           cells: List[CellSummary]) -> List[str]:
        if experiment == "suppression":
            return self._render_suppression(cells)
        if experiment == "interruption":
            return self._render_interruption(cells)
        if experiment in ("fabric", "workload"):
            return self._render_workload(experiment, cells)
        return self._render_generic(experiment, cells)

    def _render_suppression(self, cells: List[CellSummary]) -> List[str]:
        header = (f"{'attack':<22} {'controller':<11} {'fail':<10} "
                  f"{'seeds':>5} {'thr Mbps':>9} {'Δthr%':>8} "
                  f"{'RTT ms':>8} {'ΔRTT ms':>8} {'loss':>5} {'DoS':>5}")
        lines = [f"suppression harness (baseline: "
                 f"{self.baseline_attack or 'none'})", header,
                 "-" * len(header)]
        for cell in cells:
            m, d = cell.metrics, cell.deltas
            thr = m.get("throughput_mbps")
            rtt = m.get("median_rtt_ms")
            loss = m.get("ping_loss")
            dthr = d.get("throughput_delta_pct")
            drtt = d.get("rtt_delta_ms")
            dthr_none = "inf*" if d.get("throughput_unbounded") else "-"
            lines.append(
                f"{cell.attack or 'baseline':<22} {cell.controller:<11} "
                f"{cell.fail_mode:<10} {len(cell.seeds):>5} "
                f"{_num(thr, '{:.2f}'):>9} "
                f"{_num(dthr, '{:+.1f}%', blank=cell.is_baseline, none=dthr_none):>8} "
                f"{_num(rtt, '{:.2f}', none='inf*'):>8} "
                f"{_num(drtt, '{:+.2f}', blank=cell.is_baseline, none='inf*'):>8} "
                f"{_num(loss, '{:.0%}'):>5} "
                f"{m.get('denial_of_service_rate', 0):>5.0%}"
            )
        return lines

    def _render_interruption(self, cells: List[CellSummary]) -> List[str]:
        header = (f"{'attack':<24} {'controller':<11} {'fail':<10} "
                  f"{'seeds':>5} {'unauth':>7} {'window s':>9} "
                  f"{'DoS':>5} {'σ3':>5}")
        lines = ["interruption harness (Table II security metrics)",
                 header, "-" * len(header)]
        for cell in cells:
            m = cell.metrics
            lines.append(
                f"{cell.attack or 'baseline':<24} {cell.controller:<11} "
                f"{cell.fail_mode:<10} {len(cell.seeds):>5} "
                f"{m.get('unauthorized_access_rate', 0):>7.0%} "
                f"{_num(m.get('unauthorized_window_s'), '{:.1f}'):>9} "
                f"{m.get('denial_of_service_rate', 0):>5.0%} "
                f"{m.get('interruption_rate', 0):>5.0%}"
            )
        return lines

    def _render_workload(self, experiment: str,
                         cells: List[CellSummary]) -> List[str]:
        header = (f"{'attack':<22} {'controller':<11} {'fail':<10} "
                  f"{'seeds':>5} {'synth':>8} {'pktin/s':>9} "
                  f"{'occ pk':>7} {'ev cap':>8} {'ev idle':>8} {'deliv':>6} "
                  f"{'prec':>6} {'recall':>6} {'lat s':>7}")
        lines = [f"{experiment} harness (flow-table / PACKET_IN pressure)",
                 header, "-" * len(header)]
        for cell in cells:
            m = cell.metrics
            # A cell whose detectors ran but never fired on an active
            # window has unbounded detection latency: the inf* asterisk.
            lat_none = ("inf*" if m.get("detect_recall") is not None
                        and m.get("detect_latency_s") is None else "-")
            lines.append(
                f"{cell.attack or 'baseline':<22} {cell.controller:<11} "
                f"{cell.fail_mode:<10} {len(cell.seeds):>5} "
                f"{_num(m.get('packets_synthesized'), '{:.0f}'):>8} "
                f"{_num(m.get('packet_in_rate'), '{:.1f}'):>9} "
                f"{_num(m.get('table_occupancy_peak'), '{:.0f}'):>7} "
                f"{_num(m.get('evictions_capacity'), '{:.0f}'):>8} "
                f"{_num(m.get('evictions_idle'), '{:.0f}'):>8} "
                f"{_num(m.get('delivery_rate'), '{:.0%}'):>6} "
                f"{_num(m.get('detect_precision'), '{:.2f}'):>6} "
                f"{_num(m.get('detect_recall'), '{:.2f}'):>6} "
                f"{_num(m.get('detect_latency_s'), '{:.3f}', none=lat_none):>7}"
            )
        return lines

    def _render_generic(self, experiment: str,
                        cells: List[CellSummary]) -> List[str]:
        lines = [f"{experiment} harness"]
        for cell in cells:
            metrics = ", ".join(
                f"{k}={_num(v, '{:.3f}') if isinstance(v, float) else v}"
                for k, v in sorted(cell.metrics.items())
            ) or "no metrics"
            lines.append(
                f"  {cell.attack or 'baseline'}/{cell.controller}"
                f"/{cell.fail_mode} seeds={len(cell.seeds)} "
                f"ok={cell.n_ok}/{cell.n_runs}: {metrics}"
            )
        return lines


def _num(value, fmt: str, blank: bool = False, none: str = "-") -> str:
    if blank:
        return ""
    if not isinstance(value, (int, float)):
        return none
    return fmt.format(value)


def build_report(spec: CampaignSpec,
                 records: Iterable[Dict[str, object]],
                 digests: bool = False) -> CampaignReport:
    """Aggregate store records for ``spec`` into a :class:`CampaignReport`.

    Records are matched to the spec's expanded matrix by run ID, so stale
    records from other specs sharing the store are ignored.  ``retried``
    audit records count toward neither completion nor failure — only the
    final ``ok``/``failed`` record per attempt chain does.

    With ``digests=True`` each cell additionally carries streaming
    count/mean/p50/p95 digests per numeric metric (the same aggregates
    ``repro campaign serve`` maintains incrementally), rendered as an
    extra section and included in ``to_dict()``.
    """
    from repro.campaign.aggregate import CellAggregate

    descriptors = spec.expand()
    wanted = {d.run_id: d for d in descriptors}
    latest: Dict[str, Dict[str, object]] = {}
    failed_ids = set()
    aggregates: Dict[CellKey, CellAggregate] = {}
    for record in records:
        run_id = record.get("run_id")
        if run_id not in wanted:
            continue
        if digests:
            d = wanted[run_id]
            key = (d.experiment, d.attack, d.controller, d.topology,
                   d.fail_mode)
            aggregate = aggregates.get(key)
            if aggregate is None:
                aggregate = aggregates[key] = CellAggregate(
                    (spec.name, d.experiment, str(d.attack or "-"),
                     d.controller, d.topology, d.fail_mode))
            aggregate.fold(record)
        if record.get("status") == "ok":
            latest[run_id] = record
            failed_ids.discard(run_id)
        elif record.get("status") == "failed" and run_id not in latest:
            failed_ids.add(run_id)

    cells: Dict[CellKey, CellSummary] = {}
    cell_records: Dict[CellKey, List[Dict[str, object]]] = {}
    for descriptor in descriptors:
        key = (descriptor.experiment, descriptor.attack,
               descriptor.controller, descriptor.topology,
               descriptor.fail_mode)
        cell = cells.get(key)
        if cell is None:
            cell = cells[key] = CellSummary(
                experiment=descriptor.experiment,
                attack=descriptor.attack,
                controller=descriptor.controller,
                topology=descriptor.topology,
                fail_mode=descriptor.fail_mode,
                is_baseline=descriptor.attack == spec.baseline,
            )
            cell_records[key] = []
        cell.n_runs += 1
        record = latest.get(descriptor.run_id)
        if record is not None:
            cell.n_ok += 1
            cell.seeds.append(descriptor.seed)
            cell_records[key].append(record)
        elif descriptor.run_id in failed_ids:
            cell.n_failed += 1

    for key, cell in cells.items():
        _aggregate_cell(cell, cell_records[key])
        aggregate = aggregates.get(key)
        if aggregate is not None:
            cell.digests = {
                "ok": aggregate.ok,
                "failed": aggregate.failed,
                "retried": aggregate.retried,
                "metrics": {
                    name: digest.to_dict()
                    for name, digest in sorted(aggregate.digests.items())
                },
            }

    # Baseline-relative deltas: match on (controller, topology, fail_mode).
    baselines = {
        (c.controller, c.topology, c.fail_mode): c
        for c in cells.values() if c.is_baseline and c.n_ok
    }
    for cell in cells.values():
        if cell.is_baseline or not cell.n_ok:
            continue
        baseline = baselines.get(
            (cell.controller, cell.topology, cell.fail_mode))
        if baseline is not None:
            _compute_deltas(cell, baseline)

    ordered = sorted(
        cells.values(),
        key=lambda c: (c.experiment, c.attack or "", c.controller,
                       c.topology, c.fail_mode),
    )
    return CampaignReport(
        campaign=spec.name,
        baseline_attack=spec.baseline,
        cells=ordered,
        expected_runs=len(descriptors),
        ok_runs=len(latest),
        failed_runs=len(failed_ids),
    )
