"""Campaign pre-flight: lint every cell's attack before spawning workers.

A mistyped GOTOSTATE target or a capability actuation outside Γ_NC used to
surface only when a worker process picked the cell up — wasting a whole
cell (and its retries) per defect, once per matrix point.  Pre-flight
builds each *distinct* (attack, attack_params) combination once, runs the
``repro.lint`` pass battery over it, and rejects every cell whose attack
carries error-severity diagnostics before any worker is spawned.  The
rejected cells get ordinary ``failed`` records (with the diagnostics as
the error text) in the result store, so ``campaign report`` accounts for
them and a rerun retries them after the attack is fixed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.campaign.spec import RunDescriptor
from repro.lint.diagnostics import LintReport


def _combination_key(descriptor: RunDescriptor) -> Tuple:
    """Cells sharing an attack + params share one lint verdict."""
    return (
        descriptor.attack,
        tuple(sorted(descriptor.attack_params.items())),
    )


def lint_descriptors(
    descriptors: Iterable[RunDescriptor],
) -> Dict[Tuple, LintReport]:
    """Lint each distinct attack combination among ``descriptors``.

    Returns ``{combination key: LintReport}`` for every combination that
    produced at least one diagnostic (clean combinations are omitted).
    Baseline cells (``attack is None``) are never linted.  An attack that
    cannot even be built (unknown name, factory raising on its params)
    yields an ``ATN000`` error report.
    """
    from repro.core.model.threat import AttackModel
    from repro.experiments.enterprise import enterprise_system_model
    from repro.lint import build_registry_attack, failure_report, lint_attack

    system = enterprise_system_model()
    model = AttackModel.no_tls_everywhere(system)
    reports: Dict[Tuple, LintReport] = {}
    seen: set = set()
    for descriptor in descriptors:
        if descriptor.attack is None:
            continue
        key = _combination_key(descriptor)
        if key in seen:
            continue
        seen.add(key)
        try:
            attack = build_registry_attack(
                descriptor.attack, system, dict(descriptor.attack_params)
            )
        except Exception as exc:  # any factory failure is an ATN000
            reports[key] = failure_report(
                descriptor.attack, f"{type(exc).__name__}: {exc}"
            )
            continue
        report = lint_attack(attack, model)
        if report.diagnostics:
            reports[key] = report
    return reports


def partition_pending(
    pending: List[RunDescriptor],
) -> Tuple[List[RunDescriptor], List[Tuple[RunDescriptor, LintReport]]]:
    """Split pending cells into (runnable, rejected-with-report).

    A cell is rejected only for *error*-severity diagnostics; warnings and
    infos never block a campaign.
    """
    reports = lint_descriptors(pending)
    runnable: List[RunDescriptor] = []
    rejected: List[Tuple[RunDescriptor, LintReport]] = []
    for descriptor in pending:
        report = (
            reports.get(_combination_key(descriptor))
            if descriptor.attack is not None
            else None
        )
        if report is not None and report.has_errors:
            rejected.append((descriptor, report))
        else:
            runnable.append(descriptor)
    return runnable, rejected


def rejection_error(report: LintReport) -> str:
    """The error text stored on a lint-rejected cell's record."""
    lines = [f"lint rejected attack {report.attack_name!r} in pre-flight:"]
    lines.extend(f"  {d.render()}" for d in report.errors)
    return "\n".join(lines)
