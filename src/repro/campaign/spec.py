"""Declarative campaign specifications and matrix expansion.

A :class:`CampaignSpec` names the axes of an evaluation matrix — attacks
(registry names), controllers, topologies, fail modes, seeds — plus
shared experiment parameters, and expands them into the full list of
:class:`RunDescriptor` cells.  Descriptors are plain data (picklable,
JSON-serialisable) and carry a deterministic :func:`run_id_for` hash of
everything that influences the run's outcome, which is what makes the
result store resumable: the same cell always hashes to the same ID, so a
completed record means the run never needs to execute again.

Specs load from Python dicts, JSON files, XML files (the same front-end
idiom as the attack/system models), or ``.py`` files exporting ``SPEC``.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import xml.etree.ElementTree as ET
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

#: Experiment harness chosen for attacks that do not override it.
DEFAULT_EXPERIMENT = "suppression"

#: Attacks that demand a specific harness (probe timeline differs).
_ATTACK_EXPERIMENTS = {
    "connection-interruption": "interruption",
}


def experiment_for_attack(attack: Optional[str]) -> str:
    """The harness a registry attack runs under by default."""
    if attack is None:
        return DEFAULT_EXPERIMENT
    return _ATTACK_EXPERIMENTS.get(attack, DEFAULT_EXPERIMENT)


def run_id_for(identity: Dict[str, object]) -> str:
    """A deterministic 16-hex-digit ID for one run's identity dict.

    Canonical JSON (sorted keys, no whitespace drift) hashed with
    SHA-256; the campaign *name* is deliberately not part of the
    identity, so renaming a campaign does not invalidate its results.
    """
    canonical = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class RunDescriptor:
    """One cell of the campaign matrix, ready to hand to a worker."""

    experiment: str
    attack: Optional[str]
    controller: str
    topology: str
    fail_mode: str
    seed: int
    params: Dict[str, object] = field(default_factory=dict)
    attack_params: Dict[str, object] = field(default_factory=dict)

    def identity(self) -> Dict[str, object]:
        return asdict(self)

    @property
    def run_id(self) -> str:
        return run_id_for(self.identity())

    def to_dict(self) -> Dict[str, object]:
        payload = self.identity()
        payload["run_id"] = self.run_id
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunDescriptor":
        return cls(
            experiment=str(data["experiment"]),
            attack=data.get("attack"),
            controller=str(data.get("controller", "floodlight")),
            topology=str(data.get("topology", "enterprise")),
            fail_mode=str(data.get("fail_mode", "secure")),
            seed=int(data.get("seed", 0)),
            params=dict(data.get("params") or {}),
            attack_params=dict(data.get("attack_params") or {}),
        )

    def label(self) -> str:
        """Short human label for progress lines."""
        return (f"{self.experiment}/{self.attack or 'baseline'}"
                f"/{self.controller}/{self.fail_mode}/seed={self.seed}")


@dataclass
class CampaignSpec:
    """The declarative matrix: axes x shared parameters."""

    name: str
    attacks: List[Optional[str]] = field(default_factory=lambda: ["passthrough"])
    controllers: List[str] = field(
        default_factory=lambda: ["floodlight", "pox", "ryu"])
    topologies: List[str] = field(default_factory=lambda: ["enterprise"])
    fail_modes: List[str] = field(default_factory=lambda: ["secure"])
    seeds: List[int] = field(default_factory=lambda: [0])
    baseline: Optional[str] = "passthrough"
    experiment: Optional[str] = None
    params: Dict[str, object] = field(default_factory=dict)
    attack_params: Dict[str, Dict[str, object]] = field(default_factory=dict)
    timeout_s: float = 120.0
    retries: int = 1

    # ------------------------------------------------------------------ #
    # Validation and expansion
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Fail fast on axis values nothing downstream would accept."""
        from repro.attacks import list_attacks
        from repro.controllers import CONTROLLER_FACTORIES
        from repro.dataplane import FailMode

        if not self.name:
            raise ValueError("campaign needs a name")
        if not self.attacks:
            raise ValueError("campaign needs at least one attack axis value")
        known_attacks = set(list_attacks())
        for attack in self.attacks:
            if attack is not None and attack not in known_attacks:
                raise ValueError(
                    f"unknown attack {attack!r}; registered: "
                    f"{', '.join(sorted(known_attacks))}"
                )
        if self.experiment is None:
            for controller in self.controllers:
                if controller not in CONTROLLER_FACTORIES:
                    raise ValueError(
                        f"unknown controller {controller!r}; choose from "
                        f"{sorted(CONTROLLER_FACTORIES)}"
                    )
            for mode in self.fail_modes:
                FailMode(mode)  # raises ValueError on a bad mode
        for seed in self.seeds:
            if not isinstance(seed, int):
                raise ValueError(f"seeds must be integers, got {seed!r}")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")

    def expand(self) -> List[RunDescriptor]:
        """The full matrix, in a deterministic axis-major order."""
        self.validate()
        descriptors = []
        for attack, controller, topology, fail_mode, seed in itertools.product(
            self.attacks, self.controllers, self.topologies,
            self.fail_modes, self.seeds,
        ):
            descriptors.append(RunDescriptor(
                experiment=self.experiment or experiment_for_attack(attack),
                attack=attack,
                controller=controller,
                topology=topology,
                fail_mode=fail_mode,
                seed=seed,
                params=dict(self.params),
                attack_params=dict(self.attack_params.get(attack) or {}),
            ))
        return descriptors

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignSpec":
        unknown = set(data) - set(cls.__dataclass_fields__)
        if unknown:
            raise ValueError(f"unknown campaign spec keys: {sorted(unknown)}")
        spec = cls(**dict(data))
        spec.seeds = [int(s) for s in spec.seeds]
        spec.timeout_s = float(spec.timeout_s)
        spec.retries = int(spec.retries)
        return spec

    @classmethod
    def from_xml(cls, text: str) -> "CampaignSpec":
        """Parse the XML front-end::

            <campaign name="matrix">
              <attacks>
                <attack name="passthrough"/>
                <attack name="flow-mod-suppression"/>
              </attacks>
              <controllers><controller name="pox"/></controllers>
              <fail-modes><fail-mode value="secure"/></fail-modes>
              <seeds><seed value="1"/><seed value="2"/></seeds>
              <params ping_trials="3" iperf_trials="1"/>
              <attack-params attack="stochastic-drop" drop_probability="0.2"/>
            </campaign>
        """
        root = ET.fromstring(text)
        if root.tag != "campaign":
            raise ValueError(f"expected <campaign>, got <{root.tag}>")

        def axis(container: str, item: str, attr: str) -> List[str]:
            parent = root.find(container)
            if parent is None:
                return []
            return [el.attrib[attr] for el in parent.findall(item)]

        data: Dict[str, object] = {"name": root.attrib.get("name", "campaign")}
        attacks = axis("attacks", "attack", "name")
        if attacks:
            data["attacks"] = [None if a == "none" else a for a in attacks]
        controllers = axis("controllers", "controller", "name")
        if controllers:
            data["controllers"] = controllers
        topologies = axis("topologies", "topology", "name")
        if topologies:
            data["topologies"] = topologies
        fail_modes = axis("fail-modes", "fail-mode", "value")
        if fail_modes:
            data["fail_modes"] = fail_modes
        seeds = axis("seeds", "seed", "value")
        if seeds:
            data["seeds"] = [int(s) for s in seeds]
        for attr in ("baseline", "experiment"):
            if attr in root.attrib:
                data[attr] = root.attrib[attr] or None
        if "timeout-s" in root.attrib:
            data["timeout_s"] = float(root.attrib["timeout-s"])
        if "retries" in root.attrib:
            data["retries"] = int(root.attrib["retries"])
        params_el = root.find("params")
        if params_el is not None:
            data["params"] = {k: _coerce(v) for k, v in params_el.attrib.items()}
        attack_params: Dict[str, Dict[str, object]] = {}
        for el in root.findall("attack-params"):
            attack = el.attrib["attack"]
            attack_params[attack] = {
                k: _coerce(v) for k, v in el.attrib.items() if k != "attack"
            }
        if attack_params:
            data["attack_params"] = attack_params
        return cls.from_dict(data)


def _coerce(value: str) -> object:
    """XML attributes are strings; recover ints/floats/bools."""
    lowered = value.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for converter in (int, float):
        try:
            return converter(value)
        except ValueError:
            continue
    return value


def load_spec(path) -> CampaignSpec:
    """Load a spec from ``.xml``, ``.json``, or ``.py`` (exports ``SPEC``)."""
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    suffix = path.suffix.lower()
    if suffix == ".xml":
        return CampaignSpec.from_xml(text)
    if suffix == ".json":
        return CampaignSpec.from_dict(json.loads(text))
    if suffix == ".py":
        namespace: Dict[str, object] = {}
        exec(compile(text, str(path), "exec"), namespace)  # noqa: S102
        spec = namespace.get("SPEC")
        if spec is None:
            raise ValueError(f"{path} defines no SPEC")
        if isinstance(spec, CampaignSpec):
            return spec
        if isinstance(spec, dict):
            return CampaignSpec.from_dict(spec)
        raise ValueError(f"{path}: SPEC must be a CampaignSpec or dict")
    raise ValueError(f"unsupported spec format {suffix!r} (xml/json/py)")
