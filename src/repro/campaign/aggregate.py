"""Incremental per-cell aggregation over streaming campaign records.

``report.py`` rebuilds its tables from a full ledger read — fine for a
CLI invocation, wrong for a long-lived scheduler folding a record every
few milliseconds.  This module keeps per-cell aggregates (count, mean,
min/max, p50/p95) updated in O(1) per record via a small fixed-size
merging digest, so ``repro campaign serve`` can print distributional
summaries without ever re-reading the store.

The digest is the classic streaming-histogram construction (Ben-Haim &
Ben-Tov): keep at most ``capacity`` (value, weight) centroids sorted by
value; on overflow merge the closest adjacent pair.  Quantile queries
interpolate across centroid midpoints.  With the default capacity of 64
the p50/p95 of typical campaign metric distributions land well inside
the error budget of a progress report, and the whole digest serialises
to a few hundred bytes.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

#: Default centroid budget per metric digest.
DIGEST_CAPACITY = 64

#: Metrics that are counters/identifiers rather than distributions —
#: folding them into digests would only add noise to the output.
_SKIP_METRICS = frozenset({"seed", "attempt", "pid", "worker_pid"})


class QuantileDigest:
    """Fixed-size streaming quantile sketch (mergeable, deterministic)."""

    __slots__ = ("capacity", "count", "_centroids", "_min", "_max", "_sum")

    def __init__(self, capacity: int = DIGEST_CAPACITY) -> None:
        if capacity < 2:
            raise ValueError(f"digest capacity must be >= 2, got {capacity}")
        self.capacity = int(capacity)
        self.count = 0
        self._centroids: List[Tuple[float, int]] = []  # sorted by value
        self._min = 0.0
        self._max = 0.0
        self._sum = 0.0

    def add(self, value: float, weight: int = 1) -> None:
        value = float(value)
        if self.count == 0:
            self._min = self._max = value
        else:
            self._min = min(self._min, value)
            self._max = max(self._max, value)
        self.count += weight
        self._sum += value * weight
        index = bisect.bisect_left(self._centroids, (value, 0))
        if (index < len(self._centroids)
                and self._centroids[index][0] == value):
            old = self._centroids[index]
            self._centroids[index] = (value, old[1] + weight)
        else:
            self._centroids.insert(index, (value, weight))
            self._shrink()

    def merge(self, other: "QuantileDigest") -> None:
        for value, weight in other._centroids:
            self.add(value, weight)

    def _shrink(self) -> None:
        while len(self._centroids) > self.capacity:
            best = 1
            best_gap = self._centroids[1][0] - self._centroids[0][0]
            for i in range(2, len(self._centroids)):
                gap = self._centroids[i][0] - self._centroids[i - 1][0]
                if gap < best_gap:
                    best_gap = gap
                    best = i
            (v1, w1) = self._centroids[best - 1]
            (v2, w2) = self._centroids[best]
            weight = w1 + w2
            merged = (v1 * w1 + v2 * w2) / weight
            self._centroids[best - 1:best + 1] = [(merged, weight)]

    @property
    def mean(self) -> float:
        return self._sum / self.count if self.count else 0.0

    @property
    def minimum(self) -> float:
        return self._min

    @property
    def maximum(self) -> float:
        return self._max

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0 <= q <= 1)."""
        if self.count == 0:
            return 0.0
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        target = q * self.count
        cumulative = 0.0
        previous_value = self._min
        previous_cum = 0.0
        for value, weight in self._centroids:
            centre = cumulative + weight / 2.0
            if target <= centre:
                if centre == previous_cum:
                    return value
                frac = (target - previous_cum) / (centre - previous_cum)
                return previous_value + frac * (value - previous_value)
            previous_value = value
            previous_cum = centre
            cumulative += weight
        return self._max

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "mean": round(self.mean, 6),
            "min": round(self._min, 6),
            "max": round(self._max, 6),
            "p50": round(self.quantile(0.5), 6),
            "p95": round(self.quantile(0.95), 6),
        }


def cell_key(record: Dict[str, object]) -> Tuple[str, ...]:
    """The aggregation cell a record belongs to (one report table row)."""
    return tuple(
        str(record.get(field) or "-")
        for field in ("campaign", "experiment", "attack", "controller",
                      "topology", "fail_mode")
    )


class CellAggregate:
    """Streaming aggregates for one campaign cell."""

    __slots__ = ("key", "ok", "failed", "retried", "digests")

    def __init__(self, key: Tuple[str, ...]) -> None:
        self.key = key
        self.ok = 0
        self.failed = 0
        self.retried = 0
        self.digests: Dict[str, QuantileDigest] = {}

    def fold(self, record: Dict[str, object]) -> None:
        status = record.get("status")
        if status == "retried":
            self.retried += 1
            return
        if status == "failed":
            self.failed += 1
            return
        if status != "ok":
            return
        self.ok += 1
        self._observe("wall_duration_s", record.get("wall_duration_s"))
        metrics = record.get("metrics")
        if isinstance(metrics, dict):
            for name, value in metrics.items():
                if name in _SKIP_METRICS:
                    continue
                self._observe(name, value)

    def _observe(self, name: str, value: object) -> None:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return
        digest = self.digests.get(name)
        if digest is None:
            digest = self.digests[name] = QuantileDigest()
        digest.add(float(value))

    def to_dict(self) -> Dict[str, object]:
        return {
            "cell": {
                "campaign": self.key[0],
                "experiment": self.key[1],
                "attack": self.key[2],
                "controller": self.key[3],
                "topology": self.key[4],
                "fail_mode": self.key[5],
            },
            "ok": self.ok,
            "failed": self.failed,
            "retried": self.retried,
            "metrics": {
                name: digest.to_dict()
                for name, digest in sorted(self.digests.items())
            },
        }


class CampaignAggregator:
    """Folds a stream of run records into per-cell aggregates."""

    def __init__(self) -> None:
        self.records_seen = 0
        self._cells: Dict[Tuple[str, ...], CellAggregate] = {}

    def fold(self, record: Dict[str, object]) -> None:
        self.records_seen += 1
        key = cell_key(record)
        cell = self._cells.get(key)
        if cell is None:
            cell = self._cells[key] = CellAggregate(key)
        cell.fold(record)

    def __len__(self) -> int:
        return len(self._cells)

    def cells(self) -> List[CellAggregate]:
        return [self._cells[key] for key in sorted(self._cells)]

    def snapshot(self) -> Dict[str, object]:
        return {
            "records": self.records_seen,
            "cells": [cell.to_dict() for cell in self.cells()],
        }

    def render(self, metric: Optional[str] = None) -> str:
        """Human-readable per-cell table (one line per cell).

        ``metric`` picks the digest column; default is wall duration,
        which every ok record carries.
        """
        metric = metric or "wall_duration_s"
        lines = [
            f"{'cell':<52} {'ok':>5} {'fail':>5} {'retry':>5} "
            f"{'mean':>9} {'p50':>9} {'p95':>9}  ({metric})"
        ]
        for cell in self.cells():
            label = "/".join(part for part in cell.key if part != "-")
            digest = cell.digests.get(metric)
            if digest is not None and digest.count:
                stats = (f"{digest.mean:>9.4f} {digest.quantile(0.5):>9.4f} "
                         f"{digest.quantile(0.95):>9.4f}")
            else:
                stats = f"{'-':>9} {'-':>9} {'-':>9}"
            lines.append(
                f"{label:<52} {cell.ok:>5} {cell.failed:>5} "
                f"{cell.retried:>5} {stats}")
        return "\n".join(lines)
