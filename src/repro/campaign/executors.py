"""Mapping from run descriptors to experiment entry points.

Workers call :func:`execute_descriptor` inside a fresh process; each
executor takes the descriptor's axis values as keyword arguments and
returns the flat metrics dict the store records.  The table is
extensible so future harnesses (fingerprinting sweeps, dataset
generation) plug in without touching the runner.
"""

from __future__ import annotations

import inspect
import os
import time
from typing import Callable, Dict, Optional

#: Topologies the stock harnesses know how to build.
KNOWN_TOPOLOGIES = ("enterprise",)

Executor = Callable[..., Dict[str, object]]

_EXECUTORS: Dict[str, Executor] = {}


def register_executor(name: str, executor: Executor,
                      replace: bool = False) -> Executor:
    existing = _EXECUTORS.get(name)
    if existing is not None and existing is not executor and not replace:
        raise ValueError(f"executor {name!r} is already registered")
    _EXECUTORS[name] = executor
    return executor


def list_executors() -> list:
    _ensure_builtin_executors()
    return sorted(_EXECUTORS)


def _ensure_builtin_executors() -> None:
    if "suppression" in _EXECUTORS:
        return
    from repro.experiments import (
        run_compliance_cell,
        run_fabric_cell,
        run_interruption_cell,
        run_suppression_cell,
        run_workload_cell,
    )

    _EXECUTORS.setdefault("suppression", run_suppression_cell)
    _EXECUTORS.setdefault("interruption", run_interruption_cell)
    _EXECUTORS.setdefault("compliance", run_compliance_cell)
    _EXECUTORS.setdefault("fabric", run_fabric_cell)
    _EXECUTORS.setdefault("workload", run_workload_cell)
    _EXECUTORS.setdefault("selfcheck", _selfcheck_cell)


def _selfcheck_cell(
    controller: str = "none",
    attack: Optional[str] = None,
    fail_mode: str = "secure",
    seed: int = 0,
    attack_params: Optional[Dict[str, object]] = None,
    attempt: int = 1,
    crash_until_attempt: int = 0,
    fail: bool = False,
    hang_s: float = 0.0,
    work_s: float = 0.0,
) -> Dict[str, object]:
    """A pool-diagnostics harness: exercises crash, error, and hang paths.

    ``crash_until_attempt=N`` hard-exits the worker (as a segfaulting
    experiment would) on attempts below N, so retry behaviour can be
    verified end to end; ``fail`` raises; ``hang_s`` sleeps past the
    per-run timeout.
    """
    del attack, attack_params
    if attempt < crash_until_attempt:
        os._exit(13)  # simulate a hard worker crash, not a Python error
    if fail:
        raise RuntimeError("selfcheck: requested failure")
    if hang_s:
        time.sleep(hang_s)
    if work_s:
        time.sleep(work_s)
    return {
        "experiment": "selfcheck",
        "controller": controller,
        "fail_mode": fail_mode,
        "seed": seed,
        "attempt": attempt,
        "pid": os.getpid(),
        "ok": True,
    }


def _accepts_trace(executor: Executor) -> bool:
    try:
        parameters = inspect.signature(executor).parameters
    except (TypeError, ValueError):
        return False
    return "trace" in parameters or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    )


def execute_descriptor(descriptor: Dict[str, object],
                       attempt: int = 1,
                       tracer=None) -> Dict[str, object]:
    """Run one descriptor dict in-process and return its metrics.

    ``tracer`` is forwarded to executors that accept a ``trace`` keyword
    (the stock suppression/interruption harnesses); executors without
    trace support simply run untraced.
    """
    _ensure_builtin_executors()
    experiment = str(descriptor.get("experiment") or "suppression")
    executor = _EXECUTORS.get(experiment)
    if executor is None:
        raise KeyError(
            f"unknown experiment {experiment!r}; registered: "
            f"{', '.join(sorted(_EXECUTORS))}"
        )
    topology = str(descriptor.get("topology") or "enterprise")
    if experiment in ("suppression", "interruption") \
            and topology not in KNOWN_TOPOLOGIES:
        raise ValueError(
            f"unknown topology {topology!r}; known: {KNOWN_TOPOLOGIES}"
        )
    kwargs = dict(descriptor.get("params") or {})
    kwargs.update(
        controller=descriptor.get("controller", "floodlight"),
        attack=descriptor.get("attack"),
        fail_mode=descriptor.get("fail_mode", "secure"),
        seed=int(descriptor.get("seed", 0)),
        attack_params=dict(descriptor.get("attack_params") or {}),
    )
    if experiment == "selfcheck":
        kwargs["attempt"] = attempt
    if experiment in ("fabric", "workload"):
        # These cells take the generated-fabric descriptor by name
        # (fat-tree-k8, leaf-spine-8x4, waxman-s64-h128, ...).
        kwargs["topology"] = topology
    if experiment == "compliance":
        # The suite has no controller/attack axes.
        kwargs = {"fail_mode": kwargs["fail_mode"], "seed": kwargs["seed"]}
    if tracer is not None and _accepts_trace(executor):
        kwargs["trace"] = tracer
    return executor(**kwargs)
