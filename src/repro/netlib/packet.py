"""Layered packet decoding helpers.

The switch's flow-match extraction and the controllers' PACKET_IN handlers
both need to look inside raw Ethernet bytes; this module is the single
place that knows how the layers nest.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Union

from repro.netlib.arp import ArpPacket
from repro.netlib.ethernet import EtherType, EthernetFrame, FrameDecodeError
from repro.netlib.icmp import IcmpEcho
from repro.netlib.ipv4 import IpProtocol, Ipv4Packet
from repro.netlib.lldp import LldpPacket
from repro.netlib.tcp import TcpSegment
from repro.netlib.udp import UdpDatagram

L3Packet = Union[ArpPacket, Ipv4Packet, LldpPacket]
L4Packet = Union[IcmpEcho, TcpSegment, UdpDatagram]


class DecodedPacket(NamedTuple):
    """A fully decoded Ethernet frame with its nested layers (when known)."""

    ethernet: EthernetFrame
    l3: Optional[L3Packet]
    l4: Optional[L4Packet]


def decode_ethernet(data: bytes) -> DecodedPacket:
    """Decode raw bytes into Ethernet + known upper layers.

    Unknown EtherTypes or IP protocols leave the corresponding layer as
    ``None`` rather than raising: the data plane must forward traffic it
    does not understand.
    """
    frame = EthernetFrame.unpack(data)
    l3: Optional[L3Packet] = None
    l4: Optional[L4Packet] = None
    try:
        if frame.ethertype == EtherType.ARP:
            l3 = ArpPacket.unpack(frame.payload)
        elif frame.ethertype == EtherType.LLDP:
            l3 = LldpPacket.unpack(frame.payload)
        elif frame.ethertype == EtherType.IPV4:
            ip = Ipv4Packet.unpack(frame.payload)
            l3 = ip
            if ip.protocol == IpProtocol.ICMP:
                l4 = IcmpEcho.unpack(ip.payload)
            elif ip.protocol == IpProtocol.TCP:
                l4 = TcpSegment.unpack(ip.payload)
            elif ip.protocol == IpProtocol.UDP:
                l4 = UdpDatagram.unpack(ip.payload)
    except FrameDecodeError:
        # Malformed upper layers (e.g. after FUZZMESSAGE) decode as opaque.
        pass
    return DecodedPacket(frame, l3, l4)


def payload_protocol_name(decoded: DecodedPacket) -> str:
    """Human-readable protocol label for capture logs (e.g. ``"ipv4/icmp"``)."""
    if decoded.l3 is None:
        return f"ethertype-0x{decoded.ethernet.ethertype:04x}"
    if isinstance(decoded.l3, ArpPacket):
        return "arp"
    if isinstance(decoded.l3, LldpPacket):
        return "lldp"
    if decoded.l4 is None:
        return "ipv4"
    if isinstance(decoded.l4, IcmpEcho):
        return "ipv4/icmp"
    if isinstance(decoded.l4, TcpSegment):
        return "ipv4/tcp"
    return "ipv4/udp"
