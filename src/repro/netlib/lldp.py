"""LLDP frames for controller topology discovery (IEEE 802.1AB subset).

Controllers flood LLDP probes out every switch port and learn inter-switch
links when the probe arrives as a PACKET_IN on the far side.  The paper
notes (Section II-A4) that forged LLDP can fabricate links — the
``repro.attacks`` library includes such an attack, so the frame format here
is byte-accurate for the three mandatory TLVs plus end-of-LLDPDU.
"""

from __future__ import annotations

import struct

from repro.netlib.ethernet import FrameDecodeError

TLV_END = 0
TLV_CHASSIS_ID = 1
TLV_PORT_ID = 2
TLV_TTL = 3

CHASSIS_ID_SUBTYPE_LOCAL = 7
PORT_ID_SUBTYPE_LOCAL = 7

DEFAULT_TTL = 120


def _tlv(tlv_type: int, value: bytes) -> bytes:
    if len(value) > 0x1FF:
        raise ValueError(f"TLV value too long: {len(value)} bytes")
    header = (tlv_type << 9) | len(value)
    return struct.pack("!H", header) + value


class LldpPacket:
    """An LLDP data unit carrying chassis (datapath) and port identifiers."""

    __slots__ = ("chassis_id", "port_id", "ttl")

    def __init__(self, chassis_id: str, port_id: int, ttl: int = DEFAULT_TTL) -> None:
        if not chassis_id:
            raise ValueError("chassis_id must be non-empty")
        if not 0 <= port_id <= 0xFFFF:
            raise ValueError(f"port_id out of range: {port_id!r}")
        if not 0 <= ttl <= 0xFFFF:
            raise ValueError(f"ttl out of range: {ttl!r}")
        self.chassis_id = chassis_id
        self.port_id = port_id
        self.ttl = ttl

    def pack(self) -> bytes:
        chassis = bytes([CHASSIS_ID_SUBTYPE_LOCAL]) + self.chassis_id.encode("ascii")
        port = bytes([PORT_ID_SUBTYPE_LOCAL]) + struct.pack("!H", self.port_id)
        return (
            _tlv(TLV_CHASSIS_ID, chassis)
            + _tlv(TLV_PORT_ID, port)
            + _tlv(TLV_TTL, struct.pack("!H", self.ttl))
            + _tlv(TLV_END, b"")
        )

    @classmethod
    def unpack(cls, data: bytes) -> "LldpPacket":
        offset = 0
        chassis_id = None
        port_id = None
        ttl = DEFAULT_TTL
        while offset + 2 <= len(data):
            (header,) = struct.unpack_from("!H", data, offset)
            tlv_type = header >> 9
            length = header & 0x1FF
            offset += 2
            value = data[offset : offset + length]
            if len(value) != length:
                raise FrameDecodeError("truncated LLDP TLV")
            offset += length
            if tlv_type == TLV_END:
                break
            if tlv_type == TLV_CHASSIS_ID:
                if not value or value[0] != CHASSIS_ID_SUBTYPE_LOCAL:
                    raise FrameDecodeError("unsupported LLDP chassis-id subtype")
                chassis_id = value[1:].decode("ascii")
            elif tlv_type == TLV_PORT_ID:
                if len(value) != 3 or value[0] != PORT_ID_SUBTYPE_LOCAL:
                    raise FrameDecodeError("unsupported LLDP port-id subtype")
                (port_id,) = struct.unpack("!H", value[1:])
            elif tlv_type == TLV_TTL:
                if len(value) != 2:
                    raise FrameDecodeError("malformed LLDP TTL TLV")
                (ttl,) = struct.unpack("!H", value)
        if chassis_id is None or port_id is None:
            raise FrameDecodeError("LLDP missing mandatory chassis-id/port-id TLVs")
        return cls(chassis_id, port_id, ttl)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, LldpPacket):
            return self.pack() == other.pack()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.pack())

    def __repr__(self) -> str:
        return f"<Lldp chassis={self.chassis_id} port={self.port_id} ttl={self.ttl}>"
