"""Frame interning and flow-key memoization (the packet fast lane).

A frame in this simulator is an immutable ``bytes`` object that travels
unchanged from the sending host through every switch hop to the
receiver.  Historically each hop re-ran the full twelve-field extraction
on those same bytes; iperf streams additionally retransmit *identical*
byte windows, so the same content was parsed dozens of times.

:class:`FastFrame` is a ``bytes`` subclass that carries its parsed flow
key alongside the payload:

* ``_base`` — the eleven port-independent fields, computed once per
  distinct frame content (``extract_flow_base``).
* ``_by_port`` — per-ingress-port field dicts (the base plus
  ``in_port``), each carrying a precomputed ``"__tuple__"`` hash key so
  :meth:`FlowTable.lookup` skips ``field_tuple`` entirely.
* ``_macs`` — the ``(src, dst)`` MAC pair for standalone learning and
  host NIC filtering, which need no other field.

The bounded intern pool maps frame content to its ``FastFrame`` so a
retransmitted window resolves to the *same object* — its key caches are
already warm, and CPython's ``bytes`` hash caching makes re-hashing it
for buffering O(1).

Set-field actions do not invalidate the whole key: ``derive_frame``
builds the rewritten frame's key from the parent's by replacing only the
touched field (see ``OpenFlowSwitch._rewrite_dl``/``_rewrite_nw``).

``set_fast_lane(False)`` disables interning and memoization globally —
every call falls back to a fresh single-pass extraction — which is what
the A/B semantics tests and benchmark baselines toggle.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.netlib.addresses import MacAddress
from repro.netlib.flowkey import (
    FIELD_TUPLE_KEY as TUPLE_KEY,
    MATCH_FIELD_NAMES,
    extract_flow_base,
    extract_flow_key,
    mac_pair_of,
)

#: Intern pool size bound.  Eviction is wholesale (``clear``): the pool
#: re-warms in one round-trip and the bookkeeping stays O(1) per frame.
POOL_MAX = 4096

_BASE_NAMES = MATCH_FIELD_NAMES[1:]  # every field except in_port

_enabled = True
_pool: Dict[bytes, "FastFrame"] = {}

counters: Dict[str, int] = {
    "flowkey_cache_hits": 0,
    "flowkey_cache_misses": 0,
    "frames_interned": 0,
    "pool_evictions": 0,
}


class FastFrame(bytes):
    """Raw Ethernet bytes plus lazily-attached parse caches.

    ``bytes`` subclasses cannot declare nonempty ``__slots__``, so the
    caches live in the instance ``__dict__`` with class-level ``None``
    defaults; an untouched FastFrame costs one empty dict.
    """

    _base: Optional[Dict[str, Any]] = None
    _base_tuple: Optional[Tuple[Any, ...]] = None
    _by_port: Optional[Dict[int, Dict[str, Any]]] = None
    _macs: Any = None  # (src, dst) | False (runt) | None (not yet parsed)


def set_fast_lane(enabled: bool) -> None:
    """Globally enable/disable interning + memoization (A/B switch)."""
    global _enabled
    _enabled = bool(enabled)
    if not _enabled:
        _pool.clear()


def fast_lane_enabled() -> bool:
    return _enabled


def clear_pool() -> None:
    """Drop the intern pool (between experiment runs / in tests)."""
    _pool.clear()


def reset_counters() -> None:
    for name in counters:
        counters[name] = 0


def intern(data: bytes) -> Tuple[bytes, bool]:
    """Resolve ``data`` to its pooled :class:`FastFrame`.

    Returns ``(frame, pooled)`` where ``pooled`` is True when the content
    was already in the pool (a dedup win: the returned frame's caches are
    warm).  With the fast lane off, returns ``(data, False)`` untouched.
    """
    if not _enabled:
        return data, False
    if type(data) is FastFrame:
        return data, False
    cached = _pool.get(data)
    if cached is not None:
        counters["frames_interned"] += 1
        return cached, True
    frame = FastFrame(data)
    if len(_pool) >= POOL_MAX:
        _pool.clear()
        counters["pool_evictions"] += 1
    _pool[frame] = frame
    return frame, False


def flow_key(data: bytes, in_port: int) -> Tuple[Dict[str, Any], bool]:
    """The twelve-field dict for ``data`` on ``in_port``, memoized.

    Returns ``(fields, cache_hit)``.  Memoized dicts carry
    :data:`TUPLE_KEY`; treat them as read-only — they are shared across
    every lookup of this frame at this port number.  Raises exactly what
    ``extract_packet_fields`` raises (nothing is cached on failure).
    """
    if _enabled and type(data) is FastFrame:
        by_port = data._by_port
        if by_port is not None:
            fields = by_port.get(in_port)
            if fields is not None:
                counters["flowkey_cache_hits"] += 1
                return fields, True
        else:
            by_port = data._by_port = {}
        base = data._base
        if base is None:
            base = extract_flow_base(data)
            data._base = base
            data._base_tuple = tuple(base[name] for name in _BASE_NAMES)
        counters["flowkey_cache_misses"] += 1
        fields = dict(base)
        fields["in_port"] = in_port
        fields[TUPLE_KEY] = (in_port,) + data._base_tuple
        by_port[in_port] = fields
        return fields, False
    return extract_flow_key(data, in_port), False


def mac_pair(data: bytes) -> Optional[Tuple[MacAddress, MacAddress]]:
    """Memoized ``(src, dst)`` MACs; ``None`` for a sub-14-byte runt."""
    if _enabled and type(data) is FastFrame:
        macs = data._macs
        if macs is None:
            base = data._base
            if base is not None:
                macs = (base["dl_src"], base["dl_dst"])
            else:
                macs = mac_pair_of(data)
                if macs is None:
                    macs = False
            data._macs = macs
        return macs or None
    return mac_pair_of(data)


def derive_frame(new_data: bytes, parent: bytes, field: str, value: Any) -> bytes:
    """Attach a key to a rewritten frame without re-parsing it.

    ``new_data`` is the set-field action's output, which differs from
    ``parent`` only in ``field`` (plus recomputed checksums); its flow
    key is therefore the parent's key with that one field replaced.
    Only fires when the parent's key was already computed — otherwise the
    rewritten bytes go out plain and parse on demand downstream.
    """
    if not _enabled or type(parent) is not FastFrame or parent._base is None:
        return new_data
    frame = FastFrame(new_data)
    base = dict(parent._base)
    base[field] = value
    frame._base = base
    frame._base_tuple = tuple(base[name] for name in _BASE_NAMES)
    return frame
