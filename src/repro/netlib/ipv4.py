"""IPv4 packets (RFC 791) with header checksums."""

from __future__ import annotations

import struct
from enum import IntEnum

from repro.netlib.addresses import Ipv4Address
from repro.netlib.ethernet import FrameDecodeError


class IpProtocol(IntEnum):
    ICMP = 1
    TCP = 6
    UDP = 17


_HEADER = struct.Struct("!BBHHHBBH4s4s")
DEFAULT_TTL = 64


def internet_checksum(data: bytes) -> int:
    """RFC 1071 one's-complement checksum over 16-bit words."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", data):
        total += word
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


class Ipv4Packet:
    """An IPv4 packet without options."""

    __slots__ = ("src", "dst", "protocol", "ttl", "identification", "payload")

    def __init__(
        self,
        src: Ipv4Address,
        dst: Ipv4Address,
        protocol: int,
        payload: bytes = b"",
        ttl: int = DEFAULT_TTL,
        identification: int = 0,
    ) -> None:
        if not 0 <= ttl <= 255:
            raise ValueError(f"TTL out of range: {ttl!r}")
        if not 0 <= identification <= 0xFFFF:
            raise ValueError(f"identification out of range: {identification!r}")
        self.src = Ipv4Address(src)
        self.dst = Ipv4Address(dst)
        self.protocol = int(protocol)
        self.ttl = ttl
        self.identification = identification
        self.payload = bytes(payload)

    @property
    def total_length(self) -> int:
        return _HEADER.size + len(self.payload)

    def decremented(self) -> "Ipv4Packet":
        """Return a copy with TTL reduced by one (router hop)."""
        if self.ttl == 0:
            raise ValueError("TTL already zero; packet should have been dropped")
        return Ipv4Packet(
            self.src,
            self.dst,
            self.protocol,
            self.payload,
            ttl=self.ttl - 1,
            identification=self.identification,
        )

    def pack(self) -> bytes:
        version_ihl = (4 << 4) | 5
        header = _HEADER.pack(
            version_ihl,
            0,
            self.total_length,
            self.identification,
            0,
            self.ttl,
            self.protocol,
            0,
            self.src.packed,
            self.dst.packed,
        )
        checksum = internet_checksum(header)
        return header[:10] + struct.pack("!H", checksum) + header[12:] + self.payload

    @classmethod
    def unpack(cls, data: bytes) -> "Ipv4Packet":
        if len(data) < _HEADER.size:
            raise FrameDecodeError(f"IPv4 packet too short: {len(data)} bytes")
        (
            version_ihl,
            _tos,
            total_length,
            identification,
            _flags_frag,
            ttl,
            protocol,
            checksum,
            src,
            dst,
        ) = _HEADER.unpack_from(data)
        version = version_ihl >> 4
        ihl = version_ihl & 0x0F
        if version != 4:
            raise FrameDecodeError(f"not an IPv4 packet (version={version})")
        if ihl != 5:
            raise FrameDecodeError(f"IPv4 options unsupported (ihl={ihl})")
        if total_length > len(data):
            raise FrameDecodeError(
                f"IPv4 total_length {total_length} exceeds buffer {len(data)}"
            )
        header = data[: _HEADER.size]
        if internet_checksum(header) != 0:
            raise FrameDecodeError(f"IPv4 header checksum mismatch (got 0x{checksum:04x})")
        payload = data[_HEADER.size : total_length]
        return cls(
            Ipv4Address(src),
            Ipv4Address(dst),
            protocol,
            payload,
            ttl=ttl,
            identification=identification,
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Ipv4Packet):
            return self.pack() == other.pack()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.pack())

    def __repr__(self) -> str:
        try:
            proto = IpProtocol(self.protocol).name
        except ValueError:
            proto = str(self.protocol)
        return f"<Ipv4 {self.src}->{self.dst} {proto} len={self.total_length}>"
